#!/usr/bin/env bash
# check.sh — the full local quality gate, mirroring CI.
#
#   ./scripts/check.sh          # everything
#   ./scripts/check.sh quick    # skip the race detector pass
#
# Steps: gofmt, go vet, the repo's own static-analysis suite
# (rulefitlint — including the cross-package dataflow analyzers
# detsource/sharedmut/sinkguard — both standalone and as a vettool,
# where facts travel through .vetx files), build, tests, the race
# detector, the rulefitdebug invariant-checked test pass, a load-harness
# smoke (live daemon + fixed-RPS ruleload replay + loaddiff schema and
# self-diff gates, mirroring CI's load-smoke job), a delta smoke (live
# session replay with warm/cold byte-identity and loaddiff gates,
# mirroring CI's delta-smoke job), and a fuzz smoke (each target
# briefly, mirroring CI's fuzz-smoke job).
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-full}"
fail=0

step() { printf '\n== %s\n' "$1"; }

step "gofmt"
unformatted=$(gofmt -l . 2>/dev/null | grep -v '^\.git/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    fail=1
fi

step "go vet"
go vet ./... || fail=1

step "rulefitlint (standalone)"
go build -o /tmp/rulefitlint ./cmd/rulefitlint
/tmp/rulefitlint ./... || fail=1

step "rulefitlint (as go vet tool)"
go vet -vettool=/tmp/rulefitlint ./... || fail=1

step "go build"
go build ./... || fail=1

step "go test"
go test ./... || fail=1

step "go test -tags rulefitdebug (runtime invariants)"
go test -tags rulefitdebug ./internal/ilp/ ./internal/core/ ./internal/invariant/ || fail=1

step "observability: traced -race smoke"
go test -race -run 'Trace|Determin' ./internal/ilp/ ./internal/core/ ./internal/obs/... || fail=1

step "observability: disabled-sink overhead gate"
go test -run TestDisabledSinkOverheadSmoke ./internal/ilp/ || fail=1

step "daemon: build + e2e (race)"
go build ./cmd/ruleplaced ./cmd/benchdiff || fail=1
go test -race ./internal/daemon/ || fail=1

step "benchdiff gate (baseline vs itself must be clean)"
go run ./cmd/benchdiff BENCH_20260805T141853Z.json BENCH_20260805T141853Z.json || fail=1

step "load harness: e2e (race)"
go test -race ./internal/load/ || fail=1

step "load smoke (fixed-RPS replay, schema gate, self-diff)"
go build -race -o /tmp/ruleload ./cmd/ruleload || fail=1
go build -o /tmp/loaddiff ./cmd/loaddiff || fail=1
go build -o /tmp/ruleplaced ./cmd/ruleplaced || fail=1
/tmp/ruleplaced -addr 127.0.0.1:18090 -max-inflight 2 >/tmp/ruleplaced-smoke.log 2>&1 &
daemon_pid=$!
for _ in $(seq 1 50); do
    curl -sf http://127.0.0.1:18090/readyz >/dev/null && break
    sleep 0.1
done
/tmp/ruleload -target http://127.0.0.1:18090 -seed 7 -requests 8 -rps 50 -quiet -out /tmp/load.json || fail=1
/tmp/loaddiff -check /tmp/load.json || fail=1
/tmp/loaddiff /tmp/load.json /tmp/load.json >/dev/null || fail=1
curl -sf http://127.0.0.1:18090/statusz | grep -q '"requests_1m"' || fail=1
kill -TERM "$daemon_pid" 2>/dev/null
wait "$daemon_pid" 2>/dev/null || true

step "introspection smoke (solvez mid-solve, deadline flight dump, traceview)"
go build -o /tmp/traceview ./cmd/traceview || fail=1
go run ./cmd/benchgen -k 4 -rules 8 -capacity 60 -ingresses 4 -paths-per-ingress 4 -out /tmp/introspect-problem.json || fail=1
rm -rf /tmp/flight-smoke && mkdir -p /tmp/flight-smoke
/tmp/ruleplaced -addr 127.0.0.1:18093 -max-inflight 1 -solve-delay 2s \
    -flight-dir /tmp/flight-smoke >/tmp/ruleplaced-introspect.log 2>&1 &
daemon_pid=$!
for _ in $(seq 1 50); do
    curl -sf http://127.0.0.1:18093/readyz >/dev/null && break
    sleep 0.1
done
printf '{"problem": %s, "options": {"merging": true, "timeLimitSec": 60}}' \
    "$(cat /tmp/introspect-problem.json)" > /tmp/introspect-request.json
curl -sf -X POST --data @/tmp/introspect-request.json \
    http://127.0.0.1:18093/v1/place > /tmp/introspect-place.json &
curl_pid=$!
# Scrape the live-solve endpoint while the request occupies its
# (artificially stretched) slot: a snapshot with a gap field must show.
solvez_ok=0
for _ in $(seq 1 100); do
    curl -sf http://127.0.0.1:18093/debug/solvez > /tmp/solvez.json 2>/dev/null || true
    if grep -q '"trace_id"' /tmp/solvez.json && grep -q '"gap"' /tmp/solvez.json; then
        solvez_ok=1
        break
    fi
    sleep 0.1
done
[ "$solvez_ok" = 1 ] || { echo "introspection smoke: no live /debug/solvez snapshot"; fail=1; }
wait "$curl_pid" || { echo "introspection smoke: place request failed"; fail=1; }
grep -q '"status":"optimal"' /tmp/introspect-place.json \
    || { echo "introspection smoke: place not optimal"; fail=1; }
curl -sf http://127.0.0.1:18093/debug/flightz | /tmp/traceview -check >/dev/null \
    || { echo "introspection smoke: flightz dump failed traceview -check"; fail=1; }
# Deadline-killed solve: a tight-capacity instance (the hard Fig. 7
# regime) killed at 250ms must leave its per-request flight ring in
# -flight-dir, and traceview must parse it as a partial trace.
go run ./cmd/benchgen -k 4 -rules 20 -capacity 25 -out /tmp/introspect-tight-problem.json || fail=1
printf '{"problem": %s, "options": {"merging": true, "timeLimitSec": 0.25}}' \
    "$(cat /tmp/introspect-tight-problem.json)" > /tmp/introspect-tight.json
curl -sf -X POST --data @/tmp/introspect-tight.json \
    http://127.0.0.1:18093/v1/place > /tmp/introspect-killed.json \
    || { echo "introspection smoke: tight place request failed"; fail=1; }
if grep -q '"stop_reason":"deadline"' /tmp/introspect-killed.json; then
    dump=$(ls -t /tmp/flight-smoke/flight-req-*.jsonl 2>/dev/null | head -1)
    [ -s "$dump" ] || { echo "introspection smoke: no flight dump in /tmp/flight-smoke"; fail=1; }
    /tmp/traceview -check "$dump" | grep -q 'partial' \
        || { echo "introspection smoke: dump not a partial trace"; fail=1; }
else
    echo "solve beat the 250ms deadline; skipping dump assertions"
fi
kill -TERM "$daemon_pid" 2>/dev/null
wait "$daemon_pid" 2>/dev/null || true

step "introspection: disabled-overhead gate"
go test -run 'TestDisabledIntrospectionOverheadSmoke' ./internal/ilp/ || fail=1

step "delta smoke (live session replay, byte-identity + loaddiff gates)"
/tmp/ruleplaced -addr 127.0.0.1:18092 >/tmp/ruleplaced-delta.log 2>&1 &
daemon_pid=$!
for _ in $(seq 1 50); do
    curl -sf http://127.0.0.1:18092/readyz >/dev/null && break
    sleep 0.1
done
/tmp/ruleload -target http://127.0.0.1:18092 -delta -seed 7 \
    -delta-steps 6 -delta-ingresses 4 -delta-rules 20 -quiet -out /tmp/delta.json || fail=1
/tmp/loaddiff -check /tmp/delta.json || fail=1
/tmp/loaddiff /tmp/delta.json /tmp/delta.json >/dev/null || fail=1
grep -q '"mismatched": 0' /tmp/delta.json || fail=1
curl -sf http://127.0.0.1:18092/metrics | grep -q 'rulefit_sessions_active 1' || fail=1
kill -TERM "$daemon_pid" 2>/dev/null
wait "$daemon_pid" 2>/dev/null || true

if [ "$mode" != "quick" ]; then
    step "go test -race"
    go test -race ./... || fail=1

    # Mirror of CI's fuzz-smoke job, shortened for local runs. Any new
    # crasher lands in testdata/fuzz/ — shrink it with cmd/diffcheck
    # -export and commit it under testdata/regressions/.
    step "fuzz smoke: ternary algebra"
    go test -fuzz FuzzTernaryOverlap -fuzztime 10s -run '^$' ./internal/match/ || fail=1

    step "fuzz smoke: spec parser"
    go test -fuzz FuzzSpecParse -fuzztime 10s -run '^$' ./internal/spec/ || fail=1

    step "fuzz smoke: differential placement"
    go test -fuzz FuzzPlaceDifferential -fuzztime 10s -run '^$' ./internal/diffcheck/ || fail=1

    step "fuzz smoke: session deltas"
    go test -fuzz FuzzSessionDelta -fuzztime 10s -run '^$' ./internal/daemon/ || fail=1

    step "delta differential suite (race)"
    go test -race -run 'TestQuickDeltaDifferentialSuite|TestDeltaRegressions|TestDelta' ./internal/diffcheck/ || fail=1
fi

# Mirror of CI's nightly paper-scale-smoke job (takes minutes; off by
# default). One Fig. 7 point at -scale 0.5 must finish inside the
# budget and diff clean against the committed smoke baseline.
if [ "${RULEFIT_PAPER_SMOKE:-0}" = "1" ]; then
    step "paper-scale smoke: one Fig. 7 point at -scale 0.5"
    go build -o /tmp/rulefit-experiments-smoke ./cmd/experiments || fail=1
    timeout 600 /tmp/rulefit-experiments-smoke -scale 0.5 -rules 25 -caps 100 \
        -seeds 1 -workers 1 -timeout 300s -json /tmp/paper-smoke.json || fail=1

    step "paper-scale smoke: benchdiff gate vs committed baseline"
    go run ./cmd/benchdiff -threshold 1.0 -min-wall-ms 500 \
        scripts/paper-smoke-baseline.json /tmp/paper-smoke.json || fail=1
fi

echo
if [ "$fail" -ne 0 ]; then
    echo "CHECK FAILED"
    exit 1
fi
echo "all checks passed"
