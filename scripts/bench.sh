#!/usr/bin/env bash
# bench.sh — run the tracked benchmark sweep and write a machine-readable
# perf-trajectory report.
#
#   ./scripts/bench.sh                 # BENCH_<UTC stamp>.json in the repo root
#   ./scripts/bench.sh out/dir         # write the report under out/dir
#   WORKERS=1,4 SEEDS=1 ./scripts/bench.sh   # override sweep knobs
#
# The report (schema rulefit-bench/v1, see internal/bench/report.go and
# EXPERIMENTS.md) records the host, the workload config, per-run wall
# time / nodes / simplex iterations, and the speedup of each solver
# worker count against the first. Commit the JSON so the perf trajectory
# is comparable across PRs — but only compare wall-clock numbers taken
# on the same hardware (check the num_cpu/go_version fields first).
set -euo pipefail
cd "$(dirname "$0")/.."

outdir="${1:-.}"
workers="${WORKERS:-1,4}"
seeds="${SEEDS:-1}"
timeout="${TIMEOUT:-120s}"
stamp=$(date -u +%Y%m%dT%H%M%SZ)
out="$outdir/BENCH_${stamp}.json"

go build -o /tmp/rulefit-experiments ./cmd/experiments
/tmp/rulefit-experiments -scale small -seeds "$seeds" -timeout "$timeout" \
    -workers "$workers" -json "$out"

echo "wrote $out"
