// Package rulefit is an adaptable rule placement engine for
// software-defined networks, reproducing "An Adaptable Rule Placement
// for Software-Defined Networks" (DSN 2014).
//
// Given a switch topology, a routing (one set of paths per network
// ingress), and a prioritized firewall policy per ingress, rulefit
// compiles the policies down to per-switch TCAM tables such that
//
//   - priority semantics are preserved (every DROP rule travels with its
//     higher-priority overlapping PERMIT rules — the rule dependency
//     constraint),
//   - every DROP rule guards every path from its ingress (the path
//     dependency constraint),
//   - no switch exceeds its rule capacity,
//
// while minimizing the total number of installed rules (or a
// traffic-weighted alternative). Placement is exact: the engine proves
// optimality or infeasibility using either a built-in ILP solver or a
// built-in CDCL/pseudo-Boolean solver.
//
// # Quick start
//
//	topo, _ := rulefit.FatTree(4, 200, 2)
//	pairs, _ := rulefit.RandomPairs(topo, 32, 1)
//	rt, _ := rulefit.BuildRouting(topo, pairs, 1)
//	pol := rulefit.GeneratePolicy(0, rulefit.GenConfig{NumRules: 40, Seed: 7})
//	prob := &rulefit.Problem{Network: topo, Routing: rt, Policies: []*rulefit.Policy{pol}}
//	pl, err := rulefit.Place(prob, rulefit.Options{})
//	tables, err := pl.BuildTables(prob)
//
// See examples/ for runnable end-to-end scenarios.
package rulefit

import (
	"rulefit/internal/core"
	"rulefit/internal/dataplane"
	"rulefit/internal/match"
	"rulefit/internal/policy"
	"rulefit/internal/routing"
	"rulefit/internal/topology"
	"rulefit/internal/verify"
)

// Match types.
type (
	// TernaryMatch is a {0,1,*} match field over packet header bits.
	TernaryMatch = match.Ternary
	// FiveTuple builds header matches from prefix/port/proto fields.
	FiveTuple = match.FiveTuple
	// Header is a concrete 5-tuple packet header.
	Header = match.Header
)

// HeaderWidth is the bit width of the 5-tuple header model.
const HeaderWidth = match.HeaderWidth

// Match constructors.
var (
	// NewTernary returns an all-wildcard match of the given bit width.
	NewTernary = match.NewTernary
	// ParseTernary parses a {0,1,*} pattern string.
	ParseTernary = match.ParseTernary
	// MustParseTernary is ParseTernary that panics on error.
	MustParseTernary = match.MustParseTernary
	// DstPrefixTernary matches a destination IPv4 prefix.
	DstPrefixTernary = match.DstPrefixTernary
	// SrcPrefixTernary matches a source IPv4 prefix.
	SrcPrefixTernary = match.SrcPrefixTernary
	// SampleHeader draws a random header matching a ternary.
	SampleHeader = match.SampleHeader
)

// Topology types.
type (
	// Network is the switch graph with capacities and external ports.
	Network = topology.Network
	// Switch is one capacity-limited data-plane element.
	Switch = topology.Switch
	// SwitchID identifies a switch.
	SwitchID = topology.SwitchID
	// PortID identifies a network ingress/egress port.
	PortID = topology.PortID
	// ExternalPort is an ingress/egress attachment point.
	ExternalPort = topology.ExternalPort
)

// Topology constructors.
var (
	// NewNetwork returns an empty topology.
	NewNetwork = topology.NewNetwork
	// FatTree builds the k-ary fat-tree used by the paper's evaluation.
	FatTree = topology.FatTree
	// LeafSpine builds a two-tier Clos fabric.
	LeafSpine = topology.LeafSpine
	// Linear builds a chain topology.
	Linear = topology.Linear
	// Ring builds a cycle topology.
	Ring = topology.Ring
	// Grid builds a rectangular mesh.
	Grid = topology.Grid
	// RandomConnected builds a seeded random connected graph.
	RandomConnected = topology.RandomConnected
	// Fig3 builds the paper's illustrative example network.
	Fig3 = topology.Fig3
)

// Routing types.
type (
	// Routing maps each ingress to its path set P_i.
	Routing = routing.Routing
	// Path is one route p_{i,j}.
	Path = routing.Path
	// PathSet is all paths from one ingress.
	PathSet = routing.PathSet
	// PortPair names an ingress/egress pair to route.
	PortPair = routing.PortPair
)

// Routing constructors.
var (
	// NewRouting returns an empty routing policy.
	NewRouting = routing.NewRouting
	// BuildRouting routes port pairs along seeded random shortest paths.
	BuildRouting = routing.BuildRouting
	// RandomPairs draws seeded random ingress/egress pairs.
	RandomPairs = routing.RandomPairs
	// SpreadPairs assigns paths evenly across the first N ingresses.
	SpreadPairs = routing.SpreadPairs
	// AssignTrafficSlices gives every path a destination-prefix slice.
	AssignTrafficSlices = routing.AssignTrafficSlices
	// EgressPrefix returns the prefix AssignTrafficSlices gives a port.
	EgressPrefix = routing.EgressPrefix
	// ShortestPath returns a deterministic shortest path.
	ShortestPath = routing.ShortestPath
	// KShortestPaths returns up to k loopless shortest paths (Yen).
	KShortestPaths = routing.KShortestPaths
	// BuildMultipathRouting routes each pair over k shortest paths.
	BuildMultipathRouting = routing.BuildMultipathRouting
)

// Policy types.
type (
	// Policy is a prioritized ACL rule list attached to an ingress.
	Policy = policy.Policy
	// Rule is one ACL rule (match, action, priority).
	Rule = policy.Rule
	// Action is PERMIT or DROP.
	Action = policy.Action
	// GenConfig parameterizes the synthetic policy generator.
	GenConfig = policy.GenConfig
)

// Policy actions.
const (
	Permit = policy.Permit
	Drop   = policy.Drop
)

// Policy constructors.
var (
	// NewPolicy builds a validated policy from rules in any order.
	NewPolicy = policy.New
	// GeneratePolicy synthesizes a ClassBench-style firewall policy.
	GeneratePolicy = policy.Generate
	// GenerateBlacklist builds network-wide mergeable DROP rules.
	GenerateBlacklist = policy.GenerateBlacklist
	// WithBlacklist prepends blacklist rules to a policy.
	WithBlacklist = policy.WithBlacklist
	// RemoveRedundant eliminates rules that cannot affect any packet.
	RemoveRedundant = policy.RemoveRedundant
)

// Placement types.
type (
	// Problem is a placement instance (network + routing + policies).
	Problem = core.Problem
	// Options configures the placement engine.
	Options = core.Options
	// Placement is a placement result.
	Placement = core.Placement
	// Backend selects ILP or SAT solving.
	Backend = core.Backend
	// Objective selects the optimization goal.
	Objective = core.Objective
	// Status is the placement outcome.
	Status = core.Status
	// Monitor declares a packet-monitoring point placement must respect.
	Monitor = core.Monitor
)

// Placement enums.
const (
	BackendILP = core.BackendILP
	BackendSAT = core.BackendSAT

	ObjTotalRules       = core.ObjTotalRules
	ObjTraffic          = core.ObjTraffic
	ObjWeightedSwitches = core.ObjWeightedSwitches
	ObjMinMaxLoad       = core.ObjMinMaxLoad

	StatusOptimal    = core.StatusOptimal
	StatusFeasible   = core.StatusFeasible
	StatusInfeasible = core.StatusInfeasible
	StatusLimit      = core.StatusLimit
)

// Placement entry points.
var (
	// Place solves a placement problem exactly.
	Place = core.Place
	// GreedyPlace runs the fast ingress-first heuristic.
	GreedyPlace = core.GreedyPlace
	// ReplicateEverywhere runs the p-x-r replication baseline.
	ReplicateEverywhere = core.ReplicateEverywhere
	// PXRBound computes the naive replication rule count.
	PXRBound = core.PXRBound
	// SpareCapacities reports per-switch slack after a placement.
	SpareCapacities = core.SpareCapacities
	// IncrementalAdd places new policies into spare capacity.
	IncrementalAdd = core.IncrementalAdd
	// IncrementalReroute re-places one policy after a routing change.
	IncrementalReroute = core.IncrementalReroute
	// WriteSMTLIB dumps the satisfiability encoding as SMT-LIB 2.
	WriteSMTLIB = core.WriteSMTLIB
)

// Data plane and verification types.
type (
	// Deployment is the compiled per-switch table set.
	Deployment = dataplane.Network
	// TableEntry is one installed TCAM rule.
	TableEntry = dataplane.Entry
	// Violation is a semantic mismatch found by verification.
	Violation = verify.Violation
	// VerifyConfig controls verification effort.
	VerifyConfig = verify.Config
)

// Verification entry points.
var (
	// VerifySemantics samples packets to compare deployment vs policy.
	VerifySemantics = verify.Semantics
	// VerifyExhaustive checks every header of narrow test policies.
	VerifyExhaustive = verify.Exhaustive
	// VerifyCapacities audits per-switch TCAM usage.
	VerifyCapacities = verify.Capacities
)
