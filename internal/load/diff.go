package load

import (
	"fmt"
	"io"
	"math"
	"sort"

	"rulefit/internal/bench"
)

// This file implements the load-report comparator behind cmd/loaddiff.
// It reuses the bench suite's noise model (bench.DiffOptions.Classify:
// a status-rank change trumps the wall clock, otherwise a relative
// threshold plus an absolute floor decide) and adds the load-specific
// checks: workload-fingerprint alignment, per-request placement drift
// (content hashes must match byte-for-byte between runs of the same
// workload), and shed-point knee movement for sweep reports.

// RequestDiff is one aligned request pair (or an unmatched request),
// keyed by issue index.
type RequestDiff struct {
	Key     string        `json:"key"`
	Verdict bench.Verdict `json:"verdict"`
	// OldWallMS/NewWallMS are the client-observed latencies; the
	// absent side is 0 for added/removed requests.
	OldWallMS float64 `json:"old_wall_ms"`
	NewWallMS float64 `json:"new_wall_ms"`
	// Ratio is NewWallMS/OldWallMS (0 when not comparable).
	Ratio float64 `json:"ratio,omitempty"`
	// PlacementDrift reports that the placement content hash changed:
	// the answer itself differs, so the wall delta is not noise.
	PlacementDrift bool   `json:"placement_drift,omitempty"`
	OldHash        string `json:"old_hash,omitempty"`
	NewHash        string `json:"new_hash,omitempty"`
	// OldStatus/NewStatus are set when the outcome changed.
	OldStatus string `json:"old_status,omitempty"`
	NewStatus string `json:"new_status,omitempty"`
}

// Diff is the comparison of two load reports.
type Diff struct {
	OldTimestamp string            `json:"old_timestamp"`
	NewTimestamp string            `json:"new_timestamp"`
	Options      bench.DiffOptions `json:"options"`
	// HostMismatch warns that the reports were taken on different
	// hosts or Go versions, making wall clocks incomparable.
	HostMismatch bool `json:"host_mismatch,omitempty"`
	// WorkloadMismatch warns that the two reports replayed different
	// workloads (fingerprints differ); aligned indices then compare
	// unrelated requests, so placement drift is not reported.
	WorkloadMismatch bool   `json:"workload_mismatch,omitempty"`
	OldFingerprint   string `json:"old_fingerprint,omitempty"`
	NewFingerprint   string `json:"new_fingerprint,omitempty"`
	// ModeMismatch warns the run modes differ (closed vs open vs
	// sweep).
	ModeMismatch bool          `json:"mode_mismatch,omitempty"`
	Requests     []RequestDiff `json:"requests,omitempty"`
	// Totals by verdict over aligned requests.
	Improved  int `json:"improved"`
	Unchanged int `json:"unchanged"`
	Regressed int `json:"regressed"`
	Added     int `json:"added"`
	Removed   int `json:"removed"`
	// Drifted counts aligned requests whose placement hash changed.
	Drifted int `json:"drifted"`
	// Shed movement across the whole run.
	OldShed int `json:"old_shed"`
	NewShed int `json:"new_shed"`
	// Percentile movement (ms) for quick scanning.
	OldP50MS float64 `json:"old_p50_ms"`
	NewP50MS float64 `json:"new_p50_ms"`
	OldP99MS float64 `json:"old_p99_ms"`
	NewP99MS float64 `json:"new_p99_ms"`
	// GeomeanSpeedup is the geometric mean of old/new wall ratios over
	// aligned requests (> 1 means the new run is faster).
	GeomeanSpeedup float64 `json:"geomean_speedup,omitempty"`
	// Knee movement for sweep reports (0s otherwise). A lower new knee
	// is a capacity regression.
	OldKnee int `json:"old_knee,omitempty"`
	NewKnee int `json:"new_knee,omitempty"`
	// KneeRegressed reports that the new sweep saturated at a lower
	// concurrency than the old one.
	KneeRegressed bool `json:"knee_regressed,omitempty"`
}

// HasRegressions reports whether any aligned request regressed, any
// placement drifted, or the sweep knee moved down — the conditions
// under which cmd/loaddiff exits nonzero.
func (d *Diff) HasRegressions() bool {
	return d.Regressed > 0 || d.Drifted > 0 || d.KneeRegressed
}

// CompareReports aligns two load reports request-by-request (by issue
// index) and classifies each pair with the shared bench noise model.
func CompareReports(old, new *Report, opts bench.DiffOptions) *Diff {
	d := &Diff{
		OldTimestamp: old.Timestamp,
		NewTimestamp: new.Timestamp,
		Options:      opts,
		HostMismatch: old.GOOS != new.GOOS || old.GOARCH != new.GOARCH ||
			old.NumCPU != new.NumCPU || old.GoVersion != new.GoVersion,
		WorkloadMismatch: old.Workload.Fingerprint != new.Workload.Fingerprint,
		OldFingerprint:   old.Workload.Fingerprint,
		NewFingerprint:   new.Workload.Fingerprint,
		ModeMismatch:     old.Config.Mode != new.Config.Mode,
		OldShed:          old.Shed,
		NewShed:          new.Shed,
		OldP50MS:         old.P50MS,
		NewP50MS:         new.P50MS,
		OldP99MS:         old.P99MS,
		NewP99MS:         new.P99MS,
	}
	oldReqs, newReqs := indexRequests(old), indexRequests(new)
	keys := make([]int, 0, len(oldReqs)+len(newReqs))
	for k := range oldReqs {
		keys = append(keys, k)
	}
	for k := range newReqs {
		if _, ok := oldReqs[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	logSum, ratios := 0.0, 0
	for _, k := range keys {
		o, haveOld := oldReqs[k]
		n, haveNew := newReqs[k]
		rd := RequestDiff{
			Key:       fmt.Sprintf("i%d/s%d", k, seedOf(o, n)),
			OldWallMS: o.WallMS,
			NewWallMS: n.WallMS,
		}
		switch {
		case !haveOld:
			rd.Verdict = bench.VerdictAdded
			rd.NewStatus = n.Status
			d.Added++
		case !haveNew:
			rd.Verdict = bench.VerdictRemoved
			rd.OldStatus = o.Status
			d.Removed++
		default:
			rd.Verdict = opts.Classify(o.Status, n.Status, o.WallMS, n.WallMS)
			if o.Status != n.Status {
				rd.OldStatus, rd.NewStatus = o.Status, n.Status
			}
			// Placement drift is only meaningful within one workload:
			// across workloads, aligned indices solve different
			// instances.
			if !d.WorkloadMismatch && o.PlacementHash != n.PlacementHash {
				rd.PlacementDrift = true
				rd.OldHash, rd.NewHash = o.PlacementHash, n.PlacementHash
				d.Drifted++
			}
			if o.WallMS > 0 {
				rd.Ratio = n.WallMS / o.WallMS
			}
			if o.WallMS > 0 && n.WallMS > 0 {
				logSum += math.Log(o.WallMS / n.WallMS)
				ratios++
			}
			switch rd.Verdict {
			case bench.VerdictImproved:
				d.Improved++
			case bench.VerdictRegressed:
				d.Regressed++
			default:
				d.Unchanged++
			}
		}
		d.Requests = append(d.Requests, rd)
	}
	if ratios > 0 {
		d.GeomeanSpeedup = math.Exp(logSum / float64(ratios))
	}
	if old.Sweep != nil && new.Sweep != nil {
		d.OldKnee = old.Sweep.KneeConcurrency
		d.NewKnee = new.Sweep.KneeConcurrency
		d.KneeRegressed = new.Sweep.KneeConcurrency < old.Sweep.KneeConcurrency
	}
	return d
}

// indexRequests keys a report's requests by issue index.
func indexRequests(r *Report) map[int]RequestRecord {
	out := make(map[int]RequestRecord, len(r.Requests))
	for _, req := range r.Requests {
		out[req.Index] = req
	}
	return out
}

// seedOf prefers the seed of whichever side recorded one (added and
// removed requests have a zero-value counterpart).
func seedOf(o, n RequestRecord) int64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return n.Seed
}

// Render writes the human-readable comparison. Scripts may grep the
// "RESULT:" trailer; cmd/loaddiff's exit status mirrors it.
func (d *Diff) Render(w io.Writer) error {
	fmt.Fprintf(w, "loaddiff: %s -> %s\n", d.OldTimestamp, d.NewTimestamp)
	fmt.Fprintf(w, "threshold: %.0f%% relative, %.1f ms absolute\n",
		d.Options.WallThreshold*100, d.Options.MinWallMS)
	if d.HostMismatch {
		fmt.Fprintf(w, "WARNING: host or Go version differs between reports; wall clocks are not comparable\n")
	}
	if d.WorkloadMismatch {
		fmt.Fprintf(w, "WARNING: workload fingerprints differ (%s -> %s); aligned requests replay different instances, placement drift not checked\n",
			d.OldFingerprint, d.NewFingerprint)
	}
	if d.ModeMismatch {
		fmt.Fprintf(w, "WARNING: run modes differ; throughput numbers are not comparable\n")
	}
	for _, r := range d.Requests {
		switch r.Verdict {
		case bench.VerdictAdded:
			fmt.Fprintf(w, "  added     %-16s %8.1f ms\n", r.Key, r.NewWallMS)
		case bench.VerdictRemoved:
			fmt.Fprintf(w, "  removed   %-16s %8.1f ms\n", r.Key, r.OldWallMS)
		case bench.VerdictUnchanged:
			// Quiet unless the placement drifted.
			if r.PlacementDrift {
				fmt.Fprintf(w, "  drift     %-16s hash %s -> %s\n", r.Key, r.OldHash, r.NewHash)
			}
		default:
			line := fmt.Sprintf("  %-9s %-16s %8.1f -> %8.1f ms (%.2fx)",
				r.Verdict, r.Key, r.OldWallMS, r.NewWallMS, r.Ratio)
			if r.OldStatus != r.NewStatus {
				line += fmt.Sprintf("  status %s -> %s", r.OldStatus, r.NewStatus)
			}
			if r.PlacementDrift {
				line += fmt.Sprintf("  hash %s -> %s", r.OldHash, r.NewHash)
			}
			fmt.Fprintln(w, line)
		}
	}
	fmt.Fprintf(w, "shed: %d -> %d\n", d.OldShed, d.NewShed)
	fmt.Fprintf(w, "p50: %.1f -> %.1f ms, p99: %.1f -> %.1f ms\n",
		d.OldP50MS, d.NewP50MS, d.OldP99MS, d.NewP99MS)
	if d.GeomeanSpeedup > 0 {
		fmt.Fprintf(w, "geomean speedup: %.2fx\n", d.GeomeanSpeedup)
	}
	if d.OldKnee > 0 || d.NewKnee > 0 {
		fmt.Fprintf(w, "knee: %d -> %d concurrent\n", d.OldKnee, d.NewKnee)
	}
	verdict := "PASS"
	if d.HasRegressions() {
		verdict = "FAIL"
	}
	_, err := fmt.Fprintf(w, "RESULT: %s (%d improved, %d unchanged, %d regressed, %d added, %d removed, %d drifted)\n",
		verdict, d.Improved, d.Unchanged, d.Regressed, d.Added, d.Removed, d.Drifted)
	return err
}
