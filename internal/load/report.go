// Package load is the deterministic load harness behind cmd/ruleload:
// it replays randgen-seeded placement workloads against a live
// ruleplaced daemon (or in-process, for CI) in closed-loop
// (fixed-concurrency) or open-loop (fixed-RPS) mode, records
// client-side latency into rolling windowed histograms for live
// status, and emits a machine-readable rulefit-load/v1 report whose
// per-request trace IDs join 1:1 with the daemon's request logs.
// A sweep mode steps offered concurrency up to the admission knee and
// records served capacity (see sweep.go).
//
// Determinism story: the workload is a pure function of the seed, and
// every response's placement is hashed so two runs of the same
// workload can be diffed byte-for-byte (cmd/loaddiff). Wall-clock
// fields are observational and compared only through the shared
// bench noise model.
package load

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"rulefit/internal/obs"
)

// ReportSchema identifies the rulefit-load/v1 layout; bump it on any
// incompatible field change so comparison tools can tell.
const ReportSchema = "rulefit-load/v1"

// Report is the machine-readable record of one load run. Wall-clock
// fields are only comparable across runs on the same host; the host
// fields exist so a comparison can check that first.
type Report struct {
	Schema     string `json:"schema"`
	Timestamp  string `json:"timestamp"` // RFC 3339, UTC
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Config   ConfigRecord   `json:"config"`
	Workload WorkloadRecord `json:"workload"`

	// ElapsedSec and AchievedRPS measure the run; observational.
	ElapsedSec  float64 `json:"elapsed_sec"`
	AchievedRPS float64 `json:"achieved_rps"`

	// Outcome counts. Total = OK + Shed + Errors.
	Total  int `json:"total"`
	OK     int `json:"ok"`
	Shed   int `json:"shed"`
	Errors int `json:"errors"`

	// Latency is the client-observed request latency distribution
	// (seconds) over the whole run; the percentile fields are read off
	// it for quick scanning.
	Latency obs.HistogramSnapshot `json:"latency_seconds_hist"`
	P50MS   float64               `json:"p50_ms"`
	P90MS   float64               `json:"p90_ms"`
	P99MS   float64               `json:"p99_ms"`
	P999MS  float64               `json:"p999_ms"`

	// Strata break latency down by instance-size stratum.
	Strata []StratumRecord `json:"strata,omitempty"`

	// Requests holds one record per issued request, in issue order.
	// Sweep runs omit it (the sweep steps summarize instead).
	Requests []RequestRecord `json:"requests,omitempty"`

	// Sweep is present on shed-point sweep runs.
	Sweep *SweepRecord `json:"sweep,omitempty"`

	// Delta is present on delta-replay runs (the warm-vs-cold session
	// SLO measurement; see delta.go).
	Delta *DeltaRecord `json:"delta,omitempty"`
}

// ConfigRecord records the harness parameters of the run.
type ConfigRecord struct {
	Seed         int64   `json:"seed"`
	Requests     int     `json:"requests"`
	Repeat       int     `json:"repeat"`
	Concurrency  int     `json:"concurrency"`
	RPS          float64 `json:"rps,omitempty"`
	DurationSec  float64 `json:"duration_sec,omitempty"`
	Merging      bool    `json:"merging"`
	TimeLimitSec float64 `json:"time_limit_sec"`
	// Mode is "closed" (fixed concurrency), "open" (fixed RPS),
	// "sweep" (shed-point search), or "delta" (session warm-vs-cold
	// replay).
	Mode string `json:"mode"`
	// Target is "http" (a live daemon) or "inprocess" (core.Place).
	Target string `json:"target"`
}

// WorkloadRecord fingerprints the generated workload: identical seeds
// and request counts produce identical fingerprints, so comparison
// tools can refuse cross-workload diffs.
type WorkloadRecord struct {
	Seed        int64  `json:"seed"`
	Requests    int    `json:"requests"`
	Fingerprint string `json:"fingerprint"`
}

// StratumRecord is the latency distribution of one instance-size
// stratum.
type StratumRecord struct {
	Stratum  string                `json:"stratum"`
	Requests int                   `json:"requests"`
	Latency  obs.HistogramSnapshot `json:"latency_seconds_hist"`
}

// RequestRecord is one issued request: identity (index, seed,
// stratum), the trace ID echoed by the server, outcome, measured
// latency, the placement content hash, and the server's phase
// breakdown when it sent one.
type RequestRecord struct {
	Index   int    `json:"index"`
	Seed    int64  `json:"seed"`
	Stratum string `json:"stratum"`
	TraceID string `json:"trace_id"`
	Code    int    `json:"code"`
	// Status is the placement status ("optimal", "feasible",
	// "infeasible", "limit") or a transport outcome ("shed",
	// "bad_request", "error").
	Status string  `json:"status"`
	WallMS float64 `json:"wall_ms"`
	// PlacementHash is the FNV-1a hash of the placement JSON bytes
	// ("" for non-placement outcomes). Byte-identical placements hash
	// identically, so report diffs catch placement drift.
	PlacementHash string `json:"placement_hash,omitempty"`
	// Phases is the server-side wall attribution parsed from the
	// Server-Timing header (or read from the span tree in-process).
	Phases []PhaseMS `json:"phases,omitempty"`
	Error  string    `json:"error,omitempty"`
}

// PhaseMS is one attributed phase of a request's server-side wall
// time, in pipeline order.
type PhaseMS struct {
	Name string  `json:"name"`
	MS   float64 `json:"ms"`
}

// SweepRecord summarizes a shed-point sweep: the measured steps and
// the knee they bracket.
type SweepRecord struct {
	// ShedThreshold is the shed rate above which a concurrency level
	// counts as saturated.
	ShedThreshold float64 `json:"shed_threshold"`
	// StepRequests is the number of requests measured per step.
	StepRequests int `json:"step_requests"`
	// MaxConcurrency caps the doubling phase.
	MaxConcurrency int `json:"max_concurrency"`
	// KneeConcurrency is the largest offered concurrency whose shed
	// rate stayed below the threshold.
	KneeConcurrency int `json:"knee_concurrency"`
	// CapacityRPS is the achieved request rate at the knee;
	// observational.
	CapacityRPS float64 `json:"capacity_rps"`
	// Saturated is false when even MaxConcurrency never crossed the
	// threshold (the knee is then a lower bound).
	Saturated bool        `json:"saturated"`
	Steps     []SweepStep `json:"steps"`
}

// SweepStep is one measured concurrency level.
type SweepStep struct {
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	Shed        int     `json:"shed"`
	Errors      int     `json:"errors,omitempty"`
	ShedRate    float64 `json:"shed_rate"`
	AchievedRPS float64 `json:"achieved_rps"`
}

// WriteJSON writes the report, indented for diff-friendly commits.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport loads and schema-checks one rulefit-load/v1 file.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, ReportSchema)
	}
	return &r, nil
}
