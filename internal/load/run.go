package load

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rulefit/internal/obs"
	"rulefit/internal/randgen"
)

// Config tunes one load run. The zero value is not a useful workload:
// production call sites must bound the run by stating Requests (or
// Duration for open-loop runs) explicitly — the optzero analyzer
// flags Config literals that set neither.
type Config struct {
	// Seed derives the workload: one randgen.FromSeed instance per
	// request, strided so adjacent requests differ in shape.
	Seed int64
	// Requests is the number of distinct workload instances (default
	// 16); with Repeat it bounds the replay length.
	Requests int
	// Repeat replays the workload this many times (default 1).
	Repeat int
	// Concurrency is the closed-loop worker count (default 1).
	// Ignored in open-loop mode.
	Concurrency int
	// RPS > 0 selects open-loop mode: arrivals are paced at this rate
	// regardless of completions.
	RPS float64
	// Duration caps an open-loop run's issuing phase (0 = issue all
	// Requests*Repeat arrivals).
	Duration time.Duration
	// Merging and TimeLimitSec are the per-request solver options
	// (TimeLimitSec default 60).
	Merging      bool
	TimeLimitSec float64
	// Status, when non-nil, receives one live line per StatusInterval
	// (achieved RPS, in-flight, outcome counts, window percentiles).
	Status io.Writer
	// StatusInterval is the live-line and window-rotation cadence
	// (default 1s).
	StatusInterval time.Duration
	// WindowIntervals is the sliding-window ring size for the live
	// percentiles (default 5 intervals).
	WindowIntervals int
	// Buckets is the client latency histogram layout (default
	// 0.1ms..~52s log-spaced).
	Buckets obs.HistogramOpts
}

// latencyBuckets is the default client-side latency layout.
var latencyBuckets = obs.HistogramOpts{Start: 0.0001, Factor: 2, Count: 20}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Requests <= 0 {
		c.Requests = 16
	}
	if c.Repeat <= 0 {
		c.Repeat = 1
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 1
	}
	if c.TimeLimitSec <= 0 {
		c.TimeLimitSec = 60
	}
	if c.StatusInterval <= 0 {
		c.StatusInterval = time.Second
	}
	if c.WindowIntervals <= 0 {
		c.WindowIntervals = 5
	}
	//lint:optzero zero-value comparison, not a histogram construction
	if c.Buckets == (obs.HistogramOpts{}) {
		c.Buckets = latencyBuckets
	}
	return c
}

// progress is the shared live-status state of one run.
type progress struct {
	win      *obs.Window
	inflight atomic.Int64
	done     atomic.Int64
	ok       atomic.Int64
	shed     atomic.Int64
	errs     atomic.Int64
}

// record folds one result into the counters and the latency window.
func (pr *progress) record(res Result) {
	pr.win.Observe(res.WallMS / 1e3)
	pr.done.Add(1)
	switch {
	case res.Code == 200:
		pr.ok.Add(1)
	case res.Status == "shed":
		pr.shed.Add(1)
	default:
		pr.errs.Add(1)
	}
}

// statusLine renders one live interval line.
func (pr *progress) statusLine(elapsed time.Duration, intervalDone int64, interval time.Duration) string {
	snap := pr.win.Snapshot()
	q := func(p float64) float64 { return snap.Quantile(p) * 1e3 }
	return fmt.Sprintf(
		"t=%5.1fs rps=%6.1f inflight=%-3d done=%-5d ok=%-5d shed=%-4d err=%-3d p50=%.1fms p90=%.1fms p99=%.1fms p999=%.1fms",
		elapsed.Seconds(), float64(intervalDone)/interval.Seconds(),
		pr.inflight.Load(), pr.done.Load(), pr.ok.Load(), pr.shed.Load(), pr.errs.Load(),
		q(0.50), q(0.90), q(0.99), q(0.999))
}

// Run replays the workload per cfg and assembles the report.
// Closed-loop mode (RPS == 0) keeps Concurrency requests in flight;
// open-loop mode paces arrivals at RPS. ctx cancellation stops
// issuing and returns the partial report.
func Run(ctx context.Context, cfg Config, placer Placer) (*Report, error) {
	cfg = cfg.withDefaults()
	wl, err := BuildWorkload(cfg)
	if err != nil {
		return nil, err
	}
	total := cfg.Requests * cfg.Repeat
	results := make([]Result, total)
	pr := &progress{win: obs.NewWindow(obs.WindowOpts{Buckets: cfg.Buckets, Intervals: cfg.WindowIntervals})}

	start := time.Now()
	stopStatus := startStatus(cfg, pr, start)
	issue := func(i int) {
		item := wl.Items[i%len(wl.Items)]
		pr.inflight.Add(1)
		res := placer.Place(ctx, item)
		pr.inflight.Add(-1)
		res.Index = i
		results[i] = res
		pr.record(res)
	}

	if cfg.RPS > 0 {
		runOpenLoop(ctx, cfg, total, issue)
	} else {
		runClosedLoop(ctx, cfg, total, issue)
	}
	elapsed := time.Since(start)
	stopStatus()

	mode := "closed"
	if cfg.RPS > 0 {
		mode = "open"
	}
	rep := newReport(cfg, wl, mode, targetOf(placer))
	finishReport(rep, results[:int(pr.done.Load())], elapsed, pr.win.Total(), cfg)
	return rep, nil
}

// runClosedLoop keeps Concurrency workers pulling the next index.
func runClosedLoop(ctx context.Context, cfg Config, total int, issue func(int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= total || ctx.Err() != nil {
					return
				}
				issue(i)
			}
		}()
	}
	wg.Wait()
}

// runOpenLoop paces arrivals at cfg.RPS, independent of completions.
func runOpenLoop(ctx context.Context, cfg Config, total int, issue func(int)) {
	interval := time.Duration(float64(time.Second) / cfg.RPS)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var deadline <-chan time.Time
	if cfg.Duration > 0 {
		timer := time.NewTimer(cfg.Duration)
		defer timer.Stop()
		deadline = timer.C
	}
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		select {
		case <-tick.C:
		case <-deadline:
			wg.Wait()
			return
		case <-ctx.Done():
			wg.Wait()
			return
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			issue(i)
		}(i)
	}
	wg.Wait()
}

// startStatus launches the live-status printer; the returned func
// stops it. No-op when cfg.Status is nil.
func startStatus(cfg Config, pr *progress, start time.Time) func() {
	if cfg.Status == nil {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(cfg.StatusInterval)
		defer tick.Stop()
		var last int64
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				cur := pr.done.Load()
				fmt.Fprintln(cfg.Status, pr.statusLine(time.Since(start), cur-last, cfg.StatusInterval))
				last = cur
				pr.win.Rotate()
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// targetOf names the placer kind for the report config.
func targetOf(p Placer) string {
	if _, ok := p.(*inprocPlacer); ok {
		return "inprocess"
	}
	return "http"
}

// newReport stamps the report envelope (host fields, config,
// workload fingerprint).
func newReport(cfg Config, wl *Workload, mode, target string) *Report {
	return &Report{
		Schema: ReportSchema,
		//lint:detsource run metadata by design; diffs strip the timestamp
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Config: ConfigRecord{
			Seed:         cfg.Seed,
			Requests:     cfg.Requests,
			Repeat:       cfg.Repeat,
			Concurrency:  cfg.Concurrency,
			RPS:          cfg.RPS,
			DurationSec:  cfg.Duration.Seconds(),
			Merging:      cfg.Merging,
			TimeLimitSec: cfg.TimeLimitSec,
			Mode:         mode,
			Target:       target,
		},
		Workload: WorkloadRecord{
			Seed:        wl.Seed,
			Requests:    cfg.Requests,
			Fingerprint: wl.Fingerprint,
		},
	}
}

// finishReport folds the measured results into the report body.
func finishReport(rep *Report, results []Result, elapsed time.Duration, latency obs.HistogramSnapshot, cfg Config) {
	//lint:detsource measured run length is the point of this field
	rep.ElapsedSec = elapsed.Seconds()
	if rep.ElapsedSec > 0 {
		rep.AchievedRPS = float64(len(results)) / rep.ElapsedSec
	}
	rep.Latency = latency
	rep.P50MS = latency.Quantile(0.50) * 1e3
	rep.P90MS = latency.Quantile(0.90) * 1e3
	rep.P99MS = latency.Quantile(0.99) * 1e3
	rep.P999MS = latency.Quantile(0.999) * 1e3

	strata := obs.NewLabeledHistogram(cfg.Buckets)
	counts := map[string]int{}
	for _, res := range results {
		rep.Total++
		switch {
		case res.Code == 200:
			rep.OK++
		case res.Status == "shed":
			rep.Shed++
		default:
			rep.Errors++
		}
		item := itemIdentity(cfg, res.Index)
		strata.Observe(item.stratum, res.WallMS/1e3)
		counts[item.stratum]++
		rep.Requests = append(rep.Requests, RequestRecord{
			Index:   res.Index,
			Seed:    item.seed,
			Stratum: item.stratum,
			TraceID: res.TraceID,
			Code:    res.Code,
			Status:  res.Status,
			//lint:detsource measured latency is the point of this field
			WallMS:        res.WallMS,
			PlacementHash: res.PlacementHash,
			Phases:        res.Phases,
			Error:         res.Err,
		})
	}
	for _, member := range strata.Snapshot() {
		rep.Strata = append(rep.Strata, StratumRecord{
			Stratum:  member.Label,
			Requests: counts[member.Label],
			Latency:  member.Hist,
		})
	}
}

// itemIdentity recomputes a request's workload identity from its
// issue index (cheap: seed arithmetic plus the stratum bucketing of
// BuildWorkload, no instance generation).
type identity struct {
	seed    int64
	stratum string
}

func itemIdentity(cfg Config, index int) identity {
	i := index % cfg.Requests
	seed := cfg.Seed + int64(i)*seedStride
	return identity{seed: seed, stratum: stratumSeed(seed)}
}

// stratumCache memoizes stratumSeed: regenerating an instance per
// result would dominate report assembly.
var (
	stratumMu    sync.Mutex
	stratumCache = map[int64]string{}
)

// stratumSeed computes the stratum of the instance a seed generates.
func stratumSeed(seed int64) string {
	stratumMu.Lock()
	s, ok := stratumCache[seed]
	stratumMu.Unlock()
	if ok {
		return s
	}
	rules := 0
	if inst, err := randgen.Generate(randgen.FromSeed(seed)); err == nil {
		for _, p := range inst.Problem.Policies {
			rules += len(p.Rules)
		}
	}
	s = stratumOf(rules)
	stratumMu.Lock()
	stratumCache[seed] = s
	stratumMu.Unlock()
	return s
}
