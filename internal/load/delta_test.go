package load

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"rulefit/internal/daemon"
)

// smallDelta is a fast instance class for tests: 3 policies of 8
// rules each, still multi-policy so the session's decomposed warm
// path applies.
var smallDelta = DeltaOpts{Steps: 4, Ingresses: 3, RulesPerPolicy: 8, FatTreeK: 4}

// TestRunDeltaInProcess drives the in-process delta replay end to
// end: every step must pass the warm/cold identity check, land on the
// session's warm path, and the report must carry the paired
// warm/cold request records.
func TestRunDeltaInProcess(t *testing.T) {
	cfg := Config{Seed: 21}
	rep, err := RunDelta(context.Background(), cfg, smallDelta,
		NewInProcessSessionDriver(0, 0), NewInProcessPlacer(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Config.Mode != "delta" {
		t.Errorf("mode = %q, want delta", rep.Config.Mode)
	}
	if rep.Delta == nil {
		t.Fatal("report missing delta record")
	}
	if rep.Delta.Mismatched != 0 {
		t.Fatalf("%d steps broke warm/cold byte identity", rep.Delta.Mismatched)
	}
	if rep.Delta.Steps != smallDelta.Steps {
		t.Errorf("steps = %d, want %d", rep.Delta.Steps, smallDelta.Steps)
	}
	if got := rep.Delta.Paths["warm"]; got != smallDelta.Steps {
		t.Errorf("warm answers = %d of %d (paths %v)", got, smallDelta.Steps, rep.Delta.Paths)
	}
	if rep.Total != 2*smallDelta.Steps || rep.OK != rep.Total {
		t.Errorf("total/ok = %d/%d, want %d successful requests", rep.Total, rep.OK, 2*smallDelta.Steps)
	}
	for i, req := range rep.Requests {
		want := "delta-warm"
		if i%2 == 1 {
			want = "delta-cold"
		}
		if req.Stratum != want {
			t.Errorf("request %d stratum = %q, want %q", i, req.Stratum, want)
		}
		if req.PlacementHash == "" {
			t.Errorf("request %d has no placement hash", i)
		}
	}
	if rep.Delta.WarmP99MS <= 0 || rep.Delta.ColdP99MS <= 0 {
		t.Errorf("percentiles not populated: %+v", rep.Delta)
	}
}

// TestRunDeltaHTTPMatchesInProcess is the cross-target identity
// check: the HTTP session path and the in-process session path must
// serve byte-identical placements for the same delta workload.
func TestRunDeltaHTTPMatchesInProcess(t *testing.T) {
	base, _ := startDaemon(t, daemon.Config{MaxInFlight: 2})
	cfg := Config{Seed: 21}

	httpRep, err := RunDelta(context.Background(), cfg, smallDelta,
		NewHTTPSessionDriver(base, nil), NewHTTPPlacer(base, nil))
	if err != nil {
		t.Fatal(err)
	}
	inRep, err := RunDelta(context.Background(), cfg, smallDelta,
		NewInProcessSessionDriver(0, 0), NewInProcessPlacer(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if httpRep.Delta.Mismatched != 0 || inRep.Delta.Mismatched != 0 {
		t.Fatalf("identity mismatches: http %d, inprocess %d",
			httpRep.Delta.Mismatched, inRep.Delta.Mismatched)
	}
	if httpRep.Workload.Fingerprint != inRep.Workload.Fingerprint {
		t.Fatalf("same seed, fingerprints differ: %s vs %s",
			httpRep.Workload.Fingerprint, inRep.Workload.Fingerprint)
	}
	if len(httpRep.Requests) != len(inRep.Requests) {
		t.Fatalf("request counts differ: %d vs %d", len(httpRep.Requests), len(inRep.Requests))
	}
	for i := range httpRep.Requests {
		if h, p := httpRep.Requests[i].PlacementHash, inRep.Requests[i].PlacementHash; h != p {
			t.Errorf("request %d: http hash %s != inprocess hash %s", i, h, p)
		}
	}
}

// TestDeltaReportRoundTrip checks the delta record survives the
// report write/read cycle (what cmd/loaddiff -check consumes).
func TestDeltaReportRoundTrip(t *testing.T) {
	rep, err := RunDelta(context.Background(), Config{Seed: 3},
		DeltaOpts{Steps: 2, Ingresses: 2, RulesPerPolicy: 6, FatTreeK: 4},
		NewInProcessSessionDriver(0, 0), NewInProcessPlacer(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "delta.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Delta == nil {
		t.Fatal("delta record lost in round trip")
	}
	if got.Delta.Class != rep.Delta.Class || got.Delta.SpeedupP99 != rep.Delta.SpeedupP99 {
		t.Errorf("delta record drifted in round trip: %+v vs %+v", got.Delta, rep.Delta)
	}
}
