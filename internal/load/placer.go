package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"rulefit/internal/core"
	"rulefit/internal/daemon"
	"rulefit/internal/obs"
	"rulefit/internal/spec"
)

// Result is one completed request observation.
type Result struct {
	Index   int
	TraceID string
	Code    int
	Status  string
	// WallMS is the client-observed latency.
	WallMS float64
	// PlacementJSON is the raw placement body on success (nil
	// otherwise); PlacementHash its FNV-1a content hash.
	PlacementJSON []byte
	PlacementHash string
	// Phases is the server-side phase attribution (Server-Timing over
	// HTTP, the span tree in-process).
	Phases []PhaseMS
	Err    string
}

// Placer issues one workload item and reports the outcome. Both
// implementations fill the same Result fields, so reports from HTTP
// and in-process runs diff against each other.
type Placer interface {
	Place(ctx context.Context, item WorkItem) Result
}

// hashPlacement fingerprints placement bytes.
func hashPlacement(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// httpPlacer replays against a live daemon over HTTP.
type httpPlacer struct {
	base   string
	client *http.Client
}

// NewHTTPPlacer returns a placer posting to base+"/v1/place"
// (client nil = http.DefaultClient).
func NewHTTPPlacer(base string, client *http.Client) Placer {
	if client == nil {
		client = http.DefaultClient
	}
	return &httpPlacer{base: strings.TrimSuffix(base, "/"), client: client}
}

func (p *httpPlacer) Place(ctx context.Context, item WorkItem) Result {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.base+"/v1/place", bytes.NewReader(item.Body))
	if err != nil {
		return Result{Status: "error", Err: err.Error()}
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := p.client.Do(req)
	//lint:detsource measured latency is the point of this field
	wallMS := float64(time.Since(start).Microseconds()) / 1e3
	if err != nil {
		return Result{Status: "error", WallMS: wallMS, Err: err.Error()}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return Result{Status: "error", WallMS: wallMS, Err: err.Error()}
	}
	res := Result{
		Code:    resp.StatusCode,
		TraceID: resp.Header.Get("X-Rulefit-Trace-Id"),
		WallMS:  wallMS,
		Phases:  parseServerTiming(resp.Header.Get("Server-Timing")),
	}
	if resp.StatusCode == http.StatusOK {
		var ok struct {
			TraceID   string          `json:"trace_id"`
			Placement json.RawMessage `json:"placement"`
		}
		if err := json.Unmarshal(body, &ok); err != nil {
			res.Status, res.Err = "error", err.Error()
			return res
		}
		if res.TraceID == "" {
			res.TraceID = ok.TraceID
		}
		var pl struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(ok.Placement, &pl); err != nil {
			res.Status, res.Err = "error", err.Error()
			return res
		}
		res.Status = pl.Status
		res.PlacementJSON = bytes.TrimSpace(ok.Placement)
		res.PlacementHash = hashPlacement(res.PlacementJSON)
		return res
	}
	var eresp struct {
		TraceID string `json:"trace_id"`
		Error   string `json:"error"`
	}
	_ = json.Unmarshal(body, &eresp)
	if res.TraceID == "" {
		res.TraceID = eresp.TraceID
	}
	res.Err = eresp.Error
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		res.Status = "shed"
	case http.StatusBadRequest:
		res.Status = "bad_request"
	default:
		res.Status = "error"
	}
	return res
}

// parseServerTiming parses "name;dur=1.2, name2;dur=3" into phases,
// tolerating unknown parameters.
func parseServerTiming(h string) []PhaseMS {
	if h == "" {
		return nil
	}
	var out []PhaseMS
	for _, entry := range strings.Split(h, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ";")
		if parts[0] == "" {
			continue
		}
		p := PhaseMS{Name: parts[0]}
		for _, attr := range parts[1:] {
			if v, found := strings.CutPrefix(strings.TrimSpace(attr), "dur="); found {
				if ms, err := strconv.ParseFloat(v, 64); err == nil {
					p.MS = ms
				}
			}
		}
		out = append(out, p)
	}
	return out
}

// inprocPlacer replays through core.Place directly, mirroring the
// daemon's request pipeline (same spec build, same option policy,
// same wire projection) without HTTP. Used by CI and as the
// byte-identity reference: a served placement must hash identically
// to the in-process placement of the same item.
type inprocPlacer struct {
	defaultLimit time.Duration
	maxLimit     time.Duration
	seq          atomic.Uint64
}

// NewInProcessPlacer returns the in-process placer (zero limits pick
// the daemon defaults: 60s default, 10m cap).
func NewInProcessPlacer(defaultLimit, maxLimit time.Duration) Placer {
	return &inprocPlacer{defaultLimit: defaultLimit, maxLimit: maxLimit}
}

func (p *inprocPlacer) Place(_ context.Context, item WorkItem) Result {
	start := time.Now()
	finish := func(res Result) Result {
		//lint:detsource measured latency is the point of this field
		res.WallMS = float64(time.Since(start).Microseconds()) / 1e3
		return res
	}
	traceID := obs.TraceIDFor(p.seq.Add(1), item.Body)
	res := Result{TraceID: traceID}
	desc, err := spec.LoadBytes(item.Problem)
	if err != nil {
		res.Code, res.Status, res.Err = http.StatusBadRequest, "bad_request", err.Error()
		return finish(res)
	}
	prob, err := desc.Build()
	if err != nil {
		res.Code, res.Status, res.Err = http.StatusBadRequest, "bad_request", err.Error()
		return finish(res)
	}
	opts, err := item.Options.BuildOptions(p.defaultLimit, p.maxLimit)
	if err != nil {
		res.Code, res.Status, res.Err = http.StatusBadRequest, "bad_request", err.Error()
		return finish(res)
	}
	opts.Monitors, err = desc.BuildMonitors()
	if err != nil {
		res.Code, res.Status, res.Err = http.StatusBadRequest, "bad_request", err.Error()
		return finish(res)
	}
	opts.Request = obs.NewRequestCtx(traceID)
	pl, err := core.Place(prob, opts)
	if err != nil {
		res.Code, res.Status, res.Err = http.StatusInternalServerError, "error", err.Error()
		return finish(res)
	}
	placement, err := json.Marshal(daemon.EncodePlacement(pl))
	if err != nil {
		res.Code, res.Status, res.Err = http.StatusInternalServerError, "error", err.Error()
		return finish(res)
	}
	res.Code, res.Status = http.StatusOK, pl.Status.String()
	res.PlacementJSON = placement
	res.PlacementHash = hashPlacement(placement)
	for _, root := range opts.Request.Trace.Roots() {
		if root.Name() != "place" {
			continue
		}
		for _, ch := range root.Children() {
			res.Phases = append(res.Phases, PhaseMS{
				Name: ch.Name(),
				//lint:detsource measured phase wall time is the point of this field
				MS: float64(ch.Wall().Microseconds()) / 1e3,
			})
		}
	}
	return finish(res)
}
