package load

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"rulefit/internal/obs"
)

// unmarshalStrict decodes with unknown fields rejected, so the round
// trip also proves the golden file has no stray keys.
func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenHist is a small fixed latency histogram used across the
// golden report.
func goldenHist(counts ...uint64) obs.HistogramSnapshot {
	h := obs.HistogramSnapshot{Sum: 0.042, Count: 0}
	bounds := []float64{0.001, 0.01, math.Inf(1)}
	for i, b := range bounds {
		c := uint64(0)
		if i < len(counts) {
			c = counts[i]
		}
		h.Buckets = append(h.Buckets, obs.BucketCount{LE: b, Count: c})
		h.Count = c
	}
	return h
}

// goldenReport is a fully-populated Report with fixed values: every
// field of every record type appears, so the golden file pins the
// complete rulefit-load/v1 wire format. cmd/loaddiff and the CI
// load-smoke job parse these files; a silently renamed JSON tag breaks
// them without failing any harness test, which is what this test
// exists to catch. If the diff is intentional, bump ReportSchema
// (incompatible change) or rerun with -update (compatible addition).
func goldenReport() *Report {
	return &Report{
		Schema:     ReportSchema,
		Timestamp:  "2026-01-02T03:04:05Z",
		GoVersion:  "go1.22.0",
		GOOS:       "linux",
		GOARCH:     "amd64",
		NumCPU:     8,
		GOMAXPROCS: 8,
		Config: ConfigRecord{
			Seed:         7,
			Requests:     4,
			Repeat:       2,
			Concurrency:  2,
			RPS:          50,
			DurationSec:  1.5,
			Merging:      true,
			TimeLimitSec: 30,
			Mode:         "open",
			Target:       "http",
		},
		Workload: WorkloadRecord{
			Seed:        7,
			Requests:    4,
			Fingerprint: "78f868b603b0a068",
		},
		ElapsedSec:  1.25,
		AchievedRPS: 6.4,
		Total:       8,
		OK:          6,
		Shed:        1,
		Errors:      1,
		Latency:     goldenHist(2, 5, 8),
		P50MS:       1.2,
		P90MS:       4.5,
		P99MS:       9.1,
		P999MS:      9.9,
		Strata: []StratumRecord{{
			Stratum:  "small",
			Requests: 5,
			Latency:  goldenHist(2, 4, 5),
		}, {
			Stratum:  "medium",
			Requests: 3,
			Latency:  goldenHist(0, 1, 3),
		}},
		Requests: []RequestRecord{{
			Index:         0,
			Seed:          7,
			Stratum:       "small",
			TraceID:       "req-000001-82a9f4a52737d108",
			Code:          200,
			Status:        "optimal",
			WallMS:        1.25,
			PlacementHash: "3f1e83fcdbc4a2ec",
			Phases: []PhaseMS{
				{Name: "queue_wait", MS: 0.01},
				{Name: "parse", MS: 0.2},
				{Name: "encode", MS: 0.1},
				{Name: "model_build", MS: 0.05},
				{Name: "solve", MS: 0.6},
				{Name: "extract", MS: 0.02},
			},
		}, {
			Index:   1,
			Seed:    108,
			Stratum: "medium",
			TraceID: "req-000002-1111111111111111",
			Code:    429,
			Status:  "shed",
			WallMS:  0.4,
			Error:   "server at capacity",
		}},
		Sweep: &SweepRecord{
			ShedThreshold:   0.5,
			StepRequests:    8,
			MaxConcurrency:  64,
			KneeConcurrency: 4,
			CapacityRPS:     120.5,
			Saturated:       true,
			Steps: []SweepStep{{
				Concurrency: 4,
				Requests:    8,
				Shed:        0,
				ShedRate:    0,
				AchievedRPS: 120.5,
			}, {
				Concurrency: 8,
				Requests:    8,
				Shed:        4,
				Errors:      1,
				ShedRate:    0.5,
				AchievedRPS: 130,
			}},
		},
	}
}

// TestReportGolden locks the serialized form of the load report — the
// schema string, every JSON field name, and the encoder settings —
// against testdata/report_golden.json.
func TestReportGolden(t *testing.T) {
	if ReportSchema != "rulefit-load/v1" {
		t.Fatalf("ReportSchema = %q; committed load reports say rulefit-load/v1", ReportSchema)
	}
	var buf bytes.Buffer
	if err := goldenReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "report_golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report serialization drifted from %s.\n"+
			"If this is an intentional compatible addition, rerun with -update; "+
			"if a field was renamed or removed, bump ReportSchema instead.\n"+
			"got:\n%s\nwant:\n%s", path, buf.Bytes(), want)
	}
}

// TestReportGoldenRoundTrip: the golden file parses back strictly into
// a Report equal in its load-bearing fields, so readers of committed
// load reports can rely on the struct definitions in this package.
func TestReportGoldenRoundTrip(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "report_golden.json"))
	if err != nil {
		t.Skip("golden file missing; TestReportGolden reports the failure")
	}
	var rep Report
	if err := unmarshalStrict(data, &rep); err != nil {
		t.Fatalf("golden file does not parse strictly: %v", err)
	}
	want := goldenReport()
	if rep.Schema != want.Schema || rep.Timestamp != want.Timestamp {
		t.Errorf("header drift: %q %q", rep.Schema, rep.Timestamp)
	}
	if rep.Config != want.Config || rep.Workload != want.Workload {
		t.Errorf("config/workload drift:\ngot  %+v %+v\nwant %+v %+v",
			rep.Config, rep.Workload, want.Config, want.Workload)
	}
	if len(rep.Requests) != 2 {
		t.Fatalf("request shape drifted: %+v", rep.Requests)
	}
	if rep.Requests[0].TraceID != want.Requests[0].TraceID ||
		rep.Requests[0].PlacementHash != want.Requests[0].PlacementHash ||
		len(rep.Requests[0].Phases) != len(want.Requests[0].Phases) {
		t.Errorf("request record drifted:\ngot  %+v\nwant %+v", rep.Requests[0], want.Requests[0])
	}
	if rep.Sweep == nil || rep.Sweep.KneeConcurrency != want.Sweep.KneeConcurrency ||
		len(rep.Sweep.Steps) != 2 || rep.Sweep.Steps[1] != want.Sweep.Steps[1] {
		t.Errorf("sweep record drifted: %+v", rep.Sweep)
	}
}
