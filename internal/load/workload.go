package load

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"rulefit/internal/daemon"
	"rulefit/internal/diffcheck"
	"rulefit/internal/randgen"
)

// WorkItem is one replayable request: the marshaled wire body for
// HTTP replay, the spec problem and options for in-process replay,
// and the identity fields carried into the report.
type WorkItem struct {
	// Index is the item's position in the workload (not the issue
	// order — closed-loop replay may reuse items across repeats).
	Index int
	// Seed is the randgen seed the instance was generated from.
	Seed int64
	// Stratum buckets the instance by total rule count ("small",
	// "medium", "large"), so latency can be reported per size class.
	Stratum string
	// Rules is the instance's total rule count across policies.
	Rules int
	// Body is the marshaled daemon.PlaceRequest.
	Body []byte
	// Problem is the spec problem JSON inside Body.
	Problem json.RawMessage
	// Options is the request options inside Body.
	Options daemon.RequestOptions
}

// Workload is a deterministic request set: a pure function of
// (seed, count, options), fingerprinted so reports can prove two runs
// replayed the same bytes.
type Workload struct {
	Seed        int64
	Items       []WorkItem
	Fingerprint string
}

// seedStride spaces per-request seeds so adjacent requests draw
// well-separated randgen configurations (matches the bench suite's
// seed spacing).
const seedStride = 101

// stratumOf buckets an instance by total rule count. The bounds track
// randgen.FromSeed's output range (3–12 rules for most instances) so
// all three strata populate on realistic workloads.
func stratumOf(rules int) string {
	switch {
	case rules <= 6:
		return "small"
	case rules <= 12:
		return "medium"
	default:
		return "large"
	}
}

// BuildWorkload materializes the request set for cfg: one
// randgen.FromSeed instance per request, serialized through the exact
// spec round-trip (diffcheck.ProblemToSpec), wrapped in the daemon
// wire format. Identical configs produce byte-identical workloads.
func BuildWorkload(cfg Config) (*Workload, error) {
	cfg = cfg.withDefaults()
	wl := &Workload{Seed: cfg.Seed}
	fp := fnv.New64a()
	for i := 0; i < cfg.Requests; i++ {
		seed := cfg.Seed + int64(i)*seedStride
		inst, err := randgen.Generate(randgen.FromSeed(seed))
		if err != nil {
			return nil, fmt.Errorf("load: generating request %d (seed %d): %w", i, seed, err)
		}
		probJSON, err := json.Marshal(diffcheck.ProblemToSpec(inst.Problem))
		if err != nil {
			return nil, err
		}
		opts := daemon.RequestOptions{
			Merging:      cfg.Merging,
			TimeLimitSec: cfg.TimeLimitSec,
		}
		body, err := json.Marshal(daemon.PlaceRequest{Problem: probJSON, Options: opts})
		if err != nil {
			return nil, err
		}
		rules := 0
		for _, p := range inst.Problem.Policies {
			rules += len(p.Rules)
		}
		fp.Write(body)
		wl.Items = append(wl.Items, WorkItem{
			Index:   i,
			Seed:    seed,
			Stratum: stratumOf(rules),
			Rules:   rules,
			Body:    body,
			Problem: probJSON,
			Options: opts,
		})
	}
	wl.Fingerprint = fmt.Sprintf("%016x", fp.Sum64())
	return wl, nil
}
