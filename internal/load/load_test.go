package load

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rulefit/internal/bench"
	"rulefit/internal/daemon"
	"rulefit/internal/obs"
)

// syncBuffer is a mutex-wrapped buffer safe for concurrent slog
// writes from daemon handler goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startDaemon mounts a fresh daemon on an httptest server and returns
// its base URL plus the captured log buffer.
func startDaemon(t *testing.T, cfg daemon.Config) (string, *syncBuffer) {
	t.Helper()
	logs := &syncBuffer{}
	cfg.Logger = slog.New(slog.NewJSONHandler(logs, nil))
	cfg.Metrics = &obs.Metrics{}
	srv := httptest.NewServer(daemon.New(cfg).Handler())
	t.Cleanup(srv.Close)
	return srv.URL, logs
}

func TestBuildWorkloadDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Requests: 6}
	a, err := BuildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("same config, fingerprints differ: %s vs %s", a.Fingerprint, b.Fingerprint)
	}
	for i := range a.Items {
		if !bytes.Equal(a.Items[i].Body, b.Items[i].Body) {
			t.Fatalf("item %d bodies differ", i)
		}
	}
	c, err := BuildWorkload(Config{Seed: 8, Requests: 6})
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint == a.Fingerprint {
		t.Fatalf("different seeds produced the same fingerprint %s", a.Fingerprint)
	}
	for _, item := range a.Items {
		if item.Stratum == "" || item.Rules <= 0 {
			t.Fatalf("item %d missing identity: %+v", item.Index, item)
		}
	}
}

// TestByteIdentityHTTPVsInProcess is the core identity guarantee: a
// placement served over HTTP must hash (and byte-compare) identically
// to the in-process placement of the same workload item.
func TestByteIdentityHTTPVsInProcess(t *testing.T) {
	base, _ := startDaemon(t, daemon.Config{MaxInFlight: 2})
	cfg := Config{Seed: 11, Requests: 5, Concurrency: 2}

	httpRep, err := Run(context.Background(), cfg, NewHTTPPlacer(base, nil))
	if err != nil {
		t.Fatal(err)
	}
	inRep, err := Run(context.Background(), cfg, NewInProcessPlacer(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if httpRep.Total != inRep.Total || httpRep.OK != inRep.OK {
		t.Fatalf("outcome mismatch: http %d/%d ok, inprocess %d/%d ok",
			httpRep.OK, httpRep.Total, inRep.OK, inRep.Total)
	}
	if httpRep.OK == 0 {
		t.Fatal("no successful requests; identity check is vacuous")
	}
	for i := range httpRep.Requests {
		h, p := httpRep.Requests[i], inRep.Requests[i]
		if h.PlacementHash != p.PlacementHash {
			t.Errorf("request %d: http hash %s != inprocess hash %s", i, h.PlacementHash, p.PlacementHash)
		}
		if h.Status != p.Status {
			t.Errorf("request %d: http status %s != inprocess status %s", i, h.Status, p.Status)
		}
	}
	if httpRep.Workload.Fingerprint != inRep.Workload.Fingerprint {
		t.Fatalf("fingerprints differ for identical configs")
	}
}

// TestTraceIDJoin proves the 1:1 join between the client report and
// the daemon's request log: every report record's trace ID appears in
// exactly one daemon log line, and the joined line agrees on the
// outcome.
func TestTraceIDJoin(t *testing.T) {
	base, logs := startDaemon(t, daemon.Config{MaxInFlight: 2})
	rep, err := Run(context.Background(), Config{Seed: 3, Requests: 6, Concurrency: 2},
		NewHTTPPlacer(base, nil))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 6 {
		t.Fatalf("total = %d, want 6", rep.Total)
	}

	type logLine struct {
		TraceID string `json:"trace_id"`
		Status  string `json:"status"`
	}
	byTrace := map[string]int{}
	statusByTrace := map[string]string{}
	for _, raw := range strings.Split(strings.TrimSpace(logs.String()), "\n") {
		var ll logLine
		if err := json.Unmarshal([]byte(raw), &ll); err != nil || ll.TraceID == "" {
			continue
		}
		byTrace[ll.TraceID]++
		statusByTrace[ll.TraceID] = ll.Status
	}
	for _, req := range rep.Requests {
		if req.TraceID == "" {
			t.Fatalf("request %d has no trace ID", req.Index)
		}
		if n := byTrace[req.TraceID]; n != 1 {
			t.Errorf("trace %s appears in %d daemon log lines, want 1", req.TraceID, n)
		}
		if got := statusByTrace[req.TraceID]; got != req.Status {
			t.Errorf("trace %s: daemon logged status %q, report has %q", req.TraceID, got, req.Status)
		}
	}
	if len(byTrace) != rep.Total {
		t.Errorf("daemon logged %d distinct traces, report has %d requests", len(byTrace), rep.Total)
	}
}

// TestSweepKneeReproducible is the end-to-end determinism check: a
// daemon with one solve slot, no queue, and a solve delay long enough
// to dominate arrival skew sheds every extra wave member, so two
// sweeps of the same seed land on the same knee (1).
func TestSweepKneeReproducible(t *testing.T) {
	base, _ := startDaemon(t, daemon.Config{
		MaxInFlight: 1,
		MaxQueue:    0,
		SolveDelay:  30 * time.Millisecond,
	})
	cfg := Config{Seed: 5, Requests: 4}
	opts := SweepOpts{ShedThreshold: 0.5, StepRequests: 4, MaxConcurrency: 4}

	runs := make([]*Report, 2)
	for i := range runs {
		rep, err := RunSweep(context.Background(), cfg, opts, NewHTTPPlacer(base, nil))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Sweep == nil {
			t.Fatal("sweep report missing sweep record")
		}
		runs[i] = rep
	}
	for i, rep := range runs {
		if !rep.Sweep.Saturated {
			t.Fatalf("run %d never saturated; steps: %+v", i, rep.Sweep.Steps)
		}
		if rep.Sweep.KneeConcurrency != 1 {
			t.Errorf("run %d knee = %d, want 1; steps: %+v", i, rep.Sweep.KneeConcurrency, rep.Sweep.Steps)
		}
	}
	if a, b := runs[0].Sweep.KneeConcurrency, runs[1].Sweep.KneeConcurrency; a != b {
		t.Fatalf("knees differ across identical sweeps: %d vs %d", a, b)
	}
	if runs[0].Config.Mode != "sweep" {
		t.Errorf("mode = %q, want sweep", runs[0].Config.Mode)
	}
}

// TestSelfDiffPasses runs one report against itself through the full
// comparator: zero regressions, zero drift, PASS trailer.
func TestSelfDiffPasses(t *testing.T) {
	rep, err := Run(context.Background(), Config{Seed: 9, Requests: 4},
		NewInProcessPlacer(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	d := CompareReports(rep, rep, bench.DiffOptions{})
	if d.HasRegressions() {
		t.Fatalf("self-diff reports regressions: %+v", d)
	}
	if d.Unchanged != rep.Total {
		t.Errorf("unchanged = %d, want %d", d.Unchanged, rep.Total)
	}
	if d.Drifted != 0 || d.WorkloadMismatch {
		t.Errorf("self-diff drift=%d workloadMismatch=%v", d.Drifted, d.WorkloadMismatch)
	}
	var buf bytes.Buffer
	if err := d.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "RESULT: PASS") {
		t.Errorf("render missing PASS trailer:\n%s", buf.String())
	}
}

func TestCompareReportsFlagsDriftAndKnee(t *testing.T) {
	mk := func() *Report {
		return &Report{
			Schema:   ReportSchema,
			Workload: WorkloadRecord{Fingerprint: "f"},
			Config:   ConfigRecord{Mode: "closed"},
			Requests: []RequestRecord{
				{Index: 0, Seed: 1, Status: "optimal", WallMS: 10, PlacementHash: "aaa"},
				{Index: 1, Seed: 2, Status: "optimal", WallMS: 10, PlacementHash: "bbb"},
			},
		}
	}
	old, new := mk(), mk()
	new.Requests[1].PlacementHash = "ccc"
	d := CompareReports(old, new, bench.DiffOptions{})
	if d.Drifted != 1 || !d.HasRegressions() {
		t.Fatalf("placement drift not flagged: %+v", d)
	}
	var buf bytes.Buffer
	_ = d.Render(&buf)
	if !strings.Contains(buf.String(), "drift") || !strings.Contains(buf.String(), "RESULT: FAIL") {
		t.Errorf("render missing drift/FAIL:\n%s", buf.String())
	}

	// Status rank change trumps the wall clock (shared bench model).
	old, new = mk(), mk()
	new.Requests[0].Status = "limit"
	d = CompareReports(old, new, bench.DiffOptions{})
	if d.Regressed != 1 {
		t.Fatalf("status regression not flagged: %+v", d)
	}

	// A lower sweep knee is a capacity regression.
	old, new = mk(), mk()
	old.Sweep = &SweepRecord{KneeConcurrency: 8}
	new.Sweep = &SweepRecord{KneeConcurrency: 4}
	d = CompareReports(old, new, bench.DiffOptions{})
	if !d.KneeRegressed || !d.HasRegressions() {
		t.Fatalf("knee regression not flagged: %+v", d)
	}

	// Cross-workload comparisons refuse to report drift.
	old, new = mk(), mk()
	new.Workload.Fingerprint = "g"
	new.Requests[0].PlacementHash = "zzz"
	d = CompareReports(old, new, bench.DiffOptions{})
	if !d.WorkloadMismatch || d.Drifted != 0 {
		t.Fatalf("cross-workload drift handling wrong: %+v", d)
	}
}

// TestRunShedAgainstTinyDaemon exercises the closed-loop harness
// against a saturated daemon: with one slot, no queue, and a hold
// time, some of 3 concurrent workers' requests must shed, and the
// report's outcome counts must stay consistent.
func TestRunShedAgainstTinyDaemon(t *testing.T) {
	base, _ := startDaemon(t, daemon.Config{
		MaxInFlight: 1,
		MaxQueue:    0,
		SolveDelay:  10 * time.Millisecond,
	})
	rep, err := Run(context.Background(), Config{Seed: 2, Requests: 6, Concurrency: 3},
		NewHTTPPlacer(base, nil))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 6 || rep.OK+rep.Shed+rep.Errors != rep.Total {
		t.Fatalf("inconsistent counts: %+v", rep)
	}
	if rep.Shed == 0 {
		t.Fatalf("expected shedding at concurrency 3 against a 1-slot daemon: %+v", rep)
	}
	for _, req := range rep.Requests {
		if req.Status == "shed" && req.Code != 429 {
			t.Errorf("shed request %d has code %d, want 429", req.Index, req.Code)
		}
	}
}

// TestOpenLoopRun drives the open-loop pacer and checks it issues the
// full workload with per-request records intact.
func TestOpenLoopRun(t *testing.T) {
	rep, err := Run(context.Background(), Config{Seed: 4, Requests: 4, RPS: 500},
		NewInProcessPlacer(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Config.Mode != "open" {
		t.Errorf("mode = %q, want open", rep.Config.Mode)
	}
	if rep.Total != 4 {
		t.Errorf("total = %d, want 4", rep.Total)
	}
}

// TestLiveStatusLines checks the one-line-per-interval status stream.
func TestLiveStatusLines(t *testing.T) {
	var status syncBuffer
	_, err := Run(context.Background(), Config{
		Seed:           6,
		Requests:       8,
		Repeat:         4,
		Concurrency:    2,
		Status:         &status,
		StatusInterval: 5 * time.Millisecond,
	}, slowPlacer{delay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	out := status.String()
	if !strings.Contains(out, "rps=") || !strings.Contains(out, "p99=") {
		t.Errorf("status stream missing fields:\n%s", out)
	}
}

// slowPlacer fakes a placer with a fixed service time, for driving
// the status loop without a solver.
type slowPlacer struct {
	delay time.Duration
}

func (p slowPlacer) Place(_ context.Context, item WorkItem) Result {
	time.Sleep(p.delay)
	return Result{Code: 200, Status: "optimal", WallMS: float64(p.delay.Microseconds()) / 1e3,
		TraceID: "req-fake", PlacementHash: "fixed"}
}

// TestReportRoundTrip writes a report and reads it back through the
// schema check.
func TestReportRoundTrip(t *testing.T) {
	rep, err := Run(context.Background(), Config{Seed: 1, Requests: 2}, NewInProcessPlacer(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rep.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload.Fingerprint != rep.Workload.Fingerprint {
		t.Errorf("fingerprint lost in round trip")
	}

	bad := bytes.Replace(buf.Bytes(), []byte(ReportSchema), []byte("rulefit-load/v0"), 1)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Fatal("schema mismatch not rejected")
	}
}
