package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"rulefit/internal/daemon"
	"rulefit/internal/obs"
	"rulefit/internal/randgen"
	"rulefit/internal/spec"
	"rulefit/internal/state"
)

// Delta-replay mode: the SLO measurement behind the stateful session
// layer. One seeded instance is loaded into a session, then Steps
// single-rule deltas are applied one at a time; after every delta the
// harness ALSO issues a cold /v1/place of the fully-updated instance
// and checks the two placements hash identically (the byte-identity
// contract, measured end-to-end rather than assumed). The report's
// Delta record separates the warm and cold latency distributions so
// the "single-rule delta p99 at least 3x below from-scratch p99"
// acceptance bar is a committed, re-runnable number.
//
// The instance class defaults to the decomposable regime (merging
// off, total-rules objective, multi-policy fat-tree with slack
// capacities) because that is where the session's per-policy fragment
// cache applies; the class is recorded in the report so diffs refuse
// cross-class comparisons via the workload fingerprint.

// DeltaOpts tunes one delta replay.
type DeltaOpts struct {
	// Steps is the number of single-rule deltas applied (default 20).
	Steps int
	// Ingresses, RulesPerPolicy, and FatTreeK pick the instance class
	// (defaults 8, 100, 4 — the committed SLO class).
	Ingresses      int
	RulesPerPolicy int
	FatTreeK       int
}

func (o DeltaOpts) withDefaults() DeltaOpts {
	if o.Steps <= 0 {
		o.Steps = 20
	}
	if o.Ingresses <= 0 {
		o.Ingresses = 8
	}
	if o.RulesPerPolicy <= 0 {
		o.RulesPerPolicy = 100
	}
	if o.FatTreeK <= 0 {
		o.FatTreeK = 4
	}
	return o
}

// class names the instance class for the report.
func (o DeltaOpts) class() string {
	return fmt.Sprintf("fattree-k%d-%dx%d-5tuple", o.FatTreeK, o.Ingresses, o.RulesPerPolicy)
}

// DeltaRecord is the delta-replay summary attached to the report.
type DeltaRecord struct {
	// Class is the instance class the replay measured.
	Class string `json:"class"`
	Seed  int64  `json:"seed"`
	Steps int    `json:"steps"`
	// Paths counts answers per fallback-ladder level ("identity",
	// "warm", "cold").
	Paths map[string]int `json:"paths"`
	// Mismatched counts steps whose warm placement hash differed from
	// the cold re-solve of the same instance — any nonzero value is a
	// byte-identity violation and fails the run.
	Mismatched int `json:"mismatched"`
	// Warm/Cold percentiles are exact order statistics over the per-step
	// client latencies (ms); observational.
	WarmP50MS float64 `json:"warm_p50_ms"`
	WarmP99MS float64 `json:"warm_p99_ms"`
	ColdP50MS float64 `json:"cold_p50_ms"`
	ColdP99MS float64 `json:"cold_p99_ms"`
	// SpeedupP50/P99 are cold/warm percentile ratios (> 1 means the
	// session path is faster).
	SpeedupP50 float64 `json:"speedup_p50"`
	SpeedupP99 float64 `json:"speedup_p99"`
}

// DeltaStep is one measured step: the warm session answer and the
// cold reference solve of the identical instance.
type DeltaStep struct {
	Step int
	// Path is the session's fallback-ladder level for this answer.
	Path string
	Warm Result
	Cold Result
}

// SessionDriver issues session-API operations; HTTP and in-process
// implementations fill the same Result fields as Placer, so delta
// reports from both targets diff against each other.
type SessionDriver interface {
	// Create opens a session for item and returns its ID plus the
	// initial (cold) answer.
	Create(ctx context.Context, item WorkItem) (string, DeltaAnswer, error)
	// Delta applies one delta batch to the session.
	Delta(ctx context.Context, id string, deltas []spec.Delta) (DeltaAnswer, error)
}

// DeltaAnswer is one session answer: the shared Result fields plus
// the session path that produced it.
type DeltaAnswer struct {
	Result
	Path string
}

// RunDelta measures warm single-rule deltas against cold re-solves
// and assembles the delta report. The cold placer must target the
// same backend as the session driver for the latency comparison to
// mean anything; the byte-identity check holds regardless.
func RunDelta(ctx context.Context, cfg Config, opts DeltaOpts, sd SessionDriver, cold Placer) (*Report, error) {
	cfg = cfg.withDefaults()
	opts = opts.withDefaults()

	inst, err := randgen.Generate(randgen.Config{
		Seed:            cfg.Seed,
		Topo:            randgen.TopoFatTree,
		FatTreeK:        opts.FatTreeK,
		Ingresses:       opts.Ingresses,
		PathsPerIngress: 2,
		RulesPerPolicy:  opts.RulesPerPolicy,
		Capacity:        randgen.CapSlack,
	})
	if err != nil {
		return nil, fmt.Errorf("load: generating delta instance (seed %d): %w", cfg.Seed, err)
	}
	cur := spec.FromCore(inst.Problem)
	reqOpts := daemon.RequestOptions{Merging: cfg.Merging, TimeLimitSec: cfg.TimeLimitSec}
	item, err := deltaWorkItem(cur, reqOpts, 0, cfg.Seed)
	if err != nil {
		return nil, err
	}

	fp := fnv.New64a()
	fp.Write(item.Body)

	start := time.Now()
	id, createAns, err := sd.Create(ctx, item)
	if err != nil {
		return nil, fmt.Errorf("load: session create: %w", err)
	}
	if cfg.Status != nil {
		fmt.Fprintf(cfg.Status, "session %s created in %.1fms (path=%s, class=%s)\n",
			id, createAns.WallMS, createAns.Path, opts.class())
	}

	steps := make([]DeltaStep, 0, opts.Steps)
	for i := 0; i < opts.Steps && ctx.Err() == nil; i++ {
		d := singleRuleDelta(cur, i)
		dJSON, err := json.Marshal(d)
		if err != nil {
			return nil, err
		}
		fp.Write(dJSON)

		warm, err := sd.Delta(ctx, id, []spec.Delta{d})
		if err != nil {
			return nil, fmt.Errorf("load: delta step %d: %w", i, err)
		}
		if err := cur.Apply(d); err != nil {
			return nil, fmt.Errorf("load: applying delta step %d locally: %w", i, err)
		}
		coldItem, err := deltaWorkItem(cur, reqOpts, 2*i+1, cfg.Seed)
		if err != nil {
			return nil, err
		}
		coldRes := cold.Place(ctx, coldItem)
		step := DeltaStep{Step: i, Path: warm.Path, Warm: warm.Result, Cold: coldRes}
		steps = append(steps, step)
		if cfg.Status != nil {
			match := "ok"
			if step.Warm.PlacementHash != step.Cold.PlacementHash {
				match = "MISMATCH"
			}
			fmt.Fprintf(cfg.Status, "step %-3d path=%-8s warm=%7.1fms cold=%7.1fms identity=%s\n",
				i, warm.Path, warm.WallMS, coldRes.WallMS, match)
		}
	}
	elapsed := time.Since(start)

	rep := newReport(cfg, &Workload{Seed: cfg.Seed, Fingerprint: fmt.Sprintf("%016x", fp.Sum64())},
		"delta", targetOf(cold))
	rep.Config.Requests = opts.Steps
	rep.Workload.Requests = opts.Steps
	finishDeltaReport(rep, cfg, opts, steps, elapsed)
	return rep, nil
}

// singleRuleDelta derives step i's add_rule: a deterministic
// low-priority drop appended to policy i mod P. Priorities stack above
// the instance's current maximum so each step's delta stays valid
// against the evolving instance.
func singleRuleDelta(cur *spec.Problem, i int) spec.Delta {
	pol := cur.Policies[i%len(cur.Policies)]
	maxPrio := 0
	for _, r := range pol.Rules {
		if r.Priority > maxPrio {
			maxPrio = r.Priority
		}
	}
	pattern := []byte(strings.Repeat("*", len(pol.Rules[0].Pattern)))
	pattern[i%len(pattern)] = '1'
	return spec.Delta{
		Op:      spec.OpAddRule,
		Ingress: pol.Ingress,
		Rule:    &spec.Rule{Pattern: string(pattern), Action: "drop", Priority: maxPrio + 1},
	}
}

// deltaWorkItem wraps the current instance as a wire request.
func deltaWorkItem(cur *spec.Problem, reqOpts daemon.RequestOptions, index int, seed int64) (WorkItem, error) {
	probJSON, err := json.Marshal(cur)
	if err != nil {
		return WorkItem{}, err
	}
	body, err := json.Marshal(daemon.PlaceRequest{Problem: probJSON, Options: reqOpts})
	if err != nil {
		return WorkItem{}, err
	}
	return WorkItem{Index: index, Seed: seed, Body: body, Problem: probJSON, Options: reqOpts}, nil
}

// finishDeltaReport folds the measured steps into the report: paired
// warm/cold request records (warm at index 2k, cold at 2k+1, strata
// "delta-warm"/"delta-cold") plus the Delta summary.
func finishDeltaReport(rep *Report, cfg Config, opts DeltaOpts, steps []DeltaStep, elapsed time.Duration) {
	//lint:detsource measured run length is the point of this field
	rep.ElapsedSec = elapsed.Seconds()
	if rep.ElapsedSec > 0 {
		rep.AchievedRPS = float64(2*len(steps)) / rep.ElapsedSec
	}

	dr := &DeltaRecord{
		Class: opts.class(),
		Seed:  cfg.Seed,
		Steps: len(steps),
		Paths: map[string]int{},
	}
	var warmMS, coldMS []float64
	hist := obs.NewLabeledHistogram(cfg.Buckets)
	all := obs.NewHistogram(cfg.Buckets)
	record := func(index int, stratum string, res Result) {
		rep.Total++
		switch {
		case res.Code == 200:
			rep.OK++
		case res.Status == "shed":
			rep.Shed++
		default:
			rep.Errors++
		}
		hist.Observe(stratum, res.WallMS/1e3)
		all.Observe(res.WallMS / 1e3)
		rep.Requests = append(rep.Requests, RequestRecord{
			Index:   index,
			Seed:    cfg.Seed,
			Stratum: stratum,
			TraceID: res.TraceID,
			Code:    res.Code,
			Status:  res.Status,
			//lint:detsource measured latency is the point of this field
			WallMS:        res.WallMS,
			PlacementHash: res.PlacementHash,
			Phases:        res.Phases,
			Error:         res.Err,
		})
	}
	for _, st := range steps {
		dr.Paths[st.Path]++
		if st.Warm.PlacementHash == "" || st.Warm.PlacementHash != st.Cold.PlacementHash {
			dr.Mismatched++
		}
		warmMS = append(warmMS, st.Warm.WallMS)
		coldMS = append(coldMS, st.Cold.WallMS)
		record(2*st.Step, "delta-warm", st.Warm)
		record(2*st.Step+1, "delta-cold", st.Cold)
	}
	dr.WarmP50MS, dr.WarmP99MS = exactQuantile(warmMS, 0.50), exactQuantile(warmMS, 0.99)
	dr.ColdP50MS, dr.ColdP99MS = exactQuantile(coldMS, 0.50), exactQuantile(coldMS, 0.99)
	if dr.WarmP50MS > 0 {
		dr.SpeedupP50 = dr.ColdP50MS / dr.WarmP50MS
	}
	if dr.WarmP99MS > 0 {
		dr.SpeedupP99 = dr.ColdP99MS / dr.WarmP99MS
	}
	rep.Delta = dr

	snap := all.Snapshot()
	rep.Latency = snap
	rep.P50MS = snap.Quantile(0.50) * 1e3
	rep.P90MS = snap.Quantile(0.90) * 1e3
	rep.P99MS = snap.Quantile(0.99) * 1e3
	rep.P999MS = snap.Quantile(0.999) * 1e3
	counts := map[string]int{"delta-warm": len(steps), "delta-cold": len(steps)}
	for _, member := range hist.Snapshot() {
		rep.Strata = append(rep.Strata, StratumRecord{
			Stratum:  member.Label,
			Requests: counts[member.Label],
			Latency:  member.Hist,
		})
	}
}

// exactQuantile is the nearest-rank order statistic (the per-step
// sample is small, so histogram bucketing would blur the SLO ratio).
func exactQuantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[int(p*float64(len(s)-1))]
}

// httpSessionDriver drives a live daemon's session API.
type httpSessionDriver struct {
	base   string
	client *http.Client
}

// NewHTTPSessionDriver returns a session driver for a live daemon
// (client nil = http.DefaultClient).
func NewHTTPSessionDriver(base string, client *http.Client) SessionDriver {
	if client == nil {
		client = http.DefaultClient
	}
	return &httpSessionDriver{base: strings.TrimSuffix(base, "/"), client: client}
}

func (d *httpSessionDriver) Create(ctx context.Context, item WorkItem) (string, DeltaAnswer, error) {
	return d.post(ctx, d.base+"/v1/session", item.Body)
}

func (d *httpSessionDriver) Delta(ctx context.Context, id string, deltas []spec.Delta) (DeltaAnswer, error) {
	body, err := json.Marshal(daemon.DeltaRequest{Deltas: deltas})
	if err != nil {
		return DeltaAnswer{}, err
	}
	_, ans, err := d.post(ctx, d.base+"/v1/session/"+id+"/delta", body)
	return ans, err
}

// post issues one session-API request and decodes the shared
// SessionResponse shape.
func (d *httpSessionDriver) post(ctx context.Context, url string, body []byte) (string, DeltaAnswer, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return "", DeltaAnswer{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := d.client.Do(req)
	//lint:detsource measured latency is the point of this field
	wallMS := float64(time.Since(start).Microseconds()) / 1e3
	if err != nil {
		return "", DeltaAnswer{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", DeltaAnswer{}, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return "", DeltaAnswer{}, fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, bytes.TrimSpace(raw))
	}
	var sr struct {
		TraceID   string          `json:"trace_id"`
		SessionID string          `json:"session_id"`
		Path      string          `json:"path"`
		Placement json.RawMessage `json:"placement"`
	}
	if err := json.Unmarshal(raw, &sr); err != nil {
		return "", DeltaAnswer{}, err
	}
	var pl struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(sr.Placement, &pl); err != nil {
		return "", DeltaAnswer{}, err
	}
	placement := bytes.TrimSpace(sr.Placement)
	return sr.SessionID, DeltaAnswer{
		Path: sr.Path,
		Result: Result{
			TraceID:       sr.TraceID,
			Code:          http.StatusOK,
			Status:        pl.Status,
			WallMS:        wallMS,
			PlacementJSON: placement,
			PlacementHash: hashPlacement(placement),
		},
	}, nil
}

// inprocSessionDriver drives an in-process state.Manager through the
// daemon's own request pipeline (same spec build, option policy, and
// wire projection), so CI measures the session layer without a
// listening socket.
type inprocSessionDriver struct {
	mgr          *state.Manager
	sessions     map[string]*state.Session
	defaultLimit time.Duration
	maxLimit     time.Duration
}

// NewInProcessSessionDriver returns the in-process session driver
// (zero limits pick the daemon defaults).
func NewInProcessSessionDriver(defaultLimit, maxLimit time.Duration) SessionDriver {
	return &inprocSessionDriver{
		mgr:          state.NewManager(state.Config{}),
		sessions:     make(map[string]*state.Session),
		defaultLimit: defaultLimit,
		maxLimit:     maxLimit,
	}
}

func (d *inprocSessionDriver) Create(_ context.Context, item WorkItem) (string, DeltaAnswer, error) {
	start := time.Now()
	desc, err := spec.LoadBytes(item.Problem)
	if err != nil {
		return "", DeltaAnswer{}, err
	}
	prob, err := desc.Build()
	if err != nil {
		return "", DeltaAnswer{}, err
	}
	if err := prob.Validate(); err != nil {
		return "", DeltaAnswer{}, err
	}
	opts, err := item.Options.BuildOptions(d.defaultLimit, d.maxLimit)
	if err != nil {
		return "", DeltaAnswer{}, err
	}
	opts.Monitors, err = desc.BuildMonitors()
	if err != nil {
		return "", DeltaAnswer{}, err
	}
	sess, res, err := d.mgr.Create(spec.FromCore(prob), opts)
	if err != nil {
		return "", DeltaAnswer{}, err
	}
	d.sessions[sess.ID()] = sess
	ans, err := inprocAnswer(res, start)
	return sess.ID(), ans, err
}

func (d *inprocSessionDriver) Delta(_ context.Context, id string, deltas []spec.Delta) (DeltaAnswer, error) {
	sess, ok := d.sessions[id]
	if !ok {
		return DeltaAnswer{}, fmt.Errorf("%w: %s", state.ErrNoSession, id)
	}
	start := time.Now()
	res, err := sess.Delta(deltas, nil, nil)
	if err != nil {
		return DeltaAnswer{}, err
	}
	return inprocAnswer(res, start)
}

// inprocAnswer projects a state result through the daemon's wire
// encoding so hashes match HTTP answers byte for byte.
func inprocAnswer(res *state.Result, start time.Time) (DeltaAnswer, error) {
	placement, err := json.Marshal(daemon.EncodePlacement(res.Placement))
	if err != nil {
		return DeltaAnswer{}, err
	}
	return DeltaAnswer{
		Path: res.Path,
		Result: Result{
			Code:   http.StatusOK,
			Status: res.Placement.Status.String(),
			//lint:detsource measured latency is the point of this field
			WallMS:        float64(time.Since(start).Microseconds()) / 1e3,
			PlacementJSON: placement,
			PlacementHash: hashPlacement(placement),
		},
	}, nil
}
