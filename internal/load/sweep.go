package load

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"rulefit/internal/obs"
)

// SweepOpts tunes a shed-point sweep.
type SweepOpts struct {
	// ShedThreshold is the shed rate at which a concurrency level
	// counts as saturated (default 0.5).
	ShedThreshold float64
	// StepRequests is the minimum number of requests measured per
	// concurrency level (default 8; rounded up to whole waves).
	StepRequests int
	// MaxConcurrency caps the doubling phase (default 64).
	MaxConcurrency int
}

func (o SweepOpts) withDefaults() SweepOpts {
	if o.ShedThreshold <= 0 {
		o.ShedThreshold = 0.5
	}
	if o.StepRequests <= 0 {
		o.StepRequests = 8
	}
	if o.MaxConcurrency <= 0 {
		o.MaxConcurrency = 64
	}
	return o
}

// RunSweep searches for the daemon's shed point: it offers
// barrier-started waves of C simultaneous requests, doubling C until
// the shed rate crosses opts.ShedThreshold (or C reaches
// MaxConcurrency), then bisects the bracket down to the knee — the
// largest C whose shed rate stayed below the threshold.
//
// Determinism: each wave fully completes before the next starts, and
// all C requests of a wave are released by closing one channel, so the
// daemon sees C near-simultaneous arrivals against a fixed admission
// bound (MaxInFlight + MaxQueue). Solve time (milliseconds) dwarfs
// goroutine launch skew (microseconds), so the per-wave shed count —
// and therefore the knee — is a function of the admission limits, not
// of scheduling luck. The same seed and daemon limits reproduce the
// same knee.
func RunSweep(ctx context.Context, cfg Config, opts SweepOpts, placer Placer) (*Report, error) {
	cfg = cfg.withDefaults()
	opts = opts.withDefaults()
	wl, err := BuildWorkload(cfg)
	if err != nil {
		return nil, err
	}

	acc := &sweepAccum{hist: obs.NewHistogram(cfg.Buckets)}
	measured := map[int]SweepStep{}
	var steps []SweepStep
	measure := func(c int) SweepStep {
		if s, ok := measured[c]; ok {
			return s
		}
		s := measureStep(ctx, wl, placer, c, opts.StepRequests, acc)
		measured[c] = s
		steps = append(steps, s)
		if cfg.Status != nil {
			writeStepStatus(cfg.Status, s)
		}
		return s
	}

	// Doubling phase: bracket the knee between the last sub-threshold
	// level (good) and the first saturated one (bad).
	good, bad := 0, 0
	for c := 1; ; {
		if measure(c).ShedRate >= opts.ShedThreshold {
			bad = c
			break
		}
		good = c
		if c >= opts.MaxConcurrency {
			break
		}
		c *= 2
		if c > opts.MaxConcurrency {
			c = opts.MaxConcurrency
		}
	}
	saturated := bad > 0
	if saturated && bad-good > 1 {
		lo, hi := good, bad
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if measure(mid).ShedRate >= opts.ShedThreshold {
				hi = mid
			} else {
				lo = mid
			}
		}
		good = lo
	}

	capacity := 0.0
	if s, ok := measured[good]; ok {
		capacity = s.AchievedRPS
	}
	rep := newReport(cfg, wl, "sweep", targetOf(placer))
	acc.finish(rep)
	rep.Sweep = &SweepRecord{
		ShedThreshold:   opts.ShedThreshold,
		StepRequests:    opts.StepRequests,
		MaxConcurrency:  opts.MaxConcurrency,
		KneeConcurrency: good,
		CapacityRPS:     capacity,
		Saturated:       saturated,
		Steps:           steps,
	}
	return rep, nil
}

// sweepAccum folds every sweep request into the report-level latency
// histogram and outcome counts.
type sweepAccum struct {
	mu     sync.Mutex
	hist   *obs.Histogram
	total  int
	ok     int
	shed   int
	errors int
	wall   time.Duration
}

func (a *sweepAccum) record(res Result) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.hist.Observe(res.WallMS / 1e3)
	a.total++
	switch {
	case res.Code == 200:
		a.ok++
	case res.Status == "shed":
		a.shed++
	default:
		a.errors++
	}
}

// finish folds the accumulated counts into the report. It snapshots
// under the lock and writes the (single-goroutine) report outside it,
// so Report fields are never mutex-guarded anywhere.
func (a *sweepAccum) finish(rep *Report) {
	a.mu.Lock()
	total, ok, shed, errs := a.total, a.ok, a.shed, a.errors
	wall := a.wall
	snap := a.hist.Snapshot()
	a.mu.Unlock()

	rep.Total, rep.OK, rep.Shed, rep.Errors = total, ok, shed, errs
	//lint:detsource measured run length is the point of this field
	rep.ElapsedSec = wall.Seconds()
	if rep.ElapsedSec > 0 {
		rep.AchievedRPS = float64(total) / rep.ElapsedSec
	}
	rep.Latency = snap
	rep.P50MS = snap.Quantile(0.50) * 1e3
	rep.P90MS = snap.Quantile(0.90) * 1e3
	rep.P99MS = snap.Quantile(0.99) * 1e3
	rep.P999MS = snap.Quantile(0.999) * 1e3
}

// measureStep offers `requests` requests (rounded up to whole waves)
// at concurrency c: each wave releases exactly c goroutines at once
// and drains completely before the next starts.
func measureStep(ctx context.Context, wl *Workload, placer Placer, c, requests int, acc *sweepAccum) SweepStep {
	waves := (requests + c - 1) / c
	step := SweepStep{Concurrency: c}
	idx := 0
	start := time.Now()
	for w := 0; w < waves && ctx.Err() == nil; w++ {
		release := make(chan struct{})
		results := make([]Result, c)
		var wg sync.WaitGroup
		for k := 0; k < c; k++ {
			item := wl.Items[idx%len(wl.Items)]
			idx++
			wg.Add(1)
			go func(k int, item WorkItem) {
				defer wg.Done()
				<-release
				results[k] = placer.Place(ctx, item)
			}(k, item)
		}
		close(release)
		wg.Wait()
		for _, res := range results {
			step.Requests++
			switch {
			case res.Status == "shed":
				step.Shed++
			case res.Code != 200:
				step.Errors++
			}
			acc.record(res)
		}
	}
	elapsed := time.Since(start)
	acc.mu.Lock()
	acc.wall += elapsed
	acc.mu.Unlock()
	if step.Requests > 0 {
		step.ShedRate = float64(step.Shed) / float64(step.Requests)
	}
	if sec := elapsed.Seconds(); sec > 0 {
		//lint:detsource measured throughput is the point of this field
		step.AchievedRPS = float64(step.Requests) / sec
	}
	return step
}

// writeStepStatus prints one live line per measured sweep step.
func writeStepStatus(w io.Writer, s SweepStep) {
	fmt.Fprintf(w, "sweep c=%-3d requests=%-4d shed=%-4d shed_rate=%.3f rps=%.1f\n",
		s.Concurrency, s.Requests, s.Shed, s.ShedRate, s.AchievedRPS)
}
