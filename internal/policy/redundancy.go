package policy

import "rulefit/internal/match"

// Redundancy removal implements the optional first stage of the paper's
// flow chart (Fig. 4), in the spirit of all-match based complete
// redundancy removal [Liu et al.]: a rule is removed when deleting it
// cannot change the policy's decision for any header.
//
// Two forms are detected:
//
//   - upward redundancy: the rule is fully shadowed by higher-priority
//     rules and can never be the first match;
//   - downward redundancy: for every header on which the rule is the
//     first match, the rules below it (or the default) yield the same
//     decision anyway.
//
// The region analysis works on lists of disjoint ternaries produced by
// Subtract. A work budget bounds the region fragmentation; when exceeded
// the rule is conservatively kept, so removal is always sound.

// defaultRedundancyBudget caps the number of region fragments examined per
// rule before conservatively keeping it.
const defaultRedundancyBudget = 4096

// RemoveRedundant returns a copy of p with redundant rules removed, along
// with the number of rules eliminated. The result is semantically
// equivalent to p.
func RemoveRedundant(p *Policy) (*Policy, int) {
	out := p.Clone()
	removed := 0
	// Iterate until fixpoint: removing one rule can expose another.
	for {
		idx := findRedundant(out)
		if idx < 0 {
			return out, removed
		}
		out.Rules = append(out.Rules[:idx], out.Rules[idx+1:]...)
		removed++
	}
}

// findRedundant returns the index of some redundant rule, or -1.
func findRedundant(p *Policy) int {
	for j := range p.Rules {
		if isRedundant(p, j) {
			return j
		}
	}
	return -1
}

// isRedundant reports whether rule j of p can be removed without changing
// any decision.
func isRedundant(p *Policy, j int) bool {
	budget := defaultRedundancyBudget
	// Residual: the headers on which rule j is the first match.
	residual := []match.Ternary{p.Rules[j].Match}
	for u := 0; u < j && len(residual) > 0; u++ {
		var next []match.Ternary
		for _, piece := range residual {
			parts := piece.Subtract(p.Rules[u].Match)
			budget -= len(parts)
			if budget < 0 {
				return false // fragmentation too high; keep the rule
			}
			next = append(next, parts...)
		}
		residual = next
	}
	if len(residual) == 0 {
		return true // upward-redundant: never the first match
	}
	// Downward: all residual headers must get the same action from the
	// rules below j (or the default).
	want := p.Rules[j].Action
	for _, piece := range residual {
		if !uniformDecision(p, j+1, piece, want, &budget) {
			return false
		}
	}
	return true
}

// uniformDecision reports whether every header in region gets decision
// want from rules p.Rules[from:] (falling through to p.Default).
func uniformDecision(p *Policy, from int, region match.Ternary, want Action, budget *int) bool {
	for u := from; u < len(p.Rules); u++ {
		m := p.Rules[u].Match
		if !region.Overlaps(m) {
			continue
		}
		if m.Subsumes(region) {
			return p.Rules[u].Action == want
		}
		// Split: the part inside rule u gets its action; the parts
		// outside continue down the list.
		if p.Rules[u].Action != want {
			return false
		}
		parts := region.Subtract(m)
		*budget -= len(parts)
		if *budget < 0 {
			return false
		}
		for _, part := range parts {
			if !uniformDecision(p, u+1, part, want, budget) {
				return false
			}
		}
		return true
	}
	return p.Default == want
}
