package policy

import (
	"errors"
	"math/rand"
	"testing"

	"rulefit/internal/match"
)

// mk builds a rule from a ternary pattern string.
func mk(pattern string, a Action, prio int) Rule {
	return Rule{Match: match.MustParseTernary(pattern), Action: a, Priority: prio}
}

func TestNewSortsByPriority(t *testing.T) {
	p, err := New(0, []Rule{
		mk("0***", Permit, 1),
		mk("1***", Drop, 3),
		mk("11**", Permit, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Rules[0].Priority != 3 || p.Rules[1].Priority != 2 || p.Rules[2].Priority != 1 {
		t.Errorf("rules not sorted: %v", p.Rules)
	}
}

func TestNewRejectsDuplicatePriorities(t *testing.T) {
	_, err := New(0, []Rule{mk("1*", Permit, 1), mk("0*", Drop, 1)})
	if !errors.Is(err, ErrDuplicatePriority) {
		t.Errorf("err = %v, want ErrDuplicatePriority", err)
	}
}

func TestNewRejectsBadAction(t *testing.T) {
	_, err := New(0, []Rule{{Match: match.MustParseTernary("1*"), Priority: 1}})
	if !errors.Is(err, ErrBadAction) {
		t.Errorf("err = %v, want ErrBadAction", err)
	}
}

func TestNewRejectsWidthMismatch(t *testing.T) {
	_, err := New(0, []Rule{mk("1*", Permit, 2), mk("1**", Drop, 1)})
	if !errors.Is(err, ErrWidthMismatch) {
		t.Errorf("err = %v, want ErrWidthMismatch", err)
	}
}

func TestEvaluateFirstMatchWins(t *testing.T) {
	p := MustNew(0, []Rule{
		mk("11**", Permit, 3),
		mk("1***", Drop, 2),
		mk("****", Permit, 1),
	})
	cases := []struct {
		header uint64
		want   Action
	}{
		{0b1100, Permit}, // hits 11**
		{0b1000, Drop},   // hits 1***
		{0b0000, Permit}, // hits ****
	}
	for _, c := range cases {
		if got := p.Evaluate([]uint64{c.header}); got != c.want {
			t.Errorf("Evaluate(%04b) = %v, want %v", c.header, got, c.want)
		}
	}
}

func TestEvaluateDefault(t *testing.T) {
	p := MustNew(0, []Rule{mk("1111", Drop, 1)})
	if got := p.Evaluate([]uint64{0}); got != Permit {
		t.Errorf("default = %v, want Permit", got)
	}
	p.Default = Drop
	if got := p.Evaluate([]uint64{0}); got != Drop {
		t.Errorf("default = %v, want Drop", got)
	}
}

func TestMatchIndex(t *testing.T) {
	p := MustNew(0, []Rule{mk("11**", Permit, 2), mk("1***", Drop, 1)})
	if got := p.MatchIndex([]uint64{0b1100}); got != 0 {
		t.Errorf("MatchIndex = %d, want 0", got)
	}
	if got := p.MatchIndex([]uint64{0b1000}); got != 1 {
		t.Errorf("MatchIndex = %d, want 1", got)
	}
	if got := p.MatchIndex([]uint64{0b0000}); got != -1 {
		t.Errorf("MatchIndex = %d, want -1", got)
	}
}

func TestDropRules(t *testing.T) {
	p := MustNew(0, []Rule{
		mk("11**", Permit, 3),
		mk("1***", Drop, 2),
		mk("0***", Drop, 1),
	})
	got := p.DropRules()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("DropRules = %v, want [1 2]", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := MustNew(3, []Rule{mk("1*", Drop, 1)})
	c := p.Clone()
	c.Rules[0].Priority = 99
	c.Ingress = 7
	if p.Rules[0].Priority != 1 || p.Ingress != 3 {
		t.Error("Clone is not independent")
	}
}

func TestRemoveRedundantShadowed(t *testing.T) {
	// The low-priority drop is fully shadowed by the rules above it;
	// the other two rules are both load-bearing.
	p := MustNew(0, []Rule{
		mk("11**", Permit, 3),
		mk("1***", Drop, 2),
		mk("11**", Drop, 1), // shadowed by the permit above
	})
	out, n := RemoveRedundant(p)
	if n != 1 || len(out.Rules) != 2 {
		t.Fatalf("removed %d rules, got %d left; want 1 removed", n, len(out.Rules))
	}
	assertEquivalentExhaustive(t, p, out, 4)
}

func TestRemoveRedundantDownward(t *testing.T) {
	// The drop rule's decision matches what the wider drop below gives.
	p := MustNew(0, []Rule{
		mk("11**", Drop, 2),
		mk("1***", Drop, 1),
	})
	out, n := RemoveRedundant(p)
	if n != 1 {
		t.Fatalf("removed %d, want 1", n)
	}
	assertEquivalentExhaustive(t, p, out, 4)
}

func TestRemoveRedundantDefaultFallthrough(t *testing.T) {
	// Permit rule above default-permit is redundant.
	p := MustNew(0, []Rule{mk("10**", Permit, 1)})
	out, n := RemoveRedundant(p)
	if n != 1 || len(out.Rules) != 0 {
		t.Fatalf("removed %d, want 1 (permit matching default)", n)
	}
	assertEquivalentExhaustive(t, p, out, 4)
}

func TestRemoveRedundantKeepsNeededRules(t *testing.T) {
	p := MustNew(0, []Rule{
		mk("11**", Permit, 2), // carves a permit hole out of the drop
		mk("1***", Drop, 1),
	})
	out, n := RemoveRedundant(p)
	if n != 0 || len(out.Rules) != 2 {
		t.Fatalf("removed %d rules, want 0", n)
	}
}

func TestRemoveRedundantPartialShadowNotRemoved(t *testing.T) {
	// Drop 1*** is partially shadowed by permit 11** but still needed
	// for 10** headers.
	p := MustNew(0, []Rule{
		mk("11**", Permit, 2),
		mk("1***", Drop, 1),
	})
	_, n := RemoveRedundant(p)
	if n != 0 {
		t.Fatalf("removed %d, want 0", n)
	}
}

// assertEquivalentExhaustive checks a == b on every header of the width.
func assertEquivalentExhaustive(t *testing.T, a, b *Policy, width int) {
	t.Helper()
	for h := uint64(0); h < 1<<uint(width); h++ {
		if ga, gb := a.Evaluate([]uint64{h}), b.Evaluate([]uint64{h}); ga != gb {
			t.Fatalf("policies disagree at %0*b: %v vs %v", width, h, ga, gb)
		}
	}
}

func TestRemoveRedundantPropertyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const width = 8
	for iter := 0; iter < 120; iter++ {
		n := 3 + rng.Intn(8)
		rules := make([]Rule, 0, n)
		for i := 0; i < n; i++ {
			tn := match.NewTernary(width)
			for b := 0; b < width; b++ {
				switch rng.Intn(3) {
				case 0:
					tn = tn.SetBit(b, false)
				case 1:
					tn = tn.SetBit(b, true)
				}
			}
			a := Permit
			if rng.Intn(2) == 0 {
				a = Drop
			}
			rules = append(rules, Rule{Match: tn, Action: a, Priority: n - i})
		}
		p := MustNew(0, rules)
		out, _ := RemoveRedundant(p)
		assertEquivalentExhaustive(t, p, out, width)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(4, GenConfig{NumRules: 40, Seed: 9})
	b := Generate(4, GenConfig{NumRules: 40, Seed: 9})
	if len(a.Rules) != 40 || len(b.Rules) != 40 {
		t.Fatalf("rule counts: %d, %d", len(a.Rules), len(b.Rules))
	}
	for i := range a.Rules {
		if !a.Rules[i].Match.Equal(b.Rules[i].Match) || a.Rules[i].Action != b.Rules[i].Action {
			t.Fatalf("rule %d differs between identical seeds", i)
		}
	}
	c := Generate(4, GenConfig{NumRules: 40, Seed: 10})
	same := true
	for i := range a.Rules {
		if !a.Rules[i].Match.Equal(c.Rules[i].Match) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical policies")
	}
}

func TestGenerateStructure(t *testing.T) {
	p := Generate(0, GenConfig{NumRules: 80, Seed: 3})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	drops, permits := 0, 0
	for _, r := range p.Rules {
		if r.Action == Drop {
			drops++
		} else {
			permits++
		}
	}
	if drops == 0 || permits == 0 {
		t.Errorf("degenerate action mix: %d drops, %d permits", drops, permits)
	}
	// The generator must produce permit-over-drop overlaps (dependencies).
	deps := 0
	for w, rw := range p.Rules {
		if rw.Action != Drop {
			continue
		}
		for u := 0; u < w; u++ {
			if p.Rules[u].Action == Permit && p.Rules[u].Match.Overlaps(rw.Match) {
				deps++
			}
		}
	}
	if deps == 0 {
		t.Error("generator produced no permit-over-drop dependencies")
	}
}

func TestGenerateWidths(t *testing.T) {
	p := Generate(1, GenConfig{NumRules: 10, Seed: 1})
	if p.Width() != match.HeaderWidth {
		t.Errorf("width = %d, want %d", p.Width(), match.HeaderWidth)
	}
}

func TestBlacklist(t *testing.T) {
	bl := GenerateBlacklist(5, 2)
	if len(bl) != 5 {
		t.Fatalf("len = %d", len(bl))
	}
	for i, r := range bl {
		if r.Action != Drop {
			t.Errorf("blacklist rule %d is %v, want DROP", i, r.Action)
		}
	}
	// Identical across calls with the same seed (mergeable by design).
	bl2 := GenerateBlacklist(5, 2)
	for i := range bl {
		if !bl[i].Match.Equal(bl2[i].Match) {
			t.Errorf("blacklist rule %d not deterministic", i)
		}
	}

	p := Generate(0, GenConfig{NumRules: 10, Seed: 5})
	withBL := WithBlacklist(p, bl)
	if err := withBL.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(withBL.Rules) != 15 {
		t.Fatalf("combined rules = %d, want 15", len(withBL.Rules))
	}
	// Blacklist must sit at the top priorities.
	for i := 0; i < 5; i++ {
		if !withBL.Rules[i].Match.Equal(bl[i].Match) {
			t.Errorf("rule %d is not blacklist rule %d", i, i)
		}
	}
}

func TestActionString(t *testing.T) {
	if Permit.String() != "PERMIT" || Drop.String() != "DROP" {
		t.Error("action strings wrong")
	}
	if Action(0).String() != "Action(0)" {
		t.Error("unknown action string wrong")
	}
}

func TestPolicyString(t *testing.T) {
	p := MustNew(2, []Rule{mk("1*", Drop, 1)})
	s := p.String()
	if s == "" || p.Rules[0].String() == "" {
		t.Error("empty String output")
	}
}

func TestEquivalentHelper(t *testing.T) {
	a := MustNew(0, []Rule{mk("1***", Drop, 1)})
	b := MustNew(0, []Rule{mk("1***", Drop, 1)})
	c := MustNew(0, []Rule{mk("0***", Drop, 1)})
	headers := [][]uint64{{0b1000}, {0b0000}, {0b1111}}
	if !Equivalent(a, b, headers) {
		t.Error("identical policies reported non-equivalent")
	}
	if Equivalent(a, c, headers) {
		t.Error("different policies reported equivalent")
	}
}
