package policy

import (
	"fmt"
	"math/rand"

	"rulefit/internal/match"
)

// The synthetic policy generator stands in for ClassBench [27]: it emits
// prefix-structured 5-tuple firewall policies whose rules cluster around
// shared address blocks, producing the overlapping PERMIT/DROP structure
// (and hence rule-dependency edges) that drives the placement problem.
// Generation is fully deterministic given the seed, so scalability sweeps
// are repeatable.

// GenConfig parameterizes synthetic policy generation.
type GenConfig struct {
	// NumRules is the number of rules in the policy (paper: 20–110).
	NumRules int
	// DropFraction is the fraction of DROP rules (default 0.4).
	DropFraction float64
	// Clusters is the number of address clusters rules are drawn from;
	// more clusters means fewer overlaps (default max(2, NumRules/8)).
	Clusters int
	// DstPool optionally pins destination clusters to the given base
	// addresses (e.g. the prefixes assigned to egress ports), so the
	// rules overlap per-path traffic slices (§IV-C workloads).
	DstPool []uint32
	// Seed makes generation deterministic.
	Seed int64
}

// withDefaults fills zero fields with sensible defaults.
func (c GenConfig) withDefaults() GenConfig {
	//lint:exactfloat zero-value means "unset" on a user-assigned config field; it is never computed
	if c.DropFraction == 0 {
		c.DropFraction = 0.4
	}
	if c.Clusters == 0 {
		c.Clusters = c.NumRules / 8
		if c.Clusters < 2 {
			c.Clusters = 2
		}
	}
	return c
}

// cluster is a shared address neighborhood rules refine.
type cluster struct {
	srcBase uint32
	dstBase uint32
}

// Generate builds a synthetic prioritized policy for the given ingress.
func Generate(ingress int, cfg GenConfig) *Policy {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(ingress)*97 + 1))

	clusters := make([]cluster, cfg.Clusters)
	for i := range clusters {
		dst := rng.Uint32()
		if len(cfg.DstPool) > 0 {
			dst = cfg.DstPool[rng.Intn(len(cfg.DstPool))]
		}
		clusters[i] = cluster{srcBase: rng.Uint32(), dstBase: dst}
	}

	rules := make([]Rule, 0, cfg.NumRules)
	for i := 0; i < cfg.NumRules; i++ {
		c := clusters[rng.Intn(len(clusters))]
		action := Permit
		if rng.Float64() < cfg.DropFraction {
			action = Drop
		}
		// Higher-priority rules tend to be narrower (longer prefixes) so
		// that narrow PERMITs sit above wide DROPs — the shape that
		// creates rule-dependency edges.
		narrow := i < cfg.NumRules/2
		rules = append(rules, Rule{
			Match:    randomClusterMatch(rng, c, narrow),
			Action:   action,
			Priority: cfg.NumRules - i,
		})
	}
	p, err := New(ingress, rules)
	if err != nil {
		// Construction only fails on duplicate priorities, which the
		// loop above cannot produce.
		panic(fmt.Sprintf("policy: generator produced invalid policy: %v", err))
	}
	return p
}

// randomClusterMatch draws a 5-tuple match around a cluster.
func randomClusterMatch(rng *rand.Rand, c cluster, narrow bool) match.Ternary {
	srcLen := 8 + rng.Intn(9) // /8 .. /16
	dstLen := 8 + rng.Intn(9)
	if narrow {
		srcLen = 16 + rng.Intn(13) // /16 .. /28
		dstLen = 16 + rng.Intn(13)
	}
	ft := match.FiveTuple{
		SrcIP:     jitterLow(rng, c.srcBase, srcLen),
		SrcPfxLen: srcLen,
		DstIP:     jitterLow(rng, c.dstBase, dstLen),
		DstPfxLen: dstLen,
		ProtoAny:  true,
	}
	switch rng.Intn(5) {
	case 0:
		ft.Proto, ft.ProtoAny = 6, false // TCP
	case 1:
		ft.Proto, ft.ProtoAny = 17, false // UDP
	}
	if rng.Intn(4) == 0 {
		ft.DstPort, ft.DstExact = wellKnownPort(rng), true
	}
	return ft.Ternary()
}

// jitterLow randomizes the bits below the prefix length and occasionally
// nudges bits just inside it, producing sibling prefixes that partially
// overlap shorter ones from the same cluster.
func jitterLow(rng *rand.Rand, base uint32, plen int) uint32 {
	mask := uint32(0xFFFFFFFF)
	if plen < 32 {
		mask <<= uint(32 - plen)
	}
	v := base & mask
	if plen >= 12 && rng.Intn(3) == 0 {
		v ^= 1 << uint(32-plen+rng.Intn(4)) // flip a bit near the boundary
	}
	return v
}

// wellKnownPort picks from a small set of common service ports.
func wellKnownPort(rng *rand.Rand) uint16 {
	ports := []uint16{22, 25, 53, 80, 123, 443, 3306, 8080}
	return ports[rng.Intn(len(ports))]
}

// GenerateBlacklist builds count identical network-wide DROP rules (the
// mergeable rules of §IV-B): source-prefix blocks every policy shares.
func GenerateBlacklist(count int, seed int64) []Rule {
	rng := rand.New(rand.NewSource(seed*7_919 + 5))
	rules := make([]Rule, 0, count)
	for i := 0; i < count; i++ {
		plen := 16 + rng.Intn(9)
		ft := match.FiveTuple{
			SrcIP:     rng.Uint32(),
			SrcPfxLen: plen,
			ProtoAny:  true,
		}
		rules = append(rules, Rule{Match: ft.Ternary(), Action: Drop})
	}
	return rules
}

// WithBlacklist returns a copy of p with the blacklist rules prepended at
// the highest priorities (network-wide blocks take precedence). Rule
// priorities of the blacklist are rewritten relative to p.
func WithBlacklist(p *Policy, blacklist []Rule) *Policy {
	out := p.Clone()
	top := 0
	if len(out.Rules) > 0 {
		top = out.Rules[0].Priority
	}
	pre := make([]Rule, len(blacklist))
	for i, r := range blacklist {
		r.Priority = top + len(blacklist) - i
		pre[i] = r
	}
	out.Rules = append(pre, out.Rules...)
	return out
}
