// Package policy models prioritized access-control (firewall) policies:
// rule lists with ternary matches, PERMIT/DROP actions, and strict
// priorities, as attached to each network ingress in the paper's problem
// formulation (§III). It also provides redundancy removal (the optional
// first stage of the paper's flow, Fig. 4) and a ClassBench-style
// synthetic policy generator used by the experimental evaluation.
package policy

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"rulefit/internal/match"
)

// Action is a firewall rule decision.
type Action int

// Firewall actions. The paper's model is binary: a packet is either
// permitted or dropped.
const (
	Permit Action = iota + 1
	Drop
)

// String renders the action in the paper's notation.
func (a Action) String() string {
	switch a {
	case Permit:
		return "PERMIT"
	case Drop:
		return "DROP"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Rule is a single ACL rule r = (m, d, t): a ternary matching field, a
// binary decision, and a strict priority (higher t = higher priority).
type Rule struct {
	Match    match.Ternary
	Action   Action
	Priority int
}

// String renders the rule for debugging and example output.
func (r Rule) String() string {
	return fmt.Sprintf("[t=%d] %s -> %s", r.Priority, r.Match, r.Action)
}

// Policy is the prioritized rule list Q_i attached to one network ingress.
// Rules are kept sorted by decreasing priority (matching order).
type Policy struct {
	// Ingress identifies the network ingress port l_i this policy guards.
	Ingress int
	// Rules in decreasing priority order.
	Rules []Rule
	// Default is the action for packets matching no rule. The common
	// firewall convention (and this package's zero-value default) is
	// Permit: DROP rules enumerate the forbidden traffic.
	Default Action
}

// Validation errors.
var (
	ErrDuplicatePriority = errors.New("policy: duplicate rule priority")
	ErrBadAction         = errors.New("policy: rule action must be Permit or Drop")
	ErrWidthMismatch     = errors.New("policy: rules have differing match widths")
)

// New constructs a validated policy from rules in any order. Rules are
// sorted by decreasing priority; duplicate priorities are rejected.
func New(ingress int, rules []Rule) (*Policy, error) {
	p := &Policy{Ingress: ingress, Rules: append([]Rule(nil), rules...), Default: Permit}
	sort.SliceStable(p.Rules, func(a, b int) bool { return p.Rules[a].Priority > p.Rules[b].Priority })
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustNew is New that panics on error, for tests and static examples.
func MustNew(ingress int, rules []Rule) *Policy {
	p, err := New(ingress, rules)
	if err != nil {
		panic(err)
	}
	return p
}

// Validate checks structural invariants: unique priorities, sorted order,
// legal actions, and uniform match width.
func (p *Policy) Validate() error {
	if p.Default != Permit && p.Default != Drop {
		return fmt.Errorf("%w: default %v", ErrBadAction, p.Default)
	}
	width := -1
	for i, r := range p.Rules {
		if r.Action != Permit && r.Action != Drop {
			return fmt.Errorf("%w: rule %d has action %v", ErrBadAction, i, r.Action)
		}
		if width == -1 {
			width = r.Match.Width()
		} else if r.Match.Width() != width {
			return fmt.Errorf("%w: rule %d has width %d, want %d", ErrWidthMismatch, i, r.Match.Width(), width)
		}
		if i > 0 {
			prev := p.Rules[i-1]
			if r.Priority == prev.Priority {
				return fmt.Errorf("%w: priority %d", ErrDuplicatePriority, r.Priority)
			}
			if r.Priority > prev.Priority {
				return fmt.Errorf("policy: rules not sorted by decreasing priority at index %d", i)
			}
		}
	}
	return nil
}

// Width returns the match width of the policy's rules, or 0 if empty.
func (p *Policy) Width() int {
	if len(p.Rules) == 0 {
		return 0
	}
	return p.Rules[0].Match.Width()
}

// Evaluate returns the policy's decision for a packed header: the action
// of the highest-priority matching rule, or Default if none matches.
func (p *Policy) Evaluate(header []uint64) Action {
	for _, r := range p.Rules {
		if r.Match.MatchesWords(header) {
			return r.Action
		}
	}
	return p.Default
}

// MatchIndex returns the index (into Rules) of the highest-priority rule
// matching the header, or -1 when no rule matches.
func (p *Policy) MatchIndex(header []uint64) int {
	for i, r := range p.Rules {
		if r.Match.MatchesWords(header) {
			return i
		}
	}
	return -1
}

// Clone returns a deep-enough copy of p (rules slice copied; ternaries are
// immutable by convention).
func (p *Policy) Clone() *Policy {
	return &Policy{Ingress: p.Ingress, Rules: append([]Rule(nil), p.Rules...), Default: p.Default}
}

// DropRules returns the indices of DROP rules in priority order.
func (p *Policy) DropRules() []int {
	var out []int
	for i, r := range p.Rules {
		if r.Action == Drop {
			out = append(out, i)
		}
	}
	return out
}

// String renders the whole policy.
func (p *Policy) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "policy Q_%d (default %s):\n", p.Ingress, p.Default)
	for _, r := range p.Rules {
		fmt.Fprintf(&sb, "  %s\n", r)
	}
	return sb.String()
}

// Equivalent reports whether two policies make the same decision for every
// header, verified by structural sampling: for each rule region in either
// policy (and each pairwise intersection), it compares decisions at
// sampled corner headers. It is sound for the generated prefix-structured
// policies used in tests; exhaustive checks in tests complement it.
func Equivalent(a, b *Policy, headers [][]uint64) bool {
	for _, h := range headers {
		if a.Evaluate(h) != b.Evaluate(h) {
			return false
		}
	}
	return true
}
