package randgen_test

import (
	"encoding/json"
	"testing"

	"rulefit/internal/diffcheck"
	"rulefit/internal/policy"
	"rulefit/internal/randgen"
)

// instanceBytes serializes a generated problem canonically (via the
// explicit spec form used by regression fixtures), so byte equality
// means deep structural equality.
func instanceBytes(t *testing.T, inst *randgen.Instance) []byte {
	t.Helper()
	data, err := json.Marshal(diffcheck.ProblemToSpec(inst.Problem))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGenerateDeterministic: the generator is a pure function of the
// config — generating the same seed twice yields byte-identical
// instances. This is what makes every soak failure reproducible from
// its seed alone.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		cfg := randgen.FromSeed(seed)
		a, err := randgen.Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := randgen.Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ba, bb := instanceBytes(t, a), instanceBytes(t, b)
		if string(ba) != string(bb) {
			t.Fatalf("seed %d: two generations differ:\n%s\nvs\n%s", seed, ba, bb)
		}
	}
}

// TestFromSeedGenerates: every quick-suite seed yields a valid,
// non-trivial instance (at least one DROP rule per policy, so the
// placement problem has variables).
func TestFromSeedGenerates(t *testing.T) {
	families := map[randgen.Topo]int{}
	widths := map[int]int{}
	caps := map[randgen.CapProfile]int{}
	for seed := int64(1); seed <= 300; seed++ {
		cfg := randgen.FromSeed(seed)
		inst, err := randgen.Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d (%+v): %v", seed, cfg, err)
		}
		if err := inst.Problem.Validate(); err != nil {
			t.Fatalf("seed %d: invalid problem: %v", seed, err)
		}
		if len(inst.Problem.Policies) == 0 {
			t.Fatalf("seed %d: no policies", seed)
		}
		for _, pol := range inst.Problem.Policies {
			if len(pol.DropRules()) == 0 {
				t.Fatalf("seed %d: policy %d has no DROP rules", seed, pol.Ingress)
			}
		}
		families[inst.Config.Topo]++
		widths[inst.Config.Width]++
		caps[inst.Config.Capacity]++
	}
	// The seed sweep must exercise the whole configuration space.
	for _, f := range []randgen.Topo{randgen.TopoLinear, randgen.TopoRing, randgen.TopoRandom, randgen.TopoFatTree} {
		if families[f] == 0 {
			t.Errorf("no instance used topology %v", f)
		}
	}
	if widths[0] == 0 {
		t.Error("no 5-tuple instances generated")
	}
	for _, c := range []randgen.CapProfile{randgen.CapTight, randgen.CapMedium, randgen.CapSlack} {
		if caps[c] == 0 {
			t.Errorf("no instance used capacity profile %v", c)
		}
	}
}

// TestNarrowSlices: with TrafficSlices on a narrow width, every path
// carries a slice of the policy's own width (a width mismatch would
// break match.Ternary operations inside the encoder).
func TestNarrowSlices(t *testing.T) {
	cfg := randgen.Config{Seed: 7, Topo: randgen.TopoRing, Switches: 4, Width: 8,
		Ingresses: 2, PathsPerIngress: 2, TrafficSlices: true}
	inst, err := randgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range inst.Problem.Routing.Ingresses() {
		for _, p := range inst.Problem.Routing.Sets[in].Paths {
			if !p.HasTraffic {
				t.Fatalf("path %v has no traffic slice", p)
			}
			if p.Traffic.Width() != 8 {
				t.Fatalf("path %v slice width %d, want 8", p, p.Traffic.Width())
			}
		}
	}
}

// TestSharedDropsMergeable: SharedDrops prepends identical top-priority
// DROP rules to every policy — the §IV-B merge groups.
func TestSharedDropsMergeable(t *testing.T) {
	cfg := randgen.Config{Seed: 11, Topo: randgen.TopoLinear, Switches: 3,
		Ingresses: 2, PathsPerIngress: 1, SharedDrops: 2, Width: 10}
	inst, err := randgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Problem.Policies) < 2 {
		t.Skip("topology exposed fewer than 2 ingresses")
	}
	a, b := inst.Problem.Policies[0], inst.Problem.Policies[1]
	for i := 0; i < 2; i++ {
		if a.Rules[i].Action != policy.Drop {
			t.Fatalf("shared rule %d is not DROP", i)
		}
		if a.Rules[i].Match.Key() != b.Rules[i].Match.Key() {
			t.Fatalf("shared rule %d differs across policies", i)
		}
	}
}

// TestSoakConfigGenerates: the soak profile also yields valid instances.
func TestSoakConfigGenerates(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		inst, err := randgen.Generate(randgen.SoakConfig(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := inst.Problem.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
