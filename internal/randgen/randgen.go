// Package randgen generates random rule-placement instances for the
// differential-testing harness (internal/diffcheck): seeded, byte-
// deterministic combinations of a topology (fat-tree, random graph,
// linear, ring), randomized shortest-path routing, and prioritized ACL
// policies with controlled overlap density — either narrow-width
// ternary policies (amenable to exhaustive header-space verification)
// or the evaluation's 5-tuple ClassBench-style policies. Capacity
// profiles range from tight (frequently infeasible) to slack (always
// feasible), so both answers of the decision problem are exercised.
package randgen

import (
	"fmt"
	"math/rand"

	"rulefit/internal/core"
	"rulefit/internal/match"
	"rulefit/internal/policy"
	"rulefit/internal/routing"
	"rulefit/internal/topology"
)

// Topo selects the topology family.
type Topo int

// Topology families.
const (
	TopoLinear Topo = iota + 1
	TopoRing
	TopoRandom
	TopoFatTree
)

// String renders the topology family name.
func (t Topo) String() string {
	switch t {
	case TopoLinear:
		return "linear"
	case TopoRing:
		return "ring"
	case TopoRandom:
		return "random"
	case TopoFatTree:
		return "fattree"
	default:
		return fmt.Sprintf("Topo(%d)", int(t))
	}
}

// CapProfile selects how switch capacities relate to demand.
type CapProfile int

// Capacity profiles, from frequently-infeasible to always-feasible.
const (
	// CapTight draws capacities in [1, 3]; many instances are
	// infeasible, exercising agreement on the "no" answer.
	CapTight CapProfile = iota + 1
	// CapMedium sizes capacities near the per-policy rule count, so
	// placements are feasible but constrained.
	CapMedium
	// CapSlack gives every switch room for every rule.
	CapSlack
)

// String renders the profile name.
func (p CapProfile) String() string {
	switch p {
	case CapTight:
		return "tight"
	case CapMedium:
		return "medium"
	case CapSlack:
		return "slack"
	default:
		return fmt.Sprintf("CapProfile(%d)", int(p))
	}
}

// Config parameterizes instance generation. Generation is a pure
// function of the config (including Seed).
type Config struct {
	Seed int64
	Topo Topo
	// Switches sizes linear/ring/random topologies; Degree the random
	// graph's target degree; FatTreeK the fat-tree arity (even).
	Switches int
	Degree   int
	FatTreeK int
	// Ingresses and PathsPerIngress shape the routing (clamped to the
	// topology's available ports).
	Ingresses       int
	PathsPerIngress int
	// RulesPerPolicy is the ACL length per ingress.
	RulesPerPolicy int
	// Width is the header width in bits for narrow ternary policies;
	// 0 generates 5-tuple (104-bit) policies via policy.Generate.
	Width int
	// OverlapDensity in [0, 1] is the probability that a rule's match is
	// derived from an earlier rule's region (narrowed, widened, or a
	// sibling) instead of drawn fresh — more overlap means more rule
	// dependency edges.
	OverlapDensity float64
	// DropFraction is the fraction of DROP rules (every policy is
	// nudged to contain at least one).
	DropFraction float64
	// SharedDrops prepends this many identical top-priority DROP rules
	// to every policy, creating §IV-B merge groups.
	SharedDrops int
	// Capacity selects the capacity profile.
	Capacity CapProfile
	// TrafficSlices assigns a per-path traffic slice (§IV-C): the
	// evaluation's destination prefixes for 5-tuple policies, or a
	// top-bits egress slice for narrow widths.
	TrafficSlices bool
}

// withDefaults fills unset knobs.
func (c Config) withDefaults() Config {
	if c.Topo == 0 {
		c.Topo = TopoLinear
	}
	if c.Switches == 0 {
		c.Switches = 4
	}
	if c.Degree == 0 {
		c.Degree = 3
	}
	if c.FatTreeK == 0 {
		c.FatTreeK = 2
	}
	if c.Ingresses == 0 {
		c.Ingresses = 1
	}
	if c.PathsPerIngress == 0 {
		c.PathsPerIngress = 2
	}
	if c.RulesPerPolicy == 0 {
		c.RulesPerPolicy = 5
	}
	//lint:exactfloat zero-value means "unset" on a user-assigned config field; it is never computed
	if c.OverlapDensity == 0 {
		c.OverlapDensity = 0.5
	}
	//lint:exactfloat zero-value means "unset" on a user-assigned config field; it is never computed
	if c.DropFraction == 0 {
		c.DropFraction = 0.4
	}
	if c.Capacity == 0 {
		c.Capacity = CapSlack
	}
	return c
}

// Instance is one generated placement problem plus the config that
// produced it (kept for shrinking and reporting).
type Instance struct {
	Config  Config
	Problem *core.Problem
}

// Generate builds the instance for a config. The same config always
// yields a deeply identical problem.
func Generate(cfg Config) (*Instance, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + 17))

	topo, err := buildTopology(cfg)
	if err != nil {
		return nil, err
	}
	pairs, err := routing.SpreadPairs(topo, cfg.Ingresses, cfg.PathsPerIngress, cfg.Seed*31+5)
	if err != nil {
		return nil, err
	}
	rt, err := routing.BuildRouting(topo, pairs, cfg.Seed*53+9)
	if err != nil {
		return nil, err
	}
	if cfg.TrafficSlices {
		if cfg.Width == 0 {
			routing.AssignTrafficSlices(rt)
		} else {
			assignNarrowSlices(rt, cfg.Width)
		}
	}

	shared := sharedDrops(cfg, rng)
	var pols []*policy.Policy
	for _, in := range rt.Ingresses() {
		var pol *policy.Policy
		if cfg.Width == 0 {
			pol = policy.Generate(int(in), policy.GenConfig{
				NumRules:     cfg.RulesPerPolicy,
				DropFraction: cfg.DropFraction,
				DstPool:      dstPool(cfg, rt),
				Seed:         cfg.Seed,
			})
		} else {
			pol = narrowPolicy(int(in), cfg, rng)
		}
		if len(pol.DropRules()) == 0 && len(pol.Rules) > 0 {
			// A policy without DROP rules contributes no placement
			// variables; force one so every instance is non-trivial.
			pol.Rules[len(pol.Rules)-1].Action = policy.Drop
		}
		if len(shared) > 0 {
			pol = policy.WithBlacklist(pol, shared)
		}
		pols = append(pols, pol)
	}

	setCapacities(topo, cfg, rng)
	prob := &core.Problem{Network: topo, Routing: rt, Policies: pols}
	if err := prob.Validate(); err != nil {
		return nil, fmt.Errorf("randgen: generated invalid problem: %w", err)
	}
	return &Instance{Config: cfg, Problem: prob}, nil
}

// buildTopology materializes the topology family with a placeholder
// capacity (profiles are applied after generation).
func buildTopology(cfg Config) (*topology.Network, error) {
	const placeholder = 1 << 20
	switch cfg.Topo {
	case TopoLinear:
		return topology.Linear(maxInt(cfg.Switches, 1), placeholder)
	case TopoRing:
		return topology.Ring(maxInt(cfg.Switches, 3), placeholder)
	case TopoRandom:
		return topology.RandomConnected(maxInt(cfg.Switches, 2), cfg.Degree, placeholder, cfg.Seed*7+3)
	case TopoFatTree:
		k := cfg.FatTreeK
		if k%2 != 0 || k <= 0 {
			k = 2
		}
		return topology.FatTree(k, placeholder, 2)
	default:
		return nil, fmt.Errorf("randgen: unknown topology %v", cfg.Topo)
	}
}

// setCapacities applies the capacity profile uniformly.
func setCapacities(topo *topology.Network, cfg Config, rng *rand.Rand) {
	total := cfg.RulesPerPolicy + cfg.SharedDrops
	switch cfg.Capacity {
	case CapTight:
		topo.SetCapacity(1 + rng.Intn(3))
	case CapMedium:
		topo.SetCapacity(maxInt(3, total/2+rng.Intn(total+1)))
	default:
		topo.SetCapacity(1 << 16)
	}
}

// narrowPolicy generates a width-bit ternary policy with controlled
// overlap: each rule either mutates a previous rule's region or draws a
// fresh random ternary.
func narrowPolicy(ingress int, cfg Config, rng *rand.Rand) *policy.Policy {
	n := cfg.RulesPerPolicy
	rules := make([]policy.Rule, 0, n)
	var matches []match.Ternary
	haveDrop := false
	for i := 0; i < n; i++ {
		var m match.Ternary
		if len(matches) > 0 && rng.Float64() < cfg.OverlapDensity {
			m = mutateTernary(matches[rng.Intn(len(matches))], rng)
		} else {
			m = randomTernary(cfg.Width, rng)
		}
		matches = append(matches, m)
		action := policy.Permit
		if rng.Float64() < cfg.DropFraction {
			action = policy.Drop
			haveDrop = true
		}
		rules = append(rules, policy.Rule{Match: m, Action: action, Priority: n - i})
	}
	if !haveDrop {
		// A policy without DROP rules contributes nothing to the
		// placement problem; force one so every instance is non-trivial.
		rules[len(rules)-1].Action = policy.Drop
	}
	return policy.MustNew(ingress, rules)
}

// randomTernary draws a ternary where each bit is wildcard with
// probability ~0.5, else an exact 0/1.
func randomTernary(width int, rng *rand.Rand) match.Ternary {
	t := match.NewTernary(width)
	for b := 0; b < width; b++ {
		switch rng.Intn(4) {
		case 0, 1:
			// wildcard
		case 2:
			t = t.SetBit(b, false)
		case 3:
			t = t.SetBit(b, true)
		}
	}
	return t
}

// mutateTernary derives an overlapping (or adjacent) region from a base
// match: narrow a wildcard bit, widen an exact bit, or flip an exact
// bit to produce a disjoint sibling.
func mutateTernary(base match.Ternary, rng *rand.Rand) match.Ternary {
	w := base.Width()
	if w == 0 {
		return base
	}
	bit := rng.Intn(w)
	care, one := base.Bit(bit)
	switch {
	case !care:
		return base.SetBit(bit, rng.Intn(2) == 1)
	case rng.Intn(2) == 0:
		return base.SetWildcard(bit)
	default:
		return base.SetBit(bit, !one)
	}
}

// sharedDrops builds the identical cross-policy DROP rules (mergeable
// per §IV-B) for the configured width.
func sharedDrops(cfg Config, rng *rand.Rand) []policy.Rule {
	if cfg.SharedDrops <= 0 {
		return nil
	}
	rules := make([]policy.Rule, 0, cfg.SharedDrops)
	for i := 0; i < cfg.SharedDrops; i++ {
		var m match.Ternary
		if cfg.Width == 0 {
			plen := 12 + rng.Intn(13)
			m = match.SrcPrefixTernary(rng.Uint32(), plen)
		} else {
			m = randomTernary(cfg.Width, rng)
		}
		rules = append(rules, policy.Rule{Match: m, Action: policy.Drop})
	}
	return rules
}

// dstPool returns the egress destination prefixes when traffic slices
// are on, so generated 5-tuple rules overlap the per-path slices.
func dstPool(cfg Config, rt *routing.Routing) []uint32 {
	if !cfg.TrafficSlices {
		return nil
	}
	var pool []uint32
	seen := map[topology.PortID]bool{}
	for _, in := range rt.Ingresses() {
		for _, p := range rt.Sets[in].Paths {
			if seen[p.Egress] {
				continue
			}
			seen[p.Egress] = true
			ip, _ := routing.EgressPrefix(p.Egress)
			pool = append(pool, ip)
		}
	}
	return pool
}

// assignNarrowSlices gives each path a slice fixing the top two bits of
// the (narrow) header to the path's egress port, the narrow-width
// analogue of routing.AssignTrafficSlices.
func assignNarrowSlices(rt *routing.Routing, width int) {
	bits := 2
	if width < 3 {
		bits = 1
	}
	for _, in := range rt.Ingresses() {
		ps := rt.Sets[in]
		for i := range ps.Paths {
			v := uint64(ps.Paths[i].Egress) % (1 << uint(bits))
			ps.Paths[i].Traffic = match.NewTernary(width).SetField(width-bits, bits, v)
			ps.Paths[i].HasTraffic = true
		}
	}
}

// FromSeed derives a small quick-suite config from a seed: the shape
// knobs (topology family, sizes, width, overlap, capacity profile,
// merging, slicing) are themselves drawn deterministically from the
// seed, so a sweep over seeds covers the configuration space. The
// instances are deliberately tiny — a few switches, a handful of rules —
// so the ILP, SAT, and exhaustive oracles all answer in milliseconds.
func FromSeed(seed int64) Config {
	rng := rand.New(rand.NewSource(seed*2_654_435_761 + 101))
	cfg := Config{Seed: seed}
	switch rng.Intn(4) {
	case 0:
		cfg.Topo = TopoLinear
		cfg.Switches = 2 + rng.Intn(4)
	case 1:
		cfg.Topo = TopoRing
		cfg.Switches = 3 + rng.Intn(4)
	case 2:
		cfg.Topo = TopoRandom
		cfg.Switches = 3 + rng.Intn(5)
		cfg.Degree = 2 + rng.Intn(2)
	default:
		cfg.Topo = TopoFatTree
		cfg.FatTreeK = 2
	}
	cfg.Ingresses = 1 + rng.Intn(2)
	cfg.PathsPerIngress = 1 + rng.Intn(3)
	cfg.RulesPerPolicy = 3 + rng.Intn(4)
	if rng.Intn(3) == 0 {
		cfg.Width = 0 // 5-tuple
	} else {
		cfg.Width = 6 + rng.Intn(6)
	}
	cfg.OverlapDensity = 0.3 + 0.5*rng.Float64()
	cfg.DropFraction = 0.3 + 0.3*rng.Float64()
	switch rng.Intn(3) {
	case 0:
		cfg.Capacity = CapTight
	case 1:
		cfg.Capacity = CapMedium
	default:
		cfg.Capacity = CapSlack
	}
	if rng.Intn(3) == 0 {
		cfg.SharedDrops = 1 + rng.Intn(2)
	}
	if rng.Intn(4) == 0 {
		cfg.TrafficSlices = true
	}
	return cfg
}

// SoakConfig derives a larger config for cmd/diffcheck soak runs:
// bigger topologies and policies than FromSeed, still small enough
// that the exact backends finish without a time limit.
func SoakConfig(seed int64) Config {
	cfg := FromSeed(seed)
	rng := rand.New(rand.NewSource(seed*40_503 + 271))
	cfg.RulesPerPolicy = 6 + rng.Intn(8)
	cfg.Ingresses = 1 + rng.Intn(3)
	cfg.PathsPerIngress = 2 + rng.Intn(3)
	switch cfg.Topo {
	case TopoLinear, TopoRing:
		cfg.Switches += rng.Intn(4)
	case TopoRandom:
		cfg.Switches = 5 + rng.Intn(7)
	case TopoFatTree:
		if rng.Intn(3) == 0 {
			cfg.FatTreeK = 4
		}
	}
	return cfg
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
