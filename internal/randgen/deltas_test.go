package randgen

import (
	"encoding/json"
	"testing"

	"rulefit/internal/spec"
)

// TestGenerateDeltasDeterministic: the stream is a pure function of
// (problem, n, seed) and never mutates the caller's problem.
func TestGenerateDeltasDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 9, 33} {
		inst, err := Generate(FromSeed(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sp := spec.FromCore(inst.Problem)
		before := string(sp.Canonical())
		a, err := GenerateDeltas(sp, 10, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := GenerateDeltas(sp, 10, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Errorf("seed %d: two generations differ:\n%s\nvs\n%s", seed, aj, bj)
		}
		if got := string(sp.Canonical()); got != before {
			t.Errorf("seed %d: GenerateDeltas mutated the input problem", seed)
		}
	}
}

// TestGenerateDeltasApplicable: every stream applies cleanly in order
// and the post-state still builds and validates.
func TestGenerateDeltasApplicable(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		inst, err := Generate(FromSeed(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sp := spec.FromCore(inst.Problem)
		deltas, err := GenerateDeltas(sp, 8, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(deltas) != 8 {
			t.Fatalf("seed %d: got %d deltas, want 8", seed, len(deltas))
		}
		work := sp.Clone()
		if err := work.ApplyAll(deltas); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prob, err := work.Build()
		if err != nil {
			t.Fatalf("seed %d: post-delta build: %v", seed, err)
		}
		if err := prob.Validate(); err != nil {
			t.Fatalf("seed %d: post-delta validate: %v", seed, err)
		}
	}
}
