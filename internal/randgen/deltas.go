package randgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"rulefit/internal/spec"
)

// GenerateDeltas draws a seeded stream of n valid deltas against an
// explicit problem (spec.FromCore form). The stream is stateful: each
// delta is drawn from — and applied to — the evolving instance, so the
// whole sequence is applicable in order. The mix covers every delta op
// (rule add/remove, policy update, capacity change, link/switch churn,
// path replacement), and one draw in five inverts the previous rule
// add, returning the instance to an earlier canonical state so replay
// harnesses exercise the session layer's identity fast path.
//
// Generation is a pure function of (sp, n, seed): the caller's problem
// is never mutated.
func GenerateDeltas(sp *spec.Problem, n int, seed int64) ([]spec.Delta, error) {
	if err := sp.ExplicitOnly(); err != nil {
		return nil, err
	}
	g := &deltaGen{
		work:       sp.Clone(),
		rng:        rand.New(rand.NewSource(seed*9_176_351 + 29)),
		nextSwitch: maxSwitchID(sp) + 1,
	}
	out := make([]spec.Delta, 0, n)
	misses := 0
	for len(out) < n {
		d, ok := g.draw()
		if !ok {
			if misses++; misses > 1000 {
				return nil, fmt.Errorf("randgen: no applicable delta after %d draws (instance too degenerate)", misses)
			}
			continue
		}
		misses = 0
		if err := g.work.Apply(d); err != nil {
			return nil, fmt.Errorf("randgen: generated inapplicable delta %s: %w", d, err)
		}
		g.applied(d)
		out = append(out, d)
	}
	return out, nil
}

// deltaGen holds the evolving instance plus the bookkeeping needed to
// draw only applicable moves.
type deltaGen struct {
	work       *spec.Problem
	rng        *rand.Rand
	nextSwitch int
	// added tracks switches this stream created (safe to remove: they
	// never host ports or paths).
	added []int
	// lastAdd is the most recent add_rule, invertible into a
	// remove_rule that restores the prior canonical state.
	lastAdd *spec.Delta
}

// draw picks the next delta kind; ok=false means the drawn kind had no
// applicable move on the current instance (caller redraws).
func (g *deltaGen) draw() (spec.Delta, bool) {
	if g.lastAdd != nil && g.rng.Intn(5) == 0 {
		d := spec.Delta{Op: spec.OpRemoveRule, Ingress: g.lastAdd.Ingress, Priority: g.lastAdd.Rule.Priority}
		return d, true
	}
	switch r := g.rng.Intn(100); {
	case r < 35:
		return g.addRule()
	case r < 50:
		return g.removeRule()
	case r < 60:
		return g.updatePolicy()
	case r < 75:
		return g.setCapacity()
	case r < 90:
		return g.churn()
	default:
		return g.setPaths()
	}
}

// applied updates bookkeeping after a delta was applied to work.
func (g *deltaGen) applied(d spec.Delta) {
	g.lastAdd = nil
	switch d.Op {
	case spec.OpAddRule:
		cp := d
		g.lastAdd = &cp
	case spec.OpAddSwitch:
		g.added = append(g.added, d.Switch)
		if d.Switch >= g.nextSwitch {
			g.nextSwitch = d.Switch + 1
		}
	case spec.OpRemoveSwitch:
		for i, id := range g.added {
			if id == d.Switch {
				g.added = append(g.added[:i], g.added[i+1:]...)
				break
			}
		}
	}
}

func (g *deltaGen) addRule() (spec.Delta, bool) {
	if len(g.work.Policies) == 0 {
		return spec.Delta{}, false
	}
	pol := &g.work.Policies[g.rng.Intn(len(g.work.Policies))]
	if len(pol.Rules) == 0 {
		return spec.Delta{}, false
	}
	width := len(pol.Rules[0].Pattern)
	var b strings.Builder
	for i := 0; i < width; i++ {
		switch g.rng.Intn(4) {
		case 0, 1:
			b.WriteByte('*')
		case 2:
			b.WriteByte('0')
		default:
			b.WriteByte('1')
		}
	}
	action := "permit"
	if g.rng.Intn(2) == 0 {
		action = "drop"
	}
	prio := 0
	for _, r := range pol.Rules {
		if r.Priority > prio {
			prio = r.Priority
		}
	}
	return spec.Delta{
		Op:      spec.OpAddRule,
		Ingress: pol.Ingress,
		Rule:    &spec.Rule{Pattern: b.String(), Action: action, Priority: prio + 1 + g.rng.Intn(3)},
	}, true
}

func (g *deltaGen) removeRule() (spec.Delta, bool) {
	var candidates []int
	for i := range g.work.Policies {
		if len(g.work.Policies[i].Rules) >= 2 {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return spec.Delta{}, false
	}
	pol := &g.work.Policies[candidates[g.rng.Intn(len(candidates))]]
	victim := pol.Rules[g.rng.Intn(len(pol.Rules))]
	return spec.Delta{Op: spec.OpRemoveRule, Ingress: pol.Ingress, Priority: victim.Priority}, true
}

// updatePolicy flips one rule's action in a whole-policy replacement —
// the smallest update that changes semantics without touching the
// dependency structure.
func (g *deltaGen) updatePolicy() (spec.Delta, bool) {
	if len(g.work.Policies) == 0 {
		return spec.Delta{}, false
	}
	pol := &g.work.Policies[g.rng.Intn(len(g.work.Policies))]
	if len(pol.Rules) == 0 {
		return spec.Delta{}, false
	}
	rules := append([]spec.Rule(nil), pol.Rules...)
	i := g.rng.Intn(len(rules))
	if rules[i].Action == "drop" {
		rules[i].Action = "permit"
	} else {
		rules[i].Action = "drop"
	}
	return spec.Delta{Op: spec.OpUpdatePolicy, Ingress: pol.Ingress, Rules: rules}, true
}

// setCapacity mostly nudges a switch upward (keeping instances
// feasible and exercising the capacity-raise metamorphic property) but
// occasionally re-draws the capacity from scratch, tight included.
func (g *deltaGen) setCapacity() (spec.Delta, bool) {
	sl := g.work.Topology.SwitchList
	if len(sl) == 0 {
		return spec.Delta{}, false
	}
	sw := sl[g.rng.Intn(len(sl))]
	capacity := sw.Capacity + 1 + g.rng.Intn(4)
	if g.rng.Intn(10) < 3 {
		total := 0
		for _, pol := range g.work.Policies {
			total += len(pol.Rules)
		}
		capacity = 1 + g.rng.Intn(total+4)
	}
	return spec.Delta{Op: spec.OpSetCapacity, Switch: sw.ID, Capacity: capacity}, true
}

// churn adds a switch, links it in, or removes a switch this stream
// added earlier (those never host ports or paths, so removal is legal).
func (g *deltaGen) churn() (spec.Delta, bool) {
	if len(g.added) > 0 && g.rng.Intn(3) == 0 {
		return spec.Delta{Op: spec.OpRemoveSwitch, Switch: g.added[g.rng.Intn(len(g.added))]}, true
	}
	sl := g.work.Topology.SwitchList
	if len(sl) >= 2 && g.rng.Intn(2) == 0 {
		for try := 0; try < 8; try++ {
			a := sl[g.rng.Intn(len(sl))].ID
			b := sl[g.rng.Intn(len(sl))].ID
			if a == b || g.hasLink(a, b) {
				continue
			}
			return spec.Delta{Op: spec.OpAddLink, Link: &[2]int{a, b}}, true
		}
		return spec.Delta{}, false
	}
	return spec.Delta{Op: spec.OpAddSwitch, Switch: g.nextSwitch, Capacity: 1 + g.rng.Intn(8)}, true
}

func (g *deltaGen) hasLink(a, b int) bool {
	for _, l := range g.work.Topology.Links {
		if (l[0] == a && l[1] == b) || (l[0] == b && l[1] == a) {
			return true
		}
	}
	return false
}

// setPaths drops one path from an ingress that has several, the
// smallest routing churn that keeps every policy routable.
func (g *deltaGen) setPaths() (spec.Delta, bool) {
	byIngress := map[int][]spec.Path{}
	for _, p := range g.work.Routing.Paths {
		byIngress[p.Ingress] = append(byIngress[p.Ingress], p)
	}
	var candidates []int
	for ing, paths := range byIngress {
		if len(paths) >= 2 {
			candidates = append(candidates, ing)
		}
	}
	if len(candidates) == 0 {
		return spec.Delta{}, false
	}
	// Map iteration order is random; sort before drawing so the stream
	// stays a pure function of the seed.
	sort.Ints(candidates)
	ing := candidates[g.rng.Intn(len(candidates))]
	paths := byIngress[ing]
	drop := g.rng.Intn(len(paths))
	kept := append(append([]spec.Path(nil), paths[:drop]...), paths[drop+1:]...)
	return spec.Delta{Op: spec.OpSetPaths, Ingress: ing, Paths: kept}, true
}

// maxSwitchID returns the largest switch ID in the topology.
func maxSwitchID(sp *spec.Problem) int {
	maxID := 0
	for _, sw := range sp.Topology.SwitchList {
		if sw.ID > maxID {
			maxID = sw.ID
		}
	}
	return maxID
}
