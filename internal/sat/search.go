package sat

import (
	"sort"
	"time"
)

// cancelUntil undoes all assignments above the given decision level,
// keeping PB counters consistent and saving phases.
func (s *Solver) cancelUntil(level int32) {
	if s.decisionLevel <= level {
		return
	}
	for i := len(s.trail) - 1; i >= 0; i-- {
		l := s.trail[i]
		v := l.variable()
		if s.level[v] <= level {
			s.trail = s.trail[:i+1]
			break
		}
		for _, occ := range s.pbWatch[l] {
			s.pbs[occ.idx].sumTrue -= occ.w
		}
		s.phase[v] = s.assign[v] == vTrue
		s.assign[v] = vUndef
		s.reasons[v] = reason{}
		s.order.push(v)
		if i == 0 {
			s.trail = s.trail[:0]
		}
	}
	s.qhead = len(s.trail)
	s.decisionLevel = level
}

// reasonLits collects the literals explaining an assignment or conflict.
// For a clause it is the clause's literals; for a PB constraint it is the
// negations of the true literals assigned before position limit.
func (s *Solver) reasonLits(r reason, skip ilit, limit int32, out []ilit) []ilit {
	switch {
	case r.cl != nil:
		for _, l := range r.cl.lits {
			if l != skip {
				out = append(out, l)
			}
		}
	case r.pb != nil:
		for _, l := range r.pb.lits {
			if l == skip {
				continue
			}
			if s.value(l) == vTrue && s.trailI[l.variable()] < limit {
				out = append(out, l.neg())
			}
		}
	}
	return out
}

// analyze performs 1UIP conflict analysis, returning the learnt clause
// (with the asserting literal first) and the backjump level.
func (s *Solver) analyze(confl *conflictInfo) ([]ilit, int32) {
	learnt := []ilit{0} // slot for the asserting literal
	counter := 0
	var p ilit
	haveP := false
	idx := len(s.trail) - 1

	var rlits []ilit
	if confl.cl != nil {
		rlits = append(rlits, confl.cl.lits...)
	} else {
		for _, l := range confl.pb.lits {
			if s.value(l) == vTrue {
				rlits = append(rlits, l.neg())
			}
		}
	}
	for {
		for _, q := range rlits {
			v := q.variable()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.toClear = append(s.toClear, v)
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Walk the trail backwards to the next marked literal.
		for idx >= 0 && !s.seen[s.trail[idx].variable()] {
			idx--
		}
		if idx < 0 {
			break
		}
		p = s.trail[idx]
		haveP = true
		pv := p.variable()
		s.seen[pv] = false
		counter--
		idx--
		if counter <= 0 {
			break
		}
		rlits = s.reasonLits(s.reasons[pv], p, s.trailI[pv], rlits[:0])
	}
	if haveP {
		learnt[0] = p.neg()
	} else {
		learnt = learnt[1:]
	}

	learnt = s.minimizeLearnt(learnt)

	// Clear seen flags.
	for _, v := range s.toClear {
		s.seen[v] = false
	}
	s.toClear = s.toClear[:0]

	// Backjump level: highest level among learnt[1:].
	bj := int32(0)
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].variable()] > s.level[learnt[maxI].variable()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bj = s.level[learnt[1].variable()]
	}
	return learnt, bj
}

// minimizeLearnt drops redundant literals from a learnt clause: a
// non-asserting literal whose reason literals all already appear in the
// clause (or sit at level 0) is implied by the rest and can be removed
// (MiniSat's basic self-subsumption). Relies on the seen[] flags still
// marking the clause variables; removed literals keep their flags set,
// which only makes the check more conservative.
func (s *Solver) minimizeLearnt(learnt []ilit) []ilit {
	if len(learnt) <= 1 {
		return learnt
	}
	// seen[] currently marks exactly the clause variables (minus the
	// asserting literal, which analyze unset); re-mark it for membership
	// tests.
	av := learnt[0].variable()
	restore := !s.seen[av]
	s.seen[av] = true
	w := 1
	for i := 1; i < len(learnt); i++ {
		q := learnt[i]
		v := q.variable()
		r := s.reasons[v]
		if r.cl == nil && r.pb == nil {
			learnt[w] = q // decision literal: must keep
			w++
			continue
		}
		redundant := true
		for _, l := range s.reasonLits(r, q.neg(), s.trailI[v], nil) {
			lv := l.variable()
			if s.level[lv] != 0 && !s.seen[lv] {
				redundant = false
				break
			}
		}
		if !redundant {
			learnt[w] = q
			w++
		}
	}
	if restore {
		s.seen[av] = false
	}
	return learnt[:w]
}

// bumpVar increases a variable's VSIDS activity.
func (s *Solver) bumpVar(v int32) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.nVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

// decayVars scales up the activity increment (equivalent to decaying all).
func (s *Solver) decayVars() { s.varInc /= 0.95 }

// pickBranch selects the next decision literal, or 0 when all assigned.
func (s *Solver) pickBranch() ilit {
	for {
		v := s.order.pop()
		if v == 0 {
			return 0
		}
		if s.assign[v] == vUndef {
			if s.phase[v] {
				return ilit(2 * v)
			}
			return ilit(2*v + 1)
		}
	}
}

// lubyRec returns the i-th element (1-based) of the Luby restart series
// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
func lubyRec(i int64) int64 {
	var k uint
	for k = 1; (int64(1)<<k)-1 < i; k++ {
	}
	if i == (int64(1)<<k)-1 {
		return int64(1) << (k - 1)
	}
	return lubyRec(i - ((int64(1) << (k - 1)) - 1))
}

// Solve searches for a model under the given assumption literals.
func (s *Solver) Solve(assumptions ...int) Status {
	if !s.ok {
		return Unsat
	}
	s.cancelUntil(0)
	if s.propagate() != nil {
		s.ok = false
		return Unsat
	}

	asm := make([]ilit, len(assumptions))
	for i, a := range assumptions {
		asm[i] = toILit(a)
	}

	var restartNum int64
	conflictBudget := int64(100)
	maxLearnts := len(s.clauses)/2 + 1000
	var loopIters int64

	for {
		conflictsThisRestart := int64(0)
		// (Re)apply assumptions after any restart.
		s.cancelUntil(0)
		asmOK := true
		for _, a := range asm {
			switch s.value(a) {
			case vTrue:
				continue
			case vFalse:
				asmOK = false
			default:
				s.decisionLevel++
				s.uncheckedEnqueue(a, reason{})
				if s.propagate() != nil {
					asmOK = false
				}
			}
			if !asmOK {
				break
			}
		}
		if !asmOK {
			s.cancelUntil(0)
			return Unsat
		}
		asmLevel := s.decisionLevel

		for {
			loopIters++
			if !s.deadline.IsZero() && loopIters%512 == 0 && time.Now().After(s.deadline) {
				s.cancelUntil(0)
				return Unknown
			}
			confl := s.propagate()
			if confl != nil {
				s.Conflicts++
				conflictsThisRestart++
				if s.decisionLevel == 0 {
					s.ok = false
					return Unsat
				}
				if s.decisionLevel <= asmLevel {
					// Conflict within the assumption prefix: UNSAT under
					// these assumptions only.
					s.cancelUntil(0)
					return Unsat
				}
				learnt, bj := s.analyze(confl)
				if bj < asmLevel {
					bj = asmLevel
				}
				s.cancelUntil(bj)
				if len(learnt) == 0 {
					s.cancelUntil(0)
					s.ok = false
					return Unsat
				}
				if len(learnt) == 1 {
					if s.value(learnt[0]) == vFalse {
						s.cancelUntil(0)
						if len(asm) == 0 {
							s.ok = false
						}
						return Unsat
					}
					if s.value(learnt[0]) == vUndef {
						s.uncheckedEnqueue(learnt[0], reason{})
					}
				} else {
					c := &clause{lits: append([]ilit(nil), learnt...), learnt: true, activity: 1}
					s.learnts = append(s.learnts, c)
					s.watchClause(c)
					s.uncheckedEnqueue(c.lits[0], reason{cl: c})
				}
				s.decayVars()
				continue
			}

			if conflictsThisRestart >= conflictBudget {
				// Restart.
				s.Restarts++
				restartNum++
				conflictBudget = 64 * lubyRec(restartNum+1)
				if len(s.learnts) > maxLearnts {
					s.reduceDB()
					maxLearnts += maxLearnts / 10
				}
				break // back to the outer loop (re-applies assumptions)
			}
			l := s.pickBranch()
			if l == 0 {
				// All variables assigned: model found.
				return Sat
			}
			s.Decisions++
			s.decisionLevel++
			s.uncheckedEnqueue(l, reason{})
		}
	}
}

// reduceDB removes the least active half of the learnt clauses that are
// not currently reasons.
func (s *Solver) reduceDB() {
	if len(s.learnts) == 0 {
		return
	}
	sort.Slice(s.learnts, func(a, b int) bool {
		return s.learnts[a].activity > s.learnts[b].activity
	})
	keep := s.learnts[:len(s.learnts)/2]
	drop := s.learnts[len(s.learnts)/2:]
	kept := keep
	for _, c := range drop {
		if s.isReason(c) || len(c.lits) <= 2 {
			kept = append(kept, c)
			continue
		}
		s.unwatchClause(c)
	}
	s.learnts = append([]*clause(nil), kept...)
}

// isReason reports whether a clause is the reason of a current assignment.
func (s *Solver) isReason(c *clause) bool {
	v := c.lits[0].variable()
	return s.assign[v] != vUndef && s.reasons[v].cl == c
}

// unwatchClause removes a clause from its two watch lists.
func (s *Solver) unwatchClause(c *clause) {
	for _, w := range []ilit{c.lits[0].neg(), c.lits[1].neg()} {
		ws := s.watches[w]
		for i, cc := range ws {
			if cc == c {
				ws[i] = ws[len(ws)-1]
				s.watches[w] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// Model returns the current assignment as a map from variable to value.
// Valid only after Solve returned Sat.
func (s *Solver) Model() map[int]bool {
	m := make(map[int]bool, s.nVars)
	for v := 1; v <= s.nVars; v++ {
		m[v] = s.assign[v] == vTrue
	}
	return m
}

// Minimize finds an assignment minimizing the weighted count of
// satisfied objective literals (signed: -v counts when v is false),
// subject to all added constraints, by binary search on the objective
// bound. Each probe bound is attached to a fresh activation literal so
// an UNSAT probe does not poison the instance; probes resolve to unit
// clauses either way, keeping the search incremental.
//
// It returns the best objective, the best model, and Sat when optimality
// was proven; Unknown with the best-so-far when the deadline expires; or
// Unsat when no model exists at all. The solver holds the bound
// constraints afterwards and should not be reused for other queries.
func (s *Solver) Minimize(lits []int, weights []int64) (int64, map[int]bool, Status) {
	st := s.Solve()
	if st != Sat {
		return 0, nil, st
	}
	best := s.objective(lits, weights)
	model := s.Model()
	var totalW int64
	for _, w := range weights {
		totalW += w
	}
	for best > 0 {
		bound := best - 1 // SAT-UNSAT descent: probes stay satisfiable
		act := s.NewVar()
		// sum(w·obj) + (totalW-bound)·act <= totalW: with act true the
		// objective is bounded; with act false the constraint is inert
		// (the objective can never exceed totalW).
		plits := append(append([]int(nil), lits...), act)
		pws := append(append([]int64(nil), weights...), totalW-bound)
		if !s.AddPB(plits, pws, totalW) {
			break // solver hit a root conflict: current best is optimal
		}
		st = s.Solve(act)
		switch st {
		case Unknown:
			return best, model, Unknown
		case Sat:
			if obj := s.objective(lits, weights); obj < best {
				best = obj
				model = s.Model()
			}
			s.AddClause(act) // optimum <= bound: keep it active
		default:
			// Unsat at best-1: the current best is proven optimal.
			s.AddClause(-act)
			return best, model, Sat
		}
		if !s.ok {
			break
		}
	}
	return best, model, Sat
}

// objective sums the weights of the satisfied objective literals.
func (s *Solver) objective(lits []int, weights []int64) int64 {
	var total int64
	for i, l := range lits {
		v := l
		want := vTrue
		if l < 0 {
			v, want = -l, vFalse
		}
		if s.assign[v] == want {
			total += weights[i]
		}
	}
	return total
}

// varHeap is a max-heap of variables ordered by VSIDS activity.
type varHeap struct {
	solver *Solver
	heap   []int32
	index  map[int32]int
}

func (h *varHeap) less(a, b int32) bool {
	return h.solver.activity[a] > h.solver.activity[b]
}

func (h *varHeap) push(v int32) {
	if h.index == nil {
		h.index = make(map[int32]int)
	}
	if _, ok := h.index[v]; ok {
		return
	}
	h.heap = append(h.heap, v)
	h.index[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pop() int32 {
	for len(h.heap) > 0 {
		top := h.heap[0]
		last := len(h.heap) - 1
		h.heap[0] = h.heap[last]
		h.index[h.heap[0]] = 0
		h.heap = h.heap[:last]
		delete(h.index, top)
		if len(h.heap) > 0 {
			h.down(0)
		}
		return top
	}
	return 0
}

func (h *varHeap) update(v int32) {
	if i, ok := h.index[v]; ok {
		h.up(i)
		h.down(i)
	}
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.heap[i], h.heap[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.heap) && h.less(h.heap[l], h.heap[smallest]) {
			smallest = l
		}
		if r < len(h.heap) && h.less(h.heap[r], h.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *varHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.index[h.heap[a]] = a
	h.index[h.heap[b]] = b
}
