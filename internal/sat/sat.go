// Package sat is a conflict-driven clause-learning (CDCL) SAT solver
// with native pseudo-Boolean (weighted at-most) constraints and a linear
// objective optimizer. It implements the paper's satisfiability
// formulation (§IV-D): implication clauses (Eq. 6), coverage clauses
// (Eq. 7), cardinality capacity constraints (Eq. 3), and merged-rule
// equivalences (Eq. 8), and doubles as the Pseudo-Boolean optimizer the
// paper leaves to future work.
//
// Literals are signed integers: +v means variable v is true, -v false.
// Variables are 1-based.
package sat

import (
	"fmt"
	"time"
)

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	Sat Status = iota + 1
	Unsat
	Unknown // deadline or conflict budget exhausted
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	case Unknown:
		return "unknown"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Internal literal encoding: lit = 2*v for +v, 2*v+1 for -v.
type ilit int32

func toILit(l int) ilit {
	if l > 0 {
		return ilit(2 * l)
	}
	return ilit(-2*l + 1)
}

func (l ilit) variable() int32 { return int32(l) >> 1 }
func (l ilit) neg() ilit       { return l ^ 1 }
func (l ilit) sign() bool      { return l&1 == 0 } // true for positive

// Assignment values.
const (
	vUndef int8 = iota
	vTrue
	vFalse
)

// clause is a disjunction of literals; learnt clauses carry activity.
type clause struct {
	lits     []ilit
	learnt   bool
	activity float64
}

// pbConstraint is sum(weight_i * lit_i) <= bound with positive weights.
type pbConstraint struct {
	lits    []ilit
	weights []int64
	bound   int64
	sumTrue int64 // current weight of true literals
	maxW    int64
}

// pbOcc is one occurrence of a literal in a PB constraint.
type pbOcc struct {
	idx int32 // index into Solver.pbs
	w   int64
}

// reason encodes why a literal was assigned: a clause, a PB constraint,
// or a decision (none).
type reason struct {
	cl *clause
	pb *pbConstraint
}

// Solver is a CDCL SAT solver instance. Not safe for concurrent use.
type Solver struct {
	nVars   int
	clauses []*clause
	learnts []*clause
	pbs     []*pbConstraint

	watches map[ilit][]*clause // clause watch lists
	pbWatch map[ilit][]pbOcc   // pb occurrence lists

	assign  []int8 // by variable
	level   []int32
	reasons []reason
	trailI  []int32 // trail index by variable
	trail   []ilit
	qhead   int

	decisionLevel int32

	activity []float64
	varInc   float64
	order    *varHeap
	phase    []bool

	ok       bool // false once UNSAT at level 0
	deadline time.Time

	// Stats
	Propagations int64
	Conflicts    int64
	Decisions    int64
	Restarts     int64

	seen    []bool
	toClear []int32
}

// NewSolver returns an empty solver.
func NewSolver() *Solver {
	s := &Solver{
		watches: make(map[ilit][]*clause),
		pbWatch: make(map[ilit][]pbOcc),
		varInc:  1,
		ok:      true,
	}
	s.order = &varHeap{solver: s}
	// Variable 0 is unused (1-based).
	s.assign = append(s.assign, vUndef)
	s.level = append(s.level, 0)
	s.reasons = append(s.reasons, reason{})
	s.trailI = append(s.trailI, 0)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	return s
}

// NewVar allocates a fresh variable and returns its (positive) index.
func (s *Solver) NewVar() int {
	s.nVars++
	s.assign = append(s.assign, vUndef)
	s.level = append(s.level, 0)
	s.reasons = append(s.reasons, reason{})
	s.trailI = append(s.trailI, 0)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	s.order.push(int32(s.nVars))
	return s.nVars
}

// NumVars returns the variable count.
func (s *Solver) NumVars() int { return s.nVars }

// SetDeadline bounds solve time; zero means no limit.
func (s *Solver) SetDeadline(t time.Time) { s.deadline = t }

// value returns the current assignment of an internal literal.
func (s *Solver) value(l ilit) int8 {
	v := s.assign[l.variable()]
	if v == vUndef {
		return vUndef
	}
	if l.sign() {
		return v
	}
	if v == vTrue {
		return vFalse
	}
	return vTrue
}

// Value returns the model value of variable v after a Sat result.
func (s *Solver) Value(v int) bool { return s.assign[v] == vTrue }

// AddClause adds a disjunction of signed literals. Returns false if the
// solver is already in an UNSAT state.
func (s *Solver) AddClause(lits ...int) bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0) // constraints are added at the root level
	// Normalize: dedup, detect tautology, drop false literals.
	ils := make([]ilit, 0, len(lits))
	seen := make(map[ilit]bool, len(lits))
	for _, l := range lits {
		if l == 0 {
			panic("sat: zero literal")
		}
		il := toILit(l)
		if int(il.variable()) > s.nVars {
			panic(fmt.Sprintf("sat: literal %d references unallocated variable", l))
		}
		if seen[il.neg()] {
			return true // tautology
		}
		if seen[il] {
			continue
		}
		switch s.value(il) {
		case vTrue:
			return true // already satisfied
		case vFalse:
			continue // drop
		}
		seen[il] = true
		ils = append(ils, il)
	}
	switch len(ils) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(ils[0], reason{})
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: ils}
	s.clauses = append(s.clauses, c)
	s.watchClause(c)
	return true
}

// AddAtMost adds a cardinality constraint: at most k of the signed
// literals are true.
func (s *Solver) AddAtMost(lits []int, k int) bool {
	w := make([]int64, len(lits))
	for i := range w {
		w[i] = 1
	}
	return s.AddPB(lits, w, int64(k))
}

// AddAtLeast adds sum(lits true) >= k via negation: at most len-k of the
// negated literals are true.
func (s *Solver) AddAtLeast(lits []int, k int) bool {
	neg := make([]int, len(lits))
	for i, l := range lits {
		neg[i] = -l
	}
	return s.AddAtMost(neg, len(lits)-k)
}

// AddPB adds sum(weights_i * lit_i) <= bound with nonnegative weights.
func (s *Solver) AddPB(lits []int, weights []int64, bound int64) bool {
	if !s.ok {
		return false
	}
	if len(lits) != len(weights) {
		panic("sat: AddPB length mismatch")
	}
	s.cancelUntil(0) // constraints are added at the root level
	pb := &pbConstraint{bound: bound}
	for i, l := range lits {
		if weights[i] < 0 {
			panic("sat: negative PB weight")
		}
		if weights[i] == 0 {
			continue
		}
		il := toILit(l)
		if int(il.variable()) > s.nVars {
			panic(fmt.Sprintf("sat: literal %d references unallocated variable", l))
		}
		switch s.value(il) {
		case vTrue:
			pb.bound -= weights[i] // already consumed
			continue
		case vFalse:
			continue // can never contribute
		}
		pb.lits = append(pb.lits, il)
		pb.weights = append(pb.weights, weights[i])
		if weights[i] > pb.maxW {
			pb.maxW = weights[i]
		}
	}
	if pb.bound < 0 {
		s.ok = false
		return false
	}
	// Trivially satisfied?
	var total int64
	for _, w := range pb.weights {
		total += w
	}
	if total <= pb.bound {
		return true
	}
	idx := int32(len(s.pbs))
	s.pbs = append(s.pbs, pb)
	for i, il := range pb.lits {
		s.pbWatch[il] = append(s.pbWatch[il], pbOcc{idx: idx, w: pb.weights[i]})
	}
	// Immediate propagation: literals too heavy to ever be true.
	for i, il := range pb.lits {
		if pb.weights[i] > pb.bound && s.value(il) == vUndef {
			s.uncheckedEnqueue(il.neg(), reason{pb: pb})
		}
	}
	if s.propagate() != nil {
		s.ok = false
		return false
	}
	return true
}

// watchClause installs two-literal watches.
func (s *Solver) watchClause(c *clause) {
	s.watches[c.lits[0].neg()] = append(s.watches[c.lits[0].neg()], c)
	s.watches[c.lits[1].neg()] = append(s.watches[c.lits[1].neg()], c)
}

// uncheckedEnqueue pushes an assignment onto the trail.
func (s *Solver) uncheckedEnqueue(l ilit, from reason) {
	v := l.variable()
	if l.sign() {
		s.assign[v] = vTrue
	} else {
		s.assign[v] = vFalse
	}
	s.level[v] = s.decisionLevel
	s.reasons[v] = from
	s.trailI[v] = int32(len(s.trail))
	s.trail = append(s.trail, l)
}

// propagate processes the trail queue; it returns a conflicting
// constraint description or nil.
type conflictInfo struct {
	cl *clause
	pb *pbConstraint
}

func (s *Solver) propagate() *conflictInfo {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.Propagations++

		// PB counters: l just became true. Counter state must stay
		// consistent with the trail, so on conflict the not-yet-counted
		// trail suffix is counted before returning (cancelUntil
		// decrements every unassigned literal symmetrically).
		var pbConfl *pbConstraint
		for _, occ := range s.pbWatch[l] {
			pb := s.pbs[occ.idx]
			pb.sumTrue += occ.w
			if pb.sumTrue > pb.bound && pbConfl == nil {
				pbConfl = pb
			}
		}
		if pbConfl != nil {
			s.countTrailSuffix()
			return &conflictInfo{pb: pbConfl}
		}
		// PB propagation: literals that no longer fit must go false.
		for _, occ := range s.pbWatch[l] {
			pb := s.pbs[occ.idx]
			slack := pb.bound - pb.sumTrue
			if pb.maxW <= slack {
				continue
			}
			for i, il := range pb.lits {
				if pb.weights[i] > slack && s.value(il) == vUndef {
					s.uncheckedEnqueue(il.neg(), reason{pb: pb})
				}
			}
		}

		// Clause watches on ¬l ... we watch neg so key is l itself.
		ws := s.watches[l]
		j := 0
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			// Ensure lits[1] is the falsified literal (l.neg()).
			if c.lits[0] == l.neg() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == vTrue {
				ws[j] = c
				j++
				continue
			}
			// Find a new watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != vFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].neg()] = append(s.watches[c.lits[1].neg()], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Unit or conflicting.
			ws[j] = c
			j++
			if s.value(c.lits[0]) == vFalse {
				// Conflict: keep remaining watches, restore list.
				copy(ws[j:], ws[i+1:])
				s.watches[l] = ws[:j+len(ws[i+1:])]
				s.countTrailSuffix()
				return &conflictInfo{cl: c}
			}
			s.uncheckedEnqueue(c.lits[0], reason{cl: c})
		}
		s.watches[l] = ws[:j]
	}
	return nil
}

// countTrailSuffix folds the not-yet-propagated trail literals into the
// PB counters so that counter state matches the trail exactly before a
// conflict unwinds it.
func (s *Solver) countTrailSuffix() {
	for _, t := range s.trail[s.qhead:] {
		for _, occ := range s.pbWatch[t] {
			s.pbs[occ.idx].sumTrue += occ.w
		}
	}
	s.qhead = len(s.trail)
}
