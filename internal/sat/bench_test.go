package sat

import (
	"math/rand"
	"testing"
)

func BenchmarkPigeonholeUnsat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := 6
		s := NewSolver()
		p := make([][]int, n+1)
		for i := range p {
			p[i] = make([]int, n)
			for j := range p[i] {
				p[i][j] = s.NewVar()
			}
		}
		for i := 0; i <= n; i++ {
			s.AddClause(p[i]...)
		}
		for j := 0; j < n; j++ {
			col := make([]int, 0, n+1)
			for i := 0; i <= n; i++ {
				col = append(col, p[i][j])
			}
			s.AddAtMost(col, 1)
		}
		if st := s.Solve(); st != Unsat {
			b.Fatalf("status %v", st)
		}
	}
}

func BenchmarkRandom3SAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		s := NewSolver()
		n := 200
		vars := make([]int, n)
		for j := range vars {
			vars[j] = s.NewVar()
		}
		ok := true
		for c := 0; c < 700 && ok; c++ {
			lit := func() int {
				v := vars[rng.Intn(n)]
				if rng.Intn(2) == 0 {
					return -v
				}
				return v
			}
			ok = s.AddClause(lit(), lit(), lit())
		}
		if ok {
			s.Solve()
		}
	}
}

func BenchmarkCardinalityPropagation(b *testing.B) {
	// Chains of cardinality constraints that propagate heavily.
	for i := 0; i < b.N; i++ {
		s := NewSolver()
		n := 300
		vars := make([]int, n)
		for j := range vars {
			vars[j] = s.NewVar()
		}
		for c := 0; c+10 <= n; c += 5 {
			s.AddAtMost(vars[c:c+10], 3)
		}
		// Force a pattern that drives the counters.
		for j := 0; j < n; j += 4 {
			s.AddClause(vars[j])
		}
		s.Solve()
	}
}

func BenchmarkMinimizeSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSolver()
		n := 40
		vars := make([]int, n)
		weights := make([]int64, n)
		for j := range vars {
			vars[j] = s.NewVar()
			weights[j] = 1
		}
		rng := rand.New(rand.NewSource(int64(i)))
		for c := 0; c < 25; c++ {
			var cl []int
			for k := 0; k < 3; k++ {
				cl = append(cl, vars[rng.Intn(n)])
			}
			s.AddClause(cl...)
		}
		if _, _, st := s.Minimize(vars, weights); st != Sat {
			b.Fatalf("status %v", st)
		}
	}
}
