package sat

import (
	"math/rand"
	"testing"
	"time"
)

func TestTrivialSat(t *testing.T) {
	s := NewSolver()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(a, b)
	s.AddClause(-a)
	if st := s.Solve(); st != Sat {
		t.Fatalf("status = %v", st)
	}
	if s.Value(a) || !s.Value(b) {
		t.Errorf("model: a=%v b=%v, want a=false b=true", s.Value(a), s.Value(b))
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := NewSolver()
	a := s.NewVar()
	s.AddClause(a)
	if ok := s.AddClause(-a); ok {
		t.Error("adding -a after a should fail at level 0")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("status = %v", st)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := NewSolver()
	a := s.NewVar()
	s.AddClause(a)
	if s.AddClause(-a) {
		t.Error("contradictory unit should return false")
	}
	if s.Solve() != Unsat {
		t.Error("expected Unsat")
	}
}

func TestChainImplication(t *testing.T) {
	// x1 -> x2 -> ... -> x10; x1 true forces all.
	s := NewSolver()
	vars := make([]int, 10)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for i := 0; i+1 < len(vars); i++ {
		s.AddClause(-vars[i], vars[i+1])
	}
	s.AddClause(vars[0])
	if st := s.Solve(); st != Sat {
		t.Fatalf("status = %v", st)
	}
	for i, v := range vars {
		if !s.Value(v) {
			t.Errorf("x%d should be true", i+1)
		}
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n) is UNSAT: n+1 pigeons, n holes.
	for _, n := range []int{3, 4, 5} {
		s := NewSolver()
		// p[i][j]: pigeon i in hole j.
		p := make([][]int, n+1)
		for i := range p {
			p[i] = make([]int, n)
			for j := range p[i] {
				p[i][j] = s.NewVar()
			}
		}
		for i := 0; i <= n; i++ {
			clause := make([]int, n)
			copy(clause, p[i])
			s.AddClause(clause...)
		}
		for j := 0; j < n; j++ {
			for i := 0; i <= n; i++ {
				for k := i + 1; k <= n; k++ {
					s.AddClause(-p[i][j], -p[k][j])
				}
			}
		}
		if st := s.Solve(); st != Unsat {
			t.Errorf("PHP(%d,%d) = %v, want unsat", n+1, n, st)
		}
	}
}

func TestPigeonholeViaCardinality(t *testing.T) {
	// Same problem with AtMost(1) constraints per hole.
	n := 5
	s := NewSolver()
	p := make([][]int, n+1)
	for i := range p {
		p[i] = make([]int, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ {
		s.AddClause(p[i]...)
	}
	for j := 0; j < n; j++ {
		col := make([]int, 0, n+1)
		for i := 0; i <= n; i++ {
			col = append(col, p[i][j])
		}
		s.AddAtMost(col, 1)
	}
	if st := s.Solve(); st != Unsat {
		t.Errorf("cardinality PHP = %v, want unsat", st)
	}
}

func TestAtMostSemantics(t *testing.T) {
	s := NewSolver()
	vars := make([]int, 5)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	s.AddAtMost(vars, 2)
	// Force three of them true: must be UNSAT.
	s.AddClause(vars[0])
	s.AddClause(vars[1])
	if !s.AddClause(vars[2]) {
		// Could fail at add time via propagation.
		return
	}
	if st := s.Solve(); st != Unsat {
		t.Errorf("status = %v, want unsat", st)
	}
}

func TestAtMostAllowsExactlyK(t *testing.T) {
	s := NewSolver()
	vars := make([]int, 5)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	s.AddAtMost(vars, 2)
	s.AddClause(vars[0])
	s.AddClause(vars[1])
	if st := s.Solve(); st != Sat {
		t.Fatalf("status = %v", st)
	}
	count := 0
	for _, v := range vars {
		if s.Value(v) {
			count++
		}
	}
	if count > 2 {
		t.Errorf("%d true vars, want <= 2", count)
	}
}

func TestAtLeast(t *testing.T) {
	s := NewSolver()
	vars := make([]int, 4)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	s.AddAtLeast(vars, 3)
	s.AddClause(-vars[0])
	if st := s.Solve(); st != Sat {
		t.Fatalf("status = %v", st)
	}
	count := 0
	for _, v := range vars {
		if s.Value(v) {
			count++
		}
	}
	if count < 3 {
		t.Errorf("%d true, want >= 3", count)
	}
	// Forcing two false makes it UNSAT.
	s2 := NewSolver()
	vars2 := make([]int, 4)
	for i := range vars2 {
		vars2[i] = s2.NewVar()
	}
	s2.AddAtLeast(vars2, 3)
	s2.AddClause(-vars2[0])
	s2.AddClause(-vars2[1])
	if st := s2.Solve(); st != Unsat {
		t.Errorf("status = %v, want unsat", st)
	}
}

func TestWeightedPB(t *testing.T) {
	// 3a + 4b + 2c <= 6: {a,b} ok (7 > 6? no: 3+4=7 > 6 -> forbidden).
	s := NewSolver()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddPB([]int{a, b, c}, []int64{3, 4, 2}, 6)
	s.AddClause(a)
	s.AddClause(b)
	if st := s.Solve(); st != Unsat {
		t.Errorf("a+b weighs 7 > 6; status = %v, want unsat", st)
	}

	s2 := NewSolver()
	a2, b2, c2 := s2.NewVar(), s2.NewVar(), s2.NewVar()
	s2.AddPB([]int{a2, b2, c2}, []int64{3, 4, 2}, 6)
	s2.AddClause(b2)
	s2.AddClause(c2)
	if st := s2.Solve(); st != Sat {
		t.Fatalf("b+c weighs 6 <= 6; status = %v", st)
	}
	if s2.Value(a2) {
		t.Error("a must be false (would exceed bound)")
	}
}

func TestPBOverweightLiteralForcedFalse(t *testing.T) {
	s := NewSolver()
	a, b := s.NewVar(), s.NewVar()
	s.AddPB([]int{a, b}, []int64{10, 1}, 5)
	if st := s.Solve(); st != Sat {
		t.Fatalf("status = %v", st)
	}
	if s.Value(a) {
		t.Error("a weighs 10 > 5 and must be false")
	}
}

func TestNegativeLiteralsInPB(t *testing.T) {
	// at most 1 of {-a, b}: a=false counts.
	s := NewSolver()
	a, b := s.NewVar(), s.NewVar()
	s.AddAtMost([]int{-a, b}, 1)
	s.AddClause(-a) // -a true: consumes the budget
	if st := s.Solve(); st != Sat {
		t.Fatalf("status = %v", st)
	}
	if s.Value(b) {
		t.Error("b must be false once -a is true")
	}
}

func TestAssumptions(t *testing.T) {
	s := NewSolver()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(-a, b)
	if st := s.Solve(a); st != Sat {
		t.Fatalf("status = %v", st)
	}
	if !s.Value(a) || !s.Value(b) {
		t.Error("assumption a should force b")
	}
	// Assumptions that contradict clauses: UNSAT, but solver reusable.
	s.AddClause(-b)
	if st := s.Solve(a); st != Unsat {
		t.Errorf("status = %v, want unsat under assumption", st)
	}
	if st := s.Solve(-a); st != Sat {
		t.Errorf("status = %v, want sat without the bad assumption", st)
	}
}

func TestDeadlineUnknown(t *testing.T) {
	s := NewSolver()
	// A hard-ish pigeonhole with an already-expired deadline.
	n := 8
	p := make([][]int, n+1)
	for i := range p {
		p[i] = make([]int, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ {
		s.AddClause(p[i]...)
	}
	for j := 0; j < n; j++ {
		for i := 0; i <= n; i++ {
			for k := i + 1; k <= n; k++ {
				s.AddClause(-p[i][j], -p[k][j])
			}
		}
	}
	s.SetDeadline(time.Now().Add(-time.Second))
	if st := s.Solve(); st != Unknown && st != Unsat {
		t.Errorf("status = %v, want unknown (or fast unsat)", st)
	}
}

func TestMinimizeSimple(t *testing.T) {
	// min a+b+c s.t. a∨b, b∨c: optimum is b alone (1).
	s := NewSolver()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(a, b)
	s.AddClause(b, c)
	best, model, st := s.Minimize([]int{a, b, c}, []int64{1, 1, 1})
	if st != Sat {
		t.Fatalf("status = %v", st)
	}
	if best != 1 {
		t.Errorf("best = %d, want 1", best)
	}
	if !model[b] {
		t.Errorf("model = %v, want b true", model)
	}
}

func TestMinimizeWeighted(t *testing.T) {
	// min 5a + b + c s.t. a ∨ (b ∧ c): encode a∨b, a∨c.
	s := NewSolver()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(a, b)
	s.AddClause(a, c)
	best, model, st := s.Minimize([]int{a, b, c}, []int64{5, 1, 1})
	if st != Sat {
		t.Fatalf("status = %v", st)
	}
	// b+c = 2 beats a = 5.
	if best != 2 {
		t.Errorf("best = %d, want 2", best)
	}
	if model[a] || !model[b] || !model[c] {
		t.Errorf("model = %v", model)
	}
}

func TestMinimizeUnsat(t *testing.T) {
	s := NewSolver()
	a := s.NewVar()
	s.AddClause(a)
	s.AddClause(-a)
	if _, _, st := s.Minimize([]int{a}, []int64{1}); st != Unsat {
		t.Errorf("status = %v, want unsat", st)
	}
}

func TestMinimizeZeroOptimal(t *testing.T) {
	s := NewSolver()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(a, b, -a) // tautology; nothing forced
	best, _, st := s.Minimize([]int{a, b}, []int64{1, 1})
	if st != Sat || best != 0 {
		t.Errorf("best = %d status %v, want 0 sat", best, st)
	}
}

// bruteForceSat checks satisfiability of clauses+cards by enumeration.
type cardC struct {
	lits []int
	k    int
}

func bruteForce(nVars int, clauses [][]int, cards []cardC) (bool, int) {
	// Returns (satisfiable, min true count over all vars).
	bestCount := -1
	for mask := 0; mask < 1<<uint(nVars); mask++ {
		val := func(l int) bool {
			v := l
			if v < 0 {
				v = -v
			}
			bit := mask>>uint(v-1)&1 == 1
			if l < 0 {
				return !bit
			}
			return bit
		}
		ok := true
		for _, cl := range clauses {
			sat := false
			for _, l := range cl {
				if val(l) {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			for _, cc := range cards {
				cnt := 0
				for _, l := range cc.lits {
					if val(l) {
						cnt++
					}
				}
				if cnt > cc.k {
					ok = false
					break
				}
			}
		}
		if ok {
			cnt := 0
			for v := 1; v <= nVars; v++ {
				if mask>>uint(v-1)&1 == 1 {
					cnt++
				}
			}
			if bestCount == -1 || cnt < bestCount {
				bestCount = cnt
			}
		}
	}
	return bestCount >= 0, bestCount
}

func TestRandomVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		nVars := 4 + rng.Intn(7)
		nClauses := 2 + rng.Intn(12)
		var clauses [][]int
		for c := 0; c < nClauses; c++ {
			width := 1 + rng.Intn(3)
			var cl []int
			for w := 0; w < width; w++ {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				cl = append(cl, v)
			}
			clauses = append(clauses, cl)
		}
		var cards []cardC
		if rng.Intn(2) == 0 {
			var lits []int
			for v := 1; v <= nVars; v++ {
				if rng.Intn(2) == 0 {
					lits = append(lits, v)
				}
			}
			if len(lits) > 0 {
				cards = append(cards, cardC{lits: lits, k: rng.Intn(len(lits))})
			}
		}
		wantSat, _ := bruteForce(nVars, clauses, cards)

		s := NewSolver()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		okSoFar := true
		for _, cl := range clauses {
			if !s.AddClause(cl...) {
				okSoFar = false
				break
			}
		}
		if okSoFar {
			for _, cc := range cards {
				if !s.AddAtMost(cc.lits, cc.k) {
					okSoFar = false
					break
				}
			}
		}
		var got Status
		if !okSoFar {
			got = Unsat
		} else {
			got = s.Solve()
		}
		if wantSat && got != Sat {
			t.Fatalf("trial %d: got %v, brute force says SAT", trial, got)
		}
		if !wantSat && got != Unsat {
			t.Fatalf("trial %d: got %v, brute force says UNSAT", trial, got)
		}
		if got == Sat {
			// Verify the model against all constraints.
			for ci, cl := range clauses {
				sat := false
				for _, l := range cl {
					v := l
					if v < 0 {
						v = -v
					}
					if (l > 0) == s.Value(v) {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("trial %d: clause %d unsatisfied by model", trial, ci)
				}
			}
			for _, cc := range cards {
				cnt := 0
				for _, l := range cc.lits {
					v := l
					if v < 0 {
						v = -v
					}
					if (l > 0) == s.Value(v) {
						cnt++
					}
				}
				if cnt > cc.k {
					t.Fatalf("trial %d: cardinality violated: %d > %d", trial, cnt, cc.k)
				}
			}
		}
	}
}

func TestRandomMinimizeVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 80; trial++ {
		nVars := 4 + rng.Intn(6)
		var clauses [][]int
		for c := 0; c < 2+rng.Intn(8); c++ {
			var cl []int
			for w := 0; w < 1+rng.Intn(3); w++ {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(3) == 0 {
					v = -v
				}
				cl = append(cl, v)
			}
			clauses = append(clauses, cl)
		}
		wantSat, wantMin := bruteForce(nVars, clauses, nil)

		s := NewSolver()
		vars := make([]int, nVars)
		weights := make([]int64, nVars)
		for v := 0; v < nVars; v++ {
			vars[v] = s.NewVar()
			weights[v] = 1
		}
		ok := true
		for _, cl := range clauses {
			if !s.AddClause(cl...) {
				ok = false
				break
			}
		}
		if !ok {
			if wantSat {
				t.Fatalf("trial %d: solver rejected satisfiable clauses", trial)
			}
			continue
		}
		best, model, st := s.Minimize(vars, weights)
		if !wantSat {
			if st != Unsat {
				t.Fatalf("trial %d: st=%v, want unsat", trial, st)
			}
			continue
		}
		if st != Sat {
			t.Fatalf("trial %d: st=%v", trial, st)
		}
		if int(best) != wantMin {
			t.Fatalf("trial %d: best=%d, brute force=%d", trial, best, wantMin)
		}
		// Model must achieve the objective and satisfy clauses.
		cnt := 0
		for _, v := range vars {
			if model[v] {
				cnt++
			}
		}
		if cnt != wantMin {
			t.Fatalf("trial %d: model has %d true, want %d", trial, cnt, wantMin)
		}
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "sat" || Unsat.String() != "unsat" || Unknown.String() != "unknown" {
		t.Error("status strings wrong")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := lubyRec(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestManyVarsStress(t *testing.T) {
	// A larger random 3-SAT near the easy region, plus a cardinality cap;
	// just checks the solver terminates and answers consistently.
	rng := rand.New(rand.NewSource(9))
	s := NewSolver()
	n := 300
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for c := 0; c < 600; c++ {
		cl := []int{
			vars[rng.Intn(n)] * sign(rng),
			vars[rng.Intn(n)] * sign(rng),
			vars[rng.Intn(n)] * sign(rng),
		}
		if !s.AddClause(cl...) {
			t.Fatal("level-0 conflict on random 3-SAT (unexpected at this density)")
		}
	}
	st := s.Solve()
	if st != Sat && st != Unsat {
		t.Fatalf("status = %v", st)
	}
}

func sign(rng *rand.Rand) int {
	if rng.Intn(2) == 0 {
		return -1
	}
	return 1
}
