package dataplane

import (
	"testing"

	"rulefit/internal/match"
	"rulefit/internal/policy"
	"rulefit/internal/topology"
)

func entry(tags []topology.PortID, pattern string, a policy.Action, prio int) Entry {
	ts := make(map[topology.PortID]bool, len(tags))
	for _, t := range tags {
		ts[t] = true
	}
	return Entry{Tags: ts, Match: match.MustParseTernary(pattern), Action: a, Priority: prio}
}

func TestTableAddKeepsOrder(t *testing.T) {
	tb := &Table{Switch: 1}
	tb.Add(entry([]topology.PortID{1}, "0*", policy.Permit, 1))
	tb.Add(entry([]topology.PortID{1}, "1*", policy.Drop, 3))
	tb.Add(entry([]topology.PortID{1}, "**", policy.Permit, 2))
	if tb.Entries[0].Priority != 3 || tb.Entries[1].Priority != 2 || tb.Entries[2].Priority != 1 {
		t.Errorf("entries out of order: %v", tb.Entries)
	}
	if tb.Size() != 3 {
		t.Errorf("Size = %d", tb.Size())
	}
}

func TestLookupFirstMatch(t *testing.T) {
	tb := &Table{Switch: 1}
	tb.Add(entry([]topology.PortID{1}, "11", policy.Permit, 2))
	tb.Add(entry([]topology.PortID{1}, "1*", policy.Drop, 1))
	if a, ok := tb.Lookup(1, []uint64{0b11}); !ok || a != policy.Permit {
		t.Errorf("Lookup(11) = %v, %v", a, ok)
	}
	if a, ok := tb.Lookup(1, []uint64{0b10}); !ok || a != policy.Drop {
		t.Errorf("Lookup(10) = %v, %v", a, ok)
	}
	if _, ok := tb.Lookup(1, []uint64{0b01}); ok {
		t.Error("Lookup(01) should not match")
	}
}

func TestLookupRespectsTags(t *testing.T) {
	tb := &Table{Switch: 1}
	tb.Add(entry([]topology.PortID{2}, "1*", policy.Drop, 1))
	if _, ok := tb.Lookup(1, []uint64{0b10}); ok {
		t.Error("entry tagged for ingress 2 must not match ingress 1 traffic")
	}
	if a, ok := tb.Lookup(2, []uint64{0b10}); !ok || a != policy.Drop {
		t.Errorf("Lookup with right tag = %v, %v", a, ok)
	}
}

func TestMergedEntryServesMultipleIngresses(t *testing.T) {
	tb := &Table{Switch: 1}
	e := entry([]topology.PortID{1, 2, 3}, "1*", policy.Drop, 1)
	e.Merged = true
	tb.Add(e)
	for _, in := range []topology.PortID{1, 2, 3} {
		if a, ok := tb.Lookup(in, []uint64{0b11}); !ok || a != policy.Drop {
			t.Errorf("ingress %d: %v %v", in, a, ok)
		}
	}
	if tb.Size() != 1 {
		t.Errorf("merged entry must cost one slot, Size = %d", tb.Size())
	}
}

func TestWalkDropsAtFirstMatchingSwitch(t *testing.T) {
	n := NewNetwork()
	n.Table(2).Add(entry([]topology.PortID{1}, "10", policy.Drop, 1))
	n.Table(3).Add(entry([]topology.PortID{1}, "1*", policy.Drop, 1))
	v := n.Walk(1, []topology.SwitchID{1, 2, 3}, []uint64{0b10})
	if !v.Dropped || v.DroppedAt != 2 || v.Hops != 2 {
		t.Errorf("verdict = %+v, want drop at switch 2 after 2 hops", v)
	}
	v = n.Walk(1, []topology.SwitchID{1, 2, 3}, []uint64{0b11})
	if !v.Dropped || v.DroppedAt != 3 {
		t.Errorf("verdict = %+v, want drop at switch 3", v)
	}
	v = n.Walk(1, []topology.SwitchID{1, 2, 3}, []uint64{0b01})
	if v.Dropped || v.Hops != 3 {
		t.Errorf("verdict = %+v, want pass through", v)
	}
}

func TestWalkPermitOverridesDownstreamDropAtSameSwitch(t *testing.T) {
	// A higher-priority PERMIT at the same switch shields the DROP there,
	// but the packet continues and can be dropped later.
	n := NewNetwork()
	n.Table(1).Add(entry([]topology.PortID{1}, "11", policy.Permit, 2))
	n.Table(1).Add(entry([]topology.PortID{1}, "1*", policy.Drop, 1))
	v := n.Walk(1, []topology.SwitchID{1}, []uint64{0b11})
	if v.Dropped {
		t.Error("permit should shield the drop at switch 1")
	}
}

func TestTotalEntriesAndViolations(t *testing.T) {
	topo, err := topology.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNetwork()
	n.Table(0).Add(entry([]topology.PortID{1}, "1*", policy.Drop, 1))
	n.Table(0).Add(entry([]topology.PortID{1}, "0*", policy.Drop, 2))
	n.Table(1).Add(entry([]topology.PortID{1}, "1*", policy.Drop, 1))
	if n.TotalEntries() != 3 {
		t.Errorf("TotalEntries = %d", n.TotalEntries())
	}
	viol := n.CapacityViolations(topo)
	if len(viol) != 1 || viol[0] != 0 {
		t.Errorf("violations = %v, want [0]", viol)
	}
}

func TestTableString(t *testing.T) {
	tb := &Table{Switch: 7}
	e := entry([]topology.PortID{1}, "1*", policy.Drop, 1)
	e.Merged = true
	tb.Add(e)
	if tb.String() == "" {
		t.Error("empty String")
	}
}

func TestMergeStacksDisjointTagSpaces(t *testing.T) {
	a := NewNetwork()
	a.Table(1).Add(entry([]topology.PortID{1}, "11", policy.Permit, 2))
	a.Table(1).Add(entry([]topology.PortID{1}, "1*", policy.Drop, 1))
	b := NewNetwork()
	b.Table(1).Add(entry([]topology.PortID{2}, "0*", policy.Drop, 5))
	b.Table(2).Add(entry([]topology.PortID{2}, "**", policy.Drop, 1))

	a.Merge(b)
	if a.Table(1).Size() != 3 || a.Table(2).Size() != 1 {
		t.Fatalf("sizes after merge: %d, %d", a.Table(1).Size(), a.Table(2).Size())
	}
	// Ingress 1 semantics preserved: permit shields drop.
	if act, ok := a.Table(1).Lookup(1, []uint64{0b11}); !ok || act != policy.Permit {
		t.Errorf("ingress 1 lookup(11) = %v, %v", act, ok)
	}
	// Ingress 2 entries reachable.
	if act, ok := a.Table(1).Lookup(2, []uint64{0b01}); !ok || act != policy.Drop {
		t.Errorf("ingress 2 lookup(01) = %v, %v", act, ok)
	}
	// Priorities still strictly ordered per table.
	for i := 1; i < len(a.Table(1).Entries); i++ {
		if a.Table(1).Entries[i-1].Priority < a.Table(1).Entries[i].Priority {
			t.Error("entries out of order after merge")
		}
	}
}

func TestRemoveTag(t *testing.T) {
	n := NewNetwork()
	n.Table(1).Add(entry([]topology.PortID{1}, "1*", policy.Drop, 2))
	shared := entry([]topology.PortID{1, 2}, "0*", policy.Drop, 1)
	shared.Merged = true
	n.Table(1).Add(shared)
	n.RemoveTag(1)
	tb := n.Table(1)
	if tb.Size() != 1 {
		t.Fatalf("size after RemoveTag = %d, want 1 (plain entry gone)", tb.Size())
	}
	if tb.Entries[0].Tags[1] || !tb.Entries[0].Tags[2] {
		t.Errorf("merged entry tags wrong: %v", tb.Entries[0].Tags)
	}
	// Removing the last tag removes the entry.
	n.RemoveTag(2)
	if n.Table(1).Size() != 0 {
		t.Errorf("entry with no tags should vanish, size=%d", n.Table(1).Size())
	}
}
