// Package dataplane simulates the switch data plane: per-switch
// prioritized TCAM tables whose entries carry ingress tags (§IV-A5), and
// the first-match packet walk along a routed path. The placement
// verifier and the examples drive this simulator to observe deployed
// policy behaviour end to end.
package dataplane

import (
	"fmt"
	"sort"
	"strings"

	"rulefit/internal/match"
	"rulefit/internal/policy"
	"rulefit/internal/topology"
)

// Entry is one installed TCAM rule. Tags identifies the ingress policies
// the entry applies to: a packet is matched against an entry only when
// its ingress tag is in the set (the paper's VLAN-tag mechanism; merged
// rules carry several tags).
type Entry struct {
	Tags     map[topology.PortID]bool
	Match    match.Ternary
	Action   policy.Action
	Priority int
	// Merged marks entries that represent a merged rule shared by
	// multiple ingress policies.
	Merged bool
}

// HasTag reports whether the entry applies to packets from an ingress.
func (e Entry) HasTag(in topology.PortID) bool { return e.Tags[in] }

// Table is one switch's prioritized rule table.
type Table struct {
	Switch  topology.SwitchID
	Entries []Entry // kept sorted by decreasing priority
}

// Add inserts an entry, keeping priority order.
func (t *Table) Add(e Entry) {
	t.Entries = append(t.Entries, e)
	sort.SliceStable(t.Entries, func(a, b int) bool {
		return t.Entries[a].Priority > t.Entries[b].Priority
	})
}

// Size returns the number of TCAM slots consumed (merged entries cost
// one slot, which is the point of merging).
func (t *Table) Size() int { return len(t.Entries) }

// Lookup returns the action of the highest-priority entry matching the
// header under the given ingress tag, or (0, false) when nothing matches.
func (t *Table) Lookup(in topology.PortID, header []uint64) (policy.Action, bool) {
	for _, e := range t.Entries {
		if e.HasTag(in) && e.Match.MatchesWords(header) {
			return e.Action, true
		}
	}
	return 0, false
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "switch %d (%d entries):\n", t.Switch, len(t.Entries))
	for _, e := range t.Entries {
		tags := make([]int, 0, len(e.Tags))
		for tag := range e.Tags {
			tags = append(tags, int(tag))
		}
		sort.Ints(tags)
		merged := ""
		if e.Merged {
			merged = " [merged]"
		}
		fmt.Fprintf(&sb, "  [t=%d tags=%v]%s %s -> %s\n", e.Priority, tags, merged, e.Match, e.Action)
	}
	return sb.String()
}

// Network is the deployed data plane: one table per switch.
type Network struct {
	Tables map[topology.SwitchID]*Table
}

// NewNetwork returns an empty data plane.
func NewNetwork() *Network {
	return &Network{Tables: make(map[topology.SwitchID]*Table)}
}

// Table returns (creating if needed) the table of a switch.
func (n *Network) Table(s topology.SwitchID) *Table {
	t, ok := n.Tables[s]
	if !ok {
		t = &Table{Switch: s}
		n.Tables[s] = t
	}
	return t
}

// Verdict is the outcome of walking a packet along a path.
type Verdict struct {
	// Dropped reports whether some switch dropped the packet.
	Dropped bool
	// DroppedAt is the switch that dropped it (valid when Dropped).
	DroppedAt topology.SwitchID
	// Hops is the number of switches traversed (including the one that
	// dropped the packet, if any).
	Hops int
}

// Walk sends a header from ingress in along the ordered switch list,
// applying each switch's table in turn. A PERMIT (or no match) lets the
// packet continue; a DROP ends the walk.
func (n *Network) Walk(in topology.PortID, path []topology.SwitchID, header []uint64) Verdict {
	for i, sw := range path {
		t, ok := n.Tables[sw]
		if !ok {
			continue
		}
		action, matched := t.Lookup(in, header)
		if matched && action == policy.Drop {
			return Verdict{Dropped: true, DroppedAt: sw, Hops: i + 1}
		}
	}
	return Verdict{Hops: len(path)}
}

// TotalEntries sums TCAM slots used across all switches.
func (n *Network) TotalEntries() int {
	total := 0
	for _, t := range n.Tables {
		total += t.Size()
	}
	return total
}

// CapacityViolations returns the switches whose table exceeds the
// capacity recorded in the topology.
func (n *Network) CapacityViolations(topo *topology.Network) []topology.SwitchID {
	var out []topology.SwitchID
	for id, t := range n.Tables {
		if sw, ok := topo.Switch(id); ok && t.Size() > sw.Capacity {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Merge appends another deployment's entries to this one. Entries from
// different ingress policies occupy disjoint tag spaces, so relative
// order across the two sources is immaterial; within each source the
// original order is preserved by stacking the other network's entries
// below the existing ones.
func (n *Network) Merge(o *Network) {
	//lint:mapdet each iteration mutates only the table keyed by id; no cross-key state
	for id, ot := range o.Tables {
		t := n.Table(id)
		// Re-prioritize: existing entries keep the high band.
		offset := 0
		for _, e := range ot.Entries {
			if e.Priority > offset {
				offset = e.Priority
			}
		}
		for i := range t.Entries {
			t.Entries[i].Priority += offset
		}
		t.Entries = append(t.Entries, ot.Entries...)
		sortEntries(t)
	}
}

// RemoveTag removes an ingress policy's entries everywhere: plain
// entries disappear; merged entries lose the tag and disappear when no
// tags remain.
func (n *Network) RemoveTag(in topology.PortID) {
	for _, t := range n.Tables {
		w := 0
		for _, e := range t.Entries {
			if e.Tags[in] {
				if len(e.Tags) == 1 {
					continue
				}
				tags := make(map[topology.PortID]bool, len(e.Tags)-1)
				for tag := range e.Tags {
					if tag != in {
						tags[tag] = true
					}
				}
				e.Tags = tags
			}
			t.Entries[w] = e
			w++
		}
		t.Entries = t.Entries[:w]
	}
}

// sortEntries restores decreasing-priority order.
func sortEntries(t *Table) {
	sort.SliceStable(t.Entries, func(a, b int) bool {
		return t.Entries[a].Priority > t.Entries[b].Priority
	})
}
