package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// RenderSeries prints a runtime-vs-parameter figure as an aligned text
// table, one column block per capacity, matching the series the paper's
// figures plot (mean with min-max variation, "Inf" for infeasible runs).
func RenderSeries(title, xLabel string, series map[int][]Point) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	caps := make([]int, 0, len(series))
	for c := range series {
		caps = append(caps, c)
	}
	sort.Ints(caps)
	fmt.Fprintf(&sb, "%-8s", xLabel)
	for _, c := range caps {
		fmt.Fprintf(&sb, " | %-28s", fmt.Sprintf("C=%d mean [min..max]", c))
	}
	sb.WriteByte('\n')
	sb.WriteString(strings.Repeat("-", 8+len(caps)*31))
	sb.WriteByte('\n')
	if len(caps) == 0 {
		return sb.String()
	}
	for i := range series[caps[0]] {
		fmt.Fprintf(&sb, "%-8d", series[caps[0]][i].X)
		for _, c := range caps {
			p := series[c][i]
			status := ""
			if !p.Feasible() {
				status = " (Inf)"
			}
			fmt.Fprintf(&sb, " | %-28s", fmt.Sprintf("%s [%s..%s]%s", fmtDur(p.Mean), fmtDur(p.Min), fmtDur(p.Max), status))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RenderPoints prints a single series.
func RenderPoints(title, xLabel string, pts []Point) string {
	series := map[int][]Point{}
	for _, p := range pts {
		series[p.Capacity] = append(series[p.Capacity], p)
	}
	if len(series) != 1 {
		// Capacity varies along X (Experiment 4): flatten under one key.
		series = map[int][]Point{0: pts}
	}
	return RenderSeries(title, xLabel, series)
}

// RenderTable2 prints Experiment 3 in the paper's Table II layout:
// one row per mergeable-rule count, column pairs (total, overhead%) for
// each capacity with and without merging.
func RenderTable2(cells []Table2Cell) string {
	caps := map[int]bool{}
	rows := map[int]bool{}
	type key struct {
		mr, c   int
		merging bool
	}
	byKey := map[key]Table2Cell{}
	for _, cell := range cells {
		caps[cell.Capacity] = true
		rows[cell.MergeableRules] = true
		byKey[key{cell.MergeableRules, cell.Capacity, cell.Merging}] = cell
	}
	capList := make([]int, 0, len(caps))
	for c := range caps {
		capList = append(capList, c)
	}
	sort.Ints(capList)
	rowList := make([]int, 0, len(rows))
	for r := range rows {
		rowList = append(rowList, r)
	}
	sort.Ints(rowList)

	var sb strings.Builder
	sb.WriteString("Table II: capacity vs overhead in rule merging\n")
	fmt.Fprintf(&sb, "%-6s", "#MR")
	for _, c := range capList {
		fmt.Fprintf(&sb, " | %-16s | %-16s", fmt.Sprintf("%d", c), fmt.Sprintf("%d-MR", c))
	}
	sb.WriteByte('\n')
	sb.WriteString(strings.Repeat("-", 6+len(capList)*38))
	sb.WriteByte('\n')
	var unproven []Table2Cell
	for _, mr := range rowList {
		fmt.Fprintf(&sb, "%-6d", mr)
		for _, c := range capList {
			for _, merging := range []bool{false, true} {
				cell, ok := byKey[key{mr, c, merging}]
				text := "-"
				if ok {
					if cell.Infeasible {
						text = "Inf"
					} else {
						star := ""
						if !cell.Proven {
							star = "*"
							unproven = append(unproven, cell)
						}
						text = fmt.Sprintf("%d%s  %+.0f%%", cell.TotalRules, star, cell.OverheadPct)
					}
				}
				fmt.Fprintf(&sb, " | %-16s", text)
			}
		}
		sb.WriteByte('\n')
	}
	// Unproven cells are time-limited incumbents; report how far each
	// could still be from optimal (the solver's final bound-gap).
	for _, cell := range unproven {
		mode := "unmerged"
		if cell.Merging {
			mode = "merged"
		}
		if cell.GapPct >= 0 {
			fmt.Fprintf(&sb, "* #MR=%d C=%d %s: incumbent %d, best bound %.1f, gap %.1f%%\n",
				cell.MergeableRules, cell.Capacity, mode, cell.TotalRules, cell.BestBound, cell.GapPct)
		} else {
			fmt.Fprintf(&sb, "* #MR=%d C=%d %s: incumbent %d, no bound available\n",
				cell.MergeableRules, cell.Capacity, mode, cell.TotalRules)
		}
	}
	return sb.String()
}

// RenderExp5 prints the incremental-deployment study.
func RenderExp5(r *Exp5Result) string {
	var sb strings.Builder
	sb.WriteString("Experiment 5: incremental deployment\n")
	fmt.Fprintf(&sb, "base solve: %s (%d rules installed)\n", fmtDur(r.BaseTime), r.BaseRules)
	for i, n := range r.Installs {
		status := "feasible"
		if !r.InstallOK[i] {
			status = "infeasible"
		}
		fmt.Fprintf(&sb, "install %4d new policies: %10s  (%s)\n", n, fmtDur(r.InstallTimes[i]), status)
	}
	for i, n := range r.Reroutes {
		status := "feasible"
		if !r.RerouteOK[i] {
			status = "infeasible"
		}
		fmt.Fprintf(&sb, "reroute %4d policies:     %10s  (%s)\n", n, fmtDur(r.RerouteTimes[i]), status)
	}
	fmt.Fprintf(&sb, "from-scratch re-solve for comparison: %s\n", fmtDur(r.FromScratchCmp))
	return sb.String()
}

// RenderBaselines prints the strategy comparison.
func RenderBaselines(r *BaselineResult) string {
	var sb strings.Builder
	sb.WriteString("Baseline comparison (same workload)\n")
	fmt.Fprintf(&sb, "optimal ILP placement : %6d rules  (%s)\n", r.OptimalRules, fmtDur(r.OptimalTime))
	if r.GreedyOK {
		fmt.Fprintf(&sb, "greedy ingress-first  : %6d rules  (%s)\n", r.GreedyRules, fmtDur(r.GreedyTime))
	} else {
		fmt.Fprintf(&sb, "greedy ingress-first  : infeasible   (%s)\n", fmtDur(r.GreedyTime))
	}
	fmt.Fprintf(&sb, "replicate-per-path    : %6d rules\n", r.ReplicaRules)
	fmt.Fprintf(&sb, "naive p x r bound     : %6d rules\n", r.PXR)
	if r.PXR > 0 && r.OptimalRules > 0 {
		fmt.Fprintf(&sb, "optimal uses %.0f%% of the p x r bound\n", 100*float64(r.OptimalRules)/float64(r.PXR))
	}
	return sb.String()
}

// fmtDur renders durations compactly with millisecond resolution.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// WriteCSV emits a point series as CSV (x, capacity, mean_ms, min_ms,
// max_ms, feasible) for plotting with external tools.
func WriteCSV(w io.Writer, xLabel string, series map[int][]Point) error {
	if _, err := fmt.Fprintf(w, "%s,capacity,mean_ms,min_ms,max_ms,feasible\n", xLabel); err != nil {
		return err
	}
	caps := make([]int, 0, len(series))
	for c := range series {
		caps = append(caps, c)
	}
	sort.Ints(caps)
	for _, c := range caps {
		for _, p := range series[c] {
			if _, err := fmt.Fprintf(w, "%d,%d,%.3f,%.3f,%.3f,%v\n",
				p.X, c, ms(p.Mean), ms(p.Min), ms(p.Max), p.Feasible()); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteTable2CSV emits Experiment 3 cells as CSV.
func WriteTable2CSV(w io.Writer, cells []Table2Cell) error {
	if _, err := fmt.Fprintln(w, "mergeable,capacity,merging,infeasible,total_rules,overhead_pct,proven,best_bound,gap_pct"); err != nil {
		return err
	}
	for _, c := range cells {
		if _, err := fmt.Fprintf(w, "%d,%d,%v,%v,%d,%.1f,%v,%.3f,%.3f\n",
			c.MergeableRules, c.Capacity, c.Merging, c.Infeasible, c.TotalRules, c.OverheadPct, c.Proven, c.BestBound, c.GapPct); err != nil {
			return err
		}
	}
	return nil
}

// ms converts a duration to fractional milliseconds.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
