package bench

import (
	"sync"
	"time"
)

// runJobs maps f over cfgs with at most par invocations in flight
// (par <= 1 runs sequentially). Results land at the index of their
// config and errors are reported first-by-index, so the output — and
// any aggregation done over it — is identical to a sequential run; the
// fan-out changes only wall-clock time.
func runJobs[T any](cfgs []Config, par int, f func(Config) (T, error)) ([]T, error) {
	out := make([]T, len(cfgs))
	if par <= 1 {
		for i, cfg := range cfgs {
			r, err := f(cfg)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	errs := make([]error, len(cfgs))
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, cfg Config) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i], errs[i] = f(cfg)
		}(i, cfg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// aggregate folds the seed runs of one swept parameter value into a
// Point, preserving the individual runs for machine-readable reports.
func aggregate(x, capacity int, runs []Result) Point {
	p := Point{X: x, Capacity: capacity, Runs: append([]Result(nil), runs...)}
	var total time.Duration
	for _, res := range runs {
		total += res.Time
		p.Statuses = append(p.Statuses, res.Status)
		if p.Min == 0 || res.Time < p.Min {
			p.Min = res.Time
		}
		if res.Time > p.Max {
			p.Max = res.Time
		}
	}
	p.Mean = total / time.Duration(len(runs))
	return p
}
