package bench

import (
	"strings"
	"testing"
	"time"

	"rulefit/internal/core"
)

// tiny returns the smallest meaningful workload for structure tests.
func tiny() Config {
	cfg := Config{K: 4, Ingresses: 4, PathsPerIngress: 2, Rules: 6, Capacity: 50, Seed: 1}
	cfg.Opts.TimeLimit = 60 * time.Second
	return cfg
}

func TestBuildWorkload(t *testing.T) {
	prob, err := Build(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(prob.Policies); got != 4 {
		t.Errorf("policies = %d, want 4", got)
	}
	if got := prob.Routing.NumPaths(); got != 8 {
		t.Errorf("paths = %d, want 8", got)
	}
	if prob.Network.NumSwitches() != 20 {
		t.Errorf("switches = %d, want 20 (k=4 fat-tree)", prob.Network.NumSwitches())
	}
}

func TestBuildWithMergeable(t *testing.T) {
	cfg := tiny()
	cfg.Mergeable = 3
	prob, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range prob.Policies {
		if len(pol.Rules) != 9 {
			t.Errorf("policy has %d rules, want 6+3", len(pol.Rules))
		}
	}
	// The top 3 rules must be identical across policies (mergeable).
	for r := 0; r < 3; r++ {
		m := prob.Policies[0].Rules[r].Match
		for _, pol := range prob.Policies[1:] {
			if !pol.Rules[r].Match.Equal(m) {
				t.Errorf("blacklist rule %d differs across policies", r)
			}
		}
	}
}

func TestRunProducesResult(t *testing.T) {
	res, err := Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.TotalRules == 0 || res.Variables == 0 || res.Time == 0 {
		t.Errorf("result not populated: %+v", res)
	}
}

func TestExperiment1Shape(t *testing.T) {
	series, err := Experiment1(tiny(), []int{4, 8}, []int{50}, 2)
	if err != nil {
		t.Fatal(err)
	}
	pts := series[50]
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if len(p.Statuses) != 2 {
			t.Errorf("point has %d statuses, want 2 seeds", len(p.Statuses))
		}
		if p.Min > p.Mean || p.Mean > p.Max {
			t.Errorf("min/mean/max inconsistent: %+v", p)
		}
		if !p.Feasible() {
			t.Errorf("tiny workload should be feasible: %+v", p)
		}
	}
	out := RenderSeries("t", "#rules", series)
	if !strings.Contains(out, "C=50") {
		t.Errorf("render missing capacity header:\n%s", out)
	}
}

func TestExperiment2Shape(t *testing.T) {
	series, err := Experiment2(tiny(), []int{4, 8}, []int{50})
	if err != nil {
		t.Fatal(err)
	}
	if len(series[50]) != 2 {
		t.Fatalf("points = %d", len(series[50]))
	}
}

func TestExperiment3ShapeAndRender(t *testing.T) {
	cfg := tiny()
	cells, err := Experiment3(cfg, []int{2}, []int{6, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 { // 1 mr x 2 caps x {plain, merged}
		t.Fatalf("cells = %d", len(cells))
	}
	// With slack capacity, merging must not increase the rule count.
	var plain, merged *Table2Cell
	for i := range cells {
		c := &cells[i]
		if c.Capacity == 50 {
			if c.Merging {
				merged = c
			} else {
				plain = c
			}
		}
	}
	if plain == nil || merged == nil {
		t.Fatal("missing cells")
	}
	if !plain.Infeasible && !merged.Infeasible && merged.TotalRules > plain.TotalRules {
		t.Errorf("merging increased rules: %d > %d", merged.TotalRules, plain.TotalRules)
	}
	out := RenderTable2(cells)
	if !strings.Contains(out, "#MR") || !strings.Contains(out, "50-MR") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestExperiment4Shape(t *testing.T) {
	pts, err := Experiment4(tiny(), []int{6, 50}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if out := RenderPoints("t", "C", pts); !strings.Contains(out, "C") {
		t.Error("render empty")
	}
}

func TestExperiment5EndToEnd(t *testing.T) {
	cfg := tiny()
	cfg.Capacity = 60
	res, err := Experiment5(cfg, []int{2}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InstallTimes) != 1 || len(res.RerouteTimes) != 1 {
		t.Fatalf("times missing: %+v", res)
	}
	if !res.InstallOK[0] {
		t.Error("tiny install should fit in spare capacity")
	}
	if res.BaseRules == 0 {
		t.Error("base rules not recorded")
	}
	if out := RenderExp5(res); !strings.Contains(out, "install") {
		t.Error("render malformed")
	}
}

func TestBaselinesOrdering(t *testing.T) {
	res, err := Baselines(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.OptimalRules == 0 {
		t.Fatal("optimal failed")
	}
	if res.GreedyOK && res.GreedyRules < res.OptimalRules {
		t.Errorf("greedy (%d) beat optimal (%d)", res.GreedyRules, res.OptimalRules)
	}
	if res.ReplicaRules < res.OptimalRules {
		t.Errorf("replication (%d) beat optimal (%d)", res.ReplicaRules, res.OptimalRules)
	}
	if res.PXR < res.ReplicaRules {
		t.Errorf("p x r bound (%d) below replication (%d)", res.PXR, res.ReplicaRules)
	}
	if out := RenderBaselines(res); !strings.Contains(out, "p x r") {
		t.Error("render malformed")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.K == 0 || cfg.Rules == 0 || cfg.Capacity == 0 || cfg.Opts.TimeLimit == 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestFmtDur(t *testing.T) {
	if fmtDur(2*time.Second) != "2.00s" {
		t.Error(fmtDur(2 * time.Second))
	}
	if fmtDur(1500*time.Microsecond) != "1.5ms" {
		t.Error(fmtDur(1500 * time.Microsecond))
	}
	if fmtDur(800*time.Nanosecond) != "0µs" {
		t.Error(fmtDur(800 * time.Nanosecond))
	}
}

func TestWriteCSV(t *testing.T) {
	series := map[int][]Point{
		50: {{X: 4, Capacity: 50, Mean: 2 * time.Millisecond, Min: time.Millisecond, Max: 3 * time.Millisecond, Statuses: []core.Status{core.StatusOptimal}}},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, "rules", series); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "rules,capacity,mean_ms") || !strings.Contains(out, "4,50,2.000,1.000,3.000,true") {
		t.Errorf("csv malformed:\n%s", out)
	}
	var sb2 strings.Builder
	cells := []Table2Cell{{MergeableRules: 2, Capacity: 8, Merging: true, TotalRules: 48, OverheadPct: -7.5, Proven: true}}
	if err := WriteTable2CSV(&sb2, cells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb2.String(), "2,8,true,false,48,-7.5,true") {
		t.Errorf("table2 csv malformed:\n%s", sb2.String())
	}
}
