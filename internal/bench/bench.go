// Package bench builds the synthetic workloads of the paper's evaluation
// (§V) and runs Experiments 1–5: fat-tree topologies, ClassBench-style
// policies per ingress, randomized shortest-path routing, and sweeps
// over rule counts, path counts, capacities, mergeable-rule counts, and
// incremental updates.
//
// Absolute runtimes are not comparable to the paper's CPLEX-on-Xeon
// numbers (the solvers here are built from scratch); the experiments
// reproduce the *shapes*: tightly-constrained instances are slowest,
// over- and under-constrained ones fast, merging turns infeasible cells
// feasible, and incremental updates run orders of magnitude faster than
// from-scratch solves. Default scales are reduced accordingly;
// cmd/experiments exposes larger scales.
package bench

import (
	"fmt"
	"time"

	"rulefit/internal/core"
	"rulefit/internal/policy"
	"rulefit/internal/routing"
	"rulefit/internal/topology"
)

// Config describes one workload instance.
type Config struct {
	// K is the fat-tree arity (even).
	K int
	// HostsPerEdge external ports per edge switch.
	HostsPerEdge int
	// Ingresses is the number of ingress ports carrying a policy.
	Ingresses int
	// PathsPerIngress routes per ingress (total paths = product).
	PathsPerIngress int
	// Rules per ingress policy.
	Rules int
	// Capacity per switch (uniform, as in the paper).
	Capacity int
	// Mergeable appends this many identical blacklist DROP rules to
	// every policy (Experiment 3).
	Mergeable int
	// Seed drives policy generation and routing tie-breaks.
	Seed int64
	// Parallel bounds how many workload instances a sweep solves
	// concurrently (<= 1 = sequential). Results are aggregated in input
	// order regardless, so Parallel changes only wall-clock time.
	Parallel int
	// Opts passes through solver options.
	Opts core.Options
}

// withDefaults fills unset fields with the reduced default scale.
func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 4
	}
	if c.HostsPerEdge == 0 {
		c.HostsPerEdge = 2
	}
	if c.Ingresses == 0 {
		c.Ingresses = 8
	}
	if c.PathsPerIngress == 0 {
		c.PathsPerIngress = 8
	}
	if c.Rules == 0 {
		c.Rules = 20
	}
	if c.Capacity == 0 {
		c.Capacity = 100
	}
	if c.Opts.TimeLimit == 0 {
		c.Opts.TimeLimit = 60 * time.Second
	}
	return c
}

// Build constructs the problem instance for a config.
func Build(cfg Config) (*core.Problem, error) {
	cfg = cfg.withDefaults()
	topo, err := topology.FatTree(cfg.K, cfg.Capacity, cfg.HostsPerEdge)
	if err != nil {
		return nil, err
	}
	pairs, err := routing.SpreadPairs(topo, cfg.Ingresses, cfg.PathsPerIngress, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rt, err := routing.BuildRouting(topo, pairs, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	var dstPool []uint32
	if cfg.Opts.PathSlicing {
		routing.AssignTrafficSlices(rt)
		// Target the egress prefixes so rules overlap the traffic
		// slices (otherwise slicing trivially removes every rule).
		for _, p := range topo.EgressPorts() {
			ip, _ := routing.EgressPrefix(p.ID)
			dstPool = append(dstPool, ip)
		}
	}
	var blacklist []policy.Rule
	if cfg.Mergeable > 0 {
		blacklist = policy.GenerateBlacklist(cfg.Mergeable, cfg.Seed+2)
	}
	var policies []*policy.Policy
	for _, in := range rt.Ingresses() {
		pol := policy.Generate(int(in), policy.GenConfig{NumRules: cfg.Rules, Seed: cfg.Seed, DstPool: dstPool})
		if len(blacklist) > 0 {
			pol = policy.WithBlacklist(pol, blacklist)
		}
		policies = append(policies, pol)
	}
	return &core.Problem{Network: topo, Routing: rt, Policies: policies}, nil
}

// Result is one measured placement run.
type Result struct {
	Status      core.Status
	TotalRules  int
	Time        time.Duration
	Variables   int
	Constraints int
	// Nodes and SimplexIters report ILP solver effort; Workers is the
	// branch & bound parallelism the solve used.
	Nodes        int
	SimplexIters int
	Workers      int
	// LURefactors counts basis refactorizations; Branched..LostSubtrees
	// break Nodes down by outcome (their sum equals Nodes); PrunedStale
	// counts frontier items skipped before expansion; Incumbents counts
	// incumbent improvements during the search.
	LURefactors      int
	Branched         int
	PrunedBound      int
	PrunedInfeasible int
	IntegralLeaves   int
	LostSubtrees     int
	PrunedStale      int
	Incumbents       int
	// CutsAdded/CutRoundsRoot report root cover-cut separation;
	// StrongBranchEvals counts reliability-branching trials;
	// WarmStartReuses counts warm-started node LPs.
	CutsAdded         int
	CutRoundsRoot     int
	StrongBranchEvals int
	WarmStartReuses   int
	// StopReason says why the search ended early ("none" when the tree
	// was exhausted). BestBound/Gap carry the proof state for anytime
	// runs: Gap is 0 for proven optima, positive for time/node-limited
	// incumbents, and -1 when undefined.
	StopReason string
	BestBound  float64
	Gap        float64
	// LastIncumbentAtNode is the B&B node that produced the final
	// incumbent (0 when none); RootGap is the gap the tree had to close
	// from the post-cut root relaxation (-1 undefined).
	LastIncumbentAtNode int
	RootGap             float64
}

// Run builds and solves one instance, measuring wall-clock solve time.
func Run(cfg Config) (Result, error) {
	prob, err := Build(cfg)
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	pl, err := core.Place(prob, cfg.Opts)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Status:              pl.Status,
		TotalRules:          pl.TotalRules,
		Time:                time.Since(start),
		Variables:           pl.Stats.Variables,
		Constraints:         pl.Stats.Constraints,
		Nodes:               pl.Stats.BnBNodes,
		SimplexIters:        pl.Stats.SimplexIters,
		Workers:             pl.Stats.Workers,
		LURefactors:         pl.Stats.LURefactors,
		Branched:            pl.Stats.Branched,
		PrunedBound:         pl.Stats.PrunedBound,
		PrunedInfeasible:    pl.Stats.PrunedInfeasible,
		IntegralLeaves:      pl.Stats.IntegralLeaves,
		LostSubtrees:        pl.Stats.LostSubtrees,
		PrunedStale:         pl.Stats.PrunedStale,
		Incumbents:          pl.Stats.Incumbents,
		CutsAdded:           pl.Stats.CutsAdded,
		CutRoundsRoot:       pl.Stats.CutRoundsRoot,
		StrongBranchEvals:   pl.Stats.StrongBranchEvals,
		WarmStartReuses:     pl.Stats.WarmStartReuses,
		StopReason:          pl.Stats.StopReason.String(),
		BestBound:           pl.Stats.BestBound,
		Gap:                 pl.Stats.Gap,
		LastIncumbentAtNode: pl.Stats.LastIncumbentAtNode,
		RootGap:             pl.Stats.RootGap,
	}, nil
}

// Point is one point of a runtime-vs-parameter figure, averaged over
// seeds with min/max variation (the paper's variation bars).
type Point struct {
	X        int // the swept parameter (rules, paths, capacity)
	Capacity int
	Mean     time.Duration
	Min, Max time.Duration
	// Statuses of the individual seed runs (feasibility can vary).
	Statuses []core.Status
	// Runs preserves the individual seed measurements, in seed order,
	// for machine-readable reports.
	Runs []Result
}

// Feasible reports whether all seed runs found a placement.
func (p Point) Feasible() bool {
	for _, s := range p.Statuses {
		if s == core.StatusInfeasible || s == core.StatusLimit {
			return false
		}
	}
	return true
}

// sweepRules measures runtime across rule counts for fixed capacity.
// The (ruleCount, seed) grid fans out across base.Parallel goroutines;
// aggregation is by grid index, so the output is order-independent.
func sweepRules(base Config, ruleCounts []int, capacity, seeds int) ([]Point, error) {
	var cfgs []Config
	for _, r := range ruleCounts {
		for s := 0; s < seeds; s++ {
			cfg := base
			cfg.Rules = r
			cfg.Capacity = capacity
			cfg.Seed = base.Seed + int64(s)*101
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := runJobs(cfgs, base.Parallel, Run)
	if err != nil {
		return nil, err
	}
	var out []Point
	for i, r := range ruleCounts {
		out = append(out, aggregate(r, capacity, results[i*seeds:(i+1)*seeds]))
	}
	return out, nil
}

// Experiment1 reproduces Figures 7–9: runtime vs rule count for two
// capacities at a fixed topology and path count. The full (capacity,
// ruleCount, seed) grid is solved with at most base.Parallel instances
// in flight.
func Experiment1(base Config, ruleCounts []int, capacities []int, seeds int) (map[int][]Point, error) {
	base = base.withDefaults()
	var cfgs []Config
	for _, c := range capacities {
		for _, r := range ruleCounts {
			for s := 0; s < seeds; s++ {
				cfg := base
				cfg.Rules = r
				cfg.Capacity = c
				cfg.Seed = base.Seed + int64(s)*101
				cfgs = append(cfgs, cfg)
			}
		}
	}
	results, err := runJobs(cfgs, base.Parallel, Run)
	if err != nil {
		return nil, err
	}
	out := make(map[int][]Point, len(capacities))
	i := 0
	for _, c := range capacities {
		var pts []Point
		for _, r := range ruleCounts {
			pts = append(pts, aggregate(r, c, results[i:i+seeds]))
			i += seeds
		}
		out[c] = pts
	}
	return out, nil
}

// Experiment2 reproduces Figure 10: runtime vs path count for two
// capacities at fixed rules, fanning the (capacity, paths) grid out
// across base.Parallel goroutines.
func Experiment2(base Config, pathCounts []int, capacities []int) (map[int][]Point, error) {
	base = base.withDefaults()
	var cfgs []Config
	for _, c := range capacities {
		for _, p := range pathCounts {
			cfg := base
			cfg.Capacity = c
			// Total paths = Ingresses * PathsPerIngress; sweep per-ingress.
			cfg.PathsPerIngress = p / cfg.Ingresses
			if cfg.PathsPerIngress < 1 {
				cfg.PathsPerIngress = 1
			}
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := runJobs(cfgs, base.Parallel, Run)
	if err != nil {
		return nil, err
	}
	out := make(map[int][]Point, len(capacities))
	i := 0
	for _, c := range capacities {
		var pts []Point
		for _, p := range pathCounts {
			pts = append(pts, aggregate(p, c, results[i:i+1]))
			i++
		}
		out[c] = pts
	}
	return out, nil
}

// Table2Cell is one cell of Table II: total rules and duplication
// overhead, or infeasible.
type Table2Cell struct {
	MergeableRules int
	Capacity       int
	Merging        bool
	Infeasible     bool
	// Proven marks cells whose value the solver proved optimal (an
	// unproven cell is a time-limited incumbent, rendered with "*").
	Proven     bool
	TotalRules int
	// OverheadPct is 100*(B-A)/A where A is the no-duplication rule
	// count (every placed rule exactly once) and B the installed count.
	OverheadPct float64
	// BestBound and GapPct qualify unproven cells: how far the reported
	// incumbent could still be from optimal. GapPct is -1 when no bound
	// is available (e.g. infeasible cells), 0 for proven ones.
	BestBound float64
	GapPct    float64
}

// Experiment3 reproduces Table II: capacity vs duplication overhead with
// and without rule merging, sweeping the number of shared blacklist
// rules. The (mergeable, capacity, merging) grid fans out across
// base.Parallel goroutines.
func Experiment3(base Config, mergeCounts []int, capacities []int) ([]Table2Cell, error) {
	base = base.withDefaults()
	var cfgs []Config
	for _, mr := range mergeCounts {
		for _, c := range capacities {
			for _, merging := range []bool{false, true} {
				cfg := base
				cfg.Mergeable = mr
				cfg.Capacity = c
				cfg.Opts.Merging = merging
				cfgs = append(cfgs, cfg)
			}
		}
	}
	return runJobs(cfgs, base.Parallel, runCell)
}

// runCell solves one Table II cell.
func runCell(cfg Config) (Table2Cell, error) {
	prob, err := Build(cfg)
	if err != nil {
		return Table2Cell{}, err
	}
	pl, err := core.Place(prob, cfg.Opts)
	if err != nil {
		return Table2Cell{}, err
	}
	cell := Table2Cell{MergeableRules: cfg.Mergeable, Capacity: cfg.Capacity, Merging: cfg.Opts.Merging, GapPct: -1}
	if pl.Status != core.StatusOptimal && pl.Status != core.StatusFeasible {
		cell.Infeasible = true
	} else {
		cell.Proven = pl.Status == core.StatusOptimal
		cell.TotalRules = pl.TotalRules
		if pl.Stats.Gap >= 0 {
			cell.BestBound = pl.Stats.BestBound
			cell.GapPct = 100 * pl.Stats.Gap
		}
		a := noDuplicationCount(pl)
		if a > 0 {
			cell.OverheadPct = 100 * float64(pl.TotalRules-a) / float64(a)
		}
	}
	return cell, nil
}

// noDuplicationCount is A in the paper's Table II: the number of rules
// if every placed rule appeared exactly once in the network.
func noDuplicationCount(pl *core.Placement) int {
	a := 0
	for pi := range pl.Assign {
		for ri := range pl.Assign[pi] {
			if len(pl.Assign[pi][ri]) > 0 {
				a++
			}
		}
	}
	return a
}

// Experiment4 reproduces Figure 11: runtime vs switch capacity at fixed
// topology, rules, and paths. The (capacity, seed) grid fans out across
// base.Parallel goroutines.
func Experiment4(base Config, capacities []int, seeds int) ([]Point, error) {
	base = base.withDefaults()
	var cfgs []Config
	for _, c := range capacities {
		for s := 0; s < seeds; s++ {
			cfg := base
			cfg.Capacity = c
			cfg.Seed = base.Seed + int64(s)*101
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := runJobs(cfgs, base.Parallel, Run)
	if err != nil {
		return nil, err
	}
	var out []Point
	for i, c := range capacities {
		out = append(out, aggregate(c, c, results[i*seeds:(i+1)*seeds]))
	}
	return out, nil
}

// Exp5Result holds the incremental-deployment measurements of §V.
type Exp5Result struct {
	// BaseTime is the from-scratch solve establishing spare capacity.
	BaseTime  time.Duration
	BaseRules int
	// Install[i] is the time to add Installs[i] new single-path
	// policies into spare capacity, with feasibility.
	Installs       []int
	InstallTimes   []time.Duration
	InstallOK      []bool
	Reroutes       []int
	RerouteTimes   []time.Duration
	RerouteOK      []bool
	FromScratchCmp time.Duration
}

// Experiment5 reproduces the incremental study: place a base workload,
// extract spare capacity, then (a) install batches of new single-path
// policies and (b) re-place rerouted policies, measuring latency.
func Experiment5(base Config, installs []int, reroutes []int) (*Exp5Result, error) {
	base = base.withDefaults()
	prob, err := Build(base)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	pl, err := core.Place(prob, base.Opts)
	if err != nil {
		return nil, err
	}
	if pl.Status != core.StatusOptimal && pl.Status != core.StatusFeasible {
		return nil, fmt.Errorf("bench: base workload %v; loosen capacity", pl.Status)
	}
	res := &Exp5Result{BaseTime: time.Since(start), BaseRules: pl.TotalRules, Installs: installs, Reroutes: reroutes}

	egress := prob.Network.EgressPorts()
	ingressSwitches := prob.Network.IngressPorts()

	for _, n := range installs {
		// n new policies, each with a fresh ingress port and one path.
		topo2 := prob.Network.Clone()
		rt2 := routing.NewRouting()
		var pols []*policy.Policy
		nextPort := topology.PortID(10_000)
		for i := 0; i < n; i++ {
			at := ingressSwitches[i%len(ingressSwitches)]
			port := nextPort
			nextPort++
			if err := topo2.AddPort(topology.ExternalPort{ID: port, Switch: at.Switch, Ingress: true}); err != nil {
				return nil, err
			}
			// Pick an egress on a different switch so the install path
			// spans several hops (a one-switch path would need the whole
			// policy to fit on an already-loaded edge switch).
			out := egress[i%len(egress)]
			for j := 1; out.Switch == at.Switch && j < len(egress); j++ {
				out = egress[(i+j)%len(egress)]
			}
			sw, err := routing.ShortestPath(topo2, at.Switch, out.Switch)
			if err != nil {
				return nil, err
			}
			rt2.Add(routing.Path{Ingress: port, Egress: out.ID, Switches: sw})
			pols = append(pols, policy.Generate(int(port), policy.GenConfig{NumRules: base.Rules, Seed: base.Seed + int64(i) + 7}))
		}
		prob2 := &core.Problem{Network: topo2, Routing: rt2, Policies: pols}
		start := time.Now()
		inc, err := core.IncrementalAdd(prob2, pl, pols, rt2, base.Opts)
		if err != nil {
			return nil, err
		}
		res.InstallTimes = append(res.InstallTimes, time.Since(start))
		res.InstallOK = append(res.InstallOK, inc.Status == core.StatusOptimal || inc.Status == core.StatusFeasible)
	}

	for _, n := range reroutes {
		start := time.Now()
		ok := true
		for i := 0; i < n; i++ {
			pol := pl.Policies[i%len(pl.Policies)]
			in := topology.PortID(pol.Ingress)
			old := prob.Routing.Sets[in]
			// Flip the route set: drop the last path (or re-add it).
			newSet := &routing.PathSet{Ingress: in}
			if len(old.Paths) > 1 {
				newSet.Paths = old.Paths[:len(old.Paths)-1]
			} else {
				newSet.Paths = old.Paths
			}
			re, err := core.IncrementalReroute(prob, pl, pol.Ingress, newSet, base.Opts)
			if err != nil {
				return nil, err
			}
			if re.Status != core.StatusOptimal && re.Status != core.StatusFeasible {
				ok = false
			}
		}
		res.RerouteTimes = append(res.RerouteTimes, time.Since(start))
		res.RerouteOK = append(res.RerouteOK, ok)
	}

	// From-scratch comparison for context.
	start = time.Now()
	if _, err := core.Place(prob, base.Opts); err != nil {
		return nil, err
	}
	res.FromScratchCmp = time.Since(start)
	return res, nil
}

// BaselineResult compares the exact optimizer against the greedy
// heuristic and p-x-r replication (§V's closing comparison).
type BaselineResult struct {
	OptimalRules int
	GreedyRules  int
	GreedyOK     bool
	ReplicaRules int
	PXR          int
	OptimalTime  time.Duration
	GreedyTime   time.Duration
}

// Baselines runs the three strategies on the same workload.
func Baselines(base Config) (*BaselineResult, error) {
	base = base.withDefaults()
	prob, err := Build(base)
	if err != nil {
		return nil, err
	}
	out := &BaselineResult{PXR: core.PXRBound(prob)}

	start := time.Now()
	opt, err := core.Place(prob, base.Opts)
	if err != nil {
		return nil, err
	}
	out.OptimalTime = time.Since(start)
	if opt.Status == core.StatusOptimal || opt.Status == core.StatusFeasible {
		out.OptimalRules = opt.TotalRules
	}

	start = time.Now()
	gr, err := core.GreedyPlace(prob, base.Opts)
	if err != nil {
		return nil, err
	}
	out.GreedyTime = time.Since(start)
	out.GreedyOK = gr.Status == core.StatusFeasible
	if out.GreedyOK {
		out.GreedyRules = gr.TotalRules
	}

	repl, err := core.ReplicateEverywhere(prob, base.Opts)
	if err != nil {
		return nil, err
	}
	out.ReplicaRules = repl.TotalRules
	return out, nil
}
