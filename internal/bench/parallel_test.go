package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

// TestRunJobsMatchesSequential asserts the fan-out contract: a parallel
// sweep returns results at the same indices, and aggregation over them
// is identical to a sequential run (modulo wall-clock fields).
func TestRunJobsMatchesSequential(t *testing.T) {
	var cfgs []Config
	for i := 0; i < 6; i++ {
		cfg := tiny()
		cfg.Seed = int64(i)
		cfgs = append(cfgs, cfg)
	}
	strip := func(rs []Result) []Result {
		out := append([]Result(nil), rs...)
		for i := range out {
			out[i].Time = 0
		}
		return out
	}
	seq, err := runJobs(cfgs, 1, Run)
	if err != nil {
		t.Fatal(err)
	}
	par, err := runJobs(cfgs, 4, Run)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(strip(seq), strip(par)) {
		t.Errorf("parallel results differ from sequential:\n%+v\nvs\n%+v", strip(seq), strip(par))
	}
}

// TestRunJobsFirstErrorByIndex pins the deterministic error contract:
// with several failing configs, the reported error is the one at the
// lowest index, regardless of completion order.
func TestRunJobsFirstErrorByIndex(t *testing.T) {
	cfgs := make([]Config, 8)
	f := func(cfg Config) (int, error) {
		if cfg.Seed%2 == 1 {
			return 0, fmt.Errorf("boom %d", cfg.Seed)
		}
		return int(cfg.Seed), nil
	}
	for i := range cfgs {
		cfgs[i].Seed = int64(i)
	}
	if _, err := runJobs(cfgs, 4, f); err == nil || err.Error() != "boom 1" {
		t.Errorf("err = %v, want boom 1 (first failing index)", err)
	}
}

// TestBuildReport exercises the machine-readable perf report end to end
// on a tiny sweep: schema, series layout, per-run counters, and the
// speedup summary must all be populated and JSON-round-trippable.
func TestBuildReport(t *testing.T) {
	base := tiny()
	base.Parallel = 2
	rep, err := BuildReport(base, []int{4, 6}, []int{50}, 2, []int{1, 2}, "small")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Config.Scale != "small" {
		t.Errorf("config scale = %q, want small", rep.Config.Scale)
	}
	if rep.NumCPU <= 0 || rep.GOMAXPROCS <= 0 || rep.GoVersion == "" {
		t.Errorf("host fields not populated: %+v", rep)
	}
	// 1 capacity x 2 worker counts.
	if len(rep.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(rep.Series))
	}
	for _, sr := range rep.Series {
		if len(sr.Points) != 2 {
			t.Fatalf("points = %d, want 2", len(sr.Points))
		}
		for _, p := range sr.Points {
			if len(p.Runs) != 2 {
				t.Fatalf("runs = %d, want 2 seeds", len(p.Runs))
			}
			for _, r := range p.Runs {
				if r.Status == "" || r.Nodes <= 0 || r.SimplexIters <= 0 || r.Workers != sr.Workers {
					t.Errorf("run not populated for workers=%d: %+v", sr.Workers, r)
				}
			}
		}
	}
	if len(rep.Speedups) != 1 || rep.Speedups[0].Workers != 2 || rep.Speedups[0].BaselineWorkers != 1 {
		t.Errorf("speedups = %+v", rep.Speedups)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Schema != rep.Schema || len(back.Series) != len(rep.Series) {
		t.Errorf("round-trip mismatch")
	}
}
