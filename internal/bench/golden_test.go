package bench

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// unmarshalStrict decodes with unknown fields rejected, so the round
// trip also proves the golden file has no stray keys.
func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenReport is a fully-populated Report with fixed values: every
// field of every record type appears, so the golden file pins the
// complete rulefit-bench/v1 wire format. Cross-PR comparison tools
// parse these files; a silently renamed JSON tag breaks them without
// failing any solver test, which is exactly what this test exists to
// catch. If the diff is intentional, bump ReportSchema (incompatible
// change) or rerun with -update (compatible addition) per the schema
// comment in report.go.
func goldenReport() *Report {
	return &Report{
		Schema:     ReportSchema,
		Timestamp:  "2026-01-02T03:04:05Z",
		GoVersion:  "go1.22.0",
		GOOS:       "linux",
		GOARCH:     "amd64",
		NumCPU:     8,
		GOMAXPROCS: 8,
		Config: ReportConfig{
			K:               4,
			HostsPerEdge:    1,
			Ingresses:       4,
			PathsPerIngress: 2,
			RuleCounts:      []int{40, 80},
			Capacities:      []int{60, 100},
			Seeds:           2,
			Merging:         true,
			TimeLimitSec:    30,
			Parallel:        4,
			WorkerCounts:    []int{1, 4},
			Scale:           "small",
		},
		Series: []SeriesRecord{{
			Workers:  1,
			Capacity: 60,
			Points: []PointRecord{{
				Rules:  40,
				MeanMS: 12.5,
				MinMS:  10,
				MaxMS:  15,
				Runs: []RunRecord{{
					Seed:              1,
					Status:            "OPTIMAL",
					WallMS:            10,
					TotalRules:        37,
					Variables:         120,
					Constraints:       260,
					Nodes:             9,
					SimplexIters:      431,
					Workers:           1,
					LURefactors:       3,
					Branched:          4,
					PrunedBound:       2,
					PrunedInfeasible:  1,
					IntegralLeaves:    2,
					LostSubtrees:      0,
					PrunedStale:       1,
					Incumbents:        2,
					CutsAdded:         3,
					CutRoundsRoot:     2,
					StrongBranchEvals: 12,
					WarmStartReuses:   7,
					StopReason:        "none",
					BestBound:         37,
					Gap:               0,
				}, {
					Seed:       102,
					Status:     "LIMIT",
					WallMS:     15,
					TotalRules: 41,
					Nodes:      64,
					Workers:    1,
					Branched:   32, PrunedBound: 20, PrunedInfeasible: 6,
					IntegralLeaves: 5, LostSubtrees: 1,
					Incumbents: 1,
					StopReason: "deadline",
					BestBound:  39.5,
					Gap:        0.0379746835443038,
				}},
			}},
		}},
		Speedups: []SpeedupRecord{{
			Workers:         4,
			BaselineWorkers: 1,
			TotalMS:         80,
			BaselineMS:      200,
			Speedup:         2.5,
		}},
	}
}

// TestReportGolden locks the serialized form of the bench report — the
// schema string, every JSON field name, and the encoder settings —
// against testdata/report_golden.json.
func TestReportGolden(t *testing.T) {
	if ReportSchema != "rulefit-bench/v1" {
		t.Fatalf("ReportSchema = %q; committed BENCH_*.json files say rulefit-bench/v1", ReportSchema)
	}
	var buf bytes.Buffer
	if err := goldenReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "report_golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report serialization drifted from %s.\n"+
			"If this is an intentional compatible addition, rerun with -update; "+
			"if a field was renamed or removed, bump ReportSchema instead.\n"+
			"got:\n%s\nwant:\n%s", path, buf.Bytes(), want)
	}
}

// TestReportGoldenRoundTrip: the golden file parses back into a Report
// equal in its load-bearing fields, so readers of committed BENCH files
// can rely on the struct definitions in this package.
func TestReportGoldenRoundTrip(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "report_golden.json"))
	if err != nil {
		t.Skip("golden file missing; TestReportGolden reports the failure")
	}
	var rep Report
	if err := unmarshalStrict(data, &rep); err != nil {
		t.Fatalf("golden file does not parse strictly: %v", err)
	}
	want := goldenReport()
	if rep.Schema != want.Schema || rep.Timestamp != want.Timestamp {
		t.Errorf("header drift: %q %q", rep.Schema, rep.Timestamp)
	}
	if len(rep.Series) != 1 || len(rep.Series[0].Points) != 1 || len(rep.Series[0].Points[0].Runs) != 2 {
		t.Fatalf("series shape drifted: %+v", rep.Series)
	}
	got := rep.Series[0].Points[0].Runs[0]
	exp := want.Series[0].Points[0].Runs[0]
	if got != exp {
		t.Errorf("run record drifted:\ngot  %+v\nwant %+v", got, exp)
	}
	if len(rep.Speedups) != 1 || rep.Speedups[0] != want.Speedups[0] {
		t.Errorf("speedup record drifted: %+v", rep.Speedups)
	}
}
