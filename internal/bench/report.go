package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"sort"
	"time"
)

// ReportSchema identifies the BENCH_*.json layout; bump it on any
// incompatible field change so cross-PR comparison tools can tell.
const ReportSchema = "rulefit-bench/v1"

// Report is the machine-readable record of one benchmark run, written
// by scripts/bench.sh as BENCH_<stamp>.json and committed so the perf
// trajectory is tracked across PRs. Wall-clock numbers are only
// comparable across runs on the same hardware; the host fields exist so
// a comparison can check that first.
type Report struct {
	Schema    string `json:"schema"`
	Timestamp string `json:"timestamp"` // RFC 3339, UTC
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// NumCPU and GOMAXPROCS describe the host the numbers were taken
	// on; solver speedups cannot exceed either.
	NumCPU     int          `json:"num_cpu"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Config     ReportConfig `json:"config"`
	// Series holds one sweep per (workers, capacity) pair.
	Series []SeriesRecord `json:"series"`
	// Speedups compares total sweep wall time per worker count against
	// the first (baseline) worker count.
	Speedups []SpeedupRecord `json:"speedups,omitempty"`
}

// ReportConfig records the workload parameters of the run.
type ReportConfig struct {
	K               int     `json:"k"`
	HostsPerEdge    int     `json:"hosts_per_edge"`
	Ingresses       int     `json:"ingresses"`
	PathsPerIngress int     `json:"paths_per_ingress"`
	RuleCounts      []int   `json:"rule_counts"`
	Capacities      []int   `json:"capacities"`
	Seeds           int     `json:"seeds"`
	Merging         bool    `json:"merging"`
	TimeLimitSec    float64 `json:"time_limit_sec"`
	Parallel        int     `json:"parallel"`
	WorkerCounts    []int   `json:"worker_counts"`
	// Scale is the cmd/experiments preset or numeric factor the sweep ran
	// at ("" for reports written before the field existed). Comparisons
	// across different scales are meaningless; diff tools warn on
	// mismatch.
	Scale string `json:"scale,omitempty"`
}

// SeriesRecord is one runtime-vs-rules sweep at a fixed capacity and
// solver worker count.
type SeriesRecord struct {
	Workers  int           `json:"workers"`
	Capacity int           `json:"capacity"`
	Points   []PointRecord `json:"points"`
}

// PointRecord is one swept parameter value with per-seed runs.
type PointRecord struct {
	Rules  int         `json:"rules"`
	MeanMS float64     `json:"mean_ms"`
	MinMS  float64     `json:"min_ms"`
	MaxMS  float64     `json:"max_ms"`
	Runs   []RunRecord `json:"runs"`
}

// RunRecord is one measured solve. The prune/gap breakdown fields were
// added after the schema's introduction; additions are backward
// compatible, so the schema string is unchanged.
type RunRecord struct {
	Seed         int64   `json:"seed"`
	Status       string  `json:"status"`
	WallMS       float64 `json:"wall_ms"`
	TotalRules   int     `json:"total_rules"`
	Variables    int     `json:"variables"`
	Constraints  int     `json:"constraints"`
	Nodes        int     `json:"nodes"`
	SimplexIters int     `json:"simplex_iters"`
	Workers      int     `json:"workers"`
	// Node-outcome breakdown: branched + pruned_bound + pruned_infeasible
	// + integral_leaves + lost_subtrees == nodes.
	LURefactors      int `json:"lu_refactors"`
	Branched         int `json:"branched"`
	PrunedBound      int `json:"pruned_bound"`
	PrunedInfeasible int `json:"pruned_infeasible"`
	IntegralLeaves   int `json:"integral_leaves"`
	LostSubtrees     int `json:"lost_subtrees"`
	PrunedStale      int `json:"pruned_stale"`
	Incumbents       int `json:"incumbents"`
	// Solver-speed mechanisms (additive; absent in older reports):
	// root cover cuts, reliability strong-branch trials, and
	// warm-started node LPs.
	CutsAdded         int    `json:"cuts_added"`
	CutRoundsRoot     int    `json:"cut_rounds_root"`
	StrongBranchEvals int    `json:"strong_branch_evals"`
	WarmStartReuses   int    `json:"warm_start_reuses"`
	StopReason        string `json:"stop_reason"`
	// Gap is 0 for proven optima, positive for anytime incumbents, and
	// -1 when undefined; best_bound is meaningful only when gap >= 0.
	BestBound float64 `json:"best_bound"`
	Gap       float64 `json:"gap"`
	// Search-profile fields (additive): the node that produced the
	// final incumbent (0 = none) and the root-relaxation gap the tree
	// search closed (-1 undefined).
	LastIncumbentAtNode int     `json:"last_incumbent_at_node"`
	RootGap             float64 `json:"root_gap"`
}

// SpeedupRecord compares one worker count's total sweep wall time
// against the baseline worker count of the same report.
type SpeedupRecord struct {
	Workers         int     `json:"workers"`
	BaselineWorkers int     `json:"baseline_workers"`
	TotalMS         float64 `json:"total_ms"`
	BaselineMS      float64 `json:"baseline_ms"`
	Speedup         float64 `json:"speedup"`
}

// BuildReport runs the Experiment 1 sweep once per worker count and
// assembles the machine-readable report. The placements themselves are
// identical across worker counts (the solver is deterministic in
// Workers); only the wall-clock columns differ. scale is the
// cmd/experiments preset or factor the sweep ran at, recorded in the
// config block so comparison tools can refuse cross-scale diffs.
func BuildReport(base Config, ruleCounts, capacities []int, seeds int, workerCounts []int, scale string) (*Report, error) {
	base = base.withDefaults()
	rep := &Report{
		Schema: ReportSchema,
		//lint:detsource run metadata by design; diffs strip the timestamp
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Config: ReportConfig{
			K:               base.K,
			HostsPerEdge:    base.HostsPerEdge,
			Ingresses:       base.Ingresses,
			PathsPerIngress: base.PathsPerIngress,
			RuleCounts:      ruleCounts,
			Capacities:      capacities,
			Seeds:           seeds,
			Merging:         base.Opts.Merging,
			TimeLimitSec:    base.Opts.TimeLimit.Seconds(),
			Parallel:        base.Parallel,
			WorkerCounts:    workerCounts,
			Scale:           scale,
		},
	}
	totals := make(map[int]float64, len(workerCounts))
	for _, w := range workerCounts {
		cfg := base
		cfg.Opts.Workers = w
		series, err := Experiment1(cfg, ruleCounts, capacities, seeds)
		if err != nil {
			return nil, err
		}
		caps := make([]int, 0, len(series))
		for c := range series {
			caps = append(caps, c)
		}
		sort.Ints(caps)
		for _, c := range caps {
			sr := SeriesRecord{Workers: w, Capacity: c}
			for _, p := range series[c] {
				pr := PointRecord{
					Rules:  p.X,
					MeanMS: ms(p.Mean),
					MinMS:  ms(p.Min),
					MaxMS:  ms(p.Max),
				}
				for s, r := range p.Runs {
					pr.Runs = append(pr.Runs, RunRecord{
						Seed:                base.Seed + int64(s)*101,
						Status:              r.Status.String(),
						WallMS:              ms(r.Time),
						TotalRules:          r.TotalRules,
						Variables:           r.Variables,
						Constraints:         r.Constraints,
						Nodes:               r.Nodes,
						SimplexIters:        r.SimplexIters,
						Workers:             r.Workers,
						LURefactors:         r.LURefactors,
						Branched:            r.Branched,
						PrunedBound:         r.PrunedBound,
						PrunedInfeasible:    r.PrunedInfeasible,
						IntegralLeaves:      r.IntegralLeaves,
						LostSubtrees:        r.LostSubtrees,
						PrunedStale:         r.PrunedStale,
						Incumbents:          r.Incumbents,
						CutsAdded:           r.CutsAdded,
						CutRoundsRoot:       r.CutRoundsRoot,
						StrongBranchEvals:   r.StrongBranchEvals,
						WarmStartReuses:     r.WarmStartReuses,
						StopReason:          r.StopReason,
						BestBound:           r.BestBound,
						Gap:                 r.Gap,
						LastIncumbentAtNode: r.LastIncumbentAtNode,
						RootGap:             r.RootGap,
					})
					totals[w] += ms(r.Time)
				}
				sr.Points = append(sr.Points, pr)
			}
			rep.Series = append(rep.Series, sr)
		}
	}
	if len(workerCounts) > 1 {
		baseW := workerCounts[0]
		for _, w := range workerCounts[1:] {
			sp := SpeedupRecord{
				Workers:         w,
				BaselineWorkers: baseW,
				TotalMS:         totals[w],
				BaselineMS:      totals[baseW],
			}
			if totals[w] > 0 {
				sp.Speedup = totals[baseW] / totals[w]
			}
			rep.Speedups = append(rep.Speedups, sp)
		}
	}
	return rep, nil
}

// WriteJSON writes the report, indented for diff-friendly commits.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
