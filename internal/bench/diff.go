package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file implements the perf-regression comparator behind
// cmd/benchdiff: it aligns two rulefit-bench/v1 reports run-by-run and
// classifies wall-clock movement against a noise threshold. Because the
// solver is deterministic for a fixed (workers, capacity, rules, seed)
// key, node and simplex-iteration counts must match exactly between
// reports built from the same code; a change there is search drift
// (an algorithmic change), not timing noise, and is flagged separately
// so a reviewer can tell "machine was busy" from "the search changed".

// DiffOptions tunes the comparator's noise model.
type DiffOptions struct {
	// WallThreshold is the relative wall-clock slowdown tolerated before
	// a run counts as regressed (and symmetrically, the speedup required
	// to count as improved). Default 0.25 (25%).
	WallThreshold float64
	// MinWallMS is the absolute wall-clock change (ms) a run must move
	// before it can count as regressed or improved; sub-millisecond
	// solves jitter far beyond any relative threshold. Default 5 ms.
	MinWallMS float64
}

// withDefaults fills in unset options.
func (o DiffOptions) withDefaults() DiffOptions {
	if o.WallThreshold <= 0 {
		o.WallThreshold = 0.25
	}
	if o.MinWallMS <= 0 {
		o.MinWallMS = 5
	}
	return o
}

// Verdict classifies one aligned run pair.
type Verdict string

// Verdicts, from best to worst.
const (
	VerdictImproved  Verdict = "improved"
	VerdictUnchanged Verdict = "unchanged"
	VerdictRegressed Verdict = "regressed"
	VerdictAdded     Verdict = "added"
	VerdictRemoved   Verdict = "removed"
)

// RunDiff is one aligned run pair (or an unmatched run).
type RunDiff struct {
	// Key identifies the run: workers/capacity/rules/seed.
	Key     string  `json:"key"`
	Verdict Verdict `json:"verdict"`
	// OldWallMS/NewWallMS are the measured wall clocks; the absent side
	// is 0 for added/removed runs.
	OldWallMS float64 `json:"old_wall_ms"`
	NewWallMS float64 `json:"new_wall_ms"`
	// Ratio is NewWallMS/OldWallMS (0 when not comparable).
	Ratio float64 `json:"ratio,omitempty"`
	// SearchDrift reports that nodes or simplex iterations differ: the
	// search itself changed, so the wall delta is not pure noise.
	SearchDrift bool `json:"search_drift,omitempty"`
	OldNodes    int  `json:"old_nodes,omitempty"`
	NewNodes    int  `json:"new_nodes,omitempty"`
	OldIters    int  `json:"old_iters,omitempty"`
	NewIters    int  `json:"new_iters,omitempty"`
	// StatusChanged reports a solve outcome change (e.g. optimal →
	// limit), which always accompanies a verdict of regressed or
	// improved regardless of wall clock.
	OldStatus string `json:"old_status,omitempty"`
	NewStatus string `json:"new_status,omitempty"`
}

// SeriesDiff aggregates the aligned runs of one (workers, capacity)
// series: summed wall clock, node, and simplex-iteration totals on both
// sides. Because the solver is deterministic, any node/iteration
// movement here is algorithmic search drift for the whole series, which
// reads more easily than per-run noise when many runs drift together.
type SeriesDiff struct {
	// Key identifies the series: workers/capacity.
	Key       string  `json:"key"`
	Runs      int     `json:"runs"`
	OldWallMS float64 `json:"old_wall_ms"`
	NewWallMS float64 `json:"new_wall_ms"`
	OldNodes  int     `json:"old_nodes"`
	NewNodes  int     `json:"new_nodes"`
	OldIters  int     `json:"old_iters"`
	NewIters  int     `json:"new_iters"`
	// Geomean is the geometric-mean per-run speedup (old/new wall) over
	// the series' aligned runs, 0 when undefined.
	Geomean float64 `json:"geomean,omitempty"`
}

// Drifted reports whether the series' summed search effort moved.
func (s SeriesDiff) Drifted() bool {
	return s.OldNodes != s.NewNodes || s.OldIters != s.NewIters
}

// Diff is the comparison of two reports.
type Diff struct {
	OldTimestamp string      `json:"old_timestamp"`
	NewTimestamp string      `json:"new_timestamp"`
	Options      DiffOptions `json:"options"`
	// HostMismatch warns that the two reports were taken on different
	// hosts or Go versions, making wall clocks incomparable.
	HostMismatch bool `json:"host_mismatch,omitempty"`
	// ScaleMismatch warns that the reports were swept at different
	// cmd/experiments scales; aligned-run keys may match by accident, but
	// the workloads differ. Only set when both reports record a scale —
	// reports from before the field existed carry "" and get a softer
	// note instead.
	ScaleMismatch bool      `json:"scale_mismatch,omitempty"`
	OldScale      string    `json:"old_scale,omitempty"`
	NewScale      string    `json:"new_scale,omitempty"`
	Runs          []RunDiff `json:"runs"`
	// Series aggregates aligned runs per (workers, capacity) series.
	Series []SeriesDiff `json:"series,omitempty"`
	// Totals by verdict.
	Improved  int `json:"improved"`
	Unchanged int `json:"unchanged"`
	Regressed int `json:"regressed"`
	Added     int `json:"added"`
	Removed   int `json:"removed"`
	// Drifted counts runs with SearchDrift set.
	Drifted int `json:"drifted"`
	// OldTotalMS/NewTotalMS sum wall clocks over aligned runs only.
	OldTotalMS float64 `json:"old_total_ms"`
	NewTotalMS float64 `json:"new_total_ms"`
	// GeomeanSpeedup is the geometric mean of old/new wall ratios over
	// all aligned runs (> 1 means the new report is faster); 0 when no
	// aligned run has comparable wall clocks. Unlike the total, it is not
	// dominated by the slowest instances.
	GeomeanSpeedup float64 `json:"geomean_speedup,omitempty"`
}

// HasRegressions reports whether any aligned run regressed.
func (d *Diff) HasRegressions() bool { return d.Regressed > 0 }

// runKey identifies a run across reports.
func runKey(workers, capacity, rules int, seed int64) string {
	return fmt.Sprintf("w%d/c%d/r%d/s%d", workers, capacity, rules, seed)
}

// flatten indexes a report's runs by key.
func flatten(r *Report) map[string]RunRecord {
	out := make(map[string]RunRecord)
	for _, sr := range r.Series {
		for _, p := range sr.Points {
			for _, run := range p.Runs {
				out[runKey(sr.Workers, sr.Capacity, p.Rules, run.Seed)] = run
			}
		}
	}
	return out
}

// CompareReports aligns two reports run-by-run and classifies each pair.
func CompareReports(old, new *Report, opts DiffOptions) *Diff {
	opts = opts.withDefaults()
	d := &Diff{
		OldTimestamp: old.Timestamp,
		NewTimestamp: new.Timestamp,
		Options:      opts,
		HostMismatch: old.GOOS != new.GOOS || old.GOARCH != new.GOARCH ||
			old.NumCPU != new.NumCPU || old.GoVersion != new.GoVersion,
		ScaleMismatch: old.Config.Scale != new.Config.Scale &&
			old.Config.Scale != "" && new.Config.Scale != "",
		OldScale: old.Config.Scale,
		NewScale: new.Config.Scale,
	}
	oldRuns, newRuns := flatten(old), flatten(new)
	keys := make([]string, 0, len(oldRuns)+len(newRuns))
	for k := range oldRuns {
		keys = append(keys, k)
	}
	for k := range newRuns {
		if _, ok := oldRuns[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	type seriesAcc struct {
		SeriesDiff
		logSum float64
		ratios int
	}
	series := make(map[string]*seriesAcc)
	var seriesKeys []string
	logSum, ratios := 0.0, 0
	for _, k := range keys {
		o, haveOld := oldRuns[k]
		n, haveNew := newRuns[k]
		rd := RunDiff{Key: k, OldWallMS: o.WallMS, NewWallMS: n.WallMS}
		switch {
		case !haveOld:
			rd.Verdict = VerdictAdded
			rd.NewStatus = n.Status
			d.Added++
		case !haveNew:
			rd.Verdict = VerdictRemoved
			rd.OldStatus = o.Status
			d.Removed++
		default:
			rd.Verdict = classify(o, n, opts)
			if o.Nodes != n.Nodes || o.SimplexIters != n.SimplexIters {
				rd.SearchDrift = true
				rd.OldNodes, rd.NewNodes = o.Nodes, n.Nodes
				rd.OldIters, rd.NewIters = o.SimplexIters, n.SimplexIters
				d.Drifted++
			}
			if o.Status != n.Status {
				rd.OldStatus, rd.NewStatus = o.Status, n.Status
			}
			if o.WallMS > 0 {
				rd.Ratio = n.WallMS / o.WallMS
			}
			d.OldTotalMS += o.WallMS
			d.NewTotalMS += n.WallMS
			sk := seriesKeyOf(k)
			sa := series[sk]
			if sa == nil {
				sa = &seriesAcc{SeriesDiff: SeriesDiff{Key: sk}}
				series[sk] = sa
				seriesKeys = append(seriesKeys, sk)
			}
			sa.Runs++
			sa.OldWallMS += o.WallMS
			sa.NewWallMS += n.WallMS
			sa.OldNodes += o.Nodes
			sa.NewNodes += n.Nodes
			sa.OldIters += o.SimplexIters
			sa.NewIters += n.SimplexIters
			if o.WallMS > 0 && n.WallMS > 0 {
				l := math.Log(o.WallMS / n.WallMS)
				sa.logSum += l
				sa.ratios++
				logSum += l
				ratios++
			}
			switch rd.Verdict {
			case VerdictImproved:
				d.Improved++
			case VerdictRegressed:
				d.Regressed++
			default:
				d.Unchanged++
			}
		}
		d.Runs = append(d.Runs, rd)
	}
	sort.Strings(seriesKeys)
	for _, sk := range seriesKeys {
		sa := series[sk]
		if sa.ratios > 0 {
			sa.Geomean = math.Exp(sa.logSum / float64(sa.ratios))
		}
		d.Series = append(d.Series, sa.SeriesDiff)
	}
	if ratios > 0 {
		d.GeomeanSpeedup = math.Exp(logSum / float64(ratios))
	}
	return d
}

// seriesKeyOf truncates a run key (w/c/r/s) to its series (w/c).
func seriesKeyOf(runKey string) string {
	parts := strings.SplitN(runKey, "/", 3)
	return parts[0] + "/" + parts[1]
}

// StatusRank orders solve outcomes from best to worst. Comparators
// over any report family (benchdiff over solver runs, loaddiff over
// served requests) treat a rank change as trumping the wall clock:
// losing optimality is a regression even when it got faster.
func StatusRank(s string) int {
	switch s {
	case "optimal":
		return 0
	case "feasible":
		return 1
	case "limit":
		return 2
	case "infeasible":
		return 3
	default:
		return 4
	}
}

// ClassifyWall applies the wall-clock noise model to one aligned
// measurement pair: a movement counts as regressed/improved only when
// it clears both the relative threshold and the absolute floor, so
// sub-millisecond jitter never flips a verdict.
func (o DiffOptions) ClassifyWall(oldMS, newMS float64) Verdict {
	o = o.withDefaults()
	delta := newMS - oldMS
	if delta > o.MinWallMS && newMS > oldMS*(1+o.WallThreshold) {
		return VerdictRegressed
	}
	if -delta > o.MinWallMS && oldMS > newMS*(1+o.WallThreshold) {
		return VerdictImproved
	}
	return VerdictUnchanged
}

// Classify is the full shared comparison: a solve-outcome rank change
// trumps the wall clock (infeasible-vs-infeasible stays a wall
// comparison); otherwise the noise model decides.
func (o DiffOptions) Classify(oldStatus, newStatus string, oldMS, newMS float64) Verdict {
	if or, nr := StatusRank(oldStatus), StatusRank(newStatus); or != nr {
		if nr > or {
			return VerdictRegressed
		}
		return VerdictImproved
	}
	return o.ClassifyWall(oldMS, newMS)
}

// classify applies the shared comparison to one aligned run pair.
func classify(o, n RunRecord, opts DiffOptions) Verdict {
	return opts.Classify(o.Status, n.Status, o.WallMS, n.WallMS)
}

// Render writes the human-readable comparison. The layout is stable and
// golden-tested; scripts may grep the "RESULT:" trailer.
func (d *Diff) Render(w io.Writer) error {
	fmt.Fprintf(w, "benchdiff: %s -> %s\n", d.OldTimestamp, d.NewTimestamp)
	fmt.Fprintf(w, "threshold: %.0f%% relative, %.1f ms absolute\n",
		d.Options.WallThreshold*100, d.Options.MinWallMS)
	if d.HostMismatch {
		fmt.Fprintf(w, "WARNING: host or Go version differs between reports; wall clocks are not comparable\n")
	}
	if d.ScaleMismatch {
		fmt.Fprintf(w, "WARNING: workload scale differs between reports (%q -> %q); aligned runs solve different instances\n",
			d.OldScale, d.NewScale)
	} else if (d.OldScale == "") != (d.NewScale == "") {
		fmt.Fprintf(w, "note: workload scale recorded on only one report (%q -> %q); scale comparison skipped\n",
			d.OldScale, d.NewScale)
	}
	for _, r := range d.Runs {
		switch r.Verdict {
		case VerdictAdded:
			fmt.Fprintf(w, "  added     %-24s %8.1f ms\n", r.Key, r.NewWallMS)
		case VerdictRemoved:
			fmt.Fprintf(w, "  removed   %-24s %8.1f ms\n", r.Key, r.OldWallMS)
		case VerdictUnchanged:
			// Quiet unless the search drifted.
			if r.SearchDrift {
				fmt.Fprintf(w, "  drift     %-24s %8.1f -> %8.1f ms  nodes %d -> %d, iters %d -> %d\n",
					r.Key, r.OldWallMS, r.NewWallMS, r.OldNodes, r.NewNodes, r.OldIters, r.NewIters)
			}
		default:
			line := fmt.Sprintf("  %-9s %-24s %8.1f -> %8.1f ms (%.2fx)",
				r.Verdict, r.Key, r.OldWallMS, r.NewWallMS, r.Ratio)
			if r.OldStatus != r.NewStatus {
				line += fmt.Sprintf("  status %s -> %s", r.OldStatus, r.NewStatus)
			}
			if r.SearchDrift {
				line += fmt.Sprintf("  nodes %d -> %d", r.OldNodes, r.NewNodes)
			}
			fmt.Fprintln(w, line)
		}
	}
	for _, s := range d.Series {
		line := fmt.Sprintf("series %-8s %9.1f -> %9.1f ms", s.Key, s.OldWallMS, s.NewWallMS)
		if s.Geomean > 0 {
			line += fmt.Sprintf(" (geomean %.2fx)", s.Geomean)
		}
		if s.Drifted() {
			line += fmt.Sprintf("  nodes %d -> %d, iters %d -> %d", s.OldNodes, s.NewNodes, s.OldIters, s.NewIters)
		}
		fmt.Fprintln(w, line)
	}
	fmt.Fprintf(w, "aligned total: %.1f -> %.1f ms\n", d.OldTotalMS, d.NewTotalMS)
	if d.GeomeanSpeedup > 0 {
		fmt.Fprintf(w, "geomean speedup: %.2fx\n", d.GeomeanSpeedup)
	}
	verdict := "PASS"
	if d.Regressed > 0 {
		verdict = "FAIL"
	}
	_, err := fmt.Fprintf(w, "RESULT: %s (%d improved, %d unchanged, %d regressed, %d added, %d removed, %d drifted)\n",
		verdict, d.Improved, d.Unchanged, d.Regressed, d.Added, d.Removed, d.Drifted)
	return err
}

// ReadReport loads and schema-checks one BENCH_*.json file.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, ReportSchema)
	}
	return &r, nil
}

// LatestPair returns the two lexically-latest BENCH_*.json files in dir
// (old, new): the stamp format sorts chronologically, so these are the
// last two points of the committed perf trajectory.
func LatestPair(dir string) (oldPath, newPath string, err error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", "", err
	}
	if len(matches) < 2 {
		return "", "", fmt.Errorf("%s: need at least 2 BENCH_*.json files, found %d", dir, len(matches))
	}
	sort.Strings(matches)
	return matches[len(matches)-2], matches[len(matches)-1], nil
}
