package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// loadDiffFixtures reads the committed report pair covering every
// verdict class: unchanged, regressed (wall), improved, drift,
// regressed (status), removed, and added.
func loadDiffFixtures(t *testing.T) (*Report, *Report) {
	t.Helper()
	old, err := ReadReport(filepath.Join("testdata", "diff", "BENCH_20260801T000000Z.json"))
	if err != nil {
		t.Fatal(err)
	}
	new, err := ReadReport(filepath.Join("testdata", "diff", "BENCH_20260802T000000Z.json"))
	if err != nil {
		t.Fatal(err)
	}
	return old, new
}

func TestCompareReportsClassification(t *testing.T) {
	old, new := loadDiffFixtures(t)
	d := CompareReports(old, new, DiffOptions{})
	if d.HostMismatch {
		t.Fatal("fixtures share a host; HostMismatch set")
	}
	if d.Improved != 1 || d.Unchanged != 3 || d.Regressed != 2 || d.Added != 1 || d.Removed != 1 || d.Drifted != 1 {
		t.Fatalf("verdict totals wrong: %+v", d)
	}
	if !d.HasRegressions() {
		t.Fatal("regression pair reported clean")
	}
	byKey := map[string]RunDiff{}
	for _, r := range d.Runs {
		byKey[r.Key] = r
	}
	if v := byKey["w1/c10/r100/s2"].Verdict; v != VerdictRegressed {
		t.Fatalf("wall regression classified %q", v)
	}
	if v := byKey["w1/c10/r100/s3"].Verdict; v != VerdictImproved {
		t.Fatalf("wall improvement classified %q", v)
	}
	// 100 -> 104 ms is under both thresholds: noise.
	if v := byKey["w1/c10/r300/s1"].Verdict; v != VerdictUnchanged {
		t.Fatalf("sub-threshold change classified %q", v)
	}
	// optimal -> limit regresses even though the wall clock improved.
	sr := byKey["w1/c10/r200/s2"]
	if sr.Verdict != VerdictRegressed || sr.OldStatus != "optimal" || sr.NewStatus != "limit" {
		t.Fatalf("status regression: %+v", sr)
	}
	// Deterministic solver: node/iter movement is drift, not noise.
	dr := byKey["w1/c10/r200/s1"]
	if dr.Verdict != VerdictUnchanged || !dr.SearchDrift || dr.OldNodes != 50 || dr.NewNodes != 60 {
		t.Fatalf("search drift: %+v", dr)
	}
	if byKey["w1/c20/r100/s1"].Verdict != VerdictRemoved {
		t.Fatalf("removed run: %+v", byKey["w1/c20/r100/s1"])
	}
	if byKey["w2/c10/r100/s1"].Verdict != VerdictAdded {
		t.Fatalf("added run: %+v", byKey["w2/c10/r100/s1"])
	}
	// Per-series aggregation covers aligned runs only: the 6 aligned
	// pairs all live in w1/c10; the removed/added runs contribute nothing.
	if len(d.Series) != 1 || d.Series[0].Key != "w1/c10" || d.Series[0].Runs != 6 {
		t.Fatalf("series aggregation: %+v", d.Series)
	}
	if !d.Series[0].Drifted() {
		t.Fatalf("series with a drifted run not flagged: %+v", d.Series[0])
	}
	if d.Series[0].Geomean <= 0 || d.GeomeanSpeedup <= 0 {
		t.Fatalf("geomean not populated: series %v overall %v", d.Series[0].Geomean, d.GeomeanSpeedup)
	}
	if d.ScaleMismatch {
		t.Fatalf("fixtures share a scale; ScaleMismatch set")
	}
}

// TestCompareReportsScaleMismatch: sweeps taken at different
// cmd/experiments scales solve different instances even when run keys
// align, so the diff must carry a warning.
func TestCompareReportsScaleMismatch(t *testing.T) {
	old, new := loadDiffFixtures(t)
	old.Config.Scale = "small"
	new.Config.Scale = "0.5"
	d := CompareReports(old, new, DiffOptions{})
	if !d.ScaleMismatch || d.OldScale != "small" || d.NewScale != "0.5" {
		t.Fatalf("scale mismatch not reported: %+v", d)
	}
	var buf bytes.Buffer
	if err := d.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("WARNING: workload scale differs")) {
		t.Fatalf("render missing scale warning:\n%s", buf.String())
	}
}

func TestCompareReportSelfIsClean(t *testing.T) {
	old, _ := loadDiffFixtures(t)
	d := CompareReports(old, old, DiffOptions{})
	if d.HasRegressions() || d.Improved != 0 || d.Added != 0 || d.Removed != 0 || d.Drifted != 0 {
		t.Fatalf("self-comparison not clean: %+v", d)
	}
	if d.Unchanged != 7 {
		t.Fatalf("self-comparison aligned %d runs, want 7", d.Unchanged)
	}
	for _, s := range d.Series {
		if s.Drifted() {
			t.Fatalf("self-comparison series drifted: %+v", s)
		}
	}
}

func TestDiffRenderGolden(t *testing.T) {
	old, new := loadDiffFixtures(t)
	var buf bytes.Buffer
	if err := CompareReports(old, new, DiffOptions{}).Render(&buf); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "diff", "golden.txt")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("render drifted from golden (re-run with -update if intended):\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestLatestPair(t *testing.T) {
	oldPath, newPath, err := LatestPair(filepath.Join("testdata", "diff"))
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(oldPath) != "BENCH_20260801T000000Z.json" || filepath.Base(newPath) != "BENCH_20260802T000000Z.json" {
		t.Fatalf("pair = %s, %s", oldPath, newPath)
	}
	if _, _, err := LatestPair(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestReadReportRejectsWrongSchema(t *testing.T) {
	p := filepath.Join(t.TempDir(), "BENCH_bad.json")
	if err := os.WriteFile(p, []byte(`{"schema":"rulefit-bench/v999"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(p); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
