// Package obs is the repo's zero-dependency observability layer: it
// turns every placement run into explainable data without ever
// influencing the answer. Three facilities, all optional and all safe
// to leave wired in production paths:
//
//   - Solver event tracing: internal/ilp emits a structured Event
//     stream (node expansions with depth/bound/branch variable, prunes
//     with their reason, incumbents, a bound-gap time series, and the
//     final stop reason) into a Sink. A nil Sink costs one branch per
//     node; a non-nil Sink never feeds back into the search, so
//     placements are byte-identical with tracing on or off, and — since
//     events are emitted from the solver's sequential merge loop — the
//     event sequence is identical modulo timing fields for any worker
//     count.
//
//   - Phase spans: hierarchical wall-clock/alloc timers over the
//     compile pipeline (parse → routing → dependency graph → model
//     build → presolve → root LP → B&B → extraction → verify). All
//     Span/Trace methods are nil-receiver-safe, so call sites need no
//     guards, and span mutation is mutex-serialized so parallel sweeps
//     can share a Trace.
//
//   - Metrics exposition: cheap process-wide atomic counters (always
//     on; one bulk update per solve) with Prometheus-text and JSON
//     snapshot encoders.
//
// Determinism rule: timing fields (Event.TimeMS, span wall times,
// alloc deltas) are observational only. No consumer may route them
// back into solver decisions, and determinism comparisons must exclude
// them. Everything else in an Event is a pure function of the
// instance.
package obs

import "sync"

// Event kinds, in the order a solve emits them.
const (
	// KindPresolve reports bound-propagation presolve (Fixes).
	KindPresolve = "presolve"
	// KindRootLP reports the root relaxation (Bound, Iters, Refactors).
	KindRootLP = "root_lp"
	// KindCut reports one lifted cover cut accepted into the root pool
	// (Node carries the separation round, Iters the cut length, Bound the
	// cut RHS). Emitted only from the sequential root cut loop.
	KindCut = "cut_added"
	// KindPseudocostInit reports one reliability strong-branching
	// initialization (Node, BranchVar, Frac, Iters spent on the trials).
	// Emitted only from the sequential merge sections.
	KindPseudocostInit = "pseudocost_init"
	// KindNode reports one expanded branch & bound node: Node id,
	// Parent, Depth, LP Bound, the Outcome, and — when branched — the
	// branching variable and its fractionality.
	KindNode = "node"
	// KindSkip reports a deque item discarded before expansion because
	// an incumbent found after it was pushed dominates its bound.
	// Skipped items are not counted as nodes.
	KindSkip = "skip"
	// KindIncumbent reports a new best integer solution (Node that
	// produced it, Incumbent objective).
	KindIncumbent = "incumbent"
	// KindGap is one point of the bound-gap time series, emitted at the
	// round boundary after an incumbent improvement: nodes so far,
	// Incumbent, BestBound, Gap.
	KindGap = "gap"
	// KindDone closes the trace: final status (Outcome), stop reason
	// (Reason), node/iteration totals, Incumbent, BestBound, Gap.
	KindDone = "done"
	// KindFlightMeta heads a flight-recorder dump (see FlightRecorder):
	// Node carries the retained event count, Seen/Dropped/Sampled the
	// loss accounting. Never emitted by the solver itself; its presence
	// marks a trace as a partial (ring-buffer) dump.
	KindFlightMeta = "flight_meta"
)

// Node outcomes carried by KindNode events. Every expanded node gets
// exactly one, so the per-outcome counts sum to the node total.
const (
	// OutcomeBranched: fractional LP optimum; two children pushed.
	OutcomeBranched = "branched"
	// OutcomeBound: LP bound dominated by the incumbent; subtree cut.
	OutcomeBound = "pruned_bound"
	// OutcomeInfeasible: node LP proven empty; sound prune.
	OutcomeInfeasible = "pruned_infeasible"
	// OutcomeIntegral: LP optimum already integral; leaf reached.
	OutcomeIntegral = "integral"
	// OutcomeLost: node LP hit the time limit or numerics; the subtree
	// is lost and optimality can no longer be proven.
	OutcomeLost = "lost"
)

// Event is one structured solver event. The struct is flat so it
// round-trips through JSONL without a tagged union; fields not used by
// a kind are zero. TimeMS is the only timing field: it is milliseconds
// since the solve started, informational only, and must be excluded
// from determinism comparisons (see Normalize).
type Event struct {
	Kind string `json:"kind"`
	// TraceID joins the event to the request that produced it (see
	// RequestCtx and Tag). Empty for unscoped solves. Deterministic —
	// included in determinism comparisons.
	TraceID string `json:"trace_id,omitempty"`
	// Node is the 1-based id of the node (KindNode/KindIncumbent), or
	// the nodes-so-far count (KindGap/KindDone).
	Node int `json:"node"`
	// Parent is the id of the node that pushed this item (0 for root).
	Parent int `json:"parent"`
	// Depth is the branching depth (root children are depth 1).
	Depth int `json:"depth"`
	// Outcome is the node outcome (KindNode) or final status (KindDone).
	Outcome string `json:"outcome,omitempty"`
	// Bound is the node's LP objective, ceiled when the objective is
	// integral (KindNode/KindSkip: the pruning bound; KindRootLP: the
	// raw root relaxation objective).
	Bound float64 `json:"bound"`
	// BranchVar is the model variable branched on (-1 when the node did
	// not branch).
	BranchVar int `json:"branch_var"`
	// Frac is the branching variable's fractional part distance.
	Frac float64 `json:"frac"`
	// Iters is the simplex iteration delta attributed to this event.
	Iters int `json:"iters"`
	// Refactors is the LU refactorization delta for this event.
	Refactors int `json:"refactors"`
	// Fixes is the presolve bound-tightening count (KindPresolve).
	Fixes int `json:"fixes"`
	// Incumbent is the best integer objective known at the event.
	Incumbent float64 `json:"incumbent"`
	// BestBound is a valid lower bound on the optimum at the event.
	BestBound float64 `json:"best_bound"`
	// Gap is the relative optimality gap (0 proven, -1 undefined).
	Gap float64 `json:"gap"`
	// Reason is the stop reason (KindDone only).
	Reason string `json:"reason,omitempty"`
	// Seen/Dropped/Sampled carry a flight dump's loss accounting
	// (KindFlightMeta only; zero and omitted on solver events).
	Seen    int `json:"seen,omitempty"`
	Dropped int `json:"dropped,omitempty"`
	Sampled int `json:"sampled,omitempty"`
	// TimeMS is milliseconds since solve start. Timing field:
	// informational only, excluded from determinism comparisons.
	TimeMS float64 `json:"time_ms"`
}

// Normalize returns a copy of the event with timing fields zeroed, for
// determinism comparisons (identical searches must produce identical
// normalized event sequences).
func (e Event) Normalize() Event {
	e.TimeMS = 0
	return e
}

// Sink receives solver events. Implementations must not feed anything
// back into the solver; the solve's behavior never depends on the sink.
// Events arrive from a single goroutine per solve, but separate
// concurrent solves may share a sink, so implementations that aggregate
// must lock (Recorder and JSONLWriter do).
//
// A nil Sink means observability is off: hot paths call methods only
// behind a `!= nil` guard so the fast path stays allocation-free.
//
//lint:sinkguard-iface nil when observability is off; guard every call
type Sink interface {
	Event(Event)
}

// Recorder is a Sink that stores events in memory, for tests and
// post-run summaries.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Event appends one event.
func (r *Recorder) Event(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns the recorded events in arrival order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// multiSink fans each event out to several sinks.
type multiSink []Sink

func (m multiSink) Event(e Event) {
	for _, s := range m {
		//lint:sinkguard Multi drops nil sinks at construction
		s.Event(e)
	}
}

// Multi returns a Sink that forwards each event to every non-nil sink,
// or nil when none remain (so the solver's nil fast path still applies).
func Multi(sinks ...Sink) Sink {
	var out multiSink
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	default:
		return out
	}
}
