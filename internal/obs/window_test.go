package obs

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestWindowMergeProperty is the windowed-histogram merge property
// test: for any Observe/Rotate sequence, the merged window snapshot
// equals a plain histogram fed the union of the observations still
// inside the window.
func TestWindowMergeProperty(t *testing.T) {
	layout := HistogramOpts{Start: 0.001, Factor: 2, Count: 12}
	const intervals = 4
	w := NewWindow(WindowOpts{Buckets: layout, Intervals: intervals})

	rng := rand.New(rand.NewSource(42))
	// live[i] holds the observations of the i-th most recent interval.
	live := make([][]float64, 1, intervals)
	for step := 0; step < 200; step++ {
		v := math.Exp(rng.Float64()*12 - 8) // spans below Start to above the top bound
		w.Observe(v)
		live[len(live)-1] = append(live[len(live)-1], v)
		if step%17 == 16 {
			w.Rotate()
			live = append(live, nil)
			if len(live) > intervals {
				live = live[1:]
			}
		}

		ref := NewHistogram(layout)
		for _, interval := range live {
			for _, ov := range interval {
				ref.Observe(ov)
			}
		}
		got, want := w.Snapshot(), ref.Snapshot()
		if !reflect.DeepEqual(got.Buckets, want.Buckets) || got.Count != want.Count {
			t.Fatalf("step %d: window snapshot diverged from union histogram\ngot  %+v\nwant %+v", step, got, want)
		}
		if math.Abs(got.Sum-want.Sum) > 1e-9*(1+math.Abs(want.Sum)) {
			t.Fatalf("step %d: sum %v, want %v", step, got.Sum, want.Sum)
		}
	}
}

// TestWindowRotateExpires checks observations leave the sliding window
// after Intervals rotations but stay in the cumulative total.
func TestWindowRotateExpires(t *testing.T) {
	w := NewWindow(WindowOpts{Buckets: HistogramOpts{Start: 1, Factor: 2, Count: 4}, Intervals: 3})
	w.Observe(1)
	w.Observe(2)
	for i := 0; i < 3; i++ {
		if got := w.Snapshot().Count; got != 2 {
			t.Fatalf("after %d rotations window count = %d, want 2", i, got)
		}
		w.Rotate()
	}
	if got := w.Snapshot().Count; got != 0 {
		t.Fatalf("window count after expiry = %d, want 0", got)
	}
	if got := w.Total().Count; got != 2 {
		t.Fatalf("total count = %d, want 2", got)
	}
}

// TestWindowZeroValue checks the zero value lazily adopts the default
// layout and interval count.
func TestWindowZeroValue(t *testing.T) {
	var w Window
	w.Observe(0.002)
	s := w.Snapshot()
	if len(s.Buckets) != 17 { // default layout: 16 finite + Inf
		t.Fatalf("bucket count = %d, want 17", len(s.Buckets))
	}
	if s.Count != 1 {
		t.Fatalf("count = %d, want 1", s.Count)
	}
	w.Rotate()
	if got := w.Snapshot().Count; got != 1 {
		t.Fatalf("count after one rotation = %d, want 1 (default 5 intervals)", got)
	}
}

// TestMergeHistogramSnapshotsLayoutMismatch checks merging across
// layouts is rejected rather than silently misattributed.
func TestMergeHistogramSnapshotsLayoutMismatch(t *testing.T) {
	a := NewHistogram(HistogramOpts{Start: 1, Factor: 2, Count: 3}).Snapshot()
	b := NewHistogram(HistogramOpts{Start: 1, Factor: 2, Count: 4}).Snapshot()
	if _, err := MergeHistogramSnapshots(a, b); err == nil {
		t.Fatal("merge across bucket counts succeeded, want error")
	}
	c := NewHistogram(HistogramOpts{Start: 2, Factor: 2, Count: 3}).Snapshot()
	if _, err := MergeHistogramSnapshots(a, c); err == nil {
		t.Fatal("merge across bucket bounds succeeded, want error")
	}
	if _, err := MergeHistogramSnapshots(a, a); err != nil {
		t.Fatalf("self-merge errored: %v", err)
	}
}

// TestHistogramSnapshotQuantile exercises the interpolated quantile
// estimator: empty snapshots, interior interpolation, and the +Inf
// clamp.
func TestHistogramSnapshotQuantile(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}

	h := NewHistogram(HistogramOpts{Start: 1, Factor: 2, Count: 3}) // bounds 1, 2, 4
	for i := 0; i < 10; i++ {
		h.Observe(1.5) // all ten land in the (1, 2] bucket
	}
	s := h.Snapshot()
	// Median rank 5 of 10 falls halfway into the (1, 2] bucket.
	if got := s.Quantile(0.5); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 1.5", got)
	}
	if got := s.Quantile(1); math.Abs(got-2) > 1e-9 {
		t.Fatalf("p100 = %v, want 2", got)
	}

	over := NewHistogram(HistogramOpts{Start: 1, Factor: 2, Count: 3})
	over.Observe(100) // +Inf bucket
	if got := over.Snapshot().Quantile(0.99); got != 4 {
		t.Fatalf("overflow quantile = %v, want largest finite bound 4", got)
	}
}

// TestConcurrentInstrumentWriters is the -race stress test: concurrent
// writers on Histogram, LabeledCounter, LabeledHistogram, and Window,
// with snapshot totals asserted equal to the sum of recorded
// observations.
func TestConcurrentInstrumentWriters(t *testing.T) {
	const (
		writers = 8
		perW    = 500
	)
	var (
		h  Histogram
		lc LabeledCounter
		lh LabeledHistogram
		w  Window
		wg sync.WaitGroup
	)
	labels := []string{"solve", "encode", "queue_wait"}
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perW; j++ {
				v := float64(j%13) * 0.001
				h.Observe(v)
				lc.Add(1, labels[j%len(labels)])
				lh.Observe(labels[j%len(labels)], v)
				w.Observe(v)
				if id == 0 && j%100 == 99 {
					w.Rotate() // rotation racing observers must stay consistent
				}
			}
		}(i)
	}
	wg.Wait()

	const total = writers * perW
	if got := h.Snapshot().Count; got != total {
		t.Fatalf("histogram count = %d, want %d", got, total)
	}
	var lcSum int64
	for _, s := range lc.Snapshot() {
		lcSum += s.Value
	}
	if lcSum != total {
		t.Fatalf("labeled counter sum = %d, want %d", lcSum, total)
	}
	var lhSum uint64
	for _, m := range lh.Snapshot() {
		lhSum += m.Hist.Count
	}
	if lhSum != total {
		t.Fatalf("labeled histogram count = %d, want %d", lhSum, total)
	}
	if got := w.Total().Count; got != total {
		t.Fatalf("window total count = %d, want %d", got, total)
	}
}

// TestLabeledHistogramSnapshotSortedSharedLayout checks family members
// share one layout and snapshot in sorted label order.
func TestLabeledHistogramSnapshotSortedSharedLayout(t *testing.T) {
	lh := NewLabeledHistogram(HistogramOpts{Start: 0.01, Factor: 10, Count: 3})
	lh.Observe("zeta", 0.5)
	lh.Observe("alpha", 0.02)
	lh.Observe("zeta", 5000) // +Inf bucket
	members := lh.Snapshot()
	if len(members) != 2 || members[0].Label != "alpha" || members[1].Label != "zeta" {
		t.Fatalf("members = %+v, want sorted [alpha zeta]", members)
	}
	for _, m := range members {
		if len(m.Hist.Buckets) != 4 {
			t.Fatalf("member %s has %d buckets, want shared layout of 4", m.Label, len(m.Hist.Buckets))
		}
	}
	if members[1].Hist.Count != 2 {
		t.Fatalf("zeta count = %d, want 2", members[1].Hist.Count)
	}
}

// TestPhaseWallExposition checks RecordPhase surfaces as a labeled
// histogram family in both encoders and passes the shared Prometheus
// conformance check (per-phase cumulative bucket sequences).
func TestPhaseWallExposition(t *testing.T) {
	var m Metrics
	m.RecordPhase("solve", 80*time.Millisecond)
	m.RecordPhase("solve", 5*time.Millisecond)
	m.RecordPhase("queue_wait", 100*time.Microsecond)

	s := m.Snapshot()
	if len(s.PhaseWall) != 2 {
		t.Fatalf("phase members = %d, want 2", len(s.PhaseWall))
	}
	if s.PhaseWall[0].Label != "queue_wait" || s.PhaseWall[1].Label != "solve" {
		t.Fatalf("phase labels = %+v, want sorted [queue_wait solve]", s.PhaseWall)
	}
	if s.PhaseWall[1].Hist.Count != 2 {
		t.Fatalf("solve phase count = %d, want 2", s.PhaseWall[1].Hist.Count)
	}

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE rulefit_request_phase_seconds histogram",
		`rulefit_request_phase_seconds_bucket{phase="solve",le="+Inf"} 2`,
		`rulefit_request_phase_seconds_count{phase="queue_wait"} 1`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	if err := CheckPrometheusText(&buf); err != nil {
		t.Fatalf("conformance: %v\n%s", err, text)
	}

	m.Reset()
	if got := m.Snapshot().PhaseWall; len(got) != 0 {
		t.Fatalf("phase members after reset = %+v, want none", got)
	}
}
