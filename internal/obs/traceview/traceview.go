// Package traceview summarizes JSONL solver traces produced by the
// obs.JSONLWriter sink: prune-reason histogram, gap-convergence table,
// and internal-consistency checks (outcome counts must sum to the node
// total; the final gap must match the done event).
package traceview

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"rulefit/internal/obs"
)

// GapPoint is one row of the gap-convergence table.
type GapPoint struct {
	Nodes     int     `json:"nodes"`
	Incumbent float64 `json:"incumbent"`
	BestBound float64 `json:"best_bound"`
	Gap       float64 `json:"gap"`
	TimeMS    float64 `json:"time_ms"`
}

// Summary aggregates one solver trace.
type Summary struct {
	Events        int            `json:"events"`
	Nodes         int            `json:"nodes"`
	Outcomes      map[string]int `json:"outcomes"`
	StaleSkips    int            `json:"stale_skips"`
	Incumbents    int            `json:"incumbents"`
	PresolveFixes int            `json:"presolve_fixes"`
	RootBound     float64        `json:"root_bound"`
	SimplexIters  int            `json:"simplex_iters"`
	LURefactors   int            `json:"lu_refactors"`
	GapCurve      []GapPoint     `json:"gap_curve"`
	FinalStatus   string         `json:"final_status"`
	StopReason    string         `json:"stop_reason"`
	FinalObj      float64        `json:"final_obj"`
	FinalBound    float64        `json:"final_bound"`
	FinalGap      float64        `json:"final_gap"`
	MaxDepth      int            `json:"max_depth"`
	// Partial marks a flight-recorder ring dump: the trace is the tail
	// of the event stream, so a missing done event is expected and the
	// loss accounting below says how much is gone.
	Partial       bool `json:"partial,omitempty"`
	SeenEvents    int  `json:"seen_events,omitempty"`
	DroppedEvents int  `json:"dropped_events,omitempty"`
	SampledEvents int  `json:"sampled_events,omitempty"`
	hasDone       bool
}

// Summarize reads a JSONL trace and aggregates it.
func Summarize(r io.Reader) (*Summary, error) {
	events, err := obs.ReadEvents(r)
	if err != nil {
		return nil, err
	}
	return Of(events), nil
}

// Of aggregates an in-memory event slice.
func Of(events []obs.Event) *Summary {
	s := &Summary{Outcomes: map[string]int{}, FinalGap: -1}
	for _, e := range events {
		s.Events++
		switch e.Kind {
		case obs.KindPresolve:
			s.PresolveFixes += e.Fixes
		case obs.KindRootLP:
			s.RootBound = e.Bound
			s.SimplexIters += e.Iters
			s.LURefactors += e.Refactors
		case obs.KindNode:
			s.Nodes++
			s.Outcomes[e.Outcome]++
			s.SimplexIters += e.Iters
			s.LURefactors += e.Refactors
			if e.Depth > s.MaxDepth {
				s.MaxDepth = e.Depth
			}
		case obs.KindSkip:
			s.StaleSkips++
		case obs.KindIncumbent:
			s.Incumbents++
		case obs.KindGap:
			s.GapCurve = append(s.GapCurve, GapPoint{
				Nodes: e.Node, Incumbent: e.Incumbent,
				BestBound: e.BestBound, Gap: e.Gap, TimeMS: e.TimeMS,
			})
		case obs.KindDone:
			s.hasDone = true
			s.FinalStatus = e.Outcome
			s.StopReason = e.Reason
			s.FinalObj = e.Incumbent
			s.FinalBound = e.BestBound
			s.FinalGap = e.Gap
		case obs.KindFlightMeta:
			s.Partial = true
			s.SeenEvents = e.Seen
			s.DroppedEvents = e.Dropped
			s.SampledEvents = e.Sampled
		}
	}
	return s
}

// Check verifies the trace's internal accounting: every expanded node
// carries exactly one outcome (so outcome counts sum to the node
// total), and the trace is closed by a done event. Partial
// flight-recorder dumps keep the outcome consistency check (it holds
// over whatever tail the ring retained) but are excused from the
// done-event requirement — a ring dumped mid-solve, or after the ring
// overwrote the beginning, has no reason to contain one.
func (s *Summary) Check() error {
	sum := 0
	for _, n := range s.Outcomes {
		sum += n
	}
	if sum != s.Nodes {
		return fmt.Errorf("outcome counts sum to %d, want %d nodes", sum, s.Nodes)
	}
	if !s.hasDone && !s.Partial {
		return fmt.Errorf("trace has no done event")
	}
	return nil
}

// HasDone reports whether the trace was closed by a done event.
func (s *Summary) HasDone() bool { return s.hasDone }

// Render formats the summary as a human-readable report.
func (s *Summary) Render() string {
	var sb strings.Builder
	if s.Partial {
		fmt.Fprintf(&sb, "partial flight dump: %d of %d events retained (%d dropped under contention, %d sampled away)\n",
			s.Events-1, s.SeenEvents, s.DroppedEvents, s.SampledEvents)
	}
	fmt.Fprintf(&sb, "trace: %d events, %d nodes (max depth %d), %d stale skips, %d incumbents\n",
		s.Events, s.Nodes, s.MaxDepth, s.StaleSkips, s.Incumbents)
	fmt.Fprintf(&sb, "effort: %d simplex iters, %d LU refactorizations, %d presolve fixes, root bound %g\n",
		s.SimplexIters, s.LURefactors, s.PresolveFixes, s.RootBound)
	if len(s.Outcomes) > 0 {
		sb.WriteString("node outcomes:\n")
		keys := make([]string, 0, len(s.Outcomes))
		for k := range s.Outcomes {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			n := s.Outcomes[k]
			fmt.Fprintf(&sb, "  %-18s %6d  (%5.1f%%)\n", k, n, 100*float64(n)/float64(s.Nodes))
		}
	}
	if len(s.GapCurve) > 0 {
		sb.WriteString("gap convergence:\n")
		sb.WriteString("  nodes  incumbent  best-bound    gap\n")
		for _, p := range s.GapCurve {
			fmt.Fprintf(&sb, "  %5d  %9g  %10g  %s\n", p.Nodes, p.Incumbent, p.BestBound, fmtGap(p.Gap))
		}
	}
	if s.hasDone {
		fmt.Fprintf(&sb, "final: status=%s stop=%s obj=%g bound=%g gap=%s\n",
			s.FinalStatus, s.StopReason, s.FinalObj, s.FinalBound, fmtGap(s.FinalGap))
	}
	return sb.String()
}

func fmtGap(g float64) string {
	if g < 0 || math.IsInf(g, 0) || math.IsNaN(g) {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", 100*g)
}
