package traceview

import (
	"bytes"
	"strings"
	"testing"

	"rulefit/internal/obs"
)

func sampleEvents() []obs.Event {
	return []obs.Event{
		{Kind: obs.KindPresolve, Fixes: 2, Gap: -1},
		{Kind: obs.KindRootLP, Bound: 3.5, Iters: 12, Refactors: 1, Gap: -1},
		{Kind: obs.KindNode, Node: 1, Depth: 0, Outcome: obs.OutcomeBranched, Bound: 4, BranchVar: 1, Frac: 0.5, Iters: 12, Gap: -1},
		{Kind: obs.KindNode, Node: 2, Parent: 1, Depth: 1, Outcome: obs.OutcomeIntegral, Bound: 5, BranchVar: -1, Iters: 3, Gap: -1},
		{Kind: obs.KindIncumbent, Node: 2, Incumbent: 5, Gap: -1},
		{Kind: obs.KindGap, Node: 2, Incumbent: 5, BestBound: 4, Gap: 0.2},
		{Kind: obs.KindNode, Node: 3, Parent: 1, Depth: 1, Outcome: obs.OutcomeBound, Bound: 5, BranchVar: -1, Iters: 2, Gap: -1},
		{Kind: obs.KindSkip, Node: 0, Bound: 6, Gap: -1},
		{Kind: obs.KindDone, Node: 3, Outcome: "optimal", Reason: "none", Incumbent: 5, BestBound: 5, Gap: 0},
	}
}

func TestOfAggregates(t *testing.T) {
	s := Of(sampleEvents())
	if s.Nodes != 3 || s.StaleSkips != 1 || s.Incumbents != 1 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.Outcomes[obs.OutcomeBranched] != 1 || s.Outcomes[obs.OutcomeIntegral] != 1 || s.Outcomes[obs.OutcomeBound] != 1 {
		t.Fatalf("outcomes wrong: %v", s.Outcomes)
	}
	if s.SimplexIters != 12+12+3+2 || s.LURefactors != 1 || s.PresolveFixes != 2 {
		t.Fatalf("effort wrong: %+v", s)
	}
	if len(s.GapCurve) != 1 || s.GapCurve[0].Gap != 0.2 {
		t.Fatalf("gap curve wrong: %+v", s.GapCurve)
	}
	if s.FinalStatus != "optimal" || s.StopReason != "none" || s.FinalGap != 0 || s.MaxDepth != 1 {
		t.Fatalf("final wrong: %+v", s)
	}
	if err := s.Check(); err != nil {
		t.Fatalf("consistent trace failed Check: %v", err)
	}
}

func TestCheckCatchesBadAccounting(t *testing.T) {
	ev := sampleEvents()
	s := Of(ev)
	s.Nodes++ // outcome counts now undercount the node total
	if err := s.Check(); err == nil {
		t.Fatal("Check missed an outcome/node mismatch")
	}
	s2 := Of(ev[:len(ev)-1]) // no done event
	if err := s2.Check(); err == nil {
		t.Fatal("Check missed a missing done event")
	}
}

func TestSummarizeFromJSONL(t *testing.T) {
	var buf bytes.Buffer
	w := obs.NewJSONLWriter(&buf)
	for _, e := range sampleEvents() {
		w.Event(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 3 || !s.HasDone() {
		t.Fatalf("summarize wrong: %+v", s)
	}
	out := s.Render()
	for _, want := range []string{"pruned_bound", "gap convergence", "status=optimal", "stop=none"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
