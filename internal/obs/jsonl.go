package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// JSONLWriter is a Sink that streams events as one JSON object per
// line. Writes are mutex-serialized so concurrent solves (e.g. a bench
// sweep with -parallel > 1) may share one writer; their events
// interleave per line but each line stays intact.
type JSONLWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewJSONLWriter wraps w in a buffered JSONL event writer. Call Flush
// (or Close if w is an io.Closer you own) before reading the output.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriter(w)}
}

// Event encodes one event as a JSON line. Encoding errors are sticky
// and reported by Flush; the Sink interface has no error path because
// the solver must never react to sink failures.
func (j *JSONLWriter) Event(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		j.err = err
		return
	}
	b = append(b, '\n')
	if _, err := j.w.Write(b); err != nil {
		j.err = err
	}
}

// Flush drains the buffer and returns the first sticky error, if any.
func (j *JSONLWriter) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// ReadEvents parses a JSONL trace produced by JSONLWriter.
func ReadEvents(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}
