package obs

import (
	"fmt"
	"runtime/metrics"
	"strings"
	"sync"
	"time"
)

// Trace collects a forest of phase spans for one pipeline run. The zero
// value is not usable; NewTrace returns a ready Trace. All methods —
// including those of the Spans it hands out — are safe on nil
// receivers, so call sites never need tracing guards, and mutation is
// serialized by one mutex so parallel workers may share a Trace.
//
//lint:nilsafe every exported method begins with a nil-receiver guard
type Trace struct {
	mu    sync.Mutex
	id    string
	roots []*Span
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// SetID attaches a trace ID (rendered as a header line and used to
// join spans with solver events and log lines). No-op on nil.
func (t *Trace) SetID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.id = id
	t.mu.Unlock()
}

// ID returns the attached trace ID ("" for nil or unset).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id
}

// Span starts a new top-level span. Returns nil (a safe no-op span)
// when the trace itself is nil.
func (t *Trace) Span(name string) *Span {
	if t == nil {
		return nil
	}
	sp := newSpan(t, name)
	t.mu.Lock()
	t.roots = append(t.roots, sp)
	t.mu.Unlock()
	return sp
}

// Roots returns the top-level spans in start order.
func (t *Trace) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Render prints the span forest as an indented text tree: wall time,
// allocated bytes, and counters per span.
func (t *Trace) Render() string {
	if t == nil {
		return ""
	}
	var sb strings.Builder
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.id != "" {
		fmt.Fprintf(&sb, "trace %s\n", t.id)
	}
	for _, sp := range t.roots {
		sp.render(&sb, 0)
	}
	return sb.String()
}

// Span is one timed pipeline phase: wall clock, heap allocation delta,
// ordered counters, and child spans. Spans are created via Trace.Span
// or Span.Child and closed with End; timing fields are observational
// only and excluded from determinism guarantees.
//
//lint:nilsafe every exported method begins with a nil-receiver guard
type Span struct {
	trace *Trace
	name  string
	start time.Time
	wall  time.Duration
	// allocs0/allocs are the cumulative heap-alloc byte readings at
	// start and the delta at End.
	allocs0  uint64
	allocs   uint64
	ended    bool
	counters []counter
	children []*Span
}

// counter is one named span counter, kept in insertion order.
type counter struct {
	name string
	val  int64
}

func newSpan(t *Trace, name string) *Span {
	return &Span{trace: t, name: name, start: time.Now(), allocs0: heapAllocBytes()}
}

// Child starts a nested span. Safe (and a no-op) on a nil receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	sp := newSpan(s.trace, name)
	s.trace.mu.Lock()
	s.children = append(s.children, sp)
	s.trace.mu.Unlock()
	return sp
}

// End closes the span, recording wall time and the heap-alloc delta.
// Ending twice keeps the first measurement.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	if !s.ended {
		s.ended = true
		s.wall = time.Since(s.start)
		if a := heapAllocBytes(); a >= s.allocs0 {
			s.allocs = a - s.allocs0
		}
	}
	s.trace.mu.Unlock()
}

// SetCount records (or overwrites) a named counter on the span.
// Counters carry deterministic per-phase quantities — node counts,
// simplex iterations, variable totals — alongside the timing fields.
func (s *Span) SetCount(name string, v int64) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	for i := range s.counters {
		if s.counters[i].name == name {
			s.counters[i].val = v
			return
		}
	}
	s.counters = append(s.counters, counter{name, v})
}

// Wall returns the measured wall time (0 until End).
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	return s.wall
}

// AllocBytes returns the heap bytes allocated during the span.
func (s *Span) AllocBytes() uint64 {
	if s == nil {
		return 0
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	return s.allocs
}

// Name returns the span name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Children returns the child spans in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Counter returns a named counter value (ok=false when unset).
func (s *Span) Counter(name string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	for _, c := range s.counters {
		if c.name == name {
			return c.val, true
		}
	}
	return 0, false
}

// render appends the span subtree to sb. Caller holds the trace lock.
func (s *Span) render(sb *strings.Builder, depth int) {
	fmt.Fprintf(sb, "%s%-*s %10s %10s", strings.Repeat("  ", depth), 24-2*depth, s.name,
		fmtWall(s.wall), fmtBytes(s.allocs))
	for _, c := range s.counters {
		fmt.Fprintf(sb, "  %s=%d", c.name, c.val)
	}
	sb.WriteByte('\n')
	for _, ch := range s.children {
		ch.render(sb, depth+1)
	}
}

func fmtWall(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// heapAllocBytes reads the cumulative heap allocation counter. Uses
// runtime/metrics (no stop-the-world), so spans stay cheap enough to
// wrap sub-millisecond phases.
func heapAllocBytes() uint64 {
	sample := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}
