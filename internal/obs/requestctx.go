package obs

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// RequestCtx scopes one placement request's observability: a
// deterministic trace ID and a span trace that carries it. Threaded
// through core.Options.Request, the ID is stamped on every solver
// event (Event.TraceID) and rendered in the span tree, so a request's
// phase spans, B&B events, and log lines are joinable by ID. A nil
// RequestCtx is a safe no-op everywhere it is accepted.
type RequestCtx struct {
	// TraceID identifies the request. Deterministic by construction
	// (see TraceIDFor): identical request sequences produce identical
	// IDs, so traces can be diffed across runs.
	TraceID string
	// Trace collects the request's phase spans.
	Trace *Trace
}

// NewRequestCtx returns a request context with a fresh span trace
// carrying the given ID.
func NewRequestCtx(traceID string) *RequestCtx {
	tr := NewTrace()
	tr.SetID(traceID)
	return &RequestCtx{TraceID: traceID, Trace: tr}
}

// TraceIDFor derives the deterministic trace ID for the seq-th request
// with the given body: a sequence number plus an FNV-1a content hash.
// Replaying the same request stream yields the same IDs.
func TraceIDFor(seq uint64, body []byte) string {
	h := fnv.New64a()
	h.Write(body)
	return fmt.Sprintf("req-%06d-%016x", seq, h.Sum64())
}

// tagSink stamps a trace ID on every event before forwarding.
type tagSink struct {
	id string
	s  Sink
}

func (t tagSink) Event(e Event) {
	e.TraceID = t.id
	//lint:sinkguard Tag maps a nil sink to nil, so t.s is never nil
	t.s.Event(e)
}

// Tag wraps s so every event carries TraceID id. Returns s unchanged
// when id is empty, and nil when s is nil (preserving the solver's
// disabled-sink fast path).
func Tag(id string, s Sink) Sink {
	if s == nil || id == "" {
		return s
	}
	return tagSink{id: id, s: s}
}

// metricNameRE is the Prometheus metric/label name grammar.
var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// CheckPrometheusText validates a text-exposition (0.0.4) payload:
// every line is a HELP/TYPE comment or a `name{labels} value` sample,
// names and label names match the Prometheus grammar, every sample's
// family has a TYPE, histogram buckets are cumulative and end at
// le="+Inf" with the +Inf bucket equal to _count. It returns the first
// violation found. Exposed so endpoint tests and CI smoke checks share
// one conformance definition.
func CheckPrometheusText(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	typed := map[string]string{} // family -> type
	type histState struct {
		prev    float64 // last cumulative bucket count
		infSeen bool
		inf     float64
		count   float64
		hasCnt  bool
	}
	hists := map[string]*histState{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) < 4 {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if !metricNameRE.MatchString(name) {
				return fmt.Errorf("line %d: bad metric name %q", lineNo, name)
			}
			if fields[1] == "TYPE" {
				typed[name] = fields[3]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if !metricNameRE.MatchString(name) {
			return fmt.Errorf("line %d: bad metric name %q", lineNo, name)
		}
		for ln := range labels {
			if !metricNameRE.MatchString(ln) {
				return fmt.Errorf("line %d: bad label name %q", lineNo, ln)
			}
		}
		family, suffix := histFamilyOf(name, typed)
		if family == "" {
			if _, ok := typed[name]; !ok {
				return fmt.Errorf("line %d: sample %q has no TYPE declaration", lineNo, name)
			}
			continue
		}
		// Histogram state is tracked per (family, non-le label set): a
		// family like request_phase_seconds carries one cumulative
		// bucket sequence per phase label, each ending at its own +Inf.
		key := family + histLabelSignature(labels)
		h := hists[key]
		if h == nil {
			h = &histState{}
			hists[key] = h
		}
		switch suffix {
		case "_bucket":
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("line %d: histogram bucket %q missing le label", lineNo, name)
			}
			if le == "+Inf" {
				h.infSeen, h.inf = true, value
				break
			}
			if _, err := strconv.ParseFloat(le, 64); err != nil {
				return fmt.Errorf("line %d: bad le value %q", lineNo, le)
			}
			if value < h.prev {
				return fmt.Errorf("line %d: histogram %s buckets not cumulative (%g after %g)", lineNo, key, value, h.prev)
			}
			h.prev = value
		case "_count":
			h.count, h.hasCnt = value, true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for name, h := range hists {
		if !h.infSeen {
			return fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", name)
		}
		if !h.hasCnt {
			return fmt.Errorf("histogram %s has no _count sample", name)
		}
		//lint:exactfloat bucket counts are integer-valued counters parsed as floats
		if h.inf != h.count {
			return fmt.Errorf("histogram %s: +Inf bucket %g != _count %g", name, h.inf, h.count)
		}
		if h.prev > h.inf {
			return fmt.Errorf("histogram %s: finite bucket %g exceeds +Inf bucket %g", name, h.prev, h.inf)
		}
	}
	return nil
}

// histLabelSignature renders a sample's labels minus "le" as a stable
// suffix ("" when unlabeled), so histogram state can be tracked per
// family member.
func histLabelSignature(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString("{" + k + "=" + labels[k] + "}")
	}
	return sb.String()
}

// histFamilyOf resolves a sample name to its TYPE'd histogram family
// and suffix, or ("", "") for non-histogram samples.
func histFamilyOf(name string, typed map[string]string) (family, suffix string) {
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, sfx)
		if base != name && typed[base] == "histogram" {
			return base, sfx
		}
	}
	return "", ""
}

// parseSample splits one exposition sample line.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	labels = map[string]string{}
	if brace >= 0 {
		name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[brace+1:end], labels); err != nil {
			return "", nil, 0, fmt.Errorf("%w in %q", err, line)
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return "", nil, 0, fmt.Errorf("malformed sample %q", line)
		}
		name, rest = fields[0], strings.TrimSpace(fields[1])
	}
	// The value may be followed by an optional timestamp.
	valField := strings.Fields(rest)
	if len(valField) < 1 {
		return "", nil, 0, fmt.Errorf("missing value in %q", line)
	}
	v, err := strconv.ParseFloat(valField[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q", valField[0])
	}
	return name, labels, v, nil
}

// parseLabels parses `k1="v1",k2="v2"` into out.
func parseLabels(s string, out map[string]string) error {
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label pair %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		rest := s[eq+1:]
		if len(rest) < 2 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value after %q", key)
		}
		i := 1
		var val strings.Builder
		for ; i < len(rest); i++ {
			if rest[i] == '\\' && i+1 < len(rest) {
				i++
				val.WriteByte(rest[i])
				continue
			}
			if rest[i] == '"' {
				break
			}
			val.WriteByte(rest[i])
		}
		if i >= len(rest) {
			return fmt.Errorf("unterminated label value for %q", key)
		}
		out[key] = val.String()
		s = strings.TrimPrefix(strings.TrimSpace(rest[i+1:]), ",")
		s = strings.TrimSpace(s)
	}
	return nil
}
