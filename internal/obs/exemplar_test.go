package obs

import (
	"testing"
	"time"
)

func TestPhaseExemplarsTrackSlowest(t *testing.T) {
	var m Metrics
	m.RecordPhaseTrace("solve", 10*time.Millisecond, "req-000001")
	m.RecordPhaseTrace("solve", 250*time.Millisecond, "req-000002")
	m.RecordPhaseTrace("solve", 40*time.Millisecond, "req-000003")
	m.RecordPhaseTrace("parse", 2*time.Millisecond, "req-000002")
	m.RecordPhaseTrace("encode", 5*time.Millisecond, "") // no trace: histogram only

	ex := m.PhaseExemplars()
	if len(ex) != 2 {
		t.Fatalf("got %d exemplars, want 2 (empty trace IDs never become exemplars): %+v", len(ex), ex)
	}
	// Sorted by phase name.
	if ex[0].Phase != "parse" || ex[1].Phase != "solve" {
		t.Fatalf("exemplars not sorted by phase: %+v", ex)
	}
	solve := ex[1]
	if solve.TraceID != "req-000002" {
		t.Fatalf("solve exemplar trace %q, want the slowest (req-000002)", solve.TraceID)
	}
	if solve.Seconds != 0.25 {
		t.Fatalf("solve exemplar seconds %g, want 0.25", solve.Seconds)
	}
	if solve.BucketLE < 0.25 {
		t.Fatalf("solve exemplar bucket bound %g does not cover the observation", solve.BucketLE)
	}

	m.Reset()
	if ex := m.PhaseExemplars(); len(ex) != 0 {
		t.Fatalf("Reset kept exemplars: %+v", ex)
	}
}

func TestPhaseExemplarOverflowBucket(t *testing.T) {
	var m Metrics
	// Beyond the top phaseWall bucket (~26s): BucketLE reports the +Inf
	// sentinel -1 rather than an unencodable math.Inf.
	m.RecordPhaseTrace("solve", time.Hour, "req-000009")
	ex := m.PhaseExemplars()
	if len(ex) != 1 || ex[0].BucketLE != -1 {
		t.Fatalf("overflow observation should report BucketLE -1: %+v", ex)
	}
}
