package obs

import "sync/atomic"

// ProgressSnapshot is one point-in-time view of a running solve,
// published from the solver's sequential sections and read by the
// daemon's /debug/solvez endpoint. All fields are observational; the
// solver never reads a snapshot back, so attaching a Progress cannot
// perturb the search (the same contract as Sink).
type ProgressSnapshot struct {
	// TraceID joins the snapshot to its request ("" when unscoped).
	TraceID string `json:"trace_id,omitempty"`
	// Phase is where the solve currently is: "admitted" (daemon slot
	// held, solver not yet entered), "presolve", "root_lp", "cuts",
	// "search", or "done".
	Phase string `json:"phase"`
	// Nodes is the branch & bound nodes expanded so far.
	Nodes int `json:"nodes"`
	// Incumbent is the best integer objective so far; meaningful only
	// when HaveIncumbent.
	Incumbent     float64 `json:"incumbent"`
	HaveIncumbent bool    `json:"have_incumbent"`
	// BestBound is the current valid lower bound on the optimum.
	BestBound float64 `json:"best_bound"`
	// Gap is the relative optimality gap at the snapshot (-1 undefined,
	// e.g. before the first incumbent — the same sentinel as ilp.Stats).
	Gap float64 `json:"gap"`
	// Incumbents counts incumbent improvements so far.
	Incumbents int `json:"incumbents"`
	// Workers is the branch & bound parallelism of the solve.
	Workers int `json:"workers"`
	// ElapsedMS is wall time since solve start. Timing field:
	// informational only, never a solver input.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Done marks the final snapshot of a finished solve.
	Done bool `json:"done"`
}

// Progress is an atomically-published ProgressSnapshot cell. The solver
// (single writer, sequential sections only) Publishes; any number of
// readers Snapshot concurrently without locks. A nil *Progress is a
// no-op on both sides, mirroring the nil-Sink fast path: hot paths
// guard with `!= nil` and pay one branch when introspection is off.
type Progress struct {
	p atomic.Pointer[ProgressSnapshot]
}

// Publish replaces the current snapshot. Nil-receiver-safe.
func (p *Progress) Publish(s ProgressSnapshot) {
	if p == nil {
		return
	}
	p.p.Store(&s)
}

// Snapshot returns the latest published snapshot, and whether one has
// been published yet. Nil-receiver-safe.
func (p *Progress) Snapshot() (ProgressSnapshot, bool) {
	if p == nil {
		return ProgressSnapshot{}, false
	}
	s := p.p.Load()
	if s == nil {
		return ProgressSnapshot{}, false
	}
	return *s, true
}
