package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestHistogramCumulativeSnapshot(t *testing.T) {
	h := NewHistogram(HistogramOpts{Start: 1, Factor: 2, Count: 3})
	for _, v := range []float64{0.5, 1, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if s.Sum < 104.4 || s.Sum > 104.6 {
		t.Fatalf("sum = %v, want 104.5", s.Sum)
	}
	want := []BucketCount{
		{LE: 1, Count: 2}, // 0.5 and 1 (le is inclusive)
		{LE: 2, Count: 2},
		{LE: 4, Count: 3}, // + 3
		{LE: math.Inf(1), Count: 4},
	}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	// Cumulative: monotone nondecreasing, final bucket equals count.
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].Count < s.Buckets[i-1].Count {
			t.Fatalf("buckets not cumulative at %d: %+v", i, s.Buckets)
		}
	}
}

func TestHistogramZeroValueUsesDefaultLayout(t *testing.T) {
	var h Histogram
	h.Observe(0.002)
	s := h.Snapshot()
	if len(s.Buckets) != 17 { // 16 finite + Inf
		t.Fatalf("bucket count = %d, want 17", len(s.Buckets))
	}
	if s.Count != 1 || s.Buckets[len(s.Buckets)-1].Count != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestBucketCountJSONRoundTrip(t *testing.T) {
	in := []BucketCount{{LE: 0.5, Count: 3}, {LE: math.Inf(1), Count: 7}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"+Inf"`) {
		t.Fatalf("marshal lost +Inf: %s", data)
	}
	var out []BucketCount
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v vs %+v", in, out)
	}
}

func TestLabeledCounterSortedSnapshot(t *testing.T) {
	var c LabeledCounter
	c.Add(1, "optimal", "none")
	c.Add(2, "limit", "time_limit")
	c.Add(1, "optimal", "none")
	got := c.Snapshot()
	want := []LabeledCount{
		{Labels: []string{"limit", "time_limit"}, Value: 2},
		{Labels: []string{"optimal", "none"}, Value: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot = %+v, want %+v", got, want)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Add(3) != 3 || g.Add(-1) != 2 || g.Value() != 2 {
		t.Fatal("gauge arithmetic wrong")
	}
	g.Set(0)
	if g.Value() != 0 {
		t.Fatal("Set(0) did not clear")
	}
}

func TestPrometheusExpositionConformance(t *testing.T) {
	var m Metrics
	m.RecordSolve(SolveSample{Status: "optimal", Wall: 2 * time.Millisecond, Nodes: 9, SimplexIters: 120})
	m.RecordSolve(SolveSample{Status: "limit", Wall: 40 * time.Millisecond, Nodes: 500, SimplexIters: 9000})
	m.RecordRequest(RequestSample{Status: "optimal", Placed: true, InstalledRules: 42})
	m.RecordRequest(RequestSample{Status: "shed"})
	m.InFlight().Add(1)
	m.QueueDepth().Add(2)

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := CheckPrometheusText(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition not conformant: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE rulefit_solve_wall_seconds histogram",
		`rulefit_solve_wall_seconds_bucket{le="+Inf"} 2`,
		"rulefit_solve_wall_seconds_count 2",
		`rulefit_solve_nodes_bucket{le="+Inf"} 2`,
		`rulefit_installed_rules_bucket{le="+Inf"} 1`,
		`rulefit_requests_total{status="optimal",stop_reason="none"} 1`,
		`rulefit_requests_total{status="shed",stop_reason="none"} 1`,
		"rulefit_in_flight_requests 1",
		"rulefit_request_queue_depth 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCheckPrometheusTextRejections(t *testing.T) {
	cases := map[string]string{
		"no TYPE":  "foo 1\n",
		"bad name": "# TYPE 0bad counter\n0bad 1\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n",
		"missing +Inf": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n",
		"+Inf != count": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 3\n",
		"bad value": "# TYPE c counter\nc pizza\n",
	}
	for name, payload := range cases {
		if err := CheckPrometheusText(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: accepted invalid payload:\n%s", name, payload)
		}
	}
	valid := "# HELP c a counter\n# TYPE c counter\nc 1\n"
	if err := CheckPrometheusText(strings.NewReader(valid)); err != nil {
		t.Errorf("rejected valid payload: %v", err)
	}
}

func TestMetricsReset(t *testing.T) {
	var m Metrics
	m.RecordSolve(SolveSample{Status: "optimal", Wall: time.Millisecond, Nodes: 3})
	m.RecordRequest(RequestSample{Status: "optimal", Placed: true, InstalledRules: 5})
	m.InFlight().Add(1)
	m.Reset()
	s := m.Snapshot()
	if s.Solves != 0 || s.Nodes != 0 || s.InFlightRequests != 0 || len(s.Requests) != 0 {
		t.Fatalf("Reset left residue: %+v", s)
	}
	if s.SolveWallHist.Count != 0 || s.InstalledRules.Count != 0 {
		t.Fatalf("Reset left histogram residue: %+v", s)
	}
	// Layout survives a reset.
	if len(s.SolveWallHist.Buckets) != solveWallBuckets.Count+1 {
		t.Fatalf("Reset dropped bucket layout: %d buckets", len(s.SolveWallHist.Buckets))
	}
}

func TestTraceIDForDeterministic(t *testing.T) {
	a := TraceIDFor(7, []byte("body"))
	b := TraceIDFor(7, []byte("body"))
	if a != b {
		t.Fatalf("same inputs produced %q and %q", a, b)
	}
	if !strings.HasPrefix(a, "req-000007-") || len(a) != len("req-000007-")+16 {
		t.Fatalf("unexpected trace ID format %q", a)
	}
	if TraceIDFor(7, []byte("other")) == a {
		t.Fatal("different bodies produced the same ID")
	}
	if TraceIDFor(8, []byte("body")) == a {
		t.Fatal("different sequence numbers produced the same ID")
	}
}

func TestTagSink(t *testing.T) {
	if Tag("id", nil) != nil {
		t.Fatal("Tag of nil sink must stay nil (solver fast path)")
	}
	var rec Recorder
	if Tag("", &rec) != Sink(&rec) {
		t.Fatal("Tag with empty ID must return the sink unwrapped")
	}
	s := Tag("req-000001-abc", &rec)
	s.Event(Event{Kind: KindNode, Node: 1})
	s.Event(Event{Kind: KindDone, TraceID: "overwritten"})
	got := rec.Events()
	if len(got) != 2 || got[0].TraceID != "req-000001-abc" || got[1].TraceID != "req-000001-abc" {
		t.Fatalf("events not tagged: %+v", got)
	}
	if got[0].Node != 1 || got[0].Kind != KindNode {
		t.Fatalf("tagging perturbed event fields: %+v", got[0])
	}
}

func TestRequestCtxTraceCarriesID(t *testing.T) {
	rc := NewRequestCtx("req-000003-deadbeef")
	sp := rc.Trace.Span("place")
	sp.End()
	if rc.Trace.ID() != "req-000003-deadbeef" {
		t.Fatalf("trace ID = %q", rc.Trace.ID())
	}
	if !strings.Contains(rc.Trace.Render(), "trace req-000003-deadbeef") {
		t.Fatalf("render missing trace ID header:\n%s", rc.Trace.Render())
	}
	var nilTrace *Trace
	nilTrace.SetID("x") // must not panic
	if nilTrace.ID() != "" {
		t.Fatal("nil trace has an ID")
	}
}
