package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Metrics is a process-wide registry of solver counters. Unlike event
// sinks it is always on: internal/ilp records one SolveSample per solve
// (a handful of atomic adds, nowhere near any hot path), so long-lived
// processes can expose cumulative solver effort without enabling
// tracing. Default is the registry the solver records into and the
// -metrics / -pprof endpoints expose.
type Metrics struct {
	solves          atomic.Int64
	solvesOptimal   atomic.Int64
	solvesFeasible  atomic.Int64
	solvesInfeas    atomic.Int64
	solvesLimit     atomic.Int64
	solvesUnbounded atomic.Int64
	nodes           atomic.Int64
	simplexIters    atomic.Int64
	luRefactors     atomic.Int64
	presolveFixes   atomic.Int64
	incumbents      atomic.Int64
	branched        atomic.Int64
	prunedBound     atomic.Int64
	prunedInfeas    atomic.Int64
	integralLeaves  atomic.Int64
	lostSubtrees    atomic.Int64
	prunedStale     atomic.Int64
	wallMicros      atomic.Int64
}

// Default is the process-wide registry.
var Default = &Metrics{}

// SolveSample is the per-solve bulk update recorded into a Metrics.
type SolveSample struct {
	Status         string // "optimal", "feasible", "infeasible", "limit", "unbounded"
	Wall           time.Duration
	Nodes          int
	SimplexIters   int
	LURefactors    int
	PresolveFixes  int
	Incumbents     int
	Branched       int
	PrunedBound    int
	PrunedInfeas   int
	IntegralLeaves int
	LostSubtrees   int
	PrunedStale    int
}

// RecordSolve folds one finished solve into the counters.
func (m *Metrics) RecordSolve(s SolveSample) {
	m.solves.Add(1)
	switch s.Status {
	case "optimal":
		m.solvesOptimal.Add(1)
	case "feasible":
		m.solvesFeasible.Add(1)
	case "infeasible":
		m.solvesInfeas.Add(1)
	case "limit":
		m.solvesLimit.Add(1)
	case "unbounded":
		m.solvesUnbounded.Add(1)
	}
	m.wallMicros.Add(s.Wall.Microseconds())
	m.nodes.Add(int64(s.Nodes))
	m.simplexIters.Add(int64(s.SimplexIters))
	m.luRefactors.Add(int64(s.LURefactors))
	m.presolveFixes.Add(int64(s.PresolveFixes))
	m.incumbents.Add(int64(s.Incumbents))
	m.branched.Add(int64(s.Branched))
	m.prunedBound.Add(int64(s.PrunedBound))
	m.prunedInfeas.Add(int64(s.PrunedInfeas))
	m.integralLeaves.Add(int64(s.IntegralLeaves))
	m.lostSubtrees.Add(int64(s.LostSubtrees))
	m.prunedStale.Add(int64(s.PrunedStale))
}

// MetricsSnapshot is a point-in-time JSON-encodable copy of a Metrics.
type MetricsSnapshot struct {
	Solves           int64   `json:"solves"`
	SolvesOptimal    int64   `json:"solves_optimal"`
	SolvesFeasible   int64   `json:"solves_feasible"`
	SolvesInfeasible int64   `json:"solves_infeasible"`
	SolvesLimit      int64   `json:"solves_limit"`
	SolvesUnbounded  int64   `json:"solves_unbounded"`
	SolveWallSec     float64 `json:"solve_wall_sec"`
	Nodes            int64   `json:"nodes"`
	SimplexIters     int64   `json:"simplex_iters"`
	LURefactors      int64   `json:"lu_refactors"`
	PresolveFixes    int64   `json:"presolve_fixes"`
	Incumbents       int64   `json:"incumbents"`
	Branched         int64   `json:"branched"`
	PrunedBound      int64   `json:"pruned_bound"`
	PrunedInfeasible int64   `json:"pruned_infeasible"`
	IntegralLeaves   int64   `json:"integral_leaves"`
	LostSubtrees     int64   `json:"lost_subtrees"`
	PrunedStale      int64   `json:"pruned_stale"`
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Solves:           m.solves.Load(),
		SolvesOptimal:    m.solvesOptimal.Load(),
		SolvesFeasible:   m.solvesFeasible.Load(),
		SolvesInfeasible: m.solvesInfeas.Load(),
		SolvesLimit:      m.solvesLimit.Load(),
		SolvesUnbounded:  m.solvesUnbounded.Load(),
		SolveWallSec:     float64(m.wallMicros.Load()) / 1e6,
		Nodes:            m.nodes.Load(),
		SimplexIters:     m.simplexIters.Load(),
		LURefactors:      m.luRefactors.Load(),
		PresolveFixes:    m.presolveFixes.Load(),
		Incumbents:       m.incumbents.Load(),
		Branched:         m.branched.Load(),
		PrunedBound:      m.prunedBound.Load(),
		PrunedInfeasible: m.prunedInfeas.Load(),
		IntegralLeaves:   m.integralLeaves.Load(),
		LostSubtrees:     m.lostSubtrees.Load(),
		PrunedStale:      m.prunedStale.Load(),
	}
}

// WriteJSON writes the snapshot as indented JSON.
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Snapshot())
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4), suitable for a /metrics endpoint or a
// one-shot dump at process exit.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	s := m.Snapshot()
	type metric struct {
		name, help string
		labels     string
		val        float64
	}
	// Declarations are grouped by metric family so TYPE/HELP headers
	// are emitted once per family, as the format requires.
	families := []struct {
		name, help string
		series     []metric
	}{
		{"rulefit_solves_total", "Completed ilp.Solve calls by final status.", []metric{
			{labels: `{status="optimal"}`, val: float64(s.SolvesOptimal)},
			{labels: `{status="feasible"}`, val: float64(s.SolvesFeasible)},
			{labels: `{status="infeasible"}`, val: float64(s.SolvesInfeasible)},
			{labels: `{status="limit"}`, val: float64(s.SolvesLimit)},
			{labels: `{status="unbounded"}`, val: float64(s.SolvesUnbounded)},
		}},
		{"rulefit_solve_wall_seconds_total", "Wall-clock seconds spent inside ilp.Solve.", []metric{
			{val: s.SolveWallSec},
		}},
		{"rulefit_bnb_nodes_total", "Branch & bound nodes expanded.", []metric{
			{val: float64(s.Nodes)},
		}},
		{"rulefit_simplex_iters_total", "Simplex iterations across all node LPs.", []metric{
			{val: float64(s.SimplexIters)},
		}},
		{"rulefit_lu_refactorizations_total", "Basis LU refactorizations.", []metric{
			{val: float64(s.LURefactors)},
		}},
		{"rulefit_presolve_fixes_total", "Presolve bound tightenings.", []metric{
			{val: float64(s.PresolveFixes)},
		}},
		{"rulefit_incumbents_total", "Incumbent improvements found.", []metric{
			{val: float64(s.Incumbents)},
		}},
		{"rulefit_node_outcomes_total", "Expanded-node outcomes by reason.", []metric{
			{labels: `{outcome="branched"}`, val: float64(s.Branched)},
			{labels: `{outcome="pruned_bound"}`, val: float64(s.PrunedBound)},
			{labels: `{outcome="pruned_infeasible"}`, val: float64(s.PrunedInfeasible)},
			{labels: `{outcome="integral"}`, val: float64(s.IntegralLeaves)},
			{labels: `{outcome="lost"}`, val: float64(s.LostSubtrees)},
		}},
		{"rulefit_stale_skips_total", "Deque items discarded as bound-dominated before expansion.", []metric{
			{val: float64(s.PrunedStale)},
		}},
	}
	for _, f := range families {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", f.name, f.help, f.name); err != nil {
			return err
		}
		for _, series := range f.series {
			if _, err := fmt.Fprintf(w, "%s%s %g\n", f.name, series.labels, series.val); err != nil {
				return err
			}
		}
	}
	return nil
}
