package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is a process-wide registry of solver and request
// instruments. Unlike event sinks it is always on: internal/ilp records
// one SolveSample per solve and the placement daemon one RequestSample
// per request (a handful of atomic adds and histogram observations,
// nowhere near any hot path), so long-lived processes can expose
// cumulative solver effort and request latency distributions without
// enabling tracing. Default is the registry the solver records into and
// the -metrics / -pprof / daemon endpoints expose; tests should use an
// instance (`var m Metrics`) or call Reset to avoid cross-test bleed.
type Metrics struct {
	solves          atomic.Int64
	solvesOptimal   atomic.Int64
	solvesFeasible  atomic.Int64
	solvesInfeas    atomic.Int64
	solvesLimit     atomic.Int64
	solvesUnbounded atomic.Int64
	nodes           atomic.Int64
	simplexIters    atomic.Int64
	luRefactors     atomic.Int64
	presolveFixes   atomic.Int64
	incumbents      atomic.Int64
	branched        atomic.Int64
	prunedBound     atomic.Int64
	prunedInfeas    atomic.Int64
	integralLeaves  atomic.Int64
	lostSubtrees    atomic.Int64
	prunedStale     atomic.Int64
	wallMicros      atomic.Int64

	// Distribution instruments, fed by RecordSolve / RecordRequest.
	solveWallHist  Histogram
	solveNodesHist Histogram
	solveItersHist Histogram
	placedRules    Histogram

	// Request-level instruments (the placement daemon).
	requests Gauge // in-flight
	queue    Gauge // admitted but waiting for a solve slot
	byStatus LabeledCounter

	// phaseWall attributes request wall time to pipeline phases
	// (queue_wait, parse, encode, model_build, solve, extract), fed by
	// RecordPhase from the daemon's per-request span tree.
	phaseWall LabeledHistogram

	// phaseSlow keeps, per phase, the slowest observation's trace ID —
	// the exemplar that turns a p99 histogram reading into a concrete
	// trace to pull. Fed by RecordPhaseTrace.
	phaseSlowMu sync.Mutex
	phaseSlow   map[string]PhaseExemplar

	// Session-layer instruments (the daemon's stateful delta path).
	sessions    Gauge          // live placement sessions
	deltas      LabeledCounter // delta answers by solve path (identity/warm/cold)
	encodeCache LabeledCounter // encode-cache lookups by (kind, outcome)
}

// Default is the process-wide registry.
var Default = &Metrics{}

// Histogram layouts. Log-spaced so one layout spans sub-millisecond
// root-LP solves and multi-minute branch & bound runs.
var (
	// solveWallBuckets: 0.5ms .. ~131s.
	solveWallBuckets = HistogramOpts{Start: 0.0005, Factor: 2, Count: 18}
	// solveNodesBuckets: 1 .. ~524k nodes.
	solveNodesBuckets = HistogramOpts{Start: 1, Factor: 2, Count: 20}
	// solveItersBuckets: 8 .. ~4.2M simplex iterations.
	solveItersBuckets = HistogramOpts{Start: 8, Factor: 2, Count: 20}
	// placedRulesBuckets: 1 .. ~32k installed TCAM slots.
	placedRulesBuckets = HistogramOpts{Start: 1, Factor: 2, Count: 16}
	// phaseWallBuckets: 50µs .. ~26s, fine enough to separate
	// sub-millisecond parse/encode phases from multi-second solves.
	phaseWallBuckets = HistogramOpts{Start: 0.00005, Factor: 2, Count: 20}
)

// initHists sets the non-default layouts once, before first use. It is
// idempotent under the histogram locks (init only when unset).
func (m *Metrics) initHists() {
	m.solveWallHist.mu.Lock()
	if m.solveWallHist.bounds == nil {
		m.solveWallHist.init(solveWallBuckets)
	}
	m.solveWallHist.mu.Unlock()
	m.solveNodesHist.mu.Lock()
	if m.solveNodesHist.bounds == nil {
		m.solveNodesHist.init(solveNodesBuckets)
	}
	m.solveNodesHist.mu.Unlock()
	m.solveItersHist.mu.Lock()
	if m.solveItersHist.bounds == nil {
		m.solveItersHist.init(solveItersBuckets)
	}
	m.solveItersHist.mu.Unlock()
	m.placedRules.mu.Lock()
	if m.placedRules.bounds == nil {
		m.placedRules.init(placedRulesBuckets)
	}
	m.placedRules.mu.Unlock()
	m.phaseWall.mu.Lock()
	if !m.phaseWall.set {
		m.phaseWall.opts, m.phaseWall.set = phaseWallBuckets, true
	}
	m.phaseWall.mu.Unlock()
}

// RecordPhase attributes d of request wall time to one pipeline phase
// (queue_wait, parse, encode, model_build, solve, extract). The
// daemon records one observation per phase per request, read from the
// request's span tree after the solve.
func (m *Metrics) RecordPhase(phase string, d time.Duration) {
	m.initHists()
	m.phaseWall.Observe(phase, d.Seconds())
}

// PhaseExemplar is the slowest recorded observation of one phase: its
// trace ID, the observed seconds, and the histogram bucket bound the
// observation landed in — so the top bucket of a phase histogram points
// at a concrete trace to pull.
type PhaseExemplar struct {
	Phase   string  `json:"phase"`
	TraceID string  `json:"trace_id"`
	Seconds float64 `json:"seconds"`
	// BucketLE is the upper bound of the phase-histogram bucket this
	// observation fell into (+Inf encoded as 0 is impossible; math.Inf
	// is not JSON-encodable, so +Inf is reported as -1).
	BucketLE float64 `json:"bucket_le"`
}

// RecordPhaseTrace is RecordPhase plus exemplar tracking: if this is
// the slowest observation of the phase so far, its trace ID becomes
// the phase's exemplar.
func (m *Metrics) RecordPhaseTrace(phase string, d time.Duration, traceID string) {
	m.RecordPhase(phase, d)
	if traceID == "" {
		return
	}
	sec := d.Seconds()
	m.phaseSlowMu.Lock()
	if cur, ok := m.phaseSlow[phase]; !ok || sec > cur.Seconds {
		if m.phaseSlow == nil {
			m.phaseSlow = make(map[string]PhaseExemplar)
		}
		le := -1.0
		for _, b := range phaseWallBuckets.Bounds() {
			if sec <= b {
				le = b
				break
			}
		}
		m.phaseSlow[phase] = PhaseExemplar{Phase: phase, TraceID: traceID, Seconds: sec, BucketLE: le}
	}
	m.phaseSlowMu.Unlock()
}

// PhaseExemplars returns the per-phase slowest-observation exemplars,
// sorted by phase name.
func (m *Metrics) PhaseExemplars() []PhaseExemplar {
	m.phaseSlowMu.Lock()
	out := make([]PhaseExemplar, 0, len(m.phaseSlow))
	for _, ex := range m.phaseSlow { //lint:mapdet output is sorted by phase below
		out = append(out, ex)
	}
	m.phaseSlowMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Phase < out[j].Phase })
	return out
}

// SolveSample is the per-solve bulk update recorded into a Metrics.
type SolveSample struct {
	Status         string // "optimal", "feasible", "infeasible", "limit", "unbounded"
	Wall           time.Duration
	Nodes          int
	SimplexIters   int
	LURefactors    int
	PresolveFixes  int
	Incumbents     int
	Branched       int
	PrunedBound    int
	PrunedInfeas   int
	IntegralLeaves int
	LostSubtrees   int
	PrunedStale    int
}

// RecordSolve folds one finished solve into the counters and the
// solve-level histograms (latency, nodes, simplex iterations).
func (m *Metrics) RecordSolve(s SolveSample) {
	m.solves.Add(1)
	switch s.Status {
	case "optimal":
		m.solvesOptimal.Add(1)
	case "feasible":
		m.solvesFeasible.Add(1)
	case "infeasible":
		m.solvesInfeas.Add(1)
	case "limit":
		m.solvesLimit.Add(1)
	case "unbounded":
		m.solvesUnbounded.Add(1)
	}
	m.wallMicros.Add(s.Wall.Microseconds())
	m.nodes.Add(int64(s.Nodes))
	m.simplexIters.Add(int64(s.SimplexIters))
	m.luRefactors.Add(int64(s.LURefactors))
	m.presolveFixes.Add(int64(s.PresolveFixes))
	m.incumbents.Add(int64(s.Incumbents))
	m.branched.Add(int64(s.Branched))
	m.prunedBound.Add(int64(s.PrunedBound))
	m.prunedInfeas.Add(int64(s.PrunedInfeas))
	m.integralLeaves.Add(int64(s.IntegralLeaves))
	m.lostSubtrees.Add(int64(s.LostSubtrees))
	m.prunedStale.Add(int64(s.PrunedStale))
	m.initHists()
	m.solveWallHist.Observe(s.Wall.Seconds())
	m.solveNodesHist.Observe(float64(s.Nodes))
	m.solveItersHist.Observe(float64(s.SimplexIters))
}

// RequestSample is the per-request bulk update recorded by a serving
// frontend (cmd/ruleplaced). Status and StopReason label the request
// counter; InstalledRules feeds the placement-size histogram when the
// request produced a placement (Placed).
type RequestSample struct {
	// Status is the request outcome: a placement status ("optimal",
	// "feasible", "infeasible", "limit"), or a frontend outcome
	// ("shed", "bad_request", "error", "canceled").
	Status string
	// StopReason is the solver stop reason ("none" when the tree was
	// exhausted; "" for requests that never reached the solver).
	StopReason string
	// Placed marks samples whose InstalledRules is meaningful.
	Placed         bool
	InstalledRules int
}

// RecordRequest folds one finished request into the labeled request
// counter and the installed-rules histogram.
func (m *Metrics) RecordRequest(s RequestSample) {
	reason := s.StopReason
	if reason == "" {
		reason = "none"
	}
	m.byStatus.Add(1, s.Status, reason)
	if s.Placed {
		m.initHists()
		m.placedRules.Observe(float64(s.InstalledRules))
	}
}

// RecordDelta counts one session delta answer by the fallback-ladder
// level that served it ("identity", "warm", or "cold").
func (m *Metrics) RecordDelta(path string) {
	m.deltas.Add(1, path)
}

// RecordEncodeCache folds encode-cache lookup counts for one solve
// into the (kind, outcome) counter. kind is "policy" or "merge".
func (m *Metrics) RecordEncodeCache(kind string, hits, misses int64) {
	if hits > 0 {
		m.encodeCache.Add(hits, kind, "hit")
	}
	if misses > 0 {
		m.encodeCache.Add(misses, kind, "miss")
	}
}

// Sessions is the gauge of live placement sessions.
func (m *Metrics) Sessions() *Gauge { return &m.sessions }

// InFlight is the gauge of requests currently solving.
func (m *Metrics) InFlight() *Gauge { return &m.requests }

// QueueDepth is the gauge of requests admitted but waiting for a
// solve slot.
func (m *Metrics) QueueDepth() *Gauge { return &m.queue }

// Reset zeroes every instrument (counters, gauges, histograms, labeled
// series), so tests can use Default without cross-test bleed. Resetting
// a live registry mid-scrape is safe but produces a mixed snapshot;
// production processes have no reason to call it.
func (m *Metrics) Reset() {
	for _, c := range []*atomic.Int64{
		&m.solves, &m.solvesOptimal, &m.solvesFeasible, &m.solvesInfeas,
		&m.solvesLimit, &m.solvesUnbounded, &m.nodes, &m.simplexIters,
		&m.luRefactors, &m.presolveFixes, &m.incumbents, &m.branched,
		&m.prunedBound, &m.prunedInfeas, &m.integralLeaves,
		&m.lostSubtrees, &m.prunedStale, &m.wallMicros,
	} {
		c.Store(0)
	}
	m.solveWallHist.reset()
	m.solveNodesHist.reset()
	m.solveItersHist.reset()
	m.placedRules.reset()
	m.requests.Set(0)
	m.queue.Set(0)
	m.byStatus.reset()
	m.phaseWall.reset()
	m.phaseSlowMu.Lock()
	m.phaseSlow = nil
	m.phaseSlowMu.Unlock()
	m.sessions.Set(0)
	m.deltas.reset()
	m.encodeCache.reset()
}

// RequestCount is one (status, stop_reason) series of the request
// counter.
type RequestCount struct {
	Status     string `json:"status"`
	StopReason string `json:"stop_reason"`
	Count      int64  `json:"count"`
}

// DeltaCount is one solve-path series of the session delta counter.
type DeltaCount struct {
	Path  string `json:"path"`
	Count int64  `json:"count"`
}

// EncodeCacheCount is one (kind, outcome) series of the encode-cache
// lookup counter.
type EncodeCacheCount struct {
	Kind    string `json:"kind"`    // "policy" or "merge"
	Outcome string `json:"outcome"` // "hit" or "miss"
	Count   int64  `json:"count"`
}

// MetricsSnapshot is a point-in-time JSON-encodable copy of a Metrics.
type MetricsSnapshot struct {
	Solves           int64   `json:"solves"`
	SolvesOptimal    int64   `json:"solves_optimal"`
	SolvesFeasible   int64   `json:"solves_feasible"`
	SolvesInfeasible int64   `json:"solves_infeasible"`
	SolvesLimit      int64   `json:"solves_limit"`
	SolvesUnbounded  int64   `json:"solves_unbounded"`
	SolveWallSec     float64 `json:"solve_wall_sec"`
	Nodes            int64   `json:"nodes"`
	SimplexIters     int64   `json:"simplex_iters"`
	LURefactors      int64   `json:"lu_refactors"`
	PresolveFixes    int64   `json:"presolve_fixes"`
	Incumbents       int64   `json:"incumbents"`
	Branched         int64   `json:"branched"`
	PrunedBound      int64   `json:"pruned_bound"`
	PrunedInfeasible int64   `json:"pruned_infeasible"`
	IntegralLeaves   int64   `json:"integral_leaves"`
	LostSubtrees     int64   `json:"lost_subtrees"`
	PrunedStale      int64   `json:"pruned_stale"`

	InFlightRequests int64              `json:"in_flight_requests"`
	QueueDepth       int64              `json:"queue_depth"`
	SessionsActive   int64              `json:"sessions_active"`
	Deltas           []DeltaCount       `json:"session_deltas,omitempty"`
	EncodeCache      []EncodeCacheCount `json:"encode_cache,omitempty"`
	Requests         []RequestCount     `json:"requests,omitempty"`
	SolveWallHist    HistogramSnapshot  `json:"solve_wall_seconds_hist"`
	SolveNodesHist   HistogramSnapshot  `json:"solve_nodes_hist"`
	SolveItersHist   HistogramSnapshot  `json:"solve_simplex_iters_hist"`
	InstalledRules   HistogramSnapshot  `json:"installed_rules_hist"`
	// PhaseWall attributes request wall time per pipeline phase
	// (absent until the daemon records a request).
	PhaseWall []LabeledHist `json:"request_phase_seconds_hist,omitempty"`
	// PhaseExemplars names, per phase, the trace whose observation was
	// slowest — the concrete request behind the histogram's top bucket.
	PhaseExemplars []PhaseExemplar `json:"phase_exemplars,omitempty"`
}

// Snapshot copies the current instrument values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.initHists()
	s := MetricsSnapshot{
		Solves:           m.solves.Load(),
		SolvesOptimal:    m.solvesOptimal.Load(),
		SolvesFeasible:   m.solvesFeasible.Load(),
		SolvesInfeasible: m.solvesInfeas.Load(),
		SolvesLimit:      m.solvesLimit.Load(),
		SolvesUnbounded:  m.solvesUnbounded.Load(),
		SolveWallSec:     float64(m.wallMicros.Load()) / 1e6,
		Nodes:            m.nodes.Load(),
		SimplexIters:     m.simplexIters.Load(),
		LURefactors:      m.luRefactors.Load(),
		PresolveFixes:    m.presolveFixes.Load(),
		Incumbents:       m.incumbents.Load(),
		Branched:         m.branched.Load(),
		PrunedBound:      m.prunedBound.Load(),
		PrunedInfeasible: m.prunedInfeas.Load(),
		IntegralLeaves:   m.integralLeaves.Load(),
		LostSubtrees:     m.lostSubtrees.Load(),
		PrunedStale:      m.prunedStale.Load(),
		InFlightRequests: m.requests.Value(),
		QueueDepth:       m.queue.Value(),
		SolveWallHist:    m.solveWallHist.Snapshot(),
		SolveNodesHist:   m.solveNodesHist.Snapshot(),
		SolveItersHist:   m.solveItersHist.Snapshot(),
		InstalledRules:   m.placedRules.Snapshot(),
		PhaseWall:        m.phaseWall.Snapshot(),
		PhaseExemplars:   m.PhaseExemplars(),
	}
	s.SessionsActive = m.sessions.Value()
	for _, lc := range m.byStatus.Snapshot() {
		rc := RequestCount{Count: lc.Value}
		if len(lc.Labels) > 0 {
			rc.Status = lc.Labels[0]
		}
		if len(lc.Labels) > 1 {
			rc.StopReason = lc.Labels[1]
		}
		s.Requests = append(s.Requests, rc)
	}
	for _, lc := range m.deltas.Snapshot() {
		dc := DeltaCount{Count: lc.Value}
		if len(lc.Labels) > 0 {
			dc.Path = lc.Labels[0]
		}
		s.Deltas = append(s.Deltas, dc)
	}
	for _, lc := range m.encodeCache.Snapshot() {
		ec := EncodeCacheCount{Count: lc.Value}
		if len(lc.Labels) > 0 {
			ec.Kind = lc.Labels[0]
		}
		if len(lc.Labels) > 1 {
			ec.Outcome = lc.Labels[1]
		}
		s.EncodeCache = append(s.EncodeCache, ec)
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Snapshot())
}

// series is one exposition line: optional label set and a value.
type series struct {
	labels string
	val    float64
}

// family is one metric family: TYPE/HELP header plus its series.
type family struct {
	name, help, typ string
	series          []series
}

// promFloat renders a sample value; +Inf never appears as a value (only
// as a bucket label), so %g suffices.
func promFloat(v float64) string { return fmt.Sprintf("%g", v) }

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// histFamilies renders one histogram as its Prometheus series: one
// TYPE/HELP header on the base name, cumulative _bucket{le=...} series
// ending at le="+Inf", then _sum and _count.
func histFamilies(name, help string, h HistogramSnapshot) []family {
	var buckets []series
	for _, b := range h.Buckets {
		le := "+Inf"
		if !math.IsInf(b.LE, 1) {
			le = promFloat(b.LE)
		}
		buckets = append(buckets, series{
			labels: fmt.Sprintf(`{le="%s"}`, le),
			val:    float64(b.Count),
		})
	}
	// The exposition format carries a histogram as one TYPE'd family
	// whose samples are name_bucket/name_sum/name_count; the header-only
	// first entry emits the shared TYPE/HELP lines.
	return []family{
		{name: name, help: help, typ: "histogram"},
		{name: name + "_bucket", series: buckets},
		{name: name + "_sum", series: []series{{val: h.Sum}}},
		{name: name + "_count", series: []series{{val: float64(h.Count)}}},
	}
}

// labeledHistFamilies renders a histogram family whose members carry
// one extra label: per member, cumulative _bucket{label,le} series plus
// labeled _sum and _count. Members arrive sorted (LabeledHistogram
// snapshots sort), so the exposition order is deterministic.
func labeledHistFamilies(name, help, labelName string, members []LabeledHist) []family {
	fams := []family{{name: name, help: help, typ: "histogram"}}
	bucket := family{name: name + "_bucket"}
	sum := family{name: name + "_sum"}
	count := family{name: name + "_count"}
	for _, m := range members {
		lv := escapeLabel(m.Label)
		for _, b := range m.Hist.Buckets {
			le := "+Inf"
			if !math.IsInf(b.LE, 1) {
				le = promFloat(b.LE)
			}
			bucket.series = append(bucket.series, series{
				labels: fmt.Sprintf(`{%s="%s",le="%s"}`, labelName, lv, le),
				val:    float64(b.Count),
			})
		}
		sum.series = append(sum.series, series{
			labels: fmt.Sprintf(`{%s="%s"}`, labelName, lv), val: m.Hist.Sum,
		})
		count.series = append(count.series, series{
			labels: fmt.Sprintf(`{%s="%s"}`, labelName, lv), val: float64(m.Hist.Count),
		})
	}
	return append(fams, bucket, sum, count)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4), suitable for a /metrics endpoint or a
// one-shot dump at process exit. Histograms are emitted as cumulative
// _bucket{le=...} series ending at le="+Inf", plus _sum and _count.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	s := m.Snapshot()
	families := []family{
		{name: "rulefit_solves_total", help: "Completed ilp.Solve calls by final status.", typ: "counter", series: []series{
			{labels: `{status="optimal"}`, val: float64(s.SolvesOptimal)},
			{labels: `{status="feasible"}`, val: float64(s.SolvesFeasible)},
			{labels: `{status="infeasible"}`, val: float64(s.SolvesInfeasible)},
			{labels: `{status="limit"}`, val: float64(s.SolvesLimit)},
			{labels: `{status="unbounded"}`, val: float64(s.SolvesUnbounded)},
		}},
		{name: "rulefit_solve_wall_seconds_total", help: "Wall-clock seconds spent inside ilp.Solve.", typ: "counter", series: []series{
			{val: s.SolveWallSec},
		}},
		{name: "rulefit_bnb_nodes_total", help: "Branch & bound nodes expanded.", typ: "counter", series: []series{
			{val: float64(s.Nodes)},
		}},
		{name: "rulefit_simplex_iters_total", help: "Simplex iterations across all node LPs.", typ: "counter", series: []series{
			{val: float64(s.SimplexIters)},
		}},
		{name: "rulefit_lu_refactorizations_total", help: "Basis LU refactorizations.", typ: "counter", series: []series{
			{val: float64(s.LURefactors)},
		}},
		{name: "rulefit_presolve_fixes_total", help: "Presolve bound tightenings.", typ: "counter", series: []series{
			{val: float64(s.PresolveFixes)},
		}},
		{name: "rulefit_incumbents_total", help: "Incumbent improvements found.", typ: "counter", series: []series{
			{val: float64(s.Incumbents)},
		}},
		{name: "rulefit_node_outcomes_total", help: "Expanded-node outcomes by reason.", typ: "counter", series: []series{
			{labels: `{outcome="branched"}`, val: float64(s.Branched)},
			{labels: `{outcome="pruned_bound"}`, val: float64(s.PrunedBound)},
			{labels: `{outcome="pruned_infeasible"}`, val: float64(s.PrunedInfeasible)},
			{labels: `{outcome="integral"}`, val: float64(s.IntegralLeaves)},
			{labels: `{outcome="lost"}`, val: float64(s.LostSubtrees)},
		}},
		{name: "rulefit_stale_skips_total", help: "Deque items discarded as bound-dominated before expansion.", typ: "counter", series: []series{
			{val: float64(s.PrunedStale)},
		}},
		{name: "rulefit_in_flight_requests", help: "Placement requests currently solving.", typ: "gauge", series: []series{
			{val: float64(s.InFlightRequests)},
		}},
		{name: "rulefit_request_queue_depth", help: "Placement requests admitted but waiting for a solve slot.", typ: "gauge", series: []series{
			{val: float64(s.QueueDepth)},
		}},
		{name: "rulefit_sessions_active", help: "Live placement sessions held by the stateful delta layer.", typ: "gauge", series: []series{
			{val: float64(s.SessionsActive)},
		}},
	}
	deltaFamily := family{name: "rulefit_session_deltas_total", help: "Session delta answers by fallback-ladder solve path.", typ: "counter"}
	for _, dc := range s.Deltas {
		deltaFamily.series = append(deltaFamily.series, series{
			labels: fmt.Sprintf(`{path="%s"}`, escapeLabel(dc.Path)),
			val:    float64(dc.Count),
		})
	}
	families = append(families, deltaFamily)
	cacheFamily := family{name: "rulefit_encode_cache_total", help: "Encode-cache lookups by artifact kind and outcome.", typ: "counter"}
	for _, ec := range s.EncodeCache {
		cacheFamily.series = append(cacheFamily.series, series{
			labels: fmt.Sprintf(`{kind="%s",outcome="%s"}`, escapeLabel(ec.Kind), escapeLabel(ec.Outcome)),
			val:    float64(ec.Count),
		})
	}
	families = append(families, cacheFamily)
	reqFamily := family{name: "rulefit_requests_total", help: "Placement requests by outcome and solver stop reason.", typ: "counter"}
	for _, rc := range s.Requests {
		reqFamily.series = append(reqFamily.series, series{
			labels: fmt.Sprintf(`{status="%s",stop_reason="%s"}`, escapeLabel(rc.Status), escapeLabel(rc.StopReason)),
			val:    float64(rc.Count),
		})
	}
	families = append(families, reqFamily)
	families = append(families, histFamilies("rulefit_solve_wall_seconds", "Distribution of per-solve wall time (seconds).", s.SolveWallHist)...)
	families = append(families, histFamilies("rulefit_solve_nodes", "Distribution of branch & bound nodes per solve.", s.SolveNodesHist)...)
	families = append(families, histFamilies("rulefit_solve_simplex_iters", "Distribution of simplex iterations per solve.", s.SolveItersHist)...)
	families = append(families, histFamilies("rulefit_installed_rules", "Distribution of installed TCAM slots per placement.", s.InstalledRules)...)
	if len(s.PhaseWall) > 0 {
		families = append(families, labeledHistFamilies("rulefit_request_phase_seconds",
			"Request wall time attributed to pipeline phases.", "phase", s.PhaseWall)...)
	}

	for _, f := range families {
		if f.typ != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
				return err
			}
		}
		for _, sr := range f.series {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, sr.labels, promFloat(sr.val)); err != nil {
				return err
			}
		}
	}
	return nil
}
