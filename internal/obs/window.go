package obs

import (
	"math"
	"sync"
)

// WindowOpts configures a rolling time-windowed histogram: a ring of
// Intervals interval histograms, each with the Buckets layout, merged
// on demand into one sliding-window snapshot. Rotation is driven by
// the caller (one Rotate per measurement interval), so the window
// itself never reads a clock and window contents are a pure function
// of the Observe/Rotate call sequence. The zero value is usable and
// lazily adopts the package default layout with 5 intervals;
// production call sites should state both explicitly (the optzero
// analyzer flags empty literals).
type WindowOpts struct {
	// Buckets is the per-interval histogram layout.
	Buckets HistogramOpts
	// Intervals is the ring size: how many rotations an observation
	// stays visible in the sliding window (default 5).
	Intervals int
}

// defaults fills unset fields.
func (o WindowOpts) defaults() WindowOpts {
	if o.Intervals <= 0 {
		o.Intervals = 5
	}
	//lint:sharedmut operates on a value-receiver copy; cannot race
	o.Buckets = o.Buckets.defaults()
	return o
}

// Window is a sliding-window distribution instrument: observations land
// in the current interval histogram (and a cumulative total), Rotate
// advances the ring dropping the oldest interval, and Snapshot merges
// the live intervals into one windowed distribution for percentile
// readouts (p50/p90/p99/p999 over the last N intervals). The zero
// value is usable and lazily adopts the default WindowOpts layout.
type Window struct {
	mu    sync.Mutex
	opts  WindowOpts
	ring  []*Histogram
	cur   int
	total Histogram
}

// NewWindow returns a window with the given ring and bucket layout.
func NewWindow(opts WindowOpts) *Window {
	w := &Window{}
	w.init(opts)
	return w
}

// init sets the layout. Caller holds mu (or has exclusive access).
func (w *Window) init(opts WindowOpts) {
	//lint:sharedmut caller holds mu or has exclusive access (see doc)
	w.opts = opts.defaults()
	//lint:sharedmut caller holds mu or has exclusive access (see doc)
	w.ring = make([]*Histogram, w.opts.Intervals)
	for i := range w.ring {
		w.ring[i] = NewHistogram(w.opts.Buckets)
	}
	w.total.mu.Lock()
	w.total.init(w.opts.Buckets)
	w.total.mu.Unlock()
}

// Observe records one value into the current interval and the
// cumulative total.
func (w *Window) Observe(v float64) {
	w.mu.Lock()
	if w.ring == nil {
		//lint:optzero zero-value windows lazily adopt the documented default layout
		w.init(WindowOpts{})
	}
	cur := w.ring[w.cur]
	w.mu.Unlock()
	cur.Observe(v)
	w.total.Observe(v)
}

// Rotate advances the window by one interval: the oldest interval's
// observations leave the sliding window. Call once per measurement
// interval from the harness's ticker.
func (w *Window) Rotate() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ring == nil {
		//lint:optzero zero-value windows lazily adopt the documented default layout
		w.init(WindowOpts{})
	}
	w.cur = (w.cur + 1) % len(w.ring)
	w.ring[w.cur].reset()
}

// Snapshot merges the live intervals into one sliding-window
// distribution. The merge is exact: identical layouts sum bucket by
// bucket, so the merged snapshot equals a histogram of the union of
// the windowed observations.
func (w *Window) Snapshot() HistogramSnapshot {
	w.mu.Lock()
	if w.ring == nil {
		//lint:optzero zero-value windows lazily adopt the documented default layout
		w.init(WindowOpts{})
	}
	ring := append([]*Histogram(nil), w.ring...)
	w.mu.Unlock()
	out := ring[0].Snapshot()
	for _, h := range ring[1:] {
		merged, err := MergeHistogramSnapshots(out, h.Snapshot())
		if err != nil {
			// Unreachable: every ring entry shares one layout.
			continue
		}
		out = merged
	}
	return out
}

// Total returns the cumulative distribution since the window was
// created (rotation never drops it).
func (w *Window) Total() HistogramSnapshot {
	w.mu.Lock()
	if w.ring == nil {
		//lint:optzero zero-value windows lazily adopt the documented default layout
		w.init(WindowOpts{})
	}
	w.mu.Unlock()
	return w.total.Snapshot()
}

// MergeHistogramSnapshots merges two snapshots taken from histograms
// with identical bucket layouts: cumulative counts and sums add. It
// errors when the layouts differ (merging those would silently
// misattribute observations).
func MergeHistogramSnapshots(a, b HistogramSnapshot) (HistogramSnapshot, error) {
	if len(a.Buckets) != len(b.Buckets) {
		return HistogramSnapshot{}, errLayoutMismatch
	}
	out := HistogramSnapshot{
		Buckets: make([]BucketCount, len(a.Buckets)),
		Sum:     a.Sum + b.Sum,
		Count:   a.Count + b.Count,
	}
	for i := range a.Buckets {
		if !sameBound(a.Buckets[i].LE, b.Buckets[i].LE) {
			return HistogramSnapshot{}, errLayoutMismatch
		}
		out.Buckets[i] = BucketCount{
			LE:    a.Buckets[i].LE,
			Count: a.Buckets[i].Count + b.Buckets[i].Count,
		}
	}
	return out, nil
}

// sameBound compares bucket upper bounds, treating +Inf as equal to
// +Inf (IEEE comparison already does; this spells the intent).
func sameBound(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	//lint:exactfloat bucket bounds are copied, never computed, so exact compare is safe
	return a == b
}

// errLayoutMismatch reports a merge across incompatible bucket layouts.
var errLayoutMismatch = layoutMismatchError{}

type layoutMismatchError struct{}

func (layoutMismatchError) Error() string {
	return "obs: cannot merge histogram snapshots with different bucket layouts"
}

// Quantile estimates the q-quantile (q in [0, 1]) from the cumulative
// snapshot by linear interpolation inside the first bucket whose
// cumulative count reaches q*Count. Values in the +Inf bucket clamp to
// the largest finite bound. Returns 0 for an empty snapshot. The
// estimate is deterministic: a pure function of the snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	lower := 0.0
	var below uint64
	for _, b := range s.Buckets {
		if float64(b.Count) >= rank {
			if math.IsInf(b.LE, 1) {
				// Observations beyond the finite layout: report the
				// largest finite bound rather than inventing a value.
				return lower
			}
			in := float64(b.Count - below)
			if in <= 0 {
				return b.LE
			}
			frac := (rank - float64(below)) / in
			return lower + frac*(b.LE-lower)
		}
		if !math.IsInf(b.LE, 1) {
			lower = b.LE
		}
		below = b.Count
	}
	return lower
}
