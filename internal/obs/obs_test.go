package obs

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderAndMulti(t *testing.T) {
	var a, b Recorder
	s := Multi(nil, &a, nil, &b)
	if s == nil {
		t.Fatal("Multi with live sinks returned nil")
	}
	e := Event{Kind: KindNode, Node: 1, Outcome: OutcomeBranched, Bound: 2.5}
	s.Event(e)
	if got := a.Events(); len(got) != 1 || got[0] != e {
		t.Fatalf("recorder a got %v", got)
	}
	if got := b.Events(); len(got) != 1 || got[0] != e {
		t.Fatalf("recorder b got %v", got)
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi of all-nil sinks should be nil so the solver fast path applies")
	}
	if Multi(&a) != Sink(&a) {
		t.Fatal("Multi of one sink should return it unwrapped")
	}
}

func TestNormalizeZeroesTimingOnly(t *testing.T) {
	e := Event{Kind: KindNode, Node: 3, Bound: 1.5, TimeMS: 12.5}
	n := e.Normalize()
	if n.TimeMS != 0 {
		t.Fatal("Normalize kept TimeMS")
	}
	e.TimeMS = 0
	if n != e {
		t.Fatalf("Normalize changed non-timing fields: %+v vs %+v", n, e)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	events := []Event{
		{Kind: KindPresolve, Fixes: 4, Gap: -1},
		{Kind: KindNode, Node: 1, Depth: 0, Outcome: OutcomeBranched, Bound: 3.25, BranchVar: 2, Frac: 0.5, Iters: 7, Gap: -1},
		{Kind: KindDone, Node: 5, Outcome: "optimal", Reason: "none", Incumbent: 4, BestBound: 4, Gap: 0, TimeMS: 1.25},
	}
	for _, e := range events {
		w.Event(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, events)
	}
}

func TestJSONLWriterConcurrentLinesIntact(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	var wg sync.WaitGroup
	const writers, per = 8, 50
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				w.Event(Event{Kind: KindNode, Node: g*per + i + 1})
			}
		}(g)
	}
	wg.Wait()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("interleaved write corrupted a line: %v", err)
	}
	if len(got) != writers*per {
		t.Fatalf("got %d events, want %d", len(got), writers*per)
	}
}

func TestSpanTreeAndNilSafety(t *testing.T) {
	tr := NewTrace()
	root := tr.Span("place")
	child := root.Child("solve")
	child.SetCount("nodes", 42)
	child.End()
	root.End()
	root.End() // second End keeps the first measurement

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name() != "place" {
		t.Fatalf("roots = %v", roots)
	}
	kids := roots[0].Children()
	if len(kids) != 1 || kids[0].Name() != "solve" {
		t.Fatalf("children = %v", kids)
	}
	if v, ok := kids[0].Counter("nodes"); !ok || v != 42 {
		t.Fatalf("counter nodes = %d, %v", v, ok)
	}
	if !strings.Contains(tr.Render(), "nodes=42") {
		t.Fatalf("render missing counter:\n%s", tr.Render())
	}

	// The nil trace and nil span must be safe no-ops everywhere.
	var nilTrace *Trace
	sp := nilTrace.Span("x")
	if sp != nil {
		t.Fatal("nil trace produced a live span")
	}
	sp.Child("y").SetCount("n", 1)
	sp.End()
	if sp.Wall() != 0 || sp.AllocBytes() != 0 || sp.Name() != "" || sp.Children() != nil {
		t.Fatal("nil span accessors not zero")
	}
	if _, ok := sp.Counter("n"); ok {
		t.Fatal("nil span has a counter")
	}
	if nilTrace.Render() != "" || nilTrace.Roots() != nil {
		t.Fatal("nil trace accessors not zero")
	}
}

func TestSpanMeasuresWall(t *testing.T) {
	tr := NewTrace()
	sp := tr.Span("sleep")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if sp.Wall() < time.Millisecond {
		t.Fatalf("wall = %v, want >= 1ms", sp.Wall())
	}
}

func TestMetricsRecordAndEncoders(t *testing.T) {
	var m Metrics
	m.RecordSolve(SolveSample{
		Status: "optimal", Wall: 1500 * time.Microsecond,
		Nodes: 5, SimplexIters: 40, LURefactors: 2, PresolveFixes: 3,
		Incumbents: 1, Branched: 2, PrunedBound: 1, PrunedInfeas: 1,
		IntegralLeaves: 1, LostSubtrees: 0, PrunedStale: 1,
	})
	m.RecordSolve(SolveSample{Status: "limit", Nodes: 10, Branched: 10})
	s := m.Snapshot()
	if s.Solves != 2 || s.SolvesOptimal != 1 || s.SolvesLimit != 1 {
		t.Fatalf("solve counts wrong: %+v", s)
	}
	if s.Nodes != 15 || s.Branched != 12 || s.PrunedStale != 1 {
		t.Fatalf("node counts wrong: %+v", s)
	}
	if s.SolveWallSec < 0.001 || s.SolveWallSec > 0.01 {
		t.Fatalf("wall = %v", s.SolveWallSec)
	}

	var prom bytes.Buffer
	if err := m.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	for _, want := range []string{
		"# TYPE rulefit_solves_total counter",
		`rulefit_solves_total{status="optimal"} 1`,
		`rulefit_node_outcomes_total{outcome="branched"} 12`,
		"rulefit_bnb_nodes_total 15",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}

	var js bytes.Buffer
	if err := m.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"nodes": 15`) {
		t.Fatalf("json output missing nodes:\n%s", js.String())
	}
}
