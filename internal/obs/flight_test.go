package obs

import (
	"bytes"
	"sync"
	"testing"
)

func TestFlightRingWraparound(t *testing.T) {
	r := NewFlightRecorder(FlightOpts{Size: 4})
	for i := 1; i <= 10; i++ {
		r.Event(Event{Kind: KindNode, Node: i})
	}
	d := r.Dump()
	if len(d.Events) != 4 {
		t.Fatalf("retained %d events, want ring size 4", len(d.Events))
	}
	// Oldest first: nodes 7, 8, 9, 10.
	for i, e := range d.Events {
		if want := 7 + i; e.Node != want {
			t.Fatalf("event %d has node %d, want %d (ring not oldest-first)", i, e.Node, want)
		}
	}
	if d.Seen != 10 {
		t.Fatalf("Seen = %d, want 10", d.Seen)
	}
	if d.Dropped != 0 || d.Sampled != 0 {
		t.Fatalf("unexpected loss accounting: dropped=%d sampled=%d", d.Dropped, d.Sampled)
	}
}

func TestFlightRingPartialFill(t *testing.T) {
	r := NewFlightRecorder(FlightOpts{Size: 8})
	for i := 1; i <= 3; i++ {
		r.Event(Event{Kind: KindNode, Node: i})
	}
	d := r.Dump()
	if len(d.Events) != 3 {
		t.Fatalf("retained %d events before wrap, want 3", len(d.Events))
	}
	for i, e := range d.Events {
		if e.Node != i+1 {
			t.Fatalf("event %d has node %d, want %d", i, e.Node, i+1)
		}
	}
}

func TestFlightRingDroppedUnderContention(t *testing.T) {
	r := NewFlightRecorder(FlightOpts{Size: 4})
	r.Event(Event{Kind: KindNode, Node: 1})
	// Hold the ring lock as Dump would; every offer must drop, not block.
	r.mu.Lock()
	for i := 0; i < 5; i++ {
		r.Event(Event{Kind: KindNode, Node: 100 + i})
	}
	r.mu.Unlock()
	d := r.Dump()
	if d.Dropped != 5 {
		t.Fatalf("Dropped = %d, want 5", d.Dropped)
	}
	if d.Seen != 6 {
		t.Fatalf("Seen = %d, want 6", d.Seen)
	}
	if len(d.Events) != 1 || d.Events[0].Node != 1 {
		t.Fatalf("ring contents perturbed by dropped events: %+v", d.Events)
	}
}

func TestFlightRingSampleHot(t *testing.T) {
	r := NewFlightRecorder(FlightOpts{Size: 64, SampleHot: 4})
	for i := 1; i <= 16; i++ {
		r.Event(Event{Kind: KindNode, Node: i})
	}
	// Low-volume kinds are never decimated.
	r.Event(Event{Kind: KindIncumbent, Node: 17})
	r.Event(Event{Kind: KindDone, Node: 18})
	d := r.Dump()
	if d.Sampled != 12 {
		t.Fatalf("Sampled = %d, want 12 (16 hot events at 1-in-4)", d.Sampled)
	}
	var nodes, other int
	for _, e := range d.Events {
		if e.Kind == KindNode {
			nodes++
		} else {
			other++
		}
	}
	if nodes != 4 {
		t.Fatalf("retained %d node events, want 4", nodes)
	}
	if other != 2 {
		t.Fatalf("retained %d low-volume events, want 2 (incumbent+done always kept)", other)
	}
}

// TestFlightRingDumpWhileRecording exercises the Dump-vs-Event race the
// recorder is designed around: under -race this must be clean, and the
// loss accounting must balance — every offered event is either retained,
// overwritten (ring), dropped, or sampled; none vanish unaccounted.
func TestFlightRingDumpWhileRecording(t *testing.T) {
	r := NewFlightRecorder(FlightOpts{Size: 32})
	const writers, perWriter = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Event(Event{Kind: KindNode, Node: w*perWriter + i})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			d := r.Dump()
			if uint64(len(d.Events)) > d.Seen {
				t.Errorf("dump retained %d events but only %d seen", len(d.Events), d.Seen)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	d := r.Dump()
	if d.Seen != writers*perWriter {
		t.Fatalf("Seen = %d, want %d", d.Seen, writers*perWriter)
	}
	if d.Dropped+d.Sampled > d.Seen {
		t.Fatalf("loss accounting exceeds offers: dropped=%d sampled=%d seen=%d",
			d.Dropped, d.Sampled, d.Seen)
	}
}

func TestFlightDumpWriteJSONL(t *testing.T) {
	r := NewFlightRecorder(FlightOpts{Size: 4})
	for i := 1; i <= 6; i++ {
		r.Event(Event{Kind: KindNode, Node: i, Gap: -1, BranchVar: -1})
	}
	var buf bytes.Buffer
	if err := r.Dump().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("read %d lines, want 5 (meta header + 4 retained)", len(got))
	}
	meta := got[0]
	if meta.Kind != KindFlightMeta {
		t.Fatalf("first line kind %q, want %q", meta.Kind, KindFlightMeta)
	}
	if meta.Node != 4 || meta.Seen != 6 {
		t.Fatalf("meta retained=%d seen=%d, want 4/6", meta.Node, meta.Seen)
	}
	for i, e := range got[1:] {
		if want := 3 + i; e.Node != want {
			t.Fatalf("retained event %d has node %d, want %d", i, e.Node, want)
		}
	}
}

func TestFlightOptsDefaults(t *testing.T) {
	r := NewFlightRecorder(FlightOpts{Size: -1, SampleHot: 0}) //lint:optzero defaults under test
	if len(r.ring) != 4096 {
		t.Fatalf("default ring size %d, want 4096", len(r.ring))
	}
	if r.opts.SampleHot != 1 {
		t.Fatalf("default SampleHot %d, want 1", r.opts.SampleHot)
	}
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.Publish(ProgressSnapshot{Phase: "search"}) // must not panic
	if s, ok := p.Snapshot(); ok || s != (ProgressSnapshot{}) {
		t.Fatalf("nil Progress returned a snapshot: %+v", s)
	}
}

func TestProgressPublishSnapshot(t *testing.T) {
	var p Progress
	if _, ok := p.Snapshot(); ok {
		t.Fatal("fresh Progress reported a snapshot before any Publish")
	}
	p.Publish(ProgressSnapshot{Phase: "root_lp", Nodes: 0, Gap: -1})
	p.Publish(ProgressSnapshot{Phase: "search", Nodes: 12, Incumbent: 7, HaveIncumbent: true, Gap: 0.25})
	s, ok := p.Snapshot()
	if !ok {
		t.Fatal("Snapshot reported none after Publish")
	}
	if s.Phase != "search" || s.Nodes != 12 || !s.HaveIncumbent || s.Gap != 0.25 {
		t.Fatalf("snapshot did not reflect latest publish: %+v", s)
	}
}

// TestProgressConcurrentReaders hammers one writer against many readers;
// under -race the atomic pointer cell must be clean and every observed
// snapshot internally consistent (Nodes never exceeds the published max).
func TestProgressConcurrentReaders(t *testing.T) {
	var p Progress
	const max = 1000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i <= max; i++ {
			p.Publish(ProgressSnapshot{Phase: "search", Nodes: i})
		}
	}()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if s, ok := p.Snapshot(); ok && (s.Nodes < 0 || s.Nodes > max) {
					t.Errorf("torn snapshot: %+v", s)
					return
				}
			}
		}()
	}
	<-done
	wg.Wait()
}
