package obs

import (
	"io"
	"sync"
	"sync/atomic"
)

// FlightRecorder is an always-on Sink holding the most recent events in
// a fixed-size ring — the solver's black box. Unlike the JSONL trace
// (which must be enabled before a run and records everything), the
// recorder is cheap enough to leave attached in production: recording
// one event is a TryLock, a struct copy into a preallocated slot, and
// two counter bumps. When the lock is contended — a Dump in progress,
// or concurrent solves sharing one recorder — the event is dropped
// rather than waited for, and the drop is counted. The recorder
// therefore degrades (loses events) under pressure instead of adding
// latency, which is the right trade for a diagnostic tail buffer.
//
// The solver's contract is unchanged: the recorder is a Sink, nothing
// is read back, and a solve with a recorder attached returns bytes
// identical to one without (TestPlaceFlightRecorderDoesNotPerturb).
type FlightRecorder struct {
	mu   sync.Mutex
	ring []Event
	next int    // ring index of the next write
	wrap bool   // ring has wrapped at least once
	hot  uint64 // node/skip events seen, for SampleHot decimation

	opts FlightOpts

	seen    atomic.Uint64 // events offered to the recorder
	dropped atomic.Uint64 // events lost to lock contention
	sampled atomic.Uint64 // hot events intentionally decimated
}

// FlightOpts sizes a FlightRecorder. The zero value is NOT a valid
// production configuration — state Size explicitly (the optzero
// analyzer flags literals that leave it unset) so the retention window
// is a deliberate choice; NewFlightRecorder applies defaults for tests.
type FlightOpts struct {
	// Size is the ring capacity in events (default 4096). The ring keeps
	// the most recent Size events; older ones are overwritten.
	Size int
	// SampleHot, when > 1, records only every SampleHot-th high-volume
	// event (node expansions and stale skips), stretching the ring's
	// time window on deep searches. Low-volume events (incumbents, gap
	// points, done) are always recorded. Default 1: record everything.
	SampleHot int
}

// defaults fills unset fields.
func (o FlightOpts) defaults() FlightOpts {
	if o.Size <= 0 {
		o.Size = 4096
	}
	if o.SampleHot < 1 {
		o.SampleHot = 1
	}
	return o
}

// NewFlightRecorder returns a recorder with the given ring size.
func NewFlightRecorder(opts FlightOpts) *FlightRecorder {
	opts = opts.defaults()
	return &FlightRecorder{ring: make([]Event, opts.Size), opts: opts}
}

// Event records one event, or drops it if the ring is contended.
func (r *FlightRecorder) Event(e Event) {
	r.seen.Add(1)
	if !r.mu.TryLock() {
		r.dropped.Add(1)
		return
	}
	if r.opts.SampleHot > 1 && (e.Kind == KindNode || e.Kind == KindSkip) {
		r.hot++
		if r.hot%uint64(r.opts.SampleHot) != 0 {
			r.mu.Unlock()
			r.sampled.Add(1)
			return
		}
	}
	r.ring[r.next] = e
	r.next++ //lint:sharedmut r.mu is held: the TryLock above succeeded or we returned
	if r.next == len(r.ring) {
		r.next = 0 //lint:sharedmut r.mu is held: the TryLock above succeeded or we returned
		r.wrap = true
	}
	r.mu.Unlock()
}

// FlightDump is a point-in-time copy of the recorder's contents plus
// its loss accounting. Seen >= len(Events): the difference is events
// overwritten by the ring, dropped under contention, or decimated by
// SampleHot.
type FlightDump struct {
	// Events holds the retained events, oldest first.
	Events []Event
	// Seen counts every event offered to the recorder since creation.
	Seen uint64
	// Dropped counts events lost to lock contention (a Dump in
	// progress, or concurrent solves sharing the recorder).
	Dropped uint64
	// Sampled counts hot events decimated by FlightOpts.SampleHot.
	Sampled uint64
}

// Dump snapshots the ring. It takes the lock (blocking), so concurrent
// Event calls during the copy count as dropped rather than stalling a
// solve.
func (r *FlightRecorder) Dump() FlightDump {
	r.mu.Lock()
	d := FlightDump{
		Seen:    r.seen.Load(),
		Dropped: r.dropped.Load(),
		Sampled: r.sampled.Load(),
	}
	if r.wrap {
		d.Events = make([]Event, 0, len(r.ring))
		d.Events = append(d.Events, r.ring[r.next:]...)
		d.Events = append(d.Events, r.ring[:r.next]...)
	} else {
		d.Events = append([]Event(nil), r.ring[:r.next]...)
	}
	r.mu.Unlock()
	return d
}

// WriteJSONL writes the dump as a JSONL stream readable by
// obs.ReadEvents and summarizable by obs/traceview: a flight_meta
// header line carrying the loss accounting, then the retained events
// oldest first. Partial by construction — the ring holds a tail of the
// stream — so traceview treats the meta line as permission to relax
// its completeness checks.
func (d FlightDump) WriteJSONL(w io.Writer) error {
	jw := NewJSONLWriter(w)
	jw.Event(Event{Kind: KindFlightMeta, Node: len(d.Events),
		Seen: int(d.Seen), Dropped: int(d.Dropped), Sampled: int(d.Sampled),
		BranchVar: -1, Gap: -1})
	for _, e := range d.Events {
		jw.Event(e)
	}
	return jw.Flush()
}
