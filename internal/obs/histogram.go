package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// HistogramOpts configures a log-spaced bucket layout: bucket i covers
// values up to Start*Factor^i, for i in [0, Count), with a final
// implicit +Inf bucket. The zero value selects the package default
// layout (Start 0.001, Factor 2, Count 16); production call sites
// should state their layout explicitly (the optzero analyzer flags
// empty literals).
type HistogramOpts struct {
	// Start is the upper bound of the first bucket (must be > 0).
	Start float64
	// Factor is the ratio between consecutive bucket bounds (must be > 1).
	Factor float64
	// Count is the number of finite buckets (+Inf is always added).
	Count int
}

// defaults fills unset fields with the package default layout.
func (o HistogramOpts) defaults() HistogramOpts {
	if o.Start <= 0 {
		o.Start = 0.001
	}
	if o.Factor <= 1 {
		o.Factor = 2
	}
	if o.Count <= 0 {
		o.Count = 16
	}
	return o
}

// Bounds materializes the finite bucket upper bounds.
func (o HistogramOpts) Bounds() []float64 {
	o = o.defaults()
	bounds := make([]float64, o.Count)
	b := o.Start
	for i := range bounds {
		bounds[i] = b
		b *= o.Factor
	}
	return bounds
}

// Histogram is a fixed-bucket distribution instrument. Buckets are
// log-spaced per HistogramOpts; observations are O(log buckets) and
// mutex-guarded (instruments record once per solve or request, nowhere
// near a hot path). The zero value is usable and lazily adopts the
// default layout on first use; NewHistogram picks an explicit layout.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // per-bucket, len(bounds)+1 (last is +Inf)
	sum    float64
	count  uint64
}

// NewHistogram returns a histogram with the given bucket layout.
func NewHistogram(opts HistogramOpts) *Histogram {
	h := &Histogram{}
	h.init(opts)
	return h
}

// init sets the layout. Caller holds mu (or has exclusive access).
func (h *Histogram) init(opts HistogramOpts) {
	//lint:sharedmut caller holds mu or has exclusive access (see doc)
	h.bounds = opts.Bounds()
	//lint:sharedmut caller holds mu or has exclusive access (see doc)
	h.counts = make([]uint64, len(h.bounds)+1)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.bounds == nil {
		//lint:optzero zero-value histograms lazily adopt the documented default layout
		h.init(HistogramOpts{})
	}
	// First bucket whose upper bound admits v; +Inf bucket otherwise.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// reset zeroes all observations, keeping the layout.
func (h *Histogram) reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.sum, h.count = 0, 0
}

// HistogramSnapshot is a point-in-time copy of a histogram in
// cumulative (Prometheus) form: Buckets[i].Count counts observations
// with value <= Buckets[i].LE, and the final bucket is +Inf with
// Count == the total observation count.
type HistogramSnapshot struct {
	Buckets []BucketCount `json:"buckets"`
	Sum     float64       `json:"sum"`
	Count   uint64        `json:"count"`
}

// BucketCount is one cumulative histogram bucket. LE is
// math.Inf(1) for the final bucket (serialized as "+Inf" by the
// Prometheus encoder; the JSON encoder uses the string form too).
type BucketCount struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// MarshalJSON renders LE as the string "+Inf" for the final bucket
// (float +Inf is not representable in JSON).
func (b BucketCount) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.LE, 1) {
		return json.Marshal(struct {
			LE    string `json:"le"`
			Count uint64 `json:"count"`
		}{"+Inf", b.Count})
	}
	return json.Marshal(struct {
		LE    float64 `json:"le"`
		Count uint64  `json:"count"`
	}{b.LE, b.Count})
}

// UnmarshalJSON parses the bucket form written by MarshalJSON.
func (b *BucketCount) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    json.RawMessage `json:"le"`
		Count uint64          `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	if string(raw.LE) == `"+Inf"` {
		b.LE = math.Inf(1)
		return nil
	}
	return json.Unmarshal(raw.LE, &b.LE)
}

// Snapshot copies the histogram in cumulative form.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.bounds == nil {
		//lint:optzero zero-value histograms lazily adopt the documented default layout
		h.init(HistogramOpts{})
	}
	s := HistogramSnapshot{
		Buckets: make([]BucketCount, len(h.counts)),
		Sum:     h.sum,
		Count:   h.count,
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets[i] = BucketCount{LE: le, Count: cum}
	}
	return s
}

// Gauge is an instantaneous-value instrument (in-flight requests,
// queue depth). The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by d and returns the new value.
func (g *Gauge) Add(d int64) int64 { return g.v.Add(d) }

// Set stores an absolute value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// LabeledCounter is a counter family keyed by an ordered label-value
// tuple (the label names live at the exposition site). The zero value
// is ready to use.
type LabeledCounter struct {
	mu   sync.Mutex
	vals map[string]int64
}

// labelSep joins label values into a map key; \x1f cannot appear in
// sane label values.
const labelSep = "\x1f"

// Add increments the series identified by the label values.
func (c *LabeledCounter) Add(delta int64, labelValues ...string) {
	key := ""
	for i, v := range labelValues {
		if i > 0 {
			key += labelSep
		}
		key += v
	}
	c.mu.Lock()
	if c.vals == nil {
		c.vals = make(map[string]int64)
	}
	c.vals[key] += delta
	c.mu.Unlock()
}

// LabeledCount is one series of a LabeledCounter snapshot.
type LabeledCount struct {
	Labels []string `json:"labels"`
	Value  int64    `json:"value"`
}

// Snapshot returns the series sorted by label tuple, so encoders emit
// a deterministic order.
func (c *LabeledCounter) Snapshot() []LabeledCount {
	c.mu.Lock()
	keys := make([]string, 0, len(c.vals))
	for k := range c.vals {
		keys = append(keys, k)
	}
	vals := make(map[string]int64, len(c.vals))
	for k, v := range c.vals {
		vals[k] = v
	}
	c.mu.Unlock()
	sort.Strings(keys)
	out := make([]LabeledCount, len(keys))
	for i, k := range keys {
		out[i] = LabeledCount{Labels: splitLabels(k), Value: vals[k]}
	}
	return out
}

// reset drops all series.
func (c *LabeledCounter) reset() {
	c.mu.Lock()
	c.vals = nil
	c.mu.Unlock()
}

// LabeledHistogram is a histogram family keyed by one label value
// (request phase, workload stratum); every member shares one bucket
// layout so family members merge and compare exactly. The zero value
// is usable and lazily adopts the default layout on first use;
// NewLabeledHistogram picks an explicit layout.
type LabeledHistogram struct {
	mu   sync.Mutex
	opts HistogramOpts
	set  bool
	vals map[string]*Histogram
}

// NewLabeledHistogram returns a family with the given shared layout.
func NewLabeledHistogram(opts HistogramOpts) *LabeledHistogram {
	return &LabeledHistogram{opts: opts.defaults(), set: true}
}

// Observe records one value into the label's member histogram,
// creating it on first use.
func (l *LabeledHistogram) Observe(label string, v float64) {
	l.mu.Lock()
	if !l.set {
		//lint:optzero zero-value families lazily adopt the documented default layout
		l.opts, l.set = HistogramOpts{}.defaults(), true
	}
	if l.vals == nil {
		l.vals = make(map[string]*Histogram)
	}
	h := l.vals[label]
	if h == nil {
		h = NewHistogram(l.opts)
		l.vals[label] = h
	}
	l.mu.Unlock()
	h.Observe(v)
}

// LabeledHist is one member of a LabeledHistogram snapshot.
type LabeledHist struct {
	Label string            `json:"label"`
	Hist  HistogramSnapshot `json:"hist"`
}

// Snapshot returns the members sorted by label, so encoders emit a
// deterministic order.
func (l *LabeledHistogram) Snapshot() []LabeledHist {
	l.mu.Lock()
	labels := make([]string, 0, len(l.vals))
	hists := make(map[string]*Histogram, len(l.vals))
	for k, h := range l.vals {
		labels = append(labels, k)
		hists[k] = h
	}
	l.mu.Unlock()
	sort.Strings(labels)
	out := make([]LabeledHist, len(labels))
	for i, k := range labels {
		out[i] = LabeledHist{Label: k, Hist: hists[k].Snapshot()}
	}
	return out
}

// reset drops all members (the layout stays).
func (l *LabeledHistogram) reset() {
	l.mu.Lock()
	l.vals = nil
	l.mu.Unlock()
}

// splitLabels undoes the Add key join.
func splitLabels(key string) []string {
	var out []string
	start := 0
	for i := 0; i < len(key); i++ {
		if key[i] == labelSep[0] {
			out = append(out, key[start:i])
			start = i + 1
		}
	}
	return append(out, key[start:])
}
