package routing

import (
	"errors"
	"math/rand"
	"testing"

	"rulefit/internal/topology"
)

func TestShortestPathLinear(t *testing.T) {
	n, err := topology.Linear(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ShortestPath(n, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 5 {
		t.Errorf("path length = %d, want 5", len(p))
	}
	for i, s := range p {
		if s != topology.SwitchID(i) {
			t.Errorf("path[%d] = %d, want %d", i, s, i)
		}
	}
}

func TestShortestPathSame(t *testing.T) {
	n, err := topology.Linear(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ShortestPath(n, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 || p[0] != 1 {
		t.Errorf("path = %v", p)
	}
}

func TestShortestPathDisconnected(t *testing.T) {
	n := topology.NewNetwork()
	for i := 1; i <= 2; i++ {
		if err := n.AddSwitch(topology.Switch{ID: topology.SwitchID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ShortestPath(n, 1, 2); !errors.Is(err, ErrNoPath) {
		t.Errorf("err = %v, want ErrNoPath", err)
	}
}

func TestShortestPathIsShortest(t *testing.T) {
	// Ring of 6: distance from 0 to 3 is 3 either way; to 2 is 2.
	n, err := topology.Ring(6, 10)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ShortestPath(n, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 {
		t.Errorf("path %v has length %d, want 3 nodes", p, len(p))
	}
}

func TestRandomShortestPathValidAndVaries(t *testing.T) {
	n, err := topology.FatTree(4, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	ports := n.Ports()
	from, to := ports[0].Switch, ports[len(ports)-1].Switch
	ref, err := ShortestPath(n, from, to)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		p, err := RandomShortestPath(n, from, to, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(p) != len(ref) {
			t.Fatalf("random path %v not shortest (len %d vs %d)", p, len(p), len(ref))
		}
		if p[0] != from || p[len(p)-1] != to {
			t.Fatalf("path endpoints wrong: %v", p)
		}
		// Consecutive switches must be adjacent.
		for j := 1; j < len(p); j++ {
			adjacent := false
			for _, nb := range n.Neighbors(p[j-1]) {
				if nb == p[j] {
					adjacent = true
					break
				}
			}
			if !adjacent {
				t.Fatalf("path %v has non-adjacent step %d", p, j)
			}
		}
		key := ""
		for _, s := range p {
			key += string(rune(s)) + ","
		}
		seen[key] = true
	}
	if len(seen) < 2 {
		t.Error("random tie-breaking never produced distinct shortest paths in a fat-tree")
	}
}

func TestPathLocAndContains(t *testing.T) {
	p := Path{Switches: []topology.SwitchID{4, 7, 9}}
	if p.Loc(4) != 0 || p.Loc(7) != 1 || p.Loc(9) != 2 {
		t.Error("Loc wrong")
	}
	if p.Loc(5) != -1 || p.Contains(5) {
		t.Error("missing switch misreported")
	}
	if !p.Contains(9) {
		t.Error("Contains(9) = false")
	}
}

func TestPathSetSwitchesAndMinLoc(t *testing.T) {
	ps := &PathSet{Ingress: 1, Paths: []Path{
		{Switches: []topology.SwitchID{1, 2, 3}},
		{Switches: []topology.SwitchID{1, 2, 4, 5}},
	}}
	got := ps.Switches()
	want := []topology.SwitchID{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("S_i = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("S_i = %v, want %v", got, want)
		}
	}
	if ps.MinLoc(2) != 1 || ps.MinLoc(5) != 3 || ps.MinLoc(99) != -1 {
		t.Error("MinLoc wrong")
	}
}

func TestRoutingAddAndIngresses(t *testing.T) {
	r := NewRouting()
	r.Add(Path{Ingress: 3, Switches: []topology.SwitchID{1}})
	r.Add(Path{Ingress: 1, Switches: []topology.SwitchID{2}})
	r.Add(Path{Ingress: 3, Switches: []topology.SwitchID{1, 2}})
	ing := r.Ingresses()
	if len(ing) != 2 || ing[0] != 1 || ing[1] != 3 {
		t.Errorf("Ingresses = %v", ing)
	}
	if r.NumPaths() != 3 {
		t.Errorf("NumPaths = %d", r.NumPaths())
	}
	if len(r.Sets[3].Paths) != 2 {
		t.Errorf("ingress 3 paths = %d", len(r.Sets[3].Paths))
	}
}

func TestBuildRoutingFig3(t *testing.T) {
	n := topology.Fig3(100)
	r, err := BuildRouting(n, []PortPair{{In: 1, Out: 2}, {In: 1, Out: 3}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ps := r.Sets[1]
	if ps == nil || len(ps.Paths) != 2 {
		t.Fatalf("expected 2 paths from ingress 1, got %+v", r.Sets)
	}
	// Paper routes: s1-s2-s3 and s1-s2-s4-s5.
	for _, p := range ps.Paths {
		if p.Switches[0] != 1 {
			t.Errorf("path %v does not start at s1", p)
		}
		switch p.Egress {
		case 2:
			if len(p.Switches) != 3 || p.Switches[2] != 3 {
				t.Errorf("path to l2 = %v, want s1-s2-s3", p.Switches)
			}
		case 3:
			if len(p.Switches) != 4 || p.Switches[3] != 5 {
				t.Errorf("path to l3 = %v, want s1-s2-s4-s5", p.Switches)
			}
		}
	}
}

func TestBuildRoutingRejectsBadPorts(t *testing.T) {
	n := topology.Fig3(100)
	if _, err := BuildRouting(n, []PortPair{{In: 2, Out: 3}}, 1); err == nil {
		t.Error("egress used as ingress should fail")
	}
	if _, err := BuildRouting(n, []PortPair{{In: 1, Out: 1}}, 1); err == nil {
		t.Error("ingress used as egress should fail")
	}
	if _, err := BuildRouting(n, []PortPair{{In: 99, Out: 2}}, 1); err == nil {
		t.Error("unknown port should fail")
	}
}

func TestRandomPairsDeterministic(t *testing.T) {
	n, err := topology.FatTree(4, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RandomPairs(n, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomPairs(n, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 30 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pair %d differs between identical seeds", i)
		}
	}
}

func TestRandomPairsNoPorts(t *testing.T) {
	n := topology.NewNetwork()
	if err := n.AddSwitch(topology.Switch{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := RandomPairs(n, 5, 1); err == nil {
		t.Error("expected error with no ports")
	}
}

func TestSpreadPairs(t *testing.T) {
	n, err := topology.FatTree(4, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := SpreadPairs(n, 4, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 32 {
		t.Fatalf("pairs = %d, want 32", len(pairs))
	}
	perIngress := map[topology.PortID]int{}
	for _, p := range pairs {
		perIngress[p.In]++
	}
	if len(perIngress) != 4 {
		t.Errorf("ingress spread = %v", perIngress)
	}
	for in, c := range perIngress {
		if c != 8 {
			t.Errorf("ingress %d has %d paths, want 8", in, c)
		}
	}
}

func TestAssignTrafficSlices(t *testing.T) {
	n := topology.Fig3(100)
	r, err := BuildRouting(n, []PortPair{{In: 1, Out: 2}, {In: 1, Out: 3}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	AssignTrafficSlices(r)
	for _, p := range r.Sets[1].Paths {
		if !p.HasTraffic {
			t.Fatalf("path %v has no traffic slice", p)
		}
		if p.Traffic.IsFullWildcard() {
			t.Errorf("traffic slice for %v is unconstrained", p)
		}
	}
	// Slices of different egresses must be disjoint.
	a, b := r.Sets[1].Paths[0], r.Sets[1].Paths[1]
	if a.Egress != b.Egress && a.Traffic.Overlaps(b.Traffic) {
		t.Error("distinct egress slices overlap")
	}
}

func TestEgressPrefixMatchesSlices(t *testing.T) {
	ip, plen := EgressPrefix(7)
	if plen != 24 {
		t.Errorf("plen = %d", plen)
	}
	if ip != 0x0A000700 {
		t.Errorf("ip = %x", ip)
	}
}

func TestPathString(t *testing.T) {
	p := Path{Ingress: 1, Egress: 2, Switches: []topology.SwitchID{1, 2}}
	if p.String() == "" {
		t.Error("empty String")
	}
}

func TestKShortestPathsLinear(t *testing.T) {
	n, err := topology.Linear(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := KShortestPaths(n, 0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A chain has exactly one loopless path.
	if len(paths) != 1 || len(paths[0]) != 4 {
		t.Fatalf("paths = %v", paths)
	}
}

func TestKShortestPathsRing(t *testing.T) {
	n, err := topology.Ring(6, 10)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := KShortestPaths(n, 0, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	// A 6-ring has exactly two loopless 0->3 paths, both of length 4.
	if len(paths) != 2 {
		t.Fatalf("paths = %v, want 2", paths)
	}
	if len(paths[0]) != 4 || len(paths[1]) != 4 {
		t.Errorf("lengths = %d, %d, want 4, 4", len(paths[0]), len(paths[1]))
	}
}

func TestKShortestPathsFatTree(t *testing.T) {
	n, err := topology.FatTree(4, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	ports := n.Ports()
	from, to := ports[0].Switch, ports[len(ports)-1].Switch
	paths, err := KShortestPaths(n, from, to, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("want 4 distinct paths in a fat-tree, got %d", len(paths))
	}
	// Increasing length order; all loopless, valid, distinct.
	for i, p := range paths {
		if p[0] != from || p[len(p)-1] != to {
			t.Errorf("path %d endpoints wrong: %v", i, p)
		}
		seen := map[topology.SwitchID]bool{}
		for _, s := range p {
			if seen[s] {
				t.Errorf("path %d has a loop: %v", i, p)
			}
			seen[s] = true
		}
		for j := 1; j < len(p); j++ {
			ok := false
			for _, nb := range n.Neighbors(p[j-1]) {
				if nb == p[j] {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("path %d has non-adjacent hop: %v", i, p)
			}
		}
		if i > 0 && len(paths[i-1]) > len(p) {
			t.Errorf("paths not in length order: %v", paths)
		}
	}
}

func TestKShortestPathsEdgeCases(t *testing.T) {
	n, err := topology.Linear(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if paths, err := KShortestPaths(n, 1, 1, 3); err != nil || len(paths) != 1 || len(paths[0]) != 1 {
		t.Errorf("self path = %v, %v", paths, err)
	}
	if paths, _ := KShortestPaths(n, 0, 2, 0); paths != nil {
		t.Errorf("k=0 should return nil, got %v", paths)
	}
	disc := topology.NewNetwork()
	if err := disc.AddSwitch(topology.Switch{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := disc.AddSwitch(topology.Switch{ID: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := KShortestPaths(disc, 1, 2, 2); err == nil {
		t.Error("disconnected should error")
	}
}

func TestBuildMultipathRouting(t *testing.T) {
	n, err := topology.FatTree(4, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	ports := n.Ports()
	pairs := []PortPair{{In: ports[0].ID, Out: ports[len(ports)-1].ID}}
	rt, err := BuildMultipathRouting(n, pairs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.NumPaths(); got != 3 {
		t.Fatalf("paths = %d, want 3", got)
	}
	if _, err := BuildMultipathRouting(n, []PortPair{{In: 9999, Out: ports[0].ID}}, 2); err == nil {
		t.Error("bad ingress should error")
	}
}
