// Package routing produces the path sets P_i the placement problem takes
// as input. The paper assumes routing comes from an external module
// (§III); this package implements the concrete stand-in used by the
// evaluation — deterministic randomized shortest-path routing — plus
// per-path traffic slices (§IV-C) and the loc() hop-distance function
// used by the traffic-weighted objective.
package routing

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"rulefit/internal/match"
	"rulefit/internal/topology"
)

// Path is one route p_{i,j}: the ordered switches a flow traverses from
// an ingress port to an egress port.
type Path struct {
	Ingress  topology.PortID
	Egress   topology.PortID
	Switches []topology.SwitchID
	// Traffic optionally restricts the packets following this path (the
	// per-route flow space of §IV-C). HasTraffic distinguishes "all
	// packets" from a real slice.
	Traffic    match.Ternary
	HasTraffic bool
}

// Loc returns the hop distance of switch s from the path's ingress
// (0 for the ingress switch), or -1 if s is not on the path. This is the
// loc(s_k, P_i) function of the paper's traffic objective.
func (p Path) Loc(s topology.SwitchID) int {
	for i, sw := range p.Switches {
		if sw == s {
			return i
		}
	}
	return -1
}

// Contains reports whether the path traverses switch s.
func (p Path) Contains(s topology.SwitchID) bool { return p.Loc(s) >= 0 }

// String renders the path.
func (p Path) String() string {
	return fmt.Sprintf("l%d->l%d via %v", p.Ingress, p.Egress, p.Switches)
}

// PathSet is P_i: all paths originating at one ingress port.
type PathSet struct {
	Ingress topology.PortID
	Paths   []Path
}

// Switches returns S_i, the sorted union of switches over all paths.
func (ps *PathSet) Switches() []topology.SwitchID {
	seen := make(map[topology.SwitchID]bool)
	for _, p := range ps.Paths {
		for _, s := range p.Switches {
			seen[s] = true
		}
	}
	out := make([]topology.SwitchID, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// MinLoc returns the minimum hop distance of s from the ingress over the
// paths that traverse it, or -1 if no path does. Used as loc(s_k, P_i).
func (ps *PathSet) MinLoc(s topology.SwitchID) int {
	best := -1
	for _, p := range ps.Paths {
		if l := p.Loc(s); l >= 0 && (best == -1 || l < best) {
			best = l
		}
	}
	return best
}

// Routing is the full routing policy: one path set per ingress port.
type Routing struct {
	// Sets maps each ingress port to its path set; iterate via Ingresses
	// for deterministic order.
	Sets map[topology.PortID]*PathSet
}

// NewRouting returns an empty routing policy.
func NewRouting() *Routing {
	return &Routing{Sets: make(map[topology.PortID]*PathSet)}
}

// Add appends a path to its ingress's path set.
func (r *Routing) Add(p Path) {
	ps, ok := r.Sets[p.Ingress]
	if !ok {
		ps = &PathSet{Ingress: p.Ingress}
		r.Sets[p.Ingress] = ps
	}
	ps.Paths = append(ps.Paths, p)
}

// Ingresses returns the ingress ports with at least one path, sorted.
func (r *Routing) Ingresses() []topology.PortID {
	out := make([]topology.PortID, 0, len(r.Sets))
	for id := range r.Sets {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// NumPaths returns the total number of paths across all ingresses.
func (r *Routing) NumPaths() int {
	n := 0
	for _, ps := range r.Sets {
		n += len(ps.Paths)
	}
	return n
}

// ErrNoPath is returned when two switches are not connected.
var ErrNoPath = errors.New("routing: no path between switches")

// errBadIngress and errBadEgress report port misuse.
func errBadIngress(id topology.PortID) error {
	return fmt.Errorf("routing: port %d is not an ingress", id)
}

func errBadEgress(id topology.PortID) error {
	return fmt.Errorf("routing: port %d is not an egress", id)
}

// ShortestPath returns a BFS shortest path between two switches,
// inclusive of both endpoints, breaking ties deterministically by the
// lowest neighbor ID.
func ShortestPath(n *topology.Network, from, to topology.SwitchID) ([]topology.SwitchID, error) {
	return shortestPath(n, from, to, nil)
}

// RandomShortestPath returns a shortest path with ties broken uniformly
// at random from rng; this is the "randomly generated shortest-path
// routing" of the paper's evaluation.
func RandomShortestPath(n *topology.Network, from, to topology.SwitchID, rng *rand.Rand) ([]topology.SwitchID, error) {
	return shortestPath(n, from, to, rng)
}

func shortestPath(n *topology.Network, from, to topology.SwitchID, rng *rand.Rand) ([]topology.SwitchID, error) {
	if from == to {
		return []topology.SwitchID{from}, nil
	}
	// BFS distances from the destination so the forward walk can step
	// along any descending-distance neighbor.
	dist := map[topology.SwitchID]int{to: 0}
	queue := []topology.SwitchID{to}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range n.Neighbors(cur) {
			if _, ok := dist[nb]; !ok {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	d, ok := dist[from]
	if !ok {
		return nil, fmt.Errorf("%w: %d -> %d", ErrNoPath, from, to)
	}
	path := make([]topology.SwitchID, 0, d+1)
	path = append(path, from)
	cur := from
	for cur != to {
		var candidates []topology.SwitchID
		for _, nb := range n.Neighbors(cur) {
			if dd, ok := dist[nb]; ok && dd == dist[cur]-1 {
				candidates = append(candidates, nb)
			}
		}
		// Neighbors() is sorted, so candidates are deterministic.
		next := candidates[0]
		if rng != nil {
			next = candidates[rng.Intn(len(candidates))]
		}
		path = append(path, next)
		cur = next
	}
	return path, nil
}

// PortPair names an ingress/egress pair to route.
type PortPair struct {
	In  topology.PortID
	Out topology.PortID
}

// BuildRouting routes each pair along a random shortest path (seeded) and
// groups the results per ingress. Ports must exist; ingress must be an
// ingress port and egress an egress port.
func BuildRouting(n *topology.Network, pairs []PortPair, seed int64) (*Routing, error) {
	rng := rand.New(rand.NewSource(seed))
	r := NewRouting()
	for _, pair := range pairs {
		in, ok := n.Port(pair.In)
		if !ok || !in.Ingress {
			return nil, fmt.Errorf("routing: port %d is not an ingress", pair.In)
		}
		out, ok := n.Port(pair.Out)
		if !ok || !out.Egress {
			return nil, fmt.Errorf("routing: port %d is not an egress", pair.Out)
		}
		sw, err := RandomShortestPath(n, in.Switch, out.Switch, rng)
		if err != nil {
			return nil, err
		}
		r.Add(Path{Ingress: pair.In, Egress: pair.Out, Switches: sw})
	}
	return r, nil
}

// RandomPairs draws count ingress/egress pairs uniformly (with distinct
// attachment switches when possible), deterministically from seed.
func RandomPairs(n *topology.Network, count int, seed int64) ([]PortPair, error) {
	ins := n.IngressPorts()
	outs := n.EgressPorts()
	if len(ins) == 0 || len(outs) == 0 {
		return nil, errors.New("routing: network has no ingress or egress ports")
	}
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]PortPair, 0, count)
	for len(pairs) < count {
		in := ins[rng.Intn(len(ins))]
		out := outs[rng.Intn(len(outs))]
		if in.Switch == out.Switch && (len(ins) > 1 || len(outs) > 1) {
			continue
		}
		pairs = append(pairs, PortPair{In: in.ID, Out: out.ID})
	}
	return pairs, nil
}

// SpreadPairs deterministically assigns paths across ingresses as evenly
// as possible: pathsPerIngress paths from each of the first numIngresses
// ingress ports to round-robin egresses. It mirrors the evaluation setup
// where the path count p is swept while policies stay per-ingress.
func SpreadPairs(n *topology.Network, numIngresses, pathsPerIngress int, seed int64) ([]PortPair, error) {
	ins := n.IngressPorts()
	outs := n.EgressPorts()
	if len(ins) == 0 || len(outs) == 0 {
		return nil, errors.New("routing: network has no ingress or egress ports")
	}
	if numIngresses > len(ins) {
		numIngresses = len(ins)
	}
	rng := rand.New(rand.NewSource(seed))
	var pairs []PortPair
	for i := 0; i < numIngresses; i++ {
		in := ins[i]
		for j := 0; j < pathsPerIngress; j++ {
			out := outs[rng.Intn(len(outs))]
			for out.Switch == in.Switch && len(outs) > 1 {
				out = outs[rng.Intn(len(outs))]
			}
			pairs = append(pairs, PortPair{In: in.ID, Out: out.ID})
		}
	}
	return pairs, nil
}

// AssignTrafficSlices gives every path in r a destination-prefix traffic
// slice derived from its egress port: egress e receives prefix
// 10.x.y.0/24 with x.y encoding e. This matches the §IV-C model where
// the routing library knows which flows follow each route.
func AssignTrafficSlices(r *Routing) {
	for _, ps := range r.Sets {
		for i := range ps.Paths {
			e := uint32(ps.Paths[i].Egress)
			ip := 0x0A000000 | (e&0xFFFF)<<8
			ps.Paths[i].Traffic = match.DstPrefixTernary(ip, 24)
			ps.Paths[i].HasTraffic = true
		}
	}
}

// EgressPrefix returns the destination prefix assigned to an egress port
// by AssignTrafficSlices, for generating test traffic.
func EgressPrefix(e topology.PortID) (ip uint32, plen int) {
	return 0x0A000000 | (uint32(e)&0xFFFF)<<8, 24
}
