package routing

import (
	"sort"

	"rulefit/internal/topology"
)

// KShortestPaths returns up to k loopless shortest paths between two
// switches in increasing length order (Yen's algorithm over unit-weight
// links). It backs multipath routing setups where an ingress spreads
// its flows over several routes — the situation that makes the paper's
// per-path placement constraints interesting.
func KShortestPaths(n *topology.Network, from, to topology.SwitchID, k int) ([][]topology.SwitchID, error) {
	if k <= 0 {
		return nil, nil
	}
	first, err := ShortestPath(n, from, to)
	if err != nil {
		return nil, err
	}
	paths := [][]topology.SwitchID{first}
	var candidates [][]topology.SwitchID

	for len(paths) < k {
		prev := paths[len(paths)-1]
		// For each spur node of the previous path, search a deviation.
		for i := 0; i < len(prev)-1; i++ {
			spur := prev[i]
			rootPath := prev[:i+1]

			// Edges leaving the spur node used by any accepted path
			// sharing the same root are banned; so are the root's nodes
			// (except the spur) to keep paths loopless.
			bannedEdges := make(map[[2]topology.SwitchID]bool)
			for _, p := range paths {
				if len(p) > i && equalPrefix(p, rootPath) {
					bannedEdges[[2]topology.SwitchID{p[i], p[i+1]}] = true
				}
			}
			bannedNodes := make(map[topology.SwitchID]bool)
			for _, s := range rootPath[:len(rootPath)-1] {
				bannedNodes[s] = true
			}

			spurPath := constrainedShortest(n, spur, to, bannedNodes, bannedEdges)
			if spurPath == nil {
				continue
			}
			full := append(append([]topology.SwitchID(nil), rootPath[:len(rootPath)-1]...), spurPath...)
			if !containsPath(paths, full) && !containsPath(candidates, full) {
				candidates = append(candidates, full)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			if len(candidates[a]) != len(candidates[b]) {
				return len(candidates[a]) < len(candidates[b])
			}
			return lessPath(candidates[a], candidates[b])
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths, nil
}

// constrainedShortest runs BFS from src to dst avoiding banned nodes and
// banned first-hop edges out of src. Returns nil when unreachable.
func constrainedShortest(n *topology.Network, src, dst topology.SwitchID, bannedNodes map[topology.SwitchID]bool, bannedEdges map[[2]topology.SwitchID]bool) []topology.SwitchID {
	if src == dst {
		return []topology.SwitchID{src}
	}
	prev := map[topology.SwitchID]topology.SwitchID{src: src}
	queue := []topology.SwitchID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range n.Neighbors(cur) {
			if bannedNodes[nb] {
				continue
			}
			if cur == src && bannedEdges[[2]topology.SwitchID{src, nb}] {
				continue
			}
			if _, seen := prev[nb]; seen {
				continue
			}
			prev[nb] = cur
			if nb == dst {
				// Reconstruct.
				var rev []topology.SwitchID
				for x := dst; x != src; x = prev[x] {
					rev = append(rev, x)
				}
				rev = append(rev, src)
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev
			}
			queue = append(queue, nb)
		}
	}
	return nil
}

// equalPrefix reports whether p starts with the given prefix.
func equalPrefix(p, prefix []topology.SwitchID) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

// containsPath reports whether the set already holds an identical path.
func containsPath(set [][]topology.SwitchID, p []topology.SwitchID) bool {
	for _, q := range set {
		if len(q) != len(p) {
			continue
		}
		same := true
		for i := range q {
			if q[i] != p[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// lessPath orders equal-length paths lexicographically for determinism.
func lessPath(a, b []topology.SwitchID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// BuildMultipathRouting routes each pair over up to k loopless shortest
// paths, modelling an ECMP-style routing module that spreads one
// ingress's flows across several routes.
func BuildMultipathRouting(n *topology.Network, pairs []PortPair, k int) (*Routing, error) {
	r := NewRouting()
	for _, pair := range pairs {
		in, ok := n.Port(pair.In)
		if !ok || !in.Ingress {
			return nil, errBadIngress(pair.In)
		}
		out, ok := n.Port(pair.Out)
		if !ok || !out.Egress {
			return nil, errBadEgress(pair.Out)
		}
		paths, err := KShortestPaths(n, in.Switch, out.Switch, k)
		if err != nil {
			return nil, err
		}
		for _, sw := range paths {
			r.Add(Path{Ingress: pair.In, Egress: pair.Out, Switches: sw})
		}
	}
	return r, nil
}
