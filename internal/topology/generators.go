package topology

import (
	"fmt"
	"math/rand"
)

// FatTree builds a k-ary fat-tree [Al-Fares et al.]: (k/2)^2 core
// switches and k pods of k/2 aggregation plus k/2 edge switches each —
// 5k^2/4 switches total. Every edge switch carries hostsPerEdge external
// ports (both ingress and egress); the canonical fat-tree has k/2 hosts
// per edge switch, i.e. k^3/4 hosts. k must be even and positive.
func FatTree(k, capacity, hostsPerEdge int) (*Network, error) {
	if k <= 0 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree arity k must be positive and even, got %d", k)
	}
	if hostsPerEdge < 0 {
		return nil, fmt.Errorf("topology: negative hostsPerEdge %d", hostsPerEdge)
	}
	n := NewNetwork()
	half := k / 2

	// Core switches: IDs [0, half^2).
	core := func(i int) SwitchID { return SwitchID(i) }
	for i := 0; i < half*half; i++ {
		mustAddSwitch(n, Switch{ID: core(i), Capacity: capacity, Name: fmt.Sprintf("core%d", i)})
	}
	// Aggregation: IDs [half^2, half^2 + k*half).
	agg := func(pod, j int) SwitchID { return SwitchID(half*half + pod*half + j) }
	// Edge: IDs [half^2 + k*half, half^2 + 2*k*half).
	edge := func(pod, j int) SwitchID { return SwitchID(half*half + k*half + pod*half + j) }

	for pod := 0; pod < k; pod++ {
		for j := 0; j < half; j++ {
			mustAddSwitch(n, Switch{ID: agg(pod, j), Capacity: capacity, Name: fmt.Sprintf("pod%d-agg%d", pod, j)})
			mustAddSwitch(n, Switch{ID: edge(pod, j), Capacity: capacity, Name: fmt.Sprintf("pod%d-edge%d", pod, j)})
		}
	}
	// Pod-internal links: every edge to every agg within the pod.
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				if err := n.AddLink(edge(pod, e), agg(pod, a)); err != nil {
					return nil, err
				}
			}
		}
	}
	// Agg-to-core: agg j of each pod connects to cores [j*half, (j+1)*half).
	for pod := 0; pod < k; pod++ {
		for j := 0; j < half; j++ {
			for c := 0; c < half; c++ {
				if err := n.AddLink(agg(pod, j), core(j*half+c)); err != nil {
					return nil, err
				}
			}
		}
	}
	// External ports on edge switches.
	port := 0
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			for h := 0; h < hostsPerEdge; h++ {
				mustAddPort(n, ExternalPort{ID: PortID(port), Switch: edge(pod, e), Ingress: true, Egress: true})
				port++
			}
		}
	}
	return n, nil
}

// FatTreeSwitchCount returns 5k^2/4, the switch count of a k-ary fat-tree.
func FatTreeSwitchCount(k int) int { return 5 * k * k / 4 }

// Linear builds a path topology s0 - s1 - ... - s(n-1) with an ingress
// port on s0 and an egress port on s(n-1).
func Linear(nSwitches, capacity int) (*Network, error) {
	if nSwitches <= 0 {
		return nil, fmt.Errorf("topology: linear needs at least one switch, got %d", nSwitches)
	}
	n := NewNetwork()
	for i := 0; i < nSwitches; i++ {
		mustAddSwitch(n, Switch{ID: SwitchID(i), Capacity: capacity, Name: fmt.Sprintf("s%d", i)})
		if i > 0 {
			if err := n.AddLink(SwitchID(i-1), SwitchID(i)); err != nil {
				return nil, err
			}
		}
	}
	mustAddPort(n, ExternalPort{ID: 0, Switch: 0, Ingress: true})
	mustAddPort(n, ExternalPort{ID: 1, Switch: SwitchID(nSwitches - 1), Egress: true})
	return n, nil
}

// Ring builds a cycle of n switches with one ingress/egress port each.
func Ring(nSwitches, capacity int) (*Network, error) {
	if nSwitches < 3 {
		return nil, fmt.Errorf("topology: ring needs at least 3 switches, got %d", nSwitches)
	}
	n := NewNetwork()
	for i := 0; i < nSwitches; i++ {
		mustAddSwitch(n, Switch{ID: SwitchID(i), Capacity: capacity, Name: fmt.Sprintf("r%d", i)})
		mustAddPort(n, ExternalPort{ID: PortID(i), Switch: SwitchID(i), Ingress: true, Egress: true})
	}
	for i := 0; i < nSwitches; i++ {
		if err := n.AddLink(SwitchID(i), SwitchID((i+1)%nSwitches)); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// LeafSpine builds a 2-tier Clos: every leaf connects to every spine.
// Each leaf carries hostsPerLeaf ingress/egress ports.
func LeafSpine(leaves, spines, capacity, hostsPerLeaf int) (*Network, error) {
	if leaves <= 0 || spines <= 0 {
		return nil, fmt.Errorf("topology: leaf-spine needs positive tiers, got %d leaves, %d spines", leaves, spines)
	}
	n := NewNetwork()
	for s := 0; s < spines; s++ {
		mustAddSwitch(n, Switch{ID: SwitchID(s), Capacity: capacity, Name: fmt.Sprintf("spine%d", s)})
	}
	for l := 0; l < leaves; l++ {
		id := SwitchID(spines + l)
		mustAddSwitch(n, Switch{ID: id, Capacity: capacity, Name: fmt.Sprintf("leaf%d", l)})
		for s := 0; s < spines; s++ {
			if err := n.AddLink(id, SwitchID(s)); err != nil {
				return nil, err
			}
		}
	}
	port := 0
	for l := 0; l < leaves; l++ {
		for h := 0; h < hostsPerLeaf; h++ {
			mustAddPort(n, ExternalPort{ID: PortID(port), Switch: SwitchID(spines + l), Ingress: true, Egress: true})
			port++
		}
	}
	return n, nil
}

// Grid builds a w x h mesh with an ingress/egress port on each border
// switch.
func Grid(w, h, capacity int) (*Network, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("topology: grid needs positive dimensions, got %dx%d", w, h)
	}
	n := NewNetwork()
	id := func(x, y int) SwitchID { return SwitchID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			mustAddSwitch(n, Switch{ID: id(x, y), Capacity: capacity, Name: fmt.Sprintf("g%d_%d", x, y)})
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				if err := n.AddLink(id(x, y), id(x+1, y)); err != nil {
					return nil, err
				}
			}
			if y+1 < h {
				if err := n.AddLink(id(x, y), id(x, y+1)); err != nil {
					return nil, err
				}
			}
		}
	}
	port := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x == 0 || y == 0 || x == w-1 || y == h-1 {
				mustAddPort(n, ExternalPort{ID: PortID(port), Switch: id(x, y), Ingress: true, Egress: true})
				port++
			}
		}
	}
	return n, nil
}

// RandomConnected builds a random connected graph of n switches with
// average degree close to deg, deterministically from seed. Every switch
// gets an ingress/egress port.
func RandomConnected(nSwitches, deg, capacity int, seed int64) (*Network, error) {
	if nSwitches <= 0 {
		return nil, fmt.Errorf("topology: need positive switch count, got %d", nSwitches)
	}
	rng := rand.New(rand.NewSource(seed))
	n := NewNetwork()
	for i := 0; i < nSwitches; i++ {
		mustAddSwitch(n, Switch{ID: SwitchID(i), Capacity: capacity, Name: fmt.Sprintf("n%d", i)})
		mustAddPort(n, ExternalPort{ID: PortID(i), Switch: SwitchID(i), Ingress: true, Egress: true})
	}
	// Random spanning tree guarantees connectivity.
	for i := 1; i < nSwitches; i++ {
		if err := n.AddLink(SwitchID(i), SwitchID(rng.Intn(i))); err != nil {
			return nil, err
		}
	}
	// Extra edges up to the requested degree.
	extra := nSwitches * (deg - 2) / 2
	for e := 0; e < extra; e++ {
		a, b := SwitchID(rng.Intn(nSwitches)), SwitchID(rng.Intn(nSwitches))
		if a == b {
			continue
		}
		//lint:errcheck duplicate-link errors are expected; density is approximate
		_ = n.AddLink(a, b)
	}
	return n, nil
}

// Fig3 builds the paper's illustrative example network (Fig. 3):
// ingress l1 at s1, routes s1-s2-s3 (egress l2) and s1-s2-s4-s5
// (egress l3).
func Fig3(capacity int) *Network {
	n := NewNetwork()
	for i := 1; i <= 5; i++ {
		mustAddSwitch(n, Switch{ID: SwitchID(i), Capacity: capacity, Name: fmt.Sprintf("s%d", i)})
	}
	links := [][2]SwitchID{{1, 2}, {2, 3}, {2, 4}, {4, 5}}
	for _, l := range links {
		if err := n.AddLink(l[0], l[1]); err != nil {
			panic(err)
		}
	}
	mustAddPort(n, ExternalPort{ID: 1, Switch: 1, Ingress: true})
	mustAddPort(n, ExternalPort{ID: 2, Switch: 3, Egress: true})
	mustAddPort(n, ExternalPort{ID: 3, Switch: 5, Egress: true})
	return n
}

// mustAddSwitch and mustAddPort wrap Add* for generator-internal IDs that
// are unique by construction.
func mustAddSwitch(n *Network, s Switch) {
	if err := n.AddSwitch(s); err != nil {
		panic(err)
	}
}

func mustAddPort(n *Network, p ExternalPort) {
	if err := n.AddPort(p); err != nil {
		panic(err)
	}
}
