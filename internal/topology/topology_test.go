package topology

import (
	"errors"
	"testing"
)

func TestAddSwitchAndLink(t *testing.T) {
	n := NewNetwork()
	if err := n.AddSwitch(Switch{ID: 1, Capacity: 10}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSwitch(Switch{ID: 2, Capacity: 10}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink(1, 2); err != nil {
		t.Fatal(err)
	}
	if n.NumSwitches() != 2 || n.NumLinks() != 1 {
		t.Errorf("counts: %d switches, %d links", n.NumSwitches(), n.NumLinks())
	}
	nb := n.Neighbors(1)
	if len(nb) != 1 || nb[0] != 2 {
		t.Errorf("Neighbors(1) = %v", nb)
	}
}

func TestAddSwitchDuplicate(t *testing.T) {
	n := NewNetwork()
	if err := n.AddSwitch(Switch{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSwitch(Switch{ID: 1}); !errors.Is(err, ErrDuplicateSwtch) {
		t.Errorf("err = %v, want ErrDuplicateSwtch", err)
	}
}

func TestAddLinkErrors(t *testing.T) {
	n := NewNetwork()
	if err := n.AddSwitch(Switch{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSwitch(Switch{ID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink(1, 1); !errors.Is(err, ErrSelfLink) {
		t.Errorf("self link err = %v", err)
	}
	if err := n.AddLink(1, 3); !errors.Is(err, ErrUnknownSwitch) {
		t.Errorf("unknown switch err = %v", err)
	}
	if err := n.AddLink(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink(2, 1); !errors.Is(err, ErrDuplicateLink) {
		t.Errorf("duplicate link err = %v", err)
	}
}

func TestPorts(t *testing.T) {
	n := NewNetwork()
	if err := n.AddSwitch(Switch{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddPort(ExternalPort{ID: 5, Switch: 1, Ingress: true}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddPort(ExternalPort{ID: 6, Switch: 1, Egress: true}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddPort(ExternalPort{ID: 5, Switch: 1}); !errors.Is(err, ErrDuplicatePort) {
		t.Errorf("duplicate port err = %v", err)
	}
	if err := n.AddPort(ExternalPort{ID: 7, Switch: 9}); !errors.Is(err, ErrUnknownSwitch) {
		t.Errorf("unknown switch err = %v", err)
	}
	if got := len(n.IngressPorts()); got != 1 {
		t.Errorf("ingress ports = %d", got)
	}
	if got := len(n.EgressPorts()); got != 1 {
		t.Errorf("egress ports = %d", got)
	}
	if p, ok := n.Port(5); !ok || !p.Ingress {
		t.Errorf("Port(5) = %v, %v", p, ok)
	}
	if _, ok := n.Port(99); ok {
		t.Error("Port(99) should not exist")
	}
}

func TestSetCapacity(t *testing.T) {
	n, err := Linear(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	n.SetCapacity(77)
	for _, s := range n.Switches() {
		if s.Capacity != 77 {
			t.Errorf("switch %d capacity = %d", s.ID, s.Capacity)
		}
	}
	if err := n.SetSwitchCapacity(1, 5); err != nil {
		t.Fatal(err)
	}
	s, _ := n.Switch(1)
	if s.Capacity != 5 {
		t.Errorf("switch 1 capacity = %d, want 5", s.Capacity)
	}
	if err := n.SetSwitchCapacity(42, 5); !errors.Is(err, ErrUnknownSwitch) {
		t.Errorf("err = %v", err)
	}
}

func TestFatTreeStructure(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		n, err := FatTree(k, 100, k/2)
		if err != nil {
			t.Fatalf("FatTree(%d): %v", k, err)
		}
		if got, want := n.NumSwitches(), FatTreeSwitchCount(k); got != want {
			t.Errorf("k=%d: switches = %d, want %d", k, got, want)
		}
		if got, want := len(n.Ports()), k*k*k/4; got != want {
			t.Errorf("k=%d: hosts = %d, want %d", k, got, want)
		}
		if !n.Connected() {
			t.Errorf("k=%d: fat-tree not connected", k)
		}
		if err := n.Validate(); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
		// Link count: pods contribute k*(k/2)^2 edge-agg links; core
		// layer contributes k*(k/2)^2 agg-core links.
		half := k / 2
		wantLinks := k*half*half + k*half*half
		if got := n.NumLinks(); got != wantLinks {
			t.Errorf("k=%d: links = %d, want %d", k, got, wantLinks)
		}
	}
}

func TestFatTreeRejectsOddK(t *testing.T) {
	if _, err := FatTree(3, 100, 1); err == nil {
		t.Error("expected error for odd k")
	}
	if _, err := FatTree(0, 100, 1); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := FatTree(4, 100, -1); err == nil {
		t.Error("expected error for negative hosts")
	}
}

func TestLinear(t *testing.T) {
	n, err := Linear(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumSwitches() != 4 || n.NumLinks() != 3 {
		t.Errorf("linear counts wrong: %d switches %d links", n.NumSwitches(), n.NumLinks())
	}
	if !n.Connected() {
		t.Error("linear not connected")
	}
	if _, err := Linear(0, 1); err == nil {
		t.Error("expected error for 0 switches")
	}
}

func TestRing(t *testing.T) {
	n, err := Ring(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumLinks() != 5 {
		t.Errorf("ring links = %d, want 5", n.NumLinks())
	}
	for _, s := range n.Switches() {
		if len(n.Neighbors(s.ID)) != 2 {
			t.Errorf("switch %d degree != 2", s.ID)
		}
	}
	if _, err := Ring(2, 1); err == nil {
		t.Error("expected error for tiny ring")
	}
}

func TestLeafSpine(t *testing.T) {
	n, err := LeafSpine(4, 2, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumSwitches() != 6 || n.NumLinks() != 8 {
		t.Errorf("leaf-spine counts: %d switches %d links", n.NumSwitches(), n.NumLinks())
	}
	if got := len(n.Ports()); got != 12 {
		t.Errorf("ports = %d, want 12", got)
	}
	if !n.Connected() {
		t.Error("leaf-spine not connected")
	}
	if _, err := LeafSpine(0, 1, 1, 1); err == nil {
		t.Error("expected error for zero leaves")
	}
}

func TestGrid(t *testing.T) {
	n, err := Grid(3, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumSwitches() != 9 || n.NumLinks() != 12 {
		t.Errorf("grid counts: %d switches %d links", n.NumSwitches(), n.NumLinks())
	}
	// Border switches: all but the center.
	if got := len(n.Ports()); got != 8 {
		t.Errorf("border ports = %d, want 8", got)
	}
	if _, err := Grid(0, 3, 1); err == nil {
		t.Error("expected error for zero width")
	}
}

func TestRandomConnected(t *testing.T) {
	n, err := RandomConnected(20, 4, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Connected() {
		t.Error("random graph not connected")
	}
	// Determinism.
	n2, err := RandomConnected(20, 4, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumLinks() != n2.NumLinks() {
		t.Errorf("same seed produced different graphs: %d vs %d links", n.NumLinks(), n2.NumLinks())
	}
	if _, err := RandomConnected(0, 2, 1, 1); err == nil {
		t.Error("expected error for zero switches")
	}
}

func TestFig3(t *testing.T) {
	n := Fig3(100)
	if n.NumSwitches() != 5 || n.NumLinks() != 4 {
		t.Errorf("fig3 counts: %d switches %d links", n.NumSwitches(), n.NumLinks())
	}
	in := n.IngressPorts()
	if len(in) != 1 || in[0].Switch != 1 {
		t.Errorf("fig3 ingress = %v", in)
	}
	if got := len(n.EgressPorts()); got != 2 {
		t.Errorf("fig3 egresses = %d", got)
	}
	if err := n.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	n := NewNetwork()
	if err := n.AddSwitch(Switch{ID: 1, Capacity: 5}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddPort(ExternalPort{ID: 1, Switch: 1}); err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err == nil {
		t.Error("port with neither ingress nor egress should fail validation")
	}
	n2 := NewNetwork()
	if err := n2.AddSwitch(Switch{ID: 1, Capacity: -1}); err != nil {
		t.Fatal(err)
	}
	if err := n2.Validate(); err == nil {
		t.Error("negative capacity should fail validation")
	}
}

func TestConnectedDetectsPartition(t *testing.T) {
	n := NewNetwork()
	for i := 1; i <= 4; i++ {
		if err := n.AddSwitch(Switch{ID: SwitchID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.AddLink(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink(3, 4); err != nil {
		t.Fatal(err)
	}
	if n.Connected() {
		t.Error("partitioned graph reported connected")
	}
	if !NewNetwork().Connected() {
		t.Error("empty graph should be connected")
	}
}
