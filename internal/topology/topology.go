// Package topology models the SDN data plane as a graph of
// capacity-limited switches with external (ingress/egress) ports, and
// provides the generators used by the paper's evaluation — most
// importantly the Fat-Tree family [Al-Fares et al.] — plus several
// simpler shapes for tests and examples.
package topology

import (
	"errors"
	"fmt"
	"sort"
)

// SwitchID identifies a switch within a network.
type SwitchID int

// PortID identifies an external network entry/exit point l_i.
type PortID int

// Switch is a data-plane element with a TCAM rule budget.
type Switch struct {
	ID SwitchID
	// Capacity is the number of ACL rules the switch can hold (C_i).
	Capacity int
	// Name is an optional human-readable label (e.g. "pod2-edge1").
	Name string
}

// ExternalPort is a network ingress/egress attachment point on a switch.
type ExternalPort struct {
	ID PortID
	// Switch is the switch the port attaches to.
	Switch SwitchID
	// Ingress marks ports where traffic (and hence a policy Q_i) enters.
	Ingress bool
	// Egress marks ports where traffic may leave.
	Egress bool
}

// Network is an undirected switch graph with external ports.
type Network struct {
	switches []Switch
	adj      map[SwitchID][]SwitchID
	ports    []ExternalPort
}

// Construction errors.
var (
	ErrUnknownSwitch  = errors.New("topology: unknown switch")
	ErrDuplicateLink  = errors.New("topology: duplicate link")
	ErrSelfLink       = errors.New("topology: self link")
	ErrUnknownPort    = errors.New("topology: unknown port")
	ErrDuplicatePort  = errors.New("topology: duplicate port id")
	ErrDuplicateSwtch = errors.New("topology: duplicate switch id")
)

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{adj: make(map[SwitchID][]SwitchID)}
}

// AddSwitch adds a switch. IDs must be unique.
func (n *Network) AddSwitch(s Switch) error {
	if _, ok := n.adj[s.ID]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateSwtch, s.ID)
	}
	n.switches = append(n.switches, s)
	n.adj[s.ID] = nil
	return nil
}

// AddLink connects two existing switches bidirectionally.
func (n *Network) AddLink(a, b SwitchID) error {
	if a == b {
		return fmt.Errorf("%w: %d", ErrSelfLink, a)
	}
	for _, id := range []SwitchID{a, b} {
		if _, ok := n.adj[id]; !ok {
			return fmt.Errorf("%w: %d", ErrUnknownSwitch, id)
		}
	}
	for _, nb := range n.adj[a] {
		if nb == b {
			return fmt.Errorf("%w: %d-%d", ErrDuplicateLink, a, b)
		}
	}
	n.adj[a] = append(n.adj[a], b)
	n.adj[b] = append(n.adj[b], a)
	return nil
}

// AddPort attaches an external port to an existing switch.
func (n *Network) AddPort(p ExternalPort) error {
	if _, ok := n.adj[p.Switch]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSwitch, p.Switch)
	}
	for _, q := range n.ports {
		if q.ID == p.ID {
			return fmt.Errorf("%w: %d", ErrDuplicatePort, p.ID)
		}
	}
	n.ports = append(n.ports, p)
	return nil
}

// NumSwitches returns the switch count.
func (n *Network) NumSwitches() int { return len(n.switches) }

// Switches returns the switches sorted by ID. The slice is a copy.
func (n *Network) Switches() []Switch {
	out := append([]Switch(nil), n.switches...)
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Switch returns the switch with the given ID.
func (n *Network) Switch(id SwitchID) (Switch, bool) {
	for _, s := range n.switches {
		if s.ID == id {
			return s, true
		}
	}
	return Switch{}, false
}

// SetCapacity overrides the capacity of every switch. Used by the
// experiment sweeps that vary C uniformly.
func (n *Network) SetCapacity(c int) {
	for i := range n.switches {
		n.switches[i].Capacity = c
	}
}

// SetSwitchCapacity overrides one switch's capacity.
func (n *Network) SetSwitchCapacity(id SwitchID, c int) error {
	for i := range n.switches {
		if n.switches[i].ID == id {
			n.switches[i].Capacity = c
			return nil
		}
	}
	return fmt.Errorf("%w: %d", ErrUnknownSwitch, id)
}

// Neighbors returns the switches adjacent to id, sorted. The slice is a copy.
func (n *Network) Neighbors(id SwitchID) []SwitchID {
	out := append([]SwitchID(nil), n.adj[id]...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Ports returns all external ports sorted by ID. The slice is a copy.
func (n *Network) Ports() []ExternalPort {
	out := append([]ExternalPort(nil), n.ports...)
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Port returns the external port with the given ID.
func (n *Network) Port(id PortID) (ExternalPort, bool) {
	for _, p := range n.ports {
		if p.ID == id {
			return p, true
		}
	}
	return ExternalPort{}, false
}

// IngressPorts returns the ports where traffic enters, sorted by ID.
func (n *Network) IngressPorts() []ExternalPort {
	var out []ExternalPort
	for _, p := range n.ports {
		if p.Ingress {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// EgressPorts returns the ports where traffic may exit, sorted by ID.
func (n *Network) EgressPorts() []ExternalPort {
	var out []ExternalPort
	for _, p := range n.ports {
		if p.Egress {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// NumLinks returns the number of undirected links.
func (n *Network) NumLinks() int {
	total := 0
	for _, nb := range n.adj {
		total += len(nb)
	}
	return total / 2
}

// Connected reports whether the switch graph is connected.
func (n *Network) Connected() bool {
	if len(n.switches) == 0 {
		return true
	}
	seen := map[SwitchID]bool{n.switches[0].ID: true}
	queue := []SwitchID{n.switches[0].ID}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range n.adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return len(seen) == len(n.switches)
}

// Validate checks structural invariants.
func (n *Network) Validate() error {
	for _, p := range n.ports {
		if _, ok := n.adj[p.Switch]; !ok {
			return fmt.Errorf("%w: port %d on missing switch %d", ErrUnknownSwitch, p.ID, p.Switch)
		}
		if !p.Ingress && !p.Egress {
			return fmt.Errorf("topology: port %d is neither ingress nor egress", p.ID)
		}
	}
	for _, s := range n.switches {
		if s.Capacity < 0 {
			return fmt.Errorf("topology: switch %d has negative capacity", s.ID)
		}
	}
	return nil
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	c := NewNetwork()
	c.switches = append([]Switch(nil), n.switches...)
	c.ports = append([]ExternalPort(nil), n.ports...)
	for id, nb := range n.adj {
		c.adj[id] = append([]SwitchID(nil), nb...)
	}
	return c
}
