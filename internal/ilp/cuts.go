package ilp

import (
	"math"
	"sort"
	"strconv"
)

// Lifted cover cuts from knapsack rows. The paper's capacity constraint
// (Eq. 3) is one knapsack row per switch, and with rule merging its
// savings terms give genuinely weighted knapsacks — exactly the rows
// cover cuts strengthen. Separation runs only at the root, in rounds:
// separate from the current LP point, age the pool, rebuild the LP with
// the active cuts, and re-solve. Everything is deterministic: rows are
// scanned in model order, ties break by variable index, and the pool is
// an ordered slice, so the cut set is a pure function of the instance.

// Cut separation limits.
const (
	// cutRoundLimit bounds root separation rounds.
	cutRoundLimit = 8
	// maxCutsPerRound bounds how many new cuts one round may add.
	maxCutsPerRound = 64
	// minCutViolation is the minimum LP violation for a cut to enter the
	// pool; weaker cuts churn the basis without moving the bound.
	minCutViolation = 1e-4
	// cutIdleLimit drops a pool cut after this many consecutive rounds
	// with positive slack (activity-based aging).
	cutIdleLimit = 2
)

// poolCut is one pooled cover cut with its aging counter.
type poolCut struct {
	c    Constraint
	idle int
}

// cutPool is the deterministic root cut pool: an ordered slice plus a
// key set for duplicate suppression. Dropped cuts stay in the key set,
// so a cut can never oscillate in and out across rounds (termination).
type cutPool struct {
	cuts []poolCut
	seen map[string]bool
}

func newCutPool() *cutPool {
	return &cutPool{seen: make(map[string]bool)}
}

// age updates slack-based idle counters at the LP point x and drops
// cuts idle for cutIdleLimit rounds. Reports whether the active set
// changed.
func (p *cutPool) age(x []float64) bool {
	kept := p.cuts[:0]
	changed := false
	for _, pc := range p.cuts {
		act := 0.0
		for _, t := range pc.c.Terms {
			act += t.Coef * x[t.Var]
		}
		if pc.c.RHS-act > 1e-7 {
			pc.idle++
		} else {
			pc.idle = 0
		}
		if pc.idle >= cutIdleLimit {
			changed = true
			continue
		}
		kept = append(kept, pc)
	}
	p.cuts = kept
	return changed
}

// add inserts a cut unless an identical one was ever pooled. Reports
// whether it was added.
func (p *cutPool) add(c Constraint) bool {
	k := cutKey(c)
	if p.seen[k] {
		return false
	}
	p.seen[k] = true
	p.cuts = append(p.cuts, poolCut{c: c})
	return true
}

// rows returns the active cut rows in pool order.
func (p *cutPool) rows() []Constraint {
	out := make([]Constraint, len(p.cuts))
	for i := range p.cuts {
		out[i] = p.cuts[i].c
	}
	return out
}

// cutKey canonicalizes a cut (terms are already var-sorted) for
// duplicate suppression.
func cutKey(c Constraint) string {
	b := make([]byte, 0, 16*len(c.Terms))
	for _, t := range c.Terms {
		b = strconv.AppendInt(b, int64(t.Var), 10)
		b = append(b, ':')
		b = strconv.AppendFloat(b, t.Coef, 'g', -1, 64)
		b = append(b, ',')
	}
	b = append(b, '|')
	b = strconv.AppendFloat(b, c.RHS, 'g', -1, 64)
	return string(b)
}

// coverItem is one knapsack item after normalization to positive
// coefficients over (possibly complemented) binaries.
type coverItem struct {
	v    int     // model variable
	a    float64 // positive coefficient
	comp bool    // item variable is the complement 1-x_v
	val  float64 // LP value of the (complemented) item variable
}

// separateCovers scans the model rows (LE and EQ as-is, GE negated) for
// violated lifted cover cuts at the LP point x, honoring the current
// tightened bounds. At most one cut per source row per call.
func separateCovers(m *Model, lo, hi []float64, x []float64, pool *cutPool) []Constraint {
	var out []Constraint
	items := make([]coverItem, 0, 32)
	for ci := range m.cons {
		if len(out) >= maxCutsPerRound {
			break
		}
		c := &m.cons[ci]
		switch c.Op {
		case LE, EQ:
			if cut, ok := coverFromRow(m, c.Terms, c.RHS, 1, lo, hi, x, &items); ok && pool.add(cut) {
				out = append(out, cut)
			}
		case GE:
			if cut, ok := coverFromRow(m, c.Terms, c.RHS, -1, lo, hi, x, &items); ok && pool.add(cut) {
				out = append(out, cut)
			}
		}
	}
	return out
}

// coverFromRow derives a violated lifted cover cut from one knapsack
// row sign*(sum a x) <= sign*rhs, or reports ok=false. items is reused
// scratch.
func coverFromRow(m *Model, terms []Term, rhs, sign float64, lo, hi []float64, x []float64, items *[]coverItem) (Constraint, bool) {
	its := (*items)[:0]
	b := sign * rhs
	allEqual := true
	firstA := 0.0
	for _, t := range terms {
		a := sign * t.Coef
		j := t.Var
		//lint:exactfloat fixed-variable fold on stored bounds; bounds are assigned, never computed
		if lo[j] == hi[j] {
			b -= a * lo[j] // fixed: fold into the right-hand side
			continue
		}
		// Only pure binary rows qualify; a continuous or general-integer
		// variable breaks the 0/1 cover argument.
		if !m.vars[j].integer || lo[j] < -1e-9 || hi[j] > 1+1e-9 {
			return Constraint{}, false
		}
		it := coverItem{v: j, a: a, val: x[j]}
		if a < 0 {
			// Complement: a*x = a - a*(1-x), so the item coefficient
			// flips positive and the constant moves to the RHS.
			it.a, it.comp, it.val = -a, true, 1-x[j]
			b -= a
		}
		if it.a < 1e-12 {
			continue
		}
		if len(its) == 0 {
			firstA = it.a
		} else if math.Abs(it.a-firstA) > 1e-12 {
			allEqual = false
		}
		its = append(its, it)
	}
	*items = its
	if len(its) < 2 || b < 1e-9 {
		return Constraint{}, false
	}
	total := 0.0
	for i := range its {
		total += its[i].a
	}
	if total <= b+1e-9 {
		return Constraint{}, false // no cover exists
	}
	if allEqual {
		// Uniform rows with integral capacity ratio (e.g. unit-coefficient
		// capacities) only yield covers already implied by the row.
		if q := b / firstA; math.Abs(q-math.Round(q)) < 1e-9 {
			return Constraint{}, false
		}
	}
	// Greedy cover: take items by decreasing LP value (ties: variable
	// index) until the weight exceeds the capacity.
	sort.Slice(its, func(i, k int) bool {
		//lint:exactfloat deterministic sort key: any exact-tie order is fine, but it must not depend on tolerance
		if its[i].val != its[k].val {
			return its[i].val > its[k].val
		}
		return its[i].v < its[k].v
	})
	weight := 0.0
	nc := 0
	for nc < len(its) && weight <= b+1e-9 {
		weight += its[nc].a
		nc++
	}
	if weight <= b+1e-9 {
		return Constraint{}, false
	}
	cover := its[:nc]
	// Minimalize: walk the cover from least valuable back and drop items
	// the cover does not need (a minimal cover lifts correctly).
	drop := make([]bool, len(cover))
	for i := len(cover) - 1; i >= 0; i-- {
		if weight-cover[i].a > b+1e-9 {
			weight -= cover[i].a
			drop[i] = true
		}
	}
	kept := cover[:0]
	for i := range cover {
		if !drop[i] {
			kept = append(kept, cover[i])
		}
	}
	cover = kept
	if len(cover) < 2 {
		return Constraint{}, false
	}
	// Violation test on the cover inequality sum x~ <= |C|-1.
	lhs := 0.0
	aMax := 0.0
	for i := range cover {
		lhs += cover[i].val
		if cover[i].a > aMax {
			aMax = cover[i].a
		}
	}
	if lhs <= float64(len(cover)-1)+minCutViolation {
		return Constraint{}, false
	}
	// Extension lifting: every item at least as heavy as the heaviest
	// cover member joins the inequality at coefficient 1.
	rhsOut := float64(len(cover) - 1)
	ct := make([]Term, 0, len(its))
	inCover := make(map[int]bool, len(cover))
	for i := range cover {
		inCover[cover[i].v] = true
	}
	emit := func(it coverItem) {
		if it.comp {
			// x~ = 1 - x: the term flips sign and shifts the RHS.
			ct = append(ct, Term{Var: it.v, Coef: -1})
			rhsOut--
			return
		}
		ct = append(ct, Term{Var: it.v, Coef: 1})
	}
	for i := range cover {
		emit(cover[i])
	}
	for i := range its {
		if !inCover[its[i].v] && its[i].a >= aMax-1e-12 {
			emit(its[i])
		}
	}
	sortTermsByVar(ct)
	return Constraint{Terms: ct, Op: LE, RHS: rhsOut, Name: "cover"}, true
}
