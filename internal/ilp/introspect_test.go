package ilp

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"rulefit/internal/obs"
)

// TestSolveIntrospectionDoesNotPerturb pins the flight-recorder
// invariant at the solver layer: attaching the full introspection stack
// (flight ring, live progress cell, pprof labels, trace ID) returns the
// same status, objective, solution vector, and search effort as a bare
// solve — for every worker count. Exact comparison is intentional.
func TestSolveIntrospectionDoesNotPerturb(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		bare, err := Solve(parallelFixture(7, 16), Options{TimeLimit: 60 * time.Second, Workers: w})
		if err != nil {
			t.Fatalf("workers=%d bare: %v", w, err)
		}
		rec := obs.NewFlightRecorder(obs.FlightOpts{Size: 256})
		var prog obs.Progress
		inst, err := Solve(parallelFixture(7, 16), Options{
			TimeLimit: 60 * time.Second, Workers: w,
			Sink: rec, Progress: &prog, ProfileLabels: true, TraceID: "req-000042",
		})
		if err != nil {
			t.Fatalf("workers=%d instrumented: %v", w, err)
		}
		if inst.Status != bare.Status {
			t.Fatalf("workers=%d: status %v with recorder, %v without", w, inst.Status, bare.Status)
		}
		//lint:exactfloat introspection contract: recorder-on must agree bit-for-bit
		if inst.Objective != bare.Objective {
			t.Fatalf("workers=%d: objective %v with recorder, %v without", w, inst.Objective, bare.Objective)
		}
		if !reflect.DeepEqual(inst.Values, bare.Values) {
			t.Fatalf("workers=%d: solution vector differs with recorder attached", w)
		}
		if inst.Stats.Nodes != bare.Stats.Nodes || inst.Stats.SimplexIters != bare.Stats.SimplexIters {
			t.Fatalf("workers=%d: search effort differs: (%d nodes, %d iters) with recorder vs (%d, %d) without",
				w, inst.Stats.Nodes, inst.Stats.SimplexIters, bare.Stats.Nodes, bare.Stats.SimplexIters)
		}
		if rec.Dump().Seen == 0 {
			t.Fatalf("workers=%d: flight recorder saw no events", w)
		}
	}
}

// TestSolveFlightRecorderMatchesFullTrace checks the ring is a faithful
// pass-through when it does not wrap: an oversized ring retains exactly
// the event stream a full Recorder sees, in the same order.
func TestSolveFlightRecorderMatchesFullTrace(t *testing.T) {
	var full obs.Recorder
	rec := obs.NewFlightRecorder(obs.FlightOpts{Size: 1 << 16})
	if _, err := Solve(parallelFixture(3, 12), Options{
		TimeLimit: 60 * time.Second, Workers: 1, Sink: obs.Multi(&full, rec),
	}); err != nil {
		t.Fatal(err)
	}
	d := rec.Dump()
	if d.Dropped != 0 || d.Sampled != 0 {
		t.Fatalf("single-writer unwrapped ring lost events: dropped=%d sampled=%d", d.Dropped, d.Sampled)
	}
	if !reflect.DeepEqual(d.Events, full.Events()) {
		t.Fatalf("ring retained %d events, full trace has %d — streams differ",
			len(d.Events), len(full.Events()))
	}
}

// TestSolveProgressFinalSnapshot checks the live-progress contract: the
// last published snapshot is the done snapshot and agrees with Stats.
func TestSolveProgressFinalSnapshot(t *testing.T) {
	var prog obs.Progress
	sol, err := Solve(parallelFixture(7, 16), Options{
		TimeLimit: 60 * time.Second, Workers: 2, Progress: &prog, TraceID: "req-000007",
	})
	if err != nil {
		t.Fatal(err)
	}
	s, ok := prog.Snapshot()
	if !ok {
		t.Fatal("no progress snapshot published")
	}
	if !s.Done || s.Phase != "done" {
		t.Fatalf("final snapshot not done: %+v", s)
	}
	if s.TraceID != "req-000007" {
		t.Fatalf("snapshot trace ID %q", s.TraceID)
	}
	if s.Nodes != sol.Stats.Nodes {
		t.Fatalf("snapshot nodes %d, Stats.Nodes %d", s.Nodes, sol.Stats.Nodes)
	}
	if s.Workers != 2 {
		t.Fatalf("snapshot workers %d", s.Workers)
	}
	if sol.Status == Optimal {
		if !s.HaveIncumbent || s.Incumbent != sol.Objective {
			t.Fatalf("done snapshot incumbent %+v disagrees with objective %g", s, sol.Objective)
		}
		if s.Gap != sol.Stats.Gap {
			t.Fatalf("snapshot gap %g, Stats.Gap %g", s.Gap, sol.Stats.Gap)
		}
	}
}

// TestSolveProgressInfeasible: a proven-infeasible solve still publishes
// a terminal done snapshot, with the -1 gap sentinel and no incumbent.
func TestSolveProgressInfeasible(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a", 1)
	b := m.AddBinary("b", 1)
	m.AddConstraint([]Term{{a, 1}, {b, 1}}, GE, 2, "both")
	m.AddConstraint([]Term{{a, 1}, {b, 1}}, LE, 1, "atmost1")
	var prog obs.Progress
	sol, err := Solve(m, Options{TimeLimit: 60 * time.Second, Progress: &prog})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v", sol.Status)
	}
	s, ok := prog.Snapshot()
	if !ok || !s.Done {
		t.Fatalf("no terminal snapshot for infeasible solve: %+v", s)
	}
	if s.HaveIncumbent || s.Gap != -1 {
		t.Fatalf("infeasible done snapshot should carry no incumbent and gap -1: %+v", s)
	}
}

// TestSolveSearchProfileStats checks the new Stats search-profile
// fields: RootGap (root-LP bound vs final objective) and
// LastIncumbentAtNode (where the winning incumbent appeared).
func TestSolveSearchProfileStats(t *testing.T) {
	sol, err := Solve(parallelFixture(7, 16), Options{TimeLimit: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if sol.Stats.RootGap < 0 {
		t.Fatalf("RootGap = %g for an optimal solve with a root LP; want >= 0", sol.Stats.RootGap)
	}
	if sol.Stats.LastIncumbentAtNode < 0 || sol.Stats.LastIncumbentAtNode > sol.Stats.Nodes {
		t.Fatalf("LastIncumbentAtNode = %d outside [0, %d]", sol.Stats.LastIncumbentAtNode, sol.Stats.Nodes)
	}
	if sol.Stats.Incumbents == 0 {
		t.Fatal("optimal solve recorded no incumbents")
	}

	// Infeasible: both fields keep their sentinels.
	m := NewModel()
	a := m.AddBinary("a", 1)
	m.AddConstraint([]Term{{a, 1}}, GE, 2, "impossible")
	inf, err := Solve(m, Options{TimeLimit: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if inf.Status != Infeasible {
		t.Fatalf("status %v", inf.Status)
	}
	if inf.Stats.RootGap != -1 {
		t.Fatalf("infeasible RootGap = %g, want -1 sentinel", inf.Stats.RootGap)
	}
}

// TestDisabledIntrospectionOverheadSmoke extends the nil-sink gate to
// the whole introspection stack: a solve with recorder, progress, and
// labels all off must not be grossly slower than one with them on —
// i.e. the off path really is just branches. Same wide 1.5x margin as
// TestDisabledSinkOverheadSmoke to absorb CI noise.
func TestDisabledIntrospectionOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	median := func(opts func() Options) time.Duration {
		const runs = 7
		times := make([]time.Duration, 0, runs)
		for i := 0; i < runs; i++ {
			m := parallelFixture(7, 16)
			start := time.Now()
			if _, err := Solve(m, opts()); err != nil {
				t.Fatal(err)
			}
			times = append(times, time.Since(start))
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[runs/2]
	}
	off := median(func() Options {
		return Options{TimeLimit: 60 * time.Second, Workers: 1}
	})
	on := median(func() Options {
		var prog obs.Progress
		return Options{TimeLimit: 60 * time.Second, Workers: 1,
			Sink: obs.NewFlightRecorder(obs.FlightOpts{Size: 4096}), Progress: &prog, ProfileLabels: true}
	})
	if off > on*3/2 {
		t.Fatalf("introspection-off median %v exceeds 1.5x the introspection-on median %v", off, on)
	}
}

// BenchmarkSolveFlightRecorder measures the always-on recorder's cost
// against BenchmarkSolveSinkDisabled / BenchmarkSolveSinkNoop.
func BenchmarkSolveFlightRecorder(b *testing.B) {
	rec := obs.NewFlightRecorder(obs.FlightOpts{Size: 4096})
	for i := 0; i < b.N; i++ {
		m := parallelFixture(7, 16)
		if _, err := Solve(m, Options{TimeLimit: 60 * time.Second, Workers: 1, Sink: rec}); err != nil {
			b.Fatal(err)
		}
	}
}
