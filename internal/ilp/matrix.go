package ilp

// cscMatrix is an immutable compressed-sparse-column matrix holding the
// LP's structural and slack columns in one struct-of-arrays slab.
// Column j spans rows/vals[ptr[j]:ptr[j+1]]. Branch & bound clones share
// one cscMatrix pointer — only bounds, states, and the basis are
// per-worker — so the standard-form constraint data is built once per
// solve and never copied or mutated again.
type cscMatrix struct {
	n    int
	ptr  []int32
	rows []int32
	vals []float64
}

// buildStandardForm assembles the CSC matrix of the standard-form LP:
// one column per structural variable followed by one slack column per
// row. rows is the model's constraint list plus any appended cut rows.
// The three slabs are sized exactly and filled in two passes (count,
// then scatter), the arena-style allocation pattern used throughout the
// solver's SoA core.
func buildStandardForm(nStruct int, rows []Constraint) *cscMatrix {
	nnz := 0
	for i := range rows {
		nnz += len(rows[i].Terms)
	}
	nCols := nStruct + len(rows)
	mat := &cscMatrix{
		n:    nCols,
		ptr:  make([]int32, nCols+1),
		rows: make([]int32, nnz+len(rows)),
		vals: make([]float64, nnz+len(rows)),
	}
	// Count structural column lengths.
	for i := range rows {
		for _, t := range rows[i].Terms {
			mat.ptr[t.Var+1]++
		}
	}
	for j := 0; j < nStruct; j++ {
		mat.ptr[j+1] += mat.ptr[j]
	}
	// Scatter structural entries; next[j] is the fill cursor.
	next := make([]int32, nStruct)
	for j := 0; j < nStruct; j++ {
		next[j] = mat.ptr[j]
	}
	for i := range rows {
		for _, t := range rows[i].Terms {
			p := next[t.Var]
			mat.rows[p] = int32(i)
			mat.vals[p] = t.Coef
			next[t.Var]++
		}
	}
	// Slack singleton columns.
	p := mat.ptr[nStruct]
	for i := range rows {
		mat.rows[p] = int32(i)
		mat.vals[p] = 1
		p++
		mat.ptr[nStruct+i+1] = p
	}
	return mat
}
