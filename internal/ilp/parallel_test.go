package ilp

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// parallelFixture builds one placement-shaped MILP (implications +
// covers + capacities, the structure of Eqs. 1–5) from a seed.
func parallelFixture(seed int64, n int) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel()
	vars := make([]int, n)
	for i := range vars {
		vars[i] = m.AddBinary("v", float64(1+rng.Intn(3)))
	}
	for c := 0; c < n/2; c++ {
		a, b := vars[rng.Intn(n)], vars[rng.Intn(n)]
		if a != b {
			m.AddConstraint([]Term{{a, 1}, {b, -1}}, LE, 0, "imp")
		}
	}
	for c := 0; c < n/3+1; c++ {
		var terms []Term
		for _, v := range vars {
			if rng.Float64() < 0.4 {
				terms = append(terms, Term{v, 1})
			}
		}
		if len(terms) > 0 {
			m.AddConstraint(terms, GE, 1, "cover")
		}
	}
	var capTerms []Term
	for _, v := range vars {
		capTerms = append(capTerms, Term{v, 1})
	}
	// A tight capacity keeps branch & bound honest (many bound-tied
	// placements near the optimum).
	m.AddConstraint(capTerms, LE, float64(n/2+1), "cap")
	return m
}

// TestSolveDeterministicAcrossWorkers asserts the tentpole guarantee:
// status, objective, and the solution vector are byte-identical for
// Workers ∈ {1, 2, 8}. Exact (not tolerance) comparison is intentional —
// the parallel search is deterministic by construction, so any drift is
// a bug, not noise.
func TestSolveDeterministicAcrossWorkers(t *testing.T) {
	fixtures := []struct {
		name string
		m    func() *Model
	}{
		{"cover12", func() *Model { return parallelFixture(3, 12) }},
		{"cover16", func() *Model { return parallelFixture(7, 16) }},
		{"cover20", func() *Model { return parallelFixture(11, 20) }},
		{"infeasible", func() *Model {
			m := NewModel()
			a := m.AddBinary("a", 1)
			b := m.AddBinary("b", 1)
			m.AddConstraint([]Term{{a, 1}, {b, 1}}, GE, 2, "both")
			m.AddConstraint([]Term{{a, 1}, {b, 1}}, LE, 1, "atmost1")
			return m
		}},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			type outcome struct {
				status Status
				obj    float64
				values []float64
			}
			var base *outcome
			for _, w := range []int{1, 2, 8} {
				sol, err := Solve(fx.m(), Options{TimeLimit: 60 * time.Second, Workers: w})
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if sol.Stats.Workers != w {
					t.Errorf("workers=%d: Stats.Workers = %d", w, sol.Stats.Workers)
				}
				got := &outcome{status: sol.Status, obj: sol.Objective, values: sol.Values}
				if base == nil {
					base = got
					continue
				}
				if got.status != base.status {
					t.Fatalf("workers=%d: status %v, workers=1 got %v", w, got.status, base.status)
				}
				//lint:exactfloat determinism contract: parallel solves must agree bit-for-bit, not within tolerance
				if got.obj != base.obj {
					t.Fatalf("workers=%d: objective %v, workers=1 got %v", w, got.obj, base.obj)
				}
				if !reflect.DeepEqual(got.values, base.values) {
					t.Fatalf("workers=%d: solution vector differs from workers=1:\n  %v\nvs\n  %v",
						w, got.values, base.values)
				}
			}
		})
	}
}

// TestSolveWorkersMatchSequentialSearch asserts that the node and
// iteration counts — not just the answer — are identical across worker
// counts: the parallel search must expand the same tree.
func TestSolveWorkersMatchSequentialSearch(t *testing.T) {
	m1 := parallelFixture(42, 18)
	m8 := parallelFixture(42, 18)
	s1, err := Solve(m1, Options{TimeLimit: 60 * time.Second, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s8, err := Solve(m8, Options{TimeLimit: 60 * time.Second, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Stats.Nodes != s8.Stats.Nodes || s1.Stats.SimplexIters != s8.Stats.SimplexIters {
		t.Errorf("search effort differs: workers=1 (%d nodes, %d iters) vs workers=8 (%d nodes, %d iters)",
			s1.Stats.Nodes, s1.Stats.SimplexIters, s8.Stats.Nodes, s8.Stats.SimplexIters)
	}
}

// TestSolveParallelStress solves a tight instance with many workers; its
// real value is under `go test -race`, which checks the batch fan-out
// for data races. -short keeps it to one instance.
func TestSolveParallelStress(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 1
	}
	for trial := 0; trial < trials; trial++ {
		m := parallelFixture(int64(100+trial), 22)
		sol, err := Solve(m, Options{TimeLimit: 60 * time.Second, Workers: 8})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != Optimal && sol.Status != Infeasible {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		if sol.Status == Optimal {
			if err := VerifySolution(m, sol.Values); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}
