package ilp

import (
	"math"
	"math/rand"
	"testing"
)

// denseMatVec computes A x for a column-wise sparse matrix.
func denseMatVec(m int, cols [][]entry, x []float64) []float64 {
	out := make([]float64, m)
	for j, col := range cols {
		for _, e := range col {
			out[e.row] += e.val * x[j]
		}
	}
	return out
}

// denseMatTVec computes A^T y.
func denseMatTVec(m int, cols [][]entry, y []float64) []float64 {
	out := make([]float64, m)
	for j, col := range cols {
		for _, e := range col {
			out[j] += e.val * y[e.row]
		}
	}
	return out
}

func TestLUIdentity(t *testing.T) {
	m := 4
	cols := make([][]entry, m)
	for j := range cols {
		cols[j] = []entry{{row: j, val: 1}}
	}
	f, err := luFactorize(m, cols)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3, 4}
	x := append([]float64(nil), b...)
	f.ftran(x)
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-12 {
			t.Errorf("ftran identity x[%d] = %g", i, x[i])
		}
	}
	y := append([]float64(nil), b...)
	f.btran(y)
	for i := range b {
		if math.Abs(y[i]-b[i]) > 1e-12 {
			t.Errorf("btran identity y[%d] = %g", i, y[i])
		}
	}
}

func TestLUPermutation(t *testing.T) {
	// Columns of a permutation matrix: col j has 1 in row (j+1) mod m.
	m := 5
	cols := make([][]entry, m)
	for j := range cols {
		cols[j] = []entry{{row: (j + 1) % m, val: 1}}
	}
	f, err := luFactorize(m, cols)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{10, 20, 30, 40, 50}
	x := append([]float64(nil), b...)
	f.ftran(x)
	// Verify A x = b.
	ax := denseMatVec(m, cols, x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-9 {
			t.Errorf("Ax[%d] = %g, want %g", i, ax[i], b[i])
		}
	}
}

func TestLUSingular(t *testing.T) {
	m := 3
	cols := [][]entry{
		{{row: 0, val: 1}},
		{{row: 0, val: 2}}, // linearly dependent with col 0
		{{row: 2, val: 1}},
	}
	if _, err := luFactorize(m, cols); err == nil {
		t.Error("expected singular error")
	}
}

func TestLURandomDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.Intn(12)
		cols := make([][]entry, m)
		for j := range cols {
			for i := 0; i < m; i++ {
				if rng.Float64() < 0.5 {
					cols[j] = append(cols[j], entry{row: i, val: rng.NormFloat64()})
				}
			}
			// Guarantee a strong diagonal to keep matrices nonsingular.
			cols[j] = append(cols[j], entry{row: j, val: 3 + rng.Float64()})
		}
		f, err := luFactorize(m, cols)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// ftran check: A x = b.
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := append([]float64(nil), b...)
		f.ftran(x)
		ax := denseMatVec(m, cols, x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-7 {
				t.Fatalf("trial %d: Ax[%d] = %g, want %g", trial, i, ax[i], b[i])
			}
		}
		// btran check: A^T y = c.
		c := make([]float64, m)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		y := append([]float64(nil), c...)
		f.btran(y)
		aty := denseMatTVec(m, cols, y)
		for i := range c {
			if math.Abs(aty[i]-c[i]) > 1e-7 {
				t.Fatalf("trial %d: A'y[%d] = %g, want %g", trial, i, aty[i], c[i])
			}
		}
	}
}

func TestLUSparseStructured(t *testing.T) {
	// Mimic a simplex basis: mostly unit (slack) columns, a few
	// structural columns with 2-4 entries.
	rng := rand.New(rand.NewSource(11))
	m := 200
	cols := make([][]entry, m)
	for j := range cols {
		if rng.Float64() < 0.7 {
			cols[j] = []entry{{row: j, val: 1}}
			continue
		}
		cols[j] = []entry{{row: j, val: 2 + rng.Float64()}}
		for k := 0; k < 1+rng.Intn(3); k++ {
			r := rng.Intn(m)
			if r != j {
				cols[j] = append(cols[j], entry{row: r, val: rng.NormFloat64()})
			}
		}
	}
	f, err := luFactorize(m, cols)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := append([]float64(nil), b...)
	f.ftran(x)
	ax := denseMatVec(m, cols, x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-6 {
			t.Fatalf("Ax[%d] = %g, want %g", i, ax[i], b[i])
		}
	}
	c := make([]float64, m)
	for i := range c {
		c[i] = rng.NormFloat64()
	}
	y := append([]float64(nil), c...)
	f.btran(y)
	aty := denseMatTVec(m, cols, y)
	for i := range c {
		if math.Abs(aty[i]-c[i]) > 1e-6 {
			t.Fatalf("A'y[%d] = %g, want %g", i, aty[i], c[i])
		}
	}
}

func TestLUDuplicateEntriesCombine(t *testing.T) {
	// Duplicate (row, val) entries in one column must sum.
	cols := [][]entry{
		{{row: 0, val: 1}, {row: 0, val: 1}}, // effectively 2 at row 0
		{{row: 1, val: 1}},
	}
	f, err := luFactorize(2, cols)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{4, 3}
	f.ftran(x)
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [2 3]", x)
	}
}
