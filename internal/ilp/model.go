// Package ilp is a self-contained mixed-integer linear programming solver
// standing in for the commercial ILP solver (CPLEX) used by the paper's
// evaluation. It implements a bounded-variable revised simplex method
// with sparse LU factorization and product-form basis updates for the LP
// relaxation, plus presolve and branch & bound for integrality.
//
// The solver is exact in the paper's sense: it proves optimality or
// infeasibility rather than approximating, which is the property the
// paper's "no false negatives" claim rests on.
package ilp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a linear constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota + 1 // <=
	GE               // >=
	EQ               // ==
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Inf is the bound value representing infinity.
var Inf = math.Inf(1)

// Term is one coefficient of a linear constraint.
type Term struct {
	Var  int
	Coef float64
}

// Constraint is a sparse linear row: sum(terms) Op RHS.
type Constraint struct {
	Terms []Term
	Op    Op
	RHS   float64
	Name  string
}

type variable struct {
	name    string
	lo, hi  float64
	integer bool
	obj     float64
}

// Model is a minimization MILP under construction.
type Model struct {
	vars []variable
	cons []Constraint
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// AddVar adds a continuous variable with the given bounds and objective
// coefficient, returning its index.
func (m *Model) AddVar(name string, lo, hi, obj float64) int {
	m.vars = append(m.vars, variable{name: name, lo: lo, hi: hi, obj: obj})
	return len(m.vars) - 1
}

// AddBinary adds a {0,1} integer variable, returning its index.
func (m *Model) AddBinary(name string, obj float64) int {
	m.vars = append(m.vars, variable{name: name, lo: 0, hi: 1, integer: true, obj: obj})
	return len(m.vars) - 1
}

// AddInteger adds a bounded integer variable, returning its index.
func (m *Model) AddInteger(name string, lo, hi, obj float64) int {
	m.vars = append(m.vars, variable{name: name, lo: lo, hi: hi, integer: true, obj: obj})
	return len(m.vars) - 1
}

// SetObj overrides a variable's objective coefficient.
func (m *Model) SetObj(v int, obj float64) { m.vars[v].obj = obj }

// AddConstraint appends a linear constraint. Terms with duplicate
// variables are combined.
func (m *Model) AddConstraint(terms []Term, op Op, rhs float64, name string) {
	m.cons = append(m.cons, Constraint{Terms: combineTerms(terms), Op: op, RHS: rhs, Name: name})
}

// combineTerms merges duplicate variables and drops zero coefficients.
func combineTerms(terms []Term) []Term {
	seen := make(map[int]int, len(terms))
	out := make([]Term, 0, len(terms))
	for _, t := range terms {
		if idx, ok := seen[t.Var]; ok {
			out[idx].Coef += t.Coef
			continue
		}
		seen[t.Var] = len(out)
		out = append(out, t)
	}
	w := 0
	for _, t := range out {
		//lint:exactfloat only exactly-cancelled coefficients may be dropped; a tiny residual coefficient is still part of the model
		if t.Coef != 0 {
			out[w] = t
			w++
		}
	}
	return out[:w]
}

// NumVars returns the variable count.
func (m *Model) NumVars() int { return len(m.vars) }

// NumConstraints returns the constraint count.
func (m *Model) NumConstraints() int { return len(m.cons) }

// VarName returns the name of variable v.
func (m *Model) VarName(v int) string { return m.vars[v].name }

// Validation errors.
var (
	ErrBadBounds = errors.New("ilp: variable lower bound exceeds upper bound")
	ErrBadVar    = errors.New("ilp: constraint references unknown variable")
)

// Validate checks structural sanity of the model.
func (m *Model) Validate() error {
	for i, v := range m.vars {
		if v.lo > v.hi {
			return fmt.Errorf("%w: var %d (%s) [%g, %g]", ErrBadBounds, i, v.name, v.lo, v.hi)
		}
	}
	for ci, c := range m.cons {
		for _, t := range c.Terms {
			if t.Var < 0 || t.Var >= len(m.vars) {
				return fmt.Errorf("%w: constraint %d (%s) var %d", ErrBadVar, ci, c.Name, t.Var)
			}
		}
		if c.Op != LE && c.Op != GE && c.Op != EQ {
			return fmt.Errorf("ilp: constraint %d (%s) has invalid op %v", ci, c.Name, c.Op)
		}
	}
	return nil
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	// Optimal means a provably optimal integer solution was found.
	Optimal Status = iota + 1
	// Infeasible means no assignment satisfies the constraints.
	Infeasible
	// Feasible means a solution was found but optimality was not proven
	// within the limits.
	Feasible
	// LimitReached means the time or node limit expired with no solution.
	LimitReached
	// Unbounded means the objective can decrease without bound.
	Unbounded
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Feasible:
		return "feasible"
	case LimitReached:
		return "limit"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of solving a model.
type Solution struct {
	Status    Status
	Objective float64
	// Values holds one value per model variable (integral for integer
	// variables when Status is Optimal or Feasible).
	Values []float64
	Stats  Stats
}

// StopReason says why a solve stopped before proving its answer.
// StopNone means the search ran to completion (Optimal or Infeasible
// was proven, modulo lost subtrees).
type StopReason int

// Stop reasons, in precedence order when several apply.
const (
	// StopNone: the search exhausted the tree.
	StopNone StopReason = iota
	// StopDeadline: the wall-clock TimeLimit expired.
	StopDeadline
	// StopNodeLimit: the NodeLimit was reached.
	StopNodeLimit
	// StopLostSubtree: a node LP failed (numerics) and its subtree was
	// abandoned, so the exhausted tree no longer proves anything.
	StopLostSubtree
)

// String renders the stop reason.
func (r StopReason) String() string {
	switch r {
	case StopNone:
		return "none"
	case StopDeadline:
		return "deadline"
	case StopNodeLimit:
		return "node-limit"
	case StopLostSubtree:
		return "lost-subtree"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// Stats collects solver effort counters. SimplexIters and Nodes are
// summed across branch & bound workers; Workers records the parallelism
// the solve actually used.
//
// Every expanded node gets exactly one outcome, so
// Branched + PrunedBound + PrunedInfeasible + IntegralLeaves +
// LostSubtrees == Nodes. PrunedStale counts deque items discarded
// before expansion (bound dominated by a later incumbent); they are not
// nodes and not in that sum.
type Stats struct {
	SimplexIters int
	Nodes        int
	PresolveFix  int
	Workers      int
	// LURefactors counts basis LU refactorizations across all node LPs.
	LURefactors int

	// Per-outcome node counters (see invariant above).
	Branched         int
	PrunedBound      int
	PrunedInfeasible int
	IntegralLeaves   int
	LostSubtrees     int
	// PrunedStale counts items skipped at pop time, before becoming nodes.
	PrunedStale int
	// Incumbents counts incumbent improvements (first solution included).
	Incumbents int
	// LastIncumbentAtNode is the node id that produced the final
	// incumbent (0 when no incumbent landed). A low value against a high
	// Nodes total means the search found the eventual answer early and
	// spent the rest of the tree proving it — the signal pseudocost
	// branching is meant to improve.
	LastIncumbentAtNode int

	// CutsAdded counts lifted cover cuts accepted into the root pool, and
	// CutRoundsRoot the last root separation round that found work.
	CutsAdded     int
	CutRoundsRoot int
	// StrongBranchEvals counts reliability-initialization dual-simplex
	// trials; WarmStartReuses counts node LPs solved from the parent's
	// factored basis instead of the cold repair path.
	StrongBranchEvals int
	WarmStartReuses   int

	// StopReason says why the search ended early (StopNone when the tree
	// was exhausted cleanly).
	StopReason StopReason
	// BestBound is a valid lower bound on the optimal objective at the
	// end of the solve. Meaningful only when Gap >= 0.
	BestBound float64
	// Gap is the relative optimality gap
	// (Objective - BestBound) / max(|Objective|, 1e-9): 0 when
	// optimality was proven, positive for anytime solutions, and -1 when
	// undefined (no incumbent, infeasible, or unbounded) — a sentinel
	// rather than NaN/Inf so Stats stays JSON-encodable.
	Gap float64
	// RootGap is the relative gap the tree search had to close: the
	// final objective against the root relaxation bound after cuts,
	// (Objective - root) / max(|Objective|, 1e-9), >= 0. -1 when
	// undefined (no incumbent, or the root LP never completed).
	RootGap float64
}
