package ilp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestFullPricingMatchesPartial cross-checks the two pricing modes on
// random binary programs: statuses and optima must agree.
func TestFullPricingMatchesPartial(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 40; trial++ {
		m := NewModel()
		n := 5 + rng.Intn(10)
		vars := make([]int, n)
		for i := range vars {
			vars[i] = m.AddBinary("x", float64(1+rng.Intn(4)))
		}
		for c := 0; c < 3+rng.Intn(5); c++ {
			var terms []Term
			for _, v := range vars {
				if rng.Float64() < 0.4 {
					terms = append(terms, Term{v, 1})
				}
			}
			if len(terms) == 0 {
				continue
			}
			if rng.Intn(2) == 0 {
				m.AddConstraint(terms, GE, 1, "cover")
			} else {
				m.AddConstraint(terms, LE, float64(1+rng.Intn(3)), "cap")
			}
		}
		a, err := Solve(m, Options{TimeLimit: 20 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Solve(m, Options{TimeLimit: 20 * time.Second, FullPricing: true})
		if err != nil {
			t.Fatal(err)
		}
		if a.Status != b.Status {
			t.Fatalf("trial %d: partial=%v full=%v", trial, a.Status, b.Status)
		}
		if a.Status == Optimal && math.Abs(a.Objective-b.Objective) > 1e-6 {
			t.Fatalf("trial %d: objectives differ: %g vs %g", trial, a.Objective, b.Objective)
		}
	}
}

// TestNoFalseInfeasibleUnderNodeLimit ensures that exhausting the node
// budget on a feasible model yields LimitReached (or a feasible
// incumbent), never Infeasible.
func TestNoFalseInfeasibleUnderNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		m := NewModel()
		n := 12
		vars := make([]int, n)
		for i := range vars {
			vars[i] = m.AddBinary("x", 1)
		}
		// Feasible by construction: covers only.
		for c := 0; c < 6; c++ {
			var terms []Term
			for _, v := range vars {
				if rng.Float64() < 0.4 {
					terms = append(terms, Term{v, 1})
				}
			}
			if len(terms) > 0 {
				m.AddConstraint(terms, GE, 1, "cover")
			}
		}
		sol, err := Solve(m, Options{NodeLimit: 2})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status == Infeasible {
			t.Fatalf("trial %d: feasible model declared infeasible under node limit", trial)
		}
	}
}

// TestInfeasibleStillProven ensures genuinely infeasible models are
// still detected as Infeasible (not weakened to LimitReached).
func TestInfeasibleStillProven(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a", 1)
	b := m.AddBinary("b", 1)
	c := m.AddBinary("c", 1)
	m.AddConstraint([]Term{{a, 1}, {b, 1}, {c, 1}}, GE, 3, "all")
	m.AddConstraint([]Term{{a, 1}, {b, 1}}, LE, 1, "cap")
	sol, err := Solve(m, Options{TimeLimit: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}
