package ilp

import (
	"math/rand"
	"testing"
	"time"
)

// coveringModel builds a placement-shaped MILP: implications + covers +
// capacities over nVars binaries.
func coveringModel(nVars, nCovers, nCaps int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel()
	vars := make([]int, nVars)
	for i := range vars {
		vars[i] = m.AddBinary("v", 1)
	}
	for i := 0; i < nVars/4; i++ {
		a, b := vars[rng.Intn(nVars)], vars[rng.Intn(nVars)]
		if a != b {
			m.AddConstraint([]Term{{a, 1}, {b, -1}}, LE, 0, "imp")
		}
	}
	for c := 0; c < nCovers; c++ {
		var terms []Term
		for k := 0; k < 4+rng.Intn(5); k++ {
			terms = append(terms, Term{vars[rng.Intn(nVars)], 1})
		}
		m.AddConstraint(combineTerms(terms), GE, 1, "cover")
	}
	for c := 0; c < nCaps; c++ {
		var terms []Term
		for _, v := range vars {
			if rng.Float64() < 0.2 {
				terms = append(terms, Term{v, 1})
			}
		}
		if len(terms) > 0 {
			m.AddConstraint(terms, LE, float64(2+len(terms)/3), "cap")
		}
	}
	return m
}

func BenchmarkLUFactorizeStructured(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := 500
	cols := make([][]entry, m)
	for j := range cols {
		if rng.Float64() < 0.6 {
			cols[j] = []entry{{row: j, val: 1}}
			continue
		}
		cols[j] = []entry{{row: j, val: 2 + rng.Float64()}}
		for k := 0; k < 2+rng.Intn(3); k++ {
			r := rng.Intn(m)
			if r != j {
				cols[j] = append(cols[j], entry{row: r, val: rng.NormFloat64()})
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := luFactorize(m, cols); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLPRelaxation(b *testing.B) {
	m := coveringModel(300, 80, 20, 2)
	lo := make([]float64, m.NumVars())
	hi := make([]float64, m.NumVars())
	for j := range hi {
		hi[j] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := newLPSolver(m, lo, hi, nil)
		s.initBasis()
		if _, err := s.solveLP(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMILPSolve(b *testing.B) {
	m := coveringModel(120, 40, 10, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(m, Options{TimeLimit: 60 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != Optimal && sol.Status != Infeasible {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

func BenchmarkPresolve(b *testing.B) {
	m := coveringModel(400, 120, 30, 4)
	for i := 0; i < b.N; i++ {
		lo := make([]float64, m.NumVars())
		hi := make([]float64, m.NumVars())
		for j := range hi {
			hi[j] = 1
		}
		var stats Stats
		presolve(m, lo, hi, &stats)
	}
}
