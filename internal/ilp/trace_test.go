package ilp

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"rulefit/internal/obs"
)

// traceOf solves a fixture with a recorder attached and returns the
// solution plus the normalized (timing-stripped) event sequence.
func traceOf(t *testing.T, m *Model, workers int) (Solution, []obs.Event) {
	t.Helper()
	var rec obs.Recorder
	sol, err := Solve(m, Options{TimeLimit: 60 * time.Second, Workers: workers, Sink: &rec})
	if err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	for i := range events {
		events[i] = events[i].Normalize()
	}
	return sol, events
}

// TestTraceDeterministic asserts the tracing half of the determinism
// contract: the same model traced twice yields identical event
// sequences modulo timing fields, and Workers=1 vs Workers=4 yield the
// same sequence too (events are emitted only from the sequential merge
// loop).
func TestTraceDeterministic(t *testing.T) {
	_, base := traceOf(t, parallelFixture(5, 16), 1)
	if len(base) == 0 {
		t.Fatal("no events recorded")
	}
	_, again := traceOf(t, parallelFixture(5, 16), 1)
	if !reflect.DeepEqual(base, again) {
		t.Fatalf("same model traced twice differs:\n%v\nvs\n%v", base, again)
	}
	_, par := traceOf(t, parallelFixture(5, 16), 4)
	if !reflect.DeepEqual(base, par) {
		t.Fatalf("workers=1 vs workers=4 traces differ:\n%v\nvs\n%v", base, par)
	}
}

// TestTracingDoesNotPerturbSolve asserts the other half: a traced solve
// returns a Solution (stats included) deeply equal to an untraced one,
// across worker counts.
func TestTracingDoesNotPerturbSolve(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		plain, err := Solve(parallelFixture(9, 18), Options{TimeLimit: 60 * time.Second, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		traced, _ := traceOf(t, parallelFixture(9, 18), w)
		if !reflect.DeepEqual(plain, traced) {
			t.Fatalf("workers=%d: traced solve differs from untraced:\n%+v\nvs\n%+v", w, plain, traced)
		}
	}
}

// TestStatsOutcomeAccounting asserts the Stats invariant: per-outcome
// counters sum to Nodes, and the trace's node events agree with Stats.
func TestStatsOutcomeAccounting(t *testing.T) {
	for _, seed := range []int64{3, 7, 11, 42} {
		sol, events := traceOf(t, parallelFixture(seed, 16), 2)
		st := sol.Stats
		sum := st.Branched + st.PrunedBound + st.PrunedInfeasible + st.IntegralLeaves + st.LostSubtrees
		if sum != st.Nodes {
			t.Fatalf("seed %d: outcome counters sum to %d, Stats.Nodes = %d (%+v)", seed, sum, st.Nodes, st)
		}
		nodeEvents, skips, incumbents := 0, 0, 0
		var done *obs.Event
		for i, e := range events {
			switch e.Kind {
			case obs.KindNode:
				nodeEvents++
			case obs.KindSkip:
				skips++
			case obs.KindIncumbent:
				incumbents++
			case obs.KindDone:
				done = &events[i]
			}
		}
		if nodeEvents != st.Nodes {
			t.Fatalf("seed %d: %d node events, Stats.Nodes = %d", seed, nodeEvents, st.Nodes)
		}
		if skips != st.PrunedStale {
			t.Fatalf("seed %d: %d skip events, Stats.PrunedStale = %d", seed, skips, st.PrunedStale)
		}
		if incumbents != st.Incumbents {
			t.Fatalf("seed %d: %d incumbent events, Stats.Incumbents = %d", seed, incumbents, st.Incumbents)
		}
		if done == nil {
			t.Fatalf("seed %d: no done event", seed)
		}
		//lint:exactfloat the done event must carry the exact Stats values, not approximations
		if done.Gap != st.Gap || done.BestBound != st.BestBound {
			t.Fatalf("seed %d: done event gap/bound (%g, %g) != Stats (%g, %g)",
				seed, done.Gap, done.BestBound, st.Gap, st.BestBound)
		}
		if done.Reason != st.StopReason.String() || done.Outcome != sol.Status.String() {
			t.Fatalf("seed %d: done event %q/%q != Stats %q/%q",
				seed, done.Outcome, done.Reason, sol.Status, st.StopReason)
		}
	}
}

// TestTraceJSONLRoundTrip streams a solve through the JSONL writer and
// checks the re-read trace matches the in-memory recording.
func TestTraceJSONLRoundTrip(t *testing.T) {
	var rec obs.Recorder
	var buf bytes.Buffer
	w := obs.NewJSONLWriter(&buf)
	_, err := Solve(parallelFixture(7, 14),
		Options{TimeLimit: 60 * time.Second, Workers: 2, Sink: obs.Multi(&rec, w)})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec.Events()) {
		t.Fatalf("JSONL round trip differs from recorder (%d vs %d events)", len(got), len(rec.Events()))
	}
}

// TestStopReasonNodeLimit asserts the node limit is reported as the stop
// reason and the outcome accounting stays intact when the search is cut.
func TestStopReasonNodeLimit(t *testing.T) {
	sol, err := Solve(parallelFixture(11, 20), Options{NodeLimit: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := sol.Stats
	if st.StopReason != StopNodeLimit {
		t.Fatalf("StopReason = %v, want %v (status %v)", st.StopReason, StopNodeLimit, sol.Status)
	}
	if st.Nodes > 3 {
		t.Fatalf("Nodes = %d exceeds the limit", st.Nodes)
	}
	sum := st.Branched + st.PrunedBound + st.PrunedInfeasible + st.IntegralLeaves + st.LostSubtrees
	if sum != st.Nodes {
		t.Fatalf("outcome counters sum to %d, Nodes = %d (%+v)", sum, st.Nodes, st)
	}
}

// TestStopReasonDeadline asserts a root-LP deadline expiry is reported
// as StopDeadline with an undefined gap.
func TestStopReasonDeadline(t *testing.T) {
	sol, err := Solve(parallelFixture(13, 24), Options{TimeLimit: time.Nanosecond, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != LimitReached {
		t.Skipf("solve finished before the 1ns deadline fired (status %v)", sol.Status)
	}
	if sol.Stats.StopReason != StopDeadline {
		t.Fatalf("StopReason = %v, want %v", sol.Stats.StopReason, StopDeadline)
	}
	//lint:exactfloat -1 is an exact sentinel, not a computed value
	if sol.Stats.Gap != -1 {
		t.Fatalf("Gap = %v, want the -1 sentinel", sol.Stats.Gap)
	}
}

// TestGapProvenOptimal asserts a clean optimal solve reports gap 0 with
// BestBound equal to the objective.
func TestGapProvenOptimal(t *testing.T) {
	sol, err := Solve(parallelFixture(3, 12), Options{TimeLimit: 60 * time.Second, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	//lint:exactfloat proven optimality must set the exact 0/objective values
	if sol.Stats.Gap != 0 || sol.Stats.BestBound != sol.Objective {
		t.Fatalf("proven solve: Gap = %v, BestBound = %v, Objective = %v",
			sol.Stats.Gap, sol.Stats.BestBound, sol.Objective)
	}
	if sol.Stats.StopReason != StopNone {
		t.Fatalf("StopReason = %v, want %v", sol.Stats.StopReason, StopNone)
	}
}
