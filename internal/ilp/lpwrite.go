package ilp

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteLP renders the model in the CPLEX LP file format, which every
// mainstream MILP solver reads. It exists so that placement models can
// be dumped and cross-checked against external solvers (or inspected by
// hand) when debugging the built-in one.
func (m *Model) WriteLP(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	var sb strings.Builder
	sb.WriteString("Minimize\n obj:")
	wrote := false
	for j, v := range m.vars {
		//lint:exactfloat objective coefficients are stored caller inputs; only exact zeros are omitted from the rendered file
		if v.obj == 0 {
			continue
		}
		fmt.Fprintf(&sb, " %s %s", signCoef(v.obj, !wrote), varName(m, j))
		wrote = true
	}
	if !wrote {
		sb.WriteString(" 0 x0")
	}
	sb.WriteString("\nSubject To\n")
	for ci, c := range m.cons {
		name := c.Name
		if name == "" {
			name = "c"
		}
		fmt.Fprintf(&sb, " %s%d:", sanitize(name), ci)
		first := true
		for _, t := range c.Terms {
			fmt.Fprintf(&sb, " %s %s", signCoef(t.Coef, first), varName(m, t.Var))
			first = false
		}
		if first {
			sb.WriteString(" 0 x0")
		}
		fmt.Fprintf(&sb, " %s %g\n", lpOp(c.Op), c.RHS)
	}
	sb.WriteString("Bounds\n")
	for j, v := range m.vars {
		switch {
		case math.IsInf(v.lo, -1) && math.IsInf(v.hi, 1):
			fmt.Fprintf(&sb, " %s free\n", varName(m, j))
		case math.IsInf(v.hi, 1):
			fmt.Fprintf(&sb, " %s >= %g\n", varName(m, j), v.lo)
		case math.IsInf(v.lo, -1):
			fmt.Fprintf(&sb, " %s <= %g\n", varName(m, j), v.hi)
		default:
			fmt.Fprintf(&sb, " %g <= %s <= %g\n", v.lo, varName(m, j), v.hi)
		}
	}
	var generals []int
	for j, v := range m.vars {
		if v.integer {
			generals = append(generals, j)
		}
	}
	if len(generals) > 0 {
		sb.WriteString("Generals\n")
		for _, j := range generals {
			fmt.Fprintf(&sb, " %s\n", varName(m, j))
		}
	}
	sb.WriteString("End\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// varName renders a stable LP-safe variable name.
func varName(m *Model, j int) string {
	n := m.vars[j].name
	if n == "" {
		return fmt.Sprintf("x%d", j)
	}
	return fmt.Sprintf("%s_%d", sanitize(n), j)
}

// sanitize strips characters the LP format dislikes.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

// signCoef renders a coefficient with explicit sign ("+ 2"/"- 1"); the
// leading term keeps a bare minus only when negative.
func signCoef(c float64, first bool) string {
	if c < 0 {
		return fmt.Sprintf("- %g", -c)
	}
	if first {
		return fmt.Sprintf("%g", c)
	}
	return fmt.Sprintf("+ %g", c)
}

// lpOp renders the constraint operator in LP syntax.
func lpOp(o Op) string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}
