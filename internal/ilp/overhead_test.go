package ilp

import (
	"sort"
	"testing"
	"time"

	"rulefit/internal/obs"
)

// noopSink counts events and drops them — the cheapest live sink.
type noopSink struct{ n int }

func (s *noopSink) Event(obs.Event) { s.n++ }

// BenchmarkSolveSinkDisabled is the overhead gate's baseline: the Sink
// field nil, so every emission site reduces to one branch.
func BenchmarkSolveSinkDisabled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := parallelFixture(7, 16)
		if _, err := Solve(m, Options{TimeLimit: 60 * time.Second, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveSinkNoop measures the same solve with a live (but
// trivial) sink, for comparison against BenchmarkSolveSinkDisabled.
func BenchmarkSolveSinkNoop(b *testing.B) {
	var sink noopSink
	for i := 0; i < b.N; i++ {
		m := parallelFixture(7, 16)
		if _, err := Solve(m, Options{TimeLimit: 60 * time.Second, Workers: 1, Sink: &sink}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDisabledSinkOverheadSmoke guards the "tracing off costs ~nothing"
// budget: the median nil-sink solve must not be grossly slower than the
// pre-observability solver would be. We compare nil-sink vs noop-sink
// medians — the nil path must not exceed the traced path by more than
// 1.5x (it should in fact be faster; the wide margin absorbs CI noise,
// while a forgotten hot-path emission without its nil guard shows up as
// an order-of-magnitude regression).
func TestDisabledSinkOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	median := func(sink obs.Sink) time.Duration {
		const runs = 7
		times := make([]time.Duration, 0, runs)
		for i := 0; i < runs; i++ {
			m := parallelFixture(7, 16)
			start := time.Now()
			if _, err := Solve(m, Options{TimeLimit: 60 * time.Second, Workers: 1, Sink: sink}); err != nil {
				t.Fatal(err)
			}
			times = append(times, time.Since(start))
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[runs/2]
	}
	off := median(nil)
	on := median(&noopSink{})
	if off > on*3/2 {
		t.Fatalf("nil-sink median %v exceeds 1.5x the noop-sink median %v", off, on)
	}
}
