package ilp

import (
	"reflect"
	"testing"
	"time"

	"rulefit/internal/obs"
)

// TestTraceIDStampsEveryEvent asserts the request-scoping contract at
// the solver layer: Options.TraceID appears on every emitted event, and
// stamping changes nothing else — neither the solution nor any other
// event field.
func TestTraceIDStampsEveryEvent(t *testing.T) {
	const id = "req-000042-00000000deadbeef"
	solve := func(traceID string) (Solution, []obs.Event) {
		var rec obs.Recorder
		sol, err := Solve(parallelFixture(5, 16), Options{
			TimeLimit: 60 * time.Second, Workers: 2, Sink: &rec, TraceID: traceID,
		})
		if err != nil {
			t.Fatal(err)
		}
		events := rec.Events()
		for i := range events {
			events[i] = events[i].Normalize()
		}
		return sol, events
	}
	plainSol, plain := solve("")
	taggedSol, tagged := solve(id)
	if !reflect.DeepEqual(plainSol, taggedSol) {
		t.Fatalf("trace ID perturbed the solution:\n%+v\nvs\n%+v", plainSol, taggedSol)
	}
	if len(tagged) == 0 || len(tagged) != len(plain) {
		t.Fatalf("event counts differ: %d tagged vs %d plain", len(tagged), len(plain))
	}
	for i, e := range tagged {
		if e.TraceID != id {
			t.Fatalf("event %d missing trace ID: %+v", i, e)
		}
		e.TraceID = ""
		if e != plain[i] {
			t.Fatalf("event %d differs beyond TraceID:\n%+v\nvs\n%+v", i, e, plain[i])
		}
	}
}

// TestTraceIDWithoutSinkKeepsFastPath asserts a TraceID alone does not
// enable event emission: with a nil sink the solve stays on the
// disabled-sink fast path and still succeeds.
func TestTraceIDWithoutSinkKeepsFastPath(t *testing.T) {
	plain, err := Solve(parallelFixture(3, 12), Options{TimeLimit: 60 * time.Second, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	tagged, err := Solve(parallelFixture(3, 12), Options{
		TimeLimit: 60 * time.Second, Workers: 1, TraceID: "req-000001-0123456789abcdef",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, tagged) {
		t.Fatalf("sinkless trace ID perturbed the solution:\n%+v\nvs\n%+v", plain, tagged)
	}
}
