package ilp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func solveOK(t *testing.T, m *Model) Solution {
	t.Helper()
	sol, err := Solve(m, Options{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestSolveTrivialBinary(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x", 1)
	y := m.AddBinary("y", 2)
	// x + y >= 1, minimize x + 2y -> x=1, y=0.
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 1, "cover")
	sol := solveOK(t, m)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-1) > 1e-6 {
		t.Errorf("objective = %g, want 1", sol.Objective)
	}
	if sol.Values[x] != 1 || sol.Values[y] != 0 {
		t.Errorf("values = %v", sol.Values)
	}
	if err := VerifySolution(m, sol.Values); err != nil {
		t.Error(err)
	}
}

func TestSolveInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x", 1)
	y := m.AddBinary("y", 1)
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 3, "too-much")
	sol := solveOK(t, m)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveEqualityConstraint(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 0, 10, 1)
	y := m.AddVar("y", 0, 10, 3)
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 6, "sum")
	m.AddConstraint([]Term{{x, 1}}, LE, 4, "capx")
	sol := solveOK(t, m)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	// min x + 3y s.t. x+y=6, x<=4 -> x=4, y=2, obj=10.
	if math.Abs(sol.Objective-10) > 1e-6 {
		t.Errorf("objective = %g, want 10", sol.Objective)
	}
}

func TestSolvePureLP(t *testing.T) {
	// Classic: max 3x+5y s.t. x<=4, 2y<=12, 3x+2y<=18 (as min of the
	// negation): optimum x=2, y=6, value 36.
	m := NewModel()
	x := m.AddVar("x", 0, Inf, -3)
	y := m.AddVar("y", 0, Inf, -5)
	m.AddConstraint([]Term{{x, 1}}, LE, 4, "c1")
	m.AddConstraint([]Term{{y, 2}}, LE, 12, "c2")
	m.AddConstraint([]Term{{x, 3}, {y, 2}}, LE, 18, "c3")
	sol := solveOK(t, m)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-(-36)) > 1e-6 {
		t.Errorf("objective = %g, want -36", sol.Objective)
	}
	if math.Abs(sol.Values[x]-2) > 1e-6 || math.Abs(sol.Values[y]-6) > 1e-6 {
		t.Errorf("values = %v, want [2 6]", sol.Values)
	}
}

func TestSolveUnbounded(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 0, Inf, -1)
	m.AddConstraint([]Term{{x, -1}}, LE, 0, "noop")
	sol := solveOK(t, m)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveKnapsack(t *testing.T) {
	// max 10a+13b+7c s.t. 3a+4b+2c <= 6 (binary) -> a=1,c=1 (17) vs
	// b=1,c=1 (20): optimum 20.
	m := NewModel()
	a := m.AddBinary("a", -10)
	b := m.AddBinary("b", -13)
	c := m.AddBinary("c", -7)
	m.AddConstraint([]Term{{a, 3}, {b, 4}, {c, 2}}, LE, 6, "cap")
	sol := solveOK(t, m)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-(-20)) > 1e-6 {
		t.Errorf("objective = %g, want -20", sol.Objective)
	}
	if err := VerifySolution(m, sol.Values); err != nil {
		t.Error(err)
	}
}

func TestSolveIntegerVariables(t *testing.T) {
	// min x+y s.t. 2x+3y >= 12, x,y integer in [0,10]: candidates
	// (0,4)->4, (3,2)->5, (6,0)->6, (1,4)->5 ... optimum (0,4) = 4.
	m := NewModel()
	x := m.AddInteger("x", 0, 10, 1)
	y := m.AddInteger("y", 0, 10, 1)
	m.AddConstraint([]Term{{x, 2}, {y, 3}}, GE, 12, "need")
	sol := solveOK(t, m)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-4) > 1e-6 {
		t.Errorf("objective = %g, want 4", sol.Objective)
	}
}

func TestSolveImplicationChain(t *testing.T) {
	// The placement problem's shape: w <= u (implication), coverage,
	// capacity. u free otherwise; coverage forces w somewhere.
	m := NewModel()
	w1 := m.AddBinary("w1", 1)
	u1 := m.AddBinary("u1", 1)
	w2 := m.AddBinary("w2", 1)
	u2 := m.AddBinary("u2", 1)
	// w_i implies u_i.
	m.AddConstraint([]Term{{w1, 1}, {u1, -1}}, LE, 0, "dep1")
	m.AddConstraint([]Term{{w2, 1}, {u2, -1}}, LE, 0, "dep2")
	// Drop must be placed at switch 1 or 2.
	m.AddConstraint([]Term{{w1, 1}, {w2, 1}}, GE, 1, "cover")
	// Switch 1 has capacity 1 (cannot host both w1 and u1).
	m.AddConstraint([]Term{{w1, 1}, {u1, 1}}, LE, 1, "cap1")
	sol := solveOK(t, m)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	// Must use switch 2: w2=1, u2=1, total 2.
	if math.Abs(sol.Objective-2) > 1e-6 {
		t.Errorf("objective = %g, want 2", sol.Objective)
	}
	if sol.Values[w2] != 1 || sol.Values[u2] != 1 {
		t.Errorf("values = %v", sol.Values)
	}
}

func TestSolveTimeLimit(t *testing.T) {
	// A model that takes some work; with an immediate deadline, expect
	// LimitReached or a feasible (not necessarily optimal) answer.
	rng := rand.New(rand.NewSource(1))
	m := NewModel()
	n := 30
	vars := make([]int, n)
	for i := range vars {
		vars[i] = m.AddBinary("x", float64(1+rng.Intn(5)))
	}
	for c := 0; c < 20; c++ {
		var terms []Term
		for _, v := range vars {
			if rng.Float64() < 0.3 {
				terms = append(terms, Term{v, 1})
			}
		}
		if len(terms) > 0 {
			m.AddConstraint(terms, GE, 1, "c")
		}
	}
	sol, err := Solve(m, Options{TimeLimit: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == Optimal {
		// Possible if the root LP is integral before the deadline hits;
		// accept but verify.
		if err := VerifySolution(m, sol.Values); err != nil {
			t.Error(err)
		}
	}
}

func TestSolveEmptyModel(t *testing.T) {
	m := NewModel()
	sol := solveOK(t, m)
	if sol.Status != Optimal || sol.Objective != 0 {
		t.Errorf("empty model: %v obj %g", sol.Status, sol.Objective)
	}
}

func TestSolveFixedByPresolve(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x", 5)
	y := m.AddBinary("y", 1)
	// x >= 1 forces x=1; then y unconstrained -> 0.
	m.AddConstraint([]Term{{x, 1}}, GE, 1, "fix")
	sol := solveOK(t, m)
	if sol.Status != Optimal || sol.Values[x] != 1 || sol.Values[y] != 0 {
		t.Errorf("sol = %+v", sol)
	}
	if sol.Stats.PresolveFix == 0 {
		t.Error("presolve should have fixed x")
	}
}

func TestSolveValidateErrors(t *testing.T) {
	m := NewModel()
	v := m.AddVar("x", 2, 1, 0) // lo > hi
	_ = v
	if _, err := Solve(m, Options{}); err == nil {
		t.Error("expected validation error")
	}
}

// bruteForceBinary enumerates all assignments of binary variables and
// returns the optimal objective, or NaN when infeasible.
func bruteForceBinary(m *Model) float64 {
	n := len(m.vars)
	best := math.NaN()
	vals := make([]float64, n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for j := 0; j < n; j++ {
			vals[j] = float64(mask >> uint(j) & 1)
		}
		if VerifySolution(m, vals) != nil {
			continue
		}
		obj := 0.0
		for j := 0; j < n; j++ {
			obj += m.vars[j].obj * vals[j]
		}
		if math.IsNaN(best) || obj < best {
			best = obj
		}
	}
	return best
}

func TestSolveRandomBinaryVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 120; trial++ {
		m := NewModel()
		n := 3 + rng.Intn(8) // up to 10 binaries
		vars := make([]int, n)
		for i := range vars {
			vars[i] = m.AddBinary("x", float64(rng.Intn(7)-2))
		}
		rows := 1 + rng.Intn(7)
		for c := 0; c < rows; c++ {
			var terms []Term
			for _, v := range vars {
				if rng.Float64() < 0.5 {
					coef := float64(rng.Intn(5) - 2)
					if coef != 0 {
						terms = append(terms, Term{v, coef})
					}
				}
			}
			if len(terms) == 0 {
				continue
			}
			op := []Op{LE, GE, EQ}[rng.Intn(3)]
			rhs := float64(rng.Intn(7) - 3)
			m.AddConstraint(terms, op, rhs, "c")
		}
		want := bruteForceBinary(m)
		sol, err := Solve(m, Options{TimeLimit: 20 * time.Second})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.IsNaN(want) {
			if sol.Status != Infeasible {
				t.Fatalf("trial %d: status %v, brute force says infeasible", trial, sol.Status)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v, brute force says feasible with obj %g", trial, sol.Status, want)
		}
		if math.Abs(sol.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: objective %g, brute force %g", trial, sol.Objective, want)
		}
		if err := VerifySolution(m, sol.Values); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSolveRandomCoveringVsBruteForce(t *testing.T) {
	// Placement-shaped instances: implications + covers + capacities.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		m := NewModel()
		n := 4 + rng.Intn(8)
		vars := make([]int, n)
		for i := range vars {
			vars[i] = m.AddBinary("v", 1)
		}
		for c := 0; c < 1+rng.Intn(4); c++ {
			a, b := vars[rng.Intn(n)], vars[rng.Intn(n)]
			if a != b {
				m.AddConstraint([]Term{{a, 1}, {b, -1}}, LE, 0, "imp")
			}
		}
		for c := 0; c < 1+rng.Intn(3); c++ {
			var terms []Term
			for _, v := range vars {
				if rng.Float64() < 0.4 {
					terms = append(terms, Term{v, 1})
				}
			}
			if len(terms) > 0 {
				m.AddConstraint(terms, GE, 1, "cover")
			}
		}
		var capTerms []Term
		for _, v := range vars {
			if rng.Float64() < 0.5 {
				capTerms = append(capTerms, Term{v, 1})
			}
		}
		if len(capTerms) > 0 {
			m.AddConstraint(capTerms, LE, float64(1+rng.Intn(3)), "cap")
		}
		want := bruteForceBinary(m)
		sol, err := Solve(m, Options{TimeLimit: 20 * time.Second})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.IsNaN(want) {
			if sol.Status != Infeasible {
				t.Fatalf("trial %d: status %v, want infeasible", trial, sol.Status)
			}
			continue
		}
		if sol.Status != Optimal || math.Abs(sol.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: got %v obj %g, want optimal %g", trial, sol.Status, sol.Objective, want)
		}
	}
}

func TestSolvePresolveAblation(t *testing.T) {
	// Same answers with and without presolve.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		m := NewModel()
		n := 4 + rng.Intn(6)
		vars := make([]int, n)
		for i := range vars {
			vars[i] = m.AddBinary("x", float64(1+rng.Intn(4)))
		}
		for c := 0; c < 2+rng.Intn(4); c++ {
			var terms []Term
			for _, v := range vars {
				if rng.Float64() < 0.4 {
					terms = append(terms, Term{v, 1})
				}
			}
			if len(terms) > 0 {
				m.AddConstraint(terms, GE, 1, "cover")
			}
		}
		a, err := Solve(m, Options{TimeLimit: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Solve(m, Options{TimeLimit: 10 * time.Second, DisablePresolve: true})
		if err != nil {
			t.Fatal(err)
		}
		if a.Status != b.Status {
			t.Fatalf("trial %d: presolve changed status: %v vs %v", trial, a.Status, b.Status)
		}
		if a.Status == Optimal && math.Abs(a.Objective-b.Objective) > 1e-6 {
			t.Fatalf("trial %d: presolve changed objective: %g vs %g", trial, a.Objective, b.Objective)
		}
	}
}

func TestCombineTerms(t *testing.T) {
	terms := combineTerms([]Term{{0, 1}, {1, 2}, {0, 3}, {2, 0}})
	sortTermsByVar(terms)
	if len(terms) != 2 || terms[0] != (Term{0, 4}) || terms[1] != (Term{1, 2}) {
		t.Errorf("combined = %v", terms)
	}
}

func TestOpAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Error("op strings wrong")
	}
	for _, s := range []Status{Optimal, Infeasible, Feasible, LimitReached, Unbounded} {
		if s.String() == "" {
			t.Error("empty status string")
		}
	}
}
