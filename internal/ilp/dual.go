package ilp

import (
	"errors"
	"math"
	"time"
)

// Warm-started child reoptimization. A solved branch & bound node's
// basis is optimal — hence dual feasible — for both children's LPs,
// which differ from the parent only by one tightened bound on the
// branching variable (basic, since it was fractional). The child
// therefore starts with exactly one primal infeasibility, and the
// bounded-variable dual simplex restores feasibility in a handful of
// pivots while reusing the parent's LU factorization and eta file,
// instead of rebuilding a slack basis and refactorizing from scratch.
//
// Determinism: the snapshot travels inside the work item, so a node's
// LP result remains a pure function of the item regardless of which
// worker solves it. Every failure mode (iteration budget, numerics,
// pivot disagreement) falls back to the cold resolveAfterBoundChange
// path, which is itself deterministic — so the warm/cold decision is a
// pure function of the item too.

// dualIterCap bounds the warm-start dual simplex before falling back to
// the cold path. Deliberately tight: a child differs from its parent by
// one bound, so a healthy reoptimization takes a handful of pivots —
// a run that hasn't converged by now is cycling on degeneracy, and
// every extra iteration here is pure waste on top of the cold solve
// that follows.
const dualIterCap = 150

// basisSnapshot captures a solved node's factored basis for reuse by
// its children. The luFactor is immutable and shared (several
// snapshots between two refactorizations reference the same factor);
// the eta file, basis list, and basic values are copied so later solver
// mutation cannot leak in. Snapshots are read-only: concurrent workers
// installing the same snapshot only copy out of it.
type basisSnapshot struct {
	factor *luFactor
	etas   []eta
	basic  []int
	xB     []float64
}

// captureSnapshot snapshots the current basis, or returns nil when the
// basis is not reusable (an artificial column is still basic, so the
// children could not interpret the basis in the shared column space).
func (s *lpSolver) captureSnapshot() *basisSnapshot {
	for _, b := range s.basic {
		if b >= s.nBase {
			return nil
		}
	}
	return &basisSnapshot{
		factor: s.factor,
		etas:   append([]eta(nil), s.etas...),
		basic:  append([]int(nil), s.basic...),
		xB:     append([]float64(nil), s.xB...),
	}
}

// installSnapshot loads a work item's bounds, states, and parent basis
// into the solver, priming the dual simplex. It reports false when the
// warm start is not applicable (shape mismatch, or the branching
// variable was not basic in the parent, so the one-bound-delta argument
// does not hold) and the caller must use the cold path.
func (s *lpSolver) installSnapshot(it *workItem) bool {
	sn := it.snap
	if sn == nil || len(sn.basic) != s.m || len(it.state) != s.nBase {
		return false
	}
	if it.branchVar >= 0 && it.state[it.branchVar] != stBasic {
		return false
	}
	s.dropArtificials()
	copy(s.lo[:s.nOrig], it.lo)
	copy(s.hi[:s.nOrig], it.hi)
	copy(s.state, it.state)
	copy(s.basic, sn.basic)
	copy(s.xB, sn.xB)
	s.etas = append(s.etas[:0], sn.etas...)
	s.factor = sn.factor
	s.priceCursor, s.priceWindow = 0, 0
	s.phase2Costs()
	return true
}

// dualSimplex runs the bounded-variable dual simplex from the installed
// (dual-feasible, primal-infeasible) basis until primal feasibility,
// proven infeasibility, the deadline, or the iteration budget
// (lpDualStall — caller falls back cold).
func (s *lpSolver) dualSimplex(maxIter int) (lpStatus, error) {
	if s.factor == nil {
		if err := s.refactorize(); err != nil {
			return 0, err
		}
	}
	rho := s.rho
	y := s.selY
	w := s.selW
	// Duals are computed once and then updated incrementally per pivot
	// (y += theta*rho), the textbook dual-simplex update: one btran per
	// iteration instead of two. They are recomputed exactly whenever
	// pushEta refactorizes, bounding float drift to one eta file.
	s.duals(y)
	for iter := 0; ; iter++ {
		if iter >= maxIter {
			return lpDualStall, nil
		}
		s.iters++
		if s.iters%checkEveryIt == 0 && !s.deadline.IsZero() && time.Now().After(s.deadline) {
			return lpTimeLimit, nil
		}
		// Leaving row: the most infeasible basic variable (deterministic:
		// strict improvement scan, lowest row on exact ties).
		r := -1
		worst := feasTol
		var target float64
		leaveAt := int8(0)
		for i := 0; i < s.m; i++ {
			bi := s.basic[i]
			if d := s.lo[bi] - s.xB[i]; d > worst {
				worst, r, target, leaveAt = d, i, s.lo[bi], stLower
			}
			if d := s.xB[i] - s.hi[bi]; d > worst {
				worst, r, target, leaveAt = d, i, s.hi[bi], stUpper
			}
		}
		if r < 0 {
			return lpOptimal, nil // primal feasible; caller polishes
		}
		// rho = B^{-T} e_r gives the pivot row alphas for the dual ratio
		// test against the incrementally-maintained reduced costs.
		for i := range rho {
			rho[i] = 0
		}
		rho[r] = 1
		s.btranApply(rho)
		needUp := leaveAt == stLower // xB[r] must rise to its lower bound
		best := -1
		bestRatio := math.Inf(1)
		var bestD, bestAlpha float64
		for j := 0; j < s.n; j++ {
			st := s.state[j]
			//lint:exactfloat fixed-variable test on stored bounds; bounds are assigned, never computed
			if st == stBasic || s.lo[j] == s.hi[j] {
				continue
			}
			alpha := s.colDot(j, rho)
			if math.Abs(alpha) < pivotTol {
				continue
			}
			// Entering j leaves its bound by delta (>= 0 from lower,
			// <= 0 from upper); xB[r] changes by -delta*alpha, so the
			// sign of alpha decides eligibility.
			if needUp {
				if (st == stLower && alpha >= 0) || (st == stUpper && alpha <= 0) {
					continue
				}
			} else {
				if (st == stLower && alpha <= 0) || (st == stUpper && alpha >= 0) {
					continue
				}
			}
			// Dual ratio: |d_j| / |alpha_j| bounds how far the duals can
			// move before reduced cost j changes sign.
			d := s.cost[j] - s.colDot(j, y)
			ratio := math.Abs(d) / math.Abs(alpha)
			if ratio < bestRatio {
				bestRatio, best, bestD, bestAlpha = ratio, j, d, alpha
			}
		}
		if best < 0 {
			// Dual unbounded: the child LP is infeasible. Sound prune —
			// the row is violated and no nonbasic column can fix it.
			return lpInfeasible, nil
		}
		q := best
		s.ftran(q, w)
		alphaR := w[r]
		if math.Abs(alphaR) < pivotTol {
			// The eta-updated column disagrees with the btran row; the
			// factorization has drifted. Fall back rather than pivot.
			return lpDualStall, nil
		}
		delta := (s.xB[r] - target) / alphaR
		for i := 0; i < s.m; i++ {
			//lint:exactfloat w is scattered dense; rows never touched by ftran hold exact zeros, and skipping only those is a sparsity fast path
			if w[i] != 0 {
				s.xB[i] -= delta * w[i]
			}
		}
		enterVal := s.nonbasicValue(q) + delta
		lv := s.basic[r]
		s.state[lv] = leaveAt
		s.basic[r] = q
		s.state[q] = stBasic
		s.xB[r] = enterVal
		hadEtas := len(s.etas)
		if err := s.pushEta(r, w); err != nil {
			return 0, err
		}
		if len(s.etas) <= hadEtas {
			// pushEta refactorized: recompute the duals exactly.
			s.duals(y)
			continue
		}
		// Incremental dual update: shift y along rho until the entering
		// reduced cost hits zero.
		theta := bestD / bestAlpha
		for i := 0; i < s.m; i++ {
			//lint:exactfloat rho is scattered dense; rows never touched by btran hold exact zeros, and skipping only those is a sparsity fast path
			if rho[i] != 0 {
				y[i] += theta * rho[i]
			}
		}
	}
}

// warmSolveNode runs the warm-start path for a work item carrying a
// parent snapshot: install, dual simplex, then a primal phase-2 polish
// that certifies optimality with the same criterion as the cold path.
// ok=false means the caller must run the cold path (deterministically:
// the decision depends only on the item).
func warmSolveNode(s *lpSolver, it *workItem) (st lpStatus, ok bool, err error) {
	if !s.installSnapshot(it) {
		return 0, false, nil
	}
	st, err = s.dualSimplex(dualIterCap)
	if err != nil {
		if errors.Is(err, errLPNumerics) || errors.Is(err, errSingular) {
			return 0, false, nil
		}
		return st, true, err
	}
	if st == lpDualStall {
		return 0, false, nil
	}
	if st != lpOptimal {
		return st, true, nil // lpInfeasible or lpTimeLimit: final
	}
	// Primal polish: usually zero iterations, but it re-prices every
	// column, so the returned optimum satisfies the exact optimality
	// criterion of the cold path.
	st, err = s.solve()
	if err != nil {
		if errors.Is(err, errLPNumerics) || errors.Is(err, errSingular) {
			return 0, false, nil
		}
		return st, true, err
	}
	return st, true, nil
}
