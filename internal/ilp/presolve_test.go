package ilp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// boundsOf copies a model's declared variable bounds into fresh slices,
// the same shape Solve hands to presolve.
func boundsOf(m *Model) (lo, hi []float64) {
	lo = make([]float64, len(m.vars))
	hi = make([]float64, len(m.vars))
	for j, v := range m.vars {
		lo[j], hi[j] = v.lo, v.hi
	}
	return lo, hi
}

func near(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

// TestPresolveEqualityFixesSingleton: an equality row with one variable
// must pin that variable from both sides (EQ is propagated as LE and
// GE), leaving lo == hi.
func TestPresolveEqualityFixesSingleton(t *testing.T) {
	m := NewModel()
	x := m.AddInteger("x", 0, 10, 1)
	m.AddConstraint([]Term{{x, 2}}, EQ, 4, "fix")
	lo, hi := boundsOf(m)
	var stats Stats
	if res := presolve(m, lo, hi, &stats); res != presolveOK {
		t.Fatalf("presolve = %v, want OK", res)
	}
	if !near(lo[x], 2) || !near(hi[x], 2) {
		t.Errorf("x bounds = [%g, %g], want fixed at 2", lo[x], hi[x])
	}
	if stats.PresolveFix == 0 {
		t.Error("PresolveFix not counted")
	}
}

// TestPresolveEqualityRowPropagation: x + y == 5 with x in [0,3] must
// tighten y from both directions — the LE side caps hi[y] at 5 and the
// GE side lifts lo[y] to 5 - hi[x] = 2 — while x stays untouched.
func TestPresolveEqualityRowPropagation(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 0, 3, 1)
	y := m.AddVar("y", 0, 10, 1)
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 5, "sum")
	lo, hi := boundsOf(m)
	var stats Stats
	if res := presolve(m, lo, hi, &stats); res != presolveOK {
		t.Fatalf("presolve = %v, want OK", res)
	}
	if !near(lo[x], 0) || !near(hi[x], 3) {
		t.Errorf("x bounds = [%g, %g], want [0, 3] unchanged", lo[x], hi[x])
	}
	if !near(lo[y], 2) || !near(hi[y], 5) {
		t.Errorf("y bounds = [%g, %g], want [2, 5]", lo[y], hi[y])
	}
}

// TestPresolveNegativeCoefficientFlips: in y - x <= 0 the negative
// coefficient on x means the row's slack raises lo[x] (a lower-bound
// flip) while the positive coefficient on y lowers hi[y].
func TestPresolveNegativeCoefficientFlips(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 0, 3, 1)
	y := m.AddVar("y", 2, 10, 1)
	m.AddConstraint([]Term{{y, 1}, {x, -1}}, LE, 0, "order")
	lo, hi := boundsOf(m)
	var stats Stats
	if res := presolve(m, lo, hi, &stats); res != presolveOK {
		t.Fatalf("presolve = %v, want OK", res)
	}
	if !near(hi[y], 3) {
		t.Errorf("hi[y] = %g, want 3 (y <= x <= 3)", hi[y])
	}
	if !near(lo[x], 2) {
		t.Errorf("lo[x] = %g, want 2 (x >= y >= 2)", lo[x])
	}
}

// TestPresolveNegativeCoefficientIntegerRounding: 2x >= 5 propagates as
// -2x <= -5; the implied bound x >= 2.5 must round up to 3 for an
// integer variable, never down.
func TestPresolveNegativeCoefficientIntegerRounding(t *testing.T) {
	m := NewModel()
	x := m.AddInteger("x", 0, 10, 1)
	m.AddConstraint([]Term{{x, 2}}, GE, 5, "atleast")
	lo, hi := boundsOf(m)
	var stats Stats
	if res := presolve(m, lo, hi, &stats); res != presolveOK {
		t.Fatalf("presolve = %v, want OK", res)
	}
	if !near(lo[x], 3) {
		t.Errorf("lo[x] = %g, want ceil(2.5) = 3", lo[x])
	}
	if !near(hi[x], 10) {
		t.Errorf("hi[x] = %g, want 10 unchanged", hi[x])
	}
}

// TestPresolveDetectsInfeasibleRow: when a row's minimum activity
// already exceeds its RHS (here via the GE side: x >= 5 with x <= 3),
// presolve must report infeasibility rather than emit crossed bounds.
func TestPresolveDetectsInfeasibleRow(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 0, 3, 1)
	m.AddConstraint([]Term{{x, 1}}, GE, 5, "impossible")
	lo, hi := boundsOf(m)
	var stats Stats
	if res := presolve(m, lo, hi, &stats); res != presolveInfeasible {
		t.Fatalf("presolve = %v, want infeasible", res)
	}
}

// TestPresolveFixpointChain: a chain of coupled rows needs more than
// one sweep to reach the fixpoint — x1 <= x0, x2 <= x1 with x0 pinned
// by an equality only resolves x2 after x1 tightens.
func TestPresolveFixpointChain(t *testing.T) {
	m := NewModel()
	x0 := m.AddInteger("x0", 0, 10, 1)
	x1 := m.AddInteger("x1", 0, 10, 1)
	x2 := m.AddInteger("x2", 0, 10, 1)
	m.AddConstraint([]Term{{x0, 1}}, EQ, 2, "pin")
	m.AddConstraint([]Term{{x1, 1}, {x0, -1}}, LE, 0, "x1<=x0")
	m.AddConstraint([]Term{{x2, 1}, {x1, -1}}, LE, 0, "x2<=x1")
	lo, hi := boundsOf(m)
	var stats Stats
	if res := presolve(m, lo, hi, &stats); res != presolveOK {
		t.Fatalf("presolve = %v, want OK", res)
	}
	if !near(hi[x1], 2) || !near(hi[x2], 2) {
		t.Errorf("chain bounds hi[x1]=%g hi[x2]=%g, want both 2", hi[x1], hi[x2])
	}
}

// TestSolveCoverCutsOnKnapsack: a weighted knapsack whose LP relaxation
// is fractional must trigger at least one root cover-cut round, and the
// cut must not change the optimum: the solve with cuts disabled returns
// the identical solution vector.
func TestSolveCoverCutsOnKnapsack(t *testing.T) {
	build := func() *Model {
		m := NewModel()
		a := m.AddBinary("a", -10)
		b := m.AddBinary("b", -13)
		c := m.AddBinary("c", -7)
		m.AddConstraint([]Term{{a, 3}, {b, 4}, {c, 2}}, LE, 6, "cap")
		return m
	}
	with, err := Solve(build(), Options{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Solve(build(), Options{TimeLimit: 30 * time.Second, DisableCuts: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Stats.CutsAdded == 0 || with.Stats.CutRoundsRoot == 0 {
		t.Errorf("no cover cuts separated: cuts=%d rounds=%d",
			with.Stats.CutsAdded, with.Stats.CutRoundsRoot)
	}
	if without.Stats.CutsAdded != 0 {
		t.Errorf("DisableCuts still added %d cuts", without.Stats.CutsAdded)
	}
	if with.Status != Optimal || without.Status != Optimal {
		t.Fatalf("status with=%v without=%v", with.Status, without.Status)
	}
	if math.Abs(with.Objective-(-20)) > 1e-6 || math.Abs(without.Objective-(-20)) > 1e-6 {
		t.Errorf("objective with=%g without=%g, want -20", with.Objective, without.Objective)
	}
	for j := range with.Values {
		if with.Values[j] != without.Values[j] { //lint:exactfloat integral solution vectors must agree exactly
			t.Errorf("solution drifted at var %d: with cuts %g, without %g",
				j, with.Values[j], without.Values[j])
		}
	}
}

// TestSolveRandomKnapsacksCutsVsNoCuts: on random weighted multi-
// knapsack instances, solves with and without cover cuts must agree on
// status and optimal objective — a cut that excluded the optimum would
// show up here as a worse objective with cuts enabled. The solution
// vectors themselves may differ only when distinct optima tie: these
// synthetic objectives tie freely, and bound pruning keeps whichever
// optimum the (cut-dependent) search order proves first. The placement
// objective is covered by the stricter byte-identity test in
// internal/core, where solutions must match exactly.
func TestSolveRandomKnapsacksCutsVsNoCuts(t *testing.T) {
	cutsSeen := 0
	for seed := int64(1); seed <= 30; seed++ {
		m1 := randomKnapsackModel(seed)
		m2 := randomKnapsackModel(seed)
		with, err := Solve(m1, Options{TimeLimit: 30 * time.Second})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		without, err := Solve(m2, Options{TimeLimit: 30 * time.Second, DisableCuts: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cutsSeen += with.Stats.CutsAdded
		if with.Status != without.Status {
			t.Errorf("seed %d: status with=%v without=%v", seed, with.Status, without.Status)
			continue
		}
		if with.Status != Optimal {
			continue
		}
		if math.Abs(with.Objective-without.Objective) > 1e-6 {
			t.Errorf("seed %d: objective with=%g without=%g", seed, with.Objective, without.Objective)
		}
		if err := VerifySolution(m1, with.Values); err != nil {
			t.Errorf("seed %d: with-cuts solution infeasible: %v", seed, err)
		}
	}
	if cutsSeen == 0 {
		t.Error("no instance separated a single cover cut; generator too easy")
	}
}

// randomKnapsackModel builds a seeded binary minimization with a few
// weighted capacity rows, the shape cover cuts exist for.
func randomKnapsackModel(seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel()
	n := 8 + rng.Intn(6)
	vars := make([]int, n)
	for j := 0; j < n; j++ {
		vars[j] = m.AddBinary("x", -float64(1+rng.Intn(20)))
	}
	rows := 2 + rng.Intn(3)
	for r := 0; r < rows; r++ {
		var terms []Term
		total := 0
		for _, v := range vars {
			if rng.Intn(3) == 0 {
				continue
			}
			w := 1 + rng.Intn(9)
			total += w
			terms = append(terms, Term{Var: v, Coef: float64(w)})
		}
		if len(terms) < 3 {
			continue
		}
		m.AddConstraint(terms, LE, float64(total/2), "cap")
	}
	return m
}
