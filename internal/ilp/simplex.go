package ilp

import (
	"errors"
	"math"
	"time"

	"rulefit/internal/invariant"
)

// Bounded-variable revised simplex. The LP is held in computational
// standard form A x = b where x covers structural variables, one slack
// per row, and phase-1 artificial variables. The basis is maintained as a
// sparse LU factorization plus a product-form eta file, refactored
// periodically.
//
// Memory layout is struct-of-arrays: the structural and slack columns
// live in one immutable cscMatrix shared by every branch & bound clone,
// artificials are singleton (row, val) tails appended per solver, and
// all per-iteration vectors are preallocated scratch — the simplex inner
// loop performs no heap allocation.

// Variable states.
const (
	stBasic int8 = iota + 1
	stLower
	stUpper
)

// Solver tolerances and limits.
const (
	feasTol      = 1e-7
	optTol       = 1e-7
	pivotTol     = 1e-9
	zeroTol      = 1e-11
	maxEtas      = 64
	degenLimit   = 400 // degenerate iterations before switching to Bland
	checkEveryIt = 256 // deadline poll frequency
)

// lpStatus is the outcome of an LP solve.
type lpStatus int

const (
	lpOptimal lpStatus = iota + 1
	lpInfeasible
	lpUnbounded
	lpTimeLimit
	// lpDualStall: the warm-start dual simplex exceeded its iteration
	// budget; the caller must fall back to the cold solve path.
	lpDualStall
)

// errLPNumerics reports an unrecoverable numerical failure.
var errLPNumerics = errors.New("ilp: simplex numerical failure")

// eta is one product-form basis update: the basis column at position p
// was replaced; w = B_prev^{-1} a_entering.
type eta struct {
	p  int
	w  []entry // nonzeros of w by basis position, excluding p
	wp float64 // w[p], the pivot element
}

// lpSolver holds the standard-form LP and simplex state.
type lpSolver struct {
	m, n  int // rows; total columns (structural+slack+artificial)
	nOrig int // structural variable count
	nBase int // structural + slack columns; artificials sit above
	mat   *cscMatrix
	lo    []float64
	hi    []float64
	obj   []float64 // phase-2 objective
	rhs   []float64

	// Artificial columns are singletons appended above nBase: column
	// nBase+k has one entry (artRow[k], artVal[k]).
	artRow []int32
	artVal []float64

	basic  []int // var index basic at each row position
	state  []int8
	xB     []float64 // basic variable values by position
	factor *luFactor
	etas   []eta

	cost    []float64 // active objective (phase 1 or 2)
	inPhase int

	iters     int
	refactors int // LU refactorizations performed
	deadline  time.Time

	// Scratch, allocated once per solver (arena-style) and reused by
	// every node LP the solver runs.
	bufA  []float64 // refactorize right-hand-side accumulator
	luX   []float64 // inner scratch for ftranInto/btranInto
	selY  []float64 // simplex loop duals
	selW  []float64 // simplex loop entering column
	rho   []float64 // dual simplex pivot-row scratch
	luWS  luWorkspace
	bPtr  []int32 // basis gather scratch for refactorize
	bRows []int32
	bVals []float64

	// priceCursor is the rolling start position for partial pricing;
	// priceWindow widens on degenerate pivots (zigzag guard) and resets
	// after real progress. fullPricing forces a complete scan always.
	priceCursor int
	priceWindow int
	fullPricing bool
}

// newLPSolver builds standard form from a model's continuous relaxation,
// using the bounds arrays provided (which may be tightened copies of the
// model's own bounds). extra holds rows appended after the model's own
// constraints (root cutting planes); pass nil for the plain relaxation.
func newLPSolver(m *Model, lo, hi []float64, extra []Constraint) *lpSolver {
	nStruct := len(m.vars)
	rows := m.cons
	if len(extra) > 0 {
		rows = make([]Constraint, 0, len(m.cons)+len(extra))
		rows = append(rows, m.cons...)
		rows = append(rows, extra...)
	}
	nRows := len(rows)
	base := nStruct + nRows
	s := &lpSolver{
		m:     nRows,
		nOrig: nStruct,
		nBase: base,
		n:     base,
		rhs:   make([]float64, nRows),
		mat:   buildStandardForm(nStruct, rows),
	}
	// One slab for the three bounds/objective arrays (lo, hi, obj), each
	// with headroom for per-row artificials.
	seg := base + nRows
	slab := make([]float64, 3*seg)
	s.lo = slab[0*seg : 0*seg+base : 1*seg]
	s.hi = slab[1*seg : 1*seg+base : 2*seg]
	s.obj = slab[2*seg : 2*seg+base : 3*seg]
	for j := 0; j < nStruct; j++ {
		s.lo[j], s.hi[j] = lo[j], hi[j]
		s.obj[j] = m.vars[j].obj
	}
	for i := range rows {
		s.rhs[i] = rows[i].RHS
		sl := nStruct + i
		switch rows[i].Op {
		case LE:
			s.lo[sl], s.hi[sl] = 0, Inf
		case GE:
			s.lo[sl], s.hi[sl] = math.Inf(-1), 0
		case EQ:
			s.lo[sl], s.hi[sl] = 0, 0
		}
	}
	s.initScratch()
	return s
}

// initScratch allocates the per-solver reusable buffers.
func (s *lpSolver) initScratch() {
	s.bufA = make([]float64, s.m)
	s.luX = make([]float64, s.m)
	s.selY = make([]float64, s.m)
	s.selW = make([]float64, s.m)
	s.rho = make([]float64, s.m)
	s.bPtr = make([]int32, s.m+1)
	s.artRow = make([]int32, 0, s.m)
	s.artVal = make([]float64, 0, s.m)
}

// clone returns an independent solver over the same LP for a branch &
// bound worker. The immutable problem data (rhs and the CSC matrix) is
// shared; everything a node solve mutates — bound arrays, states, basis,
// scratch — gets fresh backing arrays truncated to the artificial-free
// base, so concurrent clones never touch common memory. A clone's basis
// list may reference dropped artificial columns, so it must be driven
// through resolveAfterBoundChange (which rebuilds the basis) or a
// snapshot install before any other use.
func (s *lpSolver) clone() *lpSolver {
	base := s.nBase
	c := &lpSolver{
		m:           s.m,
		n:           base,
		nOrig:       s.nOrig,
		nBase:       base,
		mat:         s.mat,
		rhs:         s.rhs,
		deadline:    s.deadline,
		fullPricing: s.fullPricing,
	}
	seg := base + s.m
	slab := make([]float64, 3*seg)
	c.lo = slab[0*seg : 0*seg+base : 1*seg]
	copy(c.lo, s.lo[:base])
	c.hi = slab[1*seg : 1*seg+base : 2*seg]
	copy(c.hi, s.hi[:base])
	c.obj = slab[2*seg : 2*seg+base : 3*seg]
	copy(c.obj, s.obj[:base])
	c.state = make([]int8, base, base+s.m)
	copy(c.state, s.state[:base])
	c.basic = make([]int, s.m)
	copy(c.basic, s.basic)
	c.xB = make([]float64, s.m)
	copy(c.xB, s.xB)
	c.initScratch()
	return c
}

// colDot returns y · a_j for column j of the standard-form matrix.
func (s *lpSolver) colDot(j int, y []float64) float64 {
	if j < s.nBase {
		d := 0.0
		for p := s.mat.ptr[j]; p < s.mat.ptr[j+1]; p++ {
			d += y[s.mat.rows[p]] * s.mat.vals[p]
		}
		return d
	}
	k := j - s.nBase
	return y[s.artRow[k]] * s.artVal[k]
}

// scatterCol adds scale * a_j into out (dense by row).
func (s *lpSolver) scatterCol(j int, scale float64, out []float64) {
	if j < s.nBase {
		for p := s.mat.ptr[j]; p < s.mat.ptr[j+1]; p++ {
			out[s.mat.rows[p]] += scale * s.mat.vals[p]
		}
		return
	}
	k := j - s.nBase
	out[s.artRow[k]] += scale * s.artVal[k]
}

// initBasis sets every structural variable nonbasic at its nearest finite
// bound, installs slacks as the basis where feasible, and adds artificial
// variables for rows whose slack cannot absorb the residual.
func (s *lpSolver) initBasis() {
	s.state = make([]int8, s.n, s.n+s.m)
	s.basic = make([]int, s.m)
	s.xB = make([]float64, s.m)
	for j := 0; j < s.nOrig; j++ {
		s.state[j] = stLower // rebuildFromStates snaps infinite bounds
	}
	s.rebuildFromStates()
}

// nonbasicValue returns the current value of a nonbasic variable.
func (s *lpSolver) nonbasicValue(j int) float64 {
	switch s.state[j] {
	case stLower:
		if math.IsInf(s.lo[j], -1) {
			return 0
		}
		return s.lo[j]
	case stUpper:
		if math.IsInf(s.hi[j], 1) {
			return 0
		}
		return s.hi[j]
	default:
		panic("ilp: nonbasicValue of basic variable")
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// refactorize rebuilds the LU factorization of the current basis and
// recomputes basic values from scratch, flushing accumulated drift.
func (s *lpSolver) refactorize() error {
	s.refactors++
	// Gather the basis columns into the reusable CSC scratch slabs.
	s.bRows = s.bRows[:0]
	s.bVals = s.bVals[:0]
	s.bPtr[0] = 0
	for i, v := range s.basic {
		if v < s.nBase {
			for p := s.mat.ptr[v]; p < s.mat.ptr[v+1]; p++ {
				s.bRows = append(s.bRows, s.mat.rows[p])
				s.bVals = append(s.bVals, s.mat.vals[p])
			}
		} else {
			k := v - s.nBase
			s.bRows = append(s.bRows, s.artRow[k])
			s.bVals = append(s.bVals, s.artVal[k])
		}
		s.bPtr[i+1] = int32(len(s.bRows))
	}
	f, err := luFactorizeCSC(s.m, s.bPtr, s.bRows, s.bVals, &s.luWS)
	if err != nil {
		return err
	}
	s.factor = f
	s.etas = s.etas[:0]
	// xB = B^{-1} (b - N x_N)
	r := s.bufA
	copy(r, s.rhs)
	for j := 0; j < s.n; j++ {
		if s.state[j] == stBasic {
			continue
		}
		xj := s.nonbasicValue(j)
		//lint:exactfloat nonbasic values are stored bounds (or literal 0), never computed; skipping only exact zeros is a pure sparsity fast path
		if xj == 0 {
			continue
		}
		s.scatterCol(j, -xj, r)
	}
	var rhsCopy []float64
	if invariant.Enabled {
		rhsCopy = append([]float64(nil), r[:s.m]...)
	}
	s.factor.ftranInto(r, s.luX)
	copy(s.xB, r)
	if invariant.Enabled {
		// Residual check: B xB must reproduce the reduced right-hand
		// side the solve started from. Unlike a roundtrip through
		// B^{-1}, the residual is not amplified by conditioning, so a
		// violation means the factorization or the basis list is stale.
		res := make([]float64, s.m)
		copy(res, rhsCopy)
		scale := 1.0
		for _, v := range rhsCopy {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		for i, v := range s.basic {
			s.scatterCol(v, -s.xB[i], res)
		}
		for i, v := range res {
			invariant.Assert(math.Abs(v) <= 1e-6*scale,
				"refactorize: basis residual %g at row %d exceeds %g (m=%d)", v, i, 1e-6*scale, s.m)
		}
	}
	return nil
}

// ftran computes w = B^{-1} a_j into out (dense by basis position).
func (s *lpSolver) ftran(j int, out []float64) {
	for i := range out {
		out[i] = 0
	}
	s.scatterCol(j, 1, out)
	s.factor.ftranInto(out, s.luX)
	s.applyEtas(out)
}

// applyEtas pushes a B^{-1}-solve through the product-form eta file.
func (s *lpSolver) applyEtas(out []float64) {
	for _, et := range s.etas {
		xp := out[et.p] / et.wp
		out[et.p] = xp
		// xp is computed, so compare against the same drop tolerance the
		// eta file itself is truncated with, not exact zero.
		if math.Abs(xp) < zeroTol {
			continue
		}
		for _, e := range et.w {
			out[e.row] -= e.val * xp
		}
	}
}

// duals computes y = B^{-T} c_B into out (dense by row).
func (s *lpSolver) duals(out []float64) {
	for i := range out {
		out[i] = 0
	}
	for i, v := range s.basic {
		out[i] = s.cost[v]
	}
	s.btranApply(out)
}

// btranApply solves B^T y = v in place for a vector given by basis
// position, reversing the eta file and then the factored basis.
func (s *lpSolver) btranApply(out []float64) {
	for k := len(s.etas) - 1; k >= 0; k-- {
		et := s.etas[k]
		acc := out[et.p]
		for _, e := range et.w {
			acc -= out[e.row] * e.val
		}
		out[et.p] = acc / et.wp
	}
	s.factor.btranInto(out, s.luX)
}

// ensureCost sizes the active-cost array (reusing its backing) and
// zeroes it.
func (s *lpSolver) ensureCost() {
	if cap(s.cost) < s.n {
		s.cost = make([]float64, s.n, s.n+s.m)
	}
	s.cost = s.cost[:s.n]
	for i := range s.cost {
		s.cost[i] = 0
	}
}

// phase1Costs installs the infeasibility objective (artificials cost 1).
func (s *lpSolver) phase1Costs() {
	s.ensureCost()
	for j := s.nBase; j < s.n; j++ {
		s.cost[j] = 1
	}
	s.inPhase = 1
}

// phase2Costs installs the true objective and freezes artificials at 0.
func (s *lpSolver) phase2Costs() {
	s.ensureCost()
	copy(s.cost, s.obj)
	for j := s.nBase; j < s.n; j++ {
		s.lo[j], s.hi[j] = 0, 0
	}
	s.inPhase = 2
}

// objective returns the current active-cost objective value.
func (s *lpSolver) objective() float64 {
	v := 0.0
	for i, b := range s.basic {
		v += s.cost[b] * s.xB[i]
	}
	for j := 0; j < s.n; j++ {
		//lint:exactfloat cost entries are stored objective coefficients (or 0/1 phase costs), never computed
		if s.state[j] != stBasic && s.cost[j] != 0 {
			v += s.cost[j] * s.nonbasicValue(j)
		}
	}
	return v
}

// price selects an entering variable, or -1 when provably optimal.
// Partial pricing scans a rolling window past the first candidate so a
// typical iteration touches only a fraction of the columns; a full wrap
// with no candidate proves optimality. Bland's rule (first eligible by
// index, full scan) is used when bland is true to break cycles.
func (s *lpSolver) price(y []float64, bland bool) int {
	window := s.priceWindow
	if window < 1024 {
		window = 1024
	}
	if s.fullPricing {
		window = s.n
	}
	score := func(j int) float64 {
		st := s.state[j]
		//lint:exactfloat fixed-variable test on stored bounds; bounds are assigned, never computed
		if st == stBasic || s.lo[j] == s.hi[j] {
			return 0
		}
		d := s.cost[j] - s.colDot(j, y)
		if st == stLower {
			return -d // want d < 0
		}
		return d // at upper bound: want d > 0
	}
	if bland {
		for j := 0; j < s.n; j++ {
			if score(j) > optTol {
				return j
			}
		}
		return -1
	}
	best, bestScore := -1, optTol
	scanned, sinceFound := 0, 0
	j := s.priceCursor
	for scanned < s.n {
		if j >= s.n {
			j = 0
		}
		if sc := score(j); sc > bestScore {
			best, bestScore = j, sc
			sinceFound = 0
		}
		j++
		scanned++
		if best >= 0 {
			sinceFound++
			if sinceFound >= window {
				break
			}
		}
	}
	s.priceCursor = j
	return best
}

// solve runs the simplex to completion on the active costs.
func (s *lpSolver) solve() (lpStatus, error) {
	if s.factor == nil {
		if err := s.refactorize(); err != nil {
			return 0, err
		}
	}
	y := s.selY
	w := s.selW
	degen := 0
	for {
		s.iters++
		if s.iters%checkEveryIt == 0 && !s.deadline.IsZero() && time.Now().After(s.deadline) {
			return lpTimeLimit, nil
		}
		s.duals(y)
		q := s.price(y, degen > degenLimit)
		if q < 0 {
			return lpOptimal, nil
		}
		dir := 1.0
		if s.state[q] == stUpper {
			dir = -1
		}
		s.ftran(q, w)

		// Ratio test: entering moves by t >= 0 in direction dir; basic
		// values change by -dir*t*w.
		tMax := Inf
		leave := -1
		leaveAt := int8(0)
		if !math.IsInf(s.lo[q], -1) && !math.IsInf(s.hi[q], 1) {
			tMax = s.hi[q] - s.lo[q] // bound flip distance
		}
		for i := 0; i < s.m; i++ {
			wi := w[i]
			if math.Abs(wi) < pivotTol {
				continue
			}
			b := s.basic[i]
			delta := -dir * wi
			var t float64
			var at int8
			if delta < 0 {
				if math.IsInf(s.lo[b], -1) {
					continue
				}
				t = (s.xB[i] - s.lo[b]) / -delta
				at = stLower
			} else {
				if math.IsInf(s.hi[b], 1) {
					continue
				}
				t = (s.hi[b] - s.xB[i]) / delta
				at = stUpper
			}
			if t < -feasTol {
				t = 0
			}
			if t < tMax-zeroTol {
				tMax, leave, leaveAt = t, i, at
			}
		}
		if math.IsInf(tMax, 1) {
			if s.inPhase == 1 {
				return 0, errLPNumerics // phase-1 objective is bounded below
			}
			return lpUnbounded, nil
		}
		if tMax < 0 {
			tMax = 0
		}
		if tMax < zeroTol {
			degen++
			// Widen partial pricing: degenerate steps often mean the
			// window is hiding the strong candidates.
			if s.priceWindow < 1024 {
				s.priceWindow = 1024
			}
			if s.priceWindow < s.n {
				s.priceWindow *= 2
			}
		} else {
			degen = 0
			s.priceWindow = 0
		}
		// Apply the step.
		if tMax > 0 {
			for i := 0; i < s.m; i++ {
				//lint:exactfloat w is scattered dense; rows never touched by ftran hold exact zeros, and skipping only those is a sparsity fast path
				if w[i] != 0 {
					s.xB[i] -= dir * tMax * w[i]
				}
			}
		}
		if leave < 0 {
			// Bound flip: entering variable crosses to its other bound.
			if s.state[q] == stLower {
				s.state[q] = stUpper
			} else {
				s.state[q] = stLower
			}
			continue
		}
		// Basis change: q enters at position leave.
		lv := s.basic[leave]
		s.state[lv] = leaveAt
		enterVal := s.nonbasicValue(q) + dir*tMax
		s.basic[leave] = q
		s.state[q] = stBasic
		s.xB[leave] = enterVal
		if err := s.pushEta(leave, w); err != nil {
			return 0, err
		}
	}
}

// pushEta records the basis change at position leave with entering
// column w (as of the pre-change basis), refactorizing when the eta
// file is full.
func (s *lpSolver) pushEta(leave int, w []float64) error {
	wp := w[leave]
	if math.Abs(wp) < pivotTol {
		return errLPNumerics
	}
	var wn []entry
	for i := 0; i < s.m; i++ {
		if i != leave && math.Abs(w[i]) > zeroTol {
			wn = append(wn, entry{row: i, val: w[i]})
		}
	}
	s.etas = append(s.etas, eta{p: leave, w: wn, wp: wp})
	if len(s.etas) >= maxEtas {
		return s.refactorize()
	}
	return nil
}

// solveLP runs phase 1 then phase 2 from the current basis.
func (s *lpSolver) solveLP() (lpStatus, error) {
	// Phase 1 is needed when any basic variable is out of bounds or an
	// artificial is positive.
	if s.needsPhase1() {
		s.phase1Costs()
		st, err := s.solve()
		if err != nil || st == lpTimeLimit {
			return st, err
		}
		if s.phase1Objective() > 1e-6 {
			return lpInfeasible, nil
		}
	}
	s.phase2Costs()
	return s.solve()
}

// needsPhase1 reports whether any artificial is positive.
func (s *lpSolver) needsPhase1() bool {
	for i, b := range s.basic {
		if b >= s.nBase && s.xB[i] > feasTol {
			return true
		}
	}
	return false
}

// phase1Objective sums artificial values.
func (s *lpSolver) phase1Objective() float64 {
	v := 0.0
	for i, b := range s.basic {
		if b >= s.nBase {
			v += s.xB[i]
		}
	}
	for j := s.nBase; j < s.n; j++ {
		if s.state[j] != stBasic {
			v += s.nonbasicValue(j)
		}
	}
	return v
}

// primalValues extracts the structural solution.
func (s *lpSolver) primalValues() []float64 {
	x := make([]float64, s.nOrig)
	for j := 0; j < s.nOrig; j++ {
		if s.state[j] != stBasic {
			x[j] = s.nonbasicValue(j)
		}
	}
	for i, b := range s.basic {
		if b < s.nOrig {
			x[b] = s.xB[i]
		}
	}
	return x
}

// structuralObjective evaluates the true objective at the current point.
func (s *lpSolver) structuralObjective() float64 {
	v := 0.0
	x := s.primalValues()
	for j := 0; j < s.nOrig; j++ {
		v += s.obj[j] * x[j]
	}
	return v
}

// setBound tightens a structural variable's bounds in place. The caller
// must re-solve afterwards; if the variable is nonbasic outside the new
// range it is snapped to the nearest bound.
func (s *lpSolver) setBound(j int, lo, hi float64) {
	s.lo[j], s.hi[j] = lo, hi
	if s.state[j] == stBasic {
		return
	}
	v := s.nonbasicValue(j)
	if v < lo {
		s.state[j] = stLower
	} else if v > hi {
		s.state[j] = stUpper
	}
}

// resolveAfterBoundChange re-solves the LP after variable bounds (and
// possibly the nonbasic state vector) changed. The caller's state vector
// is the warm start: the basis is reconstructed from it (slacks basic
// where feasible, artificials patching the rest), phase 1 restores
// feasibility, and phase 2 re-optimizes.
func (s *lpSolver) resolveAfterBoundChange() (lpStatus, error) {
	st, err := s.primalRepair()
	if err != nil || st == lpTimeLimit || st == lpInfeasible {
		return st, err
	}
	s.phase2Costs()
	return s.solve()
}

// basicInfeasible reports whether some basic variable violates its bounds.
func (s *lpSolver) basicInfeasible() bool {
	for i, b := range s.basic {
		if s.xB[i] < s.lo[b]-feasTol || s.xB[i] > s.hi[b]+feasTol {
			return true
		}
	}
	return false
}

// primalRepair restores primal feasibility by relaxing violated basics
// onto artificial columns and minimizing the violation.
func (s *lpSolver) primalRepair() (lpStatus, error) {
	// Rebuild from scratch: structural nonbasics stay where they are
	// (snapped into bounds), and rows that cannot be balanced by their
	// slack get artificials. Preserving the old basis would be a
	// performance nicety; correctness first.
	s.rebuildFromStates()
	if err := s.refactorize(); err != nil {
		return 0, err
	}
	if s.needsPhase1() || s.basicInfeasible() {
		s.phase1Costs()
		st, err := s.solve()
		if err != nil || st == lpTimeLimit {
			return st, err
		}
		if s.phase1Objective() > 1e-6 {
			return lpInfeasible, nil
		}
	}
	return lpOptimal, nil
}

// dropArtificials truncates the artificial column tail, restoring the
// solver's column space to the shared structural+slack base.
func (s *lpSolver) dropArtificials() {
	base := s.nBase
	s.artRow = s.artRow[:0]
	s.artVal = s.artVal[:0]
	s.lo = s.lo[:base]
	s.hi = s.hi[:base]
	s.obj = s.obj[:base]
	if len(s.state) > base {
		s.state = s.state[:base]
	}
	s.n = base
}

// rebuildFromStates drops all artificials and reconstructs a feasible
// starting basis: slacks basic where possible, artificials elsewhere.
// Structural nonbasic states are preserved (snapped into bounds).
func (s *lpSolver) rebuildFromStates() {
	s.dropArtificials()
	// Snap structural nonbasics into bounds; make all slacks nonbasic
	// then rebuild residuals.
	for j := 0; j < s.nOrig; j++ {
		if s.state[j] == stBasic {
			s.state[j] = stLower
			if math.IsInf(s.lo[j], -1) {
				s.state[j] = stUpper
			}
		}
		if s.state[j] == stLower && math.IsInf(s.lo[j], -1) {
			s.state[j] = stUpper
		}
		if s.state[j] == stUpper && math.IsInf(s.hi[j], 1) {
			s.state[j] = stLower
		}
	}
	r := s.bufA
	copy(r, s.rhs)
	for j := 0; j < s.nOrig; j++ {
		xj := s.nonbasicValue(j)
		//lint:exactfloat nonbasic values are stored bounds (or literal 0), never computed; sparsity fast path
		if xj == 0 {
			continue
		}
		s.scatterCol(j, -xj, r)
	}
	for i := 0; i < s.m; i++ {
		sl := s.nOrig + i
		if r[i] >= s.lo[sl]-feasTol && r[i] <= s.hi[sl]+feasTol {
			s.basic[i] = sl
			s.state[sl] = stBasic
			s.xB[i] = clamp(r[i], s.lo[sl], s.hi[sl])
			continue
		}
		near := s.lo[sl]
		nst := stLower
		if math.IsInf(near, -1) || (r[i] > s.hi[sl] && !math.IsInf(s.hi[sl], 1)) {
			near, nst = s.hi[sl], stUpper
		}
		s.state[sl] = nst
		resid := r[i] - near
		sign := 1.0
		if resid < 0 {
			sign = -1
		}
		av := s.nBase + len(s.artRow)
		s.artRow = append(s.artRow, int32(i))
		s.artVal = append(s.artVal, sign)
		s.lo = append(s.lo, 0)
		s.hi = append(s.hi, Inf)
		s.obj = append(s.obj, 0)
		s.state = append(s.state, stBasic)
		s.basic[i] = av
		s.xB[i] = math.Abs(resid)
	}
	s.n = s.nBase + len(s.artRow)
	s.factor = nil
	s.etas = s.etas[:0]
}
