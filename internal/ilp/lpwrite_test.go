package ilp

import (
	"strings"
	"testing"
)

func TestWriteLPBasic(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x", 1)
	y := m.AddVar("y", 0, 5.5, -2)
	z := m.AddVar("z", 0, Inf, 0)
	m.AddConstraint([]Term{{x, 1}, {y, -3}}, LE, 4, "cap")
	m.AddConstraint([]Term{{y, 1}, {z, 1}}, GE, 1, "cover")
	m.AddConstraint([]Term{{x, 1}}, EQ, 1, "fix")

	var sb strings.Builder
	if err := m.WriteLP(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Minimize",
		"Subject To",
		"cap0: 1 x_0 - 3 y_1 <= 4",
		"cover1: 1 y_1 + 1 z_2 >= 1",
		"fix2: 1 x_0 = 1",
		"Bounds",
		"0 <= x_0 <= 1",
		"0 <= y_1 <= 5.5",
		"z_2 >= 0",
		"Generals",
		"x_0",
		"End",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteLPEmptyObjectiveAndFreeVar(t *testing.T) {
	m := NewModel()
	m.AddVar("f", -Inf, Inf, 0) // free variable, no objective
	var sb strings.Builder
	if err := m.WriteLP(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "f_0 free") {
		t.Errorf("free bound missing:\n%s", out)
	}
	if !strings.Contains(out, "obj: 0 x0") {
		t.Errorf("placeholder objective missing:\n%s", out)
	}
}

func TestWriteLPSanitizesNames(t *testing.T) {
	m := NewModel()
	v := m.AddBinary("v[1,2]", 1)
	m.AddConstraint([]Term{{v, 1}}, LE, 1, "cap(3)")
	var sb strings.Builder
	if err := m.WriteLP(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.ContainsAny(out, "[](),") {
		t.Errorf("unsanitized characters in:\n%s", out)
	}
}

func TestWriteLPInvalidModel(t *testing.T) {
	m := NewModel()
	m.AddVar("x", 2, 1, 0)
	var sb strings.Builder
	if err := m.WriteLP(&sb); err == nil {
		t.Error("invalid model should fail")
	}
}
