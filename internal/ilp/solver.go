package ilp

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rulefit/internal/invariant"
	"rulefit/internal/obs"
)

// Options controls a solve.
type Options struct {
	// TimeLimit bounds the wall-clock solve time (0 = no limit).
	TimeLimit time.Duration
	// NodeLimit bounds branch & bound nodes (0 = no limit).
	NodeLimit int
	// Presolve enables bound propagation and model reduction (default
	// on; set DisablePresolve to turn off for ablation).
	DisablePresolve bool
	// FullPricing forces full Dantzig pricing on every simplex
	// iteration instead of partial pricing (debug/ablation).
	FullPricing bool
	// DisableCuts turns off root cover-cut separation (ablation and the
	// cuts-identity check; default on). Cuts never change the returned
	// optimum — only how fast the search proves it.
	DisableCuts bool
	// Workers is the number of branch & bound worker goroutines
	// (0 = GOMAXPROCS). The solve status, objective, and solution are
	// independent of the worker count: nodes are expanded in fixed-size
	// synchronous rounds, each node LP is a pure function of its work
	// item, and round results are merged in a deterministic order — so
	// Workers=1 and Workers=8 return byte-identical results.
	Workers int
	// Sink receives structured solver events (nil disables tracing; the
	// disabled path costs one branch per emission site). Events are
	// emitted only from the solver's sequential sections and nothing is
	// ever read back from the sink, so the search — and the returned
	// solution — is byte-identical with tracing on or off and the event
	// sequence is identical (modulo Event.TimeMS) for any worker count.
	Sink obs.Sink
	// TraceID, when non-empty, is stamped on every event emitted to
	// Sink (Event.TraceID), joining the solve's event stream to the
	// request that triggered it. Purely observational: it never feeds
	// back into the search.
	TraceID string
	// Span, when non-nil, is the parent under which the solver opens
	// presolve / root_lp / search timing child spans.
	Span *obs.Span
	// Progress, when non-nil, receives atomically-published live
	// snapshots (phase, incumbent, best bound, gap, nodes, elapsed) from
	// the solver's sequential sections — the daemon's /debug/solvez
	// feed. Like Sink, nothing is ever read back: the search and the
	// returned solution are byte-identical with or without it, and a nil
	// Progress costs one branch per publish site.
	Progress *obs.Progress
	// ProfileLabels, when set, applies runtime/pprof goroutine labels
	// (trace_id, phase) around the solve phases, so CPU profiles of a
	// busy daemon attribute samples to requests and phases. Worker
	// goroutines inherit the labels. Off by default: label swaps
	// allocate, and unprofiled paths should not pay for them.
	ProfileLabels bool
}

// Solve minimizes the model. The returned solution's Values are rounded
// to integers for integer variables when a solution is found.
func Solve(m *Model, opts Options) (Solution, error) {
	start := time.Now()
	sol, err := solve(m, opts, start)
	if err != nil {
		return sol, err
	}
	obs.Default.RecordSolve(obs.SolveSample{
		Status:         sol.Status.String(),
		Wall:           time.Since(start),
		Nodes:          sol.Stats.Nodes,
		SimplexIters:   sol.Stats.SimplexIters,
		LURefactors:    sol.Stats.LURefactors,
		PresolveFixes:  sol.Stats.PresolveFix,
		Incumbents:     sol.Stats.Incumbents,
		Branched:       sol.Stats.Branched,
		PrunedBound:    sol.Stats.PrunedBound,
		PrunedInfeas:   sol.Stats.PrunedInfeasible,
		IntegralLeaves: sol.Stats.IntegralLeaves,
		LostSubtrees:   sol.Stats.LostSubtrees,
		PrunedStale:    sol.Stats.PrunedStale,
	})
	return sol, nil
}

func solve(m *Model, opts Options, start time.Time) (Solution, error) {
	if err := m.Validate(); err != nil {
		return Solution{}, err
	}
	// Request-scoped tracing: stamp the trace ID on every emitted event.
	// Tag returns nil for a nil sink, so the disabled fast path holds.
	opts.Sink = obs.Tag(opts.TraceID, opts.Sink)
	var deadline time.Time
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}

	lo := make([]float64, len(m.vars))
	hi := make([]float64, len(m.vars))
	for j, v := range m.vars {
		lo[j], hi[j] = v.lo, v.hi
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.ProfileLabels {
		// Restore the goroutine's label set on exit so a request
		// handler's labels don't leak past its solve.
		defer pprof.SetGoroutineLabels(context.Background())
	}
	stats := Stats{Workers: workers, Gap: -1, RootGap: -1}
	work := m
	if !opts.DisablePresolve {
		solvePhaseLabels(opts.ProfileLabels, opts.TraceID, "presolve")
		if opts.Progress != nil {
			opts.Progress.Publish(obs.ProgressSnapshot{TraceID: opts.TraceID,
				Phase: "presolve", Gap: -1, Workers: workers,
				ElapsedMS: msSince(start)}) //lint:detsource timing telemetry, never read back into the search
		}
		pre := opts.Span.Child("presolve")
		res := presolve(m, lo, hi, &stats)
		pre.SetCount("fixes", int64(stats.PresolveFix))
		pre.End()
		if opts.Sink != nil {
			opts.Sink.Event(obs.Event{Kind: obs.KindPresolve, Fixes: stats.PresolveFix,
				BranchVar: -1, Gap: -1, TimeMS: msSince(start)})
		}
		if res == presolveInfeasible {
			if opts.Sink != nil {
				opts.Sink.Event(obs.Event{Kind: obs.KindDone, Outcome: Infeasible.String(),
					Reason: StopNone.String(), BranchVar: -1, Gap: -1, TimeMS: msSince(start)})
			}
			if opts.Progress != nil {
				opts.Progress.Publish(obs.ProgressSnapshot{TraceID: opts.TraceID,
					Phase: "done", Gap: -1, Workers: workers, Done: true,
					ElapsedMS: msSince(start)}) //lint:detsource timing telemetry, never read back into the search
			}
			return Solution{Status: Infeasible, Stats: stats}, nil
		}
		if invariant.Enabled {
			// Presolve reports infeasibility itself; surviving it with
			// crossed or widened bounds means a propagation bug.
			for j := range lo {
				invariant.Assert(lo[j] <= hi[j]+1e-9,
					"presolve: variable %d bounds crossed: [%g, %g]", j, lo[j], hi[j])
				invariant.Assert(lo[j] >= m.vars[j].lo-1e-9 && hi[j] <= m.vars[j].hi+1e-9,
					"presolve: variable %d bounds [%g, %g] widened beyond model [%g, %g]",
					j, lo[j], hi[j], m.vars[j].lo, m.vars[j].hi)
			}
		}
	}

	bb := &bnb{
		model:       work,
		deadline:    deadline,
		nodeCap:     opts.NodeLimit,
		stats:       stats,
		fullPricing: opts.FullPricing,
		disableCuts: opts.DisableCuts,
		presolveOff: opts.DisablePresolve,
		workers:     workers,
		sink:        opts.Sink,
		span:        opts.Span,
		start:       start,
		progress:    opts.Progress,
		traceID:     opts.TraceID,
		labels:      opts.ProfileLabels,
		lostBound:   math.Inf(1),
	}
	sol, err := bb.run(lo, hi)
	if err != nil {
		return Solution{}, err
	}
	return sol, nil
}

// msSince is the wall-clock offset stamped on events. Timing only —
// never read back into the search.
func msSince(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1e3
}

// solvePhaseLabels applies pprof goroutine labels (trace_id, phase) for
// one solve phase when enabled; worker goroutines spawned during the
// phase inherit them, so profile samples from parallel node LPs
// attribute to the owning solve. Purely observational — labels are
// profiler metadata and never influence the search.
func solvePhaseLabels(enabled bool, traceID, phase string) {
	if !enabled {
		return
	}
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("trace_id", traceID, "phase", phase)))
}

type presolveResult int

const (
	presolveOK presolveResult = iota + 1
	presolveInfeasible
)

// presolve tightens variable bounds by constraint activity propagation,
// iterating to a fixpoint. It modifies lo/hi in place and never excludes
// an integer-feasible point.
func presolve(m *Model, lo, hi []float64, stats *Stats) presolveResult {
	for round := 0; round < 20; round++ {
		changed := false
		for ci := range m.cons {
			c := &m.cons[ci]
			// Treat EQ as both LE and GE.
			if c.Op == LE || c.Op == EQ {
				switch propagateLE(m, c.Terms, c.RHS, lo, hi, stats) {
				case presolveInfeasible:
					return presolveInfeasible
				case presolveChanged:
					changed = true
				}
			}
			if c.Op == GE || c.Op == EQ {
				// -terms <= -rhs
				neg := make([]Term, len(c.Terms))
				for i, t := range c.Terms {
					neg[i] = Term{Var: t.Var, Coef: -t.Coef}
				}
				switch propagateLE(m, neg, -c.RHS, lo, hi, stats) {
				case presolveInfeasible:
					return presolveInfeasible
				case presolveChanged:
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return presolveOK
}

const presolveChanged presolveResult = 99

// propagateLE tightens bounds for a row sum(a x) <= b.
func propagateLE(m *Model, terms []Term, b float64, lo, hi []float64, stats *Stats) presolveResult {
	minAct := 0.0
	for _, t := range terms {
		if t.Coef > 0 {
			minAct += t.Coef * lo[t.Var]
		} else {
			minAct += t.Coef * hi[t.Var]
		}
	}
	if math.IsInf(minAct, -1) {
		return presolveOK
	}
	if minAct > b+1e-7 {
		return presolveInfeasible
	}
	res := presolveOK
	for _, t := range terms {
		slack := b - minAct
		if t.Coef > 0 {
			// a_j (x_j - lo_j) <= slack
			ub := lo[t.Var] + slack/t.Coef
			if m.vars[t.Var].integer {
				ub = math.Floor(ub + 1e-7)
			}
			if ub < hi[t.Var]-1e-9 {
				hi[t.Var] = ub
				if ub < lo[t.Var]-1e-9 {
					return presolveInfeasible
				}
				stats.PresolveFix++
				res = presolveChanged
			}
		} else if t.Coef < 0 {
			lb := hi[t.Var] + slack/t.Coef
			if m.vars[t.Var].integer {
				lb = math.Ceil(lb - 1e-7)
			}
			if lb > lo[t.Var]+1e-9 {
				lo[t.Var] = lb
				if lb > hi[t.Var]+1e-9 {
					return presolveInfeasible
				}
				stats.PresolveFix++
				res = presolveChanged
			}
		}
	}
	return res
}

// Branch & bound constants.
const (
	// batchNodes is the number of deque items expanded per synchronous
	// round once an incumbent exists. It is a constant — NOT derived
	// from the worker count — because the node expansion schedule must
	// be a pure function of the instance for Workers=1/2/8 to return
	// identical results. Workers beyond batchNodes cannot be kept busy.
	batchNodes = 16
	// deadlineEveryNodes is roughly how many nodes pass between
	// wall-clock deadline polls, keeping time.Now off the per-node hot
	// path during single-node dive rounds (the deadline is also polled
	// after every round that improves the incumbent).
	deadlineEveryNodes = 64
	// lexTol is the per-component tolerance of the lexicographic
	// incumbent comparison; integer components are rounded before the
	// comparison, so distinct placements differ by at least 1.
	lexTol = 1e-9
	// incTol is the objective margin for bound-domination pruning: a
	// subtree whose LP bound is within incTol of the incumbent cannot
	// contain a strictly better solution and is cut.
	incTol = 1e-9
	// tieTol is the objective tolerance under which two incumbents are
	// considered tied and compared lexicographically instead.
	tieTol = 1e-6
)

// Pseudocost / reliability branching constants. All selection happens
// in the sequential sections (run and the merge loop), so the
// pseudocost tables never race and the branching decisions are a pure
// function of the instance.
const (
	// relK is the reliability threshold: a variable is strong-branched
	// until it has this many real observations per direction.
	relK = 4
	// sbMaxPerNode caps how many candidates one node may strong-branch
	// (most fractional first, ties by index).
	sbMaxPerNode = 4
	// sbIterCap bounds each strong-branch trial's dual simplex pivots;
	// a truncated trial still yields a usable objective-gain estimate.
	sbIterCap = 100
	// sbTotalBudget caps strong-branch trials per solve, bounding the
	// reliability phase on instances with many variables.
	sbTotalBudget = 256
)

// bnb is the branch & bound driver. Parallelism is deterministic by
// construction: the frontier is a LIFO deque of self-contained work
// items; each round pops a fixed-size batch in deque order, a worker
// pool solves the batch's node LPs concurrently (each LP result is a
// pure function of its item), and the results are merged sequentially
// in batch order — pruning, incumbent updates, and child pushes all
// happen in the merge. Thread scheduling and worker count therefore
// influence only wall-clock time, never the search tree or the answer.
type bnb struct {
	model    *Model
	deadline time.Time
	nodeCap  int
	stats    Stats
	workers  int

	// sink/span/start feed the observability layer. All emission happens
	// in the sequential sections (run and the merge loop), and nothing is
	// read back, so they cannot perturb the search. progress/traceID/
	// labels extend the same contract to live snapshots and pprof labels.
	sink     obs.Sink
	span     *obs.Span
	start    time.Time
	progress *obs.Progress
	traceID  string
	labels   bool

	// rootBound is the root relaxation bound after the cut loop (ceiled
	// when the objective is integral); haveRoot marks it valid. Feeds
	// Stats.RootGap and progress snapshots before the first incumbent.
	rootBound float64
	haveRoot  bool

	objIntegral bool
	fullPricing bool
	disableCuts bool
	presolveOff bool

	deque []*workItem // LIFO: dive-first children are pushed last

	// Pseudocost state: per-variable per-unit objective-gain averages
	// from real child solves and reliability strong-branch trials, plus
	// global totals used as priors for unobserved variables. Mutated
	// only in sequential sections.
	pcDownSum, pcUpSum []float64
	pcDownCnt, pcUpCnt []int
	pcObsDownSum       float64
	pcObsUpSum         float64
	pcObsDownCnt       int
	pcObsUpCnt         int

	// Strong-branching scratch: sbSolver is the sequential-phase solver
	// (worker 0's), reused for trial solves between batches; sbLo/sbHi
	// are trial bound buffers; sbEvalsLeft is the per-solve budget.
	sbSolver    *lpSolver
	sbLo, sbHi  []float64
	sbEvalsLeft int
	candBuf     []int

	incumbent    []float64
	incumbentObj float64
	haveInc      bool

	hitDeadline  bool
	hitNodeLimit bool
	// lostSubtree records that some node was pruned for a reason other
	// than proven infeasibility or bound domination (time limit,
	// numerics); a clean "Infeasible" or "Optimal" conclusion is then
	// impossible.
	lostSubtree bool
	// lostBound is the lowest pruning bound among lost subtrees; open
	// lost subtrees cap how good BestBound may claim to be.
	lostBound float64
}

// workItem is one branch & bound subtree: the structural variable bounds
// of the node and the parent's nonbasic state vector used to warm start
// the node's LP. Each item is self-contained, so the node's LP result is
// a pure function of the item no matter which worker solves it or when.
type workItem struct {
	lo, hi []float64 // structural bounds (len nOrig)
	state  []int8    // parent states for structurals+slacks (shared, read-only)
	bound  float64   // parent's pruning bound (ceiled when the objective is integral)
	raw    float64   // parent's raw LP objective, for monotonicity checks

	// snap is the parent's factored basis (shared read-only by both
	// children); nil forces the cold solve path. branchVar/branchUp/frac
	// record the branching decision that created the item: the warm
	// start applies it as a single bound delta, and the merge feeds the
	// observed objective gain back into the pseudocost tables.
	snap      *basisSnapshot
	branchVar int
	branchUp  bool
	frac      float64 // parent LP fractional part of branchVar

	// id is the 1-based expansion number (assigned when the item is
	// popped and counted as a node; the root is 1). parent/depth identify
	// the item's place in the tree for trace events; none of the three
	// influence the search.
	id     int
	parent int
	depth  int
}

// nodeResult is the outcome of one node LP solve, captured by a worker
// for the deterministic merge.
type nodeResult struct {
	st        lpStatus
	err       error
	raw       float64        // LP objective at the node
	x         []float64      // structural primal values
	state     []int8         // post-solve nonbasic states (structurals+slacks)
	snap      *basisSnapshot // post-solve factored basis for the children (nil: not reusable)
	warm      bool           // the node reused its parent's basis (dual-simplex warm start)
	iters     int            // simplex iterations spent on this node
	refactors int            // LU refactorizations spent on this node
}

func (b *bnb) run(lo, hi []float64) (Solution, error) {
	m := b.model
	b.objIntegral = true
	for _, v := range m.vars {
		//lint:exactfloat integrality test: Trunc(x) == x exactly iff x is an integer; a tolerance would mis-classify near-integers
		if v.obj != math.Trunc(v.obj) {
			b.objIntegral = false
			break
		}
	}
	b.enterPhase("root_lp")
	rootSp := b.span.Child("root_lp")
	s := newLPSolver(m, lo, hi, nil)
	s.deadline = b.deadline
	s.fullPricing = b.fullPricing
	s.initBasis()
	st, err := s.solveLP()
	rootSp.SetCount("iters", int64(s.iters))
	rootSp.SetCount("refactors", int64(s.refactors))
	rootSp.End()
	if err != nil {
		return Solution{}, err
	}
	b.stats.SimplexIters = s.iters
	b.stats.LURefactors = s.refactors
	switch st {
	case lpInfeasible:
		return b.noSolution(Infeasible)
	case lpUnbounded:
		return b.noSolution(Unbounded)
	case lpTimeLimit:
		b.hitDeadline = true
		return b.noSolution(LimitReached)
	}

	if !b.disableCuts {
		b.enterPhase("cuts")
		cutSp := b.span.Child("cuts")
		var cst lpStatus
		s, cst, err = b.rootCutLoop(s, lo, hi)
		cutSp.SetCount("cuts", int64(b.stats.CutsAdded))
		cutSp.End()
		if err != nil {
			return Solution{}, err
		}
		switch cst {
		case lpInfeasible:
			return b.noSolution(Infeasible)
		case lpUnbounded:
			return b.noSolution(Unbounded)
		case lpTimeLimit:
			b.hitDeadline = true
			return b.noSolution(LimitReached)
		}
	}

	// Pseudocost and strong-branch state (sequential sections only).
	nv := len(m.vars)
	b.pcDownSum = make([]float64, nv)
	b.pcUpSum = make([]float64, nv)
	b.pcDownCnt = make([]int, nv)
	b.pcUpCnt = make([]int, nv)
	b.sbSolver = s
	b.sbLo = make([]float64, s.nOrig)
	b.sbHi = make([]float64, s.nOrig)
	b.sbEvalsLeft = sbTotalBudget

	b.incumbentObj = math.Inf(1)
	b.stats.Nodes = 1 // root

	rootRaw := s.structuralObjective()
	if b.sink != nil {
		b.emit(obs.Event{Kind: obs.KindRootLP, Bound: rootRaw,
			Iters: s.iters, Refactors: s.refactors, BranchVar: -1, Gap: -1})
	}
	rootBound := rootRaw
	if b.objIntegral {
		rootBound = math.Ceil(rootBound - 1e-6)
	}
	b.rootBound, b.haveRoot = rootBound, true

	rootX := s.primalValues()
	root := &workItem{
		lo:        append([]float64(nil), s.lo[:s.nOrig]...),
		hi:        append([]float64(nil), s.hi[:s.nOrig]...),
		id:        1,
		branchVar: -1,
	}
	rootRes := nodeResult{
		raw:   rootRaw,
		x:     rootX,
		state: append([]int8(nil), s.state[:s.nBase]...),
		snap:  s.captureSnapshot(),
	}
	if frac := b.selectBranch(root, &rootRes); frac >= 0 {
		b.stats.Branched++
		if b.sink != nil {
			f := rootX[frac] - math.Floor(rootX[frac])
			b.emit(obs.Event{Kind: obs.KindNode, Node: 1, Outcome: obs.OutcomeBranched,
				Bound: rootBound, BranchVar: frac, Frac: math.Min(f, 1-f), Gap: -1})
		}
		b.deque = b.makeChildren(root, &rootRes, frac)
		b.enterPhase("search")
		searchSp := b.span.Child("search")
		err := b.search(s)
		searchSp.SetCount("nodes", int64(b.stats.Nodes))
		searchSp.End()
		if err != nil {
			return Solution{}, err
		}
	} else {
		b.stats.IntegralLeaves++
		b.stats.Incumbents++
		b.stats.LastIncumbentAtNode = 1
		x, obj := b.canonical(rootX)
		if b.sink != nil {
			b.emit(obs.Event{Kind: obs.KindNode, Node: 1, Outcome: obs.OutcomeIntegral,
				Bound: rootBound, BranchVar: -1, Gap: -1})
			b.emit(obs.Event{Kind: obs.KindIncumbent, Node: 1, Incumbent: obj, Gap: -1})
		}
		return b.finish(x, obj, true)
	}

	if b.hitDeadline || b.hitNodeLimit {
		if b.haveInc {
			return b.finish(b.incumbent, b.incumbentObj, false)
		}
		return b.noSolution(LimitReached)
	}
	if b.haveInc {
		return b.finish(b.incumbent, b.incumbentObj, !b.lostSubtree)
	}
	if b.lostSubtree {
		return b.noSolution(LimitReached)
	}
	return b.noSolution(Infeasible)
}

// emit stamps the wall-clock offset onto an event and forwards it to
// the sink. Callers guard with b.sink != nil so the disabled path never
// constructs events.
func (b *bnb) emit(e obs.Event) {
	e.TimeMS = msSince(b.start)
	b.sink.Event(e)
}

// enterPhase marks a solve-phase transition for the introspection
// layer: pprof labels when profiling is enabled, and a progress
// snapshot when one is attached. Called only from sequential sections;
// costs two branches when introspection is off.
func (b *bnb) enterPhase(phase string) {
	solvePhaseLabels(b.labels, b.traceID, phase)
	if b.progress != nil {
		b.publishProgress(phase)
	}
}

// publishProgress posts one live snapshot. Callers guard with
// b.progress != nil (the snapshot assembly walks the open deque, which
// the disabled path must not pay for). Sequential sections only, so
// every field read here is stable.
func (b *bnb) publishProgress(phase string) {
	s := obs.ProgressSnapshot{TraceID: b.traceID, Phase: phase,
		Nodes: b.stats.Nodes, Incumbents: b.stats.Incumbents,
		Workers: b.workers, Gap: -1,
		ElapsedMS: msSince(b.start)} //lint:detsource timing telemetry, never read back into the search
	bb := b.openBound()
	if b.haveInc {
		if bb > b.incumbentObj {
			bb = b.incumbentObj
		}
		s.Incumbent, s.HaveIncumbent = b.incumbentObj, true
		s.BestBound = bb
		s.Gap = (b.incumbentObj - bb) / math.Max(math.Abs(b.incumbentObj), 1e-9)
	} else if !math.IsInf(bb, 0) {
		s.BestBound = bb
	} else if b.haveRoot {
		s.BestBound = b.rootBound
	}
	b.progress.Publish(s)
}

// stopReason derives the stop reason from the limit flags, in
// precedence order.
func (b *bnb) stopReason() StopReason {
	switch {
	case b.hitDeadline:
		return StopDeadline
	case b.hitNodeLimit:
		return StopNodeLimit
	case b.lostSubtree:
		return StopLostSubtree
	}
	return StopNone
}

// openBound is the lowest LP bound among subtrees not yet explored: the
// open deque items plus any lost subtrees. The true optimum cannot lie
// below it.
func (b *bnb) openBound() float64 {
	bound := b.lostBound
	for _, it := range b.deque {
		if it.bound < bound {
			bound = it.bound
		}
	}
	return bound
}

// bestBoundAndGap computes the final proof state for an incumbent with
// objective obj. The bound is clamped to obj so the gap is never
// negative, and both stay finite (JSON-safe).
func (b *bnb) bestBoundAndGap(obj float64, proven bool) (float64, float64) {
	if proven {
		return obj, 0
	}
	bb := b.openBound()
	if bb > obj {
		bb = obj
	}
	return bb, (obj - bb) / math.Max(math.Abs(obj), 1e-9)
}

// noSolution finalizes a solve that ends without an incumbent
// (infeasible, unbounded, or a limit hit before any integer solution).
func (b *bnb) noSolution(status Status) (Solution, error) {
	b.stats.StopReason = b.stopReason()
	b.stats.Gap = -1
	if b.sink != nil {
		b.emit(obs.Event{Kind: obs.KindDone, Node: b.stats.Nodes, Outcome: status.String(),
			Reason: b.stats.StopReason.String(), Iters: b.stats.SimplexIters,
			BranchVar: -1, Gap: -1})
	}
	if b.progress != nil {
		b.progress.Publish(obs.ProgressSnapshot{TraceID: b.traceID, Phase: "done",
			Nodes: b.stats.Nodes, Workers: b.workers, Gap: -1, Done: true,
			ElapsedMS: msSince(b.start)}) //lint:detsource timing telemetry, never read back into the search
	}
	return Solution{Status: status, Stats: b.stats}, nil
}

// search runs the synchronous-rounds tree search. Per round: pop live
// items off the LIFO deque in deterministic order, solve their node LPs
// concurrently on the worker pool, and merge the results sequentially
// in batch order. Because node selection, LP results, and the merge are
// all independent of thread timing, the entire search — and therefore
// the answer — is a pure function of the instance; workers change only
// wall-clock time.
//
// The round width itself is part of that pure function: while no
// incumbent exists the batch is a single node, which makes the search a
// plain depth-first dive (identical node order to a sequential solver —
// a wider beam before the first incumbent only burns nodes, since
// nothing can be pruned yet). Once an incumbent lands, rounds widen to
// batchNodes so workers have parallel work, and bound pruning keeps the
// slightly stale frontier cheap.
func (b *bnb) search(s *lpSolver) error {
	// Worker 0 reuses the root solver; the rest get clones, taken
	// before any node mutates s. More workers than batchNodes can never
	// be kept busy within a round.
	nw := b.workers
	if nw > batchNodes {
		nw = batchNodes
	}
	solvers := make([]*lpSolver, nw)
	solvers[0] = s
	for i := 1; i < nw; i++ {
		solvers[i] = s.clone()
	}

	batch := make([]*workItem, 0, batchNodes)
	results := make([]nodeResult, batchNodes)
	sinceDeadline := 0
	for len(b.deque) > 0 {
		width := 1
		if b.haveInc {
			width = batchNodes
		}
		batch = batch[:0]
		for len(batch) < width && len(b.deque) > 0 {
			// Check the cap before popping: every item that leaves the
			// deque is either skipped (stale) or counted AND solved, so
			// the per-outcome counters always sum to Nodes.
			if b.nodeCap > 0 && b.stats.Nodes >= b.nodeCap {
				b.hitNodeLimit = true
				break
			}
			n := len(b.deque)
			it := b.deque[n-1]
			b.deque[n-1] = nil
			b.deque = b.deque[:n-1]
			if b.haveInc && it.bound >= b.incumbentObj-incTol {
				// Subtree dominated since it was pushed: discarded before
				// becoming a node, so it gets no id and no outcome.
				b.stats.PrunedStale++
				if b.sink != nil {
					b.emit(obs.Event{Kind: obs.KindSkip, Parent: it.parent, Depth: it.depth,
						Bound: it.bound, BranchVar: -1, Gap: -1})
				}
				continue
			}
			b.stats.Nodes++
			it.id = b.stats.Nodes
			batch = append(batch, it)
		}
		res := results[:len(batch)]
		b.solveBatch(solvers, batch, res)
		hadInc, prevObj := b.haveInc, b.incumbentObj
		for i, it := range batch {
			if err := b.mergeNode(it, &res[i]); err != nil {
				return err
			}
		}
		sinceDeadline += len(batch)
		improved := b.haveInc && (!hadInc || b.incumbentObj < prevObj)
		if improved && b.sink != nil {
			// One point of the bound-gap time series per improving round.
			bb := b.incumbentObj
			if ob := b.openBound(); ob < bb {
				bb = ob
			}
			b.emit(obs.Event{Kind: obs.KindGap, Node: b.stats.Nodes, BranchVar: -1,
				Incumbent: b.incumbentObj, BestBound: bb,
				Gap: (b.incumbentObj - bb) / math.Max(math.Abs(b.incumbentObj), 1e-9)})
		}
		if b.hitNodeLimit {
			return nil
		}
		// Poll the wall clock every ~deadlineEveryNodes nodes and after
		// rounds that improved the incumbent, not per node. Progress
		// snapshots share the cadence: bounded publish cost, and the
		// wall clock is being read anyway.
		if sinceDeadline >= deadlineEveryNodes || improved {
			sinceDeadline = 0
			if b.progress != nil {
				b.publishProgress("search")
			}
			if b.deadlineExpired() {
				b.hitDeadline = true
				return nil
			}
		}
	}
	return nil
}

// solveBatch fills res[i] with the LP outcome of batch[i]. Workers pull
// batch indices from an atomic counter; since each solve is a pure
// function of its item, which worker lands on which index is irrelevant
// to the results.
func (b *bnb) solveBatch(solvers []*lpSolver, batch []*workItem, res []nodeResult) {
	if len(batch) == 1 || len(solvers) == 1 {
		for i, it := range batch {
			res[i] = solveNode(solvers[0], it)
		}
		return
	}
	nw := len(solvers)
	if nw > len(batch) {
		nw = len(batch)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(s *lpSolver) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(batch) {
					return
				}
				res[i] = solveNode(s, batch[i])
			}
		}(solvers[w])
	}
	wg.Wait()
}

// solveNode installs a work item into a solver and re-solves the node
// LP. Bounds, warm-start states, and the pricing cursors are all reset
// from the item first, so the result is a pure function of the item —
// bit-identical no matter which worker solves it or what it solved
// before.
func solveNode(s *lpSolver, it *workItem) nodeResult {
	startIters, startRefactors := s.iters, s.refactors
	var st lpStatus
	var err error
	warm := false
	if it.snap != nil {
		if wst, ok, werr := warmSolveNode(s, it); ok {
			st, err, warm = wst, werr, true
		}
	}
	if !warm {
		// Cold path: rebuild a repair basis from the parent's nonbasic
		// states, phase 1, phase 2. Also the deterministic fallback when
		// the warm start stalls or hits numerics.
		copy(s.lo[:s.nOrig], it.lo)
		copy(s.hi[:s.nOrig], it.hi)
		copy(s.state[:s.nBase], it.state)
		s.priceCursor, s.priceWindow = 0, 0
		st, err = s.resolveAfterBoundChange()
	}
	r := nodeResult{st: st, err: err, warm: warm,
		iters: s.iters - startIters, refactors: s.refactors - startRefactors}
	if err != nil || st != lpOptimal {
		return r
	}
	r.raw = s.structuralObjective()
	r.x = s.primalValues()
	r.state = append([]int8(nil), s.state[:s.nBase]...)
	r.snap = s.captureSnapshot()
	return r
}

// mergeNode folds one solved node into the search state: prune it,
// record an incumbent, or push its children. Called sequentially in
// batch order, so every decision here is deterministic.
func (b *bnb) mergeNode(it *workItem, r *nodeResult) error {
	b.stats.SimplexIters += r.iters
	b.stats.LURefactors += r.refactors
	if r.warm {
		b.stats.WarmStartReuses++
	}
	if r.err != nil {
		return r.err
	}
	switch r.st {
	case lpOptimal:
	case lpInfeasible:
		// Proven empty: sound prune.
		b.stats.PrunedInfeasible++
		if b.sink != nil {
			b.emit(b.nodeEvent(it, r, obs.OutcomeInfeasible, it.bound))
		}
		return nil
	default:
		// Time limit or numeric trouble: the subtree is lost, so an
		// Infeasible or proven-Optimal conclusion is no longer possible.
		b.lostSubtree = true
		b.stats.LostSubtrees++
		if it.bound < b.lostBound {
			b.lostBound = it.bound
		}
		if b.sink != nil {
			b.emit(b.nodeEvent(it, r, obs.OutcomeLost, it.bound))
		}
		return nil
	}
	// A child LP is the parent LP plus one tightened bound, so
	// (minimizing) its objective can only rise. A drop means the warm
	// start resumed from a corrupted basis.
	invariant.Assert(r.raw >= it.raw-1e-6,
		"branch&bound: child LP bound %g below parent bound %g", r.raw, it.raw)
	// Feed the observed per-unit objective gain of this branching back
	// into the pseudocost tables (sequential section: no races).
	if it.branchVar >= 0 {
		gain := r.raw - it.raw
		if gain < 0 {
			gain = 0
		}
		den := it.frac
		if it.branchUp {
			den = 1 - it.frac
		}
		if den > 1e-9 {
			b.recordPseudocost(it.branchVar, it.branchUp, gain/den)
		}
	}
	bound := r.raw
	if b.objIntegral {
		bound = math.Ceil(bound - 1e-6)
	}
	if b.haveInc && bound >= b.incumbentObj-incTol {
		// Dominated by an incumbent merged earlier.
		b.stats.PrunedBound++
		if b.sink != nil {
			b.emit(b.nodeEvent(it, r, obs.OutcomeBound, bound))
		}
		return nil
	}
	if f := b.selectBranch(it, r); f >= 0 {
		b.stats.Branched++
		if b.sink != nil {
			e := b.nodeEvent(it, r, obs.OutcomeBranched, bound)
			e.BranchVar = f
			frac := r.x[f] - math.Floor(r.x[f])
			e.Frac = math.Min(frac, 1-frac)
			b.emit(e)
		}
		b.deque = append(b.deque, b.makeChildren(it, r, f)...)
		return nil
	}
	b.stats.IntegralLeaves++
	if b.sink != nil {
		b.emit(b.nodeEvent(it, r, obs.OutcomeIntegral, bound))
	}
	x, obj := b.canonical(r.x)
	if !b.haveInc || solutionLess(obj, x, b.incumbentObj, b.incumbent) {
		b.haveInc = true
		b.incumbentObj = obj
		b.incumbent = x
		b.stats.Incumbents++
		b.stats.LastIncumbentAtNode = it.id
		if b.sink != nil {
			b.emit(obs.Event{Kind: obs.KindIncumbent, Node: it.id, Parent: it.parent,
				Depth: it.depth, Incumbent: obj, BranchVar: -1, Gap: -1})
		}
	}
	return nil
}

// nodeEvent builds the common fields of a KindNode event. BranchVar is
// -1 (overridden by the branched outcome).
func (b *bnb) nodeEvent(it *workItem, r *nodeResult, outcome string, bound float64) obs.Event {
	return obs.Event{Kind: obs.KindNode, Node: it.id, Parent: it.parent, Depth: it.depth,
		Outcome: outcome, Bound: bound, BranchVar: -1,
		Iters: r.iters, Refactors: r.refactors, Gap: -1}
}

// makeChildren branches the just-solved node on variable j, returning
// the two children in push order (dive-first child last, so the LIFO
// deque pops it first). Both share the node's post-solve state vector;
// bounds arrays are copied per child.
func (b *bnb) makeChildren(it *workItem, r *nodeResult, j int) []*workItem {
	x := r.x[j]
	floor := math.Floor(x)
	bound := r.raw
	if b.objIntegral {
		bound = math.Ceil(bound - 1e-6)
	}
	mk := func(lo0, hi0 float64, up bool) *workItem {
		lo := append([]float64(nil), it.lo...)
		hi := append([]float64(nil), it.hi...)
		lo[j], hi[j] = lo0, hi0
		return &workItem{lo: lo, hi: hi, state: r.state, bound: bound, raw: r.raw,
			snap: r.snap, branchVar: j, branchUp: up, frac: x - floor,
			parent: it.id, depth: it.depth + 1}
	}
	down := mk(it.lo[j], floor, false)
	up := mk(floor+1, it.hi[j], true)
	if x-floor <= 0.5 {
		return []*workItem{up, down} // dive toward floor first
	}
	return []*workItem{down, up}
}

// canonical rounds the integer components of an LP point and evaluates
// the objective on the rounded vector, so incumbents compare (and are
// reported) identically no matter which node produced them.
func (b *bnb) canonical(x []float64) ([]float64, float64) {
	obj := 0.0
	for j, v := range b.model.vars {
		if v.integer {
			x[j] = math.Round(x[j])
		}
		obj += v.obj * x[j]
	}
	return x, obj
}

// solutionLess is the fixed total order on incumbents: strictly better
// objective wins; objectives tied within tieTol fall back to
// lexicographic comparison of the solution vectors. Bound pruning makes
// ties rare (a candidate can tie only when its rounded objective lands
// above its LP bound), but when one occurs the winner is still decided
// by a total order, never by arrival timing.
func solutionLess(aObj float64, a []float64, bObj float64, bv []float64) bool {
	if aObj < bObj-tieTol {
		return true
	}
	if aObj > bObj+tieTol {
		return false
	}
	for i := range a {
		d := a[i] - bv[i]
		if d < -lexTol {
			return true
		}
		if d > lexTol {
			return false
		}
	}
	return false
}

// deadlineExpired reports whether the wall-clock deadline passed.
func (b *bnb) deadlineExpired() bool {
	return !b.deadline.IsZero() && time.Now().After(b.deadline)
}

// fracVar returns the index of the most fractional integer variable in
// the LP point x, or -1 if the point is integral.
func (b *bnb) fracVar(x []float64) int {
	best, bestDist := -1, 1e-6
	for j, v := range b.model.vars {
		if !v.integer {
			continue
		}
		f := x[j] - math.Floor(x[j])
		dist := math.Min(f, 1-f)
		if dist > bestDist {
			bestDist = dist
			best = j
		}
	}
	return best
}

// rootCutLoop strengthens the root relaxation with lifted cover cuts:
// separate at the current LP point, age the pool, propagate bounds over
// the fresh cut rows, rebuild the LP with the active cuts, and
// re-solve. Returns the solver holding the final (possibly cut-
// augmented) relaxation — the whole search then runs against that row
// set, so work-item state vectors stay shape-consistent.
func (b *bnb) rootCutLoop(s *lpSolver, lo, hi []float64) (*lpSolver, lpStatus, error) {
	pool := newCutPool()
	for round := 1; round <= cutRoundLimit; round++ {
		x := s.primalValues()
		if b.fracVar(x) < 0 {
			break // relaxation already integral; cuts cannot tighten it
		}
		aged := pool.age(x)
		fresh := separateCovers(b.model, lo, hi, x, pool)
		if len(fresh) == 0 && !aged {
			break
		}
		b.stats.CutsAdded += len(fresh)
		b.stats.CutRoundsRoot = round
		if b.sink != nil {
			for _, c := range fresh {
				b.emit(obs.Event{Kind: obs.KindCut, Node: round, Iters: len(c.Terms),
					Bound: c.RHS, BranchVar: -1, Gap: -1})
			}
		}
		if !b.presolveOff {
			// Cuts are valid for every integer point, so bound propagation
			// over them is sound and can fix variables before the re-solve.
			for _, c := range fresh {
				if propagateLE(b.model, c.Terms, c.RHS, lo, hi, &b.stats) == presolveInfeasible {
					return s, lpInfeasible, nil
				}
			}
		}
		ns := newLPSolver(b.model, lo, hi, pool.rows())
		ns.deadline = b.deadline
		ns.fullPricing = b.fullPricing
		ns.initBasis()
		st, err := ns.solveLP()
		b.stats.SimplexIters += ns.iters
		b.stats.LURefactors += ns.refactors
		if err != nil {
			return s, 0, err
		}
		if st != lpOptimal {
			return ns, st, nil
		}
		s = ns
	}
	return s, lpOptimal, nil
}

// selectBranch picks the branching variable for a solved node by
// pseudocost product score, falling back to the global-average prior
// (1.0 before any observation, which degenerates to most-fractional)
// for variables without history. Candidates below the reliability
// threshold are strong-branched first. Ties break to the lowest
// variable index, so selection is deterministic.
func (b *bnb) selectBranch(it *workItem, r *nodeResult) int {
	cands := b.candBuf[:0]
	for j, v := range b.model.vars {
		if !v.integer {
			continue
		}
		f := r.x[j] - math.Floor(r.x[j])
		if math.Min(f, 1-f) > 1e-6 {
			cands = append(cands, j)
		}
	}
	b.candBuf = cands
	if len(cands) == 0 {
		return -1
	}
	if len(cands) == 1 {
		return cands[0]
	}
	b.reliabilityInit(it, r, cands)
	gDown, gUp := 1.0, 1.0
	if b.pcObsDownCnt > 0 {
		gDown = b.pcObsDownSum / float64(b.pcObsDownCnt)
	}
	if b.pcObsUpCnt > 0 {
		gUp = b.pcObsUpSum / float64(b.pcObsUpCnt)
	}
	best, bestScore := -1, math.Inf(-1)
	for _, j := range cands {
		f := r.x[j] - math.Floor(r.x[j])
		dd, du := gDown, gUp
		if b.pcDownCnt[j] > 0 {
			dd = b.pcDownSum[j] / float64(b.pcDownCnt[j])
		}
		if b.pcUpCnt[j] > 0 {
			du = b.pcUpSum[j] / float64(b.pcUpCnt[j])
		}
		// The fractionality term keeps selection sane when every observed
		// gain is zero (common on degenerate placement LPs): the product
		// then ties near 1e-18 for all candidates and the 1e-12-weighted
		// term decides, reproducing most-fractional branching. With any
		// real pseudocost signal it is negligible.
		score := math.Max(dd*f, 1e-9)*math.Max(du*(1-f), 1e-9) + 1e-12*f*(1-f)
		if score > bestScore {
			bestScore, best = score, j
		}
	}
	return best
}

// reliabilityInit strong-branches the node's least-reliable candidates
// (fewest pseudocost observations), seeding their tables with real
// dual-simplex objective gains. Runs on the sequential-phase solver
// only; every trial is bounded by sbIterCap and the global budget.
func (b *bnb) reliabilityInit(it *workItem, r *nodeResult, cands []int) {
	if r.snap == nil || b.sbSolver == nil || b.sbEvalsLeft <= 0 {
		return
	}
	need := make([]int, 0, len(cands))
	for _, j := range cands {
		cnt := b.pcDownCnt[j]
		if b.pcUpCnt[j] < cnt {
			cnt = b.pcUpCnt[j]
		}
		if cnt < relK {
			need = append(need, j)
		}
	}
	if len(need) == 0 {
		return
	}
	// Most fractional first; exact-tie order falls back to the variable
	// index, so the trial sequence is deterministic.
	sort.Slice(need, func(a, c int) bool {
		fa := r.x[need[a]] - math.Floor(r.x[need[a]])
		fc := r.x[need[c]] - math.Floor(r.x[need[c]])
		da, dc := math.Min(fa, 1-fa), math.Min(fc, 1-fc)
		//lint:exactfloat deterministic sort key: any exact-tie order is fine, but it must not depend on tolerance
		if da != dc {
			return da > dc
		}
		return need[a] < need[c]
	})
	if len(need) > sbMaxPerNode {
		need = need[:sbMaxPerNode]
	}
	for _, j := range need {
		if b.sbEvalsLeft <= 0 {
			return
		}
		f := r.x[j] - math.Floor(r.x[j])
		itersBefore := b.stats.SimplexIters
		downObj := b.sbTrial(it, r, j, false)
		upObj := b.sbTrial(it, r, j, true)
		if f > 1e-9 && !math.IsInf(downObj, 1) {
			b.recordPseudocost(j, false, math.Max(downObj-r.raw, 0)/f)
		}
		if 1-f > 1e-9 && !math.IsInf(upObj, 1) {
			b.recordPseudocost(j, true, math.Max(upObj-r.raw, 0)/(1-f))
		}
		if b.sink != nil {
			b.emit(obs.Event{Kind: obs.KindPseudocostInit, Node: it.id, BranchVar: j,
				Frac: math.Min(f, 1-f), Iters: b.stats.SimplexIters - itersBefore, Gap: -1})
		}
	}
}

// sbTrial estimates one branching direction's objective by a capped
// dual-simplex reoptimization from the node's snapshot. Returns +Inf
// when the child is proven infeasible, or the node objective when the
// trial cannot run (no usable snapshot, numerics) — a neutral estimate.
func (b *bnb) sbTrial(it *workItem, r *nodeResult, j int, up bool) float64 {
	s := b.sbSolver
	copy(b.sbLo, it.lo)
	copy(b.sbHi, it.hi)
	fl := math.Floor(r.x[j])
	if up {
		b.sbLo[j] = fl + 1
	} else {
		b.sbHi[j] = fl
	}
	trial := &workItem{lo: b.sbLo, hi: b.sbHi, state: r.state, raw: r.raw,
		snap: r.snap, branchVar: j, branchUp: up}
	startIters, startRef := s.iters, s.refactors
	obj := r.raw
	if s.installSnapshot(trial) {
		st, err := s.dualSimplex(sbIterCap)
		switch {
		case err != nil:
			// Numerics: keep the neutral estimate.
		case st == lpInfeasible:
			obj = math.Inf(1)
		default:
			// Optimal, stalled, or deadline: any dual-feasible basis bounds
			// the child objective from below — a usable gain estimate.
			obj = s.structuralObjective()
		}
	}
	b.stats.SimplexIters += s.iters - startIters
	b.stats.LURefactors += s.refactors - startRef
	b.stats.StrongBranchEvals++
	b.sbEvalsLeft--
	return obj
}

// recordPseudocost folds one observed per-unit objective gain into the
// per-variable table and the global prior.
func (b *bnb) recordPseudocost(j int, up bool, perUnit float64) {
	if up {
		b.pcUpSum[j] += perUnit
		b.pcUpCnt[j]++
		b.pcObsUpSum += perUnit
		b.pcObsUpCnt++
		return
	}
	b.pcDownSum[j] += perUnit
	b.pcDownCnt[j]++
	b.pcObsDownSum += perUnit
	b.pcObsDownCnt++
}

// finish assembles the final solution from a canonical (integer-rounded)
// incumbent vector, recording the stop reason and the final proof state
// (BestBound/Gap) in the stats.
func (b *bnb) finish(x []float64, obj float64, proven bool) (Solution, error) {
	vals := append([]float64(nil), x...)
	status := Feasible
	if proven {
		status = Optimal
	}
	b.stats.StopReason = b.stopReason()
	b.stats.BestBound, b.stats.Gap = b.bestBoundAndGap(obj, proven)
	if b.haveRoot {
		rg := (obj - b.rootBound) / math.Max(math.Abs(obj), 1e-9)
		if rg < 0 {
			rg = 0
		}
		b.stats.RootGap = rg
	}
	if b.sink != nil {
		b.emit(obs.Event{Kind: obs.KindDone, Node: b.stats.Nodes, Outcome: status.String(),
			Reason: b.stats.StopReason.String(), Iters: b.stats.SimplexIters, BranchVar: -1,
			Incumbent: obj, BestBound: b.stats.BestBound, Gap: b.stats.Gap})
	}
	if b.progress != nil {
		b.progress.Publish(obs.ProgressSnapshot{TraceID: b.traceID, Phase: "done",
			Nodes: b.stats.Nodes, Incumbent: obj, HaveIncumbent: true,
			BestBound: b.stats.BestBound, Gap: b.stats.Gap,
			Incumbents: b.stats.Incumbents, Workers: b.workers, Done: true,
			ElapsedMS: msSince(b.start)}) //lint:detsource timing telemetry, never read back into the search
	}
	return Solution{Status: status, Objective: obj, Values: vals, Stats: b.stats}, nil
}

// VerifySolution checks that values satisfy every constraint and bound of
// the model within tolerance; it returns a descriptive error otherwise.
// Used by tests and by callers that want a safety net.
func VerifySolution(m *Model, values []float64) error {
	if len(values) != len(m.vars) {
		return fmt.Errorf("ilp: got %d values for %d variables", len(values), len(m.vars))
	}
	for j, v := range m.vars {
		x := values[j]
		if x < v.lo-1e-6 || x > v.hi+1e-6 {
			return fmt.Errorf("ilp: variable %d (%s) = %g outside [%g, %g]", j, v.name, x, v.lo, v.hi)
		}
		if v.integer && math.Abs(x-math.Round(x)) > 1e-6 {
			return fmt.Errorf("ilp: variable %d (%s) = %g not integral", j, v.name, x)
		}
	}
	for ci, c := range m.cons {
		act := 0.0
		for _, t := range c.Terms {
			act += t.Coef * values[t.Var]
		}
		ok := true
		switch c.Op {
		case LE:
			ok = act <= c.RHS+1e-6
		case GE:
			ok = act >= c.RHS-1e-6
		case EQ:
			ok = math.Abs(act-c.RHS) <= 1e-6
		}
		if !ok {
			return fmt.Errorf("ilp: constraint %d (%s): activity %g %v %g violated", ci, c.Name, act, c.Op, c.RHS)
		}
	}
	return nil
}

// sortTermsByVar is a test helper ordering terms deterministically.
func sortTermsByVar(terms []Term) {
	sort.Slice(terms, func(a, b int) bool { return terms[a].Var < terms[b].Var })
}
