package ilp

import (
	"fmt"
	"math"
	"sort"
	"time"

	"rulefit/internal/invariant"
)

// Options controls a solve.
type Options struct {
	// TimeLimit bounds the wall-clock solve time (0 = no limit).
	TimeLimit time.Duration
	// NodeLimit bounds branch & bound nodes (0 = no limit).
	NodeLimit int
	// Presolve enables bound propagation and model reduction (default
	// on; set DisablePresolve to turn off for ablation).
	DisablePresolve bool
	// FullPricing forces full Dantzig pricing on every simplex
	// iteration instead of partial pricing (debug/ablation).
	FullPricing bool
}

// Solve minimizes the model. The returned solution's Values are rounded
// to integers for integer variables when a solution is found.
func Solve(m *Model, opts Options) (Solution, error) {
	if err := m.Validate(); err != nil {
		return Solution{}, err
	}
	var deadline time.Time
	if opts.TimeLimit > 0 {
		deadline = time.Now().Add(opts.TimeLimit)
	}

	lo := make([]float64, len(m.vars))
	hi := make([]float64, len(m.vars))
	for j, v := range m.vars {
		lo[j], hi[j] = v.lo, v.hi
	}

	stats := Stats{}
	work := m
	if !opts.DisablePresolve {
		switch presolve(m, lo, hi, &stats) {
		case presolveInfeasible:
			return Solution{Status: Infeasible, Stats: stats}, nil
		}
		if invariant.Enabled {
			// Presolve reports infeasibility itself; surviving it with
			// crossed or widened bounds means a propagation bug.
			for j := range lo {
				invariant.Assert(lo[j] <= hi[j]+1e-9,
					"presolve: variable %d bounds crossed: [%g, %g]", j, lo[j], hi[j])
				invariant.Assert(lo[j] >= m.vars[j].lo-1e-9 && hi[j] <= m.vars[j].hi+1e-9,
					"presolve: variable %d bounds [%g, %g] widened beyond model [%g, %g]",
					j, lo[j], hi[j], m.vars[j].lo, m.vars[j].hi)
			}
		}
	}

	bb := &bnb{
		model:       work,
		deadline:    deadline,
		nodeCap:     opts.NodeLimit,
		stats:       stats,
		fullPricing: opts.FullPricing,
	}
	sol, err := bb.run(lo, hi)
	if err != nil {
		return Solution{}, err
	}
	return sol, nil
}

type presolveResult int

const (
	presolveOK presolveResult = iota + 1
	presolveInfeasible
)

// presolve tightens variable bounds by constraint activity propagation,
// iterating to a fixpoint. It modifies lo/hi in place and never excludes
// an integer-feasible point.
func presolve(m *Model, lo, hi []float64, stats *Stats) presolveResult {
	for round := 0; round < 20; round++ {
		changed := false
		for ci := range m.cons {
			c := &m.cons[ci]
			// Treat EQ as both LE and GE.
			if c.Op == LE || c.Op == EQ {
				switch propagateLE(m, c.Terms, c.RHS, lo, hi, stats) {
				case presolveInfeasible:
					return presolveInfeasible
				case presolveChanged:
					changed = true
				}
			}
			if c.Op == GE || c.Op == EQ {
				// -terms <= -rhs
				neg := make([]Term, len(c.Terms))
				for i, t := range c.Terms {
					neg[i] = Term{Var: t.Var, Coef: -t.Coef}
				}
				switch propagateLE(m, neg, -c.RHS, lo, hi, stats) {
				case presolveInfeasible:
					return presolveInfeasible
				case presolveChanged:
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return presolveOK
}

const presolveChanged presolveResult = 99

// propagateLE tightens bounds for a row sum(a x) <= b.
func propagateLE(m *Model, terms []Term, b float64, lo, hi []float64, stats *Stats) presolveResult {
	minAct := 0.0
	for _, t := range terms {
		if t.Coef > 0 {
			minAct += t.Coef * lo[t.Var]
		} else {
			minAct += t.Coef * hi[t.Var]
		}
	}
	if math.IsInf(minAct, -1) {
		return presolveOK
	}
	if minAct > b+1e-7 {
		return presolveInfeasible
	}
	res := presolveOK
	for _, t := range terms {
		slack := b - minAct
		if t.Coef > 0 {
			// a_j (x_j - lo_j) <= slack
			ub := lo[t.Var] + slack/t.Coef
			if m.vars[t.Var].integer {
				ub = math.Floor(ub + 1e-7)
			}
			if ub < hi[t.Var]-1e-9 {
				hi[t.Var] = ub
				if ub < lo[t.Var]-1e-9 {
					return presolveInfeasible
				}
				stats.PresolveFix++
				res = presolveChanged
			}
		} else if t.Coef < 0 {
			lb := hi[t.Var] + slack/t.Coef
			if m.vars[t.Var].integer {
				lb = math.Ceil(lb - 1e-7)
			}
			if lb > lo[t.Var]+1e-9 {
				lo[t.Var] = lb
				if lb > hi[t.Var]+1e-9 {
					return presolveInfeasible
				}
				stats.PresolveFix++
				res = presolveChanged
			}
		}
	}
	return res
}

// bnb is the branch & bound driver.
type bnb struct {
	model    *Model
	deadline time.Time
	nodeCap  int
	stats    Stats

	incumbent    []float64
	incumbentObj float64
	haveInc      bool

	objIntegral bool
	fullPricing bool
	// lostSubtree records that some node was pruned for a reason other
	// than proven infeasibility or bound domination (time limit,
	// numerics); a clean "Infeasible" conclusion is then impossible.
	lostSubtree bool
}

// nodeFrame is one DFS frame: a branching variable, its two children's
// bound intervals, and the parent's nonbasic state vector used to warm
// start each child's LP.
type nodeFrame struct {
	variable     int
	oldLo, oldHi float64
	children     [2][2]float64 // {lo, hi} per child, dive-first order
	next         int           // next child index to try (0, 1, or 2=done)
	state        []int8        // parent states for structurals+slacks
	parentBound  float64       // parent's LP objective, for monotonicity checks
}

func (b *bnb) run(lo, hi []float64) (Solution, error) {
	m := b.model
	b.objIntegral = true
	for _, v := range m.vars {
		//lint:exactfloat integrality test: Trunc(x) == x exactly iff x is an integer; a tolerance would mis-classify near-integers
		if v.obj != math.Trunc(v.obj) {
			b.objIntegral = false
			break
		}
	}
	s := newLPSolver(m, lo, hi)
	s.deadline = b.deadline
	s.fullPricing = b.fullPricing
	s.initBasis()
	st, err := s.solveLP()
	if err != nil {
		return Solution{}, err
	}
	b.stats.SimplexIters = s.iters
	switch st {
	case lpInfeasible:
		return Solution{Status: Infeasible, Stats: b.stats}, nil
	case lpUnbounded:
		return Solution{Status: Unbounded, Stats: b.stats}, nil
	case lpTimeLimit:
		return Solution{Status: LimitReached, Stats: b.stats}, nil
	}

	b.incumbentObj = math.Inf(1)
	var stack []*nodeFrame
	b.stats.Nodes = 1

	// Process the root, then iterate the DFS.
	frac := b.checkIntegral(s)
	if frac < 0 {
		return b.finish(s.primalValues(), s.structuralObjective(), true)
	}
	stack = b.push(stack, s, frac)

	for len(stack) > 0 {
		if b.expired() {
			break
		}
		if b.nodeCap > 0 && b.stats.Nodes >= b.nodeCap {
			break
		}
		top := stack[len(stack)-1]
		if top.next >= 2 {
			// Both children explored: restore bounds and pop.
			s.setBound(top.variable, top.oldLo, top.oldHi)
			stack = stack[:len(stack)-1]
			continue
		}

		// Apply the next child: parent's nonbasic states + child bounds.
		child := top.children[top.next]
		top.next++
		copy(s.state[:len(top.state)], top.state)
		s.setBound(top.variable, child[0], child[1])
		b.stats.Nodes++
		st, err := s.resolveAfterBoundChange()
		if err != nil {
			return Solution{}, err
		}
		b.stats.SimplexIters = s.iters

		switch st {
		case lpOptimal:
			bound := s.structuralObjective()
			// A child LP is the parent LP plus one tightened bound, so
			// (minimizing) its objective can only rise. A drop means the
			// warm start resumed from a corrupted basis.
			invariant.Assert(bound >= top.parentBound-1e-6,
				"branch&bound: child LP bound %g below parent bound %g on variable %d",
				bound, top.parentBound, top.variable)
			if b.objIntegral {
				bound = math.Ceil(bound - 1e-6)
			}
			if b.haveInc && bound >= b.incumbentObj-1e-9 {
				continue // prune by bound
			}
			if f := b.checkIntegral(s); f < 0 {
				obj := s.structuralObjective()
				if !b.haveInc || obj < b.incumbentObj-1e-9 {
					b.haveInc = true
					b.incumbentObj = obj
					b.incumbent = s.primalValues()
				}
				continue
			} else {
				stack = b.push(stack, s, f)
			}
		case lpInfeasible:
			continue // proven empty: sound prune
		default:
			// Time limit or numeric trouble: the subtree is lost, so an
			// Infeasible conclusion is no longer provable.
			b.lostSubtree = true
			continue
		}
	}

	if b.expired() || (b.nodeCap > 0 && b.stats.Nodes >= b.nodeCap) {
		if b.haveInc {
			return b.finish(b.incumbent, b.incumbentObj, false)
		}
		return Solution{Status: LimitReached, Stats: b.stats}, nil
	}
	if b.haveInc {
		return b.finish(b.incumbent, b.incumbentObj, !b.lostSubtree)
	}
	if b.lostSubtree {
		return Solution{Status: LimitReached, Stats: b.stats}, nil
	}
	return Solution{Status: Infeasible, Stats: b.stats}, nil
}

// expired reports whether the deadline passed.
func (b *bnb) expired() bool {
	return !b.deadline.IsZero() && time.Now().After(b.deadline)
}

// checkIntegral returns the index of the most fractional integer variable
// in the current LP solution, or -1 if the solution is integral.
func (b *bnb) checkIntegral(s *lpSolver) int {
	x := s.primalValues()
	best, bestDist := -1, 1e-6
	for j, v := range b.model.vars {
		if !v.integer {
			continue
		}
		f := x[j] - math.Floor(x[j])
		dist := math.Min(f, 1-f)
		if dist > bestDist {
			bestDist = dist
			best = j
		}
	}
	return best
}

// push creates a DFS frame branching on variable j, diving first toward
// the nearer integer of its LP value.
func (b *bnb) push(stack []*nodeFrame, s *lpSolver, j int) []*nodeFrame {
	x := s.primalValues()[j]
	floor := math.Floor(x)
	fr := &nodeFrame{
		variable:    j,
		oldLo:       s.lo[j],
		oldHi:       s.hi[j],
		state:       append([]int8(nil), s.state[:s.nOrig+s.m]...),
		parentBound: s.structuralObjective(),
	}
	down := [2]float64{s.lo[j], floor}
	up := [2]float64{floor + 1, s.hi[j]}
	if x-floor <= 0.5 {
		fr.children = [2][2]float64{down, up}
	} else {
		fr.children = [2][2]float64{up, down}
	}
	return append(stack, fr)
}

// finish assembles the final solution.
func (b *bnb) finish(x []float64, obj float64, proven bool) (Solution, error) {
	vals := append([]float64(nil), x...)
	for j, v := range b.model.vars {
		if v.integer {
			vals[j] = math.Round(vals[j])
		}
	}
	status := Feasible
	if proven {
		status = Optimal
	}
	return Solution{Status: status, Objective: obj, Values: vals, Stats: b.stats}, nil
}

// VerifySolution checks that values satisfy every constraint and bound of
// the model within tolerance; it returns a descriptive error otherwise.
// Used by tests and by callers that want a safety net.
func VerifySolution(m *Model, values []float64) error {
	if len(values) != len(m.vars) {
		return fmt.Errorf("ilp: got %d values for %d variables", len(values), len(m.vars))
	}
	for j, v := range m.vars {
		x := values[j]
		if x < v.lo-1e-6 || x > v.hi+1e-6 {
			return fmt.Errorf("ilp: variable %d (%s) = %g outside [%g, %g]", j, v.name, x, v.lo, v.hi)
		}
		if v.integer && math.Abs(x-math.Round(x)) > 1e-6 {
			return fmt.Errorf("ilp: variable %d (%s) = %g not integral", j, v.name, x)
		}
	}
	for ci, c := range m.cons {
		act := 0.0
		for _, t := range c.Terms {
			act += t.Coef * values[t.Var]
		}
		ok := true
		switch c.Op {
		case LE:
			ok = act <= c.RHS+1e-6
		case GE:
			ok = act >= c.RHS-1e-6
		case EQ:
			ok = math.Abs(act-c.RHS) <= 1e-6
		}
		if !ok {
			return fmt.Errorf("ilp: constraint %d (%s): activity %g %v %g violated", ci, c.Name, act, c.Op, c.RHS)
		}
	}
	return nil
}

// sortTermsByVar is a test helper ordering terms deterministically.
func sortTermsByVar(terms []Term) {
	sort.Slice(terms, func(a, b int) bool { return terms[a].Var < terms[b].Var })
}
