package ilp

import (
	"errors"
	"math"

	"rulefit/internal/invariant"
)

// Sparse LU factorization of a square basis matrix, in the Gilbert-Peierls
// left-looking style: columns are factored in order, each by a sparse
// triangular solve against the L columns computed so far, with partial
// (threshold) pivoting on rows.
//
// The factorization is PB = LU up to the row permutation recorded in
// pivotRow: column j of the basis pivots on original row pivotRow[j].

// entry is one nonzero of a sparse column.
type entry struct {
	row int
	val float64
}

// luFactor is a sparse LU factorization supporting Ax=b and A^T y=c solves.
type luFactor struct {
	m int
	// lcols[j] holds L's column j: entries strictly below the unit
	// diagonal, indexed by original row.
	lcols [][]entry
	// ucols[j] holds U's column j: entries (k, val) where k < j is the
	// factor column index (permuted row), including the diagonal (k==j).
	ucols [][]entry
	udiag []float64
	// pivotRow[j] is the original row chosen as pivot for column j;
	// rowOfPiv is its inverse (original row -> factor index).
	pivotRow []int
	rowOfPiv []int
}

// errSingular reports a numerically singular basis.
var errSingular = errors.New("ilp: singular basis matrix")

// luFactorize factors the m x m matrix given column-wise.
func luFactorize(m int, cols [][]entry) (*luFactor, error) {
	f := &luFactor{
		m:        m,
		lcols:    make([][]entry, m),
		ucols:    make([][]entry, m),
		udiag:    make([]float64, m),
		pivotRow: make([]int, m),
		rowOfPiv: make([]int, m),
	}
	for i := range f.rowOfPiv {
		f.rowOfPiv[i] = -1
	}
	dense := make([]float64, m)   // scatter accumulator, by original row
	mark := make([]bool, m)       // nonzero pattern flags, by original row
	stack := make([]int, 0, 64)   // DFS stack of factor indices
	visited := make([]int32, m)   // DFS visit stamps, by factor index
	var stamp int32               // current DFS stamp
	order := make([]int, 0, 64)   // topological order of reached factor cols
	pattern := make([]int, 0, 64) // nonzero original rows of the column

	for j := 0; j < m; j++ {
		// Scatter column j.
		pattern = pattern[:0]
		order = order[:0]
		stamp++
		for _, e := range cols[j] {
			if mark[e.row] {
				dense[e.row] += e.val
				continue
			}
			mark[e.row] = true
			dense[e.row] = e.val
			pattern = append(pattern, e.row)
		}
		// Symbolic: DFS from each nonzero landing on an already-pivoted
		// row, collecting reached factor columns in reverse-topological
		// order (appended post-order, applied in reverse below).
		for _, r := range pattern {
			k := f.rowOfPiv[r]
			if k >= 0 && visited[k] != stamp {
				f.dfsReach(k, visited, stamp, &stack, &order)
			}
		}
		// Numeric: apply reached L columns in topological order.
		for idx := len(order) - 1; idx >= 0; idx-- {
			k := order[idx]
			pr := f.pivotRow[k]
			xk := dense[pr]
			//lint:exactfloat sparsity skip: only exact zeros (untouched scatter slots) may be skipped without changing the factorization
			if xk == 0 {
				continue
			}
			for _, e := range f.lcols[k] {
				if !mark[e.row] {
					mark[e.row] = true
					dense[e.row] = 0
					pattern = append(pattern, e.row)
				}
				dense[e.row] -= xk * e.val
			}
		}
		// Pivot selection: largest magnitude among unpivoted rows; the
		// already-pivoted rows become U entries.
		pivot, pmax := -1, 0.0
		for _, r := range pattern {
			if f.rowOfPiv[r] >= 0 {
				continue
			}
			if a := math.Abs(dense[r]); a > pmax {
				pmax, pivot = a, r
			}
		}
		// Unreached rows may still hold the pivot when the column has
		// entries only in pivoted rows (then the matrix is singular).
		if pivot < 0 || pmax < 1e-11 {
			// Clean up scatter state before failing.
			for _, r := range pattern {
				mark[r] = false
				dense[r] = 0
			}
			return nil, errSingular
		}
		piv := dense[pivot]
		f.pivotRow[j] = pivot
		f.rowOfPiv[pivot] = j
		f.udiag[j] = piv
		var ucol, lcol []entry
		for _, r := range pattern {
			v := dense[r]
			mark[r] = false
			dense[r] = 0
			//lint:exactfloat exact-zero fill-in carries no information; near-zeros are dropped below against 1e-13 thresholds
			if v == 0 || r == pivot {
				continue
			}
			if k := f.rowOfPiv[r]; k >= 0 && k < j {
				if math.Abs(v) > 1e-13 {
					ucol = append(ucol, entry{row: k, val: v})
				}
			} else if math.Abs(v/piv) > 1e-13 {
				lcol = append(lcol, entry{row: r, val: v / piv})
			}
		}
		f.ucols[j] = ucol
		f.lcols[j] = lcol
	}
	if invariant.Enabled {
		// Roundtrip probe: solve B x = B·1 and expect x ≈ 1. The error
		// scales with the basis condition number, so the tolerance is
		// generous — this asserts a structurally broken factorization
		// (bad permutation, dropped column), not numerical accuracy.
		probe := make([]float64, m)
		for _, col := range cols {
			for _, e := range col {
				probe[e.row] += e.val
			}
		}
		f.ftran(probe)
		worst := 0.0
		for _, x := range probe {
			if d := math.Abs(x - 1); d > worst {
				worst = d
			}
		}
		invariant.Assert(worst <= 1e-3*float64(1+m),
			"luFactorize: roundtrip probe error %g on %d x %d basis", worst, m, m)
	}
	return f, nil
}

// dfsReach performs an iterative DFS over the L structure from factor
// column k, appending finished nodes to order (post-order).
func (f *luFactor) dfsReach(k int, visited []int32, stamp int32, stack *[]int, order *[]int) {
	type frame struct {
		col int
		pos int
	}
	frames := []frame{{col: k}}
	visited[k] = stamp
	for len(frames) > 0 {
		fr := &frames[len(frames)-1]
		adv := false
		lc := f.lcols[fr.col]
		for fr.pos < len(lc) {
			r := lc[fr.pos].row
			fr.pos++
			if kk := f.rowOfPiv[r]; kk >= 0 && visited[kk] != stamp {
				visited[kk] = stamp
				frames = append(frames, frame{col: kk})
				adv = true
				break
			}
		}
		if !adv && fr.pos >= len(lc) {
			*order = append(*order, fr.col)
			frames = frames[:len(frames)-1]
		}
	}
	_ = stack
}

// ftran solves B x = b in place: b is indexed by original row on input,
// and on output x is indexed by factor column (i.e. x[j] is the value of
// the basic variable in factor position j).
func (f *luFactor) ftran(b []float64) {
	// Forward solve L y = Pb: process factor columns in order.
	for j := 0; j < f.m; j++ {
		y := b[f.pivotRow[j]]
		//lint:exactfloat sparsity skip of exact zeros in the solve vector; any nonzero, however small, must propagate
		if y == 0 {
			continue
		}
		for _, e := range f.lcols[j] {
			b[e.row] -= y * e.val
		}
	}
	// Gather into factor order and back-substitute U x = y.
	x := make([]float64, f.m)
	for j := 0; j < f.m; j++ {
		x[j] = b[f.pivotRow[j]]
	}
	for j := f.m - 1; j >= 0; j-- {
		x[j] /= f.udiag[j]
		xj := x[j]
		//lint:exactfloat sparsity skip of exact zeros in the solve vector; any nonzero, however small, must propagate
		if xj == 0 {
			continue
		}
		for _, e := range f.ucols[j] {
			x[e.row] -= xj * e.val
		}
	}
	copy(b[:f.m], x)
}

// btran solves B^T y = c in place: c is indexed by factor column on
// input; on output y is indexed by original row.
func (f *luFactor) btran(c []float64) {
	// Solve U^T z = c: forward over factor columns.
	for j := 0; j < f.m; j++ {
		for _, e := range f.ucols[j] {
			c[j] -= e.val * c[e.row]
		}
		c[j] /= f.udiag[j]
	}
	// Solve L^T (Py) = z: backward.
	y := make([]float64, f.m)
	for j := 0; j < f.m; j++ {
		y[j] = c[j]
	}
	for j := f.m - 1; j >= 0; j-- {
		acc := y[j]
		for _, e := range f.lcols[j] {
			acc -= e.val * y[f.rowOfPiv[e.row]]
		}
		y[j] = acc
	}
	for j := 0; j < f.m; j++ {
		c[f.pivotRow[j]] = y[j]
	}
}
