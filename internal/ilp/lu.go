package ilp

import (
	"errors"
	"math"

	"rulefit/internal/invariant"
)

// Sparse LU factorization of a square basis matrix, in the Gilbert-Peierls
// left-looking style: columns are factored in order, each by a sparse
// triangular solve against the L columns computed so far, with partial
// (threshold) pivoting on rows.
//
// The factorization is PB = LU up to the row permutation recorded in
// pivotRow: column j of the basis pivots on original row pivotRow[j].
//
// Storage is struct-of-arrays: L and U each live in one (ptr, rows, vals)
// column-compressed slab grown append-only while columns are factored in
// order, instead of one heap allocation per column. At paper scale the
// factorization is rebuilt thousands of times per solve, so the slab
// layout both kills the per-column allocator traffic and keeps the
// triangular-solve sweeps on contiguous memory.

// entry is one nonzero of a sparse column.
type entry struct {
	row int
	val float64
}

// luFactor is a sparse LU factorization supporting Ax=b and A^T y=c
// solves. It is immutable once luFactorize returns, so branch & bound
// snapshots may share one factor across worker goroutines as long as
// each caller passes its own scratch vector to ftranInto/btranInto.
type luFactor struct {
	m int
	// L's columns: entries strictly below the unit diagonal, indexed by
	// original row. Column j spans lrows/lvals[lptr[j]:lptr[j+1]].
	lptr  []int32
	lrows []int32
	lvals []float64
	// U's columns: entries (k, val) where k < j is the factor column
	// index (permuted row), excluding the diagonal (kept in udiag).
	uptr  []int32
	urows []int32
	uvals []float64
	udiag []float64
	// pivotRow[j] is the original row chosen as pivot for column j;
	// rowOfPiv is its inverse (original row -> factor index).
	pivotRow []int32
	rowOfPiv []int32
}

// errSingular reports a numerically singular basis.
var errSingular = errors.New("ilp: singular basis matrix")

// luWorkspace holds the scatter/DFS scratch reused across
// factorizations. The factored output cannot be reused (snapshots keep
// old factors alive), but the symbolic scratch — the bulk of the
// transient allocation — can.
type luWorkspace struct {
	dense   []float64 // scatter accumulator, by original row
	mark    []bool    // nonzero pattern flags, by original row
	visited []int32   // DFS visit stamps, by factor index
	stamp   int32     // current DFS stamp
	order   []int32   // topological order of reached factor cols
	pattern []int32   // nonzero original rows of the column
	frames  []luFrame // DFS stack
}

// luFrame is one iterative-DFS stack frame over the L structure.
type luFrame struct {
	col int32
	pos int32
}

// reset sizes the workspace for an m-row factorization.
func (ws *luWorkspace) reset(m int) {
	if cap(ws.dense) < m {
		ws.dense = make([]float64, m)
		ws.mark = make([]bool, m)
		ws.visited = make([]int32, m)
		ws.stamp = 0
	}
	ws.dense = ws.dense[:m]
	ws.mark = ws.mark[:m]
	ws.visited = ws.visited[:m]
	ws.order = ws.order[:0]
	ws.pattern = ws.pattern[:0]
	ws.frames = ws.frames[:0]
}

// luFactorize factors the m x m matrix given column-wise. Compatibility
// entry point (tests and benches); the solver hot path uses
// luFactorizeCSC with a reused workspace.
func luFactorize(m int, cols [][]entry) (*luFactor, error) {
	nnz := 0
	for _, c := range cols {
		nnz += len(c)
	}
	ptr := make([]int32, m+1)
	rows := make([]int32, 0, nnz)
	vals := make([]float64, 0, nnz)
	for j, c := range cols {
		for _, e := range c {
			rows = append(rows, int32(e.row))
			vals = append(vals, e.val)
		}
		ptr[j+1] = int32(len(rows))
	}
	var ws luWorkspace
	return luFactorizeCSC(m, ptr, rows, vals, &ws)
}

// luFactorizeCSC factors the m x m matrix given in compressed sparse
// column form. ws provides the symbolic scratch; it is reset here and
// may be reused across calls.
func luFactorizeCSC(m int, ptr []int32, rows []int32, vals []float64, ws *luWorkspace) (*luFactor, error) {
	nnz := len(rows)
	f := &luFactor{
		m:        m,
		lptr:     make([]int32, m+1),
		uptr:     make([]int32, m+1),
		udiag:    make([]float64, m),
		pivotRow: make([]int32, m),
		rowOfPiv: make([]int32, m),
		// The input nnz is a reasonable first guess for L and U; the
		// slabs grow by append when fill-in exceeds it.
		lrows: make([]int32, 0, nnz),
		lvals: make([]float64, 0, nnz),
		urows: make([]int32, 0, nnz),
		uvals: make([]float64, 0, nnz),
	}
	for i := range f.rowOfPiv {
		f.rowOfPiv[i] = -1
	}
	ws.reset(m)
	dense, mark := ws.dense, ws.mark

	for j := 0; j < m; j++ {
		// Scatter column j.
		pattern := ws.pattern[:0]
		order := ws.order[:0]
		ws.stamp++
		for p := ptr[j]; p < ptr[j+1]; p++ {
			r := rows[p]
			if mark[r] {
				dense[r] += vals[p]
				continue
			}
			mark[r] = true
			dense[r] = vals[p]
			pattern = append(pattern, r)
		}
		// Symbolic: DFS from each nonzero landing on an already-pivoted
		// row, collecting reached factor columns in reverse-topological
		// order (appended post-order, applied in reverse below).
		for _, r := range pattern {
			k := f.rowOfPiv[r]
			if k >= 0 && ws.visited[k] != ws.stamp {
				order = f.dfsReach(k, ws.visited, ws.stamp, &ws.frames, order)
			}
		}
		// Numeric: apply reached L columns in topological order.
		for idx := len(order) - 1; idx >= 0; idx-- {
			k := order[idx]
			pr := f.pivotRow[k]
			xk := dense[pr]
			//lint:exactfloat sparsity skip: only exact zeros (untouched scatter slots) may be skipped without changing the factorization
			if xk == 0 {
				continue
			}
			for p := f.lptr[k]; p < f.lptr[k+1]; p++ {
				r := f.lrows[p]
				if !mark[r] {
					mark[r] = true
					dense[r] = 0
					pattern = append(pattern, r)
				}
				dense[r] -= xk * f.lvals[p]
			}
		}
		// Pivot selection: largest magnitude among unpivoted rows; the
		// already-pivoted rows become U entries.
		pivot, pmax := int32(-1), 0.0
		for _, r := range pattern {
			if f.rowOfPiv[r] >= 0 {
				continue
			}
			if a := math.Abs(dense[r]); a > pmax {
				pmax, pivot = a, r
			}
		}
		// Unreached rows may still hold the pivot when the column has
		// entries only in pivoted rows (then the matrix is singular).
		if pivot < 0 || pmax < 1e-11 {
			// Clean up scatter state before failing.
			for _, r := range pattern {
				mark[r] = false
				dense[r] = 0
			}
			ws.pattern, ws.order = pattern[:0], order[:0]
			return nil, errSingular
		}
		piv := dense[pivot]
		f.pivotRow[j] = pivot
		f.rowOfPiv[pivot] = int32(j)
		f.udiag[j] = piv
		for _, r := range pattern {
			v := dense[r]
			mark[r] = false
			dense[r] = 0
			//lint:exactfloat exact-zero fill-in carries no information; near-zeros are dropped below against 1e-13 thresholds
			if v == 0 || r == pivot {
				continue
			}
			if k := f.rowOfPiv[r]; k >= 0 && int(k) < j {
				if math.Abs(v) > 1e-13 {
					f.urows = append(f.urows, k)
					f.uvals = append(f.uvals, v)
				}
			} else if math.Abs(v/piv) > 1e-13 {
				f.lrows = append(f.lrows, r)
				f.lvals = append(f.lvals, v/piv)
			}
		}
		f.lptr[j+1] = int32(len(f.lrows))
		f.uptr[j+1] = int32(len(f.urows))
		ws.pattern, ws.order = pattern[:0], order[:0]
	}
	if invariant.Enabled {
		// Roundtrip probe: solve B x = B·1 and expect x ≈ 1. The error
		// scales with the basis condition number, so the tolerance is
		// generous — this asserts a structurally broken factorization
		// (bad permutation, dropped column), not numerical accuracy.
		probe := make([]float64, m)
		for p := 0; p < nnz; p++ {
			probe[rows[p]] += vals[p]
		}
		f.ftranInto(probe, make([]float64, m))
		worst := 0.0
		for _, x := range probe {
			if d := math.Abs(x - 1); d > worst {
				worst = d
			}
		}
		invariant.Assert(worst <= 1e-3*float64(1+m),
			"luFactorize: roundtrip probe error %g on %d x %d basis", worst, m, m)
	}
	return f, nil
}

// dfsReach performs an iterative DFS over the L structure from factor
// column k, appending finished nodes to order (post-order).
func (f *luFactor) dfsReach(k int32, visited []int32, stamp int32, frames *[]luFrame, order []int32) []int32 {
	fr := (*frames)[:0]
	fr = append(fr, luFrame{col: k})
	visited[k] = stamp
	for len(fr) > 0 {
		top := &fr[len(fr)-1]
		adv := false
		end := f.lptr[top.col+1]
		for p := f.lptr[top.col] + top.pos; p < end; p++ {
			top.pos++
			r := f.lrows[p]
			if kk := f.rowOfPiv[r]; kk >= 0 && visited[kk] != stamp {
				visited[kk] = stamp
				fr = append(fr, luFrame{col: kk})
				adv = true
				break
			}
		}
		if !adv && f.lptr[top.col]+top.pos >= end {
			order = append(order, top.col)
			fr = fr[:len(fr)-1]
		}
	}
	*frames = fr[:0]
	return order
}

// ftran solves B x = b in place, allocating its own scratch.
// Compatibility wrapper; hot paths use ftranInto with a reused buffer.
func (f *luFactor) ftran(b []float64) {
	f.ftranInto(b, make([]float64, f.m))
}

// ftranInto solves B x = b in place: b is indexed by original row on
// input, and on output x is indexed by factor column (i.e. x[j] is the
// value of the basic variable in factor position j). scratch must have
// length >= m and is clobbered; it exists so the solver's hot loop
// performs no per-solve allocation.
func (f *luFactor) ftranInto(b, scratch []float64) {
	// Forward solve L y = Pb: process factor columns in order.
	for j := 0; j < f.m; j++ {
		y := b[f.pivotRow[j]]
		//lint:exactfloat sparsity skip of exact zeros in the solve vector; any nonzero, however small, must propagate
		if y == 0 {
			continue
		}
		for p := f.lptr[j]; p < f.lptr[j+1]; p++ {
			b[f.lrows[p]] -= y * f.lvals[p]
		}
	}
	// Gather into factor order and back-substitute U x = y.
	x := scratch[:f.m]
	for j := 0; j < f.m; j++ {
		x[j] = b[f.pivotRow[j]]
	}
	for j := f.m - 1; j >= 0; j-- {
		x[j] /= f.udiag[j]
		xj := x[j]
		//lint:exactfloat sparsity skip of exact zeros in the solve vector; any nonzero, however small, must propagate
		if xj == 0 {
			continue
		}
		for p := f.uptr[j]; p < f.uptr[j+1]; p++ {
			x[f.urows[p]] -= xj * f.uvals[p]
		}
	}
	copy(b[:f.m], x)
}

// btran solves B^T y = c in place, allocating its own scratch.
// Compatibility wrapper; hot paths use btranInto with a reused buffer.
func (f *luFactor) btran(c []float64) {
	f.btranInto(c, make([]float64, f.m))
}

// btranInto solves B^T y = c in place: c is indexed by factor column on
// input; on output y is indexed by original row. scratch must have
// length >= m and is clobbered.
func (f *luFactor) btranInto(c, scratch []float64) {
	// Solve U^T z = c: forward over factor columns.
	for j := 0; j < f.m; j++ {
		acc := c[j]
		for p := f.uptr[j]; p < f.uptr[j+1]; p++ {
			acc -= f.uvals[p] * c[f.urows[p]]
		}
		c[j] = acc / f.udiag[j]
	}
	// Solve L^T (Py) = z: backward.
	y := scratch[:f.m]
	for j := 0; j < f.m; j++ {
		y[j] = c[j]
	}
	for j := f.m - 1; j >= 0; j-- {
		acc := y[j]
		for p := f.lptr[j]; p < f.lptr[j+1]; p++ {
			acc -= f.lvals[p] * y[f.rowOfPiv[f.lrows[p]]]
		}
		y[j] = acc
	}
	for j := 0; j < f.m; j++ {
		c[f.pivotRow[j]] = y[j]
	}
}
