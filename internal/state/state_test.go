package state

import (
	"bytes"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"rulefit/internal/core"
	"rulefit/internal/randgen"
	"rulefit/internal/spec"
)

// testSpec builds a tiny explicit-form instance from a randgen seed.
func testSpec(t *testing.T, seed int64) *spec.Problem {
	t.Helper()
	inst, err := randgen.Generate(randgen.FromSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	return spec.FromCore(inst.Problem)
}

func testOpts() core.Options {
	return core.Options{Merging: true, RemoveRedundant: true, TimeLimit: 30 * time.Second}
}

// fp is the byte-identity projection used by the state tests.
func fp(pl *core.Placement) string {
	return fmt.Sprintf("%v|%.6f|%d|%v|%v", pl.Status, pl.Objective, pl.TotalRules, pl.Assign, pl.MergedAt)
}

// coldSolve re-solves an instance from scratch with no session caches.
func coldSolve(t *testing.T, sp *spec.Problem, opts core.Options) *core.Placement {
	t.Helper()
	prob, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.Place(prob, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// addRule is a fresh single-rule delta at a priority no generated
// policy uses.
func addRule(ingress int) spec.Delta {
	return spec.Delta{
		Op:      spec.OpAddRule,
		Ingress: ingress,
		Rule:    &spec.Rule{Pattern: "1*1*****", Action: "drop", Priority: 9001},
	}
}

// TestSessionLadder drives one session through the three ladder
// levels and checks every answer against a cold solve.
func TestSessionLadder(t *testing.T) {
	sp := testSpec(t, 1)
	rule := addRule(sp.Policies[0].Ingress)
	// Widen the pattern to this instance's rule width.
	w := len(sp.Policies[0].Rules[0].Pattern)
	rule.Rule.Pattern = "1" + strings.Repeat("*", w-1)

	m := NewManager(Config{})
	s, res, err := m.Create(sp, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathCold || res.Version != 1 {
		t.Fatalf("create: path=%s version=%d, want cold v1", res.Path, res.Version)
	}
	if got, want := fp(res.Placement), fp(coldSolve(t, sp, testOpts())); got != want {
		t.Fatalf("create placement differs from cold solve:\n got %s\nwant %s", got, want)
	}
	baseFP := fp(res.Placement)

	// L1: one changed policy, the rest served from the encode cache.
	res, err = s.Delta([]spec.Delta{rule}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathWarm || res.Version != 2 {
		t.Fatalf("delta: path=%s version=%d, want warm v2", res.Path, res.Version)
	}
	if len(sp.Policies) > 1 && res.CacheStats.PolicyHits != int64(len(sp.Policies)-1) {
		t.Fatalf("delta cache stats %+v, want %d policy hits", res.CacheStats, len(sp.Policies)-1)
	}
	after := sp.Clone()
	if err := after.Apply(rule); err != nil {
		t.Fatal(err)
	}
	if got, want := fp(res.Placement), fp(coldSolve(t, after, testOpts())); got != want {
		t.Fatalf("warm delta differs from cold solve:\n got %s\nwant %s", got, want)
	}

	// L0: removing the rule restores the original canonical bytes.
	res, err = s.Delta([]spec.Delta{{
		Op: spec.OpRemoveRule, Ingress: rule.Ingress, Priority: rule.Rule.Priority,
	}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathIdentity || res.Version != 3 {
		t.Fatalf("revert delta: path=%s version=%d, want identity v3", res.Path, res.Version)
	}
	if fp(res.Placement) != baseFP {
		t.Fatalf("add-then-remove did not restore the original placement")
	}
}

// TestBadDeltaLeavesSessionUntouched asserts failed deltas roll back
// completely: version, spec, and placement are unchanged.
func TestBadDeltaLeavesSessionUntouched(t *testing.T) {
	sp := testSpec(t, 2)
	m := NewManager(Config{})
	s, res, err := m.Create(sp, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	before := fp(res.Placement)

	for _, deltas := range [][]spec.Delta{
		nil,
		{{Op: "resize_flux_capacitor"}},
		{{Op: spec.OpAddRule, Ingress: 424242, Rule: &spec.Rule{Pattern: "1*", Action: "drop", Priority: 1}}},
		{{Op: spec.OpSetCapacity, Switch: 0, Capacity: -3}},
		{addRule(sp.Policies[0].Ingress), {Op: spec.OpRemoveRule, Ingress: 424242, Priority: 9001}},
	} {
		if _, err := s.Delta(deltas, nil, nil); !errors.Is(err, ErrBadDelta) {
			t.Fatalf("deltas %v: err=%v, want ErrBadDelta", deltas, err)
		}
	}
	version, pl, got := s.Snapshot()
	if version != 1 || fp(pl) != before {
		t.Fatalf("failed deltas mutated the session: version=%d", version)
	}
	if !bytes.Equal(got.Canonical(), sp.Clone().Canonical()) {
		t.Fatal("failed deltas mutated the authoritative spec")
	}
}

// TestManagerLRUEviction fills the manager past MaxSessions and
// checks the least-recently-used session is evicted and logged.
func TestManagerLRUEviction(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	m := NewManager(Config{MaxSessions: 2, Logger: logger})

	var ids []string
	for seed := int64(1); seed <= 2; seed++ {
		s, _, err := m.Create(testSpec(t, seed), testOpts())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID())
	}
	// Touch the older session so the newer one becomes the LRU victim.
	if _, err := m.Get(ids[0]); err != nil {
		t.Fatal(err)
	}
	s3, _, err := m.Create(testSpec(t, 3), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("live sessions = %d, want 2", m.Len())
	}
	if _, err := m.Get(ids[1]); !errors.Is(err, ErrNoSession) {
		t.Fatalf("expected LRU victim %s evicted, got err=%v", ids[1], err)
	}
	for _, id := range []string{ids[0], s3.ID()} {
		if _, err := m.Get(id); err != nil {
			t.Fatalf("session %s should be live: %v", id, err)
		}
	}
	if !strings.Contains(buf.String(), "session evicted") || !strings.Contains(buf.String(), ids[1]) {
		t.Fatalf("eviction not logged:\n%s", buf.String())
	}

	if m.Delete(s3.ID()) != true || m.Delete(s3.ID()) != false {
		t.Fatal("Delete should report liveness")
	}
}

// TestConcurrentDeltasSerialize fires commutative deltas from many
// goroutines; the session must serialize them into a final state
// identical to a sequential application.
func TestConcurrentDeltasSerialize(t *testing.T) {
	sp := testSpec(t, 4)
	w := len(sp.Policies[0].Rules[0].Pattern)
	ingress := sp.Policies[0].Ingress
	const n = 6
	mkDelta := func(i int) spec.Delta {
		pat := strings.Repeat("*", w)
		return spec.Delta{Op: spec.OpAddRule, Ingress: ingress, Rule: &spec.Rule{
			Pattern: "0" + pat[1:], Action: "drop", Priority: 9100 + i,
		}}
	}

	m := NewManager(Config{})
	s, _, err := m.Create(sp, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Delta([]spec.Delta{mkDelta(i)}, nil, nil)
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent delta %d: %v", i, err)
		}
	}
	version, pl, _ := s.Snapshot()
	if version != 1+n {
		t.Fatalf("version = %d, want %d", version, 1+n)
	}

	seq := sp.Clone()
	for i := 0; i < n; i++ {
		if err := seq.Apply(mkDelta(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := fp(pl), fp(coldSolve(t, seq, testOpts())); got != want {
		t.Fatalf("concurrent final placement differs from sequential cold solve:\n got %s\nwant %s", got, want)
	}
}
