// Package state is the daemon's stateful session layer (§IV-E brought
// online): a Manager holds live placement sessions, each owning an
// authoritative fully-explicit spec.Problem, a version counter, and
// the warm-solve caches that make small deltas cheap.
//
// Byte-identity contract: every delta answer equals a cold core.Place
// of the fully-updated instance, byte for byte. The solver is
// deterministic, so the only safe accelerations are memoizations of
// bit-identical computations — the fallback ladder is
//
//	L0 "identity": the post-delta model canonicalizes to bytes solved
//	    before in this session → return the memoized placement;
//	L1 "warm": a deterministic solve runs, but parts of it are served
//	    from the session's caches — per-policy encode artifacts
//	    (redundancy removal, dependency graphs, merge search) from the
//	    EncodeCache, and, on core.Place's decomposed path (merging
//	    off, total-rules objective), whole per-policy placement
//	    fragments from the SolutionCache, so a single-rule delta
//	    re-solves only the one subproblem it changed;
//	L2 "cold": nothing hits; everything is recomputed (and cached).
//
// Solver-level warm starts (incumbent injection, basis reuse across
// solves) are deliberately absent: with multiple optima they can
// return a different equally-optimal placement, which the diffcheck
// delta oracle would (correctly) flag as drift. The fragment cache is
// different in kind: the decomposition is part of core.Place's
// deterministic contract, so a cold solve of the updated instance
// performs the identical per-policy solves and stitches the identical
// bytes — the cache only skips re-deriving them.
package state

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"sync"

	"rulefit/internal/core"
	"rulefit/internal/obs"
	"rulefit/internal/spec"
)

// Solve paths, from cheapest to most expensive (the fallback ladder).
const (
	PathIdentity = "identity"
	PathWarm     = "warm"
	PathCold     = "cold"
)

// Errors the daemon maps to HTTP statuses.
var (
	// ErrBadDelta marks a delta rejected by validation or one that
	// produced an unsolvable instance (→ 400). The session is
	// unchanged.
	ErrBadDelta = errors.New("state: bad delta")
	// ErrNoSession marks an unknown or evicted session ID (→ 404).
	ErrNoSession = errors.New("state: no such session")
)

// Config bounds the Manager.
type Config struct {
	// MaxSessions caps live sessions; creating one past the cap
	// evicts the least-recently-used session (logged). Default 64.
	MaxSessions int
	// MemoEntries caps each session's L0 identity memo. Default 64.
	MemoEntries int
	// Logger receives eviction and lifecycle lines (default: discard).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.MemoEntries == 0 {
		c.MemoEntries = 64
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Manager owns the live sessions.
type Manager struct {
	cfg Config
	log *slog.Logger

	mu       sync.Mutex
	sessions map[string]*Session
	touch    map[string]uint64 // LRU clock per session
	clock    uint64
	seq      uint64
}

// NewManager returns an empty session manager.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	return &Manager{
		cfg:      cfg,
		log:      cfg.Logger,
		sessions: make(map[string]*Session),
		touch:    make(map[string]uint64),
	}
}

// Result is one delta (or create) answer.
type Result struct {
	// Version is the session version after this operation (1 after
	// create, monotonically increasing by one per applied delta).
	Version uint64
	// Path is the fallback-ladder level that answered: PathIdentity,
	// PathWarm, or PathCold.
	Path string
	// Placement is byte-identical to a cold core.Place of the
	// session's current instance. Read-only: shared with the session.
	Placement *core.Placement
	// CacheStats are the encode-cache counters consumed by this solve
	// alone (all zero on the identity path).
	CacheStats core.EncodeCacheStats
	// SolStats are the per-policy fragment-cache counters consumed by
	// this solve alone (all zero on the identity path and outside the
	// decomposed regime).
	SolStats core.SolutionCacheStats
}

// Session is one live placement instance. All methods are safe for
// concurrent use; deltas serialize on the session's lock.
type Session struct {
	id  string
	mgr *Manager

	mu       sync.Mutex
	version  uint64
	spec     *spec.Problem // authoritative, fully explicit
	opts     core.Options  // fixed at create (observational fields set per call)
	cache    *core.EncodeCache
	sols     *core.SolutionCache
	memo     map[string]*core.Placement // L0: canonical spec bytes → placement
	memoFIFO []string
	current  *core.Placement
}

// sessionID derives the deterministic ID for the seq-th session from
// the instance's canonical bytes (same shape as obs trace IDs).
func sessionID(seq uint64, canonical []byte) string {
	h := fnv.New64a()
	h.Write(canonical)
	return fmt.Sprintf("s-%06d-%016x", seq, h.Sum64())
}

// Create registers a session for an explicit-form instance and runs
// the initial (cold) solve. opts' observational fields (Request,
// Trace, SolverSink) apply to this first solve only; the remaining
// fields are fixed for the session's lifetime.
func (m *Manager) Create(sp *spec.Problem, opts core.Options) (*Session, *Result, error) {
	if err := sp.ExplicitOnly(); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadDelta, err)
	}
	own := sp.Clone()
	fixed := opts
	fixed.Request, fixed.Trace, fixed.SolverSink = nil, nil, nil
	fixed.Progress = nil      // live-progress cells are per-request, never per-session
	fixed.EncodeCache = nil   // the session attaches its own
	fixed.SolutionCache = nil // likewise
	s := &Session{
		mgr:   m,
		opts:  fixed,
		spec:  own,
		cache: core.NewEncodeCache(),
		sols:  core.NewSolutionCache(),
		memo:  make(map[string]*core.Placement),
	}

	m.mu.Lock()
	m.seq++
	s.id = sessionID(m.seq, own.Canonical())
	m.mu.Unlock()

	s.mu.Lock()
	res, err := s.solveLocked(own, opts.Request, opts.SolverSink)
	if err != nil {
		s.mu.Unlock()
		return nil, nil, err
	}
	s.version = 1
	res.Version = 1
	s.mu.Unlock()

	m.mu.Lock()
	m.evictLocked()
	m.clock++
	m.sessions[s.id] = s
	m.touch[s.id] = m.clock
	live := len(m.sessions)
	m.mu.Unlock()
	m.log.Info("session created", "session", s.id, "live", live)
	return s, res, nil
}

// evictLocked makes room for one more session, logging the victim.
func (m *Manager) evictLocked() {
	for len(m.sessions) >= m.cfg.MaxSessions {
		victim, oldest := "", uint64(0)
		for id, t := range m.touch {
			if victim == "" || t < oldest {
				victim, oldest = id, t
			}
		}
		delete(m.sessions, victim)
		delete(m.touch, victim)
		m.log.Info("session evicted", "session", victim, "reason", "max_sessions", "live", len(m.sessions))
	}
}

// Get returns a live session, refreshing its LRU position.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSession, id)
	}
	m.clock++
	m.touch[id] = m.clock
	return s, nil
}

// Delete removes a session; it reports whether the ID was live.
func (m *Manager) Delete(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.sessions[id]; !ok {
		return false
	}
	delete(m.sessions, id)
	delete(m.touch, id)
	m.log.Info("session deleted", "session", id, "live", len(m.sessions))
	return true
}

// Len counts live sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// ID returns the session's identifier.
func (s *Session) ID() string { return s.id }

// Version returns the current session version.
func (s *Session) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Snapshot returns the current version, placement, and a copy of the
// authoritative instance.
func (s *Session) Snapshot() (uint64, *core.Placement, *spec.Problem) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version, s.current, s.spec.Clone()
}

// CacheStats snapshots the session's cumulative encode-cache counters.
func (s *Session) CacheStats() core.EncodeCacheStats {
	return s.cache.Stats()
}

// SolutionStats snapshots the session's cumulative fragment-cache
// counters.
func (s *Session) SolutionStats() core.SolutionCacheStats {
	return s.sols.Stats()
}

// Delta applies a delta sequence atomically: every op validates and
// the updated instance solves, or the session is left untouched and
// the error wraps ErrBadDelta. req/sink scope observability to this
// call only. Concurrent calls serialize on the session lock.
func (s *Session) Delta(deltas []spec.Delta, req *obs.RequestCtx, sink obs.Sink) (*Result, error) {
	if len(deltas) == 0 {
		return nil, fmt.Errorf("%w: empty delta list", ErrBadDelta)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.spec.Clone()
	if err := next.ApplyAll(deltas); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDelta, err)
	}
	res, err := s.solveLocked(next, req, sink)
	if err != nil {
		return nil, err
	}
	s.spec = next
	s.version++
	res.Version = s.version
	return res, nil
}

// solveLocked answers for an instance via the fallback ladder and
// commits the placement as current. Callers hold s.mu.
func (s *Session) solveLocked(sp *spec.Problem, req *obs.RequestCtx, sink obs.Sink) (*Result, error) {
	key := string(sp.Canonical())
	if pl, ok := s.memo[key]; ok {
		//lint:sharedmut caller holds s.mu (see doc)
		s.current = pl
		return &Result{Path: PathIdentity, Placement: pl}, nil
	}
	prob, err := sp.Build()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDelta, err)
	}
	if err := prob.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDelta, err)
	}
	opts := s.opts
	opts.EncodeCache = s.cache
	opts.SolutionCache = s.sols
	opts.Request = req
	opts.SolverSink = sink
	before := s.cache.Stats()
	solBefore := s.sols.Stats()
	pl, err := core.Place(prob, opts)
	if err != nil {
		return nil, err
	}
	after := s.cache.Stats()
	solAfter := s.sols.Stats()
	used := core.EncodeCacheStats{
		PolicyHits:   after.PolicyHits - before.PolicyHits,
		PolicyMisses: after.PolicyMisses - before.PolicyMisses,
		MergeHits:    after.MergeHits - before.MergeHits,
		MergeMisses:  after.MergeMisses - before.MergeMisses,
	}
	solUsed := core.SolutionCacheStats{
		Hits:   solAfter.Hits - solBefore.Hits,
		Misses: solAfter.Misses - solBefore.Misses,
	}
	path := PathCold
	if used.PolicyHits > 0 || used.MergeHits > 0 || solUsed.Hits > 0 {
		path = PathWarm
	}
	if len(s.memoFIFO) >= s.mgr.cfg.MemoEntries {
		oldest := s.memoFIFO[0]
		s.memoFIFO = s.memoFIFO[1:]
		delete(s.memo, oldest)
	}
	s.memo[key] = pl
	s.memoFIFO = append(s.memoFIFO, key)
	//lint:sharedmut caller holds s.mu (see doc)
	s.current = pl
	return &Result{Path: path, Placement: pl, CacheStats: used, SolStats: solUsed}, nil
}
