//go:build !rulefitdebug

package invariant

// Enabled is false in normal builds: checks gated on it are dead code.
const Enabled = false

// Assert is a no-op in normal builds.
func Assert(cond bool, format string, args ...any) {}
