//go:build rulefitdebug

// Package invariant provides runtime sanity checks that are compiled in
// only under the rulefitdebug build tag:
//
//	go test -tags rulefitdebug ./...
//
// In normal builds every call site compiles to nothing (Enabled is a
// false constant, so gated blocks are dead code and the linker drops
// them). The checks assert structural corruption — a wrong permutation,
// a stale factorization, crossed bounds — not tight numerics, so their
// tolerances are deliberately generous.
package invariant

import "fmt"

// Enabled reports whether invariant checks are compiled in. Gate any
// non-trivial check computation on it so the work disappears from
// release builds:
//
//	if invariant.Enabled {
//	    res := expensiveResidual(...)
//	    invariant.Assert(res < tol, "residual %g", res)
//	}
const Enabled = true

// Assert panics with a formatted message when cond is false.
func Assert(cond bool, format string, args ...any) {
	if !cond {
		panic("invariant violated: " + fmt.Sprintf(format, args...))
	}
}
