package invariant

import "testing"

func TestAssertTrueNeverPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Assert(true) panicked: %v", r)
		}
	}()
	Assert(true, "should not fire")
}

func TestAssertFalse(t *testing.T) {
	defer func() {
		r := recover()
		if Enabled && r == nil {
			t.Fatal("Assert(false) did not panic with checks enabled")
		}
		if !Enabled && r != nil {
			t.Fatalf("Assert(false) panicked in a release build: %v", r)
		}
	}()
	Assert(false, "value %d out of range", 42)
}
