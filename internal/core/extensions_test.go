package core

import (
	"testing"
	"time"

	"rulefit/internal/match"
	"rulefit/internal/policy"
	"rulefit/internal/routing"
	"rulefit/internal/topology"
)

// linChain builds a 4-switch chain problem with one drop rule.
func linChain(t *testing.T, capacity int, rules []policy.Rule) *Problem {
	t.Helper()
	topo, err := topology.Linear(4, capacity)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := routing.BuildRouting(topo, []routing.PortPair{{In: 0, Out: 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return &Problem{Network: topo, Routing: rt, Policies: []*policy.Policy{policy.MustNew(0, rules)}}
}

func TestMonitorPushesDropDownstream(t *testing.T) {
	// A monitor for 1*-traffic sits at switch 2; the drop on 11** must
	// land at switch 2 or 3 even though the traffic objective would
	// prefer switch 0.
	prob := linChain(t, 10, []policy.Rule{mk("11******", policy.Drop, 1)})
	mon := Monitor{Switch: 2, Match: match.MustParseTernary("1*******")}
	pl := place(t, prob, Options{Objective: ObjTraffic, Monitors: []Monitor{mon}})
	if pl.Status != StatusOptimal {
		t.Fatalf("status = %v", pl.Status)
	}
	sws := pl.Assign[0][0]
	if len(sws) != 1 || sws[0] < 2 {
		t.Errorf("drop placed at %v, want switch >= 2 (after the monitor)", sws)
	}
	verifyPlacement(t, prob, pl)
}

func TestMonitorDisjointMatchUnconstrained(t *testing.T) {
	// A monitor for 0*-traffic does not constrain a 11** drop.
	prob := linChain(t, 10, []policy.Rule{mk("11******", policy.Drop, 1)})
	mon := Monitor{Switch: 3, Match: match.MustParseTernary("0*******")}
	pl := place(t, prob, Options{Objective: ObjTraffic, Monitors: []Monitor{mon}})
	if pl.Status != StatusOptimal {
		t.Fatalf("status = %v", pl.Status)
	}
	if sws := pl.Assign[0][0]; len(sws) != 1 || sws[0] != 0 {
		t.Errorf("drop placed at %v, want ingress switch 0", sws)
	}
}

func TestMonitorAtLastSwitchInfeasible(t *testing.T) {
	// Monitor at the final switch whose capacity is zero: the drop has
	// nowhere monitor-compatible to go.
	prob := linChain(t, 10, []policy.Rule{mk("11******", policy.Drop, 1)})
	if err := prob.Network.SetSwitchCapacity(3, 0); err != nil {
		t.Fatal(err)
	}
	mon := Monitor{Switch: 3, Match: match.MustParseTernary("1*******")}
	pl := place(t, prob, Options{Monitors: []Monitor{mon}})
	if pl.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible (only allowed switch has no capacity)", pl.Status)
	}

	// With no capacity anywhere downstream of the monitor, the encoding
	// itself detects the empty cover.
	prob2 := linChain(t, 10, []policy.Rule{mk("11******", policy.Drop, 1)})
	// Monitor at a switch not on the path at all leaves placement free.
	mon2 := Monitor{Switch: 99, Match: match.MustParseTernary("1*******")}
	pl2 := place(t, prob2, Options{Monitors: []Monitor{mon2}})
	if pl2.Status != StatusOptimal {
		t.Fatalf("off-path monitor should not constrain: %v", pl2.Status)
	}
}

func TestMonitorEncodingInfeasible(t *testing.T) {
	// Monitor at the egress switch of a single-switch path: no switch is
	// at-or-after it except itself... shrink to a 1-switch path where
	// the monitor sits nowhere reachable: use a monitor at the last
	// switch and slice the only path so the drop's only candidates are
	// upstream. Simplest: monitor at switch 0's successor on a 1-switch
	// path is impossible, so instead verify the empty-cover branch via a
	// monitor covering the whole path except nothing.
	topo, err := topology.Linear(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	rt := routing.NewRouting()
	rt.Add(routing.Path{Ingress: 0, Egress: 1, Switches: []topology.SwitchID{0}})
	prob := &Problem{Network: topo, Routing: rt, Policies: []*policy.Policy{
		policy.MustNew(0, []policy.Rule{mk("11******", policy.Drop, 1)}),
	}}
	// The monitor is at switch 0 itself: position 0, nothing upstream,
	// so placement at 0 is allowed.
	mon := Monitor{Switch: 0, Match: match.MustParseTernary("1*******")}
	pl := place(t, prob, Options{Monitors: []Monitor{mon}})
	if pl.Status != StatusOptimal {
		t.Fatalf("monitor at the drop switch itself must be allowed: %v", pl.Status)
	}
}

func TestWeightedSwitchesAvoidsExpensiveSwitch(t *testing.T) {
	// All else equal, the optimizer avoids the switch with cost 100.
	prob := linChain(t, 10, []policy.Rule{mk("11******", policy.Drop, 1)})
	cost := map[topology.SwitchID]int64{0: 100, 1: 1, 2: 5, 3: 5}
	pl := place(t, prob, Options{Objective: ObjWeightedSwitches, SwitchCost: cost})
	if pl.Status != StatusOptimal {
		t.Fatalf("status = %v", pl.Status)
	}
	if sws := pl.Assign[0][0]; len(sws) != 1 || sws[0] != 1 {
		t.Errorf("drop placed at %v, want cheapest switch 1", sws)
	}
	verifyPlacement(t, prob, pl)
}

func TestWeightedSwitchesDefaultCostOne(t *testing.T) {
	// Without a cost map the objective degenerates to total rules.
	prob := fig3Problem(t, 10)
	a := place(t, prob, Options{Objective: ObjWeightedSwitches})
	b := place(t, prob, Options{Objective: ObjTotalRules})
	if a.TotalRules != b.TotalRules {
		t.Errorf("weighted (no costs) %d != total-rules %d", a.TotalRules, b.TotalRules)
	}
}

func TestMinMaxLoadBalances(t *testing.T) {
	// Two drops, chain of 4 switches with capacity 2: total-rules is
	// indifferent between stacking both at one switch or spreading;
	// min-max load must spread them (load 1/2 each instead of 1).
	prob := linChain(t, 2, []policy.Rule{
		mk("11******", policy.Drop, 2),
		mk("00******", policy.Drop, 1),
	})
	pl := place(t, prob, Options{Objective: ObjMinMaxLoad})
	if pl.Status != StatusOptimal {
		t.Fatalf("status = %v", pl.Status)
	}
	if pl.MaxLoad > 0.5+1e-6 {
		t.Errorf("MaxLoad = %g, want <= 0.5 (one rule per switch)", pl.MaxLoad)
	}
	// The two drops must sit on different switches.
	a, b := pl.Assign[0][0], pl.Assign[0][1]
	if len(a) == 1 && len(b) == 1 && a[0] == b[0] {
		t.Errorf("both drops stacked at switch %d", a[0])
	}
	verifyPlacement(t, prob, pl)
}

func TestMinMaxLoadRejectsSATBackend(t *testing.T) {
	prob := fig3Problem(t, 10)
	if _, err := Place(prob, Options{Objective: ObjMinMaxLoad, Backend: BackendSAT, TimeLimit: time.Minute}); err == nil {
		t.Error("expected error: min-max-load needs the ILP backend")
	}
}

func TestObjectiveStringsForExtensions(t *testing.T) {
	if ObjWeightedSwitches.String() != "weighted-switches" {
		t.Error(ObjWeightedSwitches.String())
	}
	if ObjMinMaxLoad.String() != "min-max-load" {
		t.Error(ObjMinMaxLoad.String())
	}
}

func TestMonitorWithMergingAndSAT(t *testing.T) {
	// Monitors compose with the SAT backend and merging: drop placement
	// respects the monitor in both backends.
	prob := linChain(t, 10, []policy.Rule{mk("1*******", policy.Drop, 1)})
	mon := Monitor{Switch: 1, Match: match.MustParseTernary("1*******")}
	for _, backend := range []Backend{BackendILP, BackendSAT} {
		pl := place(t, prob, Options{Backend: backend, Monitors: []Monitor{mon}, Merging: true})
		if pl.Status != StatusOptimal {
			t.Fatalf("backend %v: %v", backend, pl.Status)
		}
		for _, sw := range pl.Assign[0][0] {
			if sw < 1 {
				t.Errorf("backend %v: drop at %d, upstream of the monitor", backend, sw)
			}
		}
	}
}
