package core

import (
	"fmt"
	"sort"

	"rulefit/internal/dataplane"
	"rulefit/internal/topology"
)

// pendEntry is a table entry awaiting priority assignment: the dataplane
// entry plus, for every member policy, the rule index it represents
// there (one policy for plain entries, several for merged entries).
type pendEntry struct {
	entry   dataplane.Entry
	ruleIdx map[int]int // policy index -> rule index
}

// BuildTables compiles a placement into per-switch TCAM tables with
// ingress tags (§IV-A5). Within one switch, entries are ordered so that
// every member policy's priority order is respected for overlapping
// rules with differing actions; rules from different policies are
// otherwise free to interleave because their tag spaces are disjoint.
// Merged rules become a single entry tagged with all member ingresses.
func (pl *Placement) BuildTables(prob *Problem) (*dataplane.Network, error) {
	if pl.Status != StatusOptimal && pl.Status != StatusFeasible {
		return nil, fmt.Errorf("core: cannot build tables from a %v placement", pl.Status)
	}
	net := dataplane.NewNetwork()

	// mergedCover[(pi, ri)][sw] marks rules emitted as merged entries.
	mergedCover := make(map[[2]int]map[topology.SwitchID]bool)
	for g, sws := range pl.MergedAt {
		for _, m := range pl.Groups[g].Members {
			key := [2]int{m.Policy, m.Rule}
			if mergedCover[key] == nil {
				mergedCover[key] = make(map[topology.SwitchID]bool)
			}
			for _, sw := range sws {
				mergedCover[key][sw] = true
			}
		}
	}

	bySwitch := make(map[topology.SwitchID][]pendEntry)
	for pi, pol := range pl.Policies {
		in := topology.PortID(pol.Ingress)
		for ri, sws := range pl.Assign[pi] {
			for _, sw := range sws {
				if mergedCover[[2]int{pi, ri}][sw] {
					continue // emitted as a merged entry below
				}
				r := pol.Rules[ri]
				bySwitch[sw] = append(bySwitch[sw], pendEntry{
					entry: dataplane.Entry{
						Tags:   map[topology.PortID]bool{in: true},
						Match:  r.Match,
						Action: r.Action,
					},
					ruleIdx: map[int]int{pi: ri},
				})
			}
		}
	}
	for g, sws := range pl.MergedAt {
		grp := pl.Groups[g]
		for _, sw := range sws {
			tags := make(map[topology.PortID]bool, len(grp.Members))
			ruleIdx := make(map[int]int, len(grp.Members))
			var e dataplane.Entry
			for i, m := range grp.Members {
				tags[topology.PortID(pl.Policies[m.Policy].Ingress)] = true
				ruleIdx[m.Policy] = m.Rule
				if i == 0 {
					e.Match = pl.Policies[m.Policy].Rules[m.Rule].Match
					e.Action = grp.Action
				}
			}
			e.Tags = tags
			e.Merged = true
			bySwitch[sw] = append(bySwitch[sw], pendEntry{entry: e, ruleIdx: ruleIdx})
		}
	}

	for _, sw := range sortedSwitchKeys(bySwitch) {
		pends := bySwitch[sw]
		order, err := orderEntries(pends)
		if err != nil {
			return nil, fmt.Errorf("core: switch %d: %w", sw, err)
		}
		table := net.Table(sw)
		prio := len(order)
		for _, idx := range order {
			e := pends[idx].entry
			e.Priority = prio
			prio--
			table.Add(e)
		}
	}
	return net, nil
}

// orderEntries topologically sorts the entries of one switch: entry a
// must precede entry b when some policy contains rules of both, the
// matches overlap, the actions differ, and a's rule has the higher
// priority (lower index) in that policy. Circular requirements indicate
// a merging bug (BreakCycles should have prevented them).
func orderEntries(pends []pendEntry) ([]int, error) {
	n := len(pends)
	succ := make([][]int, n)
	indeg := make([]int, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b || pends[a].entry.Action == pends[b].entry.Action {
				continue
			}
			if !pends[a].entry.Match.Overlaps(pends[b].entry.Match) {
				continue
			}
			// a -> b iff in some shared policy a's rule is above b's.
			mustPrecede := false
			for pi, ra := range pends[a].ruleIdx {
				if rb, ok := pends[b].ruleIdx[pi]; ok && ra < rb {
					mustPrecede = true
					break
				}
			}
			if mustPrecede {
				succ[a] = append(succ[a], b)
				indeg[b]++
			}
		}
	}
	// Kahn's algorithm with deterministic tie-breaking: among ready
	// entries prefer the one whose minimum rule index is smallest, so
	// tables read naturally in policy order.
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	rank := func(i int) int {
		best := 1 << 30
		for _, ri := range pends[i].ruleIdx {
			if ri < best {
				best = ri
			}
		}
		return best
	}
	var order []int
	for len(ready) > 0 {
		sort.Slice(ready, func(x, y int) bool {
			rx, ry := rank(ready[x]), rank(ready[y])
			if rx != ry {
				return rx < ry
			}
			return ready[x] < ready[y]
		})
		cur := ready[0]
		ready = ready[1:]
		order = append(order, cur)
		for _, next := range succ[cur] {
			indeg[next]--
			if indeg[next] == 0 {
				ready = append(ready, next)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("circular priority requirement among %d entries", n)
	}
	return order, nil
}
