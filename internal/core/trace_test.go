package core

import (
	"reflect"
	"testing"
	"time"

	"rulefit/internal/obs"
)

// TestPlaceTracingDoesNotPerturb is the acceptance gate for the
// observability layer at the pipeline level: with a solver sink and a
// span trace attached, the placement (assignments, merges, objective,
// and the solver-effort stats) must be byte-identical to an untraced
// run, across worker counts.
func TestPlaceTracingDoesNotPerturb(t *testing.T) {
	for _, fx := range determinismFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			for _, w := range []int{1, 2, 8} {
				plain, err := Place(fx.build(t), Options{
					Merging: true, TimeLimit: 60 * time.Second, Workers: w,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				var rec obs.Recorder
				tr := obs.NewTrace()
				traced, err := Place(fx.build(t), Options{
					Merging: true, TimeLimit: 60 * time.Second, Workers: w,
					Trace: tr, SolverSink: &rec,
				})
				if err != nil {
					t.Fatalf("workers=%d traced: %v", w, err)
				}
				// SolveTime is wall clock; everything else must match.
				plain.Stats.SolveTime = 0
				traced.Stats.SolveTime = 0
				if !reflect.DeepEqual(plain, traced) {
					t.Fatalf("workers=%d: traced placement differs from untraced:\n%+v\nvs\n%+v",
						w, plain, traced)
				}
				if len(rec.Events()) == 0 {
					t.Fatalf("workers=%d: sink saw no events", w)
				}
				if len(tr.Roots()) != 1 || tr.Roots()[0].Name() != "place" {
					t.Fatalf("workers=%d: trace roots = %v", w, tr.Roots())
				}
			}
		})
	}
}

// TestPlaceTraceEventsDeterministic asserts the event stream surfaced
// through core is identical (modulo timing) across worker counts.
func TestPlaceTraceEventsDeterministic(t *testing.T) {
	events := func(workers int) []obs.Event {
		var rec obs.Recorder
		_, err := Place(determinismProblem(t), Options{
			Merging: true, TimeLimit: 60 * time.Second, Workers: workers, SolverSink: &rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		evs := rec.Events()
		for i := range evs {
			evs[i] = evs[i].Normalize()
		}
		return evs
	}
	seq := events(1)
	par := events(4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("workers=1 vs workers=4 event streams differ (%d vs %d events)", len(seq), len(par))
	}
}

// TestPlaceStatsCarrySolverBreakdown asserts the solver's per-outcome
// counters and proof state survive the core Stats copy.
func TestPlaceStatsCarrySolverBreakdown(t *testing.T) {
	pl, err := Place(determinismProblem(t), Options{Merging: true, TimeLimit: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	st := pl.Stats
	sum := st.Branched + st.PrunedBound + st.PrunedInfeasible + st.IntegralLeaves + st.LostSubtrees
	if sum != st.BnBNodes {
		t.Fatalf("outcome counters sum to %d, BnBNodes = %d (%+v)", sum, st.BnBNodes, st)
	}
	if pl.Status == StatusOptimal {
		//lint:exactfloat proven optimality must surface the exact 0 gap
		if st.Gap != 0 || st.BestBound != pl.Objective {
			t.Fatalf("optimal placement: Gap = %v, BestBound = %v, Objective = %v",
				st.Gap, st.BestBound, pl.Objective)
		}
		if st.StopReason.String() != "none" {
			t.Fatalf("optimal placement: StopReason = %v", st.StopReason)
		}
	}
	if st.Incumbents < 1 {
		t.Fatalf("Incumbents = %d, want >= 1", st.Incumbents)
	}
}
