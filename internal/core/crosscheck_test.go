package core

import (
	"testing"
	"time"

	"rulefit/internal/ilp"
	"rulefit/internal/policy"
	"rulefit/internal/routing"
	"rulefit/internal/topology"
)

// TestBackendFeasibilityCrossCheck pits the two exact backends against
// each other on a mid-size instance: the SAT
// backend finds a valid placement, so the ILP (under full pricing) must
// not return Infeasible.
func TestBackendFeasibilityCrossCheck(t *testing.T) {
	topo, err := topology.FatTree(4, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := routing.SpreadPairs(topo, 8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := routing.BuildRouting(topo, pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	var pols []*policy.Policy
	for _, in := range rt.Ingresses() {
		pols = append(pols, policy.Generate(int(in), policy.GenConfig{NumRules: 20, Seed: 1}))
	}
	prob := &Problem{Network: topo, Routing: rt, Policies: pols}
	enc, err := buildEncoding(prob, Options{}.withDefaults(), nil)
	if err != nil {
		t.Fatal(err)
	}

	// SAT witness.
	satPl, err := solveSAT(enc, Options{Backend: BackendSAT, SatisfyOnly: true, TimeLimit: 2 * time.Minute}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if satPl.Status != StatusFeasible {
		t.Fatalf("SAT status %v; instance assumed feasible", satPl.Status)
	}

	// ILP with full pricing, root LP only (node cap 1).
	m := ilp.NewModel()
	ids := make([]int, len(enc.vars))
	for id := range enc.vars {
		ids[id] = m.AddBinary("v", 1)
	}
	for _, imp := range enc.imps {
		m.AddConstraint([]ilp.Term{{Var: ids[imp[0]], Coef: 1}, {Var: ids[imp[1]], Coef: -1}}, ilp.LE, 0, "dep")
	}
	for _, cover := range enc.covers {
		terms := make([]ilp.Term, len(cover))
		for i, v := range cover {
			terms[i] = ilp.Term{Var: ids[v], Coef: 1}
		}
		m.AddConstraint(terms, ilp.GE, 1, "path")
	}
	for _, row := range enc.capRows {
		terms := make([]ilp.Term, 0, len(row.ruleVars))
		for _, v := range row.ruleVars {
			terms = append(terms, ilp.Term{Var: ids[v], Coef: 1})
		}
		m.AddConstraint(terms, ilp.LE, float64(row.cap), "cap")
	}
	sol, err := ilp.Solve(m, ilp.Options{TimeLimit: 30 * time.Second, NodeLimit: 1, FullPricing: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("full-pricing root: status=%v iters=%d", sol.Status, sol.Stats.SimplexIters)
	if sol.Status == ilp.Infeasible {
		t.Fatal("FALSE INFEASIBLE: full-pricing root LP declared infeasible against a SAT witness")
	}
}
