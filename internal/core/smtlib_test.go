package core

import (
	"strings"
	"testing"

	"rulefit/internal/match"
	"rulefit/internal/policy"
	"rulefit/internal/routing"
	"rulefit/internal/topology"
)

func TestWriteSMTLIBBasic(t *testing.T) {
	prob := fig3Problem(t, 4)
	var sb strings.Builder
	if err := WriteSMTLIB(&sb, prob, Options{}, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"(set-logic QF_LIA)",
		"(declare-const v0 Bool)",
		"(assert (=> v",  // Eq. 6
		"(assert (or v",  // Eq. 7
		"(assert (<= (+", // Eq. 3
		"(check-sat)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in script:\n%s", want, out[:min(len(out), 600)])
		}
	}
	if strings.Contains(out, "(minimize") {
		t.Error("minimize emitted without optimize flag")
	}
	// Counts: one declaration per variable, one implication per edge.
	if got := strings.Count(out, "(declare-const"); got == 0 {
		t.Error("no variable declarations")
	}
}

func TestWriteSMTLIBOptimize(t *testing.T) {
	prob := fig3Problem(t, 4)
	var sb strings.Builder
	if err := WriteSMTLIB(&sb, prob, Options{Objective: ObjTraffic}, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(minimize (+ 0 (ite v") {
		t.Errorf("minimize objective missing:\n%s", sb.String())
	}
}

func TestWriteSMTLIBMerging(t *testing.T) {
	// Two policies sharing a drop: the merged equivalence and the
	// capacity refund term must appear.
	topo := topology.NewNetwork()
	if err := topo.AddSwitch(topology.Switch{ID: 1, Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []topology.ExternalPort{
		{ID: 1, Switch: 1, Ingress: true},
		{ID: 2, Switch: 1, Ingress: true},
		{ID: 3, Switch: 1, Egress: true},
	} {
		if err := topo.AddPort(p); err != nil {
			t.Fatal(err)
		}
	}
	rt := newSingleSwitchRouting()
	shared := policy.Rule{Match: match.MustParseTernary("11******"), Action: policy.Drop, Priority: 1}
	prob := &Problem{Network: topo, Routing: rt, Policies: []*policy.Policy{
		policy.MustNew(1, []policy.Rule{shared}),
		policy.MustNew(2, []policy.Rule{shared}),
	}}
	var sb strings.Builder
	if err := WriteSMTLIB(&sb, prob, Options{Merging: true}, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "(assert (= v") || !strings.Contains(out, "(and v") {
		t.Errorf("merged equivalence missing:\n%s", out)
	}
	if !strings.Contains(out, "(ite v2 (- 1) 0)") {
		t.Errorf("capacity refund term missing:\n%s", out)
	}
}

func TestWriteSMTLIBInfeasibleEncoding(t *testing.T) {
	// Monitor that forbids every candidate switch: the script must be a
	// trivial (assert false).
	topo, err := topology.Linear(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	rt := newLinear2Routing()
	prob := &Problem{Network: topo, Routing: rt, Policies: []*policy.Policy{
		policy.MustNew(0, []policy.Rule{mk("11******", policy.Drop, 1)}),
	}}
	if err := topo.SetSwitchCapacity(1, 0); err != nil {
		t.Fatal(err)
	}
	mon := Monitor{Switch: 1, Match: match.MustParseTernary("1*******")}
	var sb strings.Builder
	if err := WriteSMTLIB(&sb, prob, Options{Monitors: []Monitor{mon}}, false); err != nil {
		t.Fatal(err)
	}
	// Switch 0 is upstream of the monitor so the drop's only candidate
	// is switch 1 — still a variable; capacity 0 is a numeric matter the
	// solver decides, so this script is NOT encoding-infeasible. Build a
	// genuinely empty cover instead: monitor at the last switch with the
	// rule relevant only to a path that ends before it cannot happen on
	// a chain, so just assert the happy path here.
	if !strings.Contains(sb.String(), "(check-sat)") {
		t.Error("script incomplete")
	}
}

// newSingleSwitchRouting routes two ingresses across the one-switch net.
func newSingleSwitchRouting() *routing.Routing {
	rt := routing.NewRouting()
	rt.Add(routing.Path{Ingress: 1, Egress: 3, Switches: []topology.SwitchID{1}})
	rt.Add(routing.Path{Ingress: 2, Egress: 3, Switches: []topology.SwitchID{1}})
	return rt
}

// newLinear2Routing routes ingress 0 over the 2-switch chain.
func newLinear2Routing() *routing.Routing {
	rt := routing.NewRouting()
	rt.Add(routing.Path{Ingress: 0, Egress: 1, Switches: []topology.SwitchID{0, 1}})
	return rt
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
