package core

import (
	"strings"
	"sync"

	"rulefit/internal/deps"
	"rulefit/internal/policy"
)

// EncodeCache memoizes the pure per-policy stages of buildEncoding —
// redundancy removal and dependency-graph construction — plus the
// cross-policy mergeable-rule search, keyed by canonical policy
// content. It exists for the stateful delta path (internal/state): a
// single-rule delta leaves every other policy byte-identical, so its
// encode artifacts are served from cache instead of being recomputed.
//
// Correctness contract: a cache hit must be indistinguishable from a
// fresh computation. Keys are full canonical renderings (not hashes),
// so collisions are impossible; cached reduced policies are cloned on
// both store and serve so no caller can alias cache-owned memory;
// dependency graphs and merge groups are shared read-only (their
// consumers never mutate them — BreakCycles copies member slices).
// TestEncodeCacheByteIdentity asserts placements are byte-identical
// with and without a cache attached.
type EncodeCache struct {
	mu       sync.Mutex
	policies map[string]policyArtifacts
	polOrder []string
	merges   map[string][]deps.MergeGroup
	mrgOrder []string

	policyHits, policyMisses int64
	mergeHits, mergeMisses   int64
}

// policyArtifacts is one cached per-policy encode result.
type policyArtifacts struct {
	reduced *policy.Policy
	graph   *deps.Graph
}

// Cache bounds: a session's working set is one entry per live policy
// (plus churn); the caps only matter under adversarial policy churn,
// where the oldest entries are evicted first (deterministically).
const (
	maxPolicyEntries = 512
	maxMergeEntries  = 64
)

// NewEncodeCache returns an empty cache. One cache must only be
// shared by solves that tolerate each other's content: keying is by
// policy bytes and the RemoveRedundant flag, so differing objectives,
// routings, or capacities may share a cache safely (those inputs do
// not enter the cached stages).
func NewEncodeCache() *EncodeCache {
	return &EncodeCache{
		policies: make(map[string]policyArtifacts),
		merges:   make(map[string][]deps.MergeGroup),
	}
}

// EncodeCacheStats is a point-in-time snapshot of the hit counters.
type EncodeCacheStats struct {
	PolicyHits   int64 `json:"policy_hits"`
	PolicyMisses int64 `json:"policy_misses"`
	MergeHits    int64 `json:"merge_hits"`
	MergeMisses  int64 `json:"merge_misses"`
}

// Stats snapshots the cumulative hit/miss counters.
func (c *EncodeCache) Stats() EncodeCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return EncodeCacheStats{
		PolicyHits:   c.policyHits,
		PolicyMisses: c.policyMisses,
		MergeHits:    c.mergeHits,
		MergeMisses:  c.mergeMisses,
	}
}

// policyKey renders a policy to its canonical cache key. Ingress is
// part of the key: the served artifact carries the ingress, so two
// otherwise identical policies on different ingresses must not share
// an entry. The rendering includes width (via the match strings),
// priorities, actions, and the default action, so it is a faithful
// fingerprint of everything RemoveRedundant and BuildGraph read.
func policyKey(pol *policy.Policy, removeRedundant bool) string {
	var sb strings.Builder
	if removeRedundant {
		sb.WriteString("rr1\x00")
	} else {
		sb.WriteString("rr0\x00")
	}
	sb.WriteString(pol.String())
	return sb.String()
}

// lookupPolicy serves the cached (reduced policy, dependency graph)
// pair for a policy, or reports a miss. The reduced policy is cloned:
// the encoding and the Placement that escapes from it own their copy.
func (c *EncodeCache) lookupPolicy(pol *policy.Policy, removeRedundant bool) (*policy.Policy, *deps.Graph, bool) {
	key := policyKey(pol, removeRedundant)
	c.mu.Lock()
	defer c.mu.Unlock()
	art, ok := c.policies[key]
	if !ok {
		c.policyMisses++
		return nil, nil, false
	}
	c.policyHits++
	return art.reduced.Clone(), art.graph, true
}

// storePolicy records freshly computed artifacts for a policy. The
// reduced policy is cloned into the cache so the caller's copy (which
// escapes into the Placement) cannot alias cache-owned memory.
func (c *EncodeCache) storePolicy(pol *policy.Policy, removeRedundant bool, reduced *policy.Policy, g *deps.Graph) {
	key := policyKey(pol, removeRedundant)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.policies[key]; ok {
		return
	}
	if len(c.polOrder) >= maxPolicyEntries {
		oldest := c.polOrder[0]
		c.polOrder = c.polOrder[1:]
		delete(c.policies, oldest)
	}
	c.policies[key] = policyArtifacts{reduced: reduced.Clone(), graph: g}
	c.polOrder = append(c.polOrder, key)
}

// mergeKey renders the full (already reduced) policy list to the
// canonical key of its mergeable-group search.
func mergeKey(policies []*policy.Policy) string {
	var sb strings.Builder
	for _, pol := range policies {
		sb.WriteString(pol.String())
		sb.WriteByte(0)
	}
	return sb.String()
}

// lookupMerge serves the cached FindMergeable result for a policy
// list. The groups are shared read-only: every consumer copies before
// mutating (buildMerging filters into fresh groups, BreakCycles
// copies member slices).
func (c *EncodeCache) lookupMerge(policies []*policy.Policy) ([]deps.MergeGroup, bool) {
	key := mergeKey(policies)
	c.mu.Lock()
	defer c.mu.Unlock()
	groups, ok := c.merges[key]
	if !ok {
		c.mergeMisses++
		return nil, false
	}
	c.mergeHits++
	return groups, true
}

// storeMerge records a freshly computed FindMergeable result.
func (c *EncodeCache) storeMerge(policies []*policy.Policy, groups []deps.MergeGroup) {
	key := mergeKey(policies)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.merges[key]; ok {
		return
	}
	if len(c.mrgOrder) >= maxMergeEntries {
		oldest := c.mrgOrder[0]
		c.mrgOrder = c.mrgOrder[1:]
		delete(c.merges, oldest)
	}
	c.merges[key] = groups
	c.mrgOrder = append(c.mrgOrder, key)
}
