package core

import (
	"fmt"
	"sort"

	"rulefit/internal/policy"
	"rulefit/internal/routing"
	"rulefit/internal/topology"
)

// Incremental deployment (§IV-E): instead of re-solving the whole
// network on every change, small updates use a greedy heuristic and
// medium updates solve a sub-problem over spare capacity, leaving all
// existing placements untouched.

// SpareCapacities returns each switch's remaining rule budget after a
// placement: C_k minus the TCAM slots the placement uses there.
func SpareCapacities(prob *Problem, pl *Placement) map[topology.SwitchID]int {
	spare := make(map[topology.SwitchID]int, prob.Network.NumSwitches())
	for _, sw := range prob.Network.Switches() {
		spare[sw.ID] = sw.Capacity
	}
	for pi := range pl.Assign {
		for ri := range pl.Assign[pi] {
			for _, sw := range pl.Assign[pi][ri] {
				spare[sw]--
			}
		}
	}
	for g, sws := range pl.MergedAt {
		for _, sw := range sws {
			spare[sw] += pl.membersAt(g, sw) - 1
		}
	}
	return spare
}

// networkWithCapacities clones the topology with per-switch capacities
// replaced by the given map (missing switches keep their capacity).
func networkWithCapacities(topo *topology.Network, caps map[topology.SwitchID]int) *topology.Network {
	c := topo.Clone()
	for id, v := range caps {
		if v < 0 {
			v = 0
		}
		//lint:errcheck caps keys come from this topology, so unknown-switch cannot happen
		_ = c.SetSwitchCapacity(id, v)
	}
	return c
}

// IncrementalAdd places new ingress policies into the spare capacity of
// an existing placement (ingress policy installation, §IV-E). The
// existing placement is not modified; the returned placement covers only
// the new policies and can be compiled and merged into the deployed
// tables. Routing for the new ingresses must be present in newRouting.
func IncrementalAdd(prob *Problem, existing *Placement, newPolicies []*policy.Policy, newRouting *routing.Routing, opts Options) (*Placement, error) {
	spare := SpareCapacities(prob, existing)
	sub := &Problem{
		Network:  networkWithCapacities(prob.Network, spare),
		Routing:  newRouting,
		Policies: newPolicies,
	}
	// Default to the paper's fast mode: find a satisfying placement.
	if !opts.SatisfyOnly && opts.Objective == 0 {
		opts.SatisfyOnly = true
	}
	return Place(sub, opts)
}

// IncrementalReroute re-places a single policy after its routing changed
// (routing policy change, §IV-E). All other policies' placements are
// fixed; the target policy's rules are lifted (restoring its slots) and
// re-placed against the new paths.
func IncrementalReroute(prob *Problem, existing *Placement, ingress int, newPaths *routing.PathSet, opts Options) (*Placement, error) {
	target := -1
	for pi, pol := range existing.Policies {
		if pol.Ingress == ingress {
			target = pi
			break
		}
	}
	if target < 0 {
		return nil, fmt.Errorf("core: no existing policy for ingress %d", ingress)
	}
	spare := SpareCapacities(prob, existing)
	// Restore the target policy's own slots.
	for ri := range existing.Assign[target] {
		for _, sw := range existing.Assign[target][ri] {
			spare[sw]++
		}
	}
	for g, sws := range existing.MergedAt {
		for _, m := range existing.Groups[g].Members {
			if m.Policy != target {
				continue
			}
			// The merged slot stays (other members still use it), but
			// this member contributed no extra slot; nothing to restore.
			_ = sws
		}
	}
	rt := routing.NewRouting()
	rt.Sets[topology.PortID(ingress)] = newPaths
	sub := &Problem{
		Network:  networkWithCapacities(prob.Network, spare),
		Routing:  rt,
		Policies: []*policy.Policy{existing.Policies[target]},
	}
	if !opts.SatisfyOnly && opts.Objective == 0 {
		opts.SatisfyOnly = true
	}
	return Place(sub, opts)
}

// GreedyPlace is the small-update heuristic (and the "greedy
// ingress-first" baseline): each DROP rule, with its dependent PERMIT
// rules, is placed on the earliest switch of each path with enough spare
// capacity. It returns a placement or StatusInfeasible; it never proves
// infeasibility of the underlying problem (the exact solvers do that).
func GreedyPlace(prob *Problem, opts Options) (*Placement, error) {
	opts = opts.withDefaults()
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	enc, err := buildEncoding(prob, opts, nil)
	if err != nil {
		return nil, err
	}
	spare := make(map[topology.SwitchID]int, prob.Network.NumSwitches())
	for _, sw := range prob.Network.Switches() {
		spare[sw.ID] = sw.Capacity
	}

	pl := &Placement{Policies: enc.policies, Groups: nil}
	pl.Assign = make([][][]topology.SwitchID, len(enc.policies))
	for pi, pol := range enc.policies {
		pl.Assign[pi] = make([][]topology.SwitchID, len(pol.Rules))
	}
	placedAt := make(map[[2]int]map[topology.SwitchID]bool) // (pi,ri) -> switches
	has := func(pi, ri int, sw topology.SwitchID) bool {
		m := placedAt[[2]int{pi, ri}]
		return m != nil && m[sw]
	}
	put := func(pi, ri int, sw topology.SwitchID) {
		key := [2]int{pi, ri}
		if placedAt[key] == nil {
			placedAt[key] = make(map[topology.SwitchID]bool)
		}
		placedAt[key][sw] = true
		pl.Assign[pi][ri] = append(pl.Assign[pi][ri], sw)
		spare[sw]--
		pl.TotalRules++
	}

	for pi, pol := range enc.policies {
		ps := prob.Routing.Sets[topology.PortID(pol.Ingress)]
		g := enc.graphs[pi]
		for _, w := range g.Drops() {
			for _, path := range ps.Paths {
				if !enc.pathRelevant(pol.Rules[w], path) {
					continue
				}
				// Already satisfied on this path?
				done := false
				for _, sw := range path.Switches {
					if has(pi, w, sw) {
						done = true
						break
					}
				}
				if done {
					continue
				}
				placed := false
				for _, sw := range path.Switches {
					need := 1
					var missingPermits []int
					for _, u := range g.Dependents(w) {
						if !has(pi, u, sw) {
							need++
							missingPermits = append(missingPermits, u)
						}
					}
					if spare[sw] < need {
						continue
					}
					put(pi, w, sw)
					for _, u := range missingPermits {
						put(pi, u, sw)
					}
					placed = true
					break
				}
				if !placed {
					pl.Status = StatusInfeasible
					return pl, nil
				}
			}
		}
	}
	pl.Status = StatusFeasible
	pl.Objective = float64(pl.TotalRules)
	sortAssign(pl)
	return pl, nil
}

// sortAssign normalizes switch lists for deterministic output.
func sortAssign(pl *Placement) {
	for pi := range pl.Assign {
		for ri := range pl.Assign[pi] {
			sws := pl.Assign[pi][ri]
			sort.Slice(sws, func(a, b int) bool { return sws[a] < sws[b] })
		}
	}
}
