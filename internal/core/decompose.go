package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"rulefit/internal/obs"
	"rulefit/internal/policy"
	"rulefit/internal/topology"
)

// Deterministic per-policy decomposition. With merging off and the
// total-rules objective, the joint MILP couples policies only through
// the switch capacity rows: variables, dependency constraints (Eq. 1),
// and coverage constraints (Eq. 2) all live inside a single policy.
// Solving each policy alone against the full capacities yields a valid
// lower bound — the joint optimum restricted to policy i is feasible
// for i's subproblem, so sum_i opt_i <= opt_joint — and if the stitched
// per-policy optima together respect every switch capacity, the stitch
// attains that bound and is provably optimal for the joint instance.
//
// The decomposition is part of Place's deterministic contract, not an
// opportunistic shortcut: whether it applies (decomposable) and whether
// the stitch is accepted (capacity check) are pure functions of the
// (problem, options) pair, so cold solves and the stateful delta path
// produce byte-identical placements. That determinism is what lets the
// session layer (internal/state) cache per-policy fragments in a
// SolutionCache: a single-rule delta re-solves one subproblem and
// serves the rest from cache, with the exact bytes a from-scratch
// decomposed solve would produce — solver-effort stats included.
//
// Note on time limits: each subproblem inherits the full
// Options.TimeLimit (a shared wall-clock budget would make the
// cache-hit pattern observable in the answer, breaking byte identity),
// so a decomposed solve can take up to len(Policies) times the limit
// in the worst case. Any subproblem that fails to prove optimality
// falls back to the joint solve.

// decomposable reports whether the instance/options pair qualifies for
// per-policy decomposition. Merging couples policies through shared
// merged variables, ObjMinMaxLoad through the z variable, and other
// objectives are excluded conservatively; monitors are excluded to
// keep the encode-proven-infeasible path on the joint solver.
func decomposable(prob *Problem, opts Options) bool {
	return opts.Backend == BackendILP &&
		opts.Objective == ObjTotalRules &&
		!opts.Merging &&
		!opts.SatisfyOnly &&
		len(opts.Monitors) == 0 &&
		len(prob.Policies) >= 2
}

// placeDecomposed tries the per-policy decomposition. ok=false means
// the caller must fall back to the joint solve (a subproblem did not
// prove optimality, a sub-encode failed, or the stitched optima
// violate a shared capacity); the decision is deterministic.
func placeDecomposed(prob *Problem, opts Options, span *obs.Span) (pl *Placement, ok bool, err error) {
	dSp := span.Child("decompose")
	defer dSp.End()
	start := time.Now()
	cache := opts.SolutionCache
	frags := make([]*Placement, len(prob.Policies))
	for i, pol := range prob.Policies {
		var key string
		if cache != nil {
			key = subSolutionKey(prob, pol, opts)
			if frag, hit := cache.lookup(key); hit {
				frags[i] = frag
				continue
			}
		}
		frag, err := solveSub(prob, pol, opts, dSp)
		if err != nil {
			// The joint encode reproduces the condition with the
			// canonical (whole-instance) error message.
			return nil, false, nil
		}
		if frag.Status != StatusOptimal {
			return nil, false, nil
		}
		if cache != nil {
			cache.store(key, frag)
		}
		frags[i] = frag
	}

	// Stitch acceptance: the independent optima must jointly respect
	// every switch capacity (no merging, so each slot counts 1).
	usage := make(map[topology.SwitchID]int)
	for _, frag := range frags {
		for ri := range frag.Assign[0] {
			for _, sw := range frag.Assign[0][ri] {
				usage[sw]++
			}
		}
	}
	for _, sw := range prob.Network.Switches() {
		if usage[sw.ID] > sw.Capacity {
			dSp.SetCount("stitch_rejected", 1)
			return nil, false, nil
		}
	}

	pl = stitch(frags, opts)
	pl.Stats.SolveTime = time.Since(start)
	dSp.SetCount("fragments", int64(len(frags)))
	return pl, true, nil
}

// solveSub solves one policy's subproblem: the full network and
// routing, one policy. Per-policy encode artifacts still flow through
// opts.EncodeCache; the observational solver sink is inherited.
func solveSub(prob *Problem, pol *policy.Policy, opts Options, span *obs.Span) (*Placement, error) {
	sub := &Problem{Network: prob.Network, Routing: prob.Routing, Policies: []*policy.Policy{pol}}
	subSp := span.Child("sub_solve")
	defer subSp.End()
	enc, err := buildEncoding(sub, opts, subSp.Child("encode"))
	if err != nil {
		return nil, err
	}
	pl, err := solveILP(enc, opts, subSp)
	if err != nil {
		return nil, err
	}
	pl.Stats.Backend = opts.Backend
	pl.Stats.Variables = len(enc.vars)
	pl.Stats.Constraints = enc.numConstraints()
	return pl, nil
}

// stitch concatenates per-policy fragments into the joint placement.
// Every field the wire projection (daemon.EncodePlacement) carries is
// a deterministic aggregate of fragment state, so a cache-served
// fragment is indistinguishable from a fresh sub-solve.
func stitch(frags []*Placement, opts Options) *Placement {
	pl := &Placement{
		Status:   StatusOptimal,
		Policies: make([]*policy.Policy, len(frags)),
		Assign:   make([][][]topology.SwitchID, len(frags)),
		MergedAt: make([][]topology.SwitchID, 0),
	}
	for i, frag := range frags {
		pl.Policies[i] = frag.Policies[0]
		pl.Assign[i] = frag.Assign[0]
		pl.TotalRules += frag.TotalRules
		pl.Objective += frag.Objective
		s, f := &pl.Stats, frag.Stats
		s.Variables += f.Variables
		s.Constraints += f.Constraints
		s.SimplexIters += f.SimplexIters
		s.BnBNodes += f.BnBNodes
		s.LURefactors += f.LURefactors
		s.Branched += f.Branched
		s.PrunedBound += f.PrunedBound
		s.PrunedInfeasible += f.PrunedInfeasible
		s.IntegralLeaves += f.IntegralLeaves
		s.LostSubtrees += f.LostSubtrees
		s.PrunedStale += f.PrunedStale
		s.Incumbents += f.Incumbents
		s.CutsAdded += f.CutsAdded
		s.CutRoundsRoot += f.CutRoundsRoot
		s.StrongBranchEvals += f.StrongBranchEvals
		s.WarmStartReuses += f.WarmStartReuses
		s.BestBound += f.BestBound
		if f.Workers > s.Workers {
			s.Workers = f.Workers
		}
		// Per-fragment trees are independent; report the hardest one.
		if f.LastIncumbentAtNode > s.LastIncumbentAtNode {
			s.LastIncumbentAtNode = f.LastIncumbentAtNode
		}
		if f.RootGap > s.RootGap {
			s.RootGap = f.RootGap
		}
	}
	pl.Stats.Backend = opts.Backend
	pl.Stats.Gap = 0
	return pl
}

// subSolutionKey renders everything a subproblem's solve can observe:
// the solve options, the policy (content + ingress + default), its
// path set (switch sequences and traffic slices), and the capacities
// of every switch on those paths. Switches off the policy's paths
// cannot host its variables, so they are not part of the key. Full
// renderings (not hashes) make collisions impossible.
func subSolutionKey(prob *Problem, pol *policy.Policy, opts Options) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "o=%d b=%d rr=%t ps=%t dp=%t dc=%t w=%d tl=%d\x00",
		opts.Objective, opts.Backend, opts.RemoveRedundant, opts.PathSlicing,
		opts.DisablePresolve, opts.DisableCuts, opts.Workers, int64(opts.TimeLimit))
	sb.WriteString(pol.String())
	sb.WriteByte(0)
	ps := prob.Routing.Sets[topology.PortID(pol.Ingress)]
	for _, p := range ps.Paths {
		fmt.Fprintf(&sb, "path %d->%d %v", p.Ingress, p.Egress, p.Switches)
		if p.HasTraffic {
			fmt.Fprintf(&sb, " traffic=%s", p.Traffic)
		}
		sb.WriteByte('\n')
	}
	sb.WriteByte(0)
	for _, id := range ps.Switches() {
		if sw, ok := prob.Network.Switch(id); ok {
			fmt.Fprintf(&sb, "s%d=%d ", id, sw.Capacity)
		}
	}
	return sb.String()
}

// SolutionCache memoizes per-policy placement fragments produced by
// the decomposed solve path, keyed by a full canonical rendering of
// the subproblem. The stateful session layer (internal/state) attaches
// one per session so a small delta re-solves only the subproblems it
// actually changed. A cache hit is indistinguishable from a fresh
// sub-solve: fragments are stored and served as deep copies, and they
// carry the deterministic solver-effort stats of the original solve.
type SolutionCache struct {
	mu      sync.Mutex
	entries map[string]*Placement
	order   []string

	hits, misses int64
}

// maxSolutionEntries bounds a cache to roughly one entry per live
// policy plus churn; the oldest entries are evicted first.
const maxSolutionEntries = 512

// NewSolutionCache returns an empty fragment cache.
func NewSolutionCache() *SolutionCache {
	return &SolutionCache{entries: make(map[string]*Placement)}
}

// SolutionCacheStats is a point-in-time snapshot of the hit counters.
type SolutionCacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// Stats snapshots the cumulative hit/miss counters.
func (c *SolutionCache) Stats() SolutionCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return SolutionCacheStats{Hits: c.hits, Misses: c.misses}
}

// lookup serves a deep copy of the cached fragment, or reports a miss.
func (c *SolutionCache) lookup(key string) (*Placement, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	frag, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	return cloneFragment(frag), true
}

// store records a freshly solved fragment (deep-copied, so the served
// placement cannot alias cache-owned memory).
func (c *SolutionCache) store(key string, frag *Placement) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	if len(c.order) >= maxSolutionEntries {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = cloneFragment(frag)
	c.order = append(c.order, key)
}

// cloneFragment deep-copies a single-policy fragment placement. The
// wall-clock SolveTime is zeroed: fragment times are an artifact of
// when the fragment was first solved, and the stitcher re-stamps the
// whole decomposed solve's wall time.
func cloneFragment(frag *Placement) *Placement {
	out := &Placement{
		Status:     frag.Status,
		TotalRules: frag.TotalRules,
		Objective:  frag.Objective,
		Policies:   []*policy.Policy{frag.Policies[0].Clone()},
		Assign:     make([][][]topology.SwitchID, 1),
		MergedAt:   make([][]topology.SwitchID, 0),
		Stats:      frag.Stats,
	}
	out.Stats.SolveTime = 0
	out.Assign[0] = make([][]topology.SwitchID, len(frag.Assign[0]))
	for ri, sws := range frag.Assign[0] {
		out.Assign[0][ri] = append([]topology.SwitchID(nil), sws...)
	}
	return out
}
