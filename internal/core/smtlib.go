package core

import (
	"fmt"
	"io"
	"strings"
)

// WriteSMTLIB renders the placement problem's satisfiability encoding
// (Eqs. 6–8 plus the capacity constraints of Eq. 3) as an SMT-LIB 2
// script in QF_LIA, suitable for Z3, cvc5, or any SMT-LIB solver — the
// paper's §IV-D names SMT solvers as one target for this formulation.
//
// Variables are Booleans named v<i> (one per placement decision; a
// trailing comment documents the rule/switch each stands for). Capacity
// sums use (ite v 1 0) terms, the standard Boolean-cardinality encoding
// in linear arithmetic. When optimize is true a (minimize ...) objective
// for the configured criterion is emitted (a Z3/OptiMathSAT extension;
// plain SMT-LIB solvers can ignore it and check satisfiability only).
func WriteSMTLIB(w io.Writer, prob *Problem, opts Options, optimize bool) error {
	opts = opts.withDefaults()
	if err := prob.Validate(); err != nil {
		return err
	}
	enc, err := buildEncoding(prob, opts, nil)
	if err != nil {
		return err
	}
	var sb strings.Builder
	sb.WriteString("; rule placement satisfiability encoding (DSN'14 Eqs. 3, 6-8)\n")
	sb.WriteString("(set-logic QF_LIA)\n")
	if enc.infeasibleReason != "" {
		fmt.Fprintf(&sb, "; encoding-level infeasibility: %s\n(assert false)\n(check-sat)\n", enc.infeasibleReason)
		_, err := io.WriteString(w, sb.String())
		return err
	}

	for id, v := range enc.vars {
		switch v.kind {
		case varRule:
			pol := enc.policies[v.pol]
			fmt.Fprintf(&sb, "(declare-const v%d Bool) ; ingress %d rule %d @ switch %d\n",
				id, pol.Ingress, v.rule, v.sw)
		case varMerged:
			fmt.Fprintf(&sb, "(declare-const v%d Bool) ; merge group %d @ switch %d\n",
				id, v.group, v.sw)
		}
	}

	// Eq. 6: implications.
	for _, imp := range enc.imps {
		fmt.Fprintf(&sb, "(assert (=> v%d v%d))\n", imp[0], imp[1])
	}
	// Eq. 7: per-path coverage.
	for _, cover := range enc.covers {
		sb.WriteString("(assert (or")
		for _, v := range cover {
			fmt.Fprintf(&sb, " v%d", v)
		}
		sb.WriteString("))\n")
	}
	// Eq. 8: merged rule equivalence.
	for _, mc := range enc.merges {
		fmt.Fprintf(&sb, "(assert (= v%d (and", mc.mv)
		for _, v := range mc.members {
			fmt.Fprintf(&sb, " v%d", v)
		}
		sb.WriteString(")))\n")
	}
	// Eq. 3: capacities (merged installations refund members-1 slots).
	for _, row := range enc.capRows {
		sb.WriteString("(assert (<= (+ 0")
		for _, v := range row.ruleVars {
			fmt.Fprintf(&sb, " (ite v%d 1 0)", v)
		}
		for _, mt := range row.merged {
			fmt.Fprintf(&sb, " (ite v%d (- %d) 0)", mt.mv, mt.savings)
		}
		fmt.Fprintf(&sb, ") %d))\n", row.cap)
	}

	if optimize {
		weights := enc.objectiveWeights()
		sb.WriteString("(minimize (+ 0")
		for id, wt := range weights {
			if wt == 0 {
				continue
			}
			if wt < 0 {
				fmt.Fprintf(&sb, " (ite v%d (- %d) 0)", id, -wt)
			} else {
				fmt.Fprintf(&sb, " (ite v%d %d 0)", id, wt)
			}
		}
		sb.WriteString("))\n")
	}
	sb.WriteString("(check-sat)\n(get-model)\n")
	_, err = io.WriteString(w, sb.String())
	return err
}
