package core

import (
	"testing"
	"time"

	"rulefit/internal/policy"
	"rulefit/internal/routing"
	"rulefit/internal/topology"
)

// benchProblem builds a mid-size fat-tree workload once per benchmark.
func benchProblem(b *testing.B, capacity int) *Problem {
	b.Helper()
	topo, err := topology.FatTree(4, capacity, 2)
	if err != nil {
		b.Fatal(err)
	}
	pairs, err := routing.SpreadPairs(topo, 6, 6, 1)
	if err != nil {
		b.Fatal(err)
	}
	rt, err := routing.BuildRouting(topo, pairs, 2)
	if err != nil {
		b.Fatal(err)
	}
	var pols []*policy.Policy
	for _, in := range rt.Ingresses() {
		pols = append(pols, policy.Generate(int(in), policy.GenConfig{NumRules: 12, Seed: 5}))
	}
	return &Problem{Network: topo, Routing: rt, Policies: pols}
}

func BenchmarkEncodingBuild(b *testing.B) {
	prob := benchProblem(b, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := buildEncoding(prob, Options{}.withDefaults(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlaceILP(b *testing.B) {
	prob := benchProblem(b, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := Place(prob, Options{TimeLimit: 2 * time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		if pl.Status != StatusOptimal {
			b.Fatalf("status %v", pl.Status)
		}
	}
}

func BenchmarkPlaceSATSatisfy(b *testing.B) {
	prob := benchProblem(b, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := Place(prob, Options{Backend: BackendSAT, SatisfyOnly: true, TimeLimit: 2 * time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		if pl.Status != StatusFeasible {
			b.Fatalf("status %v", pl.Status)
		}
	}
}

func BenchmarkGreedyPlace(b *testing.B) {
	prob := benchProblem(b, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GreedyPlace(prob, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildTables(b *testing.B) {
	prob := benchProblem(b, 50)
	pl, err := Place(prob, Options{TimeLimit: 2 * time.Minute})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.BuildTables(prob); err != nil {
			b.Fatal(err)
		}
	}
}
