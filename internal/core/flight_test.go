package core

import (
	"reflect"
	"testing"
	"time"

	"rulefit/internal/obs"
)

// TestPlaceFlightRecorderDoesNotPerturb is the pipeline-level
// introspection invariant: running the full placement with a flight
// recorder, a live progress cell, pprof labels, and a trace ID attached
// produces the identical placement — assignments, merges, objective,
// and search effort — as a bare run, for Workers ∈ {1, 2, 8}.
func TestPlaceFlightRecorderDoesNotPerturb(t *testing.T) {
	for _, fx := range determinismFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			for _, w := range []int{1, 2, 8} {
				bare, err := Place(fx.build(t), Options{
					Merging: true, TimeLimit: 60 * time.Second, Workers: w,
				})
				if err != nil {
					t.Fatalf("workers=%d bare: %v", w, err)
				}
				rec := obs.NewFlightRecorder(obs.FlightOpts{Size: 512})
				var prog obs.Progress
				inst, err := Place(fx.build(t), Options{
					Merging: true, TimeLimit: 60 * time.Second, Workers: w,
					SolverSink: rec, Progress: &prog, ProfileLabels: true,
					Request: obs.NewRequestCtx("req-000051"),
				})
				if err != nil {
					t.Fatalf("workers=%d instrumented: %v", w, err)
				}
				if inst.Status != bare.Status || inst.TotalRules != bare.TotalRules || inst.Objective != bare.Objective {
					t.Fatalf("workers=%d: summary differs with recorder: (%v, %d rules, obj %g) vs (%v, %d rules, obj %g)",
						w, inst.Status, inst.TotalRules, inst.Objective, bare.Status, bare.TotalRules, bare.Objective)
				}
				if !reflect.DeepEqual(inst.Assign, bare.Assign) {
					t.Errorf("workers=%d: rule assignments differ with recorder attached", w)
				}
				if !reflect.DeepEqual(inst.MergedAt, bare.MergedAt) {
					t.Errorf("workers=%d: merge placements differ with recorder attached", w)
				}
				if inst.Stats.BnBNodes != bare.Stats.BnBNodes {
					t.Errorf("workers=%d: node count %d with recorder, %d without", w, inst.Stats.BnBNodes, bare.Stats.BnBNodes)
				}
				d := rec.Dump()
				if d.Seen == 0 {
					t.Errorf("workers=%d: flight recorder saw no solver events", w)
				}
				s, ok := prog.Snapshot()
				if !ok || !s.Done {
					t.Errorf("workers=%d: no terminal progress snapshot: %+v", w, s)
				}
			}
		})
	}
}

// TestPlaceSearchProfileStats checks the new Stats fields survive the
// core passthrough: RootGap is computed for ILP solves and sentinel for
// the SAT backend.
func TestPlaceSearchProfileStats(t *testing.T) {
	pl, err := Place(determinismProblem(t), Options{Merging: true, TimeLimit: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Stats.RootGap < 0 {
		t.Errorf("ILP placement RootGap = %g, want >= 0", pl.Stats.RootGap)
	}
	if pl.Stats.LastIncumbentAtNode < 0 || pl.Stats.LastIncumbentAtNode > pl.Stats.BnBNodes {
		t.Errorf("LastIncumbentAtNode = %d outside [0, %d]", pl.Stats.LastIncumbentAtNode, pl.Stats.BnBNodes)
	}

	sat, err := Place(determinismProblem(t), Options{
		Backend: BackendSAT, SatisfyOnly: true, TimeLimit: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sat.Stats.RootGap != -1 {
		t.Errorf("SAT placement RootGap = %g, want -1 sentinel (no LP relaxation)", sat.Stats.RootGap)
	}
}
