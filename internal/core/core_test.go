package core

import (
	"math/rand"
	"testing"
	"time"

	"rulefit/internal/dataplane"
	"rulefit/internal/match"
	"rulefit/internal/policy"
	"rulefit/internal/routing"
	"rulefit/internal/topology"
	"rulefit/internal/verify"
)

func mk(pattern string, a policy.Action, prio int) policy.Rule {
	return policy.Rule{Match: match.MustParseTernary(pattern), Action: a, Priority: prio}
}

// fig3Problem builds the paper's running example (Fig. 3): ingress l1 at
// s1 with routes s1-s2-s3 and s1-s2-s4-s5, and a 3-rule policy.
func fig3Problem(t *testing.T, capacity int) *Problem {
	t.Helper()
	topo := topology.Fig3(capacity)
	rt, err := routing.BuildRouting(topo, []routing.PortPair{{In: 1, Out: 2}, {In: 1, Out: 3}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pol := policy.MustNew(1, []policy.Rule{
		mk("1100****", policy.Permit, 3),
		mk("11******", policy.Drop, 2),
		mk("00******", policy.Drop, 1),
	})
	return &Problem{Network: topo, Routing: rt, Policies: []*policy.Policy{pol}}
}

func place(t *testing.T, prob *Problem, opts Options) *Placement {
	t.Helper()
	opts.TimeLimit = 30 * time.Second
	pl, err := Place(prob, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// verifyPlacement compiles tables and checks semantics exhaustively
// (policies in these tests use narrow headers) plus capacities.
func verifyPlacement(t *testing.T, prob *Problem, pl *Placement) {
	t.Helper()
	net, err := pl.BuildTables(prob)
	if err != nil {
		t.Fatal(err)
	}
	if v := verify.Exhaustive(net, prob.Routing, pl.Policies); len(v) > 0 {
		t.Fatalf("semantic violations: %v", v)
	}
	if v := verify.Capacities(net, prob.Network); len(v) > 0 {
		t.Fatalf("capacity violations: %v", v)
	}
}

func TestPlaceFig3ILP(t *testing.T) {
	prob := fig3Problem(t, 10)
	pl := place(t, prob, Options{Backend: BackendILP})
	if pl.Status != StatusOptimal {
		t.Fatalf("status = %v", pl.Status)
	}
	verifyPlacement(t, prob, pl)
	// Plenty of capacity: everything fits at the shared prefix (s1 or
	// s2), so the optimum is 3 rules total (no duplication).
	if pl.TotalRules != 3 {
		t.Errorf("TotalRules = %d, want 3", pl.TotalRules)
	}
}

func TestPlaceFig3SAT(t *testing.T) {
	prob := fig3Problem(t, 10)
	pl := place(t, prob, Options{Backend: BackendSAT})
	if pl.Status != StatusOptimal {
		t.Fatalf("status = %v", pl.Status)
	}
	verifyPlacement(t, prob, pl)
	if pl.TotalRules != 3 {
		t.Errorf("TotalRules = %d, want 3", pl.TotalRules)
	}
}

func TestPlaceFig3TightCapacityForcesSplit(t *testing.T) {
	// Capacity 1 per switch: the permit+drop pair cannot co-locate, so
	// the instance is infeasible (the drop 11** requires its permit on
	// the same switch).
	prob := fig3Problem(t, 1)
	pl := place(t, prob, Options{})
	if pl.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", pl.Status)
	}
	// Capacity 2: permit+drop pair fits on one switch, the second drop
	// goes elsewhere; still feasible.
	prob2 := fig3Problem(t, 2)
	pl2 := place(t, prob2, Options{})
	if pl2.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", pl2.Status)
	}
	verifyPlacement(t, prob2, pl2)
}

func TestPlaceReplicationAcrossBranches(t *testing.T) {
	// Force rules off the shared prefix: s1 and s2 get capacity 0, so
	// every drop must replicate onto both branches (paper's r_{1,3}
	// illustration).
	prob := fig3Problem(t, 10)
	prob.Network.SetSwitchCapacity(1, 0)
	prob.Network.SetSwitchCapacity(2, 0)
	pl := place(t, prob, Options{})
	if pl.Status != StatusOptimal {
		t.Fatalf("status = %v", pl.Status)
	}
	verifyPlacement(t, prob, pl)
	// Each of the 2 drops (plus 1 dependent permit) now appears on both
	// branches: 3 rules per branch = 6.
	if pl.TotalRules != 6 {
		t.Errorf("TotalRules = %d, want 6 (full duplication)", pl.TotalRules)
	}
}

func TestPlaceStatusStringAndStats(t *testing.T) {
	prob := fig3Problem(t, 10)
	pl := place(t, prob, Options{})
	if pl.Stats.Variables == 0 || pl.Stats.Constraints == 0 {
		t.Errorf("stats not populated: %+v", pl.Stats)
	}
	if pl.Stats.Backend != BackendILP {
		t.Errorf("backend = %v", pl.Stats.Backend)
	}
	for _, s := range []Status{StatusOptimal, StatusFeasible, StatusInfeasible, StatusLimit} {
		if s.String() == "" {
			t.Error("empty status string")
		}
	}
	if BackendILP.String() != "ilp" || BackendSAT.String() != "sat" {
		t.Error("backend strings wrong")
	}
	if ObjTotalRules.String() != "total-rules" || ObjTraffic.String() != "traffic" {
		t.Error("objective strings wrong")
	}
}

func TestPlaceValidatesProblem(t *testing.T) {
	if _, err := Place(&Problem{}, Options{}); err == nil {
		t.Error("nil fields should fail validation")
	}
	topo := topology.Fig3(10)
	rt := routing.NewRouting()
	pol := policy.MustNew(1, []policy.Rule{mk("1*", policy.Drop, 1)})
	prob := &Problem{Network: topo, Routing: rt, Policies: []*policy.Policy{pol}}
	if _, err := Place(prob, Options{}); err == nil {
		t.Error("policy without routing should fail validation")
	}
}

func TestObjectiveTrafficPushesDropsUpstream(t *testing.T) {
	// Linear chain: with the traffic objective, drops sit at the
	// ingress switch; with slack capacity everywhere the rule objective
	// is indifferent but traffic prefers hop 0.
	topo, err := topology.Linear(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := routing.BuildRouting(topo, []routing.PortPair{{In: 0, Out: 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pol := policy.MustNew(0, []policy.Rule{mk("11******", policy.Drop, 1)})
	prob := &Problem{Network: topo, Routing: rt, Policies: []*policy.Policy{pol}}
	pl := place(t, prob, Options{Objective: ObjTraffic})
	if pl.Status != StatusOptimal {
		t.Fatalf("status = %v", pl.Status)
	}
	sws := pl.Assign[0][0]
	if len(sws) != 1 || sws[0] != 0 {
		t.Errorf("drop placed at %v, want ingress switch 0", sws)
	}
	verifyPlacement(t, prob, pl)
}

func TestObjectiveTrafficSAT(t *testing.T) {
	topo, err := topology.Linear(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := routing.BuildRouting(topo, []routing.PortPair{{In: 0, Out: 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pol := policy.MustNew(0, []policy.Rule{mk("1*******", policy.Drop, 1)})
	prob := &Problem{Network: topo, Routing: rt, Policies: []*policy.Policy{pol}}
	pl := place(t, prob, Options{Objective: ObjTraffic, Backend: BackendSAT})
	if pl.Status != StatusOptimal {
		t.Fatalf("status = %v", pl.Status)
	}
	if sws := pl.Assign[0][0]; len(sws) != 1 || sws[0] != 0 {
		t.Errorf("drop placed at %v, want switch 0", sws)
	}
}

func TestMergingSavesSlots(t *testing.T) {
	// Two ingresses share a switch; identical blacklist drop in both
	// policies merges into one slot there.
	topo := topology.NewNetwork()
	for i := 1; i <= 3; i++ {
		if err := topo.AddSwitch(topology.Switch{ID: topology.SwitchID(i), Capacity: 10}); err != nil {
			t.Fatal(err)
		}
	}
	if err := topo.AddLink(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink(2, 3); err != nil {
		t.Fatal(err)
	}
	for _, p := range []topology.ExternalPort{
		{ID: 1, Switch: 1, Ingress: true},
		{ID: 2, Switch: 2, Ingress: true},
		{ID: 3, Switch: 3, Egress: true},
	} {
		if err := topo.AddPort(p); err != nil {
			t.Fatal(err)
		}
	}
	rt, err := routing.BuildRouting(topo, []routing.PortPair{{In: 1, Out: 3}, {In: 2, Out: 3}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	shared := mk("1010****", policy.Drop, 1)
	p1 := policy.MustNew(1, []policy.Rule{shared})
	p2 := policy.MustNew(2, []policy.Rule{shared})
	prob := &Problem{Network: topo, Routing: rt, Policies: []*policy.Policy{p1, p2}}

	noMerge := place(t, prob, Options{})
	withMerge := place(t, prob, Options{Merging: true})
	if noMerge.Status != StatusOptimal || withMerge.Status != StatusOptimal {
		t.Fatalf("statuses: %v, %v", noMerge.Status, withMerge.Status)
	}
	if noMerge.TotalRules != 2 {
		t.Errorf("unmerged total = %d, want 2", noMerge.TotalRules)
	}
	if withMerge.TotalRules != 1 {
		t.Errorf("merged total = %d, want 1 (shared slot at s3)", withMerge.TotalRules)
	}
	verifyPlacement(t, prob, withMerge)

	// SAT backend agrees.
	withMergeSAT := place(t, prob, Options{Merging: true, Backend: BackendSAT})
	if withMergeSAT.TotalRules != 1 {
		t.Errorf("SAT merged total = %d, want 1", withMergeSAT.TotalRules)
	}
	verifyPlacement(t, prob, withMergeSAT)
}

func TestMergingMakesInfeasibleFeasible(t *testing.T) {
	// One shared switch with capacity 1 and two policies with the same
	// drop: infeasible unmerged, feasible merged (Table II's effect).
	topo := topology.NewNetwork()
	if err := topo.AddSwitch(topology.Switch{ID: 1, Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []topology.ExternalPort{
		{ID: 1, Switch: 1, Ingress: true},
		{ID: 2, Switch: 1, Ingress: true},
		{ID: 3, Switch: 1, Egress: true},
	} {
		if err := topo.AddPort(p); err != nil {
			t.Fatal(err)
		}
	}
	rt := routing.NewRouting()
	rt.Add(routing.Path{Ingress: 1, Egress: 3, Switches: []topology.SwitchID{1}})
	rt.Add(routing.Path{Ingress: 2, Egress: 3, Switches: []topology.SwitchID{1}})
	shared := mk("11******", policy.Drop, 1)
	prob := &Problem{Network: topo, Routing: rt, Policies: []*policy.Policy{
		policy.MustNew(1, []policy.Rule{shared}),
		policy.MustNew(2, []policy.Rule{shared}),
	}}
	noMerge := place(t, prob, Options{})
	if noMerge.Status != StatusInfeasible {
		t.Fatalf("unmerged status = %v, want infeasible", noMerge.Status)
	}
	withMerge := place(t, prob, Options{Merging: true})
	if withMerge.Status != StatusOptimal {
		t.Fatalf("merged status = %v, want optimal", withMerge.Status)
	}
	if withMerge.TotalRules != 1 {
		t.Errorf("merged total = %d", withMerge.TotalRules)
	}
	verifyPlacement(t, prob, withMerge)
}

func TestPathSlicingReducesVariables(t *testing.T) {
	prob := fig3Problem(t, 10)
	routing.AssignTrafficSlices(prob.Routing)
	// Rewrite the policy to destination-specific rules that each only
	// apply to one egress's traffic slice.
	ip2, plen2 := routing.EgressPrefix(2)
	ip3, plen3 := routing.EgressPrefix(3)
	r1 := policy.Rule{Match: match.DstPrefixTernary(ip2, plen2), Action: policy.Drop, Priority: 2}
	r2 := policy.Rule{Match: match.DstPrefixTernary(ip3, plen3), Action: policy.Drop, Priority: 1}
	prob.Policies = []*policy.Policy{policy.MustNew(1, []policy.Rule{r1, r2})}

	full := place(t, prob, Options{})
	sliced := place(t, prob, Options{PathSlicing: true})
	if sliced.Stats.Variables >= full.Stats.Variables {
		t.Errorf("slicing did not reduce variables: %d vs %d", sliced.Stats.Variables, full.Stats.Variables)
	}
	if sliced.Status != StatusOptimal {
		t.Fatalf("status = %v", sliced.Status)
	}
	// Sliced placement still preserves semantics (verified on the
	// 104-bit header via sampling).
	net, err := sliced.BuildTables(prob)
	if err != nil {
		t.Fatal(err)
	}
	if v := verify.Semantics(net, prob.Routing, sliced.Policies, verify.Config{Seed: 3}); len(v) > 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestRemoveRedundantOption(t *testing.T) {
	prob := fig3Problem(t, 10)
	// Append a rule fully shadowed by the drop above it.
	pol := prob.Policies[0]
	rules := append([]policy.Rule{}, pol.Rules...)
	rules = append(rules, mk("1111****", policy.Drop, 0))
	prob.Policies = []*policy.Policy{policy.MustNew(1, rules)}
	pl := place(t, prob, Options{RemoveRedundant: true})
	if pl.Status != StatusOptimal {
		t.Fatalf("status = %v", pl.Status)
	}
	if len(pl.Policies[0].Rules) >= len(rules) {
		t.Errorf("redundancy removal did not shrink the policy: %d rules", len(pl.Policies[0].Rules))
	}
	verifyPlacement(t, prob, pl)
}

func TestSatisfyOnlyModes(t *testing.T) {
	prob := fig3Problem(t, 10)
	for _, backend := range []Backend{BackendILP, BackendSAT} {
		pl := place(t, prob, Options{Backend: backend, SatisfyOnly: true})
		if pl.Status != StatusOptimal && pl.Status != StatusFeasible {
			t.Fatalf("backend %v: status = %v", backend, pl.Status)
		}
		verifyPlacement(t, prob, pl)
	}
}

func TestGreedyPlaceFig3(t *testing.T) {
	prob := fig3Problem(t, 10)
	pl, err := GreedyPlace(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Status != StatusFeasible {
		t.Fatalf("status = %v", pl.Status)
	}
	verifyPlacement(t, prob, pl)
	// Greedy with slack capacity places everything at the ingress: 3.
	if pl.TotalRules != 3 {
		t.Errorf("greedy total = %d, want 3", pl.TotalRules)
	}
}

func TestGreedyPlaceInfeasible(t *testing.T) {
	prob := fig3Problem(t, 1)
	pl, err := GreedyPlace(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", pl.Status)
	}
}

func TestReplicateEverywhereBaseline(t *testing.T) {
	prob := fig3Problem(t, 1000)
	pl, err := ReplicateEverywhere(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	verifyPlacement(t, prob, pl)
	// 2 paths x 3 placed rules = 6 (all three rules participate).
	if pl.TotalRules != 6 {
		t.Errorf("baseline total = %d, want 6", pl.TotalRules)
	}
	opt := place(t, prob, Options{})
	if opt.TotalRules >= pl.TotalRules {
		t.Errorf("optimal (%d) should beat replication (%d)", opt.TotalRules, pl.TotalRules)
	}
	if got := PXRBound(prob); got != 6 {
		t.Errorf("PXRBound = %d, want 6", got)
	}
}

func TestIncrementalAdd(t *testing.T) {
	prob := fig3Problem(t, 5)
	pl := place(t, prob, Options{})
	if pl.Status != StatusOptimal {
		t.Fatal(pl.Status)
	}
	spare := SpareCapacities(prob, pl)
	total := 0
	for _, v := range spare {
		total += v
	}
	if total != 5*5-pl.TotalRules {
		t.Errorf("spare total = %d, want %d", total, 25-pl.TotalRules)
	}

	// New ingress at s4 (add a port first), with one drop rule.
	if err := prob.Network.AddPort(topology.ExternalPort{ID: 9, Switch: 4, Ingress: true}); err != nil {
		t.Fatal(err)
	}
	newRt := routing.NewRouting()
	newRt.Add(routing.Path{Ingress: 9, Egress: 3, Switches: []topology.SwitchID{4, 5}})
	newPol := policy.MustNew(9, []policy.Rule{mk("01******", policy.Drop, 1)})
	inc, err := IncrementalAdd(prob, pl, []*policy.Policy{newPol}, newRt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Status != StatusOptimal && inc.Status != StatusFeasible {
		t.Fatalf("incremental status = %v", inc.Status)
	}

	// Combined deployment preserves both policies' semantics.
	baseNet, err := pl.BuildTables(prob)
	if err != nil {
		t.Fatal(err)
	}
	incProb := &Problem{Network: prob.Network, Routing: newRt, Policies: []*policy.Policy{newPol}}
	incNet, err := inc.BuildTables(incProb)
	if err != nil {
		t.Fatal(err)
	}
	baseNet.Merge(incNet)
	if v := verify.Exhaustive(baseNet, prob.Routing, pl.Policies); len(v) > 0 {
		t.Fatalf("old policies broken: %v", v)
	}
	if v := verify.Exhaustive(baseNet, newRt, []*policy.Policy{newPol}); len(v) > 0 {
		t.Fatalf("new policy broken: %v", v)
	}
	if v := verify.Capacities(baseNet, prob.Network); len(v) > 0 {
		t.Fatalf("capacity violations after merge: %v", v)
	}
}

func TestIncrementalAddInfeasibleWhenFull(t *testing.T) {
	prob := fig3Problem(t, 3)
	pl := place(t, prob, Options{})
	if pl.Status != StatusOptimal {
		t.Fatal(pl.Status)
	}
	// Consume everything: a policy needing more slots than remain on its
	// single path.
	if err := prob.Network.AddPort(topology.ExternalPort{ID: 9, Switch: 4, Ingress: true}); err != nil {
		t.Fatal(err)
	}
	newRt := routing.NewRouting()
	newRt.Add(routing.Path{Ingress: 9, Egress: 3, Switches: []topology.SwitchID{4}})
	var rules []policy.Rule
	for i := 0; i < 10; i++ {
		tn := match.NewTernary(8).SetField(0, 4, uint64(i)).SetField(4, 4, 0xF)
		rules = append(rules, policy.Rule{Match: tn, Action: policy.Drop, Priority: 10 - i})
	}
	newPol := policy.MustNew(9, rules)
	inc, err := IncrementalAdd(prob, pl, []*policy.Policy{newPol}, newRt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible (10 rules, <=3 spare slots)", inc.Status)
	}
}

func TestIncrementalReroute(t *testing.T) {
	prob := fig3Problem(t, 5)
	pl := place(t, prob, Options{})
	if pl.Status != StatusOptimal {
		t.Fatal(pl.Status)
	}
	// Reroute ingress 1: drop the s3 branch, keep only s1-s2-s4-s5.
	newPaths := &routing.PathSet{Ingress: 1, Paths: []routing.Path{
		{Ingress: 1, Egress: 3, Switches: []topology.SwitchID{1, 2, 4, 5}},
	}}
	re, err := IncrementalReroute(prob, pl, 1, newPaths, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Status != StatusOptimal && re.Status != StatusFeasible {
		t.Fatalf("status = %v", re.Status)
	}
	newRt := routing.NewRouting()
	newRt.Sets[1] = newPaths
	reProb := &Problem{Network: prob.Network, Routing: newRt, Policies: re.Policies}
	net, err := re.BuildTables(reProb)
	if err != nil {
		t.Fatal(err)
	}
	if v := verify.Exhaustive(net, newRt, re.Policies); len(v) > 0 {
		t.Fatalf("rerouted policy broken: %v", v)
	}
}

func TestIncrementalRerouteUnknownIngress(t *testing.T) {
	prob := fig3Problem(t, 5)
	pl := place(t, prob, Options{})
	if _, err := IncrementalReroute(prob, pl, 42, &routing.PathSet{}, Options{}); err == nil {
		t.Error("unknown ingress should error")
	}
}

func TestEndToEndRandomProperty(t *testing.T) {
	// Random narrow-header policies over Fig. 3 topology with random
	// capacities: any OPTIMAL/FEASIBLE result must verify exhaustively;
	// SAT and ILP must agree on feasibility and on the optimum.
	rng := rand.New(rand.NewSource(71))
	const width = 8
	for trial := 0; trial < 25; trial++ {
		topo := topology.Fig3(2 + rng.Intn(5))
		rt, err := routing.BuildRouting(topo, []routing.PortPair{{In: 1, Out: 2}, {In: 1, Out: 3}}, 1)
		if err != nil {
			t.Fatal(err)
		}
		n := 2 + rng.Intn(5)
		rules := make([]policy.Rule, 0, n)
		for i := 0; i < n; i++ {
			tn := match.NewTernary(width)
			for b := 0; b < width; b++ {
				switch rng.Intn(3) {
				case 0:
					tn = tn.SetBit(b, false)
				case 1:
					tn = tn.SetBit(b, true)
				}
			}
			a := policy.Permit
			if rng.Intn(2) == 0 {
				a = policy.Drop
			}
			rules = append(rules, policy.Rule{Match: tn, Action: a, Priority: n - i})
		}
		prob := &Problem{Network: topo, Routing: rt, Policies: []*policy.Policy{policy.MustNew(1, rules)}}

		ilpPl := place(t, prob, Options{Backend: BackendILP})
		satPl := place(t, prob, Options{Backend: BackendSAT})
		if (ilpPl.Status == StatusInfeasible) != (satPl.Status == StatusInfeasible) {
			t.Fatalf("trial %d: backends disagree: ilp=%v sat=%v", trial, ilpPl.Status, satPl.Status)
		}
		if ilpPl.Status == StatusInfeasible {
			continue
		}
		if ilpPl.Status == StatusOptimal && satPl.Status == StatusOptimal && ilpPl.TotalRules != satPl.TotalRules {
			t.Fatalf("trial %d: optima differ: ilp=%d sat=%d", trial, ilpPl.TotalRules, satPl.TotalRules)
		}
		verifyPlacement(t, prob, ilpPl)
		verifyPlacement(t, prob, satPl)
	}
}

func TestRuleCountAt(t *testing.T) {
	prob := fig3Problem(t, 10)
	pl := place(t, prob, Options{})
	total := 0
	for _, sw := range prob.Network.Switches() {
		total += pl.RuleCountAt(sw.ID)
	}
	if total != pl.TotalRules {
		t.Errorf("sum of RuleCountAt = %d, want TotalRules %d", total, pl.TotalRules)
	}
}

func TestBuildTablesRejectsBadPlacement(t *testing.T) {
	pl := &Placement{Status: StatusInfeasible}
	if _, err := pl.BuildTables(&Problem{}); err == nil {
		t.Error("BuildTables on infeasible placement should error")
	}
}

func TestOrderEntriesDetectsCycle(t *testing.T) {
	// Construct two pending entries with contradictory per-policy order
	// requirements (only possible if merging broke, so this guards the
	// error path).
	a := pendEntry{
		entry:   mustEntry("1*", policy.Permit),
		ruleIdx: map[int]int{0: 0, 1: 1},
	}
	b := pendEntry{
		entry:   mustEntry("11", policy.Drop),
		ruleIdx: map[int]int{0: 1, 1: 0},
	}
	if _, err := orderEntries([]pendEntry{a, b}); err == nil {
		t.Error("contradictory order must be detected as a cycle")
	}
	// Consistent order sorts fine.
	c := pendEntry{
		entry:   mustEntry("11", policy.Drop),
		ruleIdx: map[int]int{0: 1, 1: 2},
	}
	order, err := orderEntries([]pendEntry{a, c})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 0 {
		t.Errorf("order = %v, want permit first", order)
	}
}

func mustEntry(pattern string, a policy.Action) dataplane.Entry {
	return dataplane.Entry{
		Tags:   map[topology.PortID]bool{1: true},
		Match:  match.MustParseTernary(pattern),
		Action: a,
	}
}

func TestPlaceWithMultipathRouting(t *testing.T) {
	// ECMP-style fan-out: one ingress spread over 4 loopless shortest
	// paths in a fat-tree; every DROP must guard all of them.
	topo, err := topology.FatTree(4, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	ports := topo.Ports()
	pairs := []routing.PortPair{{In: ports[0].ID, Out: ports[len(ports)-1].ID}}
	rt, err := routing.BuildMultipathRouting(topo, pairs, 4)
	if err != nil {
		t.Fatal(err)
	}
	pol := policy.MustNew(int(ports[0].ID), []policy.Rule{
		mk("1100****", policy.Permit, 3),
		mk("11******", policy.Drop, 2),
		mk("00******", policy.Drop, 1),
	})
	prob := &Problem{Network: topo, Routing: rt, Policies: []*policy.Policy{pol}}
	pl := place(t, prob, Options{})
	if pl.Status != StatusOptimal {
		t.Fatalf("status = %v", pl.Status)
	}
	verifyPlacement(t, prob, pl)
	// With capacity 6 the shared first/last hops can hold everything:
	// drops should not be replicated 4x.
	if pl.TotalRules > 6 {
		t.Errorf("TotalRules = %d; sharing across ECMP paths failed", pl.TotalRules)
	}
}
