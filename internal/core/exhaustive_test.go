package core_test

import (
	"errors"
	"math"
	"testing"

	"rulefit/internal/core"
	"rulefit/internal/ilp"
	"rulefit/internal/randgen"
)

// TestExhaustiveMatchesILP: on tiny random instances the enumeration
// oracle and the branch & bound agree on status and optimal objective.
func TestExhaustiveMatchesILP(t *testing.T) {
	checked := 0
	for seed := int64(1); seed <= 80; seed++ {
		inst, err := randgen.Generate(randgen.FromSeed(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opts := core.Options{Backend: core.BackendILP, Workers: 1}
		exh, err := core.PlaceExhaustive(inst.Problem, opts, 16)
		if errors.Is(err, core.ErrExhaustiveTooLarge) {
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: exhaustive: %v", seed, err)
		}
		pl, err := core.Place(inst.Problem, opts)
		if err != nil {
			t.Fatalf("seed %d: ilp: %v", seed, err)
		}
		checked++
		if exh.Status != pl.Status {
			t.Errorf("seed %d: exhaustive %v, ilp %v", seed, exh.Status, pl.Status)
			continue
		}
		if exh.Status == core.StatusOptimal && math.Abs(exh.Objective-pl.Objective) > 0.5 {
			t.Errorf("seed %d: exhaustive obj %g, ilp obj %g", seed, exh.Objective, pl.Objective)
		}
	}
	if checked < 20 {
		t.Fatalf("only %d instances fit the exhaustive budget; want >= 20", checked)
	}
}

// TestExhaustiveTooLarge: exceeding the variable budget is a typed
// error, not a wrong answer.
func TestExhaustiveTooLarge(t *testing.T) {
	inst, err := randgen.Generate(randgen.Config{Seed: 3, Topo: randgen.TopoRing,
		Switches: 6, Ingresses: 2, PathsPerIngress: 3, RulesPerPolicy: 8, Width: 10})
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.PlaceExhaustive(inst.Problem, core.Options{}, 4)
	if !errors.Is(err, core.ErrExhaustiveTooLarge) {
		t.Fatalf("got %v, want ErrExhaustiveTooLarge", err)
	}
}

// TestExhaustiveRejectsMinMaxLoad: the enumeration oracle only supports
// linear objectives.
func TestExhaustiveRejectsMinMaxLoad(t *testing.T) {
	inst, err := randgen.Generate(randgen.FromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.PlaceExhaustive(inst.Problem, core.Options{Objective: core.ObjMinMaxLoad}, 16); err == nil {
		t.Fatal("want error for ObjMinMaxLoad")
	}
}

// TestExhaustiveDeterministicTieBreak: re-running yields the identical
// placement (lexicographically smallest optimal assignment).
func TestExhaustiveDeterministicTieBreak(t *testing.T) {
	inst, err := randgen.Generate(randgen.FromSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.PlaceExhaustive(inst.Problem, core.Options{}, 18)
	if errors.Is(err, core.ErrExhaustiveTooLarge) {
		t.Skip("instance too large for budget")
	}
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.PlaceExhaustive(inst.Problem, core.Options{}, 18)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Assign) != len(b.Assign) {
		t.Fatal("assign shape differs between runs")
	}
	for pi := range a.Assign {
		for ri := range a.Assign[pi] {
			if len(a.Assign[pi][ri]) != len(b.Assign[pi][ri]) {
				t.Fatalf("policy %d rule %d: placements differ", pi, ri)
			}
			for k := range a.Assign[pi][ri] {
				if a.Assign[pi][ri][k] != b.Assign[pi][ri][k] {
					t.Fatalf("policy %d rule %d: placements differ", pi, ri)
				}
			}
		}
	}
}

// TestBuildModelSolvesLikePlace: the exported problem-to-MILP
// translation, driven through ilp.Solve directly, reproduces the
// objective core.Place reports.
func TestBuildModelSolvesLikePlace(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		inst, err := randgen.Generate(randgen.FromSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.BuildModel(inst.Problem, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sol, err := ilp.Solve(m, ilp.Options{Workers: 1})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pl, err := core.Place(inst.Problem, core.Options{Backend: core.BackendILP, Workers: 1})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		switch pl.Status {
		case core.StatusOptimal:
			if sol.Status != ilp.Optimal {
				t.Errorf("seed %d: model status %v, place optimal", seed, sol.Status)
			} else if math.Abs(sol.Objective-pl.Objective) > 1e-6 {
				t.Errorf("seed %d: model obj %g, place obj %g", seed, sol.Objective, pl.Objective)
			}
		case core.StatusInfeasible:
			if sol.Status != ilp.Infeasible {
				t.Errorf("seed %d: model status %v, place infeasible", seed, sol.Status)
			}
		}
	}
}
