package core_test

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"rulefit/internal/core"
	"rulefit/internal/randgen"
)

// TestPresolveCutsNeverExcludeOptimum is the safety property behind the
// solver's speed machinery: bound tightening (presolve) and root cover
// cuts may only discard non-optimal or infeasible parts of the search
// space. On seeded random instances small enough for the enumeration
// oracle, every combination of {presolve, cuts} × {on, off} must report
// the same status and the same optimal objective as PlaceExhaustive —
// a cut or bound that excluded the optimum shows up here as a worse
// objective on the variant that applied it.
//
// On top of the objective property, the placement itself must be
// byte-identical between the default solve and a cuts-disabled solve:
// the placement objective's deterministic tie-break keeps cuts from
// steering the search to a different equally-good placement.
func TestPresolveCutsNeverExcludeOptimum(t *testing.T) {
	base := core.Options{Backend: core.BackendILP, Workers: 1, Merging: true}
	variants := []struct {
		name string
		mod  func(core.Options) core.Options
	}{
		{"default", func(o core.Options) core.Options { return o }},
		{"nocuts", func(o core.Options) core.Options { o.DisableCuts = true; return o }},
		{"nopresolve", func(o core.Options) core.Options { o.DisablePresolve = true; return o }},
		{"bare", func(o core.Options) core.Options { o.DisableCuts = true; o.DisablePresolve = true; return o }},
	}
	checked := 0
	for seed := int64(1); seed <= 80; seed++ {
		inst, err := randgen.Generate(randgen.FromSeed(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		exh, err := core.PlaceExhaustive(inst.Problem, base, 16)
		if errors.Is(err, core.ErrExhaustiveTooLarge) {
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: exhaustive: %v", seed, err)
		}
		checked++
		var def *core.Placement
		for _, v := range variants {
			pl, err := core.Place(inst.Problem, v.mod(base))
			if err != nil {
				t.Fatalf("seed %d/%s: %v", seed, v.name, err)
			}
			if pl.Status != exh.Status {
				t.Errorf("seed %d/%s: status %v, oracle %v", seed, v.name, pl.Status, exh.Status)
				continue
			}
			if exh.Status == core.StatusOptimal && math.Abs(pl.Objective-exh.Objective) > 0.5 {
				t.Errorf("seed %d/%s: objective %g, oracle optimum %g — search space pruning excluded the optimum",
					seed, v.name, pl.Objective, exh.Objective)
			}
			switch v.name {
			case "default":
				def = pl
			case "nocuts":
				// The headline identity: disabling cuts must not change
				// the placement, only (possibly) the node count.
				if !reflect.DeepEqual(pl.Assign, def.Assign) {
					t.Errorf("seed %d: assignments differ between default and cuts-disabled solves", seed)
				}
				if !reflect.DeepEqual(pl.MergedAt, def.MergedAt) {
					t.Errorf("seed %d: merge placements differ between default and cuts-disabled solves", seed)
				}
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d instances fit the exhaustive budget; want >= 20", checked)
	}
}
