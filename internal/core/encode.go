package core

import (
	"fmt"
	"sort"

	"rulefit/internal/deps"
	"rulefit/internal/obs"
	"rulefit/internal/policy"
	"rulefit/internal/routing"
	"rulefit/internal/topology"
)

// The encoding is a backend-neutral intermediate representation of the
// paper's constraint system. Both the ILP and SAT backends are generated
// from it, which keeps the two formulations provably aligned and makes
// backend ablations meaningful.

// varKind distinguishes placement variables from merged-rule variables.
type varKind int8

const (
	varRule   varKind = iota + 1 // v_{i,j,k}: rule j of policy i on switch k
	varMerged                    // v^m_{g,k}: merge group g installed at switch k
)

// evar is one 0/1 decision variable.
type evar struct {
	kind  varKind
	pol   int // policy index (varRule)
	rule  int // rule index (varRule)
	group int // group index (varMerged)
	sw    topology.SwitchID
}

// mergeCons ties a merged variable to its member rule variables:
// mv = AND(members) (Eqs. 4–5 / Eq. 8).
type mergeCons struct {
	mv      int
	members []int
}

// capRow is one switch capacity constraint: sum of rule vars at the
// switch, with each merged var contributing -(M-1), must be <= cap.
type capRow struct {
	sw       topology.SwitchID
	ruleVars []int
	merged   []mergeTerm
	cap      int
}

// mergeTerm is a merged variable's contribution to a capacity row or the
// objective: coefficient -(members-1).
type mergeTerm struct {
	mv      int
	savings int // members-1 (>= 1)
}

// encoding is the assembled constraint system.
type encoding struct {
	prob *Problem
	opts Options

	policies []*policy.Policy // after optional redundancy removal
	graphs   []*deps.Graph

	vars    []evar
	index   map[evar]int
	byRule  map[[2]int][]int // (pol, rule) -> var ids
	imps    [][2]int         // [w, u]: v_w -> v_u (Eq. 1 / Eq. 6)
	covers  [][]int          // at-least-one over var ids (Eq. 2 / Eq. 7)
	merges  []mergeCons
	capRows []capRow

	groups  []deps.MergeGroup
	dummies []deps.DummyRule

	// infeasibleReason is set when the encoding itself proves the
	// instance unsatisfiable (e.g. a monitor forbids every candidate
	// switch of some DROP rule on some path).
	infeasibleReason string

	// trafficWeight[v] is loc(s_k, P_i) + 1 for rule vars (>= 1 so that
	// placing fewer rules still helps) and the merged adjustment for
	// merged vars; used by ObjTraffic.
	trafficWeight []int64
}

// buildEncoding assembles the constraint system for a validated problem.
// span (nil-safe) gets one child per pipeline stage.
func buildEncoding(prob *Problem, opts Options, span *obs.Span) (*encoding, error) {
	e := &encoding{
		prob:   prob,
		opts:   opts,
		index:  make(map[evar]int),
		byRule: make(map[[2]int][]int),
	}

	// Stage 1 (optional): redundancy removal, per Fig. 4. With an
	// EncodeCache attached, policies whose content was analyzed before
	// serve both stage-1 and stage-2 artifacts from cache.
	cache := opts.EncodeCache
	redSp := span.Child("redundancy")
	e.policies = make([]*policy.Policy, len(prob.Policies))
	e.graphs = make([]*deps.Graph, len(prob.Policies))
	for i, pol := range prob.Policies {
		if cache != nil {
			if reduced, g, ok := cache.lookupPolicy(pol, opts.RemoveRedundant); ok {
				e.policies[i], e.graphs[i] = reduced, g
				continue
			}
		}
		if opts.RemoveRedundant {
			reduced, _ := policy.RemoveRedundant(pol)
			e.policies[i] = reduced
		} else {
			e.policies[i] = pol.Clone()
		}
	}
	redSp.End()

	// Stage 2: dependency graphs (for cache hits, already filled).
	depSp := span.Child("dep_graph")
	for i, pol := range e.policies {
		if e.graphs[i] != nil {
			continue
		}
		e.graphs[i] = deps.BuildGraph(pol)
		if cache != nil {
			cache.storePolicy(prob.Policies[i], opts.RemoveRedundant, pol, e.graphs[i])
		}
	}
	depSp.End()

	// Stage 3: variables. For each policy, DROP rules get variables on
	// the switches of their relevant paths; dependent PERMIT rules get
	// variables wherever one of their drops might go.
	varSp := span.Child("variables")
	for pi, pol := range e.policies {
		ps := prob.Routing.Sets[topology.PortID(pol.Ingress)]
		g := e.graphs[pi]
		permitSwitches := make(map[int]map[topology.SwitchID]bool)
		for _, w := range g.Drops() {
			candidates := e.relevantSwitches(pol.Rules[w], ps)
			for sw := range e.monitorForbidden(pol.Rules[w], ps) {
				delete(candidates, sw)
			}
			sws := sortedSwitches(candidates)
			for _, sw := range sws {
				e.addVar(evar{kind: varRule, pol: pi, rule: w, sw: sw})
			}
			for _, u := range g.Dependents(w) {
				m, ok := permitSwitches[u]
				if !ok {
					m = make(map[topology.SwitchID]bool)
					permitSwitches[u] = m
				}
				for _, sw := range sws {
					m[sw] = true
				}
			}
		}
		permits := make([]int, 0, len(permitSwitches))
		for u := range permitSwitches {
			permits = append(permits, u)
		}
		sort.Ints(permits)
		for _, u := range permits {
			for _, sw := range sortedSwitches(permitSwitches[u]) {
				e.addVar(evar{kind: varRule, pol: pi, rule: u, sw: sw})
			}
		}
	}
	varSp.SetCount("vars", int64(len(e.vars)))
	varSp.End()

	// Stage 4: rule dependency constraints (Eq. 1).
	consSp := span.Child("constraints")
	for pi, g := range e.graphs {
		for _, w := range g.Drops() {
			for _, u := range g.Dependents(w) {
				for _, sw := range e.switchesOf(pi, w) {
					vw := e.index[evar{kind: varRule, pol: pi, rule: w, sw: sw}]
					vu, ok := e.index[evar{kind: varRule, pol: pi, rule: u, sw: sw}]
					if !ok {
						consSp.End()
						return nil, fmt.Errorf("core: missing permit variable p%d/r%d at switch %d", pi, u, sw)
					}
					e.imps = append(e.imps, [2]int{vw, vu})
				}
			}
		}
	}

	// Stage 5: path dependency constraints (Eq. 2, per path as the
	// paper's prose requires; Eq. 2's union form is a typo).
	for pi, g := range e.graphs {
		pol := e.policies[pi]
		ps := prob.Routing.Sets[topology.PortID(pol.Ingress)]
		for _, w := range g.Drops() {
			for _, path := range ps.Paths {
				if !e.pathRelevant(pol.Rules[w], path) {
					continue
				}
				var cover []int
				for _, sw := range path.Switches {
					if id, ok := e.index[evar{kind: varRule, pol: pi, rule: w, sw: sw}]; ok {
						cover = append(cover, id)
					}
				}
				if len(cover) == 0 {
					consSp.End()
					if len(opts.Monitors) > 0 {
						e.infeasibleReason = fmt.Sprintf("drop rule p%d/r%d has no monitor-compatible switch on path %v", pi, w, path)
						return e, nil
					}
					return nil, fmt.Errorf("core: drop rule p%d/r%d has no candidate switch on path %v", pi, w, path)
				}
				e.covers = append(e.covers, cover)
			}
		}
	}
	consSp.SetCount("imps", int64(len(e.imps)))
	consSp.SetCount("covers", int64(len(e.covers)))
	consSp.End()

	// Stage 6 (optional): merge groups over placed rules (§IV-B).
	if opts.Merging {
		mergeSp := span.Child("merging")
		if err := e.buildMerging(); err != nil {
			mergeSp.End()
			return nil, err
		}
		mergeSp.SetCount("groups", int64(len(e.groups)))
		mergeSp.End()
	}

	// Stage 7: capacity rows (Eq. 3).
	capSp := span.Child("capacities")
	e.buildCapacities()
	capSp.SetCount("rows", int64(len(e.capRows)))
	capSp.End()

	// Traffic weights for ObjTraffic: rule variables first, then the
	// merged adjustments (which reference the rule weights).
	e.trafficWeight = make([]int64, len(e.vars))
	for id, v := range e.vars {
		if v.kind != varRule {
			continue
		}
		ps := prob.Routing.Sets[topology.PortID(e.policies[v.pol].Ingress)]
		loc := ps.MinLoc(v.sw)
		if loc < 0 {
			loc = 0
		}
		e.trafficWeight[id] = int64(loc + 1)
	}
	for _, mc := range e.merges {
		// A merged installation replaces its members' costs with a
		// single conservative (maximum) cost; encoded as the negative
		// of the members' summed weights plus the max.
		var sum, maxW int64
		for _, m := range mc.members {
			w := e.trafficWeight[m]
			sum += w
			if w > maxW {
				maxW = w
			}
		}
		e.trafficWeight[mc.mv] = maxW - sum
	}
	return e, nil
}

// addVar interns a variable, returning its id.
func (e *encoding) addVar(v evar) int {
	if id, ok := e.index[v]; ok {
		return id
	}
	id := len(e.vars)
	e.vars = append(e.vars, v)
	e.index[v] = id
	if v.kind == varRule {
		key := [2]int{v.pol, v.rule}
		e.byRule[key] = append(e.byRule[key], id)
	}
	return id
}

// switchesOf lists the switches where rule ri of policy pi has variables.
func (e *encoding) switchesOf(pi, ri int) []topology.SwitchID {
	ids := e.byRule[[2]int{pi, ri}]
	out := make([]topology.SwitchID, 0, len(ids))
	for _, id := range ids {
		out = append(out, e.vars[id].sw)
	}
	return out
}

// monitorForbidden returns the switches where the DROP rule r may not
// be installed: positions strictly upstream of a monitor (whose match
// overlaps r) on any relevant path that reaches the monitoring switch.
// Dropping r there would hide monitored packets from the monitor (§VII).
func (e *encoding) monitorForbidden(r policy.Rule, ps *routing.PathSet) map[topology.SwitchID]bool {
	out := make(map[topology.SwitchID]bool)
	for _, mon := range e.opts.Monitors {
		if !mon.Match.Overlaps(r.Match) {
			continue
		}
		for _, path := range ps.Paths {
			if !e.pathRelevant(r, path) {
				continue
			}
			mpos := path.Loc(mon.Switch)
			if mpos < 0 {
				continue
			}
			for _, sw := range path.Switches[:mpos] {
				out[sw] = true
			}
		}
	}
	return out
}

// pathRelevant reports whether a rule applies to a path's traffic slice.
func (e *encoding) pathRelevant(r policy.Rule, path routing.Path) bool {
	if !e.opts.PathSlicing || !path.HasTraffic {
		return true
	}
	return r.Match.Overlaps(path.Traffic)
}

// relevantSwitches returns the union of switches over the rule's
// relevant paths.
func (e *encoding) relevantSwitches(r policy.Rule, ps *routing.PathSet) map[topology.SwitchID]bool {
	out := make(map[topology.SwitchID]bool)
	for _, path := range ps.Paths {
		if !e.pathRelevant(r, path) {
			continue
		}
		for _, sw := range path.Switches {
			out[sw] = true
		}
	}
	return out
}

// buildMerging detects mergeable rules among placed rules, breaks
// circular dependencies, and creates merged variables and constraints.
func (e *encoding) buildMerging() error {
	// Only rules that have variables can merge: restrict the group
	// search to placed rules by masking others out.
	placedMask := make([]map[int]bool, len(e.policies))
	for _, v := range e.vars {
		if v.kind != varRule {
			continue
		}
		if placedMask[v.pol] == nil {
			placedMask[v.pol] = make(map[int]bool)
		}
		placedMask[v.pol][v.rule] = true
	}
	// The group search is a pure function of the (reduced) policy list;
	// with a cache attached it is served by content key. The cached
	// slice is shared read-only: the filter below builds fresh groups.
	var raw []deps.MergeGroup
	if c := e.opts.EncodeCache; c != nil {
		if cached, ok := c.lookupMerge(e.policies); ok {
			raw = cached
		} else {
			raw = deps.FindMergeable(e.policies, 2)
			c.storeMerge(e.policies, raw)
		}
	} else {
		raw = deps.FindMergeable(e.policies, 2)
	}
	var filtered []deps.MergeGroup
	for _, g := range raw {
		var members []deps.RuleRef
		for _, m := range g.Members {
			if placedMask[m.Policy] != nil && placedMask[m.Policy][m.Rule] {
				members = append(members, m)
			}
		}
		if len(members) >= 2 {
			filtered = append(filtered, deps.MergeGroup{Members: members, Action: g.Action, MatchKey: g.MatchKey})
		}
	}
	groups, dummies := deps.BreakCycles(e.policies, filtered)
	e.groups = groups
	e.dummies = dummies

	for gi, g := range groups {
		// For each switch where >= 2 members have variables, a merged
		// variable v^m with mv = AND(member vars).
		bySwitch := make(map[topology.SwitchID][]int)
		for _, m := range g.Members {
			for _, id := range e.byRule[[2]int{m.Policy, m.Rule}] {
				bySwitch[e.vars[id].sw] = append(bySwitch[e.vars[id].sw], id)
			}
		}
		for _, sw := range sortedSwitchKeys(bySwitch) {
			members := bySwitch[sw]
			if len(members) < 2 {
				continue
			}
			mv := e.addVar(evar{kind: varMerged, group: gi, sw: sw})
			e.merges = append(e.merges, mergeCons{mv: mv, members: members})
		}
	}
	return nil
}

// buildCapacities assembles one capacity row per switch that hosts any
// variable.
func (e *encoding) buildCapacities() {
	ruleVarsAt := make(map[topology.SwitchID][]int)
	mergedAt := make(map[topology.SwitchID][]mergeTerm)
	for id, v := range e.vars {
		if v.kind == varRule {
			ruleVarsAt[v.sw] = append(ruleVarsAt[v.sw], id)
		}
	}
	for _, mc := range e.merges {
		sw := e.vars[mc.mv].sw
		mergedAt[sw] = append(mergedAt[sw], mergeTerm{mv: mc.mv, savings: len(mc.members) - 1})
	}
	for _, sw := range e.prob.Network.Switches() {
		rv := ruleVarsAt[sw.ID]
		mt := mergedAt[sw.ID]
		if len(rv) == 0 && len(mt) == 0 {
			continue
		}
		e.capRows = append(e.capRows, capRow{sw: sw.ID, ruleVars: rv, merged: mt, cap: sw.Capacity})
	}
}

// objectiveWeights returns the per-variable objective coefficients for
// the configured objective. Rule variables get positive weights; merged
// variables get the negative savings adjustment.
func (e *encoding) objectiveWeights() []int64 {
	w := make([]int64, len(e.vars))
	switch e.opts.Objective {
	case ObjTraffic:
		copy(w, e.trafficWeight)
	case ObjWeightedSwitches:
		cost := func(sw topology.SwitchID) int64 {
			if c, ok := e.opts.SwitchCost[sw]; ok {
				return c
			}
			return 1
		}
		for id, v := range e.vars {
			if v.kind == varRule {
				w[id] = cost(v.sw)
			}
		}
		for _, mc := range e.merges {
			v := e.vars[mc.mv]
			w[mc.mv] = -int64(len(mc.members)-1) * cost(v.sw)
		}
	default: // ObjTotalRules (also the ObjMinMaxLoad tiebreak)
		for id, v := range e.vars {
			if v.kind == varRule {
				w[id] = 1
			}
		}
		for _, mc := range e.merges {
			w[mc.mv] = -int64(len(mc.members) - 1)
		}
	}
	return w
}

// numConstraints is the IR constraint count (for stats).
func (e *encoding) numConstraints() int {
	return len(e.imps) + len(e.covers) + len(e.capRows) + 2*len(e.merges)
}

// sortedSwitches returns a set's members in ascending ID order, keeping
// variable creation (and hence both backends' search) deterministic.
func sortedSwitches(set map[topology.SwitchID]bool) []topology.SwitchID {
	out := make([]topology.SwitchID, 0, len(set))
	for sw := range set {
		out = append(out, sw)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// sortedSwitchKeys sorts the keys of a per-switch map.
func sortedSwitchKeys[V any](m map[topology.SwitchID]V) []topology.SwitchID {
	out := make([]topology.SwitchID, 0, len(m))
	for sw := range m {
		out = append(out, sw)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
