package core

import (
	"fmt"
	"reflect"
	"testing"

	"rulefit/internal/policy"
	"rulefit/internal/routing"
	"rulefit/internal/topology"
)

// twoIngressProblem builds a ring with two routed ingresses whose
// policies share an identical DROP rule (a §IV-B merge group), so the
// cache test exercises the per-policy artifacts and the cross-policy
// merge search together.
func twoIngressProblem(t *testing.T, capacity int) *Problem {
	t.Helper()
	topo, err := topology.Ring(4, capacity)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := routing.BuildRouting(topo, []routing.PortPair{{In: 0, Out: 2}, {In: 1, Out: 3}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	polA := policy.MustNew(0, []policy.Rule{
		mk("1100****", policy.Permit, 4),
		mk("11******", policy.Drop, 3),
		mk("1111****", policy.Permit, 2), // redundant under rule 4's shadow pattern
		mk("00******", policy.Drop, 1),
	})
	polB := policy.MustNew(1, []policy.Rule{
		mk("0011****", policy.Permit, 3),
		mk("00******", policy.Drop, 2), // identical to polA's drop: mergeable
		mk("10******", policy.Drop, 1),
	})
	return &Problem{Network: topo, Routing: rt, Policies: []*policy.Policy{polA, polB}}
}

// encodeFingerprint flattens the cache-relevant encoding artifacts for
// deep comparison.
type encodeFingerprint struct {
	Policies []*policy.Policy
	Drops    [][]int
	Vars     []evar
	Imps     [][2]int
	Covers   [][]int
	Merges   []mergeCons
	CapRows  []capRow
	Weights  []int64
}

func fingerprintEncoding(e *encoding) encodeFingerprint {
	fp := encodeFingerprint{
		Policies: e.policies,
		Vars:     e.vars,
		Imps:     e.imps,
		Covers:   e.covers,
		Merges:   e.merges,
		CapRows:  e.capRows,
		Weights:  e.trafficWeight,
	}
	for _, g := range e.graphs {
		fp.Drops = append(fp.Drops, g.Drops())
	}
	return fp
}

// TestEncodeCacheArtifactsMatchFresh proves a warm cache reproduces
// the cold encoding exactly: every artifact the encoding derives from
// cached stages is deeply equal to a from-scratch build.
func TestEncodeCacheArtifactsMatchFresh(t *testing.T) {
	prob := twoIngressProblem(t, 10)
	opts := Options{Merging: true, RemoveRedundant: true}.withDefaults()

	fresh, err := buildEncoding(prob, opts, nil)
	if err != nil {
		t.Fatal(err)
	}

	cache := NewEncodeCache()
	opts.EncodeCache = cache
	if _, err := buildEncoding(prob, opts, nil); err != nil {
		t.Fatal(err) // populates the cache
	}
	warm, err := buildEncoding(prob, opts, nil)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := fingerprintEncoding(warm), fingerprintEncoding(fresh); !reflect.DeepEqual(got, want) {
		t.Fatalf("warm encoding differs from fresh:\n got %+v\nwant %+v", got, want)
	}
	st := cache.Stats()
	if st.PolicyHits != int64(len(prob.Policies)) || st.PolicyMisses != int64(len(prob.Policies)) {
		t.Fatalf("policy cache counters: %+v, want %d hits and misses", st, len(prob.Policies))
	}
	if st.MergeHits != 1 || st.MergeMisses != 1 {
		t.Fatalf("merge cache counters: %+v, want 1 hit and 1 miss", st)
	}
}

// placementKey is the byte-identity projection used across the delta
// tests: status, objective, totals, and every assignment.
func placementKey(pl *Placement) string {
	return fmt.Sprintf("%v|%.6f|%d|%v|%v", pl.Status, pl.Objective, pl.TotalRules, pl.Assign, pl.MergedAt)
}

// TestEncodeCacheByteIdentity asserts Place returns byte-identical
// placements with and without a warm cache attached, across the
// encoding-relevant option combinations.
func TestEncodeCacheByteIdentity(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"plain", Options{}},
		{"merging", Options{Merging: true}},
		{"reduced", Options{RemoveRedundant: true}},
		{"merging+reduced", Options{Merging: true, RemoveRedundant: true}},
		{"traffic", Options{Objective: ObjTraffic, Merging: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, capacity := range []int{2, 10} {
				prob := twoIngressProblem(t, capacity)
				cold := place(t, prob, tc.opts)

				warmOpts := tc.opts
				warmOpts.EncodeCache = NewEncodeCache()
				place(t, prob, warmOpts) // populate
				warm := place(t, prob, warmOpts)

				if got, want := placementKey(warm), placementKey(cold); got != want {
					t.Fatalf("capacity %d: warm placement differs:\n got %s\nwant %s", capacity, got, want)
				}
				if !reflect.DeepEqual(warm.Assign, cold.Assign) || !reflect.DeepEqual(warm.MergedAt, cold.MergedAt) {
					t.Fatalf("capacity %d: warm assignment structures differ", capacity)
				}
			}
		})
	}
}

// TestEncodeCacheServesClones proves callers cannot corrupt the cache
// through a served policy: mutating a hit's rules leaves later hits
// equal to a fresh computation.
func TestEncodeCacheServesClones(t *testing.T) {
	prob := twoIngressProblem(t, 10)
	cache := NewEncodeCache()
	opts := Options{Merging: true, EncodeCache: cache}.withDefaults()
	if _, err := buildEncoding(prob, opts, nil); err != nil {
		t.Fatal(err)
	}

	first, _, ok := cache.lookupPolicy(prob.Policies[0], false)
	if !ok {
		t.Fatal("expected cache hit")
	}
	first.Rules[0].Action = policy.Drop // attack the served copy
	first.Rules = first.Rules[:1]

	second, _, ok := cache.lookupPolicy(prob.Policies[0], false)
	if !ok {
		t.Fatal("expected second cache hit")
	}
	if !reflect.DeepEqual(second, prob.Policies[0].Clone()) {
		t.Fatalf("cache entry corrupted by caller mutation:\n got %v\nwant %v", second, prob.Policies[0])
	}
}
