package core

import (
	"reflect"
	"testing"
	"time"

	"rulefit/internal/obs"
)

// TestPlaceRequestCtxDoesNotPerturb is the acceptance gate for
// request-scoped observability: attaching a RequestCtx (trace ID +
// span trace) must leave the placement byte-identical to an unscoped
// run, while stamping the ID on every solver event and adopting the
// request's span trace.
func TestPlaceRequestCtxDoesNotPerturb(t *testing.T) {
	const id = "req-000001-00000000cafebabe"
	for _, w := range []int{1, 4} {
		plain, err := Place(determinismProblem(t), Options{
			Merging: true, TimeLimit: 60 * time.Second, Workers: w,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		var rec obs.Recorder
		rc := obs.NewRequestCtx(id)
		scoped, err := Place(determinismProblem(t), Options{
			Merging: true, TimeLimit: 60 * time.Second, Workers: w,
			Request: rc, SolverSink: &rec,
		})
		if err != nil {
			t.Fatalf("workers=%d scoped: %v", w, err)
		}
		plain.Stats.SolveTime = 0
		scoped.Stats.SolveTime = 0
		if !reflect.DeepEqual(plain, scoped) {
			t.Fatalf("workers=%d: request-scoped placement differs from unscoped:\n%+v\nvs\n%+v",
				w, plain, scoped)
		}
		events := rec.Events()
		if len(events) == 0 {
			t.Fatalf("workers=%d: sink saw no events", w)
		}
		for i, e := range events {
			if e.TraceID != id {
				t.Fatalf("workers=%d: event %d missing trace ID: %+v", w, i, e)
			}
		}
		// The request's trace collected the phase spans.
		if len(rc.Trace.Roots()) != 1 || rc.Trace.Roots()[0].Name() != "place" {
			t.Fatalf("workers=%d: request trace roots = %v", w, rc.Trace.Roots())
		}
	}
}

// TestPlaceExplicitTraceWinsOverRequest asserts precedence: when both
// Options.Trace and a RequestCtx are set, spans land in the explicit
// trace and the request's own trace stays empty.
func TestPlaceExplicitTraceWinsOverRequest(t *testing.T) {
	rc := obs.NewRequestCtx("req-000002-0000000000000001")
	tr := obs.NewTrace()
	if _, err := Place(determinismProblem(t), Options{
		Merging: true, TimeLimit: 60 * time.Second, Trace: tr, Request: rc,
	}); err != nil {
		t.Fatal(err)
	}
	if len(tr.Roots()) != 1 {
		t.Fatalf("explicit trace got %d roots", len(tr.Roots()))
	}
	if len(rc.Trace.Roots()) != 0 {
		t.Fatalf("request trace unexpectedly collected %d roots", len(rc.Trace.Roots()))
	}
}
