// Package core implements the paper's contribution: optimized placement
// of distributed-firewall (ACL) rules onto capacity-limited SDN switches
// for a given routing, via the rule dependency graph (§IV-A1) and either
// an ILP encoding (Eqs. 1–5) solved by the internal MILP solver or a
// satisfiability encoding (Eqs. 6–8) solved by the internal CDCL/PB
// solver. Extensions covered: rule merging across policies with
// circular-dependency breaking (§IV-B), path-sliced policy rules (§IV-C),
// alternative objectives (§IV-A4), ingress tagging and per-switch table
// compilation (§IV-A5), and incremental deployment (§IV-E).
package core

import (
	"errors"
	"fmt"
	"time"

	"rulefit/internal/deps"
	"rulefit/internal/ilp"
	"rulefit/internal/match"
	"rulefit/internal/obs"
	"rulefit/internal/policy"
	"rulefit/internal/routing"
	"rulefit/internal/topology"
)

// Backend selects the solver used for the placement problem.
type Backend int

// Available backends.
const (
	// BackendILP uses the integer linear programming formulation
	// (optimizing an objective; the paper's primary mode).
	BackendILP Backend = iota + 1
	// BackendSAT uses the satisfiability/pseudo-Boolean formulation
	// (§IV-D); with an objective it runs linear-search PB optimization.
	BackendSAT
)

// String renders the backend name.
func (b Backend) String() string {
	switch b {
	case BackendILP:
		return "ilp"
	case BackendSAT:
		return "sat"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// Objective selects what the placement minimizes (§IV-A4).
type Objective int

// Available objectives.
const (
	// ObjTotalRules minimizes the total number of TCAM slots used,
	// maximizing slack for future rules (the paper's evaluation metric).
	ObjTotalRules Objective = iota + 1
	// ObjTraffic weights each placement by its hop distance from the
	// ingress, pushing DROP rules upstream to kill traffic early.
	ObjTraffic
	// ObjWeightedSwitches charges each rule the per-switch cost from
	// Options.SwitchCost (default cost 1), the paper's "weighted
	// placement to favor certain switches".
	ObjWeightedSwitches
	// ObjMinMaxLoad minimizes the maximum TCAM utilization fraction
	// across switches (the paper's "slack in table capacity"
	// criterion), with total rules as a lexicographic tiebreak.
	// ILP backend only.
	ObjMinMaxLoad
)

// String renders the objective name.
func (o Objective) String() string {
	switch o {
	case ObjTotalRules:
		return "total-rules"
	case ObjTraffic:
		return "traffic"
	case ObjWeightedSwitches:
		return "weighted-switches"
	case ObjMinMaxLoad:
		return "min-max-load"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Options configures a placement run.
type Options struct {
	// Backend defaults to BackendILP.
	Backend Backend
	// Objective defaults to ObjTotalRules.
	Objective Objective
	// SatisfyOnly skips objective optimization and returns the first
	// placement meeting all constraints (the paper's satisfiability
	// mode for fast re-deployment).
	SatisfyOnly bool
	// Merging enables cross-policy rule merging (§IV-B).
	Merging bool
	// PathSlicing restricts each rule to the paths whose traffic slice
	// overlaps it (§IV-C). Paths without traffic slices always count.
	PathSlicing bool
	// RemoveRedundant runs policy redundancy elimination first (the
	// optional stage in Fig. 4).
	RemoveRedundant bool
	// SwitchCost weighs rule placements per switch for
	// ObjWeightedSwitches; switches absent from the map cost 1.
	SwitchCost map[topology.SwitchID]int64
	// Monitors forbids DROP rules that overlap a monitor's match from
	// being placed upstream of the monitoring switch on any path that
	// reaches it, so monitored packets are observed before being
	// dropped (the paper's §VII future-work constraint).
	Monitors []Monitor
	// TimeLimit bounds the solve (0 = no limit).
	TimeLimit time.Duration
	// DisablePresolve turns off ILP presolve (ablation).
	DisablePresolve bool
	// DisableCuts turns off the ILP solver's root cover-cut separation
	// (ablation; the placement is identical either way).
	DisableCuts bool
	// Workers sets the ILP branch & bound parallelism (0 = GOMAXPROCS).
	// The placement returned is independent of the worker count.
	Workers int
	// Trace, when non-nil, collects hierarchical phase spans (encode →
	// model build → solve → extract) for the run. Timing only; the
	// placement is identical with or without it.
	Trace *obs.Trace
	// SolverSink receives structured solver events from the ILP backend
	// (nil disables tracing). The placement is byte-identical with the
	// sink attached or not.
	SolverSink obs.Sink
	// Progress, when non-nil, receives live solve snapshots (phase,
	// incumbent, bound, gap) published from the ILP solver's sequential
	// sections. Read-only for the solver; the placement is byte-identical
	// with or without it.
	Progress *obs.Progress
	// ProfileLabels attaches pprof goroutine labels (trace_id, phase)
	// around ILP solve phases so CPU profiles attribute samples to
	// requests. Observational only.
	ProfileLabels bool
	// Request, when non-nil, scopes the run to one operational request:
	// its Trace collects the phase spans when Options.Trace is unset,
	// and its TraceID is stamped on every solver event so spans, B&B
	// events, and log lines join by ID. Purely observational — the
	// placement is byte-identical with or without it.
	Request *obs.RequestCtx
	// EncodeCache, when non-nil, memoizes the pure per-policy encode
	// stages (redundancy removal, dependency graphs) and the
	// cross-policy merge search across solves, keyed by policy content.
	// The stateful session layer (internal/state) attaches one per
	// session so single-policy deltas skip re-analyzing the unchanged
	// policies. The placement is byte-identical with or without it
	// (TestEncodeCacheByteIdentity).
	EncodeCache *EncodeCache
	// SolutionCache, when non-nil, memoizes per-policy placement
	// fragments on the decomposed solve path (see decompose.go), keyed
	// by the full subproblem rendering. The stateful session layer
	// attaches one per session so small deltas re-solve only the
	// subproblems they changed. The placement is byte-identical with or
	// without it (TestDecomposedSolutionCacheByteIdentity).
	SolutionCache *SolutionCache
}

// traceID returns the request trace ID ("" when unscoped).
func (o Options) traceID() string {
	if o.Request == nil {
		return ""
	}
	return o.Request.TraceID
}

// withDefaults fills in unset options.
func (o Options) withDefaults() Options {
	if o.Backend == 0 {
		o.Backend = BackendILP
	}
	if o.Objective == 0 {
		o.Objective = ObjTotalRules
	}
	if o.Request != nil && o.Trace == nil {
		o.Trace = o.Request.Trace
	}
	return o
}

// Monitor declares a packet-monitoring rule installed at a switch: all
// packets matching Match that traverse Switch must reach it un-dropped.
type Monitor struct {
	Switch topology.SwitchID
	Match  match.Ternary
}

// Problem is a rule placement instance: the network, the routing produced
// by the external routing module, and one ACL policy per ingress.
type Problem struct {
	Network  *topology.Network
	Routing  *routing.Routing
	Policies []*policy.Policy
}

// Validation errors.
var (
	ErrNoRouting     = errors.New("core: policy ingress has no routing paths")
	ErrDupPolicy     = errors.New("core: multiple policies for one ingress")
	ErrNilField      = errors.New("core: problem field is nil")
	ErrUnknownSwitch = errors.New("core: routing references unknown switch")
)

// Validate checks the problem's cross-references.
func (p *Problem) Validate() error {
	if p.Network == nil || p.Routing == nil {
		return ErrNilField
	}
	if err := p.Network.Validate(); err != nil {
		return err
	}
	seen := make(map[int]bool, len(p.Policies))
	for _, pol := range p.Policies {
		if err := pol.Validate(); err != nil {
			return err
		}
		if seen[pol.Ingress] {
			return fmt.Errorf("%w: ingress %d", ErrDupPolicy, pol.Ingress)
		}
		seen[pol.Ingress] = true
		ps, ok := p.Routing.Sets[topology.PortID(pol.Ingress)]
		if !ok || len(ps.Paths) == 0 {
			return fmt.Errorf("%w: ingress %d", ErrNoRouting, pol.Ingress)
		}
		for _, path := range ps.Paths {
			for _, sw := range path.Switches {
				if _, ok := p.Network.Switch(sw); !ok {
					return fmt.Errorf("%w: %d", ErrUnknownSwitch, sw)
				}
			}
		}
	}
	return nil
}

// Status is the outcome of a placement run.
type Status int

// Placement outcomes.
const (
	// StatusOptimal means the placement provably minimizes the objective.
	StatusOptimal Status = iota + 1
	// StatusFeasible means a valid placement was found, but optimality
	// was not proven (SatisfyOnly, or a limit expired with an incumbent).
	StatusFeasible
	// StatusInfeasible means no placement satisfies the constraints.
	StatusInfeasible
	// StatusLimit means the time/search budget expired with no placement.
	StatusLimit
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusLimit:
		return "limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Stats reports solver effort.
type Stats struct {
	Backend      Backend
	Variables    int
	Constraints  int
	SolveTime    time.Duration
	SimplexIters int
	BnBNodes     int
	// Workers is the branch & bound parallelism the ILP solve used.
	Workers      int
	SATConflicts int64
	SATDecisions int64

	// LURefactors counts basis LU refactorizations (ILP backend).
	LURefactors int
	// Branched..LostSubtrees break BnBNodes down by outcome; their sum
	// equals BnBNodes. PrunedStale counts frontier items discarded
	// before expansion. Incumbents counts incumbent improvements.
	Branched         int
	PrunedBound      int
	PrunedInfeasible int
	IntegralLeaves   int
	LostSubtrees     int
	PrunedStale      int
	Incumbents       int
	// CutsAdded/CutRoundsRoot report the solver's root cover-cut
	// separation; StrongBranchEvals counts reliability-branching trials;
	// WarmStartReuses counts node LPs solved from the parent's factored
	// basis (all ILP backend).
	CutsAdded         int
	CutRoundsRoot     int
	StrongBranchEvals int
	WarmStartReuses   int
	// StopReason says why the ILP search ended early (ilp.StopNone when
	// the tree was exhausted).
	StopReason ilp.StopReason
	// BestBound/Gap carry the solver's final proof state: Gap is 0 when
	// optimality was proven, positive for time/node-limited anytime
	// placements (the paper's Table 2 asterisk cells), and -1 when
	// undefined. BestBound is meaningful only when Gap >= 0.
	BestBound float64
	Gap       float64
	// LastIncumbentAtNode is the B&B node id that produced the final
	// incumbent (0 when none); RootGap is the gap the tree search had to
	// close from the post-cut root relaxation (-1 undefined). Both ILP
	// backend.
	LastIncumbentAtNode int
	RootGap             float64
}

// Placement is the result of solving a placement problem.
type Placement struct {
	Status Status
	// TotalRules is the number of TCAM slots used network-wide, with
	// merged rules counted once per switch.
	TotalRules int
	// Objective is the solver's objective value (equals TotalRules for
	// ObjTotalRules).
	Objective float64
	// Assign[pi][ri] lists the switches rule ri of policy pi occupies.
	// Policies and rules are indexed as in the (possibly redundancy-
	// reduced) Policies slice below.
	Assign [][][]topology.SwitchID
	// Policies are the policies actually placed (after optional
	// redundancy removal), parallel to Assign.
	Policies []*policy.Policy
	// Groups are the merge groups considered; MergedAt[g] holds the
	// switches where group g was installed as a single shared rule.
	Groups   []deps.MergeGroup
	MergedAt [][]topology.SwitchID
	// MaxLoad is the maximum per-switch utilization fraction, reported
	// when ObjMinMaxLoad is the objective.
	MaxLoad float64
	Stats   Stats
}

// RuleCountAt returns the TCAM slots used at one switch.
func (pl *Placement) RuleCountAt(sw topology.SwitchID) int {
	count := 0
	for pi := range pl.Assign {
		for ri := range pl.Assign[pi] {
			for _, s := range pl.Assign[pi][ri] {
				if s == sw {
					count++
				}
			}
		}
	}
	// Merged rules: members were counted individually above; a merged
	// installation collapses M member slots into 1.
	for g, sws := range pl.MergedAt {
		for _, s := range sws {
			if s == sw {
				count -= pl.membersAt(g, sw) - 1
			}
		}
	}
	return count
}

// membersAt counts group g's members placed at switch sw.
func (pl *Placement) membersAt(g int, sw topology.SwitchID) int {
	n := 0
	for _, m := range pl.Groups[g].Members {
		for _, s := range pl.Assign[m.Policy][m.Rule] {
			if s == sw {
				n++
			}
		}
	}
	return n
}
