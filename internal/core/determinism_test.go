package core

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"rulefit/internal/deps"
	"rulefit/internal/policy"
	"rulefit/internal/routing"
	"rulefit/internal/topology"
)

// determinismProblem builds a fresh mid-size instance on every call:
// fat-tree routing, generated policies, and a shared blacklist so that
// merging (and dependency cycle breaking) is exercised. Rebuilding from
// scratch gives every internal map a fresh layout, so any iteration-order
// dependence shows up as run-to-run drift.
func determinismProblem(t *testing.T) *Problem {
	t.Helper()
	topo, err := topology.FatTree(4, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := routing.SpreadPairs(topo, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := routing.BuildRouting(topo, pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	blacklist := policy.GenerateBlacklist(4, 7)
	var pols []*policy.Policy
	for _, in := range rt.Ingresses() {
		p := policy.Generate(int(in), policy.GenConfig{NumRules: 8, Seed: 11})
		pols = append(pols, policy.WithBlacklist(p, blacklist))
	}
	return &Problem{Network: topo, Routing: rt, Policies: pols}
}

// cycleProblem builds a fresh instance whose merge groups form a
// precedence cycle: a shared drop and a shared (overlapping) permit
// appear in opposite priority orders across four policies, so
// deps.BreakCycles must evict a member — and the choice of witness
// policy is exactly the kind of decision map iteration used to leak into.
func cycleProblem(t *testing.T) *Problem {
	t.Helper()
	topo := topology.NewNetwork()
	const shared = topology.SwitchID(5)
	if err := topo.AddSwitch(topology.Switch{ID: shared, Capacity: 10}); err != nil {
		t.Fatal(err)
	}
	var pairs []routing.PortPair
	for i := 1; i <= 4; i++ {
		if err := topo.AddSwitch(topology.Switch{ID: topology.SwitchID(i), Capacity: 10}); err != nil {
			t.Fatal(err)
		}
		if err := topo.AddLink(topology.SwitchID(i), shared); err != nil {
			t.Fatal(err)
		}
		if err := topo.AddPort(topology.ExternalPort{ID: topology.PortID(i), Switch: topology.SwitchID(i), Ingress: true}); err != nil {
			t.Fatal(err)
		}
		pairs = append(pairs, routing.PortPair{In: topology.PortID(i), Out: 9})
	}
	if err := topo.AddPort(topology.ExternalPort{ID: 9, Switch: shared, Egress: true}); err != nil {
		t.Fatal(err)
	}
	rt, err := routing.BuildRouting(topo, pairs, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Three shared rules per policy. The trailing drop keeps the permit
	// placeable (a permit is only installed when it protects traffic
	// from a lower-priority drop), and the drop/permit order flips
	// between the two policy shapes, giving the merge groups of the
	// drop and the permit opposing precedence edges — a cycle.
	dropFirst := []policy.Rule{
		mk("1010****", policy.Drop, 3),
		mk("10******", policy.Permit, 2),
		mk("100*****", policy.Drop, 1),
	}
	permitFirst := []policy.Rule{
		mk("10******", policy.Permit, 3),
		mk("1010****", policy.Drop, 2),
		mk("100*****", policy.Drop, 1),
	}
	return &Problem{Network: topo, Routing: rt, Policies: []*policy.Policy{
		policy.MustNew(1, dropFirst),
		policy.MustNew(2, permitFirst),
		policy.MustNew(3, dropFirst),
		policy.MustNew(4, permitFirst),
	}}
}

// determinismFixtures names every fresh-build problem the determinism
// tests cover.
func determinismFixtures() []struct {
	name  string
	build func(*testing.T) *Problem
} {
	return []struct {
		name  string
		build func(*testing.T) *Problem
	}{
		{"fattree", determinismProblem},
		{"mergecycle", cycleProblem},
	}
}

// TestILPModelDeterministic encodes the same problem twice from scratch
// and requires byte-identical LP serializations: variable order,
// constraint order, and coefficients must not depend on map iteration.
func TestILPModelDeterministic(t *testing.T) {
	for _, fx := range determinismFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			opts := Options{Merging: true}.withDefaults()
			lp := func() ([]byte, []deps.DummyRule) {
				enc, err := buildEncoding(fx.build(t), opts, nil)
				if err != nil {
					t.Fatal(err)
				}
				m, _, _ := buildILPModel(enc, opts)
				var buf bytes.Buffer
				if err := m.WriteLP(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes(), enc.dummies
			}
			a, da := lp()
			b, db := lp()
			// The dummy-rule log is encoding state too: its order leaked
			// map iteration before deps.mergeOrderEdges sorted witnesses.
			if !reflect.DeepEqual(da, db) {
				t.Errorf("dummy rules differ between identical runs: %v vs %v", da, db)
			}
			if !bytes.Equal(a, b) {
				la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
				for i := 0; i < len(la) && i < len(lb); i++ {
					if !bytes.Equal(la[i], lb[i]) {
						t.Fatalf("LP output differs at line %d:\n  run 1: %s\n  run 2: %s", i+1, la[i], lb[i])
					}
				}
				t.Fatalf("LP outputs differ in length: %d vs %d lines", len(la), len(lb))
			}
		})
	}
}

// TestPlaceDeterministic solves the same instance twice from scratch and
// requires identical placements, not merely equally good ones.
func TestPlaceDeterministic(t *testing.T) {
	for _, fx := range determinismFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			opts := Options{Merging: true, TimeLimit: 60 * time.Second}
			run := func() *Placement {
				pl, err := Place(fx.build(t), opts)
				if err != nil {
					t.Fatal(err)
				}
				if pl.Status != StatusOptimal && pl.Status != StatusFeasible {
					t.Fatalf("status = %v", pl.Status)
				}
				return pl
			}
			a, b := run(), run()
			if a.Status != b.Status || a.TotalRules != b.TotalRules || a.Objective != b.Objective {
				t.Fatalf("summary differs: (%v, %d rules, obj %g) vs (%v, %d rules, obj %g)",
					a.Status, a.TotalRules, a.Objective, b.Status, b.TotalRules, b.Objective)
			}
			if !reflect.DeepEqual(a.Assign, b.Assign) {
				t.Error("rule assignments differ between identical runs")
			}
			if !reflect.DeepEqual(a.MergedAt, b.MergedAt) {
				t.Error("merge placements differ between identical runs")
			}
		})
	}
}

// TestPlaceDeterministicAcrossWorkers solves each fixture with
// Workers ∈ {1, 2, 8} and requires the identical placement — not merely
// an equally good one. This is the PR's headline guarantee: branch &
// bound parallelism must change wall-clock time only.
func TestPlaceDeterministicAcrossWorkers(t *testing.T) {
	for _, fx := range determinismFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			var base *Placement
			for _, w := range []int{1, 2, 8} {
				opts := Options{Merging: true, TimeLimit: 60 * time.Second, Workers: w}
				pl, err := Place(fx.build(t), opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if pl.Status != StatusOptimal && pl.Status != StatusFeasible {
					t.Fatalf("workers=%d: status = %v", w, pl.Status)
				}
				if pl.Stats.Workers != w {
					t.Errorf("workers=%d: Stats.Workers = %d", w, pl.Stats.Workers)
				}
				if base == nil {
					base = pl
					continue
				}
				if pl.Status != base.Status || pl.TotalRules != base.TotalRules || pl.Objective != base.Objective {
					t.Fatalf("workers=%d summary differs from workers=1: (%v, %d rules, obj %g) vs (%v, %d rules, obj %g)",
						w, pl.Status, pl.TotalRules, pl.Objective, base.Status, base.TotalRules, base.Objective)
				}
				if !reflect.DeepEqual(pl.Assign, base.Assign) {
					t.Errorf("workers=%d: rule assignments differ from workers=1", w)
				}
				if !reflect.DeepEqual(pl.MergedAt, base.MergedAt) {
					t.Errorf("workers=%d: merge placements differ from workers=1", w)
				}
			}
		})
	}
}
