package core

import (
	"rulefit/internal/topology"
)

// ReplicateEverywhere is the baseline the paper contrasts against in §V:
// techniques that "place all rules in all paths and thus end up placing
// p x r rules in the network" [Kang et al.]. Each path receives a full
// copy of its ingress policy's placed rules on the path's last switch,
// so distinct paths duplicate rules freely. Capacity constraints are
// ignored — the baseline exists to quantify rule-count overhead; callers
// can audit violations through verify.Capacities.
func ReplicateEverywhere(prob *Problem, opts Options) (*Placement, error) {
	opts = opts.withDefaults()
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	enc, err := buildEncoding(prob, opts, nil)
	if err != nil {
		return nil, err
	}
	pl := &Placement{Policies: enc.policies, Status: StatusFeasible}
	pl.Assign = make([][][]topology.SwitchID, len(enc.policies))
	for pi, pol := range enc.policies {
		pl.Assign[pi] = make([][]topology.SwitchID, len(pol.Rules))
	}
	for pi, pol := range enc.policies {
		ps := prob.Routing.Sets[topology.PortID(pol.Ingress)]
		g := enc.graphs[pi]
		placedRules := g.PlacedRules()
		for _, path := range ps.Paths {
			sw := path.Switches[len(path.Switches)-1]
			for _, ri := range placedRules {
				if containsSwitch(pl.Assign[pi][ri], sw) {
					continue
				}
				pl.Assign[pi][ri] = append(pl.Assign[pi][ri], sw)
				pl.TotalRules++
			}
		}
	}
	pl.Objective = float64(pl.TotalRules)
	sortAssign(pl)
	return pl, nil
}

// containsSwitch reports membership in a small slice.
func containsSwitch(sws []topology.SwitchID, sw topology.SwitchID) bool {
	for _, s := range sws {
		if s == sw {
			return true
		}
	}
	return false
}

// PXRBound returns the p x r figure the paper quotes for naive
// replication: total paths times rules per policy, summed per ingress.
func PXRBound(prob *Problem) int {
	total := 0
	for _, pol := range prob.Policies {
		ps, ok := prob.Routing.Sets[topology.PortID(pol.Ingress)]
		if !ok {
			continue
		}
		total += len(ps.Paths) * len(pol.Rules)
	}
	return total
}
