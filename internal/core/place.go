package core

import (
	"fmt"
	"time"

	"rulefit/internal/ilp"
	"rulefit/internal/obs"
	"rulefit/internal/sat"
	"rulefit/internal/topology"
)

// Place solves the rule placement problem per the paper's flow (Fig. 4):
// optional redundancy removal, dependency graph construction, mergeable
// rule detection, encoding, solving, and solution extraction. Tag
// assignment happens when tables are compiled (BuildTables).
func Place(prob *Problem, opts Options) (*Placement, error) {
	opts = opts.withDefaults()
	place := opts.Trace.Span("place")
	defer place.End()
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	// Per-policy decomposition: when policies couple only through the
	// capacity rows, solve them independently and stitch — provably
	// optimal when the stitched optima respect every capacity, and the
	// basis of the stateful delta path's per-policy fragment reuse.
	// Deterministic: whether it applies and whether the stitch is
	// accepted are pure functions of (prob, opts).
	if decomposable(prob, opts) {
		pl, ok, err := placeDecomposed(prob, opts, place)
		if err != nil {
			return nil, err
		}
		if ok {
			return pl, nil
		}
	}
	encSp := place.Child("encode")
	enc, err := buildEncoding(prob, opts, encSp)
	if err != nil {
		encSp.End()
		return nil, err
	}
	if encSp != nil {
		encSp.SetCount("vars", int64(len(enc.vars)))
		encSp.SetCount("constraints", int64(enc.numConstraints()))
	}
	encSp.End()
	if enc.infeasibleReason != "" {
		// The encoding itself proved the instance unsatisfiable (e.g. a
		// monitoring constraint leaves a DROP rule nowhere to go).
		return &Placement{
			Status:   StatusInfeasible,
			Policies: enc.policies,
			Groups:   enc.groups,
			Stats:    Stats{Backend: opts.Backend, Gap: -1, RootGap: -1},
		}, nil
	}
	if opts.Objective == ObjMinMaxLoad && opts.Backend != BackendILP && !opts.SatisfyOnly {
		return nil, fmt.Errorf("core: %v requires the ILP backend", opts.Objective)
	}
	start := time.Now()
	var pl *Placement
	switch opts.Backend {
	case BackendILP:
		pl, err = solveILP(enc, opts, place)
	case BackendSAT:
		pl, err = solveSAT(enc, opts, place)
	default:
		return nil, fmt.Errorf("core: unknown backend %v", opts.Backend)
	}
	if err != nil {
		return nil, err
	}
	pl.Stats.Backend = opts.Backend
	pl.Stats.Variables = len(enc.vars)
	pl.Stats.Constraints = enc.numConstraints()
	pl.Stats.SolveTime = time.Since(start)
	return pl, nil
}

// solveILP encodes to the MILP solver (Eqs. 1–5) and extracts the result.
func solveILP(enc *encoding, opts Options, span *obs.Span) (*Placement, error) {
	buildSp := span.Child("model_build")
	m, ids, zVar := buildILPModel(enc, opts)
	if buildSp != nil {
		buildSp.SetCount("vars", int64(m.NumVars()))
		buildSp.SetCount("constraints", int64(m.NumConstraints()))
	}
	buildSp.End()
	solveSp := span.Child("solve")
	sol, err := ilp.Solve(m, ilp.Options{
		TimeLimit:       opts.TimeLimit,
		DisablePresolve: opts.DisablePresolve,
		DisableCuts:     opts.DisableCuts,
		Workers:         opts.Workers,
		Sink:            opts.SolverSink,
		TraceID:         opts.traceID(),
		Span:            solveSp,
		Progress:        opts.Progress,
		ProfileLabels:   opts.ProfileLabels,
	})
	if err != nil {
		solveSp.End()
		return nil, err
	}
	solveSp.SetCount("nodes", int64(sol.Stats.Nodes))
	solveSp.SetCount("iters", int64(sol.Stats.SimplexIters))
	solveSp.End()
	pl := &Placement{Policies: enc.policies, Groups: enc.groups}
	pl.Stats.SimplexIters = sol.Stats.SimplexIters
	pl.Stats.BnBNodes = sol.Stats.Nodes
	pl.Stats.Workers = sol.Stats.Workers
	pl.Stats.LURefactors = sol.Stats.LURefactors
	pl.Stats.Branched = sol.Stats.Branched
	pl.Stats.PrunedBound = sol.Stats.PrunedBound
	pl.Stats.PrunedInfeasible = sol.Stats.PrunedInfeasible
	pl.Stats.IntegralLeaves = sol.Stats.IntegralLeaves
	pl.Stats.LostSubtrees = sol.Stats.LostSubtrees
	pl.Stats.PrunedStale = sol.Stats.PrunedStale
	pl.Stats.Incumbents = sol.Stats.Incumbents
	pl.Stats.CutsAdded = sol.Stats.CutsAdded
	pl.Stats.CutRoundsRoot = sol.Stats.CutRoundsRoot
	pl.Stats.StrongBranchEvals = sol.Stats.StrongBranchEvals
	pl.Stats.WarmStartReuses = sol.Stats.WarmStartReuses
	pl.Stats.StopReason = sol.Stats.StopReason
	pl.Stats.BestBound = sol.Stats.BestBound
	pl.Stats.Gap = sol.Stats.Gap
	pl.Stats.LastIncumbentAtNode = sol.Stats.LastIncumbentAtNode
	pl.Stats.RootGap = sol.Stats.RootGap
	switch sol.Status {
	case ilp.Optimal:
		pl.Status = StatusOptimal
	case ilp.Feasible:
		pl.Status = StatusFeasible
	case ilp.Infeasible:
		pl.Status = StatusInfeasible
		return pl, nil
	default:
		pl.Status = StatusLimit
		return pl, nil
	}
	extractSp := span.Child("extract")
	assignment := func(id int) bool { return sol.Values[ids[id]] > 0.5 }
	extract(enc, pl, assignment)
	extractSp.End()
	pl.Objective = sol.Objective
	if zVar >= 0 {
		pl.MaxLoad = sol.Values[zVar]
	}
	return pl, nil
}

// buildILPModel translates an encoding into the MILP model. It returns
// the model, the ilp variable index for each encoding variable, and the
// index of the max-load variable z (-1 when absent). The construction is
// deterministic: identical encodings yield models whose LP serialization
// is byte-identical (see TestILPModelDeterministic).
func buildILPModel(enc *encoding, opts Options) (m *ilp.Model, ids []int, zVar int) {
	m = ilp.NewModel()
	weights := enc.objectiveWeights()
	ids = make([]int, len(enc.vars))
	for id := range enc.vars {
		obj := float64(weights[id])
		if opts.SatisfyOnly {
			obj = 0
		}
		ids[id] = m.AddBinary(fmt.Sprintf("v%d", id), obj)
	}
	// ObjMinMaxLoad: a continuous z dominating every switch's TCAM
	// utilization fraction, minimized lexicographically above the rule
	// count (the tiebreak keeps placements small within the same load).
	zVar = -1
	if opts.Objective == ObjMinMaxLoad && !opts.SatisfyOnly {
		zVar = m.AddVar("z", 0, 1, float64(len(enc.vars)+1))
		for _, row := range enc.capRows {
			if row.cap <= 0 {
				continue
			}
			terms := make([]ilp.Term, 0, len(row.ruleVars)+len(row.merged)+1)
			for _, v := range row.ruleVars {
				terms = append(terms, ilp.Term{Var: ids[v], Coef: 1})
			}
			for _, mt := range row.merged {
				terms = append(terms, ilp.Term{Var: ids[mt.mv], Coef: -float64(mt.savings)})
			}
			terms = append(terms, ilp.Term{Var: zVar, Coef: -float64(row.cap)})
			m.AddConstraint(terms, ilp.LE, 0, "load")
		}
	}
	// Eq. 1: v_w <= v_u.
	for _, imp := range enc.imps {
		m.AddConstraint([]ilp.Term{{Var: ids[imp[0]], Coef: 1}, {Var: ids[imp[1]], Coef: -1}}, ilp.LE, 0, "dep")
	}
	// Eq. 2 (per path): sum >= 1.
	for _, cover := range enc.covers {
		terms := make([]ilp.Term, len(cover))
		for i, v := range cover {
			terms[i] = ilp.Term{Var: ids[v], Coef: 1}
		}
		m.AddConstraint(terms, ilp.GE, 1, "path")
	}
	// Eqs. 4–5: merged variable linking. Eq. 4 is used as printed; the
	// paper's aggregated Eq. 5 (mv <= sum/M) is replaced by the
	// per-member form mv <= v_i, which has the same 0/1 solutions but a
	// much tighter LP relaxation (branch & bound proves merged optima
	// instead of timing out on a weak bound).
	for _, mc := range enc.merges {
		bigM := float64(len(mc.members))
		// mv >= sum - (M-1)  <=>  sum - mv <= M-1.
		terms := make([]ilp.Term, 0, len(mc.members)+1)
		for _, v := range mc.members {
			terms = append(terms, ilp.Term{Var: ids[v], Coef: 1})
		}
		terms = append(terms, ilp.Term{Var: ids[mc.mv], Coef: -1})
		m.AddConstraint(terms, ilp.LE, bigM-1, "merge-lb")
		for _, v := range mc.members {
			m.AddConstraint([]ilp.Term{{Var: ids[mc.mv], Coef: 1}, {Var: ids[v], Coef: -1}}, ilp.LE, 0, "merge-ub")
		}
	}
	// Eq. 3: capacities with merged savings.
	for _, row := range enc.capRows {
		terms := make([]ilp.Term, 0, len(row.ruleVars)+len(row.merged))
		for _, v := range row.ruleVars {
			terms = append(terms, ilp.Term{Var: ids[v], Coef: 1})
		}
		for _, mt := range row.merged {
			terms = append(terms, ilp.Term{Var: ids[mt.mv], Coef: -float64(mt.savings)})
		}
		m.AddConstraint(terms, ilp.LE, float64(row.cap), "cap")
	}
	return m, ids, zVar
}

// solveSAT encodes to the CDCL/PB solver (Eqs. 6–8) and extracts.
func solveSAT(enc *encoding, opts Options, span *obs.Span) (*Placement, error) {
	solveSp := span.Child("solve")
	defer solveSp.End()
	s := sat.NewSolver()
	if opts.TimeLimit > 0 {
		s.SetDeadline(time.Now().Add(opts.TimeLimit))
	}
	ids := make([]int, len(enc.vars))
	for id := range enc.vars {
		ids[id] = s.NewVar()
	}
	ok := true
	// Eq. 6: v_w -> v_u.
	for _, imp := range enc.imps {
		ok = ok && s.AddClause(-ids[imp[0]], ids[imp[1]])
	}
	// Eq. 7: coverage.
	for _, cover := range enc.covers {
		lits := make([]int, len(cover))
		for i, v := range cover {
			lits[i] = ids[v]
		}
		ok = ok && s.AddClause(lits...)
	}
	// Eq. 8: mv <-> AND(members).
	for _, mc := range enc.merges {
		long := make([]int, 0, len(mc.members)+1)
		long = append(long, ids[mc.mv])
		for _, v := range mc.members {
			ok = ok && s.AddClause(-ids[mc.mv], ids[v])
			long = append(long, -ids[v])
		}
		ok = ok && s.AddClause(long...)
	}
	// Eq. 3 as PB rows. Negative merged coefficients are rewritten over
	// negated literals: -(s)*mv == s*(1-mv) - s.
	for _, row := range enc.capRows {
		lits := make([]int, 0, len(row.ruleVars)+len(row.merged))
		ws := make([]int64, 0, cap(lits))
		bound := int64(row.cap)
		for _, v := range row.ruleVars {
			lits = append(lits, ids[v])
			ws = append(ws, 1)
		}
		for _, mt := range row.merged {
			lits = append(lits, -ids[mt.mv])
			ws = append(ws, int64(mt.savings))
			bound += int64(mt.savings)
		}
		ok = ok && s.AddPB(lits, ws, bound)
	}

	pl := &Placement{Policies: enc.policies, Groups: enc.groups}
	pl.Stats.Gap = -1 // the SAT backend carries no LP bound
	pl.Stats.RootGap = -1
	if !ok {
		pl.Status = StatusInfeasible
		return pl, nil
	}

	if opts.SatisfyOnly {
		st := s.Solve()
		pl.Stats.SATConflicts = s.Conflicts
		pl.Stats.SATDecisions = s.Decisions
		switch st {
		case sat.Sat:
			pl.Status = StatusFeasible
			extract(enc, pl, func(id int) bool { return s.Value(ids[id]) })
			pl.Objective = float64(pl.TotalRules)
		case sat.Unsat:
			pl.Status = StatusInfeasible
		default:
			pl.Status = StatusLimit
		}
		return pl, nil
	}

	// Optimization: objective weights over literals; negative merged
	// weights are rewritten over negated literals with a constant shift.
	weights := enc.objectiveWeights()
	var lits []int
	var ws []int64
	var shift int64
	for id, w := range weights {
		switch {
		case w > 0:
			lits = append(lits, ids[id])
			ws = append(ws, w)
		case w < 0:
			lits = append(lits, -ids[id])
			ws = append(ws, -w)
			shift += w // objective = sum(true-lit weights) + shift
		}
	}
	best, model, st := s.Minimize(lits, ws)
	pl.Stats.SATConflicts = s.Conflicts
	pl.Stats.SATDecisions = s.Decisions
	switch st {
	case sat.Sat:
		pl.Status = StatusOptimal
	case sat.Unknown:
		if model == nil {
			pl.Status = StatusLimit
			return pl, nil
		}
		pl.Status = StatusFeasible
	default:
		pl.Status = StatusInfeasible
		return pl, nil
	}
	extract(enc, pl, func(id int) bool { return model[ids[id]] })
	pl.Objective = float64(best + shift)
	return pl, nil
}

// extract converts a variable assignment into the Placement structures
// and computes the TCAM slot total.
func extract(enc *encoding, pl *Placement, val func(int) bool) {
	pl.Assign = make([][][]topology.SwitchID, len(enc.policies))
	for pi, pol := range enc.policies {
		pl.Assign[pi] = make([][]topology.SwitchID, len(pol.Rules))
	}
	slots := 0
	for id, v := range enc.vars {
		if !val(id) {
			continue
		}
		switch v.kind {
		case varRule:
			pl.Assign[v.pol][v.rule] = append(pl.Assign[v.pol][v.rule], v.sw)
			slots++
		}
	}
	pl.MergedAt = make([][]topology.SwitchID, len(enc.groups))
	for _, mc := range enc.merges {
		if !val(mc.mv) {
			continue
		}
		v := enc.vars[mc.mv]
		pl.MergedAt[v.group] = append(pl.MergedAt[v.group], v.sw)
		slots -= len(mc.members) - 1
	}
	pl.TotalRules = slots
}
