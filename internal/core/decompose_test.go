package core

import (
	"reflect"
	"strings"
	"testing"

	"rulefit/internal/policy"
	"rulefit/internal/routing"
	"rulefit/internal/topology"
)

// jointSolve runs the non-decomposed ILP path directly (internal
// access), as Place would without the decomposition fast path.
func jointSolve(t *testing.T, prob *Problem, opts Options) *Placement {
	t.Helper()
	opts = opts.withDefaults()
	enc, err := buildEncoding(prob, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := solveILP(enc, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestDecomposedMatchesJoint: the decomposed solve must prove the same
// optimum as the joint MILP — the soundness claim behind the stitch
// acceptance rule — and the stitched placement must respect every
// capacity.
func TestDecomposedMatchesJoint(t *testing.T) {
	prob := determinismProblem(t)
	opts := Options{} // no merging, ObjTotalRules: the decomposable regime
	if !decomposable(prob, opts.withDefaults()) {
		t.Fatal("fixture unexpectedly not decomposable")
	}
	pl, err := Place(prob, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Status != StatusOptimal {
		t.Fatalf("decomposed status %v", pl.Status)
	}
	joint := jointSolve(t, prob, opts)
	if joint.Status != StatusOptimal {
		t.Fatalf("joint status %v", joint.Status)
	}
	if pl.Objective != joint.Objective || pl.TotalRules != joint.TotalRules {
		t.Errorf("decomposed (obj %g, %d rules) != joint (obj %g, %d rules)",
			pl.Objective, pl.TotalRules, joint.Objective, joint.TotalRules)
	}
	for _, sw := range prob.Network.Switches() {
		if used := pl.RuleCountAt(sw.ID); used > sw.Capacity {
			t.Errorf("switch %d over capacity: %d > %d", sw.ID, used, sw.Capacity)
		}
	}
}

// sharedBottleneckProblem builds an instance whose per-policy optima
// are guaranteed to collide on one switch: three identical one-drop
// policies whose only path is [A, B] with cap(A) = cap(B) = 2. Each
// independent solve places its single drop on the same switch (the
// subproblems are isomorphic, the solver deterministic), so the stitch
// always violates that switch's capacity and the joint fallback must
// spread 2+1 — feasible, optimal at 3.
func sharedBottleneckProblem(t *testing.T) *Problem {
	t.Helper()
	topo := topology.NewNetwork()
	const a, b = topology.SwitchID(1), topology.SwitchID(2)
	for _, sw := range []topology.Switch{{ID: a, Capacity: 2}, {ID: b, Capacity: 2}} {
		if err := topo.AddSwitch(sw); err != nil {
			t.Fatal(err)
		}
	}
	if err := topo.AddLink(a, b); err != nil {
		t.Fatal(err)
	}
	rt := routing.NewRouting()
	var pols []*policy.Policy
	for i := 1; i <= 3; i++ {
		in := topology.PortID(i)
		if err := topo.AddPort(topology.ExternalPort{ID: in, Switch: a, Ingress: true}); err != nil {
			t.Fatal(err)
		}
		rt.Add(routing.Path{Ingress: in, Egress: 9, Switches: []topology.SwitchID{a, b}})
		pols = append(pols, policy.MustNew(int(in), []policy.Rule{mk("1*******", policy.Drop, 1)}))
	}
	if err := topo.AddPort(topology.ExternalPort{ID: 9, Switch: b, Egress: true}); err != nil {
		t.Fatal(err)
	}
	return &Problem{Network: topo, Routing: rt, Policies: pols}
}

// TestDecomposedFallbackOnSharedCapacity drives the stitch-rejection
// branch: independent optima overload a shared switch, so Place must
// fall back to the joint solve and return the capacity-respecting
// joint optimum.
func TestDecomposedFallbackOnSharedCapacity(t *testing.T) {
	prob := sharedBottleneckProblem(t)
	pl, err := Place(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Status != StatusOptimal || pl.Objective != 3 {
		t.Fatalf("status %v obj %g, want optimal obj 3", pl.Status, pl.Objective)
	}
	for _, sw := range prob.Network.Switches() {
		if used := pl.RuleCountAt(sw.ID); used > sw.Capacity {
			t.Errorf("switch %d over capacity: %d > %d (stitch accepted a violating placement)",
				sw.ID, used, sw.Capacity)
		}
	}
}

// TestDecomposedSolutionCacheByteIdentity is the contract the stateful
// delta path rests on: re-solving a lightly-edited instance with a
// warmed SolutionCache must reproduce the cold decomposed answer byte
// for byte — assignments AND the deterministic solver-effort stats the
// daemon serializes.
func TestDecomposedSolutionCacheByteIdentity(t *testing.T) {
	build := func() *Problem { return determinismProblem(t) }
	edit := func(prob *Problem) {
		pol := prob.Policies[0]
		rules := append([]policy.Rule(nil), pol.Rules...)
		maxPrio := 0
		for _, r := range rules {
			if r.Priority > maxPrio {
				maxPrio = r.Priority
			}
		}
		pattern := []byte(strings.Repeat("*", pol.Width()))
		copy(pattern, "110101")
		rules = append(rules, mk(string(pattern), policy.Drop, maxPrio+1))
		prob.Policies[0] = policy.MustNew(pol.Ingress, rules)
	}

	// Warm run: solve the base instance to fill the cache, then the
	// edited instance (one policy changed, the rest served from cache).
	cache := NewSolutionCache()
	base := build()
	if _, err := Place(base, Options{SolutionCache: cache}); err != nil {
		t.Fatal(err)
	}
	edited := build()
	edit(edited)
	warm, err := Place(edited, Options{SolutionCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if want := int64(len(edited.Policies) - 1); st.Hits != want {
		t.Errorf("warm solve hit %d fragments, want %d (misses %d)", st.Hits, want, st.Misses)
	}

	// Cold run of the identical edited instance, no cache.
	coldProb := build()
	edit(coldProb)
	cold, err := Place(coldProb, Options{})
	if err != nil {
		t.Fatal(err)
	}

	warm.Stats.SolveTime, cold.Stats.SolveTime = 0, 0
	if !reflect.DeepEqual(warm, cold) {
		t.Errorf("warm and cold decomposed placements differ:\nwarm: %+v\ncold: %+v", warm, cold)
	}
}

// TestDecomposableGate pins the regimes the decomposition must stay
// out of: merging, non-default objectives, satisfy-only, monitors,
// single-policy instances, and the SAT backend all disqualify.
func TestDecomposableGate(t *testing.T) {
	prob := determinismProblem(t)
	base := Options{}.withDefaults()
	if !decomposable(prob, base) {
		t.Error("default multi-policy instance should be decomposable")
	}
	for name, opts := range map[string]Options{
		"merging":     {Merging: true},
		"minmax":      {Objective: ObjMinMaxLoad},
		"traffic":     {Objective: ObjTraffic},
		"satisfyonly": {SatisfyOnly: true},
		"sat":         {Backend: BackendSAT},
		"monitors":    {Monitors: []Monitor{{Switch: 1}}},
	} {
		if decomposable(prob, opts.withDefaults()) {
			t.Errorf("%s: should not be decomposable", name)
		}
	}
	single := &Problem{Network: prob.Network, Routing: prob.Routing, Policies: prob.Policies[:1]}
	if decomposable(single, base) {
		t.Error("single-policy instance should not be decomposable")
	}
}
