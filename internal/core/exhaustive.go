package core

import (
	"errors"
	"fmt"
	"math/bits"

	"rulefit/internal/ilp"
)

// This file provides the bottom of the differential-testing oracle
// hierarchy (see DESIGN.md §10): a brute-force placement solver that
// enumerates every 0/1 assignment of the encoding's variables. It shares
// the encoding with the ILP and SAT backends — so it validates the
// solvers, not the encoding; the encoding itself is validated end-to-end
// by the verify package's data-plane semantics checks.

// ErrExhaustiveTooLarge is returned by PlaceExhaustive when the instance
// has more variables than the enumeration budget allows.
var ErrExhaustiveTooLarge = errors.New("core: instance too large for exhaustive enumeration")

// DefaultExhaustiveVars is the default variable budget for
// PlaceExhaustive (2^20 assignments).
const DefaultExhaustiveVars = 20

// PlaceExhaustive solves the placement problem by enumerating all
// variable assignments of the encoding, for use as a differential-test
// oracle on tiny instances. It supports the linear objectives
// (ObjTotalRules, ObjTraffic, ObjWeightedSwitches); ObjMinMaxLoad is
// rejected. maxVars bounds the enumeration (<= 0 uses
// DefaultExhaustiveVars, capped at 30); instances with more variables
// return ErrExhaustiveTooLarge.
//
// The result is deterministic: among equal-objective optima the
// lexicographically smallest assignment (in encoding variable order,
// variable 0 least significant) wins.
func PlaceExhaustive(prob *Problem, opts Options, maxVars int) (*Placement, error) {
	opts = opts.withDefaults()
	if opts.Objective == ObjMinMaxLoad {
		return nil, fmt.Errorf("core: %v is not supported by the exhaustive oracle", opts.Objective)
	}
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	enc, err := buildEncoding(prob, opts, nil)
	if err != nil {
		return nil, err
	}
	if enc.infeasibleReason != "" {
		return &Placement{
			Status:   StatusInfeasible,
			Policies: enc.policies,
			Groups:   enc.groups,
			Stats:    Stats{Backend: opts.Backend, Gap: -1, RootGap: -1},
		}, nil
	}
	if maxVars <= 0 {
		maxVars = DefaultExhaustiveVars
	}
	if maxVars > 30 {
		maxVars = 30
	}
	n := len(enc.vars)
	if n > maxVars {
		return nil, fmt.Errorf("%w: %d variables > budget %d", ErrExhaustiveTooLarge, n, maxVars)
	}

	// Compile the constraint system into bitmask form so the inner loop
	// is branch-light: variable id i is bit i of the assignment word.
	type mergeMask struct {
		mvBit   uint64
		members uint64
	}
	type capMask struct {
		ruleMask uint64
		merged   []mergeTerm // savings applied when bit mv is set
		cap      int
	}
	coverMasks := make([]uint64, len(enc.covers))
	for i, cover := range enc.covers {
		for _, v := range cover {
			coverMasks[i] |= 1 << uint(v)
		}
	}
	mergeMasks := make([]mergeMask, len(enc.merges))
	for i, mc := range enc.merges {
		mergeMasks[i].mvBit = 1 << uint(mc.mv)
		for _, v := range mc.members {
			mergeMasks[i].members |= 1 << uint(v)
		}
	}
	capMasks := make([]capMask, len(enc.capRows))
	for i, row := range enc.capRows {
		cm := capMask{merged: row.merged, cap: row.cap}
		for _, v := range row.ruleVars {
			cm.ruleMask |= 1 << uint(v)
		}
		capMasks[i] = cm
	}
	weights := enc.objectiveWeights()

	feasible := func(m uint64) bool {
		for _, imp := range enc.imps {
			// v_w -> v_u (Eq. 1).
			if m>>uint(imp[0])&1 == 1 && m>>uint(imp[1])&1 == 0 {
				return false
			}
		}
		for _, cov := range coverMasks {
			// At least one candidate per relevant path (Eq. 2).
			if m&cov == 0 {
				return false
			}
		}
		for _, mm := range mergeMasks {
			// mv <-> AND(members) (Eqs. 4–5 / Eq. 8).
			and := m&mm.members == mm.members
			if (m&mm.mvBit != 0) != and {
				return false
			}
		}
		for _, cm := range capMasks {
			used := bits.OnesCount64(m & cm.ruleMask)
			for _, mt := range cm.merged {
				if m>>uint(mt.mv)&1 == 1 {
					used -= mt.savings
				}
			}
			if used > cm.cap {
				return false
			}
		}
		return true
	}

	var bestMask uint64
	var bestObj int64
	found := false
	for m := uint64(0); m < 1<<uint(n); m++ {
		if !feasible(m) {
			continue
		}
		var obj int64
		for rest := m; rest != 0; rest &= rest - 1 {
			obj += weights[bits.TrailingZeros64(rest)]
		}
		if !found || obj < bestObj {
			found, bestMask, bestObj = true, m, obj
		}
	}

	pl := &Placement{Policies: enc.policies, Groups: enc.groups}
	pl.Stats.Backend = opts.Backend
	pl.Stats.Variables = len(enc.vars)
	pl.Stats.Constraints = enc.numConstraints()
	if !found {
		pl.Status = StatusInfeasible
		pl.Stats.Gap = -1
		pl.Stats.RootGap = -1
		return pl, nil
	}
	pl.Status = StatusOptimal
	extract(enc, pl, func(id int) bool { return bestMask>>uint(id)&1 == 1 })
	pl.Objective = float64(bestObj)
	return pl, nil
}

// BuildModel exposes the deterministic problem-to-MILP translation so
// tooling (cmd/diffcheck, the ilp.Stats accounting tests) can drive
// ilp.Solve directly with node/time limits that core.Options does not
// carry. It returns an error when the encoding itself proves the
// instance infeasible.
func BuildModel(prob *Problem, opts Options) (*ilp.Model, error) {
	opts = opts.withDefaults()
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	enc, err := buildEncoding(prob, opts, nil)
	if err != nil {
		return nil, err
	}
	if enc.infeasibleReason != "" {
		return nil, fmt.Errorf("core: encoding infeasible: %s", enc.infeasibleReason)
	}
	m, _, _ := buildILPModel(enc, opts)
	return m, nil
}
