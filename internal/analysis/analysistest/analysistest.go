// Package analysistest runs analyzers over testdata fixture packages and
// checks their diagnostics against // want annotations, mirroring
// golang.org/x/tools/go/analysis/analysistest on top of the local
// analysis framework.
//
// A fixture file marks each expected diagnostic with a trailing comment:
//
//	x := a == b // want "exact floating-point comparison"
//
// The string is a regular expression matched against the diagnostic
// message reported on that line. Lines without a want comment must
// produce no diagnostics.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"rulefit/internal/analysis"
)

// TestData returns the caller's testdata directory.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: cannot locate caller")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}

// Run loads testdata/src/<pkg> for each named fixture package, applies
// the analyzer, and reports mismatches against // want annotations.
//
// All named packages are loaded and analyzed together in one run, in
// dependency order with a shared fact store — so a fixture package may
// import another (by its full in-repo path under testdata/src) and
// expectations in the importer can depend on facts exported while
// analyzing the imported package. Diagnostics are checked against the
// union of every named package's want annotations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root := filepath.Join(testdata, "src")
	patterns := make([]string, len(pkgs))
	for i, name := range pkgs {
		patterns[i] = "./" + name
	}
	loaded, err := analysis.Load(root, patterns...)
	if err != nil {
		t.Errorf("loading fixtures %v: %v", pkgs, err)
		return
	}
	diags, err := analysis.RunAnalyzers(loaded, []*analysis.Analyzer{a})
	if err != nil {
		t.Errorf("running %s on %v: %v", a.Name, pkgs, err)
		return
	}
	var wants []*want
	for _, name := range pkgs {
		ws, err := parseWants(filepath.Join(root, name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			return
		}
		wants = append(wants, ws...)
	}
	checkWants(t, diags, wants)
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// checkWants compares diagnostics against want expectations.
func checkWants(t *testing.T, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parseWants extracts // want expectations from every fixture file, in
// sorted file order so expectation mismatches report deterministically.
func parseWants(dir string) ([]*want, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	var out []*want
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ws, err := parseWantComment(fset, c)
				if err != nil {
					return nil, err
				}
				out = append(out, ws...)
			}
		}
	}
	return out, nil
}

// parseWantComment parses one comment, which may hold several quoted
// expectations: // want "re1" "re2".
func parseWantComment(fset *token.FileSet, c *ast.Comment) ([]*want, error) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, "want ") {
		return nil, nil
	}
	pos := fset.Position(c.Pos())
	rest := strings.TrimSpace(strings.TrimPrefix(text, "want "))
	var out []*want
	for rest != "" {
		if rest[0] != '"' {
			return nil, &wantError{pos, "expectation must be a quoted string"}
		}
		lit, remainder, err := cutQuoted(rest)
		if err != nil {
			return nil, &wantError{pos, err.Error()}
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, &wantError{pos, "bad regexp: " + err.Error()}
		}
		out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
		rest = strings.TrimSpace(remainder)
	}
	return out, nil
}

// cutQuoted splits a leading Go-quoted string from its remainder.
func cutQuoted(s string) (lit, rest string, err error) {
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			unq, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", err
			}
			return unq, s[i+1:], nil
		}
	}
	return "", "", &wantError{token.Position{}, "unterminated expectation string"}
}

// wantError is a parse failure inside a want comment.
type wantError struct {
	pos token.Position
	msg string
}

func (e *wantError) Error() string {
	if e.pos.Filename == "" {
		return e.msg
	}
	return e.pos.String() + ": " + e.msg
}
