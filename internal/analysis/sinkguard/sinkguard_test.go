package sinkguard_test

import (
	"testing"

	"rulefit/internal/analysis/analysistest"
	"rulefit/internal/analysis/sinkguard"
)

func TestSinkGuard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), sinkguard.Analyzer, "a")
}

// TestSinkGuardCrossPackage checks that GuardedIface, NilSafe and
// RequiresGuard facts exported while analyzing sinkdef constrain call
// sites in sinkuse.
func TestSinkGuardCrossPackage(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), sinkguard.Analyzer, "sinkdef", "sinkuse")
}
