// Package sinkguard enforces the nil-sink / nil-span fast-path
// contract: observability is optional, so hot paths must stay free of
// both nil-dereference panics and needless work when no sink is
// attached.
//
// Two doc-comment directives declare the contract at its source:
//
//	//lint:sinkguard-iface — on an interface type: values of this type
//	may be nil, so method calls on them must be dominated by a nil
//	check (`if s != nil { s.Event(e) }` or an `if s == nil { return }`
//	early-out).
//
//	//lint:nilsafe — on a concrete type: every exported pointer-receiver
//	method begins with a nil-receiver guard, so calls need no nil check.
//	The analyzer verifies the promise on each such method.
//
// Forwarders are first-class: a function whose body calls a guarded
// interface method on one of its own parameters or receiver fields
// without a check is not reported — instead it exports a RequiresGuard
// fact, and every call TO it must supply the missing guard (this is how
// the solver's `emit` helper stays guard-free while `if b.sink != nil {
// b.emit(...) }` call sites carry the check). Unexported functions get
// forwarder status implicitly; an exported function is API surface and
// must either guard or declare the contract with a
//
//	//lint:sinkguard-forwarder <who guards>
//
// doc directive. Facts travel across package boundaries, so a declared
// forwarder in one package constrains callers in another.
//
// Calls to nil-safe methods are exempt from guards but subject to the
// cheap-arguments rule: an argument that itself performs a call (e.g.
// fmt.Sprintf) runs even when the receiver is nil, defeating the
// zero-overhead fast path, and is reported unless the call is guarded.
//
// Deliberate exceptions are annotated
//
//	//lint:sinkguard <why nil is impossible here>
package sinkguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rulefit/internal/analysis"
)

// GuardedIface marks an interface type whose values require nil guards
// before method calls (declared with //lint:sinkguard-iface).
type GuardedIface struct{}

// AFact marks GuardedIface as a fact.
func (*GuardedIface) AFact() {}

// NilSafe marks a concrete type whose exported pointer-receiver methods
// all begin with nil-receiver guards (declared with //lint:nilsafe).
type NilSafe struct{}

// AFact marks NilSafe as a fact.
func (*NilSafe) AFact() {}

// RequiresGuard marks a function or method that forwards to a guarded
// interface value it does not nil-check itself; callers must guard.
// Param >= 0 with empty Field: the value is the Param-th parameter.
// Param == -1 with Field set: the value is <receiver>.<Field>.
// Param >= 0 with Field set: the value is <param>.<Field>.
type RequiresGuard struct {
	Param int
	Field string
}

// AFact marks RequiresGuard as a fact.
func (*RequiresGuard) AFact() {}

// Analyzer is the sinkguard analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "sinkguard",
	Doc:       "enforces nil guards on optional-sink interface calls, forwarder contracts, and nil-safe method promises",
	FactTypes: []analysis.Fact{(*GuardedIface)(nil), (*NilSafe)(nil), (*RequiresGuard)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) error {
	exportTypeDirectives(pass)
	checkNilSafePromises(pass)
	// Forwarder facts can chain within the package (a wraps b wraps the
	// sink call), so run the body check to a fixpoint before reporting.
	for i := 0; i < 10; i++ {
		changed := false
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					if checkFunc(pass, fd, false) {
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd, true)
			}
		}
	}
	return nil
}

// exportTypeDirectives turns //lint:sinkguard-iface and //lint:nilsafe
// type-doc directives into facts on the type objects.
func exportTypeDirectives(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				obj := pass.TypesInfo.Defs[ts.Name]
				if obj == nil {
					continue
				}
				if hasDirective(doc, "sinkguard-iface") {
					pass.ExportObjectFact(obj, &GuardedIface{})
				}
				if hasDirective(doc, "nilsafe") {
					pass.ExportObjectFact(obj, &NilSafe{})
				}
			}
		}
	}
}

// hasDirective reports whether a doc comment contains //lint:<name>.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//lint:")
		if text == c.Text {
			continue
		}
		word := text
		if i := strings.IndexAny(text, " \t"); i >= 0 {
			word = text[:i]
		}
		if word == name {
			return true
		}
	}
	return false
}

// checkNilSafePromises verifies that every exported pointer-receiver
// method of a //lint:nilsafe type begins with a nil-receiver guard.
func checkNilSafePromises(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			named, ptr := recvNamed(pass, fd)
			if named == nil || !ptr {
				continue
			}
			if !typeIs(pass, named.Obj(), (*NilSafe)(nil)) {
				continue
			}
			if !startsWithNilGuard(pass, fd) {
				pass.Reportf(fd.Pos(), "method %s.%s is declared nil-safe (//lint:nilsafe on the type) but does not begin with a nil-receiver guard", named.Obj().Name(), fd.Name.Name)
			}
		}
	}
}

// recvNamed resolves a method's receiver base type, reporting whether
// the receiver is a pointer.
func recvNamed(pass *analysis.Pass, fd *ast.FuncDecl) (*types.Named, bool) {
	if len(fd.Recv.List) != 1 {
		return nil, false
	}
	tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil, false
	}
	t := tv.Type
	ptr := false
	if p, isPtr := t.(*types.Pointer); isPtr {
		t, ptr = p.Elem(), true
	}
	named, _ := t.(*types.Named)
	return named, ptr
}

// startsWithNilGuard reports whether the method body's first statement
// is `if <recv> == nil { ... }`.
func startsWithNilGuard(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	names := fd.Recv.List[0].Names
	if len(names) != 1 || names[0].Name == "_" {
		return false
	}
	if len(fd.Body.List) == 0 {
		return false
	}
	ifs, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	bin, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.EQL {
		return false
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	return (isIdentNamed(x, names[0].Name) && isNil(y)) || (isIdentNamed(y, names[0].Name) && isNil(x))
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// typeIs reports whether the fact of the given type is attached to obj.
func typeIs(pass *analysis.Pass, obj types.Object, proto analysis.Fact) bool {
	switch proto.(type) {
	case *GuardedIface:
		return pass.ImportObjectFact(obj, &GuardedIface{})
	case *NilSafe:
		return pass.ImportObjectFact(obj, &NilSafe{})
	}
	return false
}

// funcScope carries one function's guard state during checking.
type funcScope struct {
	pass    *analysis.Pass
	fd      *ast.FuncDecl
	recv    string             // receiver name, or ""
	params  map[string]int     // parameter name -> index
	guarded map[string][]gspan // ExprString -> non-nil-known intervals
	// mayForward: unexported, or declared //lint:sinkguard-forwarder —
	// unguarded forwarding exports a fact instead of reporting.
	mayForward bool
}

type gspan struct{ start, end token.Pos }

// checkFunc checks one function, exporting forwarder facts; when report
// is true, violations are reported. Returns whether any fact changed.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, report bool) bool {
	fs := &funcScope{
		pass:       pass,
		fd:         fd,
		params:     make(map[string]int),
		guarded:    make(map[string][]gspan),
		mayForward: !fd.Name.IsExported() || hasDirective(fd.Doc, "sinkguard-forwarder"),
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		fs.recv = fd.Recv.List[0].Names[0].Name
	}
	i := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			fs.params[name.Name] = i
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	fs.collectGuards()
	changed := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fs.checkCall(call, report) {
			changed = true
		}
		return true
	})
	return changed
}

// collectGuards records the source intervals within which an expression
// is known non-nil: the body of `if expr != nil && ...`, and everything
// after an `if expr == nil { return }` early-out.
func (fs *funcScope) collectGuards() {
	ast.Inspect(fs.fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		for _, c := range conjuncts(ifs.Cond) {
			bin, ok := c.(*ast.BinaryExpr)
			if !ok {
				continue
			}
			var other ast.Expr
			switch {
			case isNil(ast.Unparen(bin.X)):
				other = ast.Unparen(bin.Y)
			case isNil(ast.Unparen(bin.Y)):
				other = ast.Unparen(bin.X)
			default:
				continue
			}
			s := types.ExprString(other)
			switch bin.Op {
			case token.NEQ:
				fs.guarded[s] = append(fs.guarded[s], gspan{ifs.Body.Pos(), ifs.Body.End()})
			case token.EQL:
				if ifs.Else == nil && endsInExit(ifs.Body) {
					fs.guarded[s] = append(fs.guarded[s], gspan{ifs.End(), fs.fd.Body.End()})
				}
			}
		}
		return true
	})
}

// conjuncts flattens a && tree into its leaves.
func conjuncts(e ast.Expr) []ast.Expr {
	e = ast.Unparen(e)
	if bin, ok := e.(*ast.BinaryExpr); ok && bin.Op == token.LAND {
		return append(conjuncts(bin.X), conjuncts(bin.Y)...)
	}
	return []ast.Expr{e}
}

// endsInExit reports whether a block's last statement leaves the
// function or loop (return/panic/continue/break).
func endsInExit(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// isGuarded reports whether pos falls inside a non-nil-known interval
// for the expression string s.
func (fs *funcScope) isGuarded(s string, pos token.Pos) bool {
	for _, g := range fs.guarded[s] {
		if pos >= g.start && pos < g.end {
			return true
		}
	}
	return false
}

// checkCall handles one call expression; returns whether a fact changed.
func (fs *funcScope) checkCall(call *ast.CallExpr, report bool) bool {
	pass := fs.pass
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if named := namedOf(pass, sel.X); named != nil {
			if typeIs(pass, named.Obj(), (*GuardedIface)(nil)) {
				return fs.checkIfaceCall(call, sel, report)
			}
			if typeIs(pass, named.Obj(), (*NilSafe)(nil)) {
				fs.checkCheapArgs(call, sel, named, report)
				return false
			}
		}
	}
	// Calls to known forwarders must supply the guard the callee omits.
	callee := calleeObj(pass, call)
	if callee == nil {
		return false
	}
	var rg RequiresGuard
	if !pass.ImportObjectFact(callee, &rg) {
		return false
	}
	return fs.checkForwarderCall(call, callee, &rg, report)
}

// namedOf resolves an expression's type to its named type (pointers
// stripped), else nil.
func namedOf(pass *analysis.Pass, e ast.Expr) *types.Named {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// calleeObj resolves the called function or method object.
func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// checkIfaceCall handles a method call on a guarded-interface value.
func (fs *funcScope) checkIfaceCall(call *ast.CallExpr, sel *ast.SelectorExpr, report bool) bool {
	s := types.ExprString(ast.Unparen(sel.X))
	if fs.isGuarded(s, call.Pos()) {
		return false
	}
	// Forwarder shapes: the possibly-nil value is owned by our caller.
	if rg, ok := fs.forwarderShape(ast.Unparen(sel.X)); ok && fs.mayForward {
		return fs.exportGuard(rg)
	}
	if report {
		fs.pass.Reportf(call.Pos(), "call to %s.%s without a nil check on %s; guard with `if %s != nil` or annotate //lint:sinkguard with why nil is impossible", s, sel.Sel.Name, s, s)
	}
	return false
}

// forwarderShape maps the guarded value's expression to a RequiresGuard
// fact when it is a parameter, a receiver field, or a parameter field.
func (fs *funcScope) forwarderShape(e ast.Expr) (RequiresGuard, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		if i, ok := fs.params[x.Name]; ok {
			return RequiresGuard{Param: i}, true
		}
	case *ast.SelectorExpr:
		base, ok := ast.Unparen(x.X).(*ast.Ident)
		if !ok {
			return RequiresGuard{}, false
		}
		if fs.recv != "" && base.Name == fs.recv {
			return RequiresGuard{Param: -1, Field: x.Sel.Name}, true
		}
		if i, ok := fs.params[base.Name]; ok {
			return RequiresGuard{Param: i, Field: x.Sel.Name}, true
		}
	}
	return RequiresGuard{}, false
}

// exportGuard attaches a RequiresGuard fact to the current function.
func (fs *funcScope) exportGuard(rg RequiresGuard) bool {
	obj := fs.pass.TypesInfo.Defs[fs.fd.Name]
	if obj == nil {
		return false
	}
	return fs.pass.ExportObjectFact(obj, &rg)
}

// checkForwarderCall verifies that a call to a RequiresGuard function is
// itself guarded, or propagates the obligation outward.
func (fs *funcScope) checkForwarderCall(call *ast.CallExpr, callee types.Object, rg *RequiresGuard, report bool) bool {
	// Reconstruct the expression the callee needs non-nil, in caller
	// terms.
	var valueExpr ast.Expr
	var guardStr string
	switch {
	case rg.Param == -1:
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		valueExpr = ast.Unparen(sel.X)
		guardStr = types.ExprString(valueExpr) + "." + rg.Field
	default:
		if rg.Param >= len(call.Args) {
			return false
		}
		valueExpr = ast.Unparen(call.Args[rg.Param])
		guardStr = types.ExprString(valueExpr)
		if rg.Field != "" {
			guardStr += "." + rg.Field
		}
	}
	if fs.isGuarded(guardStr, call.Pos()) {
		return false
	}
	// Propagate when the needed value is in turn owned by our caller:
	// recv.field stays a field obligation, a forwarded parameter maps to
	// our parameter index.
	if inner, ok := fs.propagatedShape(valueExpr, rg); ok && fs.mayForward {
		return fs.exportGuard(inner)
	}
	if report {
		fs.pass.Reportf(call.Pos(), "call to %s requires `%s != nil` (it forwards to a guarded sink unchecked); add the guard or annotate //lint:sinkguard", callee.Name(), guardStr)
	}
	return false
}

// propagatedShape rewrites a callee guard obligation into one on the
// current function, when the value expression permits it.
func (fs *funcScope) propagatedShape(valueExpr ast.Expr, rg *RequiresGuard) (RequiresGuard, bool) {
	if rg.Field != "" {
		// Obligation is <value>.<Field>: valueExpr must be our receiver
		// or a parameter for the composite to stay expressible.
		if id, ok := valueExpr.(*ast.Ident); ok {
			if fs.recv != "" && id.Name == fs.recv {
				return RequiresGuard{Param: -1, Field: rg.Field}, true
			}
			if i, ok := fs.params[id.Name]; ok {
				return RequiresGuard{Param: i, Field: rg.Field}, true
			}
		}
		return RequiresGuard{}, false
	}
	// Obligation is the value itself: any forwarder shape works.
	return fs.forwarderShape(valueExpr)
}

// checkCheapArgs enforces the zero-overhead fast path on nil-safe
// method calls: argument expressions must not perform calls of their
// own unless the call site is nil-guarded.
func (fs *funcScope) checkCheapArgs(call *ast.CallExpr, sel *ast.SelectorExpr, named *types.Named, report bool) {
	if !report {
		return
	}
	s := types.ExprString(ast.Unparen(sel.X))
	if fs.isGuarded(s, call.Pos()) {
		return
	}
	for _, arg := range call.Args {
		if expensive(fs.pass, arg) {
			fs.pass.Reportf(call.Pos(), "argument to nil-safe method %s.%s performs a call that runs even when %s is nil; evaluate it behind `if %s != nil`", named.Obj().Name(), sel.Sel.Name, s, s)
			return
		}
	}
}

// expensive reports whether evaluating e performs a non-trivial call
// (anything beyond type conversions and len/cap).
func expensive(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, isConv := pass.TypesInfo.Types[call.Fun]; isConv && tv.IsType() {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			if pass.TypesInfo.Uses[id] == types.Universe.Lookup(id.Name) {
				return true
			}
		}
		found = true
		return false
	})
	return found
}
