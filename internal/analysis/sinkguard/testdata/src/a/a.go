// Fixture for sinkguard: guarded-interface calls, implicit and
// declared forwarders, early-out guards, and the nil-safe contract
// with its cheap-arguments rule.
package a

// Sink is an optional event receiver.
//
//lint:sinkguard-iface values may be nil when tracing is off
type Sink interface {
	Event(msg string)
}

// Emitter mirrors the solver shape: an optional sink field, an
// unexported forwarder, guarded call sites.
type Emitter struct {
	sink Sink
}

// emit forwards unguarded by contract; callers hold the nil check.
func (e *Emitter) emit(msg string) {
	e.sink.Event(msg)
}

// Step guards before forwarding: clean.
func (e *Emitter) Step() {
	if e.sink != nil {
		e.emit("step")
	}
}

// Bad forwards without the guard from an exported method.
func (e *Emitter) Bad() {
	e.emit("bad") // want "requires `e.sink != nil`"
}

// EarlyOut uses the early-return guard form: clean.
func (e *Emitter) EarlyOut() {
	if e.sink == nil {
		return
	}
	e.emit("ok")
	e.sink.Event("direct")
}

// emitTo is an unexported parameter forwarder.
func emitTo(s Sink, msg string) {
	s.Event(msg)
}

// UseEmitTo guards one call and forgets the other.
func UseEmitTo(s Sink) {
	if s != nil {
		emitTo(s, "x")
	}
	emitTo(s, "y") // want "requires `s != nil`"
}

// Local calls a method on a never-assigned interface value.
func Local() {
	var s Sink
	s.Event("boom") // want "without a nil check on s"
}

// Publish is a declared forwarder: exported, guard-free by documented
// contract, so callers carry the nil check.
//
//lint:sinkguard-forwarder callers guard s
func Publish(s Sink, msg string) {
	s.Event(msg)
}

// UsePublish must guard the declared forwarder like any other.
func UsePublish(s Sink) {
	UsePublishInner(s)
}

// UsePublishInner demonstrates the exported-without-declaration case.
func UsePublishInner(s Sink) {
	Publish(s, "hi") // want "requires `s != nil`"
}

// Span is a nil-safe tracing handle: exported pointer-receiver methods
// begin with a nil-receiver guard.
//
//lint:nilsafe methods guard the receiver; calls need no nil check
type Span struct {
	notes int
}

// Note is the promise kept.
func (s *Span) Note(msg string) {
	if s == nil {
		return
	}
	s.notes++
	_ = msg
}

// Bump breaks the promise.
func (s *Span) Bump() { // want "does not begin with a nil-receiver guard"
	s.notes++
}

func expensiveMsg() string { return "built" }

// Use exercises the cheap-arguments rule.
func Use(sp *Span) {
	sp.Note("cheap")
	sp.Note(expensiveMsg()) // want "runs even when sp is nil"
	if sp != nil {
		sp.Note(expensiveMsg())
	}
}
