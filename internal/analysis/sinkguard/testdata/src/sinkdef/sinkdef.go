// Fixture: the contract-defining half of the cross-package pair. The
// interface, the declared forwarder, and the nil-safe type all export
// facts that sinkuse consumes through the export-data boundary.
package sinkdef

// Sink is the optional event receiver.
//
//lint:sinkguard-iface nil when tracing is disabled
type Sink interface {
	Event(msg string)
}

// Relay wraps a sink for callers in other packages.
type Relay struct {
	S Sink
}

// Emit forwards to the wrapped sink; callers guard.
//
//lint:sinkguard-forwarder callers check r.S
func (r *Relay) Emit(msg string) {
	r.S.Event(msg)
}

// Probe is a nil-safe measurement handle.
//
//lint:nilsafe every exported method guards the receiver
type Probe struct {
	count int
}

// Tick is the kept promise.
func (p *Probe) Tick(label string) {
	if p == nil {
		return
	}
	p.count++
	_ = label
}
