// Fixture: the consuming half of the cross-package pair — every
// expectation here depends on facts exported while analyzing sinkdef.
package sinkuse

import (
	"rulefit/internal/analysis/sinkguard/testdata/src/sinkdef"
)

// Forward calls the imported declared forwarder with and without the
// guard the fact demands.
func Forward(r *sinkdef.Relay) {
	if r.S != nil {
		r.Emit("guarded")
	}
	r.Emit("bare") // want "requires `r.S != nil`"
}

// Direct calls a method on the imported guarded interface type.
func Direct(s sinkdef.Sink) {
	if s != nil {
		s.Event("guarded")
	}
}

// DirectLocal holds the value in a local, so no forwarder shape saves
// it.
func DirectLocal() {
	var s sinkdef.Sink
	s.Event("boom") // want "without a nil check on s"
}

func makeLabel() string { return "label" }

// Measure exercises the imported nil-safe type's cheap-arguments rule.
func Measure(p *sinkdef.Probe) {
	p.Tick("cheap")
	p.Tick(makeLabel()) // want "runs even when p is nil"
	if p != nil {
		p.Tick(makeLabel())
	}
}
