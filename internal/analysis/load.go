package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	// Imports lists imported package paths (the driver uses it to
	// order analysis so fact producers run before consumers).
	Imports []string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists, parses and type-checks the packages matching the patterns,
// resolving imports through compiler export data produced by
// `go list -export`. dir is the working directory for the go command
// ("" means the current directory). Test files are not loaded: the lint
// suite targets shipped code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string)
	var targets []listedPackage
	for _, lp := range listed {
		if lp.Error != nil && !lp.DepOnly {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(exp)
	})

	var out []*Package
	for _, lp := range targets {
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// goList runs `go list -e -export -deps -json` over the patterns.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// typeCheck parses and type-checks one listed package.
func typeCheck(fset *token.FileSet, imp types.Importer, lp listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type errors in %s:\n  %s", lp.ImportPath, strings.Join(typeErrs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %v", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Imports:    lp.Imports,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
