package analysis

// Facts: cross-package dataflow summaries, mirroring the
// golang.org/x/tools/go/analysis fact model on top of the local
// framework.
//
// A Fact is a serializable statement an analyzer attaches to a
// package-level object (function, method, var, type, const) or to a
// package as a whole while analyzing the package that declares it.
// When the driver later analyzes a package that imports the declaring
// one, the same analyzer can import the fact and act on it — this is
// how taint discovered inside one package reaches report sites in
// another.
//
// Facts are keyed by stable object keys (see ObjectKey) rather than by
// types.Object identity, because an object seen through compiler
// export data is a distinct types.Object from the one created when its
// declaring package was type-checked from source. Every exported fact
// is round-tripped through encoding/gob at export time, so a fact that
// cannot survive serialization fails fast, and the in-memory and
// vet-tool (.vetx file) paths exercise the same encoding.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact is the marker interface for analyzer facts. Implementations
// must be pointers to gob-encodable structs with exported fields.
type Fact interface {
	// AFact is a no-op marker method.
	AFact()
}

// ObjectKey returns the stable cross-package key for a package-level
// object or method: "pkgpath.Name" for package-level declarations,
// "pkgpath.Type.Method" for methods (pointer receivers are stripped).
// Objects that cannot carry facts (locals, fields, universe names) map
// to "".
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	pkg := obj.Pkg().Path()
	switch o := obj.(type) {
	case *types.Func:
		sig, ok := o.Type().(*types.Signature)
		if !ok {
			return ""
		}
		if recv := sig.Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return ""
			}
			return pkg + "." + named.Obj().Name() + "." + o.Name()
		}
		return pkg + "." + o.Name()
	case *types.Var, *types.TypeName, *types.Const:
		if obj.Parent() == obj.Pkg().Scope() {
			return pkg + "." + obj.Name()
		}
	}
	return ""
}

// factKey identifies one stored fact.
type factKey struct {
	Analyzer string
	// Object is an ObjectKey, or "pkg:<path>" for package facts.
	Object string
	// Type is the reflected Go type of the fact value.
	Type string
}

// FactSet is the driver's fact store, shared across packages and
// analyzers for one lint run. The zero value is not usable; call
// NewFactSet.
type FactSet struct {
	m map[factKey][]byte
}

// NewFactSet returns an empty store.
func NewFactSet() *FactSet {
	return &FactSet{m: make(map[factKey][]byte)}
}

// Len returns the number of stored facts.
func (s *FactSet) Len() int { return len(s.m) }

// put encodes and stores one fact, reporting whether the stored bytes
// changed (used by analyzers running to a fixpoint).
func (s *FactSet) put(analyzer, object string, fact Fact) (changed bool, err error) {
	data, err := encodeFact(fact)
	if err != nil {
		return false, err
	}
	key := factKey{analyzer, object, factType(fact)}
	if prev, ok := s.m[key]; ok && bytes.Equal(prev, data) {
		return false, nil
	}
	s.m[key] = data
	return true, nil
}

// get decodes a stored fact into the given pointer.
func (s *FactSet) get(analyzer, object string, fact Fact) bool {
	data, ok := s.m[factKey{analyzer, object, factType(fact)}]
	if !ok {
		return false
	}
	return decodeFact(data, fact) == nil
}

// wireFact is the serialized form of one fact.
type wireFact struct {
	Analyzer string
	Object   string
	Type     string
	Data     []byte
}

// Encode serializes the whole set deterministically (sorted by key),
// for .vetx fact files in the go vet unitchecker protocol.
func (s *FactSet) Encode() ([]byte, error) {
	wire := make([]wireFact, 0, len(s.m))
	//lint:mapdet wire is sorted below before encoding
	for k, data := range s.m {
		wire = append(wire, wireFact{k.Analyzer, k.Object, k.Type, data})
	}
	sort.Slice(wire, func(i, j int) bool {
		a, b := wire[i], wire[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Type < b.Type
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, fmt.Errorf("analysis: encoding facts: %v", err)
	}
	return buf.Bytes(), nil
}

// DecodeFactSet reconstructs a set from Encode output. Empty input
// (the facts file of a run that exported nothing) yields an empty set.
func DecodeFactSet(data []byte) (*FactSet, error) {
	s := NewFactSet()
	if len(data) == 0 {
		return s, nil
	}
	var wire []wireFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wire); err != nil {
		return nil, fmt.Errorf("analysis: decoding facts: %v", err)
	}
	for _, w := range wire {
		s.m[factKey{w.Analyzer, w.Object, w.Type}] = w.Data
	}
	return s, nil
}

// Merge copies every fact from other into s (other wins on collision).
func (s *FactSet) Merge(other *FactSet) {
	if other == nil {
		return
	}
	for k, v := range other.m {
		s.m[k] = v
	}
}

// Keys returns the sorted "analyzer\x00object\x00type" key strings, for
// tests asserting which facts a run produced.
func (s *FactSet) Keys() []string {
	out := make([]string, 0, len(s.m))
	//lint:mapdet sorted before return
	for k := range s.m {
		out = append(out, k.Analyzer+"\x00"+k.Object+"\x00"+k.Type)
	}
	sort.Strings(out)
	return out
}

// factType names the concrete fact type.
func factType(fact Fact) string {
	return reflect.TypeOf(fact).String()
}

// encodeFact gob-encodes the value the fact pointer refers to.
func encodeFact(fact Fact) ([]byte, error) {
	v := reflect.ValueOf(fact)
	if v.Kind() != reflect.Pointer || v.IsNil() {
		return nil, fmt.Errorf("fact %T must be a non-nil pointer", fact)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).EncodeValue(v.Elem()); err != nil {
		return nil, fmt.Errorf("fact %T is not gob-encodable: %v", fact, err)
	}
	return buf.Bytes(), nil
}

// decodeFact fills the fact pointer from gob bytes.
func decodeFact(data []byte, fact Fact) error {
	v := reflect.ValueOf(fact)
	if v.Kind() != reflect.Pointer || v.IsNil() {
		return fmt.Errorf("fact %T must be a non-nil pointer", fact)
	}
	return gob.NewDecoder(bytes.NewReader(data)).DecodeValue(v.Elem())
}

// ExportObjectFact attaches fact to obj for this pass's analyzer.
// Facts attach only to package-level objects and methods; calls for
// other objects are silently dropped (matching ObjectKey). Reports
// whether the stored fact changed, so summary analyzers can iterate to
// a fixpoint. Panics if the fact does not serialize: facts must
// survive the export-data boundary to mean anything.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) bool {
	key := ObjectKey(obj)
	if key == "" || p.Facts == nil {
		return false
	}
	changed, err := p.Facts.put(p.Analyzer.Name, key, fact)
	if err != nil {
		panic(fmt.Sprintf("analysis: %s: %v", p.Analyzer.Name, err))
	}
	return changed
}

// ImportObjectFact fills fact with the stored fact for obj, which may
// have been exported while analyzing this package or any package this
// one imports (directly or transitively).
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	key := ObjectKey(obj)
	if key == "" || p.Facts == nil {
		return false
	}
	return p.Facts.get(p.Analyzer.Name, key, fact)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) bool {
	if p.Facts == nil || p.Pkg == nil {
		return false
	}
	changed, err := p.Facts.put(p.Analyzer.Name, "pkg:"+p.Pkg.Path(), fact)
	if err != nil {
		panic(fmt.Sprintf("analysis: %s: %v", p.Analyzer.Name, err))
	}
	return changed
}

// ImportPackageFact fills fact with the package fact stored for the
// package with the given import path.
func (p *Pass) ImportPackageFact(path string, fact Fact) bool {
	if p.Facts == nil {
		return false
	}
	return p.Facts.get(p.Analyzer.Name, "pkg:"+path, fact)
}
