package analysis

import (
	"go/token"
	"go/types"
	"reflect"
	"testing"
)

// testFact is a representative analyzer fact.
type testFact struct {
	Kind  string
	Count int
}

func (*testFact) AFact() {}

// fakePkg builds a types.Package with a package-level func F, a type T
// with method M, and a package-level var V.
func fakePkg(path string) (pkg *types.Package, fn, method, v types.Object) {
	pkg = types.NewPackage(path, "p")
	f := types.NewFunc(token.NoPos, pkg, "F",
		types.NewSignatureType(nil, nil, nil, nil, nil, false))
	pkg.Scope().Insert(f)
	tn := types.NewTypeName(token.NoPos, pkg, "T", nil)
	named := types.NewNamed(tn, types.NewStruct(nil, nil), nil)
	pkg.Scope().Insert(tn)
	recv := types.NewVar(token.NoPos, pkg, "t", types.NewPointer(named))
	m := types.NewFunc(token.NoPos, pkg, "M",
		types.NewSignatureType(recv, nil, nil, nil, nil, false))
	vv := types.NewVar(token.NoPos, pkg, "V", types.Typ[types.Int])
	pkg.Scope().Insert(vv)
	return pkg, f, m, vv
}

func TestObjectKey(t *testing.T) {
	pkg, fn, method, v := fakePkg("example.com/p")
	_ = pkg
	cases := []struct {
		obj  types.Object
		want string
	}{
		{fn, "example.com/p.F"},
		{method, "example.com/p.T.M"},
		{v, "example.com/p.V"},
		{nil, ""},
		{types.NewVar(token.NoPos, pkg, "local", types.Typ[types.Int]), ""},
	}
	for _, c := range cases {
		if got := ObjectKey(c.obj); got != c.want {
			t.Errorf("ObjectKey(%v) = %q, want %q", c.obj, got, c.want)
		}
	}
}

// TestFactRoundTrip exercises the full serialization path: export on
// one pass, Encode to wire bytes (as the vet-tool mode writes .vetx
// files), DecodeFactSet, and import from a second pass over a package
// that sees the first only through its objects' keys — the same
// situation as importing through compiler export data.
func TestFactRoundTrip(t *testing.T) {
	pkg, fn, method, _ := fakePkg("example.com/p")
	a := &Analyzer{Name: "det"}
	store := NewFactSet()
	exp := &Pass{Analyzer: a, Pkg: pkg, Facts: store}

	if !exp.ExportObjectFact(fn, &testFact{Kind: "maporder", Count: 2}) {
		t.Fatal("ExportObjectFact reported no change on first export")
	}
	if exp.ExportObjectFact(fn, &testFact{Kind: "maporder", Count: 2}) {
		t.Error("re-exporting an identical fact should report no change")
	}
	if !exp.ExportObjectFact(fn, &testFact{Kind: "maporder", Count: 3}) {
		t.Error("exporting a different fact should report a change")
	}
	exp.ExportObjectFact(method, &testFact{Kind: "wallclock"})
	exp.ExportPackageFact(&testFact{Kind: "pkgwide", Count: 7})
	if store.Len() != 3 {
		t.Fatalf("store has %d facts, want 3", store.Len())
	}

	wire, err := store.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	wire2, err := store.Encode()
	if err != nil {
		t.Fatalf("Encode (second): %v", err)
	}
	if string(wire) != string(wire2) {
		t.Error("Encode is not deterministic")
	}

	decoded, err := DecodeFactSet(wire)
	if err != nil {
		t.Fatalf("DecodeFactSet: %v", err)
	}
	if !reflect.DeepEqual(decoded.Keys(), store.Keys()) {
		t.Errorf("decoded keys %v != original %v", decoded.Keys(), store.Keys())
	}

	// The importing side re-creates the objects (as an export-data
	// importer would) — only the keys must line up.
	pkg2, fn2, method2, _ := fakePkg("example.com/p")
	imp := &Pass{Analyzer: a, Pkg: pkg2, Facts: decoded}
	var got testFact
	if !imp.ImportObjectFact(fn2, &got) {
		t.Fatal("ImportObjectFact(F) found nothing after round trip")
	}
	if got.Kind != "maporder" || got.Count != 3 {
		t.Errorf("F fact = %+v, want {maporder 3}", got)
	}
	if !imp.ImportObjectFact(method2, &got) || got.Kind != "wallclock" {
		t.Errorf("T.M fact = %+v, want Kind=wallclock", got)
	}
	if !imp.ImportPackageFact("example.com/p", &got) || got.Kind != "pkgwide" || got.Count != 7 {
		t.Errorf("package fact = %+v, want {pkgwide 7}", got)
	}
	if imp.ImportPackageFact("example.com/other", &got) {
		t.Error("package fact leaked to a different path")
	}

	// A different analyzer must not see det's facts.
	other := &Pass{Analyzer: &Analyzer{Name: "other"}, Pkg: pkg2, Facts: decoded}
	if other.ImportObjectFact(fn2, &got) {
		t.Error("facts leaked across analyzers")
	}
}

func TestDecodeEmptyFactFile(t *testing.T) {
	s, err := DecodeFactSet(nil)
	if err != nil || s.Len() != 0 {
		t.Fatalf("DecodeFactSet(nil) = %v facts, err %v; want empty, nil", s.Len(), err)
	}
}

func TestExportSkipsNonPackageLevelObjects(t *testing.T) {
	pkg, _, _, _ := fakePkg("example.com/p")
	local := types.NewVar(token.NoPos, pkg, "tmp", types.Typ[types.Int])
	p := &Pass{Analyzer: &Analyzer{Name: "det"}, Pkg: pkg, Facts: NewFactSet()}
	if p.ExportObjectFact(local, &testFact{}) {
		t.Error("fact attached to a non-package-level object")
	}
	if p.Facts.Len() != 0 {
		t.Error("store not empty after dropped export")
	}
}
