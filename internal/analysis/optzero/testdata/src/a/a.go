// Fixture for the optzero analyzer: solver/verifier option literals.
package a

import (
	"time"

	"rulefit/internal/daemon"
	"rulefit/internal/ilp"
	"rulefit/internal/load"
	"rulefit/internal/obs"
	"rulefit/internal/verify"
)

func positives() {
	_ = ilp.Options{}                      // want "ilp.Options without TimeLimit or NodeLimit"
	_ = ilp.Options{DisablePresolve: true} // want "ilp.Options without TimeLimit or NodeLimit"
	_ = ilp.Options{Workers: 8}            // want "ilp.Options without TimeLimit or NodeLimit"
	// Attaching observability does not bound the search.
	_ = ilp.Options{Sink: nil}             // want "ilp.Options without TimeLimit or NodeLimit"
	_ = ilp.Options{Span: nil, Workers: 2} // want "ilp.Options without TimeLimit or NodeLimit"
	_ = ilp.Options{TraceID: "req-000001"} // want "ilp.Options without TimeLimit or NodeLimit"
	_ = verify.Config{}                    // want "zero-value verify.Config"
	_ = daemon.Config{}                    // want "daemon.Config without MaxInFlight"
	_ = daemon.Config{MaxQueue: 64}        // want "daemon.Config without MaxInFlight"
	_ = daemon.Config{TraceDir: "/tmp/tr"} // want "daemon.Config without MaxInFlight"
	_ = obs.HistogramOpts{}                // want "zero-value obs.HistogramOpts"
	_ = obs.WindowOpts{}                   // want "zero-value obs.WindowOpts"
	_ = obs.FlightOpts{}                   // want "zero-value obs.FlightOpts"
	// The introspection fields do not bound admission.
	_ = daemon.Config{FlightEvents: 4096}            // want "daemon.Config without MaxInFlight"
	_ = daemon.Config{ProfileThreshold: time.Second} // want "daemon.Config without MaxInFlight"
	_ = daemon.Config{FlightDir: "/tmp/f"}           // want "daemon.Config without MaxInFlight"
	_ = load.Config{}                                // want "load.Config without Requests or Duration"
	_ = load.Config{Seed: 7}                         // want "load.Config without Requests or Duration"
	_ = load.Config{Concurrency: 4}                  // want "load.Config without Requests or Duration"
}

func negatives() {
	_ = ilp.Options{TimeLimit: time.Minute}
	_ = ilp.Options{NodeLimit: 100}
	_ = ilp.Options{TimeLimit: time.Second, FullPricing: true}
	_ = ilp.Options{NodeLimit: 100, Sink: nil}
	_ = verify.Config{Seed: 7}
	_ = verify.Config{Span: nil} // non-empty: effort fields were considered
	_ = daemon.Config{MaxInFlight: 4}
	_ = daemon.Config{MaxInFlight: 0, MaxQueue: 16} // explicit 0 documents the GOMAXPROCS intent
	_ = obs.HistogramOpts{Start: 0.001, Factor: 2, Count: 16}
	_ = obs.HistogramOpts{Start: 1} // non-empty: a layout was considered
	//lint:optzero ablation harness: unbounded solve is the point
	_ = ilp.Options{}
	//lint:optzero smoke tool: shedding bound irrelevant for one request
	_ = daemon.Config{}
	_ = obs.WindowOpts{Intervals: 5} // non-empty: a window shape was considered
	_ = obs.FlightOpts{Size: 1024}
	_ = obs.FlightOpts{SampleHot: 8} // non-empty: a ring shape was considered
	//lint:optzero test recorder: default ring size acceptable
	_ = obs.FlightOpts{}
	_ = daemon.Config{MaxInFlight: 2, FlightEvents: 256, ProfileThreshold: time.Second}
	_ = load.Config{Requests: 32}
	_ = load.Config{Duration: time.Second, RPS: 10}
	//lint:optzero exploratory run: implicit default length acceptable
	_ = load.Config{}
}
