// Fixture for the optzero analyzer: solver/verifier option literals.
package a

import (
	"time"

	"rulefit/internal/ilp"
	"rulefit/internal/verify"
)

func positives() {
	_ = ilp.Options{}                      // want "ilp.Options without TimeLimit or NodeLimit"
	_ = ilp.Options{DisablePresolve: true} // want "ilp.Options without TimeLimit or NodeLimit"
	_ = ilp.Options{Workers: 8}            // want "ilp.Options without TimeLimit or NodeLimit"
	// Attaching observability does not bound the search.
	_ = ilp.Options{Sink: nil}             // want "ilp.Options without TimeLimit or NodeLimit"
	_ = ilp.Options{Span: nil, Workers: 2} // want "ilp.Options without TimeLimit or NodeLimit"
	_ = verify.Config{}                    // want "zero-value verify.Config"
}

func negatives() {
	_ = ilp.Options{TimeLimit: time.Minute}
	_ = ilp.Options{NodeLimit: 100}
	_ = ilp.Options{TimeLimit: time.Second, FullPricing: true}
	_ = ilp.Options{NodeLimit: 100, Sink: nil}
	_ = verify.Config{Seed: 7}
	_ = verify.Config{Span: nil} // non-empty: effort fields were considered
	//lint:optzero ablation harness: unbounded solve is the point
	_ = ilp.Options{}
}
