package optzero_test

import (
	"testing"

	"rulefit/internal/analysis/analysistest"
	"rulefit/internal/analysis/optzero"
)

func TestOptzero(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), optzero.Analyzer, "a")
}
