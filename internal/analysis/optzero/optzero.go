// Package optzero flags suspicious zero-value solver/verifier option
// literals in non-test code. An ilp.Options with neither TimeLimit nor
// NodeLimit lets branch & bound run unbounded on a hard instance; a
// fully-empty verify.Config silently relies on implicit sampling
// defaults and an implicit seed. Production call sites must state their
// limits; genuinely intentional zero values can be annotated
//
//	//lint:optzero <why unbounded/default is acceptable here>
package optzero

import (
	"go/ast"

	"rulefit/internal/analysis"
)

// checked describes one option struct and the fields that bound it.
type checked struct {
	pkgPath string
	name    string
	// bounding lists field names at least one of which must be set.
	bounding []string
	// emptyOnly restricts the check to completely empty literals.
	emptyOnly bool
	message   string
}

var checkedTypes = []checked{
	{
		pkgPath:  "rulefit/internal/ilp",
		name:     "Options",
		bounding: []string{"TimeLimit", "NodeLimit"},
		message:  "ilp.Options without TimeLimit or NodeLimit: branch & bound may run unbounded",
	},
	{
		pkgPath:   "rulefit/internal/verify",
		name:      "Config",
		emptyOnly: true,
		message:   "zero-value verify.Config relies on implicit sampling defaults; set Seed and effort fields explicitly",
	},
	{
		pkgPath:  "rulefit/internal/daemon",
		name:     "Config",
		bounding: []string{"MaxInFlight"},
		message:  "daemon.Config without MaxInFlight: admission falls back to GOMAXPROCS implicitly; state the concurrency bound",
	},
	{
		pkgPath:   "rulefit/internal/obs",
		name:      "HistogramOpts",
		emptyOnly: true,
		message:   "zero-value obs.HistogramOpts adopts the implicit default bucket layout; state Start/Factor/Count",
	},
	{
		pkgPath:   "rulefit/internal/obs",
		name:      "WindowOpts",
		emptyOnly: true,
		message:   "zero-value obs.WindowOpts adopts the implicit default layout and interval count; state Buckets/Intervals",
	},
	{
		pkgPath:   "rulefit/internal/obs",
		name:      "FlightOpts",
		emptyOnly: true,
		message:   "zero-value obs.FlightOpts adopts the implicit default ring size; state Size",
	},
	{
		pkgPath:  "rulefit/internal/load",
		name:     "Config",
		bounding: []string{"Requests", "Duration"},
		message:  "load.Config without Requests or Duration: the replay length falls back to an implicit default; state the run bound",
	},
}

// Analyzer flags unbounded option literals.
var Analyzer = &analysis.Analyzer{
	Name: "optzero",
	Doc:  "flags zero-value ilp.Options/verify.Config literals missing limits in non-test code",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[lit]
			if !ok {
				return true
			}
			for _, c := range checkedTypes {
				if !analysis.NamedFrom(tv.Type, c.pkgPath, c.name) {
					continue
				}
				if c.emptyOnly {
					if len(lit.Elts) == 0 {
						pass.Reportf(lit.Pos(), "%s (//lint:optzero to accept)", c.message)
					}
				} else if !setsAnyField(lit, c.bounding) {
					pass.Reportf(lit.Pos(), "%s (//lint:optzero to accept)", c.message)
				}
			}
			return true
		})
	}
	return nil
}

// setsAnyField reports whether the literal explicitly sets one of the
// named fields. Positional literals are treated as setting everything.
func setsAnyField(lit *ast.CompositeLit, names []string) bool {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return true // positional literal: all fields present
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		for _, want := range names {
			if key.Name == want {
				return true
			}
		}
	}
	return false
}
