// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic)
// used by this repository's custom lint suite (cmd/rulefitlint).
//
// The x/tools module is deliberately not a dependency: the checkers here
// need only syntax trees, type information and a package loader, all of
// which the standard library provides. The API mirrors x/tools closely
// enough that the analyzers could be ported to real go/analysis drivers
// by swapping import paths.
//
// Suppression: every analyzer honors a line directive of the form
//
//	//lint:<name> <reason>
//
// placed on the flagged line or the line directly above it, where <name>
// is the analyzer name (floatcmp also accepts its documented alias
// "exactfloat"). Suppressions should carry a one-line reason.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the short command-line identifier (also the suppression
	// directive name).
	Name string
	// Doc is the one-paragraph description shown by -help.
	Doc string
	// FactTypes lists the fact types the analyzer exports and imports
	// (each entry a typed nil pointer, e.g. (*ReturnsTaint)(nil)).
	// Declaring them documents the analyzer's cross-package surface.
	FactTypes []Fact
	// Run applies the check to one package, reporting findings through
	// the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the run-wide fact store (see facts.go). The driver sets
	// it; packages are analyzed in dependency order so facts exported
	// by an imported package are visible here.
	Facts *FactSet

	// Report receives each diagnostic. The driver sets it.
	Report func(Diagnostic)

	// directives maps file line numbers to the set of //lint: directive
	// names present on that line (computed once per package).
	directives map[string]map[int]map[string]bool
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Category string // analyzer name
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Category)
}

// Reportf reports a diagnostic at pos unless a matching //lint:
// suppression directive covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.suppressed(position, p.Analyzer.Name) {
		return
	}
	p.Report(Diagnostic{Pos: position, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Suppressed reports whether a //lint:<name> directive covers pos (same
// line or the line directly above). Exposed for analyzers with aliased
// directive names (floatcmp/exactfloat).
func (p *Pass) Suppressed(pos token.Pos, name string) bool {
	return p.suppressed(p.Fset.Position(pos), name)
}

func (p *Pass) suppressed(pos token.Position, name string) bool {
	if p.directives == nil {
		p.directives = collectDirectives(p.Fset, p.Files)
	}
	lines := p.directives[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][name] || lines[pos.Line-1][name]
}

// collectDirectives scans comments for //lint:<name>... markers.
func collectDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	out := make(map[string]map[int]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, "//lint:") {
					continue
				}
				rest := strings.TrimPrefix(text, "//lint:")
				name := rest
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					name = rest[:i]
				}
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					out[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					lines[pos.Line] = set
				}
				set[name] = true
			}
		}
	}
	return out
}

// IsFloat reports whether t's underlying type is a floating-point basic
// type (helper shared by float-sensitive analyzers).
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// NamedFrom reports whether t (after pointer stripping) is the named
// type pkgPath.name, resolving aliases.
func NamedFrom(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// RunAnalyzers applies each analyzer to each package, returning all
// diagnostics in deterministic (file, line, column, analyzer) order.
// Packages are visited in dependency order with a fresh shared fact
// store, so facts exported while analyzing a package are visible when
// its importers are analyzed.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunAnalyzersFacts(pkgs, analyzers, NewFactSet())
}

// RunAnalyzersFacts is RunAnalyzers with a caller-provided fact store,
// which may be pre-seeded with facts decoded from dependency .vetx
// files (go vet mode) and afterwards holds every fact the run exported.
func RunAnalyzersFacts(pkgs []*Package, analyzers []*Analyzer, facts *FactSet) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range dependencyOrder(pkgs) {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Facts:     facts,
				Report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// dependencyOrder sorts packages so every package follows the packages
// it imports (restricted to the given set). Ties keep the input order,
// so output is deterministic for a deterministic loader.
func dependencyOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	out := make([]*Package, 0, len(pkgs))
	state := make(map[string]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		switch state[p.ImportPath] {
		case 1, 2:
			// Import cycles cannot occur in valid Go; "visiting" is
			// only reachable through one and is simply cut.
			return
		}
		state[p.ImportPath] = 1
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		state[p.ImportPath] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// sortDiagnostics orders findings by (file, line, column, analyzer).
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Category < b.Category
	})
}
