// Package mapdet flags range statements over maps whose loop bodies have
// iteration-order-dependent effects: appending values to a slice,
// emitting solver model objects (AddConstraint/AddClause/...), or
// writing formatted output. Go randomizes map iteration order, so such
// loops make model construction — and therefore simplex pivoting, branch
// & bound order and the final placement — differ between identical runs.
//
// The standard fix is the repo's sorted-keys idiom:
//
//	keys := make([]K, 0, len(m))
//	for k := range m { keys = append(keys, k) }
//	sort.Slice(keys, ...)
//	for _, k := range keys { ... }
//
// Key-collection loops (bodies that only append the range key itself)
// are recognized as the first half of that idiom and not flagged. Loops
// whose per-iteration effects are provably independent (e.g. mutating a
// distinct keyed object per iteration) may be annotated
//
//	//lint:mapdet <why order cannot matter>
package mapdet

import (
	"go/ast"
	"go/types"

	"rulefit/internal/analysis"
)

// Analyzer flags order-dependent iteration over maps.
var Analyzer = &analysis.Analyzer{
	Name: "mapdet",
	Doc:  "flags map iteration with order-dependent effects (append/emit/write); iterate sorted keys instead",
	Run:  run,
}

// emitNames are callee names treated as order-sensitive emission: solver
// model construction and stream/builder output.
var emitNames = map[string]bool{
	"AddConstraint": true, "AddClause": true, "AddPB": true,
	"AddVar": true, "AddBinary": true, "NewVar": true,
	"addVar": true, "Add": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true,
	"WriteString": true, "WriteByte": true, "WriteRune": true, "Write": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if reason := orderDependentEffect(pass, rs); reason != "" {
				pass.Reportf(rs.Pos(), "iteration over map has order-dependent effect (%s); iterate sorted keys, or annotate //lint:mapdet with a reason", reason)
			}
			return true
		})
	}
	return nil
}

// orderDependentEffect scans a map-range body for effects whose result
// depends on iteration order, returning a short description or "".
func orderDependentEffect(pass *analysis.Pass, rs *ast.RangeStmt) string {
	keyObj := rangeVarObj(pass, rs.Key)
	// Appends stored back into a map entry indexed by the loop's own key
	// (m2[k] = append(...)) touch a distinct element per iteration, so
	// order cannot matter.
	keyed := keyedAppends(pass, rs, keyObj)
	reason := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			if fn.Name == "append" && !keyed[call] {
				if !appendsOnlyKey(pass, call, keyObj) {
					reason = "append of non-key values"
				}
				return true
			}
		case *ast.SelectorExpr:
			if emitNames[fn.Sel.Name] {
				reason = "call to " + fn.Sel.Name
				return true
			}
		}
		return true
	})
	return reason
}

// keyedAppends collects append calls of the form x[k] = append(...),
// where k is the range key: their effect is confined to a per-key slot.
func keyedAppends(pass *analysis.Pass, rs *ast.RangeStmt, keyObj types.Object) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	if keyObj == nil {
		return out
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		idx, ok := as.Lhs[0].(*ast.IndexExpr)
		if !ok || !derivesOnlyFrom(pass, idx.Index, keyObj) {
			return true
		}
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" {
				out[call] = true
			}
		}
		return true
	})
	return out
}

// rangeVarObj resolves the declared object of a range key/value ident.
func rangeVarObj(pass *analysis.Pass, expr ast.Expr) types.Object {
	id, ok := expr.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// appendsOnlyKey reports whether every appended element is the range key
// itself (possibly via a conversion), i.e. the loop is the key-collection
// half of the collect-sort-iterate idiom.
func appendsOnlyKey(pass *analysis.Pass, call *ast.CallExpr, keyObj types.Object) bool {
	if keyObj == nil || len(call.Args) < 2 {
		return false
	}
	for _, arg := range call.Args[1:] {
		if !derivesOnlyFrom(pass, arg, keyObj) {
			return false
		}
	}
	return true
}

// derivesOnlyFrom reports whether expr is the given object, possibly
// wrapped in type conversions or parentheses.
func derivesOnlyFrom(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e] == obj
	case *ast.ParenExpr:
		return derivesOnlyFrom(pass, e.X, obj)
	case *ast.CallExpr:
		// Type conversion of the key: T(k).
		if len(e.Args) != 1 {
			return false
		}
		if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
			return derivesOnlyFrom(pass, e.Args[0], obj)
		}
		return false
	default:
		return false
	}
}
