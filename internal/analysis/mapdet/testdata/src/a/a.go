// Fixture for the mapdet analyzer: positive and negative cases.
package a

import (
	"fmt"
	"io"
	"sort"
)

// model stands in for a solver model with emit-style methods.
type model struct{ n int }

func (m *model) AddConstraint(v int) { m.n += v }
func (m *model) AddClause(v int)     { m.n += v }

func appendValues(m map[int]string) []string {
	var out []string
	for _, v := range m { // want "order-dependent effect .append of non-key values."
		out = append(out, v)
	}
	return out
}

func emitModel(m map[int]int, mdl *model) {
	for _, v := range m { // want "order-dependent effect .call to AddConstraint."
		mdl.AddConstraint(v)
	}
}

func writeOut(m map[string]int, w io.Writer) {
	for k, v := range m { // want "order-dependent effect .call to Fprintf."
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func keyThenValue(m map[int]string) []string {
	// Sorted-keys idiom: the collection loop appends only the key.
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var out []string
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

type id int

func keyConversion(m map[id]bool) []int {
	var out []int
	for k := range m { // conversion of the key still counts as key-only
		out = append(out, int(k))
	}
	sort.Ints(out)
	return out
}

func orderFree(m map[int]int) int {
	total := 0
	for _, v := range m { // commutative reduction: fine
		total += v
	}
	for k := range m { // deletion is order-independent
		if k < 0 {
			delete(m, k)
		}
	}
	return total
}

func keyedCopy(m map[int][]int) map[int][]int {
	out := make(map[int][]int, len(m))
	for k, vs := range m { // per-key slot: order cannot matter
		out[k] = append([]int(nil), vs...)
	}
	return out
}

func suppressed(m map[int]*model) {
	//lint:mapdet each iteration mutates only its own model; no shared state
	for _, mdl := range m {
		mdl.AddClause(1)
	}
}
