package mapdet_test

import (
	"testing"

	"rulefit/internal/analysis/analysistest"
	"rulefit/internal/analysis/mapdet"
)

func TestMapdet(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), mapdet.Analyzer, "a")
}
