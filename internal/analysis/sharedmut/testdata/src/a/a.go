// Fixture for sharedmut: mutex-guarded field writes, atomic/plain
// mixing, goroutine loop captures, and sends after close.
package a

import (
	"sync"
	"sync/atomic"
)

// Counter guards n with mu — except in Reset, which forgot the lock.
type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *Counter) Reset() {
	c.n = 0 // want "unsynchronized write to Counter.n"
}

// NewCounter writes n before the value escapes: constructor-exclusive
// writes are exempt.
func NewCounter() *Counter {
	c := &Counter{}
	c.n = 1
	return c
}

// resetLocked documents its contract; the annotation records it.
func (c *Counter) resetLocked() {
	//lint:sharedmut caller holds c.mu
	c.n = 0
}

// Gauge mixes atomic and plain access to hits; cold is plain-only and
// therefore fine.
type Gauge struct {
	hits int64
	cold int64
}

func (g *Gauge) Hit() {
	atomic.AddInt64(&g.hits, 1)
}

func (g *Gauge) Zero() {
	g.hits = 0 // want "plain write to Gauge.hits"
	g.cold = 0
}

// Launch shares total across all spawned goroutines.
func Launch(xs []int) int {
	total := 0
	for _, x := range xs {
		go func() { // want "captures \\\"total\\\""
			total += x
		}()
	}
	return total
}

// LaunchShared re-binds i (declared outside the loop) every iteration.
func LaunchShared(xs []int, use func(int)) {
	i := 0
	for i = range xs {
		go func() { // want "captures \\\"i\\\""
			use(i)
		}()
	}
}

// LaunchArg passes the loop state in as arguments: clean.
func LaunchArg(xs []int, use func(int)) {
	for _, x := range xs {
		go func(x int) {
			use(x)
		}(x)
	}
}

// LaunchFresh captures only per-iteration loop variables: clean under
// go 1.22 per-iteration semantics.
func LaunchFresh(xs []int, use func(int)) {
	for _, x := range xs {
		go func() {
			use(x)
		}()
	}
}

// SendClosed sends after closing: run-time panic.
func SendClosed() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want "send on \\\"ch\\\" after close"
}

// SendThenClose is the correct order.
func SendThenClose() {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
}
