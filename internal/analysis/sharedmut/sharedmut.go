// Package sharedmut flags shared-mutation hazards that the race
// detector only catches when the losing interleaving actually runs:
//
//   - goroutines launched inside a loop that capture a variable written
//     by the loop (the capture races with the next iteration's write, or
//     sibling goroutines race with each other);
//   - plain (unsynchronized) writes to struct fields that are accessed
//     under a sync.Mutex/RWMutex elsewhere in the package;
//   - plain writes to struct fields that are accessed through sync/atomic
//     elsewhere (mixing atomic and non-atomic access is undefined);
//   - sends on a channel after a close(ch) earlier in the same function.
//
// The mutex check is positional: a field access is "guarded" when it
// sits between a Lock/RLock call statement and the next Unlock/RUnlock
// (a deferred unlock guards to the end of the function). Functions that
// write fields of values they created locally (constructors — the value
// is not yet shared) are exempt.
//
// Intentional exceptions — e.g. a helper documented "caller holds mu" —
// are annotated
//
//	//lint:sharedmut <why the access cannot race>
package sharedmut

import (
	"go/ast"
	"go/token"
	"go/types"

	"rulefit/internal/analysis"
)

// Analyzer flags shared-mutation hazards.
var Analyzer = &analysis.Analyzer{
	Name: "sharedmut",
	Doc:  "flags goroutine loop-variable capture, unsynchronized writes to mutex- or atomic-guarded fields, and sends after close",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	guarded, atomics := collectGuardedFields(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLoopCapture(pass, fd)
			checkFieldWrites(pass, fd, guarded, atomics)
			checkSendAfterClose(pass, fd)
		}
	}
	return nil
}

// span is a half-open source-position interval [start, end).
type span struct{ start, end token.Pos }

func inSpans(spans []span, pos token.Pos) bool {
	for _, s := range spans {
		if pos >= s.start && pos < s.end {
			return true
		}
	}
	return false
}

// collectGuardedFields scans every function in the package and returns
// the set of same-package struct fields accessed inside mutex regions
// and the set accessed through sync/atomic calls. Keys are
// "TypeName.fieldName".
func collectGuardedFields(pass *analysis.Pass) (guarded, atomics map[string]bool) {
	guarded = make(map[string]bool)
	atomics = make(map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			regions := lockRegions(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.SelectorExpr:
					if len(regions) == 0 || !inSpans(regions, e.Pos()) {
						return true
					}
					if key := fieldKey(pass, e); key != "" {
						guarded[key] = true
					}
				case *ast.CallExpr:
					if !isAtomicCall(pass, e) {
						return true
					}
					for _, arg := range e.Args {
						u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
						if !ok || u.Op != token.AND {
							continue
						}
						if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
							if key := fieldKey(pass, sel); key != "" {
								atomics[key] = true
							}
						}
					}
				}
				return true
			})
		}
	}
	return guarded, atomics
}

// lockRegions returns the positional mutex-held intervals of a function
// body: each Lock/RLock statement opens a region closed by the next
// Unlock/RUnlock statement after it, or by the end of the body when the
// next unlock is deferred (or absent).
func lockRegions(pass *analysis.Pass, body *ast.BlockStmt) []span {
	type unlockEvent struct {
		pos      token.Pos
		deferred bool
	}
	var locks []token.Pos
	var unlocks []unlockEvent
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			call, ok := ast.Unparen(st.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			switch syncMethod(pass, call) {
			case "Lock", "RLock":
				locks = append(locks, st.Pos())
			case "Unlock", "RUnlock":
				unlocks = append(unlocks, unlockEvent{st.Pos(), false})
			}
		case *ast.DeferStmt:
			switch syncMethod(pass, st.Call) {
			case "Unlock", "RUnlock":
				unlocks = append(unlocks, unlockEvent{st.Pos(), true})
			}
		}
		return true
	})
	var out []span
	for _, l := range locks {
		end := body.End()
		var first *unlockEvent
		for i := range unlocks {
			u := &unlocks[i]
			if u.pos > l && (first == nil || u.pos < first.pos) {
				first = u
			}
		}
		if first != nil && !first.deferred {
			end = first.pos
		}
		out = append(out, span{l, end})
	}
	return out
}

// syncMethod returns the method name when call is a method of package
// sync (Mutex/RWMutex Lock, Unlock, ... — including promoted embedded
// mutexes), else "".
func syncMethod(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	return obj.Name()
}

// isAtomicCall reports whether call invokes a function from sync/atomic
// (the package-level Add/Load/Store/Swap family; the typed atomic.Int64
// etc. are safe by construction and irrelevant here).
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// fieldKey returns "TypeName.fieldName" for a selection of a field of a
// named struct type declared in this package, else "".
func fieldKey(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	tn := named.Obj()
	if tn.Pkg() == nil || tn.Pkg() != pass.Pkg {
		return ""
	}
	return tn.Name() + "." + s.Obj().Name()
}

// checkFieldWrites reports plain writes to fields that are guarded or
// atomic elsewhere, unless the write is itself inside a mutex region or
// targets a value created locally (constructor-exclusive writes).
func checkFieldWrites(pass *analysis.Pass, fd *ast.FuncDecl, guarded, atomics map[string]bool) {
	regions := lockRegions(pass, fd.Body)
	report := func(sel *ast.SelectorExpr, pos token.Pos) {
		key := fieldKey(pass, sel)
		if key == "" {
			return
		}
		if !guarded[key] && !atomics[key] {
			return
		}
		if inSpans(regions, pos) || localBase(pass, fd, sel.X) {
			return
		}
		if atomics[key] {
			pass.Reportf(pos, "plain write to %s, which is accessed via sync/atomic elsewhere; use the atomic API for every access", key)
			return
		}
		pass.Reportf(pos, "unsynchronized write to %s, which is guarded by a mutex elsewhere; hold the lock or annotate //lint:sharedmut with why this cannot race", key)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					report(sel, st.Pos())
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := ast.Unparen(st.X).(*ast.SelectorExpr); ok {
				report(sel, st.Pos())
			}
		}
		return true
	})
}

// localBase reports whether the base expression bottoms out in a
// variable declared inside this function's body — a value that cannot
// yet be shared with another goroutine through this name.
func localBase(pass *analysis.Pass, fd *ast.FuncDecl, expr ast.Expr) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[e]
			if obj == nil {
				obj = pass.TypesInfo.Defs[e]
			}
			return obj != nil && obj.Pos() >= fd.Body.Pos() && obj.Pos() <= fd.Body.End()
		default:
			return false
		}
	}
}

// checkLoopCapture reports goroutines launched inside a loop whose
// function literal captures a variable that the loop writes and that is
// declared outside the loop (per-iteration loop variables are fresh per
// iteration and safe to capture).
func checkLoopCapture(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var loop ast.Node
		var body *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			loop, body = l, l.Body
		case *ast.RangeStmt:
			loop, body = l, l.Body
		default:
			return true
		}
		written := writtenVars(pass, loop)
		ast.Inspect(body, func(m ast.Node) bool {
			switch g := m.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				// Nested loops are visited as their own loop node; the
				// innermost loop owns the goroutines it contains.
				if m != body {
					return false
				}
			case *ast.GoStmt:
				fl, ok := g.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				reportCaptured(pass, g, fl, loop, written)
			}
			return true
		})
		return true
	})
}

// reportCaptured reports each free variable of the goroutine's function
// literal that is declared outside the loop yet written inside it.
func reportCaptured(pass *analysis.Pass, g *ast.GoStmt, fl *ast.FuncLit, loop ast.Node, written map[types.Object]bool) {
	seen := make(map[types.Object]bool)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() || seen[obj] {
			return true
		}
		if obj.Pos() >= loop.Pos() && obj.Pos() <= loop.End() {
			return true // declared in the loop (or the literal itself): fresh per iteration
		}
		if !written[obj] {
			return true
		}
		seen[obj] = true
		pass.Reportf(g.Pos(), "goroutine launched per loop iteration captures %q, which is written inside the loop; pass it as an argument or synchronize access", obj.Name())
		return true
	})
}

// writtenVars collects the objects assigned anywhere within the loop,
// including loop variables re-bound by `for x = range ...`.
func writtenVars(pass *analysis.Pass, loop ast.Node) map[types.Object]bool {
	out := make(map[types.Object]bool)
	mark := func(expr ast.Expr) {
		if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	if rs, ok := loop.(*ast.RangeStmt); ok && rs.Tok == token.ASSIGN {
		if rs.Key != nil {
			mark(rs.Key)
		}
		if rs.Value != nil {
			mark(rs.Value)
		}
	}
	ast.Inspect(loop, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(st.X)
		}
		return true
	})
	return out
}

// checkSendAfterClose reports sends on a channel positioned after a
// close of the same channel variable in the same function.
func checkSendAfterClose(pass *analysis.Pass, fd *ast.FuncDecl) {
	closedAt := make(map[types.Object]token.Pos)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "close" || len(call.Args) != 1 {
			return true
		}
		if obj := identObj(pass, call.Args[0]); obj != nil {
			if _, dup := closedAt[obj]; !dup {
				closedAt[obj] = call.Pos()
			}
		}
		return true
	})
	if len(closedAt) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ss, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		obj := identObj(pass, ss.Chan)
		if obj == nil {
			return true
		}
		if pos, closed := closedAt[obj]; closed && pos < ss.Pos() {
			pass.Reportf(ss.Pos(), "send on %q after close(%s) earlier in this function panics at run time", obj.Name(), obj.Name())
		}
		return true
	})
}

// identObj resolves a bare (possibly parenthesized) identifier to its
// object, else nil.
func identObj(pass *analysis.Pass, expr ast.Expr) types.Object {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}
