package sharedmut_test

import (
	"testing"

	"rulefit/internal/analysis/analysistest"
	"rulefit/internal/analysis/sharedmut"
)

func TestSharedMut(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), sharedmut.Analyzer, "a")
}
