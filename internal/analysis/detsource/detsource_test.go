package detsource_test

import (
	"strings"
	"testing"

	"rulefit/internal/analysis"
	"rulefit/internal/analysis/analysistest"
	"rulefit/internal/analysis/detsource"
)

func TestDetSource(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detsource.Analyzer, "a")
}

// TestDetSourceCrossPackage loads both fixture packages together:
// taint originates in taintsrc and reports at sinks in taintuse,
// carried by ReturnsTaint facts across the export-data boundary.
func TestDetSourceCrossPackage(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detsource.Analyzer, "taintsrc", "taintuse")
}

// TestDetSourceCatchesSolverMapOrderLeak pins the acceptance case: a
// deliberate map-order leak in a solver-shaped Place return path is
// caught at both sink kinds.
func TestDetSourceCatchesSolverMapOrderLeak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detsource.Analyzer, "solverleak")
}

// TestFactsSurviveSerialization runs the analyzer over the taint
// source package, round-trips the resulting fact set through its wire
// encoding, and checks the facts a consumer would need are present —
// the same path the vet-tool mode's .vetx files exercise.
func TestFactsSurviveSerialization(t *testing.T) {
	pkgs, err := analysis.Load(analysistest.TestData()+"/src", "./taintsrc")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	store := analysis.NewFactSet()
	if _, err := analysis.RunAnalyzersFacts(pkgs, []*analysis.Analyzer{detsource.Analyzer}, store); err != nil {
		t.Fatalf("running detsource: %v", err)
	}
	wire, err := store.Encode()
	if err != nil {
		t.Fatalf("encoding facts: %v", err)
	}
	decoded, err := analysis.DecodeFactSet(wire)
	if err != nil {
		t.Fatalf("decoding facts: %v", err)
	}
	var haveKeys, haveClock bool
	for _, k := range decoded.Keys() {
		if !strings.HasPrefix(k, "detsource\x00") {
			continue
		}
		if strings.Contains(k, "taintsrc.Keys\x00") {
			haveKeys = true
		}
		if strings.Contains(k, "taintsrc.Clock\x00") {
			haveClock = true
		}
	}
	if !haveKeys || !haveClock {
		t.Errorf("decoded fact set misses expected summaries (Keys=%v Clock=%v): %q",
			haveKeys, haveClock, decoded.Keys())
	}
}
