// Package detsource is a dataflow taint analyzer for nondeterminism
// sources. The repo's correctness story rests on byte-determinism —
// identical inputs must produce identical placements, traces, and
// reports — so values whose identity or order depends on a
// nondeterministic source must never reach a determinism-sensitive
// output.
//
// Sources (the taint lattice's non-bottom elements):
//
//   - map iteration order: slices built by appending inside a range
//     over a map (or over an already-tainted slice) carry their
//     elements in randomized order;
//   - the wall clock: time.Now / time.Since and arithmetic on their
//     results;
//   - global math/rand: package-level math/rand functions draw from a
//     process-global, randomly-seeded source (methods on an explicit
//     seeded *rand.Rand are deterministic and not flagged);
//   - select arbitration: a variable assigned in two or more comm
//     clauses of one select takes whichever case the runtime picks.
//
// Sinks:
//
//   - returns of exported functions/methods (map-order, rand, and
//     select taint report here; wall-clock values legitimately cross
//     API boundaries, so they only export a fact);
//   - stores into serialized struct fields — fields carrying a json
//     tag end up in placements, traces, or BENCH reports. The
//     Event.TimeMS normalization point is the one sanctioned
//     wall-clock store (determinism comparisons exclude it).
//
// Sanitizers clear taint: sort.* / slices.Sort* over a map-derived
// slice (the sorted-keys idiom's second half), and any function whose
// doc comment carries a //lint:detsource-sanitizer directive (a
// canonical-ordering helper); its slice arguments and results are
// considered order-clean.
//
// Taint crosses package boundaries through ReturnsTaint facts: when an
// analyzed function returns a tainted value, callers in importing
// packages taint the call's results, so taint originating in one
// package reports at a sink in another.
//
// Justified findings (e.g. a benchmark result struct that records wall
// time by design) are annotated //lint:detsource <reason>.
package detsource

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"rulefit/internal/analysis"
)

// Taint kinds, phrased for diagnostics.
const (
	kindMapOrder  = "map iteration order"
	kindWallClock = "the wall clock"
	kindRand      = "global math/rand"
	kindSelect    = "select arbitration"
)

// ReturnsTaint is the exported fact: calling this function yields a
// value derived from the listed nondeterminism sources.
type ReturnsTaint struct {
	Kinds []string // sorted
}

// AFact marks ReturnsTaint as a fact.
func (*ReturnsTaint) AFact() {}

// Sanitizer marks a function annotated //lint:detsource-sanitizer: its
// slice arguments and results are considered order-clean.
type Sanitizer struct{}

// AFact marks Sanitizer as a fact.
func (*Sanitizer) AFact() {}

// Analyzer is the detsource analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "detsource",
	Doc:       "taints values derived from nondeterminism sources (map order, wall clock, global rand, select races) and reports taint reaching exported returns or serialized fields",
	FactTypes: []analysis.Fact{(*ReturnsTaint)(nil), (*Sanitizer)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) error {
	var fns []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fns = append(fns, fd)
				if hasSanitizerDirective(fd) {
					if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
						pass.ExportObjectFact(obj, &Sanitizer{})
					}
				}
			}
		}
	}

	// Summaries first, to a fixpoint: a function's return taint may
	// come from a callee later in the file (or in this package's
	// dependency cycle of helpers), so iterate until no fact changes.
	for iter := 0; iter < 10; iter++ {
		changed := false
		for _, fd := range fns {
			kinds := analyzeFunc(pass, fd, false)
			if len(kinds) == 0 {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			if pass.ExportObjectFact(obj, &ReturnsTaint{Kinds: kinds}) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Report pass, with all summaries in place.
	for _, fd := range fns {
		analyzeFunc(pass, fd, true)
	}
	return nil
}

// hasSanitizerDirective reports a //lint:detsource-sanitizer doc line.
func hasSanitizerDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//lint:detsource-sanitizer") {
			return true
		}
	}
	return false
}

// taintVal is one variable's taint state.
type taintVal struct {
	kind string
}

// walker carries one function's abstract interpretation: a
// flow-sensitive taint map over local objects, walked in source order
// with strong updates (assigning a clean value clears taint) and
// sanitizer kills.
type walker struct {
	pass   *analysis.Pass
	fd     *ast.FuncDecl
	report bool
	taint  map[types.Object]taintVal
	// rangeKeys has one entry per enclosing nondeterministic-order
	// loop (range over a map or over a map-order-tainted slice); the
	// value is the loop's key object, for the keyed-slot exemption.
	rangeKeys []types.Object
	// litDepth tracks enclosing function literals: returns inside a
	// closure are not the outer function's returns.
	litDepth int
	retKinds map[string]bool
}

// analyzeFunc interprets one function and returns the sorted taint
// kinds its returns can carry. With report set, sink violations are
// reported through the pass.
func analyzeFunc(pass *analysis.Pass, fd *ast.FuncDecl, report bool) []string {
	w := &walker{
		pass:     pass,
		fd:       fd,
		report:   report,
		taint:    make(map[types.Object]taintVal),
		retKinds: make(map[string]bool),
	}
	w.stmt(fd.Body)
	kinds := make([]string, 0, len(w.retKinds))
	for k := range w.retKinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// obj resolves an ident to its object (definition or use).
func (w *walker) obj(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if o := w.pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return w.pass.TypesInfo.Uses[id]
}

// rootObj digs through wrappers to the object an expression is rooted
// at (for taint assignment and sanitizer kills).
func (w *walker) rootObj(e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		return w.obj(x)
	case *ast.ParenExpr:
		return w.rootObj(x.X)
	case *ast.IndexExpr:
		return w.rootObj(x.X)
	case *ast.SliceExpr:
		return w.rootObj(x.X)
	case *ast.StarExpr:
		return w.rootObj(x.X)
	case *ast.UnaryExpr:
		return w.rootObj(x.X)
	case *ast.CallExpr:
		// Through a type conversion: T(x).
		if len(x.Args) == 1 {
			if tv, ok := w.pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() {
				return w.rootObj(x.Args[0])
			}
		}
	}
	return nil
}

// ---- statements ----

func (w *walker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, inner := range st.List {
			w.stmt(inner)
		}
	case *ast.AssignStmt:
		w.assign(st)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var kind string
					if len(vs.Values) == len(vs.Names) {
						kind = w.expr(vs.Values[i])
					} else if len(vs.Values) == 1 {
						kind = w.expr(vs.Values[0])
					}
					w.setTaint(w.obj(name), kind)
				}
			}
		}
	case *ast.ExprStmt:
		w.expr(st.X)
	case *ast.IfStmt:
		w.stmt(st.Init)
		w.expr(st.Cond)
		w.stmt(st.Body)
		w.stmt(st.Else)
	case *ast.ForStmt:
		w.stmt(st.Init)
		if st.Cond != nil {
			w.expr(st.Cond)
		}
		w.stmt(st.Post)
		w.stmt(st.Body)
	case *ast.RangeStmt:
		w.rangeStmt(st)
	case *ast.SwitchStmt:
		w.stmt(st.Init)
		if st.Tag != nil {
			w.expr(st.Tag)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.expr(e)
			}
			for _, inner := range cc.Body {
				w.stmt(inner)
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(st.Init)
		w.stmt(st.Assign)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, inner := range cc.Body {
				w.stmt(inner)
			}
		}
	case *ast.SelectStmt:
		w.selectStmt(st)
	case *ast.ReturnStmt:
		for _, res := range st.Results {
			kind := w.expr(res)
			if kind == "" || w.litDepth > 0 {
				continue
			}
			w.retKinds[kind] = true
			if w.report && w.fd.Name.IsExported() && kind != kindWallClock {
				w.pass.Reportf(res.Pos(),
					"exported %s returns a value derived from %s; sort/canonicalize before returning, or annotate //lint:detsource with a reason",
					w.fd.Name.Name, kind)
			}
		}
	case *ast.GoStmt:
		w.expr(st.Call)
	case *ast.DeferStmt:
		w.expr(st.Call)
	case *ast.SendStmt:
		w.expr(st.Chan)
		w.expr(st.Value)
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	case *ast.IncDecStmt:
		w.expr(st.X)
	}
}

// assign handles one assignment: taint flows right to left, with
// strong updates, the map-range append rule, and field-store sinks.
func (w *walker) assign(st *ast.AssignStmt) {
	// Multi-value form: x, y := f().
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		kind := w.expr(st.Rhs[0])
		for _, lhs := range st.Lhs {
			w.assignOne(lhs, st.Rhs[0], kind)
		}
		return
	}
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) {
			break
		}
		rhs := st.Rhs[i]
		kind := w.expr(rhs)
		// Appending inside a map-ordered loop builds a slice whose
		// element order inherits the iteration order — unless the
		// destination is a per-key slot (m2[k] = append(m2[k], ...)),
		// whose contents come from a single iteration.
		if kind == "" && w.inMapRange() && isAppend(w.pass, rhs) && !w.keyedSlot(lhs) {
			kind = kindMapOrder
		}
		w.assignOne(lhs, rhs, kind)
	}
}

func (w *walker) assignOne(lhs, rhs ast.Expr, kind string) {
	switch l := lhs.(type) {
	case *ast.Ident:
		w.setTaint(w.obj(l), kind)
	case *ast.IndexExpr:
		w.expr(l.Index)
		if kind != "" {
			// Writing a tainted element taints the container.
			if obj := w.rootObj(l.X); obj != nil {
				w.taint[obj] = taintVal{kind}
			}
		}
	case *ast.SelectorExpr:
		w.expr(l.X)
		if kind != "" {
			if tv, ok := w.pass.TypesInfo.Types[l.X]; ok {
				w.checkFieldStore(tv.Type, l.Sel.Name, kind, rhs.Pos())
			}
		}
	case *ast.StarExpr:
		w.expr(l.X)
	}
}

func (w *walker) setTaint(obj types.Object, kind string) {
	if obj == nil {
		return
	}
	if kind == "" {
		delete(w.taint, obj)
		return
	}
	w.taint[obj] = taintVal{kind}
}

func (w *walker) inMapRange() bool { return len(w.rangeKeys) > 0 }

// keyedSlot reports whether lhs is an index expression keyed by the
// innermost nondeterministic loop's own key variable.
func (w *walker) keyedSlot(lhs ast.Expr) bool {
	idx, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	key := w.rangeKeys[len(w.rangeKeys)-1]
	return key != nil && w.rootObj(idx.Index) == key
}

func (w *walker) rangeStmt(st *ast.RangeStmt) {
	overKind := w.expr(st.X)
	_, isMap := typeOf(w.pass, st.X).Underlying().(*types.Map)
	nondet := isMap || overKind == kindMapOrder
	if nondet {
		w.rangeKeys = append(w.rangeKeys, w.obj(st.Key))
	}
	// Ranging a tainted (non-order) value taints the element vars.
	if overKind != "" && overKind != kindMapOrder {
		w.setTaint(w.obj(st.Key), overKind)
		w.setTaint(w.obj(st.Value), overKind)
	}
	w.stmt(st.Body)
	if nondet {
		w.rangeKeys = w.rangeKeys[:len(w.rangeKeys)-1]
	}
}

// selectStmt taints variables assigned in two or more comm clauses:
// which clause executes is scheduler arbitration.
func (w *walker) selectStmt(st *ast.SelectStmt) {
	counts := make(map[types.Object]int)
	for _, c := range st.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if as, ok := cc.Comm.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if obj := w.obj(lhs); obj != nil {
					counts[obj]++
				}
			}
		}
	}
	// Walk the comm statements first (their strong updates would
	// otherwise clear the arbitration taint applied below), then taint,
	// then walk the bodies.
	for _, c := range st.Body.List {
		if cc, ok := c.(*ast.CommClause); ok {
			w.stmt(cc.Comm)
		}
	}
	for obj, n := range counts {
		if n >= 2 {
			w.taint[obj] = taintVal{kindSelect}
		}
	}
	for _, c := range st.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		for _, inner := range cc.Body {
			w.stmt(inner)
		}
	}
}

// ---- expressions ----

// expr computes an expression's taint kind ("" for clean), walking
// nested expressions for composite-literal sinks along the way.
func (w *walker) expr(e ast.Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *ast.Ident:
		if t, ok := w.taint[w.obj(x)]; ok {
			return t.kind
		}
		return ""
	case *ast.ParenExpr:
		return w.expr(x.X)
	case *ast.UnaryExpr:
		return w.expr(x.X)
	case *ast.StarExpr:
		return w.expr(x.X)
	case *ast.BinaryExpr:
		lk := w.expr(x.X)
		rk := w.expr(x.Y)
		// Comparisons yield order-free booleans; deadline checks and
		// bound tests are sanctioned control flow (StopReason records
		// limit-dependent stops explicitly).
		switch x.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			return ""
		}
		if lk != "" {
			return lk
		}
		return rk
	case *ast.IndexExpr:
		w.expr(x.Index)
		return w.expr(x.X)
	case *ast.SliceExpr:
		return w.expr(x.X)
	case *ast.SelectorExpr:
		// Field reads are not tracked (taint dies at struct
		// boundaries except for the serialized-field sinks).
		w.expr(x.X)
		return ""
	case *ast.CallExpr:
		return w.call(x)
	case *ast.CompositeLit:
		return w.compositeLit(x)
	case *ast.KeyValueExpr:
		return w.expr(x.Value)
	case *ast.TypeAssertExpr:
		return w.expr(x.X)
	case *ast.FuncLit:
		w.litDepth++
		w.stmt(x.Body)
		w.litDepth--
		return ""
	}
	return ""
}

// call computes a call's result taint: sources, sanitizers, summaries
// (facts), conversions, and method calls on tainted receivers.
func (w *walker) call(call *ast.CallExpr) string {
	// Type conversion: taint passes through.
	if tv, ok := w.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return w.expr(call.Args[0])
	}

	// Walk arguments (composite-literal sinks live here too), joining
	// their taint for the builtin/propagation cases.
	argKind := ""
	for _, arg := range call.Args {
		if k := w.expr(arg); k != "" && argKind == "" {
			argKind = k
		}
	}

	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		if obj := w.pass.TypesInfo.Uses[f]; obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
				switch f.Name {
				case "append", "min", "max":
					return argKind
				default:
					return ""
				}
			}
			return w.funcTaint(obj, call, argKind)
		}
	case *ast.SelectorExpr:
		if pkgPath, ok := qualifiedPkg(w.pass, f); ok {
			switch {
			case pkgPath == "time" && (f.Sel.Name == "Now" || f.Sel.Name == "Since"):
				return kindWallClock
			case pkgPath == "math/rand" || pkgPath == "math/rand/v2":
				// Constructors (New, NewSource, NewPCG, ...) build
				// explicitly-seeded deterministic generators; only the
				// process-global draws are nondeterministic.
				if strings.HasPrefix(f.Sel.Name, "New") {
					return ""
				}
				return kindRand
			case pkgPath == "sort" || pkgPath == "slices":
				w.sanitizeArgs(call)
				return ""
			}
			if obj := w.pass.TypesInfo.Uses[f.Sel]; obj != nil {
				return w.funcTaint(obj, call, argKind)
			}
			return ""
		}
		// Method call: summaries first, then receiver taint (covers
		// t.Sub(u), d.Microseconds(), ... on tainted values).
		recvKind := w.expr(f.X)
		if obj := w.pass.TypesInfo.Uses[f.Sel]; obj != nil {
			if k := w.funcTaint(obj, call, argKind); k != "" {
				return k
			}
		}
		return recvKind
	}
	return ""
}

// funcTaint consults facts for a callee: sanitizers clear their
// arguments' order taint; ReturnsTaint summaries taint the result.
func (w *walker) funcTaint(obj types.Object, call *ast.CallExpr, argKind string) string {
	var san Sanitizer
	if w.pass.ImportObjectFact(obj, &san) {
		w.sanitizeArgs(call)
		return ""
	}
	var rt ReturnsTaint
	if w.pass.ImportObjectFact(obj, &rt) && len(rt.Kinds) > 0 {
		return rt.Kinds[0]
	}
	return ""
}

// sanitizeArgs clears map-order taint from a sanitizer call's slice
// arguments (sort.Slice(keys, ...) makes keys order-clean).
func (w *walker) sanitizeArgs(call *ast.CallExpr) {
	for _, arg := range call.Args {
		obj := w.rootObj(arg)
		if obj == nil {
			continue
		}
		if t, ok := w.taint[obj]; ok && t.kind == kindMapOrder {
			delete(w.taint, obj)
		}
	}
}

// compositeLit joins element taint and checks serialized-field sinks.
// Struct literals absorb taint (the serialized-field sinks are the
// checks at struct boundaries; fields are not tracked as values), so
// only slice/array/map literals propagate their elements' taint.
func (w *walker) compositeLit(lit *ast.CompositeLit) string {
	join := ""
	t := typeOf(w.pass, lit)
	_, isStruct := structUnder(t)
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			kind := w.expr(kv.Value)
			if kind != "" {
				if join == "" {
					join = kind
				}
				if name, ok := kv.Key.(*ast.Ident); ok {
					w.checkFieldStore(t, name.Name, kind, kv.Value.Pos())
				}
			}
			continue
		}
		kind := w.expr(elt)
		if kind != "" {
			if join == "" {
				join = kind
			}
			if st, ok := structUnder(t); ok && i < st.NumFields() {
				w.checkFieldStore(t, st.Field(i).Name(), kind, elt.Pos())
			}
		}
	}
	if isStruct {
		return ""
	}
	return join
}

// checkFieldStore reports a tainted store into a serialized (json-
// tagged) struct field. Event.TimeMS — the documented normalization
// point, zeroed by Normalize before determinism comparisons — is the
// one sanctioned wall-clock store.
func (w *walker) checkFieldStore(structType types.Type, fieldName, kind string, pos token.Pos) {
	st, ok := structUnder(structType)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != fieldName {
			continue
		}
		tag := reflect.StructTag(st.Tag(i)).Get("json")
		if tag == "" || tag == "-" {
			return // not serialized
		}
		if fieldName == "TimeMS" && kind == kindWallClock {
			return // sanctioned normalization point
		}
		if w.report {
			w.pass.Reportf(pos,
				"value derived from %s stored in serialized field %s.%s; route it through a sanctioned normalization point, or annotate //lint:detsource with a reason",
				kind, typeName(structType), fieldName)
		}
		return
	}
}

// ---- type helpers ----

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

// structUnder unwraps pointers and names down to a struct type.
func structUnder(t types.Type) (*types.Struct, bool) {
	if t == nil {
		return nil, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// qualifiedPkg resolves sel's base to an imported package path.
func qualifiedPkg(pass *analysis.Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// isAppend reports whether e is a builtin append call.
func isAppend(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}
