// Fixture: the taint-consuming half of the cross-package pair — every
// finding below is caused by taint that originated in taintsrc and
// traveled here as a ReturnsTaint fact.
package taintuse

import (
	"sort"

	"rulefit/internal/analysis/detsource/testdata/src/taintsrc"
)

type Snapshot struct {
	Names []string `json:"names"`
	MS    float64  `json:"ms"`
}

// Names relays map-ordered data across the package boundary.
func Names(m map[string]int) []string {
	return taintsrc.Keys(m) // want "derived from map iteration order"
}

// Sample serializes both imported taints.
func Sample(m map[string]int) Snapshot {
	return Snapshot{
		Names: taintsrc.Keys(m), // want "serialized field Snapshot.Names"
		MS:    taintsrc.Clock(), // want "serialized field Snapshot.MS"
	}
}

// SortedNames sanitizes the imported order taint before returning.
func SortedNames(m map[string]int) []string {
	names := taintsrc.Keys(m)
	sort.Strings(names)
	return names
}
