// Fixture: a deliberate map-order leak seeded into a solver-shaped
// return path — the exact bug class detsource exists to catch. Place
// mirrors core.Place's extraction loop: assignment rows collected from
// a map and returned in a serialized placement.
package solverleak

type Placement struct {
	Assign [][]int `json:"assign"`
}

// Place builds the placement rows by ranging the map directly instead
// of the sorted-keys idiom: row order is randomized per run.
func Place(byFlow map[int][]int) Placement {
	var assign [][]int
	for _, paths := range byFlow {
		assign = append(assign, paths)
	}
	return Placement{
		Assign: assign, // want "serialized field Placement.Assign"
	}
}

// PlaceRows leaks the same order through a plain exported return.
func PlaceRows(byFlow map[int][]int) [][]int {
	var rows [][]int
	for _, paths := range byFlow {
		rows = append(rows, paths)
	}
	return rows // want "derived from map iteration order"
}
