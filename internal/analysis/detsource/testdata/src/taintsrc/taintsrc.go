// Fixture: the taint-originating half of the cross-package pair. The
// exported functions here carry ReturnsTaint facts that the taintuse
// package imports through the export-data boundary.
package taintsrc

import "time"

var start = time.Now()

// Clock returns a wall-clock reading. Returning it is fine (no report
// here); serializing it in a caller is not.
func Clock() float64 {
	return float64(time.Since(start).Milliseconds())
}

// Keys leaks map iteration order: reported here and recorded as a
// fact for importers.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out // want "derived from map iteration order"
}
