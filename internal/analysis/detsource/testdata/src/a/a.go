// Fixture for the detsource analyzer: all four taint kinds, both
// sinks, sanitizers, and suppression.
package a

import (
	"math/rand"
	"sort"
	"time"
)

// --- map iteration order ---

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out // want "derived from map iteration order"
}

func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys // sanitized: sorted-keys idiom
}

// keysUnexported leaks order but is not itself a report site; callers
// inherit the taint through its ReturnsTaint fact.
func keysUnexported(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func Relay(m map[string]int) []string {
	return keysUnexported(m) // want "derived from map iteration order"
}

func KeyedSlots(m map[int][]int) map[int][]int {
	out := make(map[int][]int, len(m))
	for k, vs := range m {
		out[k] = append(out[k], vs...) // per-key slot: order cannot matter
	}
	return out
}

// --- wall clock ---

type Report struct {
	Label  string  `json:"label"`
	WallMS float64 `json:"wall_ms"`
	TimeMS float64 `json:"time_ms"`
}

func Fill(r *Report, start time.Time) {
	r.TimeMS = float64(time.Since(start).Milliseconds()) // sanctioned normalization point
	r.WallMS = float64(time.Since(start).Milliseconds()) // want "serialized field Report.WallMS"
}

func Build(start time.Time) Report {
	return Report{
		Label:  "x",
		WallMS: float64(time.Since(start).Milliseconds()), // want "serialized field Report.WallMS"
	}
}

// Elapsed returns wall-clock data: legitimate at an API boundary (fact
// only, no report) — it becomes a finding only if serialized.
func Elapsed(start time.Time) float64 {
	return float64(time.Since(start).Milliseconds())
}

type plain struct {
	wall float64 // no json tag: not a serialized sink
}

func FillPlain(p *plain, start time.Time) {
	p.wall = float64(time.Since(start).Milliseconds())
}

// --- global math/rand vs seeded sources ---

func Roll() int {
	return rand.Intn(6) // want "derived from global math/rand"
}

func SeededRoll(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6) // deterministic: explicit seeded source
}

// --- select arbitration ---

func Race(a, b chan int) int {
	var v int
	select {
	case v = <-a:
	case v = <-b:
	}
	return v // want "derived from select arbitration"
}

func SingleRecv(a chan int, done chan struct{}) int {
	var v int
	select {
	case v = <-a:
	case <-done:
	}
	return v // one assigning clause: no arbitration on v's value source
}

// --- sanitizer directive ---

//lint:detsource-sanitizer canonical ordering helper
func canonical(s []string) []string {
	sort.Strings(s)
	return s
}

func Canonicalized(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return canonical(out)
}

// --- suppression ---

func Legacy(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	//lint:detsource order is consumed as a set downstream
	return out
}
