package floatcmp_test

import (
	"testing"

	"rulefit/internal/analysis/analysistest"
	"rulefit/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), floatcmp.Analyzer, "a")
}
