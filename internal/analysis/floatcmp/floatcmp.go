// Package floatcmp flags exact == / != comparisons between
// floating-point values. In simplex/branch-and-bound code an exact
// comparison on a computed float is almost always a latent bug: values
// that are mathematically zero carry rounding noise, so the comparison
// silently flips behaviour between runs and platforms. Use the solver's
// tolerance constants instead, or annotate intentionally-exact checks
// (values only ever assigned, never computed) with
//
//	//lint:exactfloat <why the value is exact>
package floatcmp

import (
	"go/ast"
	"go/token"

	"rulefit/internal/analysis"
)

// Analyzer flags exact floating-point equality comparisons.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "flags exact ==/!= comparisons on floating-point values; use a tolerance or annotate //lint:exactfloat",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, xok := pass.TypesInfo.Types[be.X]
			yt, yok := pass.TypesInfo.Types[be.Y]
			if !xok || !yok || !analysis.IsFloat(xt.Type) || !analysis.IsFloat(yt.Type) {
				return true
			}
			// Comparing two compile-time constants is exact by definition.
			if xt.Value != nil && yt.Value != nil {
				return true
			}
			// The documented opt-out alias.
			if pass.Suppressed(be.Pos(), "exactfloat") {
				return true
			}
			pass.Reportf(be.Pos(), "exact floating-point comparison (%s); use a tolerance, or annotate //lint:exactfloat with a reason", be.Op)
			return true
		})
	}
	return nil
}
