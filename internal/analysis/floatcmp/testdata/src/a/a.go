// Fixture for the floatcmp analyzer: positive and negative cases.
package a

import "math"

const tol = 1e-9

func positives(x, y float64, f float32) bool {
	if x == y { // want "exact floating-point comparison"
		return true
	}
	if x != 0 { // want "exact floating-point comparison"
		return true
	}
	if f == 1.5 { // want "exact floating-point comparison"
		return true
	}
	return x == math.Sqrt(y) // want "exact floating-point comparison"
}

func negatives(x, y float64, n int) bool {
	if math.Abs(x-y) < tol { // tolerance comparison: fine
		return true
	}
	if n == 0 { // integers compare exactly
		return true
	}
	if x < y || x >= y { // ordered comparisons are not equality
		return true
	}
	const a, b = 1.5, 2.5
	return a == b // both operands constant: exact by definition
}

func suppressed(x float64) bool {
	//lint:exactfloat x is only ever assigned the sentinel value
	if x == -1 {
		return true
	}
	return x == 0 //lint:exactfloat stored sentinel, never computed
}
