// Package errcheck flags dropped error returns from this module's own
// APIs. Solver and placement entry points (rulefit, rulefit/internal/...)
// report infeasibility, validation failures and numeric trouble through
// their error results; discarding one silently turns "the solver failed"
// into "the placement is empty". Third-party and standard-library calls
// are out of scope — this is the repo-specific gate, not a general
// errcheck replacement.
package errcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"rulefit/internal/analysis"
)

// ModulePrefix scopes the check to this module's packages.
const ModulePrefix = "rulefit"

// Analyzer flags dropped errors from rulefit package APIs.
var Analyzer = &analysis.Analyzer{
	Name: "errcheck",
	Doc:  "flags dropped error results from rulefit module APIs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				checkCall(pass, st.X, nil)
			case *ast.DeferStmt:
				checkCall(pass, st.Call, nil)
			case *ast.GoStmt:
				checkCall(pass, st.Call, nil)
			case *ast.AssignStmt:
				if len(st.Rhs) == 1 {
					checkCall(pass, st.Rhs[0], st.Lhs)
				}
			}
			return true
		})
	}
	return nil
}

// checkCall reports a dropped error when expr is a call to a rulefit API
// returning an error that the statement discards. lhs is the assignment
// targets (nil for a bare call/defer/go).
func checkCall(pass *analysis.Pass, expr ast.Expr, lhs []ast.Expr) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return
	}
	name, pkgPath, sig := calleeInfo(pass, call)
	if sig == nil || !inModule(pkgPath) {
		return
	}
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if !isErrorType(results.At(i).Type()) {
			continue
		}
		if lhs == nil {
			pass.Reportf(call.Pos(), "error result of %s is dropped; handle it", name)
			return
		}
		// Multi-assign: the i-th lhs receives the i-th result.
		if i < len(lhs) && isBlank(lhs[i]) {
			pass.Reportf(call.Pos(), "error result of %s is assigned to _; handle it", name)
			return
		}
	}
}

// calleeInfo resolves the called function's display name, defining
// package path and signature (nil when not a static call).
func calleeInfo(pass *analysis.Pass, call *ast.CallExpr) (string, string, *types.Signature) {
	var obj types.Object
	var name string
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fn]
		name = fn.Name
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fn.Sel]
		name = fn.Sel.Name
	default:
		return "", "", nil
	}
	fnObj, ok := obj.(*types.Func)
	if !ok {
		return "", "", nil
	}
	sig, ok := fnObj.Type().(*types.Signature)
	if !ok || fnObj.Pkg() == nil {
		return "", "", nil
	}
	return name, fnObj.Pkg().Path(), sig
}

// inModule reports whether a package path is inside this module.
func inModule(path string) bool {
	return path == ModulePrefix || strings.HasPrefix(path, ModulePrefix+"/")
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj() != nil && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// isBlank reports whether an expression is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
