package errcheck_test

import (
	"testing"

	"rulefit/internal/analysis/analysistest"
	"rulefit/internal/analysis/errcheck"
)

func TestErrcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errcheck.Analyzer, "a")
}
