// Fixture for the errcheck analyzer. This package lives under the
// rulefit module path, so its own APIs are in scope; fmt is not.
package a

import "fmt"

type store struct{}

func (s *store) Flush() error            { return nil }
func open(name string) (*store, error)   { return nil, fmt.Errorf("no %s", name) }
func count(name string) (int, error)     { return 0, nil }
func describe(name string) (string, int) { return name, 0 }

func positives(s *store) {
	s.Flush()          // want "error result of Flush is dropped"
	open("x")          // want "error result of open is dropped"
	_ = s.Flush()      // want "error result of Flush is assigned to _"
	_, _ = count("x")  // want "error result of count is assigned to _"
	n, _ := count("x") // want "error result of count is assigned to _"
	_ = n
	defer s.Flush() // want "error result of Flush is dropped"
	go s.Flush()    // want "error result of Flush is dropped"
}

func negatives(s *store) error {
	if err := s.Flush(); err != nil {
		return err
	}
	st, err := open("x")
	if err != nil {
		return err
	}
	_, _ = describe("x") // no error result to drop
	fmt.Println("hello") // outside the module: out of scope
	//lint:errcheck flush failure is unrecoverable here and deliberately ignored
	_ = st.Flush()
	return nil
}
