// Package deps implements the paper's rule dependency analysis (§IV-A1):
// the dependency graph tying each DROP rule to the higher-priority
// overlapping PERMIT rules that must accompany it on a switch, the
// detection of mergeable rules across ingress policies (§IV-B), and the
// breaking of circular merge dependencies via the paper's dummy-rule
// technique (Fig. 5).
package deps

import (
	"fmt"
	"sort"

	"rulefit/internal/policy"
)

// Graph is the per-policy rule dependency graph. Node w (a DROP rule
// index) depends on node u (a PERMIT rule index) when u has higher
// priority and an overlapping match: placing w on a switch requires
// placing u there too (Eq. 1).
type Graph struct {
	// permits[w] lists, for DROP rule index w, the PERMIT rule indices
	// that must be co-located with it, in priority order.
	permits map[int][]int
	// drops lists the DROP rule indices in priority order.
	drops []int
}

// BuildGraph computes the dependency graph of a policy. Rule indices are
// positions in p.Rules (decreasing priority order, so u < w implies u has
// higher priority).
func BuildGraph(p *policy.Policy) *Graph {
	g := &Graph{permits: make(map[int][]int)}
	for w, rw := range p.Rules {
		if rw.Action != policy.Drop {
			continue
		}
		g.drops = append(g.drops, w)
		var us []int
		for u := 0; u < w; u++ {
			ru := p.Rules[u]
			if ru.Action == policy.Permit && ru.Match.Overlaps(rw.Match) {
				us = append(us, u)
			}
		}
		g.permits[w] = us
	}
	return g
}

// Drops returns the DROP rule indices in priority order.
func (g *Graph) Drops() []int { return g.drops }

// Dependents returns the PERMIT rule indices that must accompany DROP
// rule w. The slice must not be modified.
func (g *Graph) Dependents(w int) []int { return g.permits[w] }

// NumEdges returns the total number of dependency edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, us := range g.permits {
		n += len(us)
	}
	return n
}

// PlacedRules returns the sorted set of rule indices that participate in
// placement at all: every DROP rule plus every PERMIT rule some DROP rule
// depends on. PERMIT rules outside this set never need to be installed —
// the network's default already permits their traffic.
func (g *Graph) PlacedRules() []int {
	seen := make(map[int]bool)
	for _, w := range g.drops {
		seen[w] = true
		for _, u := range g.permits[w] {
			seen[u] = true
		}
	}
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// RuleRef addresses one rule inside a slice of policies.
type RuleRef struct {
	// Policy is the index into the policies slice (not the ingress ID).
	Policy int
	// Rule is the index into Policies[Policy].Rules.
	Rule int
}

// String renders the reference.
func (r RuleRef) String() string { return fmt.Sprintf("p%d/r%d", r.Policy, r.Rule) }

// MergeGroup is a set of identical rules (same match, same action) drawn
// from distinct policies that may be installed as a single shared rule
// whose tag field is the union of the member policies (§IV-B).
type MergeGroup struct {
	// Members holds at most one rule per policy, sorted by policy index.
	Members []RuleRef
	Action  policy.Action
	// MatchKey is the canonical key of the shared match.
	MatchKey string
}

// FindMergeable groups identical rules across policies. Only groups with
// at least minPolicies members are returned (use 2 for any sharing).
// Within one policy, only the highest-priority copy of an identical rule
// joins a group. Groups are returned in a deterministic order.
func FindMergeable(policies []*policy.Policy, minPolicies int) []MergeGroup {
	if minPolicies < 2 {
		minPolicies = 2
	}
	type key struct {
		match  string
		action policy.Action
	}
	groups := make(map[key]*MergeGroup)
	var order []key
	for pi, p := range policies {
		seenInPolicy := make(map[key]bool)
		for ri, r := range p.Rules {
			k := key{match: r.Match.Key(), action: r.Action}
			if seenInPolicy[k] {
				continue
			}
			seenInPolicy[k] = true
			g, ok := groups[k]
			if !ok {
				g = &MergeGroup{Action: r.Action, MatchKey: k.match}
				groups[k] = g
				order = append(order, k)
			}
			g.Members = append(g.Members, RuleRef{Policy: pi, Rule: ri})
		}
	}
	var out []MergeGroup
	for _, k := range order {
		g := groups[k]
		if len(g.Members) >= minPolicies {
			out = append(out, *g)
		}
	}
	return out
}

// DummyRule records the paper's circular-dependency fix: the member rule
// Excluded is withdrawn from its merge group, and a shadowed dummy copy
// (same match/action, priority just below Below's member in that policy)
// conceptually joins the group instead. Because the dummy is fully
// dominated by the original rule it never matches, so policy semantics
// are unchanged; the practical effect on placement is that the excluded
// policy installs its copy separately.
type DummyRule struct {
	Excluded RuleRef
	// Group is the index (into the returned groups) the member left.
	Group int
}

// BreakCycles removes merge-group members until the cross-policy
// precedence relation over merged rules is acyclic, mirroring Fig. 5.
//
// An edge A -> B exists when some policy contains members of both groups
// whose matches overlap with differing actions and A's member has the
// higher priority: a shared table must then order A's merged rule above
// B's. A cycle means no single order satisfies all member policies.
// Groups that end up with fewer than two members are dropped.
func BreakCycles(policies []*policy.Policy, groups []MergeGroup) ([]MergeGroup, []DummyRule) {
	gs := make([]MergeGroup, len(groups))
	for i, g := range groups {
		gs[i] = MergeGroup{Members: append([]RuleRef(nil), g.Members...), Action: g.Action, MatchKey: g.MatchKey}
	}
	var dummies []DummyRule
	for {
		edges, witnesses := mergeOrderEdges(policies, gs)
		cyc := findCycle(len(gs), edges)
		if cyc == nil {
			break
		}
		// Remove the member of the last edge on the cycle from the lower
		// priority group in its witness policy, recording the dummy.
		from, to := cyc[len(cyc)-1], cyc[0]
		w := witnesses[[2]int{from, to}]
		gs[to].Members = removeMemberInPolicy(gs[to].Members, w)
		dummies = append(dummies, DummyRule{Excluded: RuleRef{Policy: w, Rule: memberRule(groups[to], w)}, Group: to})
	}
	var out []MergeGroup
	for _, g := range gs {
		if len(g.Members) >= 2 {
			out = append(out, g)
		}
	}
	return out, dummies
}

// memberRule returns the rule index of group g's member in policy pi, or -1.
func memberRule(g MergeGroup, pi int) int {
	for _, m := range g.Members {
		if m.Policy == pi {
			return m.Rule
		}
	}
	return -1
}

func removeMemberInPolicy(members []RuleRef, pi int) []RuleRef {
	out := members[:0]
	for _, m := range members {
		if m.Policy != pi {
			out = append(out, m)
		}
	}
	return out
}

// mergeOrderEdges builds the precedence edges between merge groups and,
// for each edge, a witness policy index that induces it.
func mergeOrderEdges(policies []*policy.Policy, gs []MergeGroup) (map[int][]int, map[[2]int]int) {
	edges := make(map[int][]int)
	witnesses := make(map[[2]int]int)
	// memberIn[gi][pi] = rule index or absent.
	memberIn := make([]map[int]int, len(gs))
	for gi, g := range gs {
		memberIn[gi] = make(map[int]int, len(g.Members))
		for _, m := range g.Members {
			memberIn[gi][m.Policy] = m.Rule
		}
	}
	for a := range gs {
		for b := range gs {
			if a == b || gs[a].Action == gs[b].Action {
				continue
			}
			// The first qualifying policy becomes the edge's witness (and
			// later the dummy-rule victim), so iterate policies in sorted
			// order: map order here would make placements nondeterministic.
			pis := make([]int, 0, len(memberIn[a]))
			for pi := range memberIn[a] {
				pis = append(pis, pi)
			}
			sort.Ints(pis)
			for _, pi := range pis {
				ra := memberIn[a][pi]
				rb, ok := memberIn[b][pi]
				if !ok {
					continue
				}
				p := policies[pi]
				if !p.Rules[ra].Match.Overlaps(p.Rules[rb].Match) {
					continue
				}
				// Lower index = higher priority = must come first.
				if ra < rb {
					if _, seen := witnesses[[2]int{a, b}]; !seen {
						edges[a] = append(edges[a], b)
						witnesses[[2]int{a, b}] = pi
					}
				}
			}
		}
	}
	return edges, witnesses
}

// findCycle returns some directed cycle as a node list, or nil.
func findCycle(n int, edges map[int][]int) []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, v := range edges[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				// Back edge u->v closes a cycle v ... u.
				cycle = reconstruct(parent, u, v)
				return true
			}
		}
		color[u] = black
		return false
	}
	for u := 0; u < n; u++ {
		if color[u] == white && dfs(u) {
			return cycle
		}
	}
	return nil
}

// reconstruct returns the cycle v -> ... -> u (where edge u->v closes it).
func reconstruct(parent []int, u, v int) []int {
	var rev []int
	for x := u; x != -1 && x != v; x = parent[x] {
		rev = append(rev, x)
	}
	rev = append(rev, v)
	// Reverse to get v ... u.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
