package deps

import (
	"testing"

	"rulefit/internal/match"
	"rulefit/internal/policy"
)

func mk(pattern string, a policy.Action, prio int) policy.Rule {
	return policy.Rule{Match: match.MustParseTernary(pattern), Action: a, Priority: prio}
}

func TestBuildGraphBasic(t *testing.T) {
	// permit 11** (t4), permit 00** (t3), drop 1*** (t2), drop 0*** (t1)
	p := policy.MustNew(0, []policy.Rule{
		mk("11**", policy.Permit, 4),
		mk("00**", policy.Permit, 3),
		mk("1***", policy.Drop, 2),
		mk("0***", policy.Drop, 1),
	})
	g := BuildGraph(p)
	drops := g.Drops()
	if len(drops) != 2 || drops[0] != 2 || drops[1] != 3 {
		t.Fatalf("Drops = %v", drops)
	}
	// drop 1*** overlaps permit 11** only.
	if d := g.Dependents(2); len(d) != 1 || d[0] != 0 {
		t.Errorf("Dependents(2) = %v, want [0]", d)
	}
	// drop 0*** overlaps permit 00** only.
	if d := g.Dependents(3); len(d) != 1 || d[0] != 1 {
		t.Errorf("Dependents(3) = %v, want [1]", d)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
}

func TestBuildGraphIgnoresLowerPermits(t *testing.T) {
	// Permit BELOW the drop creates no dependency.
	p := policy.MustNew(0, []policy.Rule{
		mk("1***", policy.Drop, 2),
		mk("11**", policy.Permit, 1),
	})
	g := BuildGraph(p)
	if d := g.Dependents(0); len(d) != 0 {
		t.Errorf("Dependents = %v, want empty", d)
	}
}

func TestBuildGraphIgnoresDisjoint(t *testing.T) {
	p := policy.MustNew(0, []policy.Rule{
		mk("00**", policy.Permit, 2),
		mk("1***", policy.Drop, 1),
	})
	g := BuildGraph(p)
	if g.NumEdges() != 0 {
		t.Errorf("disjoint permit should create no edge, got %d", g.NumEdges())
	}
}

func TestBuildGraphDropDropNoEdge(t *testing.T) {
	// Other DROP rules never constrain placement (paper §IV-A1).
	p := policy.MustNew(0, []policy.Rule{
		mk("1***", policy.Drop, 2),
		mk("11**", policy.Drop, 1),
	})
	g := BuildGraph(p)
	if g.NumEdges() != 0 {
		t.Errorf("drop-drop should create no edges, got %d", g.NumEdges())
	}
}

func TestPlacedRules(t *testing.T) {
	p := policy.MustNew(0, []policy.Rule{
		mk("11**", policy.Permit, 4), // needed by drop below
		mk("00**", policy.Permit, 3), // not needed (no overlapping drop below)
		mk("1***", policy.Drop, 2),
	})
	g := BuildGraph(p)
	placed := g.PlacedRules()
	if len(placed) != 2 || placed[0] != 0 || placed[1] != 2 {
		t.Errorf("PlacedRules = %v, want [0 2]", placed)
	}
}

func TestFindMergeableBasic(t *testing.T) {
	shared := mk("1010****", policy.Drop, 0)
	p0 := policy.MustNew(0, []policy.Rule{
		{Match: shared.Match, Action: policy.Drop, Priority: 2},
		mk("0*******", policy.Permit, 1),
	})
	p1 := policy.MustNew(1, []policy.Rule{
		{Match: shared.Match, Action: policy.Drop, Priority: 5},
	})
	p2 := policy.MustNew(2, []policy.Rule{
		mk("1111****", policy.Drop, 1),
	})
	groups := FindMergeable([]*policy.Policy{p0, p1, p2}, 2)
	if len(groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(groups))
	}
	g := groups[0]
	if len(g.Members) != 2 || g.Members[0].Policy != 0 || g.Members[1].Policy != 1 {
		t.Errorf("members = %v", g.Members)
	}
	if g.Action != policy.Drop {
		t.Errorf("action = %v", g.Action)
	}
}

func TestFindMergeableRequiresSameAction(t *testing.T) {
	m := match.MustParseTernary("1010")
	p0 := policy.MustNew(0, []policy.Rule{{Match: m, Action: policy.Drop, Priority: 1}})
	p1 := policy.MustNew(1, []policy.Rule{{Match: m, Action: policy.Permit, Priority: 1}})
	if groups := FindMergeable([]*policy.Policy{p0, p1}, 2); len(groups) != 0 {
		t.Errorf("differing actions must not merge, got %v", groups)
	}
}

func TestFindMergeableOnePerPolicy(t *testing.T) {
	m := match.MustParseTernary("1010")
	p0 := policy.MustNew(0, []policy.Rule{
		{Match: m, Action: policy.Drop, Priority: 2},
		{Match: m, Action: policy.Drop, Priority: 1}, // duplicate within policy
	})
	p1 := policy.MustNew(1, []policy.Rule{{Match: m, Action: policy.Drop, Priority: 9}})
	groups := FindMergeable([]*policy.Policy{p0, p1}, 2)
	if len(groups) != 1 {
		t.Fatalf("groups = %d", len(groups))
	}
	if len(groups[0].Members) != 2 {
		t.Fatalf("members = %v", groups[0].Members)
	}
	// Must use the highest-priority copy in policy 0.
	if groups[0].Members[0] != (RuleRef{Policy: 0, Rule: 0}) {
		t.Errorf("member = %v, want p0/r0", groups[0].Members[0])
	}
}

func TestFindMergeableMinPolicies(t *testing.T) {
	m := match.MustParseTernary("1010")
	mkp := func(i int) *policy.Policy {
		return policy.MustNew(i, []policy.Rule{{Match: m, Action: policy.Drop, Priority: 1}})
	}
	ps := []*policy.Policy{mkp(0), mkp(1), mkp(2)}
	if groups := FindMergeable(ps, 4); len(groups) != 0 {
		t.Errorf("minPolicies=4 should exclude 3-member group")
	}
	if groups := FindMergeable(ps, 3); len(groups) != 1 {
		t.Errorf("minPolicies=3 should keep 3-member group")
	}
}

// fig5Policies reproduces the paper's Fig. 5: permit r1 and drop r2
// overlap; r1 is above r2 in policies A and B but below it in policy C.
func fig5Policies() []*policy.Policy {
	r1 := match.FiveTuple{SrcIP: 0x0A000000, SrcPfxLen: 16, DstIP: 0x0B000000, DstPfxLen: 8, ProtoAny: true}.Ternary()
	r2 := match.FiveTuple{SrcIP: 0x0A000000, SrcPfxLen: 8, DstIP: 0x0B000000, DstPfxLen: 16, ProtoAny: true}.Ternary()
	pA := policy.MustNew(0, []policy.Rule{
		{Match: r1, Action: policy.Permit, Priority: 2},
		{Match: r2, Action: policy.Drop, Priority: 1},
	})
	pB := policy.MustNew(1, []policy.Rule{
		{Match: r1, Action: policy.Permit, Priority: 2},
		{Match: r2, Action: policy.Drop, Priority: 1},
	})
	pC := policy.MustNew(2, []policy.Rule{
		{Match: r2, Action: policy.Drop, Priority: 2},
		{Match: r1, Action: policy.Permit, Priority: 1},
	})
	return []*policy.Policy{pA, pB, pC}
}

func TestBreakCyclesFig5(t *testing.T) {
	policies := fig5Policies()
	groups := FindMergeable(policies, 2)
	if len(groups) != 2 {
		t.Fatalf("expected 2 merge groups (r1, r2), got %d", len(groups))
	}
	broken, dummies := BreakCycles(policies, groups)
	if len(dummies) == 0 {
		t.Fatal("fig-5 circular dependency not detected")
	}
	// After breaking, the precedence relation must be acyclic.
	edges, _ := mergeOrderEdges(policies, broken)
	if cyc := findCycle(len(broken), edges); cyc != nil {
		t.Fatalf("cycle remains after BreakCycles: %v", cyc)
	}
	// Both groups should survive with >= 2 members (one policy excluded).
	total := 0
	for _, g := range broken {
		if len(g.Members) < 2 {
			t.Errorf("undersized group survived: %v", g)
		}
		total += len(g.Members)
	}
	if total != 5 { // 6 members minus the one excluded
		t.Errorf("total members after break = %d, want 5", total)
	}
}

func TestBreakCyclesNoCycle(t *testing.T) {
	// Consistent order across policies: no cycle, nothing removed.
	m1 := match.MustParseTernary("10******")
	m2 := match.MustParseTernary("1*******")
	mkp := func(i int) *policy.Policy {
		return policy.MustNew(i, []policy.Rule{
			{Match: m1, Action: policy.Permit, Priority: 2},
			{Match: m2, Action: policy.Drop, Priority: 1},
		})
	}
	policies := []*policy.Policy{mkp(0), mkp(1)}
	groups := FindMergeable(policies, 2)
	broken, dummies := BreakCycles(policies, groups)
	if len(dummies) != 0 {
		t.Errorf("unexpected dummies: %v", dummies)
	}
	if len(broken) != len(groups) {
		t.Errorf("groups shrank from %d to %d", len(groups), len(broken))
	}
}

func TestBreakCyclesSameActionNeverCycles(t *testing.T) {
	// Two drop groups in inconsistent order: order does not matter for
	// same-action rules, so no cycle should be reported.
	m1 := match.MustParseTernary("10**")
	m2 := match.MustParseTernary("1***")
	pA := policy.MustNew(0, []policy.Rule{
		{Match: m1, Action: policy.Drop, Priority: 2},
		{Match: m2, Action: policy.Drop, Priority: 1},
	})
	pB := policy.MustNew(1, []policy.Rule{
		{Match: m2, Action: policy.Drop, Priority: 2},
		{Match: m1, Action: policy.Drop, Priority: 1},
	})
	policies := []*policy.Policy{pA, pB}
	groups := FindMergeable(policies, 2)
	_, dummies := BreakCycles(policies, groups)
	if len(dummies) != 0 {
		t.Errorf("same-action groups produced dummies: %v", dummies)
	}
}

func TestRuleRefString(t *testing.T) {
	if (RuleRef{Policy: 1, Rule: 2}).String() != "p1/r2" {
		t.Error("RuleRef.String wrong")
	}
}

func TestBreakCyclesThreePolicyRotation(t *testing.T) {
	// Three overlapping rules, rotated priorities across three policies:
	// m1>m2 in p0, m2>m3 in p1, m3>m1 in p2 — a 3-cycle among merge
	// groups once actions alternate.
	m1 := match.MustParseTernary("1***")
	m2 := match.MustParseTernary("1*1*")
	m3 := match.MustParseTernary("11**")
	mkPol := func(i int, rules []policy.Rule) *policy.Policy { return policy.MustNew(i, rules) }
	p0 := mkPol(0, []policy.Rule{
		{Match: m1, Action: policy.Permit, Priority: 3},
		{Match: m2, Action: policy.Drop, Priority: 2},
		{Match: m3, Action: policy.Permit, Priority: 1},
	})
	p1 := mkPol(1, []policy.Rule{
		{Match: m2, Action: policy.Drop, Priority: 3},
		{Match: m3, Action: policy.Permit, Priority: 2},
		{Match: m1, Action: policy.Permit, Priority: 1},
	})
	p2 := mkPol(2, []policy.Rule{
		{Match: m3, Action: policy.Permit, Priority: 3},
		{Match: m1, Action: policy.Permit, Priority: 2},
		{Match: m2, Action: policy.Drop, Priority: 1},
	})
	policies := []*policy.Policy{p0, p1, p2}
	groups := FindMergeable(policies, 2)
	broken, _ := BreakCycles(policies, groups)
	edges, _ := mergeOrderEdges(policies, broken)
	if cyc := findCycle(len(broken), edges); cyc != nil {
		t.Fatalf("cycle remains: %v", cyc)
	}
}
