package verify_test

import (
	"strings"
	"testing"
	"time"

	"rulefit/internal/core"
	"rulefit/internal/dataplane"
	"rulefit/internal/match"
	"rulefit/internal/policy"
	"rulefit/internal/routing"
	"rulefit/internal/topology"
	"rulefit/internal/verify"
)

// deploy solves the paper's Fig. 3 instance and compiles the placement
// into data-plane tables, returning everything a verifier needs.
func deploy(t *testing.T, capacity int) (*core.Problem, *dataplane.Network) {
	t.Helper()
	topo := topology.Fig3(capacity)
	rt, err := routing.BuildRouting(topo, []routing.PortPair{{In: 1, Out: 2}, {In: 1, Out: 3}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pol := policy.MustNew(1, []policy.Rule{
		{Match: match.MustParseTernary("1100****"), Action: policy.Permit, Priority: 3},
		{Match: match.MustParseTernary("11******"), Action: policy.Drop, Priority: 2},
		{Match: match.MustParseTernary("00******"), Action: policy.Drop, Priority: 1},
	})
	prob := &core.Problem{Network: topo, Routing: rt, Policies: []*policy.Policy{pol}}
	pl, err := core.Place(prob, core.Options{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Status != core.StatusOptimal {
		t.Fatalf("status = %v", pl.Status)
	}
	net, err := pl.BuildTables(prob)
	if err != nil {
		t.Fatal(err)
	}
	return prob, net
}

// TestSemanticsCatchesTamperedPlacement deploys a correct placement,
// then deletes one drop entry from the data plane and requires the
// sampling verifier to notice — with a fully populated Violation.
func TestSemanticsCatchesTamperedPlacement(t *testing.T) {
	prob, net := deploy(t, 10)
	cfg := verify.Config{Seed: 3}
	if v := verify.Semantics(net, prob.Routing, prob.Policies, cfg); len(v) != 0 {
		t.Fatalf("clean deployment flagged: %v", v)
	}

	// Remove the first installed drop entry, wherever it was placed.
	tampered := false
	for _, sw := range prob.Network.Switches() {
		tbl, ok := net.Tables[sw.ID]
		if !ok || tampered {
			continue
		}
		for i, e := range tbl.Entries {
			if e.Action == policy.Drop {
				tbl.Entries = append(tbl.Entries[:i], tbl.Entries[i+1:]...)
				tampered = true
				break
			}
		}
	}
	if !tampered {
		t.Fatal("no drop entry found to remove")
	}

	v := verify.Semantics(net, prob.Routing, prob.Policies, cfg)
	if len(v) == 0 {
		t.Fatal("verifier missed the removed drop")
	}
	for _, viol := range v {
		if viol.Want != policy.Drop || viol.Got != policy.Permit {
			t.Errorf("violation should be a missed drop, got %+v", viol)
		}
		if viol.Ingress != 1 {
			t.Errorf("ingress = %d, want 1", viol.Ingress)
		}
		if len(viol.Header) == 0 {
			t.Error("violation lost its witness header")
		}
		if len(viol.Path.Switches) == 0 {
			t.Error("violation lost its path")
		}
		s := viol.String()
		if !strings.Contains(s, "policy says DROP") || !strings.Contains(s, "network says PERMIT") {
			t.Errorf("violation string %q missing decision summary", s)
		}
	}
}

// TestCapacitiesCatchOverfilledDeployment compiles a real placement,
// then lowers switch capacities below what was installed and checks the
// audit reports every overfull switch with exact counts.
func TestCapacitiesCatchOverfilledDeployment(t *testing.T) {
	prob, net := deploy(t, 10)
	if v := verify.Capacities(net, prob.Network); len(v) != 0 {
		t.Fatalf("clean deployment flagged: %v", v)
	}

	// Shrink every occupied switch to one slot under its usage.
	overfull := make(map[topology.SwitchID]int)
	for _, sw := range prob.Network.Switches() {
		tbl, ok := net.Tables[sw.ID]
		if !ok || tbl.Size() == 0 {
			continue
		}
		if err := prob.Network.SetSwitchCapacity(sw.ID, tbl.Size()-1); err != nil {
			t.Fatal(err)
		}
		overfull[sw.ID] = tbl.Size()
	}
	if len(overfull) == 0 {
		t.Fatal("placement installed no entries")
	}

	v := verify.Capacities(net, prob.Network)
	if len(v) != len(overfull) {
		t.Fatalf("audit found %d violations, want %d: %v", len(v), len(overfull), v)
	}
	for _, cv := range v {
		used, ok := overfull[cv.Switch]
		if !ok {
			t.Errorf("unexpected switch %d in audit", cv.Switch)
			continue
		}
		if cv.Used != used || cv.Cap != used-1 {
			t.Errorf("switch %d: audit says %d > %d, want %d > %d", cv.Switch, cv.Used, cv.Cap, used, used-1)
		}
		if !strings.Contains(cv.String(), "rules > capacity") {
			t.Errorf("capacity violation string %q", cv.String())
		}
	}
}
