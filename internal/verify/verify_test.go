package verify

import (
	"testing"

	"rulefit/internal/dataplane"
	"rulefit/internal/match"
	"rulefit/internal/policy"
	"rulefit/internal/routing"
	"rulefit/internal/topology"
)

func mk(pattern string, a policy.Action, prio int) policy.Rule {
	return policy.Rule{Match: match.MustParseTernary(pattern), Action: a, Priority: prio}
}

func entry(in topology.PortID, pattern string, a policy.Action, prio int) dataplane.Entry {
	return dataplane.Entry{
		Tags:     map[topology.PortID]bool{in: true},
		Match:    match.MustParseTernary(pattern),
		Action:   a,
		Priority: prio,
	}
}

// miniSetup: one ingress at s1, one path s1-s2, a 2-rule policy.
func miniSetup() (*routing.Routing, []*policy.Policy) {
	rt := routing.NewRouting()
	rt.Add(routing.Path{Ingress: 1, Egress: 2, Switches: []topology.SwitchID{1, 2}})
	pol := policy.MustNew(1, []policy.Rule{
		mk("11**", policy.Permit, 2),
		mk("1***", policy.Drop, 1),
	})
	return rt, []*policy.Policy{pol}
}

func TestExhaustiveDetectsCorrectDeployment(t *testing.T) {
	rt, pols := miniSetup()
	net := dataplane.NewNetwork()
	net.Table(1).Add(entry(1, "11**", policy.Permit, 2))
	net.Table(1).Add(entry(1, "1***", policy.Drop, 1))
	if v := Exhaustive(net, rt, pols); len(v) != 0 {
		t.Fatalf("correct deployment flagged: %v", v)
	}
}

func TestExhaustiveDetectsMissingDrop(t *testing.T) {
	rt, pols := miniSetup()
	net := dataplane.NewNetwork() // nothing installed
	v := Exhaustive(net, rt, pols)
	if len(v) == 0 {
		t.Fatal("missing drop not detected")
	}
	if v[0].Want != policy.Drop || v[0].Got != policy.Permit {
		t.Errorf("violation = %+v", v[0])
	}
	if v[0].String() == "" {
		t.Error("empty violation string")
	}
}

func TestExhaustiveDetectsMissingPermitShield(t *testing.T) {
	// Drop placed without its higher-priority permit: 11** packets get
	// wrongly dropped.
	rt, pols := miniSetup()
	net := dataplane.NewNetwork()
	net.Table(1).Add(entry(1, "1***", policy.Drop, 1))
	v := Exhaustive(net, rt, pols)
	if len(v) == 0 {
		t.Fatal("missing permit shield not detected")
	}
	found := false
	for _, viol := range v {
		if viol.Want == policy.Permit && viol.Got == policy.Drop {
			found = true
		}
	}
	if !found {
		t.Errorf("expected wrong-drop violation, got %v", v)
	}
}

func TestExhaustiveDetectsWrongOrder(t *testing.T) {
	// Permit installed BELOW the drop: priority inversion.
	rt, pols := miniSetup()
	net := dataplane.NewNetwork()
	net.Table(1).Add(entry(1, "1***", policy.Drop, 2))
	net.Table(1).Add(entry(1, "11**", policy.Permit, 1))
	if v := Exhaustive(net, rt, pols); len(v) == 0 {
		t.Fatal("priority inversion not detected")
	}
}

func TestExhaustiveRespectsTrafficSlices(t *testing.T) {
	// The drop is missing, but the path's traffic slice excludes all
	// headers the drop matches, so no violation should fire.
	rt := routing.NewRouting()
	tr := match.MustParseTernary("0***")
	rt.Add(routing.Path{Ingress: 1, Egress: 2, Switches: []topology.SwitchID{1}, Traffic: tr, HasTraffic: true})
	pol := policy.MustNew(1, []policy.Rule{mk("1***", policy.Drop, 1)})
	net := dataplane.NewNetwork()
	if v := Exhaustive(net, rt, []*policy.Policy{pol}); len(v) != 0 {
		t.Fatalf("sliced-away traffic flagged: %v", v)
	}
}

func TestSemanticsSamplingFindsViolation(t *testing.T) {
	// Wide-header policy (104-bit): sampling must find a missing drop.
	rt := routing.NewRouting()
	rt.Add(routing.Path{Ingress: 1, Egress: 2, Switches: []topology.SwitchID{1}})
	ft := match.FiveTuple{SrcIP: 0x0A000000, SrcPfxLen: 8, ProtoAny: true}
	pol := policy.MustNew(1, []policy.Rule{{Match: ft.Ternary(), Action: policy.Drop, Priority: 1}})
	net := dataplane.NewNetwork()
	if v := Semantics(net, rt, []*policy.Policy{pol}, Config{Seed: 1}); len(v) == 0 {
		t.Fatal("sampling missed an obviously missing drop")
	}
	// And a correct deployment passes.
	net2 := dataplane.NewNetwork()
	net2.Table(1).Add(dataplane.Entry{
		Tags:     map[topology.PortID]bool{1: true},
		Match:    ft.Ternary(),
		Action:   policy.Drop,
		Priority: 1,
	})
	if v := Semantics(net2, rt, []*policy.Policy{pol}, Config{Seed: 1}); len(v) != 0 {
		t.Fatalf("correct wide deployment flagged: %v", v)
	}
}

func TestSemanticsMaxViolations(t *testing.T) {
	rt, pols := miniSetup()
	net := dataplane.NewNetwork()
	v := Semantics(net, rt, pols, Config{Seed: 1, MaxViolations: 3})
	if len(v) > 3 {
		t.Errorf("MaxViolations not honored: %d", len(v))
	}
}

func TestCapacities(t *testing.T) {
	topo, err := topology.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	net := dataplane.NewNetwork()
	net.Table(0).Add(entry(1, "1*", policy.Drop, 1))
	net.Table(0).Add(entry(1, "0*", policy.Drop, 2))
	v := Capacities(net, topo)
	if len(v) != 1 || v[0].Switch != 0 || v[0].Used != 2 || v[0].Cap != 1 {
		t.Errorf("capacity audit = %v", v)
	}
	if v[0].String() == "" {
		t.Error("empty string")
	}
}

func TestExhaustiveSkipsWideWidths(t *testing.T) {
	// Policies wider than 20 bits are skipped (would be intractable).
	rt := routing.NewRouting()
	rt.Add(routing.Path{Ingress: 1, Egress: 2, Switches: []topology.SwitchID{1}})
	ft := match.FiveTuple{SrcIP: 1, SrcPfxLen: 32, ProtoAny: true}
	pol := policy.MustNew(1, []policy.Rule{{Match: ft.Ternary(), Action: policy.Drop, Priority: 1}})
	net := dataplane.NewNetwork()
	if v := Exhaustive(net, rt, []*policy.Policy{pol}); len(v) != 0 {
		t.Errorf("wide policy should be skipped, got %v", v)
	}
}
