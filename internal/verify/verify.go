// Package verify checks that a deployed rule placement preserves the
// semantics of the original ingress policies: a packet is dropped by the
// network if and only if its ingress policy drops it, for every path it
// can take. It also audits switch capacities. This is the safety net the
// paper's "preserve the semantics of the original policies" requirement
// demands, exercised by tests and examples.
package verify

import (
	"fmt"
	"math/rand"

	"rulefit/internal/dataplane"
	"rulefit/internal/match"
	"rulefit/internal/obs"
	"rulefit/internal/policy"
	"rulefit/internal/routing"
	"rulefit/internal/topology"
)

// Violation describes one semantic mismatch found.
type Violation struct {
	Ingress topology.PortID
	Path    routing.Path
	Header  []uint64
	// Want is the policy's decision, Got the network's.
	Want, Got policy.Action
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("ingress %d path %v: policy says %v, network says %v", v.Ingress, v.Path.Switches, v.Want, v.Got)
}

// Config controls the verification effort.
type Config struct {
	// SamplesPerRule is the number of random headers drawn inside each
	// rule's match region (default 8).
	SamplesPerRule int
	// RandomSamples is the number of unconstrained random headers per
	// path (default 32).
	RandomSamples int
	// Seed makes sampling deterministic.
	Seed int64
	// MaxViolations stops the search early (default 10).
	MaxViolations int
	// Span, when non-nil, receives header-check and violation counters
	// (timing only; the verdicts are identical with or without it).
	Span *obs.Span
}

func (c Config) withDefaults() Config {
	if c.SamplesPerRule == 0 {
		c.SamplesPerRule = 8
	}
	if c.RandomSamples == 0 {
		c.RandomSamples = 32
	}
	if c.MaxViolations == 0 {
		c.MaxViolations = 10
	}
	return c
}

// Semantics checks policy preservation over sampled and corner-case
// headers: for every policy and every path, headers drawn from each
// rule's region (and each overlapping rule pair's intersection) must
// receive the same decision from the data plane as from the policy.
func Semantics(net *dataplane.Network, rt *routing.Routing, policies []*policy.Policy, cfg Config) []Violation {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	var out []Violation
	checks := int64(0)
	defer func() {
		cfg.Span.SetCount("checks", checks)
		cfg.Span.SetCount("violations", int64(len(out)))
	}()

	for _, pol := range policies {
		ps, ok := rt.Sets[topology.PortID(pol.Ingress)]
		if !ok {
			continue
		}
		headers := interestingHeaders(pol, rng, cfg)
		for _, path := range ps.Paths {
			for _, h := range headers {
				if path.HasTraffic && !headerInTernary(h, path.Traffic) {
					continue // packet would not take this path
				}
				checks++
				if v := checkOne(net, pol, path, h); v != nil {
					out = append(out, *v)
					if len(out) >= cfg.MaxViolations {
						return out
					}
				}
			}
			// Path-specific samples inside the traffic slice.
			if path.HasTraffic {
				for i := 0; i < cfg.RandomSamples; i++ {
					h := match.SampleWords(path.Traffic, rng)
					checks++
					if v := checkOne(net, pol, path, h); v != nil {
						out = append(out, *v)
						if len(out) >= cfg.MaxViolations {
							return out
						}
					}
				}
			}
		}
	}
	return out
}

// checkOne compares policy vs network for one header on one path.
func checkOne(net *dataplane.Network, pol *policy.Policy, path routing.Path, h []uint64) *Violation {
	want := pol.Evaluate(h)
	verdict := net.Walk(topology.PortID(pol.Ingress), path.Switches, h)
	got := policy.Permit
	if verdict.Dropped {
		got = policy.Drop
	}
	if got != want {
		return &Violation{
			Ingress: topology.PortID(pol.Ingress),
			Path:    path,
			Header:  h,
			Want:    want,
			Got:     got,
		}
	}
	return nil
}

// interestingHeaders draws headers from every rule region, every
// overlapping pair's intersection, and uniformly at random.
func interestingHeaders(pol *policy.Policy, rng *rand.Rand, cfg Config) [][]uint64 {
	var out [][]uint64
	for _, r := range pol.Rules {
		for i := 0; i < cfg.SamplesPerRule; i++ {
			out = append(out, match.SampleWords(r.Match, rng))
		}
	}
	for i := 0; i < len(pol.Rules); i++ {
		for j := i + 1; j < len(pol.Rules); j++ {
			if inter, ok := pol.Rules[i].Match.Intersect(pol.Rules[j].Match); ok {
				out = append(out, match.SampleWords(inter, rng))
			}
		}
	}
	if w := pol.Width(); w > 0 {
		full := match.NewTernary(w)
		for i := 0; i < cfg.RandomSamples; i++ {
			out = append(out, match.SampleWords(full, rng))
		}
	}
	return out
}

// headerInTernary reports whether a packed header matches a ternary.
func headerInTernary(h []uint64, t match.Ternary) bool { return t.MatchesWords(h) }

// Exhaustive checks every header of a small width exhaustively; only
// usable for test policies with width <= 20 bits.
func Exhaustive(net *dataplane.Network, rt *routing.Routing, policies []*policy.Policy) []Violation {
	var out []Violation
	for _, pol := range policies {
		w := pol.Width()
		if w == 0 || w > 20 {
			continue
		}
		ps, ok := rt.Sets[topology.PortID(pol.Ingress)]
		if !ok {
			continue
		}
		for hv := uint64(0); hv < 1<<uint(w); hv++ {
			h := []uint64{hv}
			for _, path := range ps.Paths {
				if path.HasTraffic && !path.Traffic.MatchesWords(h) {
					continue
				}
				if v := checkOne(net, pol, path, h); v != nil {
					out = append(out, *v)
					if len(out) >= 20 {
						return out
					}
				}
			}
		}
	}
	return out
}

// Capacities returns a list of capacity violations (switch and excess).
type CapacityViolation struct {
	Switch topology.SwitchID
	Used   int
	Cap    int
}

// String renders the capacity violation.
func (c CapacityViolation) String() string {
	return fmt.Sprintf("switch %d: %d rules > capacity %d", c.Switch, c.Used, c.Cap)
}

// Capacities audits per-switch TCAM usage against the topology.
func Capacities(net *dataplane.Network, topo *topology.Network) []CapacityViolation {
	var out []CapacityViolation
	for _, sw := range topo.Switches() {
		t, ok := net.Tables[sw.ID]
		if !ok {
			continue
		}
		if t.Size() > sw.Capacity {
			out = append(out, CapacityViolation{Switch: sw.ID, Used: t.Size(), Cap: sw.Capacity})
		}
	}
	return out
}
