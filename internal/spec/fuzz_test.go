package spec

import (
	"bytes"
	"strings"
	"testing"
)

// fuzzTooBig rejects inputs whose generator parameters would make Build
// allocate huge topologies or policies — the fuzzer explores the parser
// and builder logic, not memory exhaustion.
func fuzzTooBig(p *Problem) bool {
	t := p.Topology
	if t.K > 6 || t.Switches > 48 || t.Hosts > 6 || t.Leaves > 10 || t.Spines > 10 {
		return true
	}
	if t.Width > 8 || t.Height > 8 || t.Degree > 8 {
		return true
	}
	if len(t.SwitchList) > 64 || len(t.Links) > 256 || len(t.Ports) > 64 {
		return true
	}
	if len(p.Routing.Pairs) > 64 || len(p.Routing.Paths) > 64 {
		return true
	}
	for _, path := range p.Routing.Paths {
		if len(path.Switches) > 64 || len(path.Traffic) > 256 {
			return true
		}
	}
	if len(p.Policies) > 16 || len(p.Monitors) > 16 {
		return true
	}
	for _, pol := range p.Policies {
		if len(pol.Rules) > 64 {
			return true
		}
		for _, r := range pol.Rules {
			if len(r.Pattern) > 256 {
				return true
			}
		}
		if pol.Generate != nil && pol.Generate.NumRules > 64 {
			return true
		}
	}
	return false
}

// FuzzSpecParse feeds arbitrary bytes through the full spec pipeline:
// Load -> Build -> Validate -> BuildMonitors -> Save -> Load. Nothing
// may panic, and any problem that serializes must parse back cleanly
// (the CLI writes fixtures with Save and replays them with Load).
func FuzzSpecParse(f *testing.F) {
	f.Add([]byte(`{"topology":{"type":"fig3","capacity":4},
		"routing":{"pairs":[{"in":1,"out":2}],"seed":7},
		"policies":[{"ingress":1,"generate":{"numRules":5,"dropFraction":0.4,"seed":3}}]}`))
	f.Add([]byte(`{"topology":{"type":"explicit","capacity":2,
		"switchList":[{"id":0,"capacity":2},{"id":1,"capacity":3}],
		"links":[[0,1]],
		"ports":[{"id":0,"switch":0,"ingress":true},{"id":1,"switch":1,"egress":true}]},
		"routing":{"paths":[{"ingress":0,"egress":1,"switches":[0,1],"traffic":"1***"}]},
		"policies":[{"ingress":0,"rules":[
		{"pattern":"10**","action":"drop","priority":2},
		{"pattern":"****","action":"permit","priority":1}]}]}`))
	f.Add([]byte(`{"topology":{"type":"fattree","k":2,"capacity":8},
		"routing":{"pairs":[{"in":0,"out":1}]},
		"policies":[{"ingress":0,"rules":[{"src":"10.0.0.0/8","srcPort":80,"proto":"tcp","action":"drop","priority":9}]}],
		"monitors":[{"switch":0,"dst":"10.1.0.0/16"}]}`))
	f.Add([]byte(`{"topology":{"type":"ring","switches":4,"capacity":3},
		"routing":{"pairs":[{"in":0,"out":2}],"trafficSlices":true},
		"policies":[{"ingress":0,"generate":{"numRules":4}}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		p, err := Load(bytes.NewReader(data))
		if err != nil {
			return // malformed JSON is fine; it just must not panic
		}
		if fuzzTooBig(p) {
			return
		}
		if _, err := p.BuildMonitors(); err != nil {
			_ = err // building monitors may fail; must not panic
		}
		prob, err := p.Build()
		if err != nil {
			return
		}
		_ = prob.Validate()

		// Whatever parsed must survive a Save/Load round trip: Load uses
		// DisallowUnknownFields, so this catches field-name drift between
		// the struct tags and the written form.
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			t.Fatalf("Save failed on loadable input: %v", err)
		}
		p2, err := Load(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("Save output does not Load: %v\n%s", err, buf.String())
		}
		if _, err := p2.Build(); err != nil {
			t.Fatalf("rebuilt problem fails Build after round trip: %v", err)
		}
	})
}
