package spec

import (
	"encoding/json"
	"fmt"

	"rulefit/internal/core"
	"rulefit/internal/policy"
)

// Delta ops. A delta mutates a fully explicit Problem (ExplicitOnly)
// in place; the stateful session layer applies deltas to a clone and
// commits only on success, so a failed op never corrupts a session.
const (
	// OpAddRule appends Rule to the policy at Ingress. The priority
	// must be unused within that policy.
	OpAddRule = "add_rule"
	// OpRemoveRule removes the rule with Priority from the policy at
	// Ingress. Removing the last rule is an error (a policy must keep
	// at least one rule).
	OpRemoveRule = "remove_rule"
	// OpUpdatePolicy replaces the whole rule list of the policy at
	// Ingress with Rules (at least one).
	OpUpdatePolicy = "update_policy"
	// OpSetCapacity sets the TCAM capacity of Switch to Capacity.
	OpSetCapacity = "set_capacity"
	// OpSetPaths replaces every routing path for Ingress with Paths
	// (at least one, each declaring the same ingress).
	OpSetPaths = "set_paths"
	// OpAddSwitch adds switch Switch with Capacity to the topology.
	OpAddSwitch = "add_switch"
	// OpRemoveSwitch removes switch Switch and its links. The switch
	// must not host a port and no path may traverse it.
	OpRemoveSwitch = "remove_switch"
	// OpAddLink adds the undirected Link between two existing switches.
	OpAddLink = "add_link"
	// OpRemoveLink removes the undirected Link.
	OpRemoveLink = "remove_link"
)

// Delta is one mutation of a placement instance, the wire form the
// daemon's POST /v1/session/{id}/delta endpoint accepts. Which fields
// are read depends on Op (see the op constants).
type Delta struct {
	Op       string  `json:"op"`
	Ingress  int     `json:"ingress,omitempty"`
	Rule     *Rule   `json:"rule,omitempty"`
	Priority int     `json:"priority,omitempty"`
	Rules    []Rule  `json:"rules,omitempty"`
	Switch   int     `json:"switch,omitempty"`
	Capacity int     `json:"capacity,omitempty"`
	Paths    []Path  `json:"paths,omitempty"`
	Link     *[2]int `json:"link,omitempty"`
}

// String renders a short human tag for logs and error messages.
func (d Delta) String() string {
	switch d.Op {
	case OpAddRule, OpRemoveRule, OpUpdatePolicy, OpSetPaths:
		return fmt.Sprintf("%s(ingress=%d)", d.Op, d.Ingress)
	case OpSetCapacity, OpAddSwitch, OpRemoveSwitch:
		return fmt.Sprintf("%s(switch=%d)", d.Op, d.Switch)
	case OpAddLink, OpRemoveLink:
		if d.Link != nil {
			return fmt.Sprintf("%s(%d,%d)", d.Op, d.Link[0], d.Link[1])
		}
		return d.Op
	default:
		return fmt.Sprintf("delta(%q)", d.Op)
	}
}

// ExplicitOnly reports whether the problem is in fully explicit form:
// explicit topology, verbatim paths, and concrete rules with no
// generators. Deltas only apply to explicit problems — FromCore
// normalizes any built instance into this form.
func (p *Problem) ExplicitOnly() error {
	if p.Topology.Type != "explicit" {
		return fmt.Errorf("spec: delta target needs explicit topology, have %q", p.Topology.Type)
	}
	if len(p.Routing.Paths) == 0 {
		return fmt.Errorf("spec: delta target needs explicit routing paths")
	}
	for i, pol := range p.Policies {
		if pol.Generate != nil {
			return fmt.Errorf("spec: delta target policy %d uses a generator", i)
		}
	}
	return nil
}

// Apply mutates p by one delta. On error p may be partially checked
// but is never partially mutated: all validation happens before the
// first write. Callers holding authoritative state should still apply
// to a Clone and swap on success.
func (p *Problem) Apply(d Delta) error {
	if err := p.ExplicitOnly(); err != nil {
		return err
	}
	switch d.Op {
	case OpAddRule:
		return p.applyAddRule(d)
	case OpRemoveRule:
		return p.applyRemoveRule(d)
	case OpUpdatePolicy:
		return p.applyUpdatePolicy(d)
	case OpSetCapacity:
		return p.applySetCapacity(d)
	case OpSetPaths:
		return p.applySetPaths(d)
	case OpAddSwitch:
		return p.applyAddSwitch(d)
	case OpRemoveSwitch:
		return p.applyRemoveSwitch(d)
	case OpAddLink:
		return p.applyLink(d, true)
	case OpRemoveLink:
		return p.applyLink(d, false)
	default:
		return fmt.Errorf("spec: unknown delta op %q", d.Op)
	}
}

// ApplyAll applies a delta sequence in order, stopping at the first
// failure (index and cause in the error).
func (p *Problem) ApplyAll(deltas []Delta) error {
	for i, d := range deltas {
		if err := p.Apply(d); err != nil {
			return fmt.Errorf("delta %d %s: %w", i, d, err)
		}
	}
	return nil
}

// policyIndex finds the policy for an ingress.
func (p *Problem) policyIndex(ingress int) (int, error) {
	for i := range p.Policies {
		if p.Policies[i].Ingress == ingress {
			return i, nil
		}
	}
	return 0, fmt.Errorf("spec: no policy for ingress %d", ingress)
}

// checkRule validates a rule's pattern/action without mutating state.
func checkRule(r Rule) error {
	_, err := r.build()
	return err
}

func (p *Problem) applyAddRule(d Delta) error {
	if d.Rule == nil {
		return fmt.Errorf("spec: %s needs a rule", OpAddRule)
	}
	pi, err := p.policyIndex(d.Ingress)
	if err != nil {
		return err
	}
	if err := checkRule(*d.Rule); err != nil {
		return err
	}
	for _, r := range p.Policies[pi].Rules {
		if r.Priority == d.Rule.Priority {
			return fmt.Errorf("spec: ingress %d already has a rule at priority %d", d.Ingress, d.Rule.Priority)
		}
	}
	p.Policies[pi].Rules = append(p.Policies[pi].Rules, *d.Rule)
	return nil
}

func (p *Problem) applyRemoveRule(d Delta) error {
	pi, err := p.policyIndex(d.Ingress)
	if err != nil {
		return err
	}
	rules := p.Policies[pi].Rules
	for i, r := range rules {
		if r.Priority == d.Priority {
			if len(rules) == 1 {
				return fmt.Errorf("spec: removing priority %d would empty ingress %d's policy", d.Priority, d.Ingress)
			}
			p.Policies[pi].Rules = append(rules[:i:i], rules[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("spec: ingress %d has no rule at priority %d", d.Ingress, d.Priority)
}

func (p *Problem) applyUpdatePolicy(d Delta) error {
	pi, err := p.policyIndex(d.Ingress)
	if err != nil {
		return err
	}
	if len(d.Rules) == 0 {
		return fmt.Errorf("spec: %s needs at least one rule", OpUpdatePolicy)
	}
	seen := make(map[int]bool, len(d.Rules))
	for _, r := range d.Rules {
		if err := checkRule(r); err != nil {
			return err
		}
		if seen[r.Priority] {
			return fmt.Errorf("spec: duplicate priority %d in %s", r.Priority, OpUpdatePolicy)
		}
		seen[r.Priority] = true
	}
	p.Policies[pi].Rules = append([]Rule(nil), d.Rules...)
	return nil
}

func (p *Problem) switchIndex(id int) (int, error) {
	for i := range p.Topology.SwitchList {
		if p.Topology.SwitchList[i].ID == id {
			return i, nil
		}
	}
	return 0, fmt.Errorf("spec: no switch %d", id)
}

func (p *Problem) applySetCapacity(d Delta) error {
	si, err := p.switchIndex(d.Switch)
	if err != nil {
		return err
	}
	if d.Capacity < 1 {
		return fmt.Errorf("spec: capacity must be >= 1, got %d", d.Capacity)
	}
	p.Topology.SwitchList[si].Capacity = d.Capacity
	return nil
}

func (p *Problem) applySetPaths(d Delta) error {
	if len(d.Paths) == 0 {
		return fmt.Errorf("spec: %s needs at least one path", OpSetPaths)
	}
	switches := make(map[int]bool, len(p.Topology.SwitchList))
	for _, sw := range p.Topology.SwitchList {
		switches[sw.ID] = true
	}
	for i, path := range d.Paths {
		if path.Ingress != d.Ingress {
			return fmt.Errorf("spec: %s path %d declares ingress %d, want %d", OpSetPaths, i, path.Ingress, d.Ingress)
		}
		if len(path.Switches) == 0 {
			return fmt.Errorf("spec: %s path %d is empty", OpSetPaths, i)
		}
		for _, s := range path.Switches {
			if !switches[s] {
				return fmt.Errorf("spec: %s path %d traverses unknown switch %d", OpSetPaths, i, s)
			}
		}
	}
	kept := p.Routing.Paths[:0:0]
	for _, path := range p.Routing.Paths {
		if path.Ingress != d.Ingress {
			kept = append(kept, path)
		}
	}
	p.Routing.Paths = append(kept, d.Paths...)
	return nil
}

func (p *Problem) applyAddSwitch(d Delta) error {
	if _, err := p.switchIndex(d.Switch); err == nil {
		return fmt.Errorf("spec: switch %d already exists", d.Switch)
	}
	if d.Capacity < 1 {
		return fmt.Errorf("spec: capacity must be >= 1, got %d", d.Capacity)
	}
	p.Topology.SwitchList = append(p.Topology.SwitchList, Switch{ID: d.Switch, Capacity: d.Capacity})
	return nil
}

func (p *Problem) applyRemoveSwitch(d Delta) error {
	si, err := p.switchIndex(d.Switch)
	if err != nil {
		return err
	}
	for _, pt := range p.Topology.Ports {
		if pt.Switch == d.Switch {
			return fmt.Errorf("spec: switch %d hosts port %d", d.Switch, pt.ID)
		}
	}
	for i, path := range p.Routing.Paths {
		for _, s := range path.Switches {
			if s == d.Switch {
				return fmt.Errorf("spec: path %d traverses switch %d", i, d.Switch)
			}
		}
	}
	sl := p.Topology.SwitchList
	p.Topology.SwitchList = append(sl[:si:si], sl[si+1:]...)
	kept := p.Topology.Links[:0:0]
	for _, l := range p.Topology.Links {
		if l[0] != d.Switch && l[1] != d.Switch {
			kept = append(kept, l)
		}
	}
	p.Topology.Links = kept
	return nil
}

func (p *Problem) applyLink(d Delta, add bool) error {
	if d.Link == nil {
		return fmt.Errorf("spec: %s needs a link", d.Op)
	}
	a, b := d.Link[0], d.Link[1]
	if a == b {
		return fmt.Errorf("spec: link %d-%d is a self-loop", a, b)
	}
	have := -1
	for i, l := range p.Topology.Links {
		if (l[0] == a && l[1] == b) || (l[0] == b && l[1] == a) {
			have = i
			break
		}
	}
	if add {
		for _, id := range []int{a, b} {
			if _, err := p.switchIndex(id); err != nil {
				return err
			}
		}
		if have >= 0 {
			return fmt.Errorf("spec: link %d-%d already exists", a, b)
		}
		p.Topology.Links = append(p.Topology.Links, [2]int{a, b})
		return nil
	}
	if have < 0 {
		return fmt.Errorf("spec: no link %d-%d", a, b)
	}
	ls := p.Topology.Links
	p.Topology.Links = append(ls[:have:have], ls[have+1:]...)
	return nil
}

// Clone deep-copies the problem via its JSON form (the struct is pure
// data, so the round trip is exact).
func (p *Problem) Clone() *Problem {
	var out Problem
	if err := json.Unmarshal(p.Canonical(), &out); err != nil {
		panic(fmt.Sprintf("spec: clone round-trip: %v", err))
	}
	return &out
}

// Canonical returns the problem's canonical JSON bytes: struct field
// order is fixed, so equal problems render identical bytes. The
// session layer keys its solved-placement memo by these bytes.
func (p *Problem) Canonical() []byte {
	data, err := json.Marshal(p)
	if err != nil {
		panic(fmt.Sprintf("spec: canonical marshal: %v", err))
	}
	return data
}

// FromCore flattens a built core problem into fully explicit spec
// form: explicit switch list, links, ports, verbatim paths (with
// traffic patterns), and pattern-string rules. The round trip through
// Build is exact because ternary String/ParseTernary are inverses.
func FromCore(p *core.Problem) *Problem {
	out := &Problem{}
	out.Topology.Type = "explicit"
	for _, sw := range p.Network.Switches() {
		out.Topology.SwitchList = append(out.Topology.SwitchList, Switch{
			ID: int(sw.ID), Capacity: sw.Capacity, Name: sw.Name,
		})
	}
	for _, sw := range p.Network.Switches() {
		for _, nb := range p.Network.Neighbors(sw.ID) {
			if nb > sw.ID {
				out.Topology.Links = append(out.Topology.Links, [2]int{int(sw.ID), int(nb)})
			}
		}
	}
	for _, pt := range p.Network.Ports() {
		out.Topology.Ports = append(out.Topology.Ports, Port{
			ID: int(pt.ID), Switch: int(pt.Switch), Ingress: pt.Ingress, Egress: pt.Egress,
		})
	}
	for _, ing := range p.Routing.Ingresses() {
		for _, path := range p.Routing.Sets[ing].Paths {
			sp := Path{Ingress: int(path.Ingress), Egress: int(path.Egress)}
			for _, s := range path.Switches {
				sp.Switches = append(sp.Switches, int(s))
			}
			if path.HasTraffic {
				sp.Traffic = path.Traffic.String()
			}
			out.Routing.Paths = append(out.Routing.Paths, sp)
		}
	}
	for _, pol := range p.Policies {
		sp := Policy{Ingress: pol.Ingress}
		for _, r := range pol.Rules {
			action := "permit"
			if r.Action == policy.Drop {
				action = "drop"
			}
			sp.Rules = append(sp.Rules, Rule{
				Pattern: r.Match.String(), Action: action, Priority: r.Priority,
			})
		}
		out.Policies = append(out.Policies, sp)
	}
	return out
}
