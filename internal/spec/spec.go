// Package spec defines the JSON interchange format the command-line
// tools use to describe placement problems: a topology (generated or
// explicit), a routing (port pairs to route, or explicit paths), and the
// ingress policies (explicit rules and/or synthetic generation).
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"rulefit/internal/core"
	"rulefit/internal/match"
	"rulefit/internal/policy"
	"rulefit/internal/routing"
	"rulefit/internal/topology"
)

// Problem is the on-disk description of a placement instance.
type Problem struct {
	Topology Topology  `json:"topology"`
	Routing  Routing   `json:"routing"`
	Policies []Policy  `json:"policies"`
	Monitors []Monitor `json:"monitors,omitempty"`
}

// Monitor declares a packet-monitoring point (see core.Monitor): DROP
// rules overlapping the match may not be placed upstream of the switch.
type Monitor struct {
	Switch int `json:"switch"`
	// Pattern or the CIDR fields define the monitored traffic, with the
	// same syntax as Rule matches.
	Pattern string `json:"pattern,omitempty"`
	SrcCIDR string `json:"src,omitempty"`
	DstCIDR string `json:"dst,omitempty"`
}

// Topology selects a generator or an explicit switch graph.
type Topology struct {
	// Type is one of "fattree", "leafspine", "linear", "ring", "grid",
	// "random", "fig3", or "explicit".
	Type     string `json:"type"`
	K        int    `json:"k,omitempty"`
	Capacity int    `json:"capacity"`
	Hosts    int    `json:"hostsPerEdge,omitempty"`
	Leaves   int    `json:"leaves,omitempty"`
	Spines   int    `json:"spines,omitempty"`
	Switches int    `json:"switches,omitempty"`
	Width    int    `json:"width,omitempty"`
	Height   int    `json:"height,omitempty"`
	Degree   int    `json:"degree,omitempty"`
	Seed     int64  `json:"seed,omitempty"`

	// Explicit graph (Type == "explicit").
	SwitchList []Switch `json:"switchList,omitempty"`
	Links      [][2]int `json:"links,omitempty"`
	Ports      []Port   `json:"ports,omitempty"`
}

// Switch is an explicit switch declaration.
type Switch struct {
	ID       int    `json:"id"`
	Capacity int    `json:"capacity"`
	Name     string `json:"name,omitempty"`
}

// Port is an explicit external port declaration.
type Port struct {
	ID      int  `json:"id"`
	Switch  int  `json:"switch"`
	Ingress bool `json:"ingress"`
	Egress  bool `json:"egress"`
}

// Routing describes how paths are produced.
type Routing struct {
	// Pairs are routed along seeded random shortest paths.
	Pairs []Pair `json:"pairs,omitempty"`
	Seed  int64  `json:"seed,omitempty"`
	// Paths are taken verbatim.
	Paths []Path `json:"paths,omitempty"`
	// TrafficSlices assigns destination prefixes per egress (§IV-C).
	TrafficSlices bool `json:"trafficSlices,omitempty"`
}

// Pair is an ingress/egress pair to route.
type Pair struct {
	In  int `json:"in"`
	Out int `json:"out"`
}

// Path is an explicit route.
type Path struct {
	Ingress  int   `json:"ingress"`
	Egress   int   `json:"egress"`
	Switches []int `json:"switches"`
	// Traffic optionally restricts the packets following this path to a
	// ternary pattern ({0,1,*} string, §IV-C path slicing). Empty means
	// the path carries all packets.
	Traffic string `json:"traffic,omitempty"`
}

// Policy describes one ingress policy: explicit rules, generated rules,
// or both (explicit rules keep the higher priorities).
type Policy struct {
	Ingress  int    `json:"ingress"`
	Rules    []Rule `json:"rules,omitempty"`
	Generate *Gen   `json:"generate,omitempty"`
}

// Gen requests synthetic rules.
type Gen struct {
	NumRules int     `json:"numRules"`
	DropFrac float64 `json:"dropFraction,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
}

// Rule is one explicit ACL rule. Either Pattern (a {0,1,*} string) or
// the five-tuple fields must be set.
type Rule struct {
	Pattern  string `json:"pattern,omitempty"`
	SrcCIDR  string `json:"src,omitempty"`
	DstCIDR  string `json:"dst,omitempty"`
	SrcPort  int    `json:"srcPort,omitempty"`
	DstPort  int    `json:"dstPort,omitempty"`
	Proto    string `json:"proto,omitempty"` // "tcp", "udp", or ""
	Action   string `json:"action"`          // "permit" or "drop"
	Priority int    `json:"priority"`
}

// Load reads a JSON problem description.
func Load(r io.Reader) (*Problem, error) {
	var p Problem
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return &p, nil
}

// LoadBytes reads a JSON problem description from a byte slice (the
// wire form the placement daemon receives).
func LoadBytes(data []byte) (*Problem, error) {
	return Load(bytes.NewReader(data))
}

// LoadFile reads a JSON problem description from a file.
func LoadFile(path string) (*Problem, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Save writes the JSON description.
func (p *Problem) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// Build materializes the description into a solvable core.Problem.
func (p *Problem) Build() (*core.Problem, error) {
	topo, err := p.Topology.build()
	if err != nil {
		return nil, err
	}
	rt, err := p.Routing.build(topo)
	if err != nil {
		return nil, err
	}
	var pols []*policy.Policy
	for i, ps := range p.Policies {
		pol, err := ps.build()
		if err != nil {
			return nil, fmt.Errorf("spec: policy %d: %w", i, err)
		}
		pols = append(pols, pol)
	}
	return &core.Problem{Network: topo, Routing: rt, Policies: pols}, nil
}

// BuildMonitors materializes the monitor declarations for core.Options.
func (p *Problem) BuildMonitors() ([]core.Monitor, error) {
	var out []core.Monitor
	for i, m := range p.Monitors {
		var tern match.Ternary
		switch {
		case m.Pattern != "":
			t, err := match.ParseTernary(m.Pattern)
			if err != nil {
				return nil, fmt.Errorf("spec: monitor %d: %w", i, err)
			}
			tern = t
		default:
			ft := match.FiveTuple{ProtoAny: true}
			if m.SrcCIDR != "" {
				ip, plen, err := parseCIDR(m.SrcCIDR)
				if err != nil {
					return nil, fmt.Errorf("spec: monitor %d: %w", i, err)
				}
				ft.SrcIP, ft.SrcPfxLen = ip, plen
			}
			if m.DstCIDR != "" {
				ip, plen, err := parseCIDR(m.DstCIDR)
				if err != nil {
					return nil, fmt.Errorf("spec: monitor %d: %w", i, err)
				}
				ft.DstIP, ft.DstPfxLen = ip, plen
			}
			tern = ft.Ternary()
		}
		out = append(out, core.Monitor{Switch: topology.SwitchID(m.Switch), Match: tern})
	}
	return out, nil
}

func (t Topology) build() (*topology.Network, error) {
	switch t.Type {
	case "fattree":
		hosts := t.Hosts
		if hosts == 0 {
			hosts = t.K / 2
		}
		return topology.FatTree(t.K, t.Capacity, hosts)
	case "leafspine":
		return topology.LeafSpine(t.Leaves, t.Spines, t.Capacity, maxInt(t.Hosts, 1))
	case "linear":
		return topology.Linear(t.Switches, t.Capacity)
	case "ring":
		return topology.Ring(t.Switches, t.Capacity)
	case "grid":
		return topology.Grid(t.Width, t.Height, t.Capacity)
	case "random":
		return topology.RandomConnected(t.Switches, maxInt(t.Degree, 3), t.Capacity, t.Seed)
	case "fig3":
		return topology.Fig3(t.Capacity), nil
	case "explicit":
		n := topology.NewNetwork()
		for _, s := range t.SwitchList {
			if err := n.AddSwitch(topology.Switch{ID: topology.SwitchID(s.ID), Capacity: s.Capacity, Name: s.Name}); err != nil {
				return nil, err
			}
		}
		for _, l := range t.Links {
			if err := n.AddLink(topology.SwitchID(l[0]), topology.SwitchID(l[1])); err != nil {
				return nil, err
			}
		}
		for _, pt := range t.Ports {
			if err := n.AddPort(topology.ExternalPort{
				ID: topology.PortID(pt.ID), Switch: topology.SwitchID(pt.Switch),
				Ingress: pt.Ingress, Egress: pt.Egress,
			}); err != nil {
				return nil, err
			}
		}
		return n, nil
	default:
		return nil, fmt.Errorf("spec: unknown topology type %q", t.Type)
	}
}

func (r Routing) build(topo *topology.Network) (*routing.Routing, error) {
	var rt *routing.Routing
	switch {
	case len(r.Paths) > 0:
		rt = routing.NewRouting()
		for i, p := range r.Paths {
			sws := make([]topology.SwitchID, len(p.Switches))
			for j, s := range p.Switches {
				sws[j] = topology.SwitchID(s)
			}
			rp := routing.Path{
				Ingress:  topology.PortID(p.Ingress),
				Egress:   topology.PortID(p.Egress),
				Switches: sws,
			}
			if p.Traffic != "" {
				t, err := match.ParseTernary(p.Traffic)
				if err != nil {
					return nil, fmt.Errorf("spec: path %d traffic: %w", i, err)
				}
				rp.Traffic, rp.HasTraffic = t, true
			}
			rt.Add(rp)
		}
	case len(r.Pairs) > 0:
		pairs := make([]routing.PortPair, len(r.Pairs))
		for i, pr := range r.Pairs {
			pairs[i] = routing.PortPair{In: topology.PortID(pr.In), Out: topology.PortID(pr.Out)}
		}
		var err error
		rt, err = routing.BuildRouting(topo, pairs, r.Seed)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("spec: routing needs pairs or paths")
	}
	if r.TrafficSlices {
		routing.AssignTrafficSlices(rt)
	}
	return rt, nil
}

func (ps Policy) build() (*policy.Policy, error) {
	var rules []policy.Rule
	for i, rs := range ps.Rules {
		r, err := rs.build()
		if err != nil {
			return nil, fmt.Errorf("rule %d: %w", i, err)
		}
		rules = append(rules, r)
	}
	if ps.Generate != nil {
		gen := policy.Generate(ps.Ingress, policy.GenConfig{
			NumRules:     ps.Generate.NumRules,
			DropFraction: ps.Generate.DropFrac,
			Seed:         ps.Generate.Seed,
		})
		// Generated rules slot in below the explicit ones.
		base := 0
		for _, r := range rules {
			if r.Priority > base {
				base = r.Priority
			}
		}
		for _, r := range gen.Rules {
			r.Priority -= len(gen.Rules) + 1 // keep below explicit rules
			r.Priority += base
			if base == 0 {
				r.Priority = r.Priority + len(gen.Rules) + 1
			}
			rules = append(rules, r)
		}
	}
	return policy.New(ps.Ingress, rules)
}

func (rs Rule) build() (policy.Rule, error) {
	var action policy.Action
	switch strings.ToLower(rs.Action) {
	case "permit", "allow", "accept":
		action = policy.Permit
	case "drop", "deny":
		action = policy.Drop
	default:
		return policy.Rule{}, fmt.Errorf("unknown action %q", rs.Action)
	}
	if rs.Pattern != "" {
		m, err := match.ParseTernary(rs.Pattern)
		if err != nil {
			return policy.Rule{}, err
		}
		return policy.Rule{Match: m, Action: action, Priority: rs.Priority}, nil
	}
	ft := match.FiveTuple{ProtoAny: true}
	if rs.SrcCIDR != "" {
		ip, plen, err := parseCIDR(rs.SrcCIDR)
		if err != nil {
			return policy.Rule{}, err
		}
		ft.SrcIP, ft.SrcPfxLen = ip, plen
	}
	if rs.DstCIDR != "" {
		ip, plen, err := parseCIDR(rs.DstCIDR)
		if err != nil {
			return policy.Rule{}, err
		}
		ft.DstIP, ft.DstPfxLen = ip, plen
	}
	if rs.SrcPort != 0 {
		ft.SrcPort, ft.SrcExact = uint16(rs.SrcPort), true
	}
	if rs.DstPort != 0 {
		ft.DstPort, ft.DstExact = uint16(rs.DstPort), true
	}
	switch strings.ToLower(rs.Proto) {
	case "tcp":
		ft.Proto, ft.ProtoAny = 6, false
	case "udp":
		ft.Proto, ft.ProtoAny = 17, false
	case "":
	default:
		return policy.Rule{}, fmt.Errorf("unknown proto %q", rs.Proto)
	}
	return policy.Rule{Match: ft.Ternary(), Action: action, Priority: rs.Priority}, nil
}

// parseCIDR parses "a.b.c.d/len" into a uint32 and prefix length.
func parseCIDR(s string) (uint32, int, error) {
	var a, b, c, d, plen int
	n, err := fmt.Sscanf(s, "%d.%d.%d.%d/%d", &a, &b, &c, &d, &plen)
	if err != nil || n != 5 {
		return 0, 0, fmt.Errorf("bad CIDR %q", s)
	}
	for _, v := range []int{a, b, c, d} {
		if v < 0 || v > 255 {
			return 0, 0, fmt.Errorf("bad CIDR %q", s)
		}
	}
	if plen < 0 || plen > 32 {
		return 0, 0, fmt.Errorf("bad prefix length in %q", s)
	}
	ip := uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
	return ip, plen, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
