package spec

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const fig3JSON = `{
  "topology": {"type": "fig3", "capacity": 10},
  "routing": {"pairs": [{"in": 1, "out": 2}, {"in": 1, "out": 3}], "seed": 1},
  "policies": [
    {"ingress": 1, "rules": [
      {"src": "10.0.0.0/16", "dst": "11.0.0.0/8", "action": "permit", "priority": 3},
      {"src": "10.0.0.0/8", "action": "drop", "priority": 2},
      {"dst": "12.0.0.0/8", "proto": "tcp", "dstPort": 80, "action": "drop", "priority": 1}
    ]}
  ]
}`

func TestLoadAndBuildFig3(t *testing.T) {
	p, err := Load(strings.NewReader(fig3JSON))
	if err != nil {
		t.Fatal(err)
	}
	prob, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	if prob.Network.NumSwitches() != 5 {
		t.Errorf("switches = %d", prob.Network.NumSwitches())
	}
	if got := prob.Routing.NumPaths(); got != 2 {
		t.Errorf("paths = %d", got)
	}
	if len(prob.Policies) != 1 || len(prob.Policies[0].Rules) != 3 {
		t.Errorf("policies malformed: %+v", prob.Policies)
	}
}

func TestRoundTrip(t *testing.T) {
	p, err := Load(strings.NewReader(fig3JSON))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Policies) != len(p.Policies) {
		t.Errorf("round trip lost policies")
	}
}

func TestExplicitTopologyAndPaths(t *testing.T) {
	in := `{
	  "topology": {"type": "explicit", "capacity": 0,
	    "switchList": [{"id": 1, "capacity": 5}, {"id": 2, "capacity": 5}],
	    "links": [[1, 2]],
	    "ports": [{"id": 1, "switch": 1, "ingress": true}, {"id": 2, "switch": 2, "egress": true}]},
	  "routing": {"paths": [{"ingress": 1, "egress": 2, "switches": [1, 2]}]},
	  "policies": [{"ingress": 1, "rules": [{"pattern": "1***", "action": "drop", "priority": 1}]}]
	}`
	p, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	prob, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	if prob.Policies[0].Rules[0].Match.Width() != 4 {
		t.Errorf("pattern width = %d", prob.Policies[0].Rules[0].Match.Width())
	}
}

func TestGeneratedPolicies(t *testing.T) {
	in := `{
	  "topology": {"type": "fattree", "k": 4, "capacity": 100},
	  "routing": {"pairs": [{"in": 0, "out": 7}], "seed": 3},
	  "policies": [{"ingress": 0, "generate": {"numRules": 12, "seed": 5}}]
	}`
	p, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	prob, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(prob.Policies[0].Rules); got != 12 {
		t.Errorf("generated rules = %d, want 12", got)
	}
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorTopologies(t *testing.T) {
	for _, typ := range []string{
		`{"type": "leafspine", "leaves": 3, "spines": 2, "capacity": 5, "hostsPerEdge": 1}`,
		`{"type": "linear", "switches": 4, "capacity": 5}`,
		`{"type": "ring", "switches": 5, "capacity": 5}`,
		`{"type": "grid", "width": 3, "height": 2, "capacity": 5}`,
		`{"type": "random", "switches": 10, "degree": 3, "capacity": 5, "seed": 2}`,
	} {
		var ts Topology
		if err := json.Unmarshal([]byte(typ), &ts); err != nil {
			t.Fatal(err)
		}
		topo, err := ts.build()
		if err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		if topo.NumSwitches() == 0 {
			t.Errorf("%s: empty topology", typ)
		}
	}
}

func TestBadInputs(t *testing.T) {
	cases := []string{
		`{"topology": {"type": "nope", "capacity": 1}, "routing": {"pairs": [{"in":0,"out":1}]}, "policies": []}`,
		`{"topology": {"type": "fig3", "capacity": 1}, "routing": {}, "policies": []}`,
		`{"topology": {"type": "fig3", "capacity": 1}, "routing": {"pairs": [{"in":1,"out":2}]}, "policies": [{"ingress":1,"rules":[{"pattern":"1*","action":"explode","priority":1}]}]}`,
		`{"topology": {"type": "fig3", "capacity": 1}, "routing": {"pairs": [{"in":1,"out":2}]}, "policies": [{"ingress":1,"rules":[{"src":"999.0.0.0/8","action":"drop","priority":1}]}]}`,
		`{"topology": {"type": "fig3", "capacity": 1}, "routing": {"pairs": [{"in":1,"out":2}]}, "policies": [{"ingress":1,"rules":[{"src":"10.0.0.0/40","action":"drop","priority":1}]}]}`,
	}
	for i, c := range cases {
		p, err := Load(strings.NewReader(c))
		if err != nil {
			continue // rejected at decode time is fine too
		}
		if _, err := p.Build(); err == nil {
			t.Errorf("case %d: expected build error", i)
		}
	}
}

func TestUnknownFieldRejected(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"bogus": 1}`)); err == nil {
		t.Error("unknown top-level field should be rejected")
	}
}

func TestParseCIDR(t *testing.T) {
	ip, plen, err := parseCIDR("10.1.2.3/24")
	if err != nil || ip != 0x0A010203 || plen != 24 {
		t.Errorf("parseCIDR = %x/%d, %v", ip, plen, err)
	}
	for _, bad := range []string{"10.0.0.0", "a.b.c.d/8", "10.0.0.0/33", "256.0.0.0/8"} {
		if _, _, err := parseCIDR(bad); err == nil {
			t.Errorf("parseCIDR(%q) should fail", bad)
		}
	}
}

func TestMonitorsSpec(t *testing.T) {
	in := `{
	  "topology": {"type": "fig3", "capacity": 10},
	  "routing": {"pairs": [{"in": 1, "out": 2}, {"in": 1, "out": 3}]},
	  "policies": [{"ingress": 1, "rules": [{"src": "10.0.0.0/8", "action": "drop", "priority": 1}]}],
	  "monitors": [
	    {"switch": 2, "src": "10.0.0.0/8"},
	    {"switch": 3, "pattern": "11"}
	  ]
	}`
	p, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	mons, err := p.BuildMonitors()
	if err != nil {
		t.Fatal(err)
	}
	if len(mons) != 2 || mons[0].Switch != 2 || mons[1].Switch != 3 {
		t.Fatalf("monitors = %+v", mons)
	}
	if mons[1].Match.Width() != 2 {
		t.Errorf("pattern width = %d", mons[1].Match.Width())
	}
	// Bad monitor pattern errors out.
	p.Monitors[0].Pattern = "xyz"
	if _, err := p.BuildMonitors(); err == nil {
		t.Error("bad pattern should fail")
	}
}
