package diffcheck

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"rulefit/internal/core"
	"rulefit/internal/spec"
	"rulefit/internal/state"
)

// Delta-oracle failure kinds reported by CheckDeltas.
const (
	// KindDeltaMismatch: a session (warm-path) answer differs from a
	// cold core.Place of the fully-updated instance — the central
	// byte-identity contract of the stateful layer.
	KindDeltaMismatch = "delta-mismatch"
	// KindDeltaReject: the session and the reference disagree on
	// whether a delta is applicable at all.
	KindDeltaReject = "delta-reject-divergence"
	// KindDeltaVersion: the session version did not advance by exactly
	// one on an accepted delta.
	KindDeltaVersion = "delta-version"
	// KindDeltaSolve: a reference solve or session create errored.
	KindDeltaSolve = "delta-solve-error"
)

// DeltaResult is the outcome of replaying one delta sequence warm
// (through a state session) and cold (core.Place from scratch at every
// step).
type DeltaResult struct {
	// Steps counts the accepted deltas (consistent rejections are
	// skipped, not failed).
	Steps int
	// Paths counts how each accepted step was answered
	// ("identity"/"warm"/"cold"), for coverage reporting.
	Paths map[string]int
	// Failures holds every divergence; the replay stops at the first
	// mismatch since later state would be tainted.
	Failures []Failure
}

// Failed reports whether the sequence diverged anywhere.
func (r *DeltaResult) Failed() bool { return len(r.Failures) > 0 }

// addf records a failure.
func (r *DeltaResult) addf(kind, format string, args ...any) {
	r.Failures = append(r.Failures, Failure{Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// Summary renders the failures for logs.
func (r *DeltaResult) Summary() string {
	if !r.Failed() {
		return "ok"
	}
	out := ""
	for i, f := range r.Failures {
		if i > 0 {
			out += "; "
		}
		out += f.String()
	}
	return out
}

// CheckDeltas is the delta-vs-cold differential oracle: it creates a
// stateful session on sp, then applies each delta through the session
// (which answers via the identity/warm/cold ladder) AND to a reference
// clone solved cold with a fresh core.Place. At the session create and
// after every accepted delta the two placements must have identical
// fingerprints. Deltas both sides reject are skipped consistently —
// that keeps shrunk sequences (where removing a prefix can orphan a
// later delta) replayable.
func CheckDeltas(sp *spec.Problem, deltas []spec.Delta, coreOpts core.Options) *DeltaResult {
	res := &DeltaResult{Paths: map[string]int{}}
	mgr := state.NewManager(state.Config{})
	sess, createRes, err := mgr.Create(sp, coreOpts)
	if err != nil {
		res.addf(KindDeltaSolve, "session create: %v", err)
		return res
	}
	cold := sp.Clone()
	coldFP, err := coldFingerprint(cold, coreOpts)
	if err != nil {
		res.addf(KindDeltaSolve, "cold create: %v", err)
		return res
	}
	if fp := Fingerprint(createRes.Placement); fp != coldFP {
		res.addf(KindDeltaMismatch, "create: session answered\n%s\ncold solve answered\n%s", fp, coldFP)
		return res
	}

	version := createRes.Version
	for i, d := range deltas {
		warmRes, warmErr := sess.Delta([]spec.Delta{d}, nil, nil)
		cand := cold.Clone()
		coldErr := cand.Apply(d)
		if coldErr == nil {
			var prob *core.Problem
			if prob, coldErr = cand.Build(); coldErr == nil {
				coldErr = prob.Validate()
			}
		}
		if (warmErr == nil) != (coldErr == nil) {
			res.addf(KindDeltaReject, "step %d %s: session err=%v, reference err=%v", i, d, warmErr, coldErr)
			return res
		}
		if warmErr != nil {
			continue // both sides reject: consistent skip
		}
		cold = cand
		if warmRes.Version != version+1 {
			res.addf(KindDeltaVersion, "step %d %s: version %d after %d", i, d, warmRes.Version, version)
			return res
		}
		version = warmRes.Version
		res.Paths[warmRes.Path]++
		res.Steps++
		coldFP, err := coldFingerprint(cold, coreOpts)
		if err != nil {
			res.addf(KindDeltaSolve, "step %d %s cold: %v", i, d, err)
			return res
		}
		if fp := Fingerprint(warmRes.Placement); fp != coldFP {
			res.addf(KindDeltaMismatch, "step %d %s: %s path answered\n%s\ncold solve answered\n%s",
				i, d, warmRes.Path, fp, coldFP)
			return res
		}
	}
	return res
}

// coldFingerprint builds and solves a spec problem from scratch with
// no cache state and returns the placement fingerprint.
func coldFingerprint(sp *spec.Problem, coreOpts core.Options) (string, error) {
	prob, err := sp.Build()
	if err != nil {
		return "", err
	}
	if err := prob.Validate(); err != nil {
		return "", err
	}
	pl, err := core.Place(prob, coreOpts)
	if err != nil {
		return "", err
	}
	return Fingerprint(pl), nil
}

// DeltaFixtureSchema identifies the delta-sequence regression fixture
// format. Like FixtureSchema, fields are additive-only.
const DeltaFixtureSchema = "rulefit-deltacheck/v1"

// DeltaFixture is a self-contained delta-oracle reproducer: an
// explicit base problem, the solver options, and the delta sequence
// that diverged. Committed fixtures live under
// testdata/regressions/delta/ and are replayed by TestDeltaRegressions.
type DeltaFixture struct {
	Schema  string         `json:"schema"`
	Note    string         `json:"note,omitempty"`
	Seed    int64          `json:"seed,omitempty"`
	Options FixtureOptions `json:"options"`
	Problem *spec.Problem  `json:"problem"`
	Deltas  []spec.Delta   `json:"deltas"`
}

// NewDeltaFixture packages a failing (or exemplar) delta sequence.
func NewDeltaFixture(sp *spec.Problem, deltas []spec.Delta, coreOpts core.Options, seed int64, note string) *DeltaFixture {
	return &DeltaFixture{
		Schema:  DeltaFixtureSchema,
		Note:    note,
		Seed:    seed,
		Options: fixtureOptions(coreOpts),
		Problem: sp.Clone(),
		Deltas:  append([]spec.Delta(nil), deltas...),
	}
}

// Replay runs the fixture through the delta oracle.
func (f *DeltaFixture) Replay() (*DeltaResult, error) {
	if f.Schema != DeltaFixtureSchema {
		return nil, fmt.Errorf("diffcheck: delta fixture schema %q, want %q", f.Schema, DeltaFixtureSchema)
	}
	opts, err := f.Options.CoreOptions()
	if err != nil {
		return nil, err
	}
	if err := f.Problem.ExplicitOnly(); err != nil {
		return nil, err
	}
	return CheckDeltas(f.Problem, f.Deltas, opts), nil
}

// WriteFile writes the fixture as indented JSON.
func (f *DeltaFixture) WriteFile(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadDeltaFixture reads a delta fixture file.
func LoadDeltaFixture(path string) (*DeltaFixture, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f DeltaFixture
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("diffcheck: %s: %w", path, err)
	}
	return &f, nil
}

// ShrinkDeltas minimizes a failing delta sequence: it greedily drops
// deltas (whole halves first, then single steps) while CheckDeltas
// still fails. Consistent-rejection skipping in CheckDeltas keeps
// truncated sequences replayable even when a dropped delta orphans a
// later one. Returns the input unchanged if the failure does not
// reproduce.
func ShrinkDeltas(sp *spec.Problem, deltas []spec.Delta, coreOpts core.Options) []spec.Delta {
	failing := func(ds []spec.Delta) bool {
		return CheckDeltas(sp, ds, coreOpts).Failed()
	}
	if !failing(deltas) {
		return deltas
	}
	cur := append([]spec.Delta(nil), deltas...)
	// Halving pass: try dropping large chunks first.
	for chunk := len(cur) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len(cur); {
			cand := append(append([]spec.Delta(nil), cur[:start]...), cur[start+chunk:]...)
			if failing(cand) {
				cur = cand
			} else {
				start += chunk
			}
		}
	}
	return cur
}
