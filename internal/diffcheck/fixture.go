package diffcheck

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"rulefit/internal/core"
	"rulefit/internal/match"
	"rulefit/internal/randgen"
	"rulefit/internal/spec"
)

// FixtureSchema identifies the regression-fixture JSON format. Fields
// are additive-only: renaming or removing one breaks every committed
// fixture under testdata/regressions/.
const FixtureSchema = "rulefit-diffcheck/v1"

// Fixture is a self-contained reproducer: a fully explicit problem
// (spec form, no generators) plus the solver options it failed under.
// cmd/diffcheck writes these after shrinking; the regression test in
// regress_test.go replays every committed fixture through Check.
type Fixture struct {
	Schema  string         `json:"schema"`
	Note    string         `json:"note,omitempty"`
	Seed    int64          `json:"seed,omitempty"`
	Options FixtureOptions `json:"options"`
	Problem *spec.Problem  `json:"problem"`
}

// FixtureOptions is the JSON form of the core options a fixture runs
// under. Only options that change the encoding are recorded.
type FixtureOptions struct {
	// Objective is "", "total-rules", "traffic", or "weighted-switches".
	Objective       string `json:"objective,omitempty"`
	Merging         bool   `json:"merging,omitempty"`
	PathSlicing     bool   `json:"pathSlicing,omitempty"`
	RemoveRedundant bool   `json:"removeRedundant,omitempty"`
}

// CoreOptions materializes the recorded options.
func (fo FixtureOptions) CoreOptions() (core.Options, error) {
	var o core.Options
	switch fo.Objective {
	case "", "total-rules":
		o.Objective = core.ObjTotalRules
	case "traffic":
		o.Objective = core.ObjTraffic
	case "weighted-switches":
		o.Objective = core.ObjWeightedSwitches
	default:
		return o, fmt.Errorf("diffcheck: unknown objective %q", fo.Objective)
	}
	o.Merging = fo.Merging
	o.PathSlicing = fo.PathSlicing
	o.RemoveRedundant = fo.RemoveRedundant
	return o, nil
}

// fixtureOptions records the encoding-relevant core options.
func fixtureOptions(o core.Options) FixtureOptions {
	fo := FixtureOptions{
		Merging:         o.Merging,
		PathSlicing:     o.PathSlicing,
		RemoveRedundant: o.RemoveRedundant,
	}
	switch o.Objective {
	case core.ObjTraffic:
		fo.Objective = "traffic"
	case core.ObjWeightedSwitches:
		fo.Objective = "weighted-switches"
	}
	return fo
}

// NewFixture converts an instance into a committed-fixture form.
func NewFixture(inst *randgen.Instance, coreOpts core.Options, note string) *Fixture {
	return &Fixture{
		Schema:  FixtureSchema,
		Note:    note,
		Seed:    inst.Config.Seed,
		Options: fixtureOptions(coreOpts),
		Problem: ProblemToSpec(inst.Problem),
	}
}

// Instance rebuilds the runnable instance from the fixture. The
// randgen.Config carries only the seed and inferred policy width (used
// by Check to decide on exhaustive header verification).
func (f *Fixture) Instance() (*randgen.Instance, core.Options, error) {
	if f.Schema != FixtureSchema {
		return nil, core.Options{}, fmt.Errorf("diffcheck: fixture schema %q, want %q", f.Schema, FixtureSchema)
	}
	opts, err := f.Options.CoreOptions()
	if err != nil {
		return nil, core.Options{}, err
	}
	prob, err := f.Problem.Build()
	if err != nil {
		return nil, core.Options{}, fmt.Errorf("diffcheck: fixture problem: %w", err)
	}
	if err := prob.Validate(); err != nil {
		return nil, core.Options{}, fmt.Errorf("diffcheck: fixture problem: %w", err)
	}
	cfg := randgen.Config{Seed: f.Seed}
	if len(prob.Policies) > 0 {
		if w := prob.Policies[0].Width(); w != match.HeaderWidth {
			cfg.Width = w
		}
	}
	return &randgen.Instance{Config: cfg, Problem: prob}, opts, nil
}

// WriteFile writes the fixture as indented JSON.
func (f *Fixture) WriteFile(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadFixture reads a fixture file.
func LoadFixture(path string) (*Fixture, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f Fixture
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("diffcheck: %s: %w", path, err)
	}
	return &f, nil
}

// ProblemToSpec flattens a core problem into fully explicit spec form
// (see spec.FromCore, which the delta session layer also uses).
func ProblemToSpec(p *core.Problem) *spec.Problem {
	return spec.FromCore(p)
}
